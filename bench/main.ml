(* Benchmark harness: regenerates every experiment in DESIGN.md §6.

   The paper (PODS'85/JCSS'86) is a theory paper with no measured tables;
   each experiment here operationalises one of its quantitative claims.
   Usage:
     dune exec bench/main.exe            # all experiments, default sizes
     dune exec bench/main.exe -- E1 E3   # a subset
     dune exec bench/main.exe -- --quick # smaller sizes (CI)
*)

open Repro_storage
open Repro_core
open Repro_baseline
open Repro_harness
module S = Sagiv.Make (Key.Int)
module C = Compress.Make (Key.Int)
module Co = Compactor.Make (Key.Int)
module V = Validate.Make (Key.Int)

let quick = ref false
let scale n = if !quick then max 1 (n / 10) else n

let ctx = Handle.ctx

(* Minimal JSON emitter: enough for flat result records, no dependency.
   Experiments push named values into [json_out]; [--json PATH] writes
   them all as one document (BENCH_*.json in the repo root is the
   committed snapshot EXPERIMENTS.md quotes). *)
module J = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let rec to_buf b = function
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        Buffer.add_string b
          (if Float.is_finite f then Printf.sprintf "%.6g" f else "null")
    | Str s ->
        Buffer.add_char b '"';
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string b "\\\""
            | '\\' -> Buffer.add_string b "\\\\"
            | '\n' -> Buffer.add_string b "\\n"
            | c when Char.code c < 32 ->
                Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
            | c -> Buffer.add_char b c)
          s;
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            to_buf b x)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            to_buf b (Str k);
            Buffer.add_char b ':';
            to_buf b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 1024 in
    to_buf b t;
    Buffer.contents b
end

let json_out : (string * J.t) list ref = ref []
let record_json name v = json_out := (name, v) :: !json_out

(* Insert [n] distinct scattered keys with a single domain. *)
let preload_handle (h : Tree_intf.handle) ~n ~space =
  let c = ctx ~slot:0 in
  let rng = Repro_util.Splitmix.create 0xFEED in
  let perm = Repro_util.Splitmix.permutation rng space in
  for i = 0 to n - 1 do
    ignore (h.Tree_intf.insert c perm.(i) perm.(i))
  done

let stats_per_op (st : Stats.t) field =
  if st.Stats.ops = 0 then 0.0 else float_of_int field /. float_of_int st.Stats.ops

(* ------------------------------------------------------------------ *)
(* E1: lock footprint per operation (the paper's headline claim)       *)
(* ------------------------------------------------------------------ *)

let e1 () =
  Report.heading "E1: lock footprint per operation";
  Report.note
    "Claim (abstract, §1): a Sagiv insertion locks ONE node at a time; \
     Lehman-Yao holds 2-3 simultaneously; lock-coupling readers lock every \
     node on the path.";
  let n = scale 50_000 and ops = scale 20_000 in
  let rows =
    List.map
      (fun (impl : Tree_intf.impl) ->
        let h = impl.Tree_intf.make ~order:4 in
        preload_handle h ~n ~space:(2 * n);
        (* concurrent inserts of fresh disjoint keys: contention on the
           upper levels is what makes Lehman-Yao's third lock (coupling
           during the parent-level right-move) appear *)
        let ins =
          Driver.run_parallel ~domains:4 ~f:(fun i c ->
              for j = 0 to (ops / 4) - 1 do
                ignore (h.Tree_intf.insert c ((2 * n) + (j * 4) + i) j)
              done)
        in
        let srch =
          Driver.run_parallel ~domains:4 ~f:(fun i c ->
              let rng = Repro_util.Splitmix.create (7 + i) in
              for _ = 1 to ops / 4 do
                ignore (h.Tree_intf.search c (Repro_util.Splitmix.int rng (2 * n)))
              done)
        in
        let sti = ins.Driver.stats and sts = srch.Driver.stats in
        [
          impl.Tree_intf.impl_name;
          Report.fmt_f (stats_per_op sti sti.Stats.lock_acquisitions);
          string_of_int sti.Stats.max_locks_held;
          Report.fmt_f (stats_per_op sts sts.Stats.lock_acquisitions);
          string_of_int sts.Stats.max_locks_held;
        ])
      Tree_intf.all
  in
  Report.table
    ~header:
      [ "tree"; "locks/insert"; "max-held(ins)"; "locks/search"; "max-held(srch)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: throughput vs worker domains                                    *)
(* ------------------------------------------------------------------ *)

let e2 () =
  Report.heading "E2: throughput scaling with worker domains";
  Report.note
    "Claim (§1): fewer/shorter locks allow a higher degree of concurrency. \
     Single-core substrate: differences show as blocking/overhead, not speedup.";
  let total_ops = scale 160_000 in
  let space = scale 200_000 in
  let preload = space / 2 in
  let domain_counts = [ 1; 2; 4; 8 ] in
  List.iter
    (fun (mix, mix_name) ->
      Report.note (Printf.sprintf "mix %s, keyspace %d, preload %d:" mix_name space preload);
      let rows =
        List.map
          (fun (impl : Tree_intf.impl) ->
            impl.Tree_intf.impl_name
            :: List.map
                 (fun d ->
                   let h = impl.Tree_intf.make ~order:16 in
                   let spec = Workload.spec ~op_mix:mix ~key_space:space ~preload () in
                   ignore (Driver.preload h ~seed:42 spec);
                   let r =
                     Driver.run_ops h ~domains:d ~ops_per_domain:(total_ops / d)
                       ~seed:42 spec
                   in
                   Report.fmt_si r.Driver.throughput ^ "/s")
                 domain_counts)
          Tree_intf.all
      in
      Report.table
        ~header:("tree" :: List.map (fun d -> Printf.sprintf "%dd" d) domain_counts)
        rows)
    [
      (Workload.insert_only, "100% insert");
      (Workload.balanced, "50/50 search/insert");
      (Workload.read_mostly, "80/20 search/insert");
    ]

(* ------------------------------------------------------------------ *)
(* E3: compression keeps nodes at least half full                      *)
(* ------------------------------------------------------------------ *)

let leaf_fill (rep : Validate.report) =
  match
    List.find_opt (fun (l : Validate.level_stats) -> l.Validate.level = 0) rep.Validate.levels
  with
  | Some l -> l.Validate.avg_fill
  | None -> 0.0

let e3_row name t =
  let rep = V.check t in
  [
    name;
    string_of_int rep.Validate.height;
    string_of_int rep.Validate.total_nodes;
    string_of_int rep.Validate.total_keys;
    Report.fmt_f (leaf_fill rep);
    Report.fmt_bytes rep.Validate.encoded_bytes;
  ]

let e3 () =
  Report.heading "E3: compression restores occupancy and reclaims space";
  Report.note
    "Claim (§5.1): the compression process redistributes data so each node \
     holds >= k pairs and releases empty nodes; without it (Lehman-Yao \
     regime) space is wasted and the tree stays too tall.";
  let n = scale 100_000 in
  let build () =
    let t = S.create ~order:8 () in
    let c = ctx ~slot:0 in
    for k = 1 to n do
      ignore (S.insert t c k k)
    done;
    (t, c)
  in
  let delete_80 t c =
    for k = 1 to n do
      if k mod 5 <> 0 then ignore (S.delete t c k)
    done
  in
  let t0, c0 = build () in
  let built_row = e3_row "after build" t0 in
  delete_80 t0 c0;
  let no_comp_row = e3_row "deleted 80%, no compression (LY regime)" t0 in
  (* scan compression on the same tree *)
  let passes = C.compress_to_fixpoint t0 c0 in
  ignore (S.reclaim t0);
  let scan_row = e3_row (Printf.sprintf "after scan compression (%d passes)" passes) t0 in
  (* queue-driven compression on a fresh tree *)
  let t1 = S.create ~order:8 ~enqueue_on_delete:true () in
  let c1 = ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t1 c1 k k)
  done;
  delete_80 t1 c1;
  (match Co.run_until_empty t1 c1 with
  | `Drained -> ()
  | `Step_limit -> Report.note "WARN: step limit");
  ignore (S.reclaim t1);
  let queue_row = e3_row "after queue-driven compaction" t1 in
  Report.table
    ~header:[ "state"; "height"; "nodes"; "keys"; "avg leaf fill"; "bytes" ]
    [ built_row; no_comp_row; scan_row; queue_row ]

(* ------------------------------------------------------------------ *)
(* E4: restarts are rare                                               *)
(* ------------------------------------------------------------------ *)

let e4 () =
  Report.heading "E4: wrong-node restarts under concurrent compaction";
  Report.note
    "Claim (§1): solving the wrong-node problem by restarting is cheaper \
     than lock queues because it happens infrequently.";
  let space = scale 100_000 in
  let ops = scale 50_000 in
  let raw, h = Tree_intf.sagiv_raw ~enqueue_on_delete:true ~order:8 () in
  let spec = Workload.spec ~op_mix:Workload.mixed_sid ~key_space:space ~preload:space () in
  ignore (Driver.preload h ~seed:9 spec);
  let r, comp =
    Driver.run_ops_with_compaction raw h ~domains:4 ~compactors:2 ~ops_per_domain:ops
      ~seed:9 spec
  in
  let st = r.Driver.stats in
  let per100k field = 100_000.0 *. float_of_int field /. float_of_int st.Stats.ops in
  Report.table
    ~header:[ "metric"; "total"; "per 100k ops" ]
    [
      [ "worker ops"; string_of_int st.Stats.ops; "-" ];
      [
        "restarts (case 2)";
        string_of_int st.Stats.restarts;
        Report.fmt_f (per100k st.Stats.restarts);
      ];
      [
        "tombstone follows (case 1)";
        string_of_int st.Stats.fwd_follows;
        Report.fmt_f (per100k st.Stats.fwd_follows);
      ];
      [
        "link follows";
        string_of_int st.Stats.link_follows;
        Report.fmt_f (per100k st.Stats.link_follows);
      ];
      [
        "lock-retry moves";
        string_of_int st.Stats.retries;
        Report.fmt_f (per100k st.Stats.retries);
      ];
      [ "compactor merges"; string_of_int comp.Stats.merges; "-" ];
      [ "compactor redistributions"; string_of_int comp.Stats.redistributions; "-" ];
    ];
  let rep = V.check raw in
  Report.note
    (if Validate.ok rep then "tree valid after run"
     else "TREE INVALID: " ^ String.concat "; " rep.Validate.errors)

(* ------------------------------------------------------------------ *)
(* E5: any number of compression processes run in parallel             *)
(* ------------------------------------------------------------------ *)

let e5 () =
  Report.heading "E5: parallel compaction (deadlock-free, shared queue)";
  Report.note
    "Claim (§5.4, Thm 2): any number of compression processes may run \
     concurrently with updaters; insertions' single locks make deadlock \
     impossible.";
  let n = scale 100_000 in
  (* (a) quiescent drain wall-time vs #compactors *)
  let drain_with compactors =
    let t = S.create ~order:8 ~enqueue_on_delete:true () in
    let c = ctx ~slot:0 in
    for k = 1 to n do
      ignore (S.insert t c k k)
    done;
    for k = 1 to n do
      if k mod 4 <> 0 then ignore (S.delete t c k)
    done;
    let queued = Cqueue.length t.Handle.queue in
    let t0 = Unix.gettimeofday () in
    let workers =
      Array.init compactors (fun i ->
          Domain.spawn (fun () ->
              let cc = ctx ~slot:(1 + i) in
              (match Co.run_until_empty t cc with `Drained -> () | `Step_limit -> ());
              cc))
    in
    let ctxs = Array.map Domain.join workers in
    let dt = Unix.gettimeofday () -. t0 in
    let merges =
      Array.fold_left (fun acc (c : Handle.ctx) -> acc + c.Handle.stats.Stats.merges) 0 ctxs
    in
    let valid = Validate.ok (V.check t) in
    [
      string_of_int compactors;
      string_of_int queued;
      Report.fmt_f ~digits:3 dt ^ "s";
      string_of_int merges;
      (if valid then "yes" else "NO");
    ]
  in
  Report.note "(a) quiescent drain after deleting 75%:";
  Report.table
    ~header:[ "compactors"; "queued"; "drain time"; "merges"; "valid" ]
    (List.map drain_with [ 1; 2; 4 ]);
  (* (b) updater throughput with live compactors *)
  Report.note "(b) update throughput while compactors run:";
  let rows =
    List.map
      (fun compactors ->
        let raw, h = Tree_intf.sagiv_raw ~enqueue_on_delete:true ~order:8 () in
        let spec =
          Workload.spec ~op_mix:Workload.delete_heavy ~key_space:n ~preload:n ()
        in
        ignore (Driver.preload h ~seed:5 spec);
        let r, comp =
          if compactors = 0 then
            ( Driver.run_ops h ~domains:3 ~ops_per_domain:(scale 30_000) ~seed:5 spec,
              Stats.create () )
          else
            Driver.run_ops_with_compaction raw h ~domains:3 ~compactors
              ~ops_per_domain:(scale 30_000) ~seed:5 spec
        in
        [
          string_of_int compactors;
          Report.fmt_si r.Driver.throughput ^ "/s";
          string_of_int comp.Stats.merges;
          string_of_int (Cqueue.length raw.Handle.queue);
        ])
      [ 0; 1; 2 ]
  in
  Report.table ~header:[ "compactors"; "updater tput"; "merges"; "queue left" ] rows

(* ------------------------------------------------------------------ *)
(* E6: the B-link cost — link chases per search                        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  Report.heading "E6: search cost — link chases vs locks";
  Report.note
    "Claim (§1): a search may be prolonged by moving right through links, \
     but this is more than compensated by taking no locks (lock-coupling \
     readers latch every node; coarse readers serialise behind updaters).";
  let space = scale 200_000 in
  let rows =
    List.map
      (fun (impl : Tree_intf.impl) ->
        let h = impl.Tree_intf.make ~order:16 in
        preload_handle h ~n:(space / 2) ~space;
        let spec =
          Workload.spec ~op_mix:Workload.balanced ~key_space:space ~preload:0 ()
        in
        let r = Driver.run_ops h ~domains:4 ~ops_per_domain:(scale 20_000) ~seed:3 spec in
        let st = r.Driver.stats in
        [
          impl.Tree_intf.impl_name;
          Report.fmt_f ~digits:4 (stats_per_op st st.Stats.link_follows);
          Report.fmt_f (stats_per_op st st.Stats.lock_acquisitions);
          Report.fmt_f (stats_per_op st st.Stats.gets);
          Report.fmt_si r.Driver.throughput ^ "/s";
        ])
      Tree_intf.all
  in
  Report.table
    ~header:[ "tree"; "links/op"; "locks/op"; "node reads/op"; "tput (4 domains)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: emptying a tree takes O(log2 n) compression passes              *)
(* ------------------------------------------------------------------ *)

let e7 () =
  Report.heading "E7: compression passes to empty a tree";
  Report.note "Claim (§5.1): O(log2 n) passes of compress-level empty the tree.";
  let sizes = if !quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  let rows =
    List.map
      (fun n ->
        let t = S.create ~order:2 () in
        let c = ctx ~slot:0 in
        for k = 1 to n do
          ignore (S.insert t c k k)
        done;
        let h0 = S.height t in
        for k = 1 to n do
          ignore (S.delete t c k)
        done;
        let passes = C.compress_to_fixpoint t c in
        [
          string_of_int n;
          string_of_int h0;
          string_of_int passes;
          Report.fmt_f (log (float_of_int n) /. log 2.0);
          string_of_int (S.height t);
        ])
      sizes
  in
  Report.table ~header:[ "keys"; "height before"; "passes"; "log2 n"; "height after" ] rows

(* ------------------------------------------------------------------ *)
(* E8: single-threaded micro-latency (bechamel)                        *)
(* ------------------------------------------------------------------ *)

let e8 () =
  Report.heading "E8: single-threaded micro-latency (bechamel OLS)";
  Report.note "Engineering baseline: per-op latency with no concurrency.";
  let open Bechamel in
  let space = scale 100_000 in
  let tests =
    List.concat_map
      (fun (impl : Tree_intf.impl) ->
        let h = impl.Tree_intf.make ~order:16 in
        preload_handle h ~n:(space / 2) ~space;
        let c = ctx ~slot:0 in
        let rng = Repro_util.Splitmix.create 1 in
        let fresh = ref (10 * space) in
        [
          Test.make
            ~name:(impl.Tree_intf.impl_name ^ "/search")
            (Staged.stage (fun () ->
                 ignore (h.Tree_intf.search c (Repro_util.Splitmix.int rng space))));
          Test.make
            ~name:(impl.Tree_intf.impl_name ^ "/insert")
            (Staged.stage (fun () ->
                 incr fresh;
                 ignore (h.Tree_intf.insert c !fresh 0)));
        ])
      Tree_intf.all
  in
  let test = Test.make_grouped ~name:"trees" tests in
  let benchmarks =
    Benchmark.all
      (Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ())
      [ Toolkit.Instance.monotonic_clock ]
      test
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock benchmarks in
  let rows = ref [] and jrows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> Some e | _ -> None
      in
      let r2 = Analyze.OLS.r_square ols_result in
      let fmt_opt f = function Some v -> f v | None -> "n/a" in
      rows :=
        [
          name;
          fmt_opt (fun e -> Report.fmt_f e ^ " ns") est;
          fmt_opt (Report.fmt_f ~digits:4) r2;
        ]
        :: !rows;
      jrows :=
        J.Obj
          [
            ("bench", J.Str name);
            ("ns_per_op", match est with Some e -> J.Float e | None -> J.Bool false);
            ("r_square", match r2 with Some r -> J.Float r | None -> J.Bool false);
          ]
        :: !jrows)
    results;
  Report.table ~header:[ "bench"; "time/op"; "r^2" ] (List.sort compare !rows);
  record_json "E8"
    (J.List (List.sort (fun a b -> compare (J.to_string a) (J.to_string b)) !jrows))

(* ------------------------------------------------------------------ *)
(* E9: the memory hierarchy — buffer-pool size vs locality             *)
(* ------------------------------------------------------------------ *)

let e9 () =
  Report.heading "E9: disk-resident baseline — buffer pool sweep";
  Report.note
    "The paper's nodes live on secondary storage (§2.2); this runs the \
     sequential B+ tree against the real pager stack (paged file + clock \
     buffer pool) and sweeps the pool size under uniform vs skewed reads.";
  let module D = Disk_btree.Make (Key.Int) in
  let n = scale 100_000 in
  let searches = scale 100_000 in
  let jsweep = ref [] in
  let rows =
    List.concat_map
      (fun (dist_name, dist) ->
        List.map
          (fun frames ->
            let pf = Paged_file.create_memory () in
            let bp = Buffer_pool.create ~frames pf in
            let t = D.create ~order:64 bp in
            for k = 1 to n do
              ignore (D.insert t k k)
            done;
            D.flush t;
            (* measure reads only *)
            let d = Repro_util.Distribution.create ~space:n dist in
            let rng = Repro_util.Splitmix.create 99 in
            let s0 = D.pool_stats t in
            let t0 = Unix.gettimeofday () in
            for _ = 1 to searches do
              ignore (D.search t (1 + Repro_util.Distribution.sample d rng))
            done;
            let dt = Unix.gettimeofday () -. t0 in
            let s1 = D.pool_stats t in
            let hits = s1.Buffer_pool.hits - s0.Buffer_pool.hits in
            let misses = s1.Buffer_pool.misses - s0.Buffer_pool.misses in
            let ratio = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
            let tput = float_of_int searches /. dt in
            jsweep :=
              J.Obj
                [
                  ("dist", J.Str dist_name);
                  ("frames", J.Int frames);
                  ("hit_ratio", J.Float ratio);
                  ("searches_per_s", J.Float tput);
                ]
              :: !jsweep;
            [
              dist_name;
              string_of_int frames;
              Report.fmt_f ~digits:3 ratio;
              Report.fmt_si tput ^ "/s";
            ])
          [ 8; 64; 512; 4096 ])
      [
        ("uniform", Repro_util.Distribution.Uniform);
        ("zipf(0.99)", Repro_util.Distribution.Zipfian 0.99);
      ]
  in
  Report.table ~header:[ "read dist"; "pool frames"; "hit ratio"; "searches/s" ] rows;
  Report.note
    "Same hierarchy under the concurrent tree: Sagiv over the in-memory \
     Store vs over Paged_store (codec + pool + eviction), 4 domains, \
     50/50 search/insert, node cache swept.";
  let domains = 4 in
  let ops_per_domain = scale 40_000 in
  let space = scale 100_000 in
  let spec = Workload.spec ~op_mix:Workload.balanced ~key_space:space ~preload:(space / 2) () in
  let measure h =
    ignore (Driver.preload h ~seed:42 spec);
    let r = Driver.run_ops h ~domains ~ops_per_domain ~seed:42 spec in
    r.Driver.throughput
  in
  let jtrees = ref [] in
  let mem_row =
    let h = (Tree_intf.sagiv ()).Tree_intf.make ~order:16 in
    let tput = measure h in
    jtrees := [ J.Obj [ ("tree", J.Str "sagiv-mem"); ("ops_per_s", J.Float tput) ] ];
    [ "sagiv (mem)"; "-"; Report.fmt_si tput ^ "/s"; "-"; "-" ]
  in
  let disk_rows =
    List.map
      (fun cache_pages ->
        let store = Tree_intf.Paged_int.create_memory ~cache_pages () in
        let t = Tree_intf.Sagiv_disk.create ~order:16 ~store () in
        let h = Tree_intf.(of_ops ~name:"sagiv-disk" (module Sagiv_disk) t) in
        let tput = measure h in
        let s = Tree_intf.Paged_int.pool_stats store in
        jtrees :=
          J.Obj
            [
              ("tree", J.Str "sagiv-disk");
              ("cache_pages", J.Int cache_pages);
              ("ops_per_s", J.Float tput);
              ("pool_misses", J.Int s.Buffer_pool.misses);
              ("pool_writebacks", J.Int s.Buffer_pool.writebacks);
            ]
          :: !jtrees;
        [
          "sagiv (disk)";
          string_of_int cache_pages;
          Report.fmt_si tput ^ "/s";
          string_of_int s.Buffer_pool.misses;
          string_of_int s.Buffer_pool.writebacks;
        ])
      [ 64; 512; 4096 ]
  in
  Report.table
    ~header:[ "tree"; "node cache"; "ops/s"; "faults"; "writebacks" ]
    (mem_row :: disk_rows);
  record_json "E9"
    (J.Obj
       [
         ("pool_sweep", J.List (List.rev !jsweep));
         ("sagiv_hierarchy", J.List (List.rev !jtrees));
       ])

(* ------------------------------------------------------------------ *)
(* E11: disk-resident concurrency — IO stripes + background writer     *)
(* ------------------------------------------------------------------ *)

let e11 () =
  Report.heading "E11: disk-resident concurrency — IO stripes and the background writer";
  Report.note
    "sagiv-disk under a mixed workload with a node cache far smaller than \
     the working set, sweeping the store's IO stripe count (1 stripe = the \
     old single-global-IO-lock regime) and the background writer. On this \
     single-core substrate the gain comes from shorter critical sections \
     (less convoying on one hot mutex) and write-back taken off the fault \
     path — not from parallel disk IO.";
  let space = scale 60_000 in
  let cache_pages = 128 in
  let total_ops = scale 120_000 in
  let spec =
    Workload.spec ~op_mix:Workload.mixed_sid ~key_space:space
      ~preload:(space / 2) ()
  in
  (* Stripe sweep without the writer isolates lock granularity against
     the true PR-1 regime (one global IO lock, inline write-back); the
     writer rows then show what offloading write-back buys on top —
     on one core that is a shorter fault path (stall, wb_inline), not
     throughput, since the extra domain timeshares the same core. *)
  let configs =
    [ (1, false); (4, false); (16, false); (1, true); (4, true); (16, true) ]
  in
  let domain_counts = [ 1; 2; 4 ] in
  (* Throughput under a thrashing cache is noisy run-to-run (allocator /
     scheduler luck); measure each config several times on a fresh store
     and report the median trial, compacting the heap between trials so
     one trial's garbage can't tax the next. Quick mode keeps the CI
     smoke run cheap. *)
  let trials = if !quick then 3 else 5 in
  let run_once stripes writer domains =
    Gc.compact ();
    let raw, h = Tree_intf.sagiv_disk_raw ~cache_pages ~stripes ~order:16 () in
    let store = raw.Handle.store in
    ignore (Driver.preload h ~seed:42 spec);
    let r =
      if writer then
        fst
          (Driver.run_ops_with_aux h ~domains
             ~aux:
               [|
                 (fun ~stop _ctx ->
                   Tree_intf.Paged_int.writer_loop store ~stop);
               |]
             ~ops_per_domain:(total_ops / domains) ~seed:42 spec)
      else
        Driver.run_ops h ~domains ~ops_per_domain:(total_ops / domains)
          ~seed:42 spec
    in
    ( r.Driver.throughput,
      Tree_intf.Paged_int.io_stats store,
      Tree_intf.Paged_int.stripe_count store )
  in
  let tputs = Hashtbl.create 16 in
  let jrows = ref [] in
  let rows =
    List.concat_map
      (fun (stripes, writer) ->
        List.map
          (fun domains ->
            let runs =
              List.init trials (fun _ -> run_once stripes writer domains)
            in
            let sorted =
              List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) runs
            in
            let tput, io, nstripes = List.nth sorted (trials / 2) in
            Hashtbl.replace tputs (stripes, writer, domains) tput;
            jrows :=
              J.Obj
                [
                  ("stripes", J.Int nstripes);
                  ("writer", J.Bool writer);
                  ("domains", J.Int domains);
                  ("ops_per_s", J.Float tput);
                  ("faults", J.Int io.Stats.faults);
                  ("fault_stall_ms", J.Float (1e3 *. io.Stats.fault_stall_s));
                  ("wb_inline", J.Int io.Stats.inline_writebacks);
                  ("wb_queued", J.Int io.Stats.queued_writebacks);
                  ("max_queue_depth", J.Int io.Stats.max_queue_depth);
                  ("max_concurrent_faults", J.Int io.Stats.max_concurrent_faults);
                ]
              :: !jrows;
            [
              string_of_int stripes;
              (if writer then "yes" else "no");
              string_of_int domains;
              Report.fmt_si tput ^ "/s";
              string_of_int io.Stats.faults;
              Report.fmt_f (1e3 *. io.Stats.fault_stall_s) ^ "ms";
              string_of_int io.Stats.inline_writebacks;
              string_of_int io.Stats.queued_writebacks;
              string_of_int io.Stats.max_concurrent_faults;
            ])
          domain_counts)
      configs
  in
  Report.table
    ~header:
      [
        "stripes"; "writer"; "domains"; "tput"; "faults"; "fault stall";
        "wb inline"; "wb queued"; "max conc faults";
      ]
    rows;
  record_json "E11"
    (J.Obj
       [
         ("space", J.Int space);
         ("cache_pages", J.Int cache_pages);
         ("total_ops", J.Int total_ops);
         ("rows", J.List (List.rev !jrows));
       ]);
  match
    ( Hashtbl.find_opt tputs (1, false, 4),
      Hashtbl.find_opt tputs (4, false, 4),
      Hashtbl.find_opt tputs (16, false, 4),
      Hashtbl.find_opt tputs (4, true, 4) )
  with
  | Some base, Some s4, Some s16, Some s4w ->
      Report.note
        (Printf.sprintf
           "verdict @ 4 domains: 4 stripes = %.2fx the 1-stripe (global-lock) \
            control, 16 stripes = %.2fx; 4 stripes + writer = %.2fx"
           (s4 /. base) (s16 /. base) (s4w /. base))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* E12: durability — stop-the-world sync vs WAL group commit           *)
(* ------------------------------------------------------------------ *)

(* Wrap a disk handle so every [every]-th completed write op issues a
   durability call, timing each call into [samples]. [ckpt] = [(n, f)]
   additionally runs checkpoint [f] every [n]-th write op — how a
   WAL-mode store bounds its log (and keeps the log device overwriting
   in place instead of growing under every fsync). *)
let with_timed_commit ~every ~samples ?ckpt (h : Tree_intf.handle) =
  let count = Atomic.make 0 in
  let idx = Atomic.make 0 in
  let tick () =
    let n = Atomic.fetch_and_add count 1 in
    (match ckpt with
    | Some (ck_every, ck) when n mod ck_every = ck_every - 1 -> ck ()
    | _ -> ());
    if n mod every = every - 1 then begin
      let t0 = Unix.gettimeofday () in
      h.Tree_intf.commit ();
      let i = Atomic.fetch_and_add idx 1 in
      if i < Array.length samples then
        samples.(i) <- Unix.gettimeofday () -. t0
    end
  in
  ( {
      h with
      Tree_intf.insert =
        (fun ctx k v ->
          let r = h.Tree_intf.insert ctx k v in
          tick ();
          r);
      delete =
        (fun ctx k ->
          let r = h.Tree_intf.delete ctx k in
          tick ();
          r);
    },
    idx )

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let e12 () =
  Report.heading "E12: durability — sync-every-N vs WAL group commit";
  Report.note
    "Write-heavy mix (10/60/30 search/insert/delete) on a file-backed \
     store (real fsyncs) with a durability point every 10 completed write \
     ops: sync mode serialises a full checkpoint (every dirty page, free \
     chain, dual header, 3 fsyncs) behind one mutex per commit; WAL mode \
     logs just the dirty page images and group-commits with one log \
     fsync (checkpointing every 2000 write ops to truncate the log), \
     commit_batch > 1 letting one leader's fsync cover concurrent \
     committers. Commit latency sampled per durability call.";
  let space = scale 20_000 in
  let total_ops = scale 60_000 in
  let every = 10 in
  let cache_pages = 2048 in
  let spec =
    Workload.spec
      ~op_mix:(Workload.mix ~search:0.1 ~insert:0.6 ~delete:0.3 ())
      ~key_space:space ~preload:(space / 2) ()
  in
  let trials = if !quick then 3 else 5 in
  let domain_counts = [ 1; 2; 4 ] in
  (* (label, wal, commit_batch) *)
  let modes = [ ("sync", false, 1); ("wal", true, 1); ("wal", true, 4) ] in
  let run_once wal commit_batch domains =
    Gc.compact ();
    let path = Filename.temp_file "e12" ".pages" in
    let wal_path = path ^ ".wal" in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ path; wal_path ])
      (fun () ->
        let store =
          if wal then
            Tree_intf.Paged_int.create_file ~cache_pages ~commit_batch
              ~commit_interval:5e-4 ~wal_path path
          else Tree_intf.Paged_int.create_file ~cache_pages path
        in
        let t = Tree_intf.Sagiv_disk.create ~order:16 ~store () in
        let h0 =
          Tree_intf.of_ops
            ~commit:(fun () -> Tree_intf.Sagiv_disk.commit t)
            ~name:"sagiv-disk" (module Tree_intf.Sagiv_disk) t
        in
        ignore (Driver.preload h0 ~seed:4242 spec);
        Tree_intf.Paged_int.flush store;
        let samples = Array.make ((total_ops / every) + domains + 1) 0.0 in
        let ckpt =
          (* WAL mode checkpoints every 2000 write ops (sync mode's every
             commit already is one), truncating the log so later windows
             overwrite it in place. *)
          if wal then Some (2000, fun () -> Tree_intf.Sagiv_disk.flush t)
          else None
        in
        let h, idx = with_timed_commit ~every ~samples ?ckpt h0 in
        let r =
          Driver.run_ops h ~domains ~ops_per_domain:(total_ops / domains)
            ~seed:4242 spec
        in
        let n = min (Atomic.get idx) (Array.length samples) in
        let lat = Array.sub samples 0 n in
        Array.sort Float.compare lat;
        let io = Tree_intf.Paged_int.io_stats store in
        Tree_intf.Paged_int.close store;
        (r.Driver.throughput, lat, io))
  in
  let results = Hashtbl.create 16 in
  let jrows = ref [] in
  let rows =
    List.concat_map
      (fun (label, wal, commit_batch) ->
        List.map
          (fun domains ->
            let runs =
              List.init trials (fun _ -> run_once wal commit_batch domains)
            in
            let sorted =
              List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) runs
            in
            let tput, lat, io = List.nth sorted (trials / 2) in
            let p50 = quantile lat 0.50 and p99 = quantile lat 0.99 in
            Hashtbl.replace results (label, commit_batch, domains)
              (tput, p99);
            jrows :=
              J.Obj
                [
                  ("mode", J.Str label);
                  ("commit_batch", J.Int commit_batch);
                  ("domains", J.Int domains);
                  ("ops_per_s", J.Float tput);
                  ("commits", J.Int (Array.length lat));
                  ("commit_p50_us", J.Float (1e6 *. p50));
                  ("commit_p99_us", J.Float (1e6 *. p99));
                  ("commit_groups", J.Int io.Stats.commit_groups);
                  ("max_commit_group", J.Int io.Stats.max_commit_group);
                  ("wal_records", J.Int io.Stats.wal_records);
                  ("wal_fsyncs", J.Int io.Stats.wal_fsyncs);
                ]
              :: !jrows;
            [
              label;
              string_of_int commit_batch;
              string_of_int domains;
              Report.fmt_si tput ^ "/s";
              string_of_int (Array.length lat);
              Report.fmt_f (1e6 *. p50) ^ "us";
              Report.fmt_f (1e6 *. p99) ^ "us";
              string_of_int io.Stats.commit_groups;
              string_of_int io.Stats.max_commit_group;
              string_of_int io.Stats.wal_fsyncs;
            ])
          domain_counts)
      modes
  in
  Report.table
    ~header:
      [
        "mode"; "batch"; "domains"; "tput"; "commits"; "commit p50";
        "commit p99"; "groups"; "max group"; "log fsyncs";
      ]
    rows;
  record_json "E12"
    (J.Obj
       [
         ("space", J.Int space);
         ("total_ops", J.Int total_ops);
         ("commit_every", J.Int every);
         ("rows", J.List (List.rev !jrows));
       ]);
  match
    ( Hashtbl.find_opt results ("sync", 1, 4),
      Hashtbl.find_opt results ("wal", 1, 4),
      Hashtbl.find_opt results ("wal", 4, 4) )
  with
  | Some (sync_t, sync_p99), Some (w1_t, w1_p99), Some (w4_t, w4_p99) ->
      Report.note
        (Printf.sprintf
           "verdict @ 4 domains: wal batch=1 = %.2fx sync throughput (p99 \
            commit %.0fus vs %.0fus), wal batch=4 = %.2fx (p99 %.0fus)"
           (w1_t /. sync_t) (1e6 *. w1_p99) (1e6 *. sync_p99)
           (w4_t /. sync_t) (1e6 *. w4_p99))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* E10: YCSB-style workloads across the trees                          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  Report.heading "E10: YCSB-style workloads (A/B/C/D/F), 4 domains";
  Report.note
    "Standard cloud-serving mixes on every tree: A 50/50 r/u zipf, B 95/5 \
     zipf, C read-only zipf, D 95/5 fresh-key, F RMW ~ 50/50. Latency \
     percentiles from per-op timing.";
  let space = scale 100_000 in
  let rows =
    List.concat_map
      (fun (wname, w) ->
        List.map
          (fun (impl : Tree_intf.impl) ->
            let h = impl.Tree_intf.make ~order:16 in
            let spec = Workload.ycsb ~key_space:space w in
            ignore (Driver.preload h ~seed:77 spec);
            let r =
              Driver.run_ops ~measure_latency:true h ~domains:4
                ~ops_per_domain:(scale 15_000) ~seed:77 spec
            in
            [
              wname;
              impl.Tree_intf.impl_name;
              Report.fmt_si r.Driver.throughput ^ "/s";
              (match r.Driver.latency with
              | Some hist -> Driver.percentiles_line hist
              | None -> "-");
            ])
          [ Tree_intf.sagiv (); Tree_intf.lehman_yao; Tree_intf.lock_couple_optimistic; Tree_intf.coarse ])
      [ ("A", `A); ("B", `B); ("C", `C); ("D", `D); ("F", `F) ]
  in
  Report.table ~header:[ "ycsb"; "tree"; "tput"; "latency" ] rows

(* ------------------------------------------------------------------ *)
(* A1–A4: ablations of the paper's design choices                      *)
(* ------------------------------------------------------------------ *)

let a1 () =
  Report.heading "A1 (ablation): node order k";
  Report.note
    "Sweep the paper's k (capacity 2k). Larger nodes mean shallower trees \
     and fewer splits but more copying per rewrite.";
  let space = scale 200_000 in
  let rows =
    List.map
      (fun order ->
        let raw, h = Tree_intf.sagiv_raw ~order () in
        let spec = Workload.spec ~op_mix:Workload.balanced ~key_space:space ~preload:(space / 2) () in
        ignore (Driver.preload h ~seed:21 spec);
        let r = Driver.run_ops h ~domains:4 ~ops_per_domain:(scale 20_000) ~seed:21 spec in
        let rep = V.check raw in
        [
          string_of_int order;
          Report.fmt_si r.Driver.throughput ^ "/s";
          string_of_int rep.Validate.height;
          string_of_int rep.Validate.total_nodes;
          Report.fmt_f (stats_per_op r.Driver.stats r.Driver.stats.Stats.gets);
          string_of_int r.Driver.stats.Stats.splits;
        ])
      [ 2; 8; 32; 128 ]
  in
  Report.table
    ~header:[ "k"; "tput (4d)"; "height"; "nodes"; "reads/op"; "splits" ]
    rows

let a2 () =
  Report.heading "A2 (ablation): key distribution";
  Report.note
    "Sequential keys hammer the rightmost path — the worst case for \
     upward split propagation and the motivation for allowing overtaking.";
  let space = scale 200_000 in
  let dists =
    [
      ("uniform", Repro_util.Distribution.Uniform);
      ("zipf(0.99)", Repro_util.Distribution.Zipfian 0.99);
      ("sequential", Repro_util.Distribution.Sequential);
      ("hotspot", Repro_util.Distribution.Hotspot { hot_fraction = 0.1; hot_probability = 0.9 });
    ]
  in
  let rows =
    List.concat_map
      (fun (impl : Tree_intf.impl) ->
        List.map
          (fun (dname, dist) ->
            let h = impl.Tree_intf.make ~order:16 in
            let spec =
              Workload.spec ~op_mix:Workload.balanced ~key_space:space ~dist
                ~preload:(space / 2) ()
            in
            ignore (Driver.preload h ~seed:31 spec);
            let r =
              Driver.run_ops h ~domains:4 ~ops_per_domain:(scale 15_000) ~seed:31 spec
            in
            [
              impl.Tree_intf.impl_name;
              dname;
              Report.fmt_si r.Driver.throughput ^ "/s";
              Report.fmt_f ~digits:4 (stats_per_op r.Driver.stats r.Driver.stats.Stats.link_follows);
            ])
          dists)
      [ Tree_intf.sagiv (); Tree_intf.lehman_yao ]
  in
  Report.table ~header:[ "tree"; "distribution"; "tput (4d)"; "links/op" ] rows

(* Shared body for A3/A4: search-heavy churn over a small tree with tiny
   nodes and several compactors — the regime that maximises the chance a
   reader is en route to a node whose data moves left (case 2). *)
let restart_pressure_run () =
  let space = scale 30_000 in
  let raw, h = Tree_intf.sagiv_raw ~enqueue_on_delete:true ~order:2 () in
  let churn = Workload.mix ~search:0.5 ~insert:0.2 ~delete:0.3 () in
  let spec = Workload.spec ~op_mix:churn ~key_space:space ~preload:space () in
  ignore (Driver.preload h ~seed:77 spec);
  let r, _ =
    Driver.run_ops_with_compaction raw h ~domains:4 ~compactors:4
      ~ops_per_domain:(scale 60_000) ~seed:77 spec
  in
  r

let a3 () =
  Report.heading "A3 (ablation): rewrite order during redistribution";
  Report.note
    "The paper (\u{00A7}5.2, crediting Rechter & Salzberg): rewrite the child \
     that GAINS data first, then the parent, then the other child, to \
     minimise case-(2) reader restarts. Ablation inverts the order.";
  let run label =
    let r = restart_pressure_run () in
    let st = r.Driver.stats in
    [
      label;
      string_of_int st.Stats.restarts;
      string_of_int st.Stats.fwd_follows;
      Report.fmt_si r.Driver.throughput ^ "/s";
    ]
  in
  Restructure.ablate_losing_child_first := false;
  let paper = run "gains-first (paper)" in
  Restructure.ablate_losing_child_first := true;
  let flipped = run "losing-first (ablated)" in
  Restructure.ablate_losing_child_first := false;
  Report.table ~header:[ "rewrite order"; "restarts"; "fwd follows"; "tput" ]
    [ paper; flipped ]

let a4 () =
  Report.heading "A4 (ablation): restart backtracking";
  Report.note
    "\u{00A7}5.2: a restarted process backtracks through its descent stack \
     before resorting to the root. Ablation restarts from the root always.";
  let run label =
    let r = restart_pressure_run () in
    let st = r.Driver.stats in
    [
      label;
      string_of_int st.Stats.restarts;
      Report.fmt_f (stats_per_op st st.Stats.gets);
      Report.fmt_si r.Driver.throughput ^ "/s";
    ]
  in
  Access.backtrack_on_restart := true;
  let paper = run "backtrack (paper)" in
  Access.backtrack_on_restart := false;
  let ablated = run "root-restart (ablated)" in
  Access.backtrack_on_restart := true;
  Report.table ~header:[ "restart policy"; "restarts"; "reads/op"; "tput" ]
    [ paper; ablated ]

(* ------------------------------------------------------------------ *)
(* E13: netbench — pipelined clients over loopback TCP                 *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let module P = Repro_server.Protocol in
  let module Server = Repro_server.Server in
  let module Cl = Repro_client.Client in
  Report.heading "E13: netbench — clients \u{00D7} pipeline depth \u{00D7} durability";
  Report.note
    "An in-process server over loopback TCP, one worker domain per \
     client. mem serves the in-memory tree with fire-and-forget acks; \
     wal serves the file-backed store (real fsyncs) with durable acks — \
     each mutation batch group-commits before its responses flush, so \
     deeper pipelines amortise both the syscalls and the fsync. 50/50 \
     insert/search, per-request service latency from the server's own \
     histogram.";
  let per_client = scale 8_000 in
  let key_space = scale 50_000 in
  let client_counts = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let depths = [ 1; 16; 128 ] in
  let modes = [ "mem"; "wal" ] in
  let jrows = ref [] in
  let run mode clients depth =
    Gc.compact ();
    let cleanup = ref (fun () -> ()) in
    let handle =
      match mode with
      | "mem" -> (Tree_intf.sagiv ()).Tree_intf.make ~order:16
      | _ ->
          let path = Filename.temp_file "e13" ".pages" in
          let wal_path = path ^ ".wal" in
          let store =
            Tree_intf.Paged_int.create_file ~cache_pages:4096 ~commit_batch:8
              ~commit_interval:5e-4 ~wal_path path
          in
          let t = Tree_intf.Sagiv_disk.create ~order:16 ~store () in
          cleanup :=
            (fun () ->
              (try Tree_intf.Paged_int.close store with _ -> ());
              List.iter
                (fun p -> try Sys.remove p with Sys_error _ -> ())
                [ path; wal_path ]);
          Tree_intf.of_ops
            ~commit:(fun () -> Tree_intf.Sagiv_disk.commit t)
            ~range:(Tree_intf.Sagiv_disk.range t)
            ~name:"sagiv-disk"
            (module Tree_intf.Sagiv_disk)
            t
    in
    let srv =
      Server.start ~workers:clients ~durable_acks:(mode = "wal") ~handle
        ~listen:[ Unix.ADDR_INET (Unix.inet_addr_loopback, 0) ]
        ()
    in
    let addr = List.hd (Server.addresses srv) in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init clients (fun d ->
          Domain.spawn (fun () ->
              let c = Cl.connect addr in
              let rng = Random.State.make [| 90_000 + (1000 * d) |] in
              let remaining = ref per_client in
              while !remaining > 0 do
                let n = min depth !remaining in
                let reqs =
                  List.init n (fun _ ->
                      let k = Random.State.int rng key_space in
                      if Random.State.bool rng then P.Insert { key = k; value = k }
                      else P.Search { key = k })
                in
                ignore (Cl.pipeline c reqs);
                remaining := !remaining - n
              done;
              Cl.close c))
    in
    List.iter Domain.join domains;
    let dt = Unix.gettimeofday () -. t0 in
    let m = Server.stats srv in
    Server.stop srv;
    !cleanup ();
    let tput = float_of_int (clients * per_client) /. dt in
    let pq p = 1e6 *. Repro_util.Histogram.percentile m.Stats.latency p in
    let p50 = pq 50.0 and p99 = pq 99.0 in
    jrows :=
      J.Obj
        [
          ("mode", J.Str mode);
          ("clients", J.Int clients);
          ("depth", J.Int depth);
          ("ops_per_s", J.Float tput);
          ("svc_p50_us", J.Float p50);
          ("svc_p99_us", J.Float p99);
          ("max_pipeline", J.Int m.Stats.max_pipeline);
          ("acked_commits", J.Int m.Stats.acked_commits);
          ("bytes_in", J.Int m.Stats.bytes_in);
          ("bytes_out", J.Int m.Stats.bytes_out);
        ]
      :: !jrows;
    [
      mode;
      string_of_int clients;
      string_of_int depth;
      Report.fmt_si tput ^ "/s";
      Report.fmt_f p50 ^ "us";
      Report.fmt_f p99 ^ "us";
      string_of_int m.Stats.max_pipeline;
      string_of_int m.Stats.acked_commits;
    ]
  in
  let rows =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun clients -> List.map (run mode clients) depths)
          client_counts)
      modes
  in
  Report.table
    ~header:
      [
        "mode"; "clients"; "depth"; "tput"; "svc p50"; "svc p99";
        "max pipeline"; "commits";
      ]
    rows;
  record_json "E13"
    (J.Obj
       [
         ("per_client_ops", J.Int per_client);
         ("key_space", J.Int key_space);
         ("rows", J.List (List.rev !jrows));
       ])

(* ------------------------------------------------------------------ *)
(* E14: sharded netbench — shards x domains x durability             *)
(* ------------------------------------------------------------------ *)

let e14 () =
  let module P = Repro_server.Protocol in
  let module Server = Repro_server.Server in
  let module Cl = Repro_client.Client in
  let module SS = Tree_intf.Sharded_int in
  Report.heading "E14: sharded netbench — shards \u{00D7} domains \u{00D7} durability";
  Report.note
    "The file-backed server (4 worker domains) behind the partition \
     layer: N independent store+WAL shards, keys routed by hash, each \
     drained batch group-committing only the shards it touched before \
     its responses flush (durable acks in both modes). Each connection \
     works one fixed hash stripe of the keyspace (stripe = router hash \
     mod 8), so a batch's mutations land on one shard at every swept \
     shard count — the affinity the batch router exploits. sync \
     degrades every ack-covering commit to a serialised full checkpoint \
     — one durability point for the whole keyspace, no absorption — \
     while wal gives each shard its own commit mutex, group-commit \
     leader and log fsync stream, so a shard's connections absorb into \
     one fsync and independent shards' fsyncs overlap. Group gathering \
     is left at the default (every commit request seals immediately), \
     so the commit stream itself is the contended resource. Mixed \
     1/4 insert, 1/4 delete, 1/2 search over a preloaded keyspace.";
  let total_ops = scale 48_000 in
  let key_space = scale 50_000 in
  let workers = 4 in
  let shard_counts = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let conn_counts = if !quick then [ 16 ] else [ 4; 16 ] in
  let depth = 4 in
  let modes = [ "sync"; "wal" ] in
  (* Stripe the keyspace by the router hash at the finest swept shard
     count: stripe s holds the keys that land on shard s when shards=8,
     and — because [mix k mod 2^j] is determined by [mix k mod 2^k] for
     j <= k — on shard [s mod n] for every swept n. Client d draws only
     from stripe [d mod 8], holding the key population fixed across rows
     while giving every batch single-shard affinity. *)
  let stripe_keys =
    let buckets = Array.make 8 [] in
    for k = key_space - 1 downto 0 do
      let s = Repro_storage.Shard_router.shard_of ~shards:8 k in
      buckets.(s) <- k :: buckets.(s)
    done;
    Array.map Array.of_list buckets
  in
  let jrows = ref [] in
  let run mode shards conns =
    Gc.compact ();
    let per_conn = total_ops / conns in
    let path = Filename.temp_file "e14" ".pages" in
    let wal_path = path ^ ".wal" in
    let sst =
      if mode = "wal" then SS.create_file ~cache_pages:2048 ~wal_path ~shards path
      else SS.create_file ~cache_pages:2048 ~shards path
    in
    let _trees, handle = Tree_intf.sagiv_disk_sharded_on ~order:16 sst in
    (* Preload the whole keyspace before timing: the working set then
       overflows a single shard's buffer pool (the partition layer gives
       each shard its own), and the timed mutations land on a fully
       built tree. *)
    let pctx = ctx ~slot:0 in
    for k = 0 to key_space - 1 do
      ignore (handle.Tree_intf.insert pctx k k)
    done;
    handle.Tree_intf.commit ();
    let srv =
      Server.start ~workers ~durable_acks:true ~handle
        ~listen:[ Unix.ADDR_INET (Unix.inet_addr_loopback, 0) ]
        ()
    in
    let addr = List.hd (Server.addresses srv) in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init conns (fun d ->
          Domain.spawn (fun () ->
              let c = Cl.connect addr in
              let rng = Random.State.make [| 91_000 + (1000 * d) |] in
              let keys = stripe_keys.(d mod 8) in
              let nkeys = Array.length keys in
              let remaining = ref per_conn in
              while !remaining > 0 do
                let n = min depth !remaining in
                let reqs =
                  List.init n (fun _ ->
                      let k = keys.(Random.State.int rng nkeys) in
                      match Random.State.int rng 4 with
                      | 0 -> P.Insert { key = k; value = k }
                      | 1 -> P.Delete { key = k }
                      | _ -> P.Search { key = k })
                in
                ignore (Cl.pipeline_sharded c ~shards reqs);
                remaining := !remaining - n
              done;
              Cl.close c))
    in
    List.iter Domain.join domains;
    let dt = Unix.gettimeofday () -. t0 in
    let m = Server.stats srv in
    Server.stop srv;
    let io = SS.io_stats sst in
    (try SS.close sst with _ -> ());
    (try Sys.remove path with Sys_error _ -> ());
    for i = 0 to shards - 1 do
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ SS.shard_path path i; SS.shard_path wal_path i ]
    done;
    let tput = float_of_int (conns * per_conn) /. dt in
    let pq p = 1e6 *. Repro_util.Histogram.percentile m.Stats.latency p in
    let p50 = pq 50.0 and p99 = pq 99.0 in
    let shard_acks = Array.to_list m.Stats.shard_acks in
    jrows :=
      J.Obj
        [
          ("mode", J.Str mode);
          ("shards", J.Int shards);
          ("workers", J.Int workers);
          ("conns", J.Int conns);
          ("depth", J.Int depth);
          ("ops_per_s", J.Float tput);
          ("svc_p50_us", J.Float p50);
          ("svc_p99_us", J.Float p99);
          ("acked_commits", J.Int m.Stats.acked_commits);
          ("shard_acks", J.List (List.map (fun n -> J.Int n) shard_acks));
          ("wal_fsyncs", J.Int io.Stats.wal_fsyncs);
          ("wal_records", J.Int io.Stats.wal_records);
        ]
      :: !jrows;
    [
      mode;
      string_of_int shards;
      string_of_int conns;
      Report.fmt_si tput ^ "/s";
      Report.fmt_f p50 ^ "us";
      Report.fmt_f p99 ^ "us";
      string_of_int m.Stats.acked_commits;
      String.concat "/" (List.map string_of_int shard_acks);
    ]
  in
  let rows =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun shards -> List.map (run mode shards) conn_counts)
          shard_counts)
      modes
  in
  Report.table
    ~header:
      [
        "mode"; "shards"; "conns"; "tput"; "svc p50"; "svc p99"; "commits";
        "shard acks";
      ]
    rows;
  record_json "E14"
    (J.Obj
       [
         ("total_ops", J.Int total_ops);
         ("key_space", J.Int key_space);
         ("workers", J.Int workers);
         ("depth", J.Int depth);
         ("rows", J.List (List.rev !jrows));
       ])

(* ------------------------------------------------------------------ *)
(* E15: hot-key combining — zipf theta x combine mode x durability    *)
(* ------------------------------------------------------------------ *)

let e15 () =
  let module P = Repro_server.Protocol in
  let module Server = Repro_server.Server in
  let module Cl = Repro_client.Client in
  Report.heading
    "E15: hot-key combining — zipf \u{03B8} \u{00D7} combine mode \u{00D7} durability";
  Report.note
    "Cache-fill traffic (insert-if-absent + lookup, 50/50) over a fully \
     preloaded keyspace, keys drawn Zipfian per connection. Every insert \
     is a duplicate, so batch-level dedup can elide repeats behind their \
     in-batch anchor, piggy-back hot searches on already-known outcomes, \
     and — when a whole drained batch turns out to be tree no-ops — skip \
     the durable-ack group commit entirely. leaf adds the combining \
     array under the tree, collapsing cross-connection hot-key storms \
     into one lock acquisition. off/batch/leaf/both sweep the two knobs; \
     wal pays a real fsync per acked batch, mem is fire-and-forget.";
  let per_conn = scale 10_000 in
  let key_space = scale 20_000 in
  let workers = 4 in
  let conns = 8 in
  let depth = 64 in
  let thetas =
    if !quick then [ ("uniform", Repro_util.Distribution.Uniform); ("0.99", Repro_util.Distribution.Zipfian 0.99) ]
    else
      [
        ("uniform", Repro_util.Distribution.Uniform);
        ("0.60", Repro_util.Distribution.Zipfian 0.6);
        ("0.90", Repro_util.Distribution.Zipfian 0.9);
        ("0.99", Repro_util.Distribution.Zipfian 0.99);
        ("1.20", Repro_util.Distribution.Zipfian 1.2);
      ]
  in
  let combine_modes =
    if !quick then [ "off"; "both" ] else [ "off"; "batch"; "leaf"; "both" ]
  in
  let backends = [ "mem"; "wal" ] in
  (* Sorted (key, value) pairs for the bulk preload: the whole keyspace,
     so the timed inserts are all duplicates (insert-if-absent no-ops). *)
  let preload_full handle =
    let pairs = List.init key_space (fun k -> (k, k)) in
    let bulk_loaded =
      match handle.Tree_intf.bulk_add with Some bulk -> bulk pairs | None -> false
    in
    if not bulk_loaded then begin
      let c = ctx ~slot:0 in
      List.iter (fun (k, v) -> ignore (handle.Tree_intf.insert c k v)) pairs
    end
  in
  let jrows = ref [] in
  let run backend (theta_label, dist_kind) combine =
    Gc.compact ();
    let combine_batch = combine = "batch" || combine = "both" in
    let combine_leaf = combine = "leaf" || combine = "both" in
    let cleanup = ref (fun () -> ()) in
    let handle =
      match backend with
      | "mem" -> (Tree_intf.sagiv ()).Tree_intf.make ~order:16
      | _ ->
          let path = Filename.temp_file "e15" ".pages" in
          let wal_path = path ^ ".wal" in
          let store =
            Tree_intf.Paged_int.create_file ~cache_pages:4096 ~commit_batch:8
              ~commit_interval:5e-4 ~wal_path path
          in
          let t = Tree_intf.Sagiv_disk.create ~order:16 ~store () in
          cleanup :=
            (fun () ->
              (try Tree_intf.Paged_int.close store with _ -> ());
              List.iter
                (fun p -> try Sys.remove p with Sys_error _ -> ())
                [ path; wal_path ]);
          Tree_intf.of_ops
            ~commit:(fun () -> Tree_intf.Sagiv_disk.commit t)
            ~range:(Tree_intf.Sagiv_disk.range t)
            ~bulk_add:(fun ?fill ps -> Tree_intf.Sagiv_disk.bulk_add ?fill t ps)
            ~name:"sagiv-disk"
            (module Tree_intf.Sagiv_disk)
            t
    in
    preload_full handle;
    handle.Tree_intf.commit ();
    let comb, handle =
      if combine_leaf then
        let c, h = Tree_intf.with_combining handle in
        (Some c, h)
      else (None, handle)
    in
    let srv =
      Server.start ~workers ~durable_acks:(backend = "wal") ~combine_batch
        ~handle
        ~listen:[ Unix.ADDR_INET (Unix.inet_addr_loopback, 0) ]
        ()
    in
    let addr = List.hd (Server.addresses srv) in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init conns (fun d ->
          Domain.spawn (fun () ->
              let c = Cl.connect addr in
              let rng = Repro_util.Splitmix.create (95_000 + (1000 * d)) in
              let dist =
                Repro_util.Distribution.create ~space:key_space dist_kind
              in
              let remaining = ref per_conn in
              while !remaining > 0 do
                let n = min depth !remaining in
                let reqs =
                  List.init n (fun _ ->
                      let k = Repro_util.Distribution.sample dist rng in
                      if Repro_util.Splitmix.int rng 2 = 0 then
                        P.Insert { key = k; value = k }
                      else P.Search { key = k })
                in
                ignore (Cl.pipeline c reqs);
                remaining := !remaining - n
              done;
              Cl.close c))
    in
    List.iter Domain.join domains;
    let dt = Unix.gettimeofday () -. t0 in
    let m = Server.stats srv in
    Server.stop srv;
    !cleanup ();
    let tput = float_of_int (conns * per_conn) /. dt in
    let pq p = 1e6 *. Repro_util.Histogram.percentile m.Stats.latency p in
    let p50 = pq 50.0 and p99 = pq 99.0 in
    let cc =
      match comb with
      | None -> []
      | Some c ->
          let k = Combine.counters c in
          [
            ("leaf_registered", J.Int k.Combine.c_registered);
            ("leaf_installs", J.Int k.Combine.c_installs);
            ("leaf_combined", J.Int k.Combine.c_combined);
            ("leaf_applied", J.Int k.Combine.c_applied);
          ]
    in
    jrows :=
      J.Obj
        ([
           ("backend", J.Str backend);
           ("theta", J.Str theta_label);
           ("combine", J.Str combine);
           ("ops_per_s", J.Float tput);
           ("svc_p50_us", J.Float p50);
           ("svc_p99_us", J.Float p99);
           ("elided", J.Int m.Stats.elided);
           ("piggybacked", J.Int m.Stats.piggybacked);
           ("commits_skipped", J.Int m.Stats.commits_skipped);
           ("acked_commits", J.Int m.Stats.acked_commits);
         ]
        @ cc)
      :: !jrows;
    [
      backend;
      theta_label;
      combine;
      Report.fmt_si tput ^ "/s";
      Report.fmt_f p50 ^ "us";
      string_of_int m.Stats.elided;
      string_of_int m.Stats.piggybacked;
      string_of_int m.Stats.commits_skipped;
      string_of_int m.Stats.acked_commits;
    ]
  in
  let rows =
    List.concat_map
      (fun backend ->
        List.concat_map
          (fun theta -> List.map (run backend theta) combine_modes)
          thetas)
      backends
  in
  Report.table
    ~header:
      [
        "backend"; "\u{03B8}"; "combine"; "tput"; "svc p50"; "elided";
        "piggyback"; "skipped"; "commits";
      ]
    rows;
  record_json "E15"
    (J.Obj
       [
         ("per_conn_ops", J.Int per_conn);
         ("key_space", J.Int key_space);
         ("workers", J.Int workers);
         ("conns", J.Int conns);
         ("depth", J.Int depth);
         ("rows", J.List (List.rev !jrows));
       ])

(* ------------------------------------------------------------------ *)
(* E16: log-shipping replication — followers vs standalone             *)
(* ------------------------------------------------------------------ *)

let e16 () =
  let module P = Repro_server.Protocol in
  let module Server = Repro_server.Server in
  let module Cl = Repro_client.Client in
  let module R = Repro_client.Replica in
  let module PS = Tree_intf.Paged_int in
  let module Sg = Tree_intf.Sagiv_disk in
  Report.heading "E16: log-shipping replication — followers \u{00D7} write load";
  Report.note
    "A WAL primary over loopback TCP with N socket followers pulling \
     the commit stream (SUBSCRIBE) while 2 writer clients pipeline \
     durable-acked inserts. Reported: primary write throughput with the \
     shipping running, the followers' catch-up lag once the writers \
     stop, and read throughput against one caught-up replica at its \
     horizon. One machine serves everything, so followers compete with \
     the primary for the same cores — the follower columns price the \
     machinery, not a second box.";
  let writers = 2 in
  let per_writer = scale 6_000 in
  let key_space = scale 20_000 in
  let depth = 64 in
  let reads = scale 60_000 in
  let follower_counts = if !quick then [ 0; 1 ] else [ 0; 1; 2; 4 ] in
  let jrows = ref [] in
  let run followers =
    Gc.compact ();
    let path = Filename.temp_file "e16" ".pages" in
    let wal_path = path ^ ".wal" in
    let store =
      PS.create_file ~cache_pages:4096 ~commit_batch:8 ~commit_interval:5e-4
        ~wal_path path
    in
    let t = Sg.create ~order:16 ~store () in
    let handle =
      Tree_intf.of_ops
        ~commit:(fun () -> Sg.commit t)
        ~range:(Sg.range t) ~name:"sagiv-disk" (module Sg) t
    in
    let wal_source =
      {
        Server.ws_shards = 1;
        ws_fetch =
          (fun ~shard:_ ~lsn ~max_pages -> PS.wal_fetch store ~lsn ~max_pages);
        ws_wait =
          (fun ~shard:_ ~lsn ~timeout -> PS.wal_wait store ~lsn ~timeout);
      }
    in
    let srv =
      Server.start ~workers:(writers + followers) ~durable_acks:true
        ~wal_source ~handle
        ~listen:[ Unix.ADDR_INET (Unix.inet_addr_loopback, 0) ]
        ()
    in
    let addr = List.hd (Server.addresses srv) in
    let writers_done = Atomic.make false in
    let t_done = ref 0.0 in
    (* each follower pulls until it is caught up *after* the writers
       stopped; its lag is measured from that stop *)
    let follower_domains =
      List.init followers (fun _ ->
          Domain.spawn (fun () ->
              let r = R.create () in
              let c = Cl.connect addr in
              let rec pull () =
                match R.poll ~wait_ms:50 r c with
                | `Applied _ -> pull ()
                | `Caught_up ->
                    if Atomic.get writers_done then
                      Unix.gettimeofday () -. !t_done
                    else pull ()
              in
              let lag = pull () in
              Cl.close c;
              (r, lag)))
    in
    let t0 = Unix.gettimeofday () in
    let writer_domains =
      List.init writers (fun d ->
          Domain.spawn (fun () ->
              let c = Cl.connect addr in
              let rng = Random.State.make [| 160_000 + (1000 * d) |] in
              let remaining = ref per_writer in
              while !remaining > 0 do
                let n = min depth !remaining in
                let reqs =
                  List.init n (fun _ ->
                      let k = Random.State.int rng key_space in
                      P.Insert { key = k; value = k })
                in
                ignore (Cl.pipeline c reqs);
                remaining := !remaining - n
              done;
              Cl.close c))
    in
    List.iter Domain.join writer_domains;
    let dt = Unix.gettimeofday () -. t0 in
    t_done := Unix.gettimeofday ();
    Atomic.set writers_done true;
    let replicas = List.map Domain.join follower_domains in
    let catchup_ms =
      List.fold_left (fun acc (_, lag) -> Float.max acc (lag *. 1e3)) 0.0
        replicas
    in
    (* read throughput against one caught-up replica, in process *)
    let read_tput =
      match replicas with
      | [] -> 0.0
      | (r, _) :: _ ->
          let ctx = Repro_core.Handle.ctx ~slot:0 in
          let rng = Random.State.make [| 170_000 |] in
          let tr = Unix.gettimeofday () in
          for _ = 1 to reads do
            ignore (R.search r ctx (Random.State.int rng key_space))
          done;
          float_of_int reads /. (Unix.gettimeofday () -. tr)
    in
    let primary_card = handle.Tree_intf.cardinal () in
    (match replicas with
    | (r, _) :: _ when R.cardinal r <> primary_card ->
        failwith
          (Printf.sprintf "E16: replica diverged (%d keys vs %d)"
             (R.cardinal r) primary_card)
    | _ -> ());
    Server.stop srv;
    (try PS.close store with _ -> ());
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; wal_path ];
    let tput = float_of_int (writers * per_writer) /. dt in
    jrows :=
      J.Obj
        [
          ("followers", J.Int followers);
          ("write_ops_per_s", J.Float tput);
          ("catchup_ms", J.Float catchup_ms);
          ("replica_read_ops_per_s", J.Float read_tput);
          ("primary_cardinal", J.Int primary_card);
        ]
      :: !jrows;
    [
      string_of_int followers;
      Report.fmt_si tput ^ "/s";
      Report.fmt_f catchup_ms ^ "ms";
      (if followers = 0 then "-" else Report.fmt_si read_tput ^ "/s");
    ]
  in
  let rows = List.map run follower_counts in
  Report.table
    ~header:[ "followers"; "write tput"; "catch-up"; "replica reads" ]
    rows;
  record_json "E16"
    (J.Obj
       [
         ("writers", J.Int writers);
         ("per_writer_ops", J.Int per_writer);
         ("key_space", J.Int key_space);
         ("depth", J.Int depth);
         ("replica_reads", J.Int reads);
         ("rows", J.List (List.rev !jrows));
       ])

(* ------------------------------------------------------------------ *)
(* E17: MVCC snapshot scans — scan throughput and writer degradation   *)
(* ------------------------------------------------------------------ *)

let e17 () =
  Report.heading "E17: MVCC snapshot scans — writer degradation under pinned scans";
  Report.note
    "Version-stamped Sagiv trees (single and 4-shard group): 4 writer \
     domains run a mixed mutation load while N scanner domains loop \
     pin-snapshot \u{2192} full consistent range \u{2192} vacuum \u{2192} release. \
     Writers never stall on a pin (they only append versions); the cost \
     is version-chain growth bounded by the vacuum riding each sweep. \
     On a timeshared substrate a busy scanner also steals raw CPU from \
     the writers, so each scan row is paired with a control run whose N \
     aux domains spin without touching the tree: 'vs ctrl' is the \
     degradation attributable to MVCC scanning itself (acceptance: \
     within 20% of the control), 'vs idle' the raw ratio against the \
     0-scanner baseline. Version gauges are read at the end of the run.";
  let space = scale 100_000 in
  let preload = space / 2 in
  let ops = scale 30_000 in
  let domains = 4 in
  let spec =
    Workload.spec ~op_mix:Workload.mixed_sid ~key_space:space ~preload ()
  in
  let scanner_counts = [ 0; 1; 2 ] in
  let impls =
    [ Tree_intf.sagiv_mvcc (); Tree_intf.sagiv_mvcc_sharded ~shards:4 () ]
  in
  let jrows = ref [] in
  let baselines = Hashtbl.create 4 in
  (* one timed workload run: [aux_of h m] builds the aux domain array
     (spinner controls or live scanners) for a fresh preloaded handle *)
  let timed_run (impl : Tree_intf.impl) aux_of =
    Gc.compact ();
    let h = impl.Tree_intf.make ~order:16 in
    let m =
      match h.Tree_intf.mvcc with
      | Some m -> m
      | None -> failwith "E17 needs an mvcc handle"
    in
    ignore (Driver.preload h ~seed:17 spec);
    let aux = aux_of m in
    let r =
      if Array.length aux = 0 then
        Driver.run_ops h ~domains ~ops_per_domain:ops ~seed:17 spec
      else
        fst
          (Driver.run_ops_with_aux h ~domains ~aux ~ops_per_domain:ops
             ~seed:17 spec)
    in
    (r, m.Tree_intf.gauges ())
  in
  let spinner ~stop _c =
    (* CPU-equivalent control: burn the same timeshared core without
       touching the tree, so the scan rows' ratio against this isolates
       the MVCC interference from plain CPU stealing *)
    while not (Atomic.get stop) do
      for _ = 1 to 1000 do
        Domain.cpu_relax ()
      done
    done
  in
  (* throughput under a timeshared core is noisy run-to-run; measure
     each (config, paired control) several times and report the trial
     with the median acceptance ratio *)
  let trials = if !quick then 1 else 3 in
  let rows =
    List.concat_map
      (fun (impl : Tree_intf.impl) ->
        List.map
          (fun scanners ->
            let one_trial () =
              let sweeps = Atomic.make 0 in
              let pairs_seen = Atomic.make 0 in
              let scan_time = Atomic.make 0 (* microseconds, summed *) in
              let scanner m ~stop c =
                while not (Atomic.get stop) do
                  let t0 = Unix.gettimeofday () in
                  let s = m.Tree_intf.snapshot () in
                  let pairs = s.Tree_intf.snap_range c ~lo:0 ~hi:space in
                  (* reclamation rides the scan loop: prune version
                     tails that fell behind every pin, then drop ours *)
                  ignore (m.Tree_intf.vacuum c : int);
                  s.Tree_intf.snap_release ();
                  Atomic.incr sweeps;
                  ignore
                    (Atomic.fetch_and_add pairs_seen (List.length pairs)
                      : int);
                  ignore
                    (Atomic.fetch_and_add scan_time
                       (int_of_float (1e6 *. (Unix.gettimeofday () -. t0)))
                      : int)
                done
              in
              let control =
                if scanners = 0 then None
                else
                  Some
                    (fst
                       (timed_run impl (fun _m ->
                            Array.make scanners (fun ~stop c ->
                                spinner ~stop c))))
              in
              let r, g =
                timed_run impl (fun m ->
                    Array.make scanners (fun ~stop c -> scanner m ~stop c))
              in
              let vs_ctrl =
                match control with
                | None -> 1.0
                | Some c -> r.Driver.throughput /. c.Driver.throughput
              in
              let pair_rate =
                let us = Atomic.get scan_time in
                if us = 0 then 0.0
                else
                  1e6
                  *. float_of_int (Atomic.get pairs_seen)
                  /. float_of_int us
              in
              (vs_ctrl, r, g, control, Atomic.get sweeps, pair_rate)
            in
            let runs = List.init trials (fun _ -> one_trial ()) in
            let sorted =
              List.sort
                (fun (a, _, _, _, _, _) (b, _, _, _, _, _) ->
                  Float.compare a b)
                runs
            in
            let vs_ctrl, r, g, control, sweeps_n, pair_rate =
              List.nth sorted (trials / 2)
            in
            if scanners = 0 then
              Hashtbl.replace baselines impl.Tree_intf.impl_name
                r.Driver.throughput;
            let base =
              Option.value ~default:r.Driver.throughput
                (Hashtbl.find_opt baselines impl.Tree_intf.impl_name)
            in
            let vs_idle = r.Driver.throughput /. base in
            let sweep_rate = float_of_int sweeps_n /. r.Driver.elapsed_s in
            jrows :=
              J.Obj
                [
                  ("impl", J.Str impl.Tree_intf.impl_name);
                  ("scanners", J.Int scanners);
                  ("writer_ops_per_s", J.Float r.Driver.throughput);
                  ( "control_ops_per_s",
                    match control with
                    | Some c -> J.Float c.Driver.throughput
                    | None -> J.Float r.Driver.throughput );
                  ("vs_idle", J.Float vs_idle);
                  ("vs_control", J.Float vs_ctrl);
                  ("sweeps", J.Int sweeps_n);
                  ("sweeps_per_s", J.Float sweep_rate);
                  ("scan_pairs_per_s", J.Float pair_rate);
                  ("live_versions", J.Int g.Tree_intf.g_live_versions);
                  ("pruned_versions", J.Int g.Tree_intf.g_pruned_versions);
                ]
              :: !jrows;
            [
              impl.Tree_intf.impl_name;
              string_of_int scanners;
              Report.fmt_si r.Driver.throughput ^ "/s";
              Report.fmt_f ~digits:3 vs_idle;
              (if scanners = 0 then "-" else Report.fmt_f ~digits:3 vs_ctrl);
              string_of_int sweeps_n;
              (if scanners = 0 then "-" else Report.fmt_si pair_rate ^ "/s");
              string_of_int g.Tree_intf.g_live_versions;
              string_of_int g.Tree_intf.g_pruned_versions;
            ])
          scanner_counts)
      impls
  in
  Report.table
    ~header:
      [
        "impl"; "scanners"; "writer tput"; "vs idle"; "vs ctrl"; "sweeps";
        "scan pairs"; "versions"; "pruned";
      ]
    rows;
  (* (b) the price of the consistent read path itself: one quiescent
     full sweep, weak leaf-chain range vs pinned snap_range *)
  let quiescent_rows, jquiet =
    let weak =
      let h = (Tree_intf.sagiv ()).Tree_intf.make ~order:16 in
      ignore (Driver.preload h ~seed:17 spec);
      let c = ctx ~slot:0 in
      let range = Option.get h.Tree_intf.range in
      let t0 = Unix.gettimeofday () in
      let n = List.length (range c ~lo:0 ~hi:space) in
      let dt = Unix.gettimeofday () -. t0 in
      ("sagiv leaf-chain (weak)", n, float_of_int n /. dt)
    in
    let snap =
      let h = (Tree_intf.sagiv_mvcc ()).Tree_intf.make ~order:16 in
      ignore (Driver.preload h ~seed:17 spec);
      let m = Option.get h.Tree_intf.mvcc in
      let c = ctx ~slot:0 in
      let s = m.Tree_intf.snapshot () in
      let t0 = Unix.gettimeofday () in
      let n = List.length (s.Tree_intf.snap_range c ~lo:0 ~hi:space) in
      let dt = Unix.gettimeofday () -. t0 in
      s.Tree_intf.snap_release ();
      ("sagiv-mvcc snap_range", n, float_of_int n /. dt)
    in
    let rows =
      List.map
        (fun (name, n, rate) ->
          [ name; string_of_int n; Report.fmt_si rate ^ "/s" ])
        [ weak; snap ]
    in
    let j =
      List.map
        (fun (name, n, rate) ->
          J.Obj
            [
              ("source", J.Str name);
              ("pairs", J.Int n);
              ("pairs_per_s", J.Float rate);
            ])
        [ weak; snap ]
    in
    (rows, j)
  in
  Report.note "(b) quiescent full-sweep read path:";
  Report.table ~header:[ "scan source"; "pairs"; "pairs/s" ] quiescent_rows;
  record_json "E17"
    (J.Obj
       [
         ("space", J.Int space);
         ("preload", J.Int preload);
         ("writer_domains", J.Int domains);
         ("ops_per_domain", J.Int ops);
         ("rows", J.List (List.rev !jrows));
         ("quiescent", J.List jquiet);
       ]);
  List.iter
    (fun (impl : Tree_intf.impl) ->
      match Hashtbl.find_opt baselines impl.Tree_intf.impl_name with
      | None -> ()
      | Some base ->
          let worst =
            List.fold_left
              (fun acc j ->
                match j with
                | J.Obj kvs
                  when List.assoc_opt "impl" kvs
                       = Some (J.Str impl.Tree_intf.impl_name) -> (
                    match List.assoc_opt "vs_control" kvs with
                    | Some (J.Float r) -> Float.min acc r
                    | _ -> acc)
                | _ -> acc)
              1.0 !jrows
          in
          Report.note
            (Printf.sprintf
               "verdict %s: worst writer throughput under scans = %.2fx the \
                CPU-equivalent control (idle baseline %s/s) — %s"
               impl.Tree_intf.impl_name worst (Report.fmt_si base)
               (if worst >= 0.8 then "within the 20% acceptance bound"
                else "OUTSIDE the 20% acceptance bound")))
    impls

(* ------------------------------------------------------------------ *)
(* E18: durable MVCC — disk-backed writer throughput under pinned     *)
(* scans, and vrec codec density (v3 varint vs v2 fixed-width)        *)
(* ------------------------------------------------------------------ *)

let e18 () =
  Report.heading
    "E18: durable MVCC — disk backend under pinned scans + vrec codec density";
  Report.note
    "(a) Version chains persisted through the paged store (single and \
     4-shard WAL-backed stores): 4 writer domains run the mixed load \
     while a committer domain drives the durable group-commit cadence \
     (each commit re-serializes the dirty version-chain groups into \
     vrec pages inside the same batch as the tree pages) and N scanner \
     domains loop pin \u{2192} consistent sweep \u{2192} vacuum \u{2192} release. \
     'vs idle' is writer throughput against the 0-scanner baseline of \
     the same durable config — the added cost of scanning + chain \
     persistence churn. (b) prices the vrec page encoding itself: the \
     same group stream framed as a v3 varint vrec page vs the v2 \
     fixed-width layout, in bytes per key.";
  let space = scale 50_000 in
  let preload = space / 2 in
  let ops = scale 15_000 in
  let domains = 4 in
  let spec =
    Workload.spec ~op_mix:Workload.mixed_sid ~key_space:space ~preload ()
  in
  let scanner_counts = if !quick then [ 0; 1 ] else [ 0; 1; 2 ] in
  let impls =
    [ Tree_intf.sagiv_mvcc_disk ~shards:1 (); Tree_intf.sagiv_mvcc_disk ~shards:4 () ]
  in
  let jrows = ref [] in
  let baselines = Hashtbl.create 4 in
  let trials = if !quick then 1 else 3 in
  let rows =
    List.concat_map
      (fun (impl : Tree_intf.impl) ->
        List.map
          (fun scanners ->
            let one_trial () =
              Gc.compact ();
              let h = impl.Tree_intf.make ~order:16 in
              let m =
                match h.Tree_intf.mvcc with
                | Some m -> m
                | None -> failwith "E18 needs an mvcc handle"
              in
              ignore (Driver.preload h ~seed:18 spec);
              h.Tree_intf.commit ();
              let sweeps = Atomic.make 0 in
              let pairs_seen = Atomic.make 0 in
              let commits = Atomic.make 0 in
              let committer ~stop _c =
                (* the durable cadence: chains become crash-safe here *)
                while not (Atomic.get stop) do
                  h.Tree_intf.commit ();
                  Atomic.incr commits;
                  Unix.sleepf 0.002
                done;
                h.Tree_intf.commit ()
              in
              let scanner ~stop c =
                while not (Atomic.get stop) do
                  let s = m.Tree_intf.snapshot () in
                  let pairs = s.Tree_intf.snap_range c ~lo:0 ~hi:space in
                  ignore (m.Tree_intf.vacuum c : int);
                  s.Tree_intf.snap_release ();
                  Atomic.incr sweeps;
                  ignore
                    (Atomic.fetch_and_add pairs_seen (List.length pairs) : int)
                done
              in
              let aux =
                Array.init (1 + scanners) (fun i ->
                    if i = 0 then committer else scanner)
              in
              let r, _aux_stats =
                Driver.run_ops_with_aux h ~domains ~aux ~ops_per_domain:ops
                  ~seed:18 spec
              in
              (r, m.Tree_intf.gauges (), Atomic.get sweeps,
               Atomic.get pairs_seen, Atomic.get commits)
            in
            let runs = List.init trials (fun _ -> one_trial ()) in
            let sorted =
              List.sort
                (fun ((a : Driver.result), _, _, _, _)
                     ((b : Driver.result), _, _, _, _) ->
                  Float.compare a.Driver.throughput b.Driver.throughput)
                runs
            in
            let r, g, sweeps_n, pairs_n, commits_n =
              List.nth sorted (trials / 2)
            in
            if scanners = 0 then
              Hashtbl.replace baselines impl.Tree_intf.impl_name
                r.Driver.throughput;
            let base =
              Option.value ~default:r.Driver.throughput
                (Hashtbl.find_opt baselines impl.Tree_intf.impl_name)
            in
            let vs_idle = r.Driver.throughput /. base in
            jrows :=
              J.Obj
                [
                  ("impl", J.Str impl.Tree_intf.impl_name);
                  ("scanners", J.Int scanners);
                  ("writer_ops_per_s", J.Float r.Driver.throughput);
                  ("vs_idle", J.Float vs_idle);
                  ("sweeps", J.Int sweeps_n);
                  ("scan_pairs", J.Int pairs_n);
                  ("commits", J.Int commits_n);
                  ("live_versions", J.Int g.Tree_intf.g_live_versions);
                  ("pruned_versions", J.Int g.Tree_intf.g_pruned_versions);
                ]
              :: !jrows;
            [
              impl.Tree_intf.impl_name;
              string_of_int scanners;
              Report.fmt_si r.Driver.throughput ^ "/s";
              (if scanners = 0 then "-" else Report.fmt_f ~digits:3 vs_idle);
              string_of_int sweeps_n;
              string_of_int commits_n;
              string_of_int g.Tree_intf.g_live_versions;
              string_of_int g.Tree_intf.g_pruned_versions;
            ])
          scanner_counts)
      impls
  in
  Report.table
    ~header:
      [
        "impl"; "scanners"; "writer tput"; "vs idle"; "sweeps"; "commits";
        "versions"; "pruned";
      ]
    rows;
  (* (b) vrec codec density: one 64-slot group of version chains,
     framed as the v3 varint vrec page vs the v2 fixed-width layout a
     tree node uses. Epochs and tags are small; payloads are
     word-sized — exactly the mix the varint layout targets. *)
  let module PC = Page_codec.Make (Key.Int) in
  let keys_per_group = 64 in
  let codec_rows, jcodec =
    List.map
      (fun chain_len ->
        let stream =
          List.concat
            [
              [ 0; keys_per_group ];
              List.concat
                (List.init keys_per_group (fun k ->
                     (1 + chain_len)
                     :: List.concat
                          (List.init chain_len (fun v ->
                               [ chain_len - v; 1; (k * 7) + 1 + (v * 1000) ]))));
            ]
        in
        let ptrs = Array.of_list stream in
        let mk level is_root =
          {
            Node.level;
            keys = [||];
            ptrs;
            low = Bound.Neg_inf;
            high = Bound.Pos_inf;
            link = None;
            is_root;
            state = Node.Live;
          }
        in
        let v3 = Bytes.length (PC.to_bytes (mk Node.vrec_level true)) in
        let v2 = Bytes.length (PC.to_bytes (mk 1 false)) in
        let per_key_v3 = float_of_int v3 /. float_of_int keys_per_group in
        let per_key_v2 = float_of_int v2 /. float_of_int keys_per_group in
        ( [
            string_of_int chain_len;
            string_of_int (Array.length ptrs);
            string_of_int v3;
            string_of_int v2;
            Report.fmt_f ~digits:1 per_key_v3;
            Report.fmt_f ~digits:1 per_key_v2;
            Report.fmt_f ~digits:2 (float_of_int v2 /. float_of_int v3);
          ],
          J.Obj
            [
              ("chain_len", J.Int chain_len);
              ("stream_ints", J.Int (Array.length ptrs));
              ("v3_bytes", J.Int v3);
              ("v2_bytes", J.Int v2);
              ("v3_bytes_per_key", J.Float per_key_v3);
              ("v2_bytes_per_key", J.Float per_key_v2);
            ] ))
      [ 1; 4; 16 ]
    |> List.split
  in
  Report.note "(b) vrec codec density (64-key group, bytes on the page):";
  Report.table
    ~header:
      [
        "versions/key"; "stream ints"; "v3 bytes"; "v2 bytes"; "v3 B/key";
        "v2 B/key"; "v2/v3";
      ]
    codec_rows;
  record_json "E18"
    (J.Obj
       [
         ("space", J.Int space);
         ("preload", J.Int preload);
         ("writer_domains", J.Int domains);
         ("ops_per_domain", J.Int ops);
         ("rows", J.List (List.rev !jrows));
         ("codec", J.List jcodec);
       ]);
  List.iter
    (fun (impl : Tree_intf.impl) ->
      match Hashtbl.find_opt baselines impl.Tree_intf.impl_name with
      | None -> ()
      | Some base ->
          let worst =
            List.fold_left
              (fun acc j ->
                match j with
                | J.Obj kvs
                  when List.assoc_opt "impl" kvs
                       = Some (J.Str impl.Tree_intf.impl_name) -> (
                    match List.assoc_opt "vs_idle" kvs with
                    | Some (J.Float r) -> Float.min acc r
                    | _ -> acc)
                | _ -> acc)
              1.0 !jrows
          in
          Report.note
            (Printf.sprintf
               "verdict %s: worst durable writer throughput under pinned \
                scans = %.2fx the 0-scanner durable baseline (%s/s)"
               impl.Tree_intf.impl_name worst (Report.fmt_si base)))
    impls

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
    ("E13", e13);
    ("E14", e14);
    ("E15", e15);
    ("E16", e16);
    ("E17", e17);
    ("E18", e18);
    ("A1", a1);
    ("A2", a2);
    ("A3", a3);
    ("A4", a4);
  ]

let () =
  let json_path = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse acc rest
    | [ "--json" ] ->
        prerr_endline "--json needs a path";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    if args = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt (String.uppercase_ascii name) experiments with
          | Some f -> Some (name, f)
          | None ->
              Printf.eprintf "unknown experiment %s (have: %s)\n" name
                (String.concat " " (List.map fst experiments));
              exit 2)
        args
  in
  Printf.printf "Sagiv B*-tree reproduction benchmarks%s\n"
    (if !quick then " (quick mode)" else "");
  Printf.printf "cores available: %d (single-core: scaling rows show overhead, not speedup)\n"
    (Domain.recommended_domain_count ());
  let gc0 = Gc.get () in
  List.iter
    (fun (_, f) ->
      f ();
      (* Undo any GC tuning an experiment's harness left behind (bechamel
         sets max_overhead to 1M — compaction off — and never restores
         it) and return the experiment's heap to the OS, so one
         experiment's footprint can't skew the next one's numbers. *)
      Gc.set gc0;
      Gc.compact ())
    selected;
  match !json_path with
  | None -> ()
  | Some path ->
      let doc =
        J.Obj
          [
            ("quick", J.Bool !quick);
            ("cores", J.Int (Domain.recommended_domain_count ()));
            ("experiments", J.Obj (List.rev !json_out));
          ]
      in
      let oc = open_out path in
      output_string oc (J.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path
