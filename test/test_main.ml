let () =
  Alcotest.run "sagiv-blink-repro"
    [
      ("util", Test_util.suite);
      ("node", Test_node.suite);
      ("codec", Test_codec.suite);
      ("store", Test_store.suite);
      ("page_store", Test_page_store.suite);
      ("blink", Test_blink.suite);
      ("compress", Test_compress.suite);
      ("compactor", Test_compactor.suite);
      ("concurrent", Test_concurrent.suite);
      ("range", Test_range.suite);
      ("kv", Test_kv.suite);
      ("linearize", Test_linearize.suite);
      ("restart", Test_restart.suite);
      ("baselines", Test_baselines.suite);
      ("harness", Test_harness.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("disk", Test_disk.suite);
      ("crash", Test_crash.suite);
      ("shard", Test_shard.suite);
      ("props", Test_props.suite);
      ("access", Test_access.suite);
      ("trace", Test_trace.suite);
      ("report", Test_report.suite);
      ("server", Test_server.suite);
      ("mvcc", Test_mvcc.suite);
      ("combine", Test_combine.suite);
    ]
