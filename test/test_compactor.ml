(* Queue-driven compression (§5.4): the compression queue itself and the
   compactor state machine, sequentially and under concurrency. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module Co = Compactor.Make (Key.Int)
module V = Validate.Make (Key.Int)

let ctx = S.ctx

let check_valid t msg =
  let r = V.check t in
  if not (Validate.ok r) then
    Alcotest.failf "%s: %s" msg (String.concat "; " r.Validate.errors)

(* -- queue unit tests -- *)

let test_queue_fifo_and_priority () =
  let q : int Cqueue.t = Cqueue.create () in
  Cqueue.push q ~update:true ~ptr:1 ~level:0 ~high:Bound.Pos_inf ~stack:[] ~stamp:0;
  Cqueue.push q ~update:true ~ptr:2 ~level:2 ~high:Bound.Pos_inf ~stack:[] ~stamp:0;
  Cqueue.push q ~update:true ~ptr:3 ~level:0 ~high:Bound.Pos_inf ~stack:[] ~stamp:0;
  Alcotest.(check int) "length" 3 (Cqueue.length q);
  (* higher level first (paper footnote 17), then FIFO within a level *)
  let p1 = (Option.get (Cqueue.pop q)).Cqueue.ptr in
  let p2 = (Option.get (Cqueue.pop q)).Cqueue.ptr in
  let p3 = (Option.get (Cqueue.pop q)).Cqueue.ptr in
  Alcotest.(check (list int)) "pop order" [ 2; 1; 3 ] [ p1; p2; p3 ];
  Alcotest.(check bool) "empty" true (Cqueue.pop q = None)

let test_queue_dedupe_update () =
  let q : int Cqueue.t = Cqueue.create () in
  Cqueue.push q ~update:true ~ptr:5 ~level:0 ~high:(Bound.Key 10) ~stack:[ 1 ] ~stamp:0;
  Cqueue.push q ~update:true ~ptr:5 ~level:0 ~high:(Bound.Key 20) ~stack:[ 2 ] ~stamp:1;
  Alcotest.(check int) "deduped" 1 (Cqueue.length q);
  let e = Option.get (Cqueue.pop q) in
  Alcotest.(check bool) "updated high" true (e.Cqueue.high = Bound.Key 20);
  (* update:false must NOT refresh an existing entry *)
  Cqueue.push q ~update:true ~ptr:6 ~level:0 ~high:(Bound.Key 30) ~stack:[] ~stamp:0;
  Cqueue.push q ~update:false ~ptr:6 ~level:0 ~high:(Bound.Key 99) ~stack:[] ~stamp:1;
  let e6 = Option.get (Cqueue.pop q) in
  Alcotest.(check bool) "no-update preserved" true (e6.Cqueue.high = Bound.Key 30)

let test_queue_remove () =
  let q : int Cqueue.t = Cqueue.create () in
  Cqueue.push q ~update:true ~ptr:7 ~level:1 ~high:Bound.Pos_inf ~stack:[] ~stamp:0;
  Cqueue.push q ~update:true ~ptr:8 ~level:1 ~high:Bound.Pos_inf ~stack:[] ~stamp:0;
  Cqueue.remove q 7;
  Alcotest.(check int) "length after remove" 1 (Cqueue.length q);
  Alcotest.(check int) "survivor pops" 8 (Option.get (Cqueue.pop q)).Cqueue.ptr;
  (* removing an absent ptr is a no-op *)
  Cqueue.remove q 12345

let test_queue_level_guard () =
  (* Regression: an out-of-range level used to raise from the unchecked
     [buckets.(level)] inside the critical section, leaving the queue
     mutex locked forever and the entry half-registered. The guard must
     reject before touching any state, and the queue must stay usable. *)
  let q : int Cqueue.t = Cqueue.create () in
  let expect_invalid level =
    match
      Cqueue.push q ~update:true ~ptr:99 ~level ~high:Bound.Pos_inf ~stack:[]
        ~stamp:0
    with
    | () -> Alcotest.failf "level %d must be rejected" level
    | exception Invalid_argument _ -> ()
  in
  expect_invalid 64;
  expect_invalid 1000;
  expect_invalid (-1);
  Alcotest.(check int) "nothing half-registered" 0 (Cqueue.length q);
  (* the mutex survived the rejections: normal pushes and pops work *)
  Cqueue.push q ~update:true ~ptr:1 ~level:63 ~high:Bound.Pos_inf ~stack:[] ~stamp:0;
  Alcotest.(check int) "top level still accepted" 1 (Cqueue.length q);
  Alcotest.(check int) "pops back" 1 (Option.get (Cqueue.pop q)).Cqueue.ptr

(* -- compactor, sequential -- *)

let build_enqueue ~order ~n =
  let t = S.create ~order ~enqueue_on_delete:true () in
  let c = ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k k)
  done;
  (t, c)

let test_deletions_enqueue () =
  let t, c = build_enqueue ~order:4 ~n:64 in
  Alcotest.(check int) "queue empty initially" 0 (Cqueue.length t.Handle.queue);
  for k = 1 to 64 do
    if k mod 8 <> 0 then ignore (S.delete t c k)
  done;
  Alcotest.(check bool) "sparse leaves queued" true (Cqueue.length t.Handle.queue > 0);
  Alcotest.(check bool) "enqueue stat" true (c.Handle.stats.Stats.enqueued > 0)

let test_drain_restores_structure () =
  let t, c = build_enqueue ~order:4 ~n:5000 in
  for k = 1 to 5000 do
    if k mod 4 <> 0 then ignore (S.delete t c k)
  done;
  (match Co.run_until_empty t c with
  | `Drained -> ()
  | `Step_limit -> Alcotest.fail "compactor did not drain");
  check_valid t "after drain";
  Alcotest.(check int) "queue empty" 0 (Cqueue.length t.Handle.queue);
  Alcotest.(check bool) "merges happened" true (c.Handle.stats.Stats.merges > 0);
  for k = 1 to 5000 do
    let expected = if k mod 4 = 0 then Some k else None in
    if S.search t c k <> expected then Alcotest.failf "key %d wrong after drain" k
  done

let test_compactor_locks_at_most_three () =
  let t, c = build_enqueue ~order:2 ~n:2000 in
  for k = 1 to 2000 do
    if k mod 3 <> 0 then ignore (S.delete t c k)
  done;
  let cc = ctx ~slot:1 in
  (match Co.run_until_empty t cc with `Drained -> () | `Step_limit -> Alcotest.fail "limit");
  Alcotest.(check bool)
    (Printf.sprintf "max %d <= 3" cc.Handle.stats.Stats.max_locks_held)
    true
    (cc.Handle.stats.Stats.max_locks_held <= 3)

let test_empty_tree_via_queue () =
  let t, c = build_enqueue ~order:3 ~n:2000 in
  for k = 1 to 2000 do
    ignore (S.delete t c k)
  done;
  (match Co.run_until_empty t c with `Drained -> () | `Step_limit -> Alcotest.fail "limit");
  check_valid t "after emptying via queue";
  Alcotest.(check int) "no keys" 0 (S.cardinal t);
  Alcotest.(check bool) "height collapsed" true (S.height t <= 2)

let test_stale_entries_discarded () =
  let t, c = build_enqueue ~order:4 ~n:200 in
  for k = 1 to 200 do
    if k mod 4 <> 0 then ignore (S.delete t c k)
  done;
  (* refill before compaction: queued leaves are no longer sparse *)
  for k = 1 to 200 do
    if k mod 4 <> 0 then ignore (S.insert t c k k)
  done;
  (match Co.run_until_empty t c with `Drained -> () | `Step_limit -> Alcotest.fail "limit");
  check_valid t "after stale drain";
  Alcotest.(check int) "nothing merged" 0 c.Handle.stats.Stats.merges;
  Alcotest.(check int) "all keys back" 200 (S.cardinal t)

(* -- compactor, concurrent -- *)

let test_parallel_compactors () =
  let t, c = build_enqueue ~order:4 ~n:30_000 in
  for k = 1 to 30_000 do
    if k mod 4 <> 0 then ignore (S.delete t c k)
  done;
  let workers =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            let cc = ctx ~slot:(1 + i) in
            (match Co.run_until_empty t cc with
            | `Drained -> ()
            | `Step_limit -> failwith "limit");
            cc))
  in
  let ctxs = Array.map Domain.join workers in
  (* drain anything requeued at the very end *)
  (match Co.run_until_empty t c with `Drained -> () | `Step_limit -> Alcotest.fail "limit");
  check_valid t "after parallel compactors";
  let total_merges =
    Array.fold_left (fun acc (cc : Handle.ctx) -> acc + cc.Handle.stats.Stats.merges) 0 ctxs
  in
  Alcotest.(check bool) "work was shared" true (total_merges > 0);
  for k = 1 to 30_000 do
    let expected = if k mod 4 = 0 then Some k else None in
    if S.search t c k <> expected then Alcotest.failf "key %d wrong" k
  done

let test_compaction_racing_updaters () =
  let t, c = build_enqueue ~order:4 ~n:50_000 in
  let stop = Atomic.make false in
  let compactors =
    Array.init 2 (fun i ->
        Domain.spawn (fun () ->
            let cc = ctx ~slot:(8 + i) in
            Co.run_worker t cc ~stop;
            cc))
  in
  let updaters =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            let wc = ctx ~slot:i in
            let rng = Repro_util.Splitmix.create (1000 + i) in
            for _ = 1 to 40_000 do
              let k = 1 + Repro_util.Splitmix.int rng 50_000 in
              match Repro_util.Splitmix.int rng 10 with
              | 0 | 1 | 2 | 3 | 4 -> ignore (S.delete t wc k)
              | 5 | 6 | 7 -> ignore (S.insert t wc k k)
              | _ -> ignore (S.search t wc k)
            done;
            wc))
  in
  let _ = Array.map Domain.join updaters in
  Atomic.set stop true;
  let _ = Array.map Domain.join compactors in
  (match Co.run_until_empty t c with `Drained -> () | `Step_limit -> Alcotest.fail "limit");
  check_valid t "after racing compaction";
  ignore (S.reclaim t)

let test_single_pointer_parent_ordering () =
  (* §5.4: when a queued node's parent has a single pointer, the parent
     "must be compressed before" the node — guaranteed here by the queue's
     level priority. Build a deliberately skewed tree: delete everything
     except a thin rightmost sliver so whole subtrees empty out, then
     drain; requeues must resolve (no step limit) and the result must be
     fully compressed. *)
  let t = S.create ~order:2 ~enqueue_on_delete:true () in
  let c = ctx ~slot:0 in
  for k = 1 to 3_000 do
    ignore (S.insert t c k k)
  done;
  (* leave only the 3 largest keys: every other leaf and most internal
     nodes become empty or single-child *)
  for k = 1 to 2_997 do
    ignore (S.delete t c k)
  done;
  (match Co.run_until_empty t c with
  | `Drained -> ()
  | `Step_limit -> Alcotest.fail "requeue ordering wedged");
  check_valid t "after skew drain";
  Alcotest.(check int) "3 keys" 3 (S.cardinal t);
  Alcotest.(check bool) "height collapsed" true (S.height t <= 2);
  Alcotest.(check bool) "requeues happened and resolved" true
    (c.Handle.stats.Stats.requeued >= 0)

let test_reclaim_after_compaction () =
  let t, c = build_enqueue ~order:4 ~n:20_000 in
  for k = 1 to 20_000 do
    if k mod 4 <> 0 then ignore (S.delete t c k)
  done;
  let live_before = Store.live_count t.Handle.store in
  (match Co.run_until_empty t c with `Drained -> () | `Step_limit -> Alcotest.fail "limit");
  let freed = S.reclaim t in
  Alcotest.(check bool) "pages were released" true (freed > 0);
  Alcotest.(check bool) "live count dropped" true
    (Store.live_count t.Handle.store < live_before);
  check_valid t "after reclamation";
  (* §5.3 end-to-end: no live page is unreachable (no leaks) *)
  Alcotest.(check (list int)) "no leaked pages" [] (V.leak_check t);
  (* live pages = reachable + tombstones still in limbo *)
  Alcotest.(check int) "limbo accounts for the rest"
    (Store.live_count t.Handle.store)
    ((V.check t).Validate.total_nodes + Epoch.pending t.Handle.epoch)

let test_private_queue_mode () =
  (* §5.4 arrangement (3): one compression process per sparse node, each
     with its own queue. Delete down to sparseness, then compact each
     still-sparse leaf individually. *)
  let t = S.create ~order:4 () in
  (* enqueue_on_delete off: we drive compaction by hand *)
  let c = ctx ~slot:0 in
  for k = 1 to 4_000 do
    ignore (S.insert t c k k)
  done;
  for k = 1 to 4_000 do
    if k mod 4 <> 0 then ignore (S.delete t c k)
  done;
  (* walk the leaf chain; spawn a private compaction for each sparse leaf *)
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let prime = Prime_block.read t.Handle.prime in
    let sparse = ref None in
    (match Prime_block.leftmost_at prime ~level:0 with
    | None -> ()
    | Some p ->
        let rec find ptr =
          match (try Some (Store.get t.Handle.store ptr) with Store.Freed_page _ -> None) with
          | None -> ()
          | Some n ->
              if
                (not (Node.is_deleted n))
                && Node.is_sparse ~order:4 n
                && not n.Node.is_root
              then sparse := Some (ptr, n)
              else (
                match n.Node.link with Some q -> find q | None -> ())
        in
        find p);
    match !sparse with
    | None -> continue_ := false
    | Some (ptr, n) ->
        let changes =
          Co.compact_node t c ~ptr ~level:n.Node.level ~high:n.Node.high ~stack:[]
        in
        if changes = 0 then continue_ := false else total := !total + changes
  done;
  check_valid t "after private-queue compaction";
  Alcotest.(check bool) "work done" true (!total > 0);
  Alcotest.(check int) "keys preserved" 1_000 (S.cardinal t);
  (* shared queue was never used *)
  Alcotest.(check int) "shared queue untouched" 0 (Cqueue.length t.Handle.queue)

let suite =
  [
    Alcotest.test_case "private-queue compaction (mode 3)" `Quick test_private_queue_mode;
    Alcotest.test_case "queue priority and fifo" `Quick test_queue_fifo_and_priority;
    Alcotest.test_case "queue dedupe and update flag" `Quick test_queue_dedupe_update;
    Alcotest.test_case "queue remove" `Quick test_queue_remove;
    Alcotest.test_case "queue level guard" `Quick test_queue_level_guard;
    Alcotest.test_case "deletions enqueue sparse leaves" `Quick test_deletions_enqueue;
    Alcotest.test_case "drain restores structure" `Quick test_drain_restores_structure;
    Alcotest.test_case "compactor holds at most 3 locks" `Quick
      test_compactor_locks_at_most_three;
    Alcotest.test_case "empty tree via queue" `Quick test_empty_tree_via_queue;
    Alcotest.test_case "stale entries discarded" `Quick test_stale_entries_discarded;
    Alcotest.test_case "parallel compactors" `Quick test_parallel_compactors;
    Alcotest.test_case "compaction racing updaters" `Quick test_compaction_racing_updaters;
    Alcotest.test_case "single-pointer parent ordering" `Quick
      test_single_pointer_parent_ordering;
    Alcotest.test_case "epoch reclaim after compaction" `Quick test_reclaim_after_compaction;
  ]
