(* PAGE_STORE conformance: the same store-primitive and Sagiv-tree battery
   run over both backends — the in-memory Store and the durable
   Paged_store — through the Make_on_store functors, plus disk-only tests
   (small-cache eviction under concurrency, close/reopen durability). *)

open Repro_storage
open Repro_core

let mk_leaf keys =
  {
    Node.level = 0;
    keys = Array.of_list keys;
    ptrs = Array.of_list (List.map (fun k -> k) keys);
    low = Bound.Neg_inf;
    high = Bound.Pos_inf;
    link = None;
    is_root = false;
    state = Node.Live;
  }

module Conformance (S : sig
  include Page_store.S with type key = int

  val name : string
end) =
struct
  module Sg = Sagiv.Make_on_store (Key.Int) (S)
  module V = Validate.Make_on_store (Key.Int) (S)
  module Cp = Compress.Make_on_store (Key.Int) (S)
  module Co = Compactor.Make_on_store (Key.Int) (S)

  let ctx = Sg.ctx

  let check_valid t msg =
    let r = V.check t in
    if not (Validate.ok r) then
      Alcotest.failf "%s: %s" msg (String.concat "; " r.Validate.errors)

  let bytes_like =
    Alcotest.testable
      (fun fmt b -> Format.pp_print_string fmt (Bytes.to_string b))
      Bytes.equal

  let test_primitives () =
    let s = S.create () in
    let p = S.alloc s (mk_leaf [ 1 ]) in
    Alcotest.(check int) "contents" 1 (S.get s p).Node.keys.(0);
    S.put s p (mk_leaf [ 2 ]);
    Alcotest.(check int) "rewritten" 2 (S.get s p).Node.keys.(0);
    Alcotest.(check int) "live" 1 (S.live_count s);
    let q = S.reserve s in
    (match S.get s q with
    | exception Page_store.Freed_page _ -> ()
    | _ -> Alcotest.fail "reserved page must be unreadable");
    S.put s q (mk_leaf [ 9 ]);
    Alcotest.(check int) "readable after put" 9 (S.get s q).Node.keys.(0);
    (* sync first so a durable backend has the old contents on disk: the
       recycled-page checks below must raise Freed_page, not resurrect
       the pre-release node from storage *)
    S.sync s;
    S.release s q;
    (match S.get s q with
    | exception Page_store.Freed_page i -> Alcotest.(check int) "freed id" q i
    | _ -> Alcotest.fail "released page must be unreadable");
    Alcotest.(check int) "live after release" 1 (S.live_count s);
    let q2 = S.reserve s in
    Alcotest.(check int) "released id recycled" q q2;
    (match S.get s q2 with
    | exception Page_store.Freed_page _ -> ()
    | _ -> Alcotest.fail "recycled page must be unreadable before its first put");
    S.put s q2 (mk_leaf [ 11 ]);
    Alcotest.(check int) "readable after recycle put" 11 (S.get s q2).Node.keys.(0);
    S.release s q2;
    Alcotest.(check bool) "try_lock free page latch" true (S.try_lock s p);
    Alcotest.(check bool) "try_lock held latch" false (S.try_lock s p);
    S.unlock s p;
    S.lock s p;
    S.unlock s p;
    let seen = ref [] in
    S.iter s (fun ptr n -> seen := (ptr, n.Node.keys.(0)) :: !seen);
    Alcotest.(check (list (pair int int))) "iter sees exactly the live page"
      [ (p, 2) ] !seen;
    Alcotest.(check (option bytes_like)) "no meta yet" None (S.get_meta s)

  let test_meta_roundtrip () =
    let s = S.create () in
    S.set_meta s (Bytes.of_string "hello");
    S.sync s;
    match S.get_meta s with
    | Some b -> Alcotest.(check string) "meta" "hello" (Bytes.to_string b)
    | None -> Alcotest.fail "meta lost"

  let test_sequential_battery () =
    let t = Sg.create ~order:4 () in
    let c = ctx ~slot:0 in
    let n = 2000 in
    let key i = (i * 2_654_435_761) land 0xFFFFF in
    let inserted = Hashtbl.create n in
    for i = 0 to n - 1 do
      let k = key i in
      match Sg.insert t c k (k + 1) with
      | `Ok -> Hashtbl.replace inserted k ()
      | `Duplicate ->
          if not (Hashtbl.mem inserted k) then
            Alcotest.failf "spurious duplicate for %d" k
    done;
    check_valid t "after inserts";
    Alcotest.(check int) "cardinal" (Hashtbl.length inserted) (Sg.cardinal t);
    Hashtbl.iter
      (fun k () ->
        if Sg.search t c k <> Some (k + 1) then Alcotest.failf "key %d lost" k)
      inserted;
    (* delete every other inserted key, then compress to the fixpoint *)
    let victims =
      Hashtbl.fold (fun k () acc -> k :: acc) inserted []
      |> List.sort compare
      |> List.filteri (fun i _ -> i mod 2 = 0)
    in
    List.iter
      (fun k ->
        if not (Sg.delete t c k) then Alcotest.failf "delete %d failed" k;
        Hashtbl.remove inserted k)
      victims;
    check_valid t "after deletes";
    ignore (Cp.compress_to_fixpoint t c);
    ignore (Sg.reclaim t);
    check_valid t "after compression";
    Alcotest.(check int) "cardinal after deletes" (Hashtbl.length inserted)
      (Sg.cardinal t);
    Hashtbl.iter
      (fun k () ->
        if Sg.search t c k <> Some (k + 1) then
          Alcotest.failf "key %d lost by compression" k)
      inserted;
    Alcotest.(check (list int)) "no leaked pages" [] (V.leak_check t)

  let test_concurrent_battery () =
    (* multi-domain inserts + deletes with a live compactor: the full
       Sagiv concurrency surface over this backend *)
    let t = Sg.create ~order:4 ~enqueue_on_delete:true () in
    let nd = 4 and per = 3000 in
    let stop = Atomic.make false in
    let compactor =
      Domain.spawn (fun () -> Co.run_worker t (ctx ~slot:nd) ~stop)
    in
    let domains =
      Array.init nd (fun i ->
          Domain.spawn (fun () ->
              let c = ctx ~slot:i in
              for j = 0 to per - 1 do
                let k = (j * nd) + i in
                (match Sg.insert t c k (k * 2) with
                | `Ok -> ()
                | `Duplicate -> failwith "spurious duplicate");
                (* delete our previous key half the time to feed the queue *)
                if j > 0 && j mod 2 = 0 then
                  ignore (Sg.delete t c (((j - 1) * nd) + i))
              done))
    in
    Array.iter Domain.join domains;
    Atomic.set stop true;
    Domain.join compactor;
    let c = ctx ~slot:0 in
    ignore (Co.run_until_empty t c);
    check_valid t "after concurrent battery";
    for j = 0 to per - 1 do
      for i = 0 to nd - 1 do
        let k = (j * nd) + i in
        let deleted = j > 0 && j mod 2 = 1 && j < per - 1 in
        (* keys deleted are those with odd j (deleted by the j+1 step) *)
        match Sg.search t c k with
        | Some v when not deleted ->
            if v <> k * 2 then Alcotest.failf "key %d wrong payload" k
        | None when deleted -> ()
        | Some _ -> Alcotest.failf "key %d should be deleted" k
        | None -> Alcotest.failf "key %d lost" k
      done
    done;
    ignore (Sg.reclaim t)

  let test_flush_open_existing () =
    (* metadata-level reopen on the same live store object: works on any
       backend, durable or not *)
    let store = S.create () in
    let t = Sg.create ~order:6 ~store () in
    let c = ctx ~slot:0 in
    for k = 0 to 999 do
      ignore (Sg.insert t c k k)
    done;
    Sg.flush t;
    let t' = Sg.open_existing store in
    check_valid t' "reopened";
    Alcotest.(check int) "order survives" 6 (Sg.order t');
    Alcotest.(check int) "cardinal survives" 1000 (Sg.cardinal t');
    for k = 0 to 999 do
      if Sg.search t' c k <> Some k then Alcotest.failf "key %d lost" k
    done;
    (match Sg.open_existing (S.create ()) with
    | exception Sg.Corrupt _ -> ()
    | _ -> Alcotest.fail "open_existing of an empty store must fail")

  let suite =
    let tc name f = Alcotest.test_case (Printf.sprintf "%s: %s" S.name name) `Quick f in
    [
      tc "store primitives" test_primitives;
      tc "meta roundtrip" test_meta_roundtrip;
      tc "sequential battery" test_sequential_battery;
      tc "concurrent battery" test_concurrent_battery;
      tc "flush + open_existing" test_flush_open_existing;
    ]
end

module Mem = Conformance (struct
  include Store.For_key (Key.Int)

  let name = "mem"
end)

module Paged_int = Paged_store.Make (Key.Int)

module Disk = Conformance (struct
  include Paged_int

  let name = "disk"
end)

(* -- disk-only tests -- *)

module Sg = Sagiv.Make_on_store (Key.Int) (Paged_int)
module V = Validate.Make_on_store (Key.Int) (Paged_int)

let check_valid t msg =
  let r = V.check t in
  if not (Validate.ok r) then
    Alcotest.failf "%s: %s" msg (String.concat "; " r.Validate.errors)

(* A cache far smaller than the working set: every traversal faults and
   evicts while four domains hammer the tree. *)
let test_small_cache_concurrent () =
  let store = Paged_int.create_memory ~cache_pages:32 () in
  let t = Sg.create ~order:4 ~store () in
  let nd = 4 and per = 2000 in
  let domains =
    Array.init nd (fun i ->
        Domain.spawn (fun () ->
            let c = Sg.ctx ~slot:i in
            for j = 0 to per - 1 do
              let k = (j * nd) + i in
              match Sg.insert t c k k with
              | `Ok -> ()
              | `Duplicate -> failwith "spurious duplicate"
            done))
  in
  Array.iter Domain.join domains;
  check_valid t "after small-cache inserts";
  Alcotest.(check int) "cardinal" (nd * per) (Sg.cardinal t);
  Alcotest.(check bool) "cache stayed bounded" true
    (Paged_int.cached_nodes store <= 32 + nd + 1);
  let stats = Paged_int.pool_stats store in
  Alcotest.(check bool) "eviction actually ran" true (stats.Buffer_pool.writebacks > 0);
  let c = Sg.ctx ~slot:0 in
  for k = 0 to (nd * per) - 1 do
    if Sg.search t c k <> Some k then Alcotest.failf "key %d lost" k
  done

let with_tmp_file f =
  let path = Filename.temp_file "paged_store_test" ".pages" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Build on a real file, close, reopen from disk: search, validate,
   mutate, close, reopen again. *)
let test_durability () =
  with_tmp_file (fun path ->
      let n = 3000 in
      let store = Paged_int.create_file ~cache_pages:64 path in
      let t = Sg.create ~order:4 ~store () in
      let c = Sg.ctx ~slot:0 in
      for k = 0 to n - 1 do
        ignore (Sg.insert t c k (k * 3))
      done;
      for k = 0 to n - 1 do
        if k mod 3 = 0 then ignore (Sg.delete t c k)
      done;
      Sg.flush t;
      Paged_int.close store;
      (* first reopen: everything must come back from disk *)
      let store = Paged_int.open_file ~cache_pages:64 path in
      let t = Sg.open_existing store in
      check_valid t "after reopen";
      for k = 0 to n - 1 do
        let expect = if k mod 3 = 0 then None else Some (k * 3) in
        if Sg.search t c k <> expect then Alcotest.failf "key %d wrong after reopen" k
      done;
      (* the store must still be writable: new inserts reuse freed pages *)
      let freed_before = Paged_int.total_freed store in
      for k = n to n + 499 do
        ignore (Sg.insert t c k k)
      done;
      ignore freed_before;
      Sg.flush t;
      Paged_int.close store;
      (* second reopen: the mutation survived too *)
      let store = Paged_int.open_file path in
      let t = Sg.open_existing store in
      check_valid t "after second reopen";
      for k = n to n + 499 do
        if Sg.search t c k <> Some k then Alcotest.failf "new key %d lost" k
      done;
      Paged_int.close store)

(* The free list must survive reopen: release pages, flush, reopen, and
   the allocator hands the same ids back before growing the file. *)
let test_free_list_survives_reopen () =
  with_tmp_file (fun path ->
      let s = Paged_int.create_file path in
      let p1 = Paged_int.alloc s (mk_leaf [ 1 ]) in
      let p2 = Paged_int.alloc s (mk_leaf [ 2 ]) in
      let p3 = Paged_int.alloc s (mk_leaf [ 3 ]) in
      Paged_int.release s p2;
      Paged_int.close s;
      let s = Paged_int.open_file path in
      Alcotest.(check int) "live count" 2 (Paged_int.live_count s);
      Alcotest.(check int) "contents p1" 1 (Paged_int.get s p1).Node.keys.(0);
      Alcotest.(check int) "contents p3" 3 (Paged_int.get s p3).Node.keys.(0);
      (match Paged_int.get s p2 with
      | exception Page_store.Freed_page _ -> ()
      | _ -> Alcotest.fail "freed page still readable after reopen");
      let q = Paged_int.reserve s in
      Alcotest.(check int) "freed id recycled first" p2 q;
      (* the recycled page carries free-chain bytes on disk, not a node:
         it must stay unreadable until its first put *)
      (match Paged_int.get s q with
      | exception Page_store.Freed_page _ -> ()
      | _ -> Alcotest.fail "recycled page readable before first put after reopen");
      Paged_int.put s q (mk_leaf [ 4 ]);
      Alcotest.(check int) "recycled page readable after put" 4
        (Paged_int.get s q).Node.keys.(0);
      Paged_int.close s)

(* Fault storm: a store far bigger than the cache, four domains reading
   disjoint quarters — nearly every get is a disk fault. Checks that
   every fault returns the right contents, that the misses spread over
   all IO stripes, and that faults on distinct stripes actually
   overlapped in time (the max_concurrent_faults gauge — with a global
   IO lock it could never exceed 1). *)
let test_fault_storm () =
  let npages = 2048 and nd = 4 and rounds = 4 in
  let s = Paged_int.create_memory ~cache_pages:16 ~stripes:8 () in
  let pages = Array.init npages (fun i -> Paged_int.alloc s (mk_leaf [ i * 7 ])) in
  Paged_int.sync s;
  let errors = Atomic.make 0 in
  let quarter = npages / nd in
  let domains =
    Array.init nd (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              for j = 0 to quarter - 1 do
                let i = (d * quarter) + j in
                match Paged_int.get s pages.(i) with
                | n -> if n.Node.keys.(0) <> i * 7 then Atomic.incr errors
                | exception _ -> Atomic.incr errors
              done
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no failed or wrong faults" 0 (Atomic.get errors);
  let io = Paged_int.io_stats s in
  Alcotest.(check bool) "storm actually faulted"
    true
    (io.Repro_storage.Stats.faults > npages);
  Alcotest.(check int) "stripes" 8 (Paged_int.stripe_count s);
  Array.iteri
    (fun si f ->
      if f = 0 then Alcotest.failf "stripe %d served no faults" si)
    (Paged_int.per_stripe_faults s);
  Alcotest.(check bool) "faults on distinct stripes overlapped" true
    (io.Repro_storage.Stats.max_concurrent_faults >= 2)

(* Eviction write-back racing the release → reserve → put recycle path: a
   tiny cache keeps the clock sweep running while every domain churns
   alloc / rewrite / release, so freed pages are constantly re-tenanted
   while the evictor may be mid-sweep on them. A page whose dirty bit is
   clobbered gets dropped without write-back and re-faults stale — the
   content checks below catch exactly that. Run twice: once with
   eviction writing back inline, once with the background writer taking
   the victims (which adds the pending-table adopt/cancel paths to the
   race surface). *)
let run_recycle_eviction_churn ~writer () =
  let s = Paged_int.create_memory ~cache_pages:8 () in
  if writer then Paged_int.start_writer s;
  let nd = 4 and per = 1500 in
  let keep = 8 in
  let stale = Atomic.make 0 and lost = Atomic.make 0 in
  let check_page q w =
    match Paged_int.get s q with
    | n -> if n.Node.keys.(0) <> w then Atomic.incr stale
    | exception Page_store.Freed_page _ -> Atomic.incr lost
  in
  let domains =
    Array.init nd (fun d ->
        Domain.spawn (fun () ->
            let live = Queue.create () in
            for i = 0 to per - 1 do
              let v = (d * per) + i in
              let p = Paged_int.alloc s (mk_leaf [ v ]) in
              (* rewrite so the final version only exists via the dirty
                 bit until written back *)
              Paged_int.put s p (mk_leaf [ v + 1 ]);
              Queue.push (p, v + 1) live;
              if Queue.length live > keep then begin
                let q, w = Queue.pop live in
                check_page q w;
                Paged_int.release s q
              end
            done;
            Queue.iter (fun (q, w) -> check_page q w) live))
  in
  Array.iter Domain.join domains;
  if writer then begin
    let io = Paged_int.io_stats s in
    Alcotest.(check bool) "victims reached the writer queue" true
      (io.Repro_storage.Stats.queued_writebacks > 0);
    Paged_int.stop_writer s;
    Alcotest.(check int) "queue drained on stop" 0 (Paged_int.queue_depth s)
  end;
  if Atomic.get stale > 0 || Atomic.get lost > 0 then
    Alcotest.failf "stale=%d lost=%d pages" (Atomic.get stale) (Atomic.get lost);
  Alcotest.(check int) "resident count consistent" (nd * keep)
    (Paged_int.live_count s)

(* Background write-back must not weaken durability: build a tree on a
   real file with the writer running (so evictions are offloaded), flush,
   close, and reopen from disk. *)
let test_writer_durability () =
  with_tmp_file (fun path ->
      let n = 3000 in
      let store = Paged_int.create_file ~cache_pages:32 path in
      Paged_int.start_writer store;
      let t = Sg.create ~order:4 ~store () in
      let c = Sg.ctx ~slot:0 in
      for k = 0 to n - 1 do
        ignore (Sg.insert t c k (k * 5))
      done;
      for k = 0 to n - 1 do
        if k mod 3 = 0 then ignore (Sg.delete t c k)
      done;
      let io = Paged_int.io_stats store in
      Alcotest.(check bool) "evictions were offloaded" true
        (io.Repro_storage.Stats.queued_writebacks > 0);
      Sg.flush t;
      Paged_int.close store;
      let store = Paged_int.open_file ~cache_pages:32 path in
      let t = Sg.open_existing store in
      check_valid t "after reopen behind the writer";
      for k = 0 to n - 1 do
        let expect = if k mod 3 = 0 then None else Some (k * 5) in
        if Sg.search t c k <> expect then
          Alcotest.failf "key %d wrong after writer-backed reopen" k
      done;
      Paged_int.close store)

let test_corrupt_rejected () =
  with_tmp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 8192 'x');
      close_out oc;
      match Paged_int.open_file path with
      | exception Paged_store.Corrupt _ -> ()
      | _ -> Alcotest.fail "garbage file must be rejected")

let suite =
  Mem.suite @ Disk.suite
  @ [
      Alcotest.test_case "disk: small cache, concurrent" `Quick
        test_small_cache_concurrent;
      Alcotest.test_case "disk: durability across reopen" `Quick test_durability;
      Alcotest.test_case "disk: free list survives reopen" `Quick
        test_free_list_survives_reopen;
      Alcotest.test_case "disk: fault storm across stripes" `Quick
        test_fault_storm;
      Alcotest.test_case "disk: recycle vs eviction churn" `Quick
        (run_recycle_eviction_churn ~writer:false);
      Alcotest.test_case "disk: recycle churn with background writer" `Quick
        (run_recycle_eviction_churn ~writer:true);
      Alcotest.test_case "disk: durability behind background writer" `Quick
        test_writer_durability;
      Alcotest.test_case "disk: corrupt file rejected" `Quick test_corrupt_rejected;
    ]
