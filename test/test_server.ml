(* The network layer: protocol frame roundtrips and rejection of
   malformed / truncated / oversized / corrupted frames; the live
   server's pipelined sessions, per-connection error isolation,
   connection-drop robustness; ≥4-client concurrent linearizability
   through real sockets; and the WAL ack-durability contract — an
   acked write survives a crash taken right after the ack. *)

open Repro_storage
open Repro_baseline
open Repro_harness
module P = Repro_server.Protocol
module Server = Repro_server.Server
module C = Repro_client.Client
module PS = Tree_intf.Paged_int
module Sg = Tree_intf.Sagiv_disk

let response = Alcotest.testable P.pp_response ( = )

(* ---------- protocol ---------- *)

let roundtrip_req r =
  let b = Buffer.create 64 in
  P.encode_request b ~seq:7 r;
  let bytes = Buffer.to_bytes b in
  match P.decode_request bytes ~pos:0 ~len:(Bytes.length bytes) with
  | Frame { seq; body; consumed } ->
      Alcotest.(check int) "seq" 7 seq;
      Alcotest.(check int) "consumed" (Bytes.length bytes) consumed;
      Alcotest.(check bool) "body" true (body = r)
  | Need_more -> Alcotest.fail "complete request decoded as Need_more"

let roundtrip_resp r =
  let b = Buffer.create 64 in
  P.encode_response b ~seq:3 r;
  let bytes = Buffer.to_bytes b in
  match P.decode_response bytes ~pos:0 ~len:(Bytes.length bytes) with
  | Frame { seq; body; consumed } ->
      Alcotest.(check int) "seq" 3 seq;
      Alcotest.(check int) "consumed" (Bytes.length bytes) consumed;
      Alcotest.check response "body" r body
  | Need_more -> Alcotest.fail "complete response decoded as Need_more"

let test_roundtrip () =
  List.iter roundtrip_req
    [
      P.Insert { key = 1; value = 2 };
      P.Insert { key = -5; value = max_int };
      P.Insert { key = min_int; value = -1 };
      P.Delete { key = 42 };
      P.Search { key = -42 };
      P.Range { lo = -10; hi = 10 };
      P.Commit;
      P.Stats;
    ];
  List.iter roundtrip_resp
    [
      P.Inserted;
      P.Duplicate;
      P.Deleted;
      P.Absent;
      P.Found (-123456789);
      P.Pairs [];
      P.Pairs [ (1, 10); (-2, 20); (3, -30) ];
      P.Committed;
      P.Stats_reply
        {
          s_conns_opened = 1; s_conns_active = 2; s_frames_in = 3;
          s_frames_out = 4; s_bytes_in = 5; s_bytes_out = 6;
          s_max_pipeline = 7; s_protocol_errors = 8; s_acked_commits = 9;
          s_lat_p50_us = 10; s_lat_p99_us = 11; s_cardinal = 12;
          s_height = 13;
        };
      P.Error "boom";
    ]

(* Every strict prefix of a frame must decode as Need_more, never raise:
   a reader that has half a frame just waits for the rest. *)
let test_truncated () =
  let b = Buffer.create 64 in
  P.encode_request b ~seq:1 (P.Insert { key = 99; value = 100 });
  let bytes = Buffer.to_bytes b in
  for len = 0 to Bytes.length bytes - 1 do
    match P.decode_request bytes ~pos:0 ~len with
    | Need_more -> ()
    | Frame _ -> Alcotest.failf "prefix of %d bytes decoded a frame" len
  done

(* Two frames back to back decode in order, [consumed] advancing. *)
let test_stream () =
  let b = Buffer.create 64 in
  P.encode_request b ~seq:1 (P.Search { key = 5 });
  P.encode_request b ~seq:2 P.Commit;
  let bytes = Buffer.to_bytes b in
  let len = Bytes.length bytes in
  match P.decode_request bytes ~pos:0 ~len with
  | Need_more -> Alcotest.fail "first frame"
  | Frame { seq; consumed; _ } -> (
      Alcotest.(check int) "first seq" 1 seq;
      match P.decode_request bytes ~pos:consumed ~len:(len - consumed) with
      | Need_more -> Alcotest.fail "second frame"
      | Frame { seq; consumed = c2; _ } ->
          Alcotest.(check int) "second seq" 2 seq;
          Alcotest.(check int) "stream fully consumed" len (consumed + c2))

let expect_bad what f =
  match f () with
  | exception P.Bad_frame _ -> ()
  | P.Need_more -> Alcotest.failf "%s: Need_more instead of Bad_frame" what
  | P.Frame _ -> Alcotest.failf "%s: decoded instead of Bad_frame" what

let test_malformed () =
  let fresh () =
    let b = Buffer.create 64 in
    P.encode_request b ~seq:1 (P.Insert { key = 1; value = 2 });
    Buffer.to_bytes b
  in
  let decode bytes ?max_payload () =
    P.decode_request ?max_payload bytes ~pos:0 ~len:(Bytes.length bytes)
  in
  let patch off v =
    let bytes = fresh () in
    Bytes.set bytes off (Char.chr v);
    bytes
  in
  expect_bad "magic" (decode (patch 0 0x58));
  expect_bad "version" (decode (patch 2 9));
  expect_bad "opcode" (decode (patch 3 200));
  (* oversized: the length field alone must reject the frame, before any
     attempt to buffer the payload *)
  let oversized = fresh () in
  Bytes.set oversized 8 '\x7f';
  expect_bad "oversized" (decode oversized);
  expect_bad "small cap" (decode (fresh ()) ~max_payload:8);
  (* flip one payload bit: checksum must catch it *)
  let corrupt = fresh () in
  Bytes.set corrupt 20 (Char.chr (Char.code (Bytes.get corrupt 20) lxor 1));
  expect_bad "checksum" (decode corrupt)

(* ---------- live server helpers ---------- *)

let loopback = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)

let with_server ?workers ?durable_acks ?(handle = (Tree_intf.sagiv ()).make ~order:4)
    ?(listen = [ loopback ]) f =
  let srv = Server.start ?workers ?durable_acks ~handle ~listen () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f srv (List.hd (Server.addresses srv)))

let with_client addr f =
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

let test_session () =
  with_server @@ fun srv addr ->
  with_client addr @@ fun c ->
  Alcotest.(check bool) "insert" true (C.insert c ~key:1 ~value:10 = `Ok);
  Alcotest.(check bool) "dup" true (C.insert c ~key:1 ~value:11 = `Duplicate);
  Alcotest.(check (option int)) "search" (Some 10) (C.search c ~key:1);
  Alcotest.(check (option int)) "miss" None (C.search c ~key:2);
  Alcotest.(check bool) "delete" true (C.delete c ~key:1);
  Alcotest.(check bool) "delete miss" false (C.delete c ~key:1);
  for k = 1 to 50 do
    ignore (C.insert c ~key:k ~value:(k * 2))
  done;
  Alcotest.(check (list (pair int int)))
    "range" [ (10, 20); (11, 22); (12, 24) ] (C.range c ~lo:10 ~hi:12);
  C.commit c;
  let s = C.stats c in
  Alcotest.(check int) "cardinal" 50 s.P.s_cardinal;
  Alcotest.(check bool) "frames counted" true (s.P.s_frames_in > 50);
  let m = Server.stats srv in
  Alcotest.(check int) "one connection" 1 m.Stats.conns_opened

(* A deep pipelined batch answers in order, one response per request,
   and counts as one high-water mark. *)
let test_pipeline () =
  with_server @@ fun srv addr ->
  with_client addr @@ fun c ->
  let n = 500 in
  let reqs =
    List.init n (fun i ->
        if i mod 2 = 0 then P.Insert { key = i; value = i }
        else P.Search { key = i - 1 })
  in
  let resps = C.pipeline c reqs in
  Alcotest.(check int) "one response per request" n (List.length resps);
  List.iteri
    (fun i r ->
      let expect = if i mod 2 = 0 then P.Inserted else P.Found (i - 1) in
      Alcotest.check response (Printf.sprintf "op %d" i) expect r)
    resps;
  let m = Server.stats srv in
  Alcotest.(check bool)
    (Printf.sprintf "pipeline high-water %d > 1" m.Stats.max_pipeline)
    true
    (m.Stats.max_pipeline > 1)

(* A bad frame earns a final Error and costs only that connection: the
   poisoned client sees the error then EOF, and a fresh connection is
   served as if nothing happened. *)
let test_error_isolation () =
  with_server @@ fun srv addr ->
  (with_client addr @@ fun c ->
   Alcotest.(check bool) "seed" true (C.insert c ~key:7 ~value:70 = `Ok));
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) SOCK_STREAM 0
  in
  Unix.connect fd addr;
  let garbage = Bytes.of_string "XXXXXXXXXXXXXXXXXXXXXXXX" in
  ignore (Unix.write fd garbage 0 (Bytes.length garbage));
  (* the terminal Error frame, then EOF *)
  let buf = Bytes.create 4096 in
  let n = Unix.read fd buf 0 4096 in
  (match P.decode_response buf ~pos:0 ~len:n with
  | Frame { body = P.Error _; _ } -> ()
  | _ -> Alcotest.fail "expected a terminal Error frame");
  Alcotest.(check int) "EOF after the error" 0 (Unix.read fd buf 0 4096);
  Unix.close fd;
  (with_client addr @@ fun c ->
   Alcotest.(check (option int))
     "later connections unaffected" (Some 70) (C.search c ~key:7));
  let m = Server.stats srv in
  Alcotest.(check int) "protocol error counted" 1 m.Stats.protocol_errors;
  (* the workers notice the closed fds asynchronously *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    if (Server.stats srv).Stats.conns_active = 0 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "connection leak: conns_active never returned to 0"
    else begin
      Unix.sleepf 0.01;
      settle ()
    end
  in
  settle ()

(* A client that pipelines a batch and drops the connection without
   reading a single response: the batch still executes (acks are lost,
   the work is not) and the server survives the EPIPE. *)
let test_drop_mid_batch () =
  with_server @@ fun _srv addr ->
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) SOCK_STREAM 0
  in
  Unix.connect fd addr;
  let b = Buffer.create 1024 in
  for i = 0 to 49 do
    P.encode_request b ~seq:i (P.Insert { key = 1000 + i; value = i })
  done;
  let bytes = Buffer.to_bytes b in
  ignore (Unix.write fd bytes 0 (Bytes.length bytes));
  Unix.close fd;
  (* the batch raced the drop; poll until the keys land *)
  with_client addr @@ fun c ->
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if C.search c ~key:1049 = Some 49 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "dropped batch never executed"
    else begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ();
  Alcotest.(check (option int)) "first key" (Some 0) (C.search c ~key:1000)

(* ---------- concurrency ---------- *)

(* ≥4 clients hammering one small key space through real sockets; every
   response feeds the per-key linearizability oracle. *)
let test_linearizable () =
  with_server ~workers:4 @@ fun _srv addr ->
  let rec_ = Linearize.recorder () in
  let key_space = 16 and per_client = 400 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let l = Linearize.local rec_ in
            let rng = Random.State.make [| 7000 + d |] in
            with_client addr @@ fun c ->
            for _ = 1 to per_client do
              let key = Random.State.int rng key_space in
              ignore
                (match Random.State.int rng 3 with
                | 0 ->
                    Linearize.record l ~key ~kind:Insert (fun () ->
                        C.insert c ~key ~value:key = `Ok)
                | 1 ->
                    Linearize.record l ~key ~kind:Delete (fun () ->
                        C.delete c ~key)
                | _ ->
                    Linearize.record l ~key ~kind:Search (fun () ->
                        C.search c ~key <> None))
            done;
            Linearize.merge_local l))
  in
  List.iter Domain.join domains;
  let v = Linearize.check (Linearize.events rec_) in
  if not (Linearize.ok v) then
    Alcotest.failf "linearizability violations on keys %s"
      (String.concat ", "
         (List.map (fun (k, _) -> string_of_int k) v.Linearize.violations));
  Alcotest.(check int) "all keys checked" key_space v.Linearize.keys_checked

(* 4 clients pipelining disjoint key ranges concurrently; every ack must
   be reflected in the final tree. *)
let test_concurrent_pipelines () =
  with_server ~workers:4 @@ fun _srv addr ->
  let per_client = 300 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            with_client addr @@ fun c ->
            let base = d * per_client in
            let resps =
              C.pipeline c
                (List.init per_client (fun i ->
                     P.Insert { key = base + i; value = base + i }))
            in
            List.for_all (( = ) P.Inserted) resps))
  in
  let all_acked = List.for_all Domain.join domains in
  Alcotest.(check bool) "every pipelined insert acked" true all_acked;
  with_client addr @@ fun c ->
  let s = C.stats c in
  Alcotest.(check int) "cardinal" (4 * per_client) s.P.s_cardinal;
  Alcotest.(check int) "five connections served" 5 s.P.s_conns_opened

(* ---------- Unix-domain socket ---------- *)

let test_unix_socket () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "blink-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      with_server ~listen:[ Unix.ADDR_UNIX path ] @@ fun _srv addr ->
      with_client addr @@ fun c ->
      Alcotest.(check bool) "insert" true (C.insert c ~key:5 ~value:50 = `Ok);
      Alcotest.(check (option int)) "search" (Some 50) (C.search c ~key:5))

(* ---------- WAL ack durability ---------- *)

(* The contract the server sells under durable acks: snapshot the crash
   image of both devices the moment the client has its acks — no
   shutdown, no extra sync — and recovery must hold every acked key. *)
let test_wal_acked_crash () =
  let data_page_size = 512 in
  let wal_page_size = Wal.log_page_size ~data_page_size in
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:64 ~wal:lfile pfile in
  let t = Sg.create ~order:4 ~store () in
  (* a committed checkpoint generation must exist for the log to replay
     against — same bootstrap the crash battery does *)
  Sg.flush t;
  let handle =
    Tree_intf.of_ops
      ~commit:(fun () -> Sg.commit t)
      ~range:(Sg.range t) ~name:"sagiv-disk" (module Sg) t
  in
  let n = 200 in
  let image, limage =
    with_server ~workers:2 ~durable_acks:true ~handle @@ fun _srv addr ->
    with_client addr @@ fun c ->
    let resps =
      C.pipeline c (List.init n (fun i -> P.Insert { key = i; value = i * 7 }))
    in
    List.iteri
      (fun i r -> Alcotest.check response (Printf.sprintf "ack %d" i) P.Inserted r)
      resps;
    (Paged_file.crash_image pfile, Paged_file.crash_image lfile)
  in
  let store2 = PS.open_from ~cache_pages:64 ~wal:limage image in
  let t2 = Sg.open_existing store2 in
  let c2 = Sg.ctx ~slot:0 in
  for i = 0 to n - 1 do
    match Sg.search t2 c2 i with
    | Some v when v = i * 7 -> ()
    | Some v -> Alcotest.failf "key %d recovered with value %d" i v
    | None -> Alcotest.failf "acked key %d lost across the crash" i
  done

(* ---------- replication over the wire ---------- *)

module R = Repro_client.Replica

(* A WAL-mode primary with the log exposed as a subscription source, as
   [blink_cli serve --wal] wires it. *)
let with_wal_primary f =
  let data_page_size = 512 in
  let wal_page_size = Wal.log_page_size ~data_page_size in
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:64 ~wal:lfile pfile in
  let t = Sg.create ~order:4 ~store () in
  Sg.flush t;
  let handle =
    Tree_intf.of_ops
      ~commit:(fun () -> Sg.commit t)
      ~range:(Sg.range t) ~name:"sagiv-disk" (module Sg) t
  in
  let wal_source =
    {
      Server.ws_shards = 1;
      ws_fetch =
        (fun ~shard:_ ~lsn ~max_pages -> PS.wal_fetch store ~lsn ~max_pages);
      ws_wait = (fun ~shard:_ ~lsn ~timeout -> PS.wal_wait store ~lsn ~timeout);
    }
  in
  let srv =
    Server.start ~workers:2 ~durable_acks:true ~wal_source ~handle
      ~listen:[ loopback ] ()
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f srv (List.hd (Server.addresses srv)))

let drain_replica r c =
  let rec go applied =
    match R.poll ~wait_ms:50 r c with
    | `Applied n -> go (applied + n)
    | `Caught_up -> applied
  in
  go 0

(* A replica subscribing through the real socket catches up with every
   committed batch and serves reads at its horizon; uncommitted work is
   invisible to it. *)
let test_replica_catch_up () =
  with_wal_primary @@ fun _srv addr ->
  with_client addr @@ fun c ->
  for k = 0 to 49 do
    ignore (C.insert c ~key:k ~value:(k * 3))
  done;
  C.commit c;
  with_client addr @@ fun rc ->
  let r = R.create () in
  let batches = drain_replica r rc in
  Alcotest.(check bool) "caught up with >= 1 batch" true (batches >= 1);
  Alcotest.(check int) "replica cardinal" 50 (R.cardinal r);
  let ctx = Repro_core.Handle.ctx ~slot:0 in
  Alcotest.(check (option int)) "replica search" (Some 21) (R.search r ctx 7);
  Alcotest.(check (list (pair int int)))
    "replica range"
    [ (10, 30); (11, 33); (12, 36) ]
    (R.range r ctx ~lo:10 ~hi:12);
  (* more committed writes arrive on the next poll *)
  for k = 50 to 59 do
    ignore (C.insert c ~key:k ~value:(k * 3))
  done;
  C.commit c;
  let more = drain_replica r rc in
  Alcotest.(check bool) "incremental batch applied" true (more >= 1);
  Alcotest.(check int) "replica cardinal after" 60 (R.cardinal r);
  (* under durable acks the ack itself implies a commit — which ships *)
  ignore (C.insert c ~key:999 ~value:1);
  Alcotest.(check bool) "acked write ships" true (drain_replica r rc >= 1);
  Alcotest.(check (option int)) "acked key visible" (Some 1) (R.search r ctx 999)

(* Kill the primary, promote the drained replica in place, and keep
   going read-write from the applied horizon. *)
let test_replica_promotion () =
  let r = R.create () in
  let ctx = Repro_core.Handle.ctx ~slot:0 in
  (with_wal_primary @@ fun _srv addr ->
   (with_client addr @@ fun c ->
    for k = 0 to 29 do
      ignore (C.insert c ~key:k ~value:(k * 5))
    done;
    C.commit c);
   with_client addr @@ fun rc ->
   ignore (drain_replica r rc));
  (* primary gone; the follower owns what it applied *)
  Alcotest.(check bool) "not promoted yet" false (R.promoted r);
  let h = R.handle r in
  (match h.Tree_intf.insert ctx 100 1 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "read-only replica accepted a write");
  R.promote r;
  Alcotest.(check bool) "promoted" true (R.promoted r);
  Alcotest.(check int) "history intact" 30 (R.cardinal r);
  Alcotest.(check bool) "write lands" true (h.Tree_intf.insert ctx 100 1 = `Ok);
  Alcotest.(check bool) "delete lands" true (h.Tree_intf.delete ctx 0);
  h.Tree_intf.commit ();
  Alcotest.(check (option int)) "new key" (Some 1) (R.search r ctx 100);
  Alcotest.(check (option int)) "deleted key" None (R.search r ctx 0);
  Alcotest.(check int) "cardinal tracks" 30 (R.cardinal r)

(* ---------- durable-MVCC replica reads ---------- *)

(* A durable-MVCC primary ships vrec (version-chain) pages through the
   same WAL stream as tree pages. The replica must resolve leaf slot
   pointers through the shipped chains at the persisted clock — raw leaf
   payloads are record pointers, not values. *)
let test_replica_mvcc_reads () =
  let module MD = Tree_intf.Mvcc_disk in
  let data_page_size = 512 in
  let wal_page_size = Wal.log_page_size ~data_page_size in
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:64 ~wal:lfile pfile in
  let md =
    MD.create_durable ~order:4 ~enc:Fun.id ~dec:Fun.id
      ~page_ints:(Tree_intf.vrec_page_ints store) store
  in
  MD.flush md;
  let handle = Tree_intf.mvcc_disk_sub_handle md ~name:"mvcc-disk" in
  let wal_source =
    {
      Server.ws_shards = 1;
      ws_fetch =
        (fun ~shard:_ ~lsn ~max_pages -> PS.wal_fetch store ~lsn ~max_pages);
      ws_wait = (fun ~shard:_ ~lsn ~timeout -> PS.wal_wait store ~lsn ~timeout);
    }
  in
  let srv =
    Server.start ~workers:2 ~durable_acks:true ~wal_source ~handle
      ~listen:[ loopback ] ()
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
  @@ fun () ->
  let addr = List.hd (Server.addresses srv) in
  (with_client addr @@ fun c ->
   for k = 0 to 29 do
     ignore (C.insert c ~key:k ~value:(k * 3))
   done;
   C.commit c);
  with_client addr @@ fun rc ->
  let r = R.create () in
  ignore (drain_replica r rc);
  let ctx = Repro_core.Handle.ctx ~slot:0 in
  Alcotest.(check bool) "mvcc horizon detected" true (R.mvcc_horizon r <> None);
  (* values, not record pointers *)
  Alcotest.(check (option int)) "chain resolved" (Some 21) (R.search r ctx 7);
  Alcotest.(check (list (pair int int)))
    "range resolves chains"
    [ (10, 30); (11, 33); (12, 36) ]
    (R.range r ctx ~lo:10 ~hi:12);
  Alcotest.(check int) "live cardinal" 30 (R.cardinal r);
  (* a tombstone ships as a chain head and reads as absent *)
  (with_client addr @@ fun c ->
   ignore (C.delete c ~key:7);
   C.commit c);
  ignore (drain_replica r rc);
  Alcotest.(check (option int)) "tombstone absent" None (R.search r ctx 7);
  Alcotest.(check int) "tombstone excluded from cardinal" 29 (R.cardinal r);
  (* overwrites append versions; the replica reads the newest at the cut *)
  (with_client addr @@ fun c ->
   ignore (C.insert c ~key:7 ~value:777);
   C.commit c);
  ignore (drain_replica r rc);
  Alcotest.(check (option int)) "resurrected head" (Some 777) (R.search r ctx 7);
  (* the clock ticks on snapshot cuts; the next shipped meta carries it *)
  let s = MD.snapshot md in
  MD.release s;
  (with_client addr @@ fun c ->
   ignore (C.insert c ~key:500 ~value:1);
   C.commit c);
  ignore (drain_replica r rc);
  let h1 = Option.get (R.mvcc_horizon r) in
  Alcotest.(check bool) "horizon advanced past the cut" true (h1 > 0);
  Alcotest.(check (option int)) "post-cut write visible" (Some 1)
    (R.search r ctx 500)

(* ---------- serve flag compatibility matrix ---------- *)

(* One case per row of the Serve_config matrix: every flag combination
   either resolves to a coherent configuration (with the expected ack
   durability) or is rejected with an actionable error.  This replaces
   the ad-hoc guards the CLI used to carry inline — the CLI now applies
   [Serve_config.validate] verbatim, so this table IS the behaviour. *)
let test_serve_config_matrix () =
  let module SC = Repro_server.Serve_config in
  let v ?(backend = "mem") ?(durability = "sync") ?(shards = 1)
      ?(mvcc = false) ?path () =
    SC.validate ~backend ~durability ~shards ~mvcc ~path
  in
  let ok name r =
    match r with
    | Ok (c : SC.t) -> c
    | Error e -> Alcotest.failf "%s: unexpected rejection: %s" name e
  in
  let err name r =
    match r with
    | Ok (_ : SC.t) -> Alcotest.failf "%s: accepted an invalid combination" name
    | Error e -> Alcotest.(check bool) (name ^ " message nonempty") true (e <> "")
  in
  (* accepted rows *)
  let c = ok "mem plain" (v ()) in
  Alcotest.(check bool) "mem acks volatile" false c.SC.durable_acks;
  let c = ok "disk plain" (v ~backend:"disk" ()) in
  Alcotest.(check bool) "disk acks durable" true c.SC.durable_acks;
  ignore (ok "disk sharded" (v ~backend:"disk" ~shards:4 ()));
  ignore (ok "disk wal" (v ~backend:"disk" ~durability:"wal" ()));
  ignore (ok "mem mvcc" (v ~mvcc:true ()));
  ignore (ok "mem mvcc sharded" (v ~mvcc:true ~shards:4 ()));
  let c =
    ok "disk mvcc sharded wal path"
      (v ~backend:"disk" ~durability:"wal" ~shards:4 ~mvcc:true
         ~path:"/tmp/t.db" ())
  in
  Alcotest.(check bool) "durable mvcc acks durable" true c.SC.durable_acks;
  Alcotest.(check int) "shards carried" 4 c.SC.shards;
  Alcotest.(check bool) "wal carried" true c.SC.wal;
  Alcotest.(check (option string)) "path carried" (Some "/tmp/t.db") c.SC.path;
  ignore (ok "disk mvcc plain" (v ~backend:"disk" ~mvcc:true ()));
  (* rejected rows *)
  err "unknown backend" (v ~backend:"floppy" ());
  err "unknown durability" (v ~durability:"fsync-maybe" ());
  err "zero shards" (v ~shards:0 ());
  err "negative shards" (v ~shards:(-3) ());
  err "wal on mem" (v ~durability:"wal" ());
  err "wal on mem sharded mvcc" (v ~durability:"wal" ~shards:4 ~mvcc:true ());
  err "path on mem" (v ~path:"/tmp/t.db" ());
  err "plain mem sharding" (v ~shards:4 ());
  (* the row the tentpole fixed: mem sharding is fine WITH mvcc, and
     disk sharding never needed it *)
  ignore (ok "mem sharding with mvcc" (v ~shards:8 ~mvcc:true ()));
  ignore (ok "disk sharding sans mvcc" (v ~backend:"disk" ~shards:8 ()))

let suite =
  [
    ("protocol roundtrip", `Quick, test_roundtrip);
    ("truncated frames wait", `Quick, test_truncated);
    ("frame stream", `Quick, test_stream);
    ("malformed frames rejected", `Quick, test_malformed);
    ("client session", `Quick, test_session);
    ("deep pipeline", `Quick, test_pipeline);
    ("bad frame isolates its connection", `Quick, test_error_isolation);
    ("connection drop mid-batch", `Quick, test_drop_mid_batch);
    ("4 clients linearizable", `Quick, test_linearizable);
    ("4 pipelined clients, all acks hold", `Quick, test_concurrent_pipelines);
    ("unix-domain socket", `Quick, test_unix_socket);
    ("acked write survives crash (wal)", `Quick, test_wal_acked_crash);
    ("replica catches up over the socket", `Quick, test_replica_catch_up);
    ("replica promotion after primary loss", `Quick, test_replica_promotion);
    ("replica resolves durable-mvcc chains", `Quick, test_replica_mvcc_reads);
    ("serve flag compatibility matrix", `Quick, test_serve_config_matrix);
  ]
