(* The KV layer: record heap + index, sequential and concurrent, with
   record-slot reclamation. *)

open Repro_storage
open Repro_core
module KV = Kv.Make (Key.Int)

let ctx = KV.ctx

let test_record_store_basic () =
  let rs = Record_store.create ~size:String.length () in
  let a = Record_store.put rs ~epoch:0 "hello" in
  let b = Record_store.put rs ~epoch:0 "world" in
  Alcotest.(check (option string)) "a" (Some "hello") (Record_store.get rs a);
  Alcotest.(check (option string)) "b" (Some "world") (Record_store.get rs b);
  Alcotest.(check int) "live" 2 (Record_store.live_count rs);
  Alcotest.(check int) "bytes" 10 (Record_store.bytes_stored rs);
  Record_store.free rs a;
  (match Record_store.get rs a with
  | exception Record_store.Freed_record _ -> ()
  | _ -> Alcotest.fail "freed record readable");
  let c = Record_store.put rs ~epoch:0 "again" in
  Alcotest.(check int) "slot recycled" a c;
  Alcotest.(check int) "live after recycle" 2 (Record_store.live_count rs)

let test_record_store_concurrent () =
  let rs = Record_store.create ~size:String.length () in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            Array.init 2_000 (fun i ->
                let s = Printf.sprintf "%d:%d" d i in
                (Record_store.put rs ~epoch:0 s, s))))
  in
  let all = Array.concat (Array.to_list (Array.map Domain.join domains)) in
  Array.iter
    (fun (p, s) ->
      if Record_store.get rs p <> Some s then Alcotest.failf "record %d corrupted" p)
    all

let test_kv_basic () =
  let kv = KV.create ~order:4 () in
  let c = ctx ~slot:0 in
  KV.put kv c 1 "one";
  KV.put kv c 2 "two";
  Alcotest.(check (option string)) "get" (Some "one") (KV.get kv c 1);
  Alcotest.(check (option string)) "miss" None (KV.get kv c 3);
  KV.put kv c 1 "uno";
  Alcotest.(check (option string)) "overwrite" (Some "uno") (KV.get kv c 1);
  Alcotest.(check bool) "remove" true (KV.remove kv c 1);
  Alcotest.(check bool) "remove gone" false (KV.remove kv c 1);
  Alcotest.(check (option string)) "after remove" None (KV.get kv c 1);
  Alcotest.(check int) "cardinal" 1 (KV.cardinal kv)

let test_kv_oracle () =
  let kv = KV.create ~order:4 () in
  let c = ctx ~slot:0 in
  let model = Hashtbl.create 97 in
  let rng = Repro_util.Splitmix.create 8 in
  for i = 1 to 20_000 do
    let k = Repro_util.Splitmix.int rng 1_000 in
    match Repro_util.Splitmix.int rng 3 with
    | 0 ->
        let v = Printf.sprintf "v%d@%d" k i in
        Hashtbl.replace model k v;
        KV.put kv c k v
    | 1 ->
        let expected = Hashtbl.mem model k in
        Hashtbl.remove model k;
        if KV.remove kv c k <> expected then Alcotest.failf "remove %d diverged" k
    | _ ->
        if KV.get kv c k <> Hashtbl.find_opt model k then
          Alcotest.failf "get %d diverged at op %d" k i
  done;
  Alcotest.(check int) "cardinal" (Hashtbl.length model) (KV.cardinal kv);
  (* periodic reclamation frees overwritten records *)
  ignore (KV.reclaim kv c);
  Alcotest.(check int) "live records = live keys" (Hashtbl.length model)
    (KV.live_records kv)

let test_kv_range () =
  let kv = KV.create ~order:4 () in
  let c = ctx ~slot:0 in
  for k = 0 to 99 do
    KV.put kv c k (string_of_int (k * 2))
  done;
  let b = KV.bindings kv c ~lo:10 ~hi:14 in
  Alcotest.(check (list (pair int string)))
    "bindings"
    [ (10, "20"); (11, "22"); (12, "24"); (13, "26"); (14, "28") ]
    b;
  let sum = KV.fold_range kv c ~lo:0 ~hi:99 ~init:0 (fun acc _ v -> acc + int_of_string v) in
  Alcotest.(check int) "fold" (2 * (99 * 100 / 2)) sum

let test_kv_concurrent_updates () =
  (* Readers continuously get keys while writers overwrite them; every
     read must return a complete value some writer wrote for that key —
     never a torn/wrong-key value, and never hit a reclaimed slot. *)
  let kv = KV.create ~order:8 () in
  let c = ctx ~slot:0 in
  let keys = 500 in
  for k = 0 to keys - 1 do
    KV.put kv c k (Printf.sprintf "%d:init" k)
  done;
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let writers =
    Array.init 2 (fun w ->
        Domain.spawn (fun () ->
            let wc = ctx ~slot:(1 + w) in
            let rng = Repro_util.Splitmix.create (w + 40) in
            for i = 1 to 30_000 do
              let k = Repro_util.Splitmix.int rng keys in
              KV.put kv wc k (Printf.sprintf "%d:w%d.%d" k w i);
              if i mod 1000 = 0 then ignore (KV.reclaim kv c)
            done))
  in
  let readers =
    Array.init 2 (fun r ->
        Domain.spawn (fun () ->
            let rc = ctx ~slot:(3 + r) in
            let rng = Repro_util.Splitmix.create (r + 50) in
            while not (Atomic.get stop) do
              let k = Repro_util.Splitmix.int rng keys in
              match KV.get kv rc k with
              | Some v ->
                  (* value must start with "<k>:" *)
                  let prefix = string_of_int k ^ ":" in
                  if
                    String.length v < String.length prefix
                    || String.sub v 0 (String.length prefix) <> prefix
                  then Atomic.incr errors
              | None -> Atomic.incr errors
              | exception Record_store.Freed_record _ -> Atomic.incr errors
            done))
  in
  Array.iter Domain.join writers;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  Alcotest.(check int) "no torn/stale/freed reads" 0 (Atomic.get errors);
  ignore (KV.reclaim kv c);
  Alcotest.(check int) "records = keys after reclaim" keys (KV.live_records kv)

let test_kv_reclaim_bounded () =
  (* Overwriting the same key many times must not leak records. *)
  let kv = KV.create ~order:4 () in
  let c = ctx ~slot:0 in
  for i = 1 to 10_000 do
    KV.put kv c 7 (string_of_int i);
    if i mod 100 = 0 then ignore (KV.reclaim kv c)
  done;
  ignore (KV.reclaim kv c);
  Alcotest.(check int) "single live record" 1 (KV.live_records kv);
  Alcotest.(check (option string)) "latest wins" (Some "10000") (KV.get kv c 7)

let test_kv_dump_restore () =
  let kv = KV.create ~order:4 () in
  let c = ctx ~slot:0 in
  for k = 0 to 2_999 do
    KV.put kv c k (Printf.sprintf "value-%d" k)
  done;
  for k = 0 to 2_999 do
    if k mod 3 = 0 then ignore (KV.remove kv c k)
  done;
  KV.put kv c 42 "overwritten";
  let dump = KV.save kv in
  let kv' = KV.load dump in
  Alcotest.(check int) "cardinal" (KV.cardinal kv) (KV.cardinal kv');
  for k = 0 to 2_999 do
    if KV.get kv' c k <> KV.get kv c k then Alcotest.failf "key %d differs after restore" k
  done;
  (* restored store is live *)
  KV.put kv' c 100_000 "fresh";
  Alcotest.(check (option string)) "usable" (Some "fresh") (KV.get kv' c 100_000);
  (* corruption detected *)
  Bytes.set_uint8 dump 0 0x00;
  match KV.load dump with
  | exception KV.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt dump accepted"

let suite =
  [
    Alcotest.test_case "kv dump/restore" `Quick test_kv_dump_restore;
    Alcotest.test_case "record store basics" `Quick test_record_store_basic;
    Alcotest.test_case "record store concurrent" `Quick test_record_store_concurrent;
    Alcotest.test_case "kv basics" `Quick test_kv_basic;
    Alcotest.test_case "kv vs oracle" `Quick test_kv_oracle;
    Alcotest.test_case "kv range" `Quick test_kv_range;
    Alcotest.test_case "kv concurrent updates" `Quick test_kv_concurrent_updates;
    Alcotest.test_case "kv reclaim bounded" `Quick test_kv_reclaim_bounded;
  ]
