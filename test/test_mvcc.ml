(* MVCC snapshots end to end: version visibility at a pinned cut,
   vacuum behind and after pins, group snapshots across shards, the
   scan-consistency oracle under 4 concurrent writer domains (single
   tree and sharded), the documented-weak unversioned range, online
   backup / leak-check / checkpoint with writers live, the server's
   SNAPSHOT session, and the replica's one-horizon-per-scan
   regression. *)

open Repro_storage
open Repro_baseline
open Repro_harness
module M = Tree_intf.Mvcc_int
module Sg = Repro_core.Sagiv.Make (Key.Int)
module Sn = Repro_core.Snapshot.Make (Key.Int)
module Ck = Repro_core.Checkpoint.Make (Key.Int)
module V = Repro_core.Validate.Make (Key.Int)
module P = Repro_server.Protocol
module Server = Repro_server.Server
module C = Repro_client.Client
module R = Repro_client.Replica

let mctx = M.ctx

(* ---------- snapshot visibility ---------- *)

let test_snapshot_visibility () =
  let st = M.create ~order:4 () in
  let c = mctx ~slot:0 in
  for k = 1 to 100 do
    M.upsert st c k (k * 10)
  done;
  let s = M.snapshot st in
  (* post-cut churn of every flavour *)
  M.upsert st c 1 999;
  Alcotest.(check bool) "delete live" true (M.delete st c 2);
  Alcotest.(check bool) "insert new" true (M.insert st c 101 5 = `Ok);
  (* the cut is frozen *)
  Alcotest.(check (option int)) "snap overwritten" (Some 10) (M.snap_get st s c 1);
  Alcotest.(check (option int)) "snap deleted" (Some 20) (M.snap_get st s c 2);
  Alcotest.(check (option int)) "snap unborn" None (M.snap_get st s c 101);
  (* current time moved on *)
  Alcotest.(check (option int)) "now overwritten" (Some 999) (M.get st c 1);
  Alcotest.(check (option int)) "now deleted" None (M.get st c 2);
  Alcotest.(check (option int)) "now born" (Some 5) (M.get st c 101);
  Alcotest.(check (list (pair int int)))
    "snap range is the cut"
    [ (1, 10); (2, 20); (3, 30) ]
    (M.snap_range st s c ~lo:1 ~hi:3);
  M.release s;
  (* released snaps refuse reads instead of lying *)
  (match M.snap_get st s c 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "released snapshot still answered");
  M.release s (* idempotent *)

let test_vacuum_behind_pin () =
  let st = M.create ~order:4 () in
  let c = mctx ~slot:0 in
  for k = 1 to 50 do
    M.upsert st c k k
  done;
  let s = M.snapshot st in
  for k = 1 to 50 do
    if k mod 2 = 0 then ignore (M.delete st c k : bool)
  done;
  (* every tombstone postdates the pin: nothing is removable *)
  let removed = M.vacuum st c in
  Alcotest.(check int) "vacuum behind the pin removes nothing" 0 removed;
  Alcotest.(check (option int)) "pinned read intact" (Some 2) (M.snap_get st s c 2);
  Alcotest.(check int) "snap scan sees all 50" 50
    (List.length (M.snap_range st s c ~lo:1 ~hi:50));
  M.release s;
  (* horizon passes the tombstones: the dead pairs go *)
  let removed = M.vacuum st c in
  ignore (M.reclaim st : int);
  Alcotest.(check int) "vacuum after release removes the evens" 25 removed;
  Alcotest.(check (option int)) "gone" None (M.get st c 2);
  Alcotest.(check int) "current scan halved" 25
    (List.length (M.range st c ~lo:1 ~hi:50))

let test_version_pruning () =
  let st = M.create ~order:4 () in
  let c = mctx ~slot:0 in
  for i = 1 to 100 do
    M.upsert st c 7 i
  done;
  Alcotest.(check bool) "chain built up" true (M.live_versions st > 1);
  ignore (M.vacuum st c : int);
  Alcotest.(check bool) "cold tail pruned" true (M.pruned_versions st > 0);
  Alcotest.(check (option int)) "newest survives" (Some 100) (M.get st c 7);
  let io = M.io_stats st in
  Alcotest.(check int) "io gauge versions" (M.live_versions st)
    io.Stats.mvcc_versions;
  Alcotest.(check int) "io gauge pruned" (M.pruned_versions st)
    io.Stats.mvcc_pruned;
  Alcotest.(check int) "io gauge pins" 0 io.Stats.snap_pins

let test_group_snapshot () =
  let epoch = Epoch.create () in
  let a = M.create ~order:4 ~epoch () in
  let b = M.create ~order:4 ~epoch () in
  let c = mctx ~slot:0 in
  M.upsert a c 1 10;
  M.upsert b c 2 20;
  let s = M.snapshot_group [| a; b |] in
  M.upsert a c 1 11;
  M.upsert b c 2 21;
  Alcotest.(check (option int)) "a at cut" (Some 10) (M.snap_get a s c 1);
  Alcotest.(check (option int)) "b at cut" (Some 20) (M.snap_get b s c 2);
  M.release s;
  let lone = M.create ~order:4 () in
  match M.snapshot_group [| a; lone |] with
  | exception Invalid_argument _ -> ()
  | s ->
      M.release s;
      Alcotest.fail "group snapshot over unrelated epochs accepted"

(* ---------- the scan-consistency oracle ---------- *)

(* Writer [w] owns keys [w*1000 .. w*1000+block-1], preloaded with 0 and
   swept with steps 1..steps (value = step, distinct per key). Scans run
   from the main domain while the sweep is live; the oracle then decides
   feasibility from the logged wall-clock intervals. *)
let run_scan_battery ~writers ~block ~steps ~upsert ~scan =
  let universe =
    List.concat
      (List.init writers (fun w -> List.init block (fun i -> (w * 1000) + i)))
  in
  List.iter (fun k -> upsert (mctx ~slot:0) k 0) universe;
  let logs = Array.init writers (fun _ -> Scan_oracle.log_create ()) in
  let running = Atomic.make writers in
  let doms =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            let ctx = mctx ~slot:(w + 1) in
            for s = 1 to steps do
              for i = 0 to block - 1 do
                let k = (w * 1000) + i in
                Scan_oracle.logged logs.(w) ~key:k ~value:(Some s) (fun () ->
                    upsert ctx k s)
              done
            done;
            Atomic.decr running))
  in
  let scans = ref [] in
  while Atomic.get running > 0 do
    scans := scan (mctx ~slot:0) :: !scans;
    Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  (* and one quiescent scan: must be the exact final state *)
  let final = scan (mctx ~slot:0) in
  List.iter
    (fun (k, v) ->
      if v <> steps then Alcotest.failf "final scan: key %d at step %d" k v)
    final;
  Alcotest.(check int) "final scan covers the universe"
    (List.length universe) (List.length final);
  let checked = ref 0 in
  List.iter
    (fun scan ->
      incr checked;
      match
        Scan_oracle.check ~logs
          ~owner:(fun k -> k / 1000)
          ~initial:(fun _ -> Some 0)
          ~universe ~scan
      with
      | [] -> ()
      | vs ->
          Alcotest.failf "scan %d inconsistent: %s" !checked
            (String.concat "; " vs))
    (final :: !scans);
  !checked

let test_scan_oracle_single () =
  let st, h = Tree_intf.sagiv_mvcc_raw ~order:4 () in
  let m = Option.get h.Tree_intf.mvcc in
  let scanned =
    run_scan_battery ~writers:4 ~block:32 ~steps:25
      ~upsert:(fun ctx k v -> M.upsert st ctx k v)
      ~scan:(fun ctx ->
        let s = m.Tree_intf.snapshot () in
        Fun.protect ~finally:s.Tree_intf.snap_release (fun () ->
            s.Tree_intf.snap_range ctx ~lo:0 ~hi:max_int))
  in
  Alcotest.(check bool) "scanned while writers ran" true (scanned >= 1);
  (* vacuum converges once quiescent *)
  ignore (m.Tree_intf.vacuum (mctx ~slot:0) : int);
  let g = m.Tree_intf.gauges () in
  Alcotest.(check int) "no pins left" 0 g.Tree_intf.g_snap_pins

let test_scan_oracle_sharded () =
  let shards = 4 in
  let ts, h = Tree_intf.sagiv_mvcc_sharded_raw ~shards ~order:4 () in
  let m = Option.get h.Tree_intf.mvcc in
  let route k = Shard_router.shard_of ~shards k in
  let scanned =
    run_scan_battery ~writers:4 ~block:24 ~steps:20
      ~upsert:(fun ctx k v -> M.upsert ts.(route k) ctx k v)
      ~scan:(fun ctx ->
        let s = m.Tree_intf.snapshot () in
        Fun.protect ~finally:s.Tree_intf.snap_release (fun () ->
            s.Tree_intf.snap_range ctx ~lo:0 ~hi:max_int))
  in
  Alcotest.(check bool) "scanned while writers ran" true (scanned >= 1)

(* The unversioned [handle.range] is documented weak: under writers it
   need not be a cut, but it must stay a well-formed ordered scan
   (strictly ascending keys, every value some step each key held). *)
let test_weak_range_documented () =
  let st, h = Tree_intf.sagiv_mvcc_raw ~order:4 () in
  let range = Option.get h.Tree_intf.range in
  let c0 = mctx ~slot:0 in
  let block = 64 and steps = 30 in
  for k = 0 to block - 1 do
    M.upsert st c0 k 0
  done;
  let running = Atomic.make 2 in
  let doms =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            let ctx = mctx ~slot:(w + 1) in
            for s = 1 to steps do
              for i = 0 to (block / 2) - 1 do
                M.upsert st ctx ((w * block / 2) + i) s
              done
            done;
            Atomic.decr running))
  in
  while Atomic.get running > 0 do
    let ps = range c0 ~lo:0 ~hi:max_int in
    let rec ordered = function
      | (a, _) :: ((b, _) :: _ as rest) ->
          if a >= b then Alcotest.failf "weak range out of order at %d" b;
          ordered rest
      | _ -> ()
    in
    ordered ps;
    List.iter
      (fun (k, v) ->
        if k < 0 || k >= block || v < 0 || v > steps then
          Alcotest.failf "weak range: impossible pair %d=%d" k v)
      ps
  done;
  List.iter Domain.join doms

(* The oracle itself must reject infeasible scans. *)
let test_oracle_rejects () =
  let l = Scan_oracle.log_create () in
  Scan_oracle.record l ~key:1 ~value:(Some 1) ~start:1.0 ~stop:1.1;
  Scan_oracle.record l ~key:2 ~value:(Some 1) ~start:1.2 ~stop:1.3;
  Scan_oracle.record l ~key:1 ~value:(Some 2) ~start:2.0 ~stop:2.1;
  Scan_oracle.record l ~key:2 ~value:(Some 2) ~start:2.2 ~stop:2.3;
  let check scan =
    Scan_oracle.check ~logs:[| l |]
      ~owner:(fun _ -> 0)
      ~initial:(fun _ -> None)
      ~universe:[ 1; 2 ] ~scan
  in
  (* key 2 already at step 2 while key 1 still at step 1: the writer
     finished 1@2 before starting 2@2, so no instant shows this *)
  Alcotest.(check bool) "torn sweep rejected" true (check [ (1, 1); (2, 2) ] <> []);
  (* the mid-sweep cut (key 1 advanced first) is fine *)
  Alcotest.(check (list string)) "mid-sweep cut accepted" [] (check [ (1, 2); (2, 1) ]);
  Alcotest.(check (list string)) "old state accepted" [] (check [ (1, 1); (2, 1) ]);
  Alcotest.(check (list string)) "new state accepted" [] (check [ (1, 2); (2, 2) ]);
  (* cross-writer: per-writer consistent states with disjoint windows *)
  let a = Scan_oracle.log_create () and b = Scan_oracle.log_create () in
  Scan_oracle.record a ~key:1 ~value:(Some 1) ~start:1.0 ~stop:1.2;
  Scan_oracle.record a ~key:1 ~value:(Some 2) ~start:1.8 ~stop:2.0;
  Scan_oracle.record b ~key:1001 ~value:(Some 1) ~start:1.0 ~stop:1.2;
  Scan_oracle.record b ~key:1001 ~value:(Some 2) ~start:5.0 ~stop:5.2;
  let check2 scan =
    Scan_oracle.check ~logs:[| a; b |]
      ~owner:(fun k -> k / 1000)
      ~initial:(fun _ -> None)
      ~universe:[ 1; 1001 ] ~scan
  in
  Alcotest.(check bool) "no common instant rejected" true
    (check2 [ (1, 1); (1001, 2) ] <> []);
  Alcotest.(check (list string)) "common instant accepted" []
    (check2 [ (1, 2); (1001, 1) ])

(* ---------- online backup / validate / checkpoint ---------- *)

(* Stable keys 1..400 never move; two writer domains churn a disjoint
   high block while the online pass runs. Every stable pair must land
   exactly; churn keys may or may not, but only inside their block. *)
let with_churn f =
  let t = Sg.create ~order:4 () in
  let c = Sg.ctx ~slot:0 in
  for k = 1 to 400 do
    ignore (Sg.insert t c k (k * 3))
  done;
  let stop = Atomic.make false in
  let doms =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            let ctx = Sg.ctx ~slot:(w + 1) in
            let base = 10_000 + (w * 1000) in
            let i = ref 0 in
            while not (Atomic.get stop) do
              let k = base + (!i mod 500) in
              (match Sg.insert t ctx k !i with
              | `Ok -> ()
              | `Duplicate -> ignore (Sg.delete t ctx k : bool));
              incr i
            done))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      List.iter Domain.join doms)
    (fun () -> f t c)

let check_restored t' =
  let c = Sg.ctx ~slot:0 in
  for k = 1 to 400 do
    match Sg.search t' c k with
    | Some v when v = k * 3 -> ()
    | Some v -> Alcotest.failf "stable key %d restored as %d" k v
    | None -> Alcotest.failf "stable key %d missing from the image" k
  done;
  List.iter
    (fun (k, _) ->
      if not ((k >= 1 && k <= 400) || (k >= 10_000 && k < 12_000)) then
        Alcotest.failf "image invented key %d" k)
    (Sg.range t' c ~lo:min_int ~hi:max_int);
  let r = V.check t' in
  if not (Repro_core.Validate.ok r) then
    Alcotest.failf "restored tree invalid: %s"
      (String.concat "; " r.Repro_core.Validate.errors)

let test_online_snapshot_save () =
  with_churn @@ fun t c ->
  for _ = 1 to 3 do
    check_restored (Sn.load (Sn.save_online t c))
  done

let test_online_leak_check () =
  with_churn @@ fun t _c ->
  for pass = 1 to 3 do
    match V.leak_check_online t with
    | [] -> ()
    | leaks ->
        Alcotest.failf "pass %d: %d pages reported leaked under churn" pass
          (List.length leaks)
  done

let test_online_checkpoint () =
  with_churn @@ fun t c ->
  let pf = Paged_file.create_memory () in
  Ck.save_online t c pf;
  check_restored (Ck.load pf)

(* Quiescent cross-check: the lock-free full scan equals the reference
   range over a tree with deletions. *)
let test_fold_all_quiescent () =
  let t = Sg.create ~order:4 () in
  let c = Sg.ctx ~slot:0 in
  for k = 1 to 1000 do
    ignore (Sg.insert t c k (k * 7))
  done;
  for k = 1 to 1000 do
    if k mod 3 = 0 then ignore (Sg.delete t c k : bool)
  done;
  let scanned =
    List.rev (Sg.fold_all t c ~init:[] (fun acc k p -> (k, p) :: acc))
  in
  Alcotest.(check (list (pair int int)))
    "fold_all = range" (Sg.range t c ~lo:min_int ~hi:max_int) scanned

(* ---------- server SNAPSHOT sessions ---------- *)

let loopback = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)

let with_server ~handle f =
  let srv = Server.start ~workers:2 ~handle ~listen:[ loopback ] () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f (List.hd (Server.addresses srv)))

let with_client addr f =
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

let test_server_snapshot_session () =
  with_server ~handle:((Tree_intf.sagiv_mvcc ()).make ~order:4) @@ fun addr ->
  with_client addr @@ fun c ->
  Alcotest.(check bool) "seed" true (C.insert c ~key:1 ~value:10 = `Ok);
  let epoch = C.snapshot_open c in
  Alcotest.(check bool) "epoch sane" true (epoch >= 0);
  (* writes keep landing (even on the pinned connection) *)
  Alcotest.(check bool) "post-cut insert" true (C.insert c ~key:2 ~value:20 = `Ok);
  Alcotest.(check bool) "post-cut delete" true (C.delete c ~key:1);
  (* ... but this connection reads at the cut *)
  Alcotest.(check (option int)) "pinned search" (Some 10) (C.search c ~key:1);
  Alcotest.(check (option int)) "unborn invisible" None (C.search c ~key:2);
  Alcotest.(check (list (pair int int)))
    "pinned range" [ (1, 10) ] (C.range c ~lo:0 ~hi:100);
  (* a second connection reads current time *)
  (with_client addr @@ fun c2 ->
   Alcotest.(check (option int)) "fresh conn current" (Some 20) (C.search c2 ~key:2));
  C.snapshot_close c;
  Alcotest.(check (option int)) "current after close" None (C.search c ~key:1);
  Alcotest.(check (list (pair int int)))
    "current range" [ (2, 20) ] (C.range c ~lo:0 ~hi:100)

let test_server_snapshot_unsupported () =
  with_server ~handle:((Tree_intf.sagiv ()).make ~order:4) @@ fun addr ->
  with_client addr @@ fun c ->
  match C.snapshot_open c with
  | exception C.Remote_error _ -> ()
  | _ -> Alcotest.fail "non-MVCC backend opened a snapshot"

(* Regression: an exception thrown between pin publication and release —
   here an ack commit failing after the batch executed — must not leak
   the connection's SNAPSHOT pin. Before the [Fun.protect] teardown the
   exception skipped the release entirely (worker_loop swallows it), so
   the pin held vacuum's horizon down forever. *)
let test_server_pin_survives_conn_crash () =
  let st, h = Tree_intf.sagiv_mvcc_raw ~order:4 () in
  let h =
    { h with Tree_intf.commit = (fun () -> failwith "injected commit failure") }
  in
  let srv =
    Server.start ~workers:2 ~durable_acks:true ~handle:h ~listen:[ loopback ] ()
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let addr = List.hd (Server.addresses srv) in
  let c0 = mctx ~slot:0 in
  let c = C.connect addr in
  ignore (C.snapshot_open c : int);
  Alcotest.(check bool) "pin held" true (M.min_pinned st <> max_int);
  (* the mutation's durable ack calls the poisoned commit: the batch
     loop dies mid-connection, past the per-request exception guard *)
  (match C.insert c ~key:1 ~value:1 with
  | _ -> ()
  | exception _ -> ());
  (try C.close c with _ -> ());
  let rec wait n =
    if M.min_pinned st <> max_int then
      if n = 0 then Alcotest.fail "SNAPSHOT pin leaked after connection crash"
      else begin
        Unix.sleepf 0.01;
        wait (n - 1)
      end
  in
  wait 300;
  (* with the pin gone, vacuum proceeds *)
  M.upsert st c0 5 50;
  ignore (M.delete st c0 5 : bool);
  Alcotest.(check bool) "vacuum proceeds" true (M.vacuum st c0 >= 1)

let test_snapshot_frame_roundtrip () =
  let req r =
    let b = Buffer.create 64 in
    P.encode_request b ~seq:9 r;
    let bytes = Buffer.to_bytes b in
    match P.decode_request bytes ~pos:0 ~len:(Bytes.length bytes) with
    | Frame { body; _ } -> Alcotest.(check bool) "req" true (body = r)
    | Need_more -> Alcotest.fail "Need_more"
  in
  req (P.Snapshot { close = false });
  req (P.Snapshot { close = true });
  let resp r =
    let b = Buffer.create 64 in
    P.encode_response b ~seq:9 r;
    let bytes = Buffer.to_bytes b in
    match P.decode_response bytes ~pos:0 ~len:(Bytes.length bytes) with
    | Frame { body; _ } -> Alcotest.(check bool) "resp" true (body = r)
    | Need_more -> Alcotest.fail "Need_more"
  in
  resp (P.Snap_reply { epoch = 12345 });
  resp (P.Snap_reply { epoch = -1 })

(* ---------- replica scan horizon ---------- *)

module PS = Tree_intf.Paged_int
module SgD = Tree_intf.Sagiv_disk

(* Regression: the replica installs a whole batch under the same mutex
   its scans hold, so a long scan can never straddle a batch. Each round
   commits a contiguous key block; a scan must always see a contiguous
   prefix (a torn install would surface high keys of a batch while
   lower ones are still missing). *)
let test_replica_scan_horizon () =
  let data_page_size = 512 in
  let wal_page_size = Wal.log_page_size ~data_page_size in
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:64 ~wal:lfile pfile in
  let t = SgD.create ~order:4 ~store () in
  SgD.flush t;
  let handle =
    Tree_intf.of_ops
      ~commit:(fun () -> SgD.commit t)
      ~range:(SgD.range t) ~name:"sagiv-disk" (module SgD) t
  in
  let wal_source =
    {
      Server.ws_shards = 1;
      ws_fetch = (fun ~shard:_ ~lsn ~max_pages -> PS.wal_fetch store ~lsn ~max_pages);
      ws_wait = (fun ~shard:_ ~lsn ~timeout -> PS.wal_wait store ~lsn ~timeout);
    }
  in
  let srv =
    Server.start ~workers:2 ~durable_acks:true ~wal_source ~handle
      ~listen:[ loopback ] ()
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let addr = List.hd (Server.addresses srv) in
  with_client addr @@ fun c ->
  with_client addr @@ fun rc ->
  let r = R.create () in
  let stop = Atomic.make false in
  let bad = Atomic.make None in
  let scanner =
    Domain.spawn (fun () ->
        let ctx = Repro_core.Handle.ctx ~slot:3 in
        while not (Atomic.get stop) do
          let ps = R.range r ctx ~lo:0 ~hi:max_int in
          List.iteri
            (fun i (k, v) ->
              if k <> i then
                Atomic.set bad
                  (Some (Printf.sprintf "gap: index %d holds key %d" i k))
              else if v <> k / 25 then
                Atomic.set bad
                  (Some (Printf.sprintf "key %d from batch %d" k v)))
            ps;
          Domain.cpu_relax ()
        done)
  in
  let drain () =
    let rec go n =
      match R.poll ~wait_ms:50 r rc with
      | `Applied a -> go (n + a)
      | `Caught_up -> n
    in
    go 0
  in
  for b = 0 to 19 do
    let reqs = List.init 25 (fun i -> P.Insert { key = (b * 25) + i; value = b }) in
    List.iter
      (function
        | P.Inserted -> ()
        | resp -> Alcotest.failf "insert: %s" (P.response_to_string resp))
      (C.pipeline c reqs);
    C.commit c;
    ignore (drain () : int)
  done;
  Atomic.set stop true;
  Domain.join scanner;
  (match Atomic.get bad with
  | Some msg -> Alcotest.failf "replica scan straddled a batch: %s" msg
  | None -> ());
  Alcotest.(check int) "all batches applied" 500 (R.cardinal r)

(* ---------- durable mode (version chains through the paged store) ---------- *)

module MD = Tree_intf.Mvcc_disk
module Pg = Tree_intf.Paged_int
module Sh = Tree_intf.Sharded_int

let temp_base tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "mvcc_durable_%s_%d" tag (Unix.getpid ()))

let rm f = try Sys.remove f with Sys_error _ -> ()

let test_durable_roundtrip () =
  let path = temp_base "rt" and wal = temp_base "rt.wal" in
  rm path;
  rm wal;
  let store = Pg.create_file ~wal_path:wal path in
  let t =
    MD.create_durable ~order:4 ~page_ints:(Tree_intf.vrec_page_ints store)
      ~enc:Fun.id ~dec:Fun.id store
  in
  let c = mctx ~slot:0 in
  for k = 1 to 200 do
    MD.upsert t c k (k * 10)
  done;
  (* churn: overwrites build chains, deletes leave tombstones *)
  for k = 1 to 50 do
    MD.upsert t c k (k * 100)
  done;
  for k = 151 to 170 do
    ignore (MD.delete t c k : bool)
  done;
  MD.commit t;
  Alcotest.(check bool) "durable" true (MD.durable t);
  Alcotest.(check bool) "versions persisted" true (MD.persisted_versions t > 200);
  Alcotest.(check bool) "vrec pages allocated" true (MD.persisted_pages t > 0);
  Pg.close store;
  (* reopen: chains must replay exactly *)
  let store = Pg.open_file ~wal_path:wal path in
  let t = MD.open_durable ~enc:Fun.id ~dec:Fun.id store in
  let c = mctx ~slot:0 in
  Alcotest.(check (option int)) "overwritten key newest" (Some 100) (MD.get t c 1);
  Alcotest.(check (option int)) "untouched key" (Some 1000) (MD.get t c 100);
  Alcotest.(check (option int)) "tombstoned key" None (MD.get t c 160);
  Alcotest.(check int) "cardinal" 180 (MD.cardinal t);
  (* overwritten chains kept both versions across the reopen *)
  Alcotest.(check bool)
    (Printf.sprintf "chains replayed (%d live versions)" (MD.live_versions t))
    true
    (MD.live_versions t >= 250);
  (* a fresh snapshot over the recovered store still gives a cut *)
  let s = MD.snapshot t in
  MD.upsert t c 1 7;
  Alcotest.(check (option int)) "snap sees recovered version" (Some 100)
    (MD.snap_get t s c 1);
  Alcotest.(check (option int)) "now sees new" (Some 7) (MD.get t c 1);
  MD.release s;
  Pg.close store;
  rm path;
  rm wal

let test_durable_migrates_plain_store () =
  let path = temp_base "mig" in
  rm path;
  (* build a plain (unversioned, v2-only) tree and flush it *)
  let store = Pg.create_file path in
  let module Sd = Tree_intf.Sagiv_disk in
  let pt = Sd.create ~order:4 ~store () in
  let c = Sd.ctx ~slot:0 in
  for k = 1 to 100 do
    ignore (Sd.insert pt c k (k * 3))
  done;
  Sd.flush pt;
  Pg.close store;
  (* open it as durable MVCC: payloads migrate into one-version chains *)
  let store = Pg.open_file path in
  let t = MD.open_durable ~enc:Fun.id ~dec:Fun.id store in
  let c = mctx ~slot:0 in
  Alcotest.(check (option int)) "migrated value" (Some 3) (MD.get t c 1);
  Alcotest.(check int) "migrated cardinal" 100 (MD.cardinal t);
  Alcotest.(check int) "one version per key" 100 (MD.live_versions t);
  MD.upsert t c 1 999;
  MD.commit t;
  Pg.close store;
  (* and the migrated store reopens as MVCC from then on *)
  let store = Pg.open_file path in
  let t = MD.open_durable ~enc:Fun.id ~dec:Fun.id store in
  let c = mctx ~slot:0 in
  Alcotest.(check (option int)) "post-migration upsert" (Some 999) (MD.get t c 1);
  Alcotest.(check int) "chain grew" 101 (MD.live_versions t);
  Pg.close store;
  rm path

let test_durable_no_resurrection () =
  let path = temp_base "prune" and wal = temp_base "prune.wal" in
  rm path;
  rm wal;
  let store = Pg.create_file ~wal_path:wal path in
  let t =
    MD.create_durable ~order:4 ~enc:Fun.id ~dec:Fun.id store
  in
  let c = mctx ~slot:0 in
  for k = 1 to 40 do
    for v = 1 to 5 do
      MD.upsert t c k ((k * 10) + v)
    done
  done;
  MD.commit t;
  Alcotest.(check int) "5 versions per chain" 200 (MD.live_versions t);
  (* no pins: vacuum prunes every chain to its newest version *)
  ignore (MD.vacuum t c : int);
  ignore (MD.reclaim t : int);
  MD.commit t;
  Alcotest.(check int) "pruned to newest" 40 (MD.live_versions t);
  Pg.close store;
  (* WAL replay rematerializes pre-prune page images; the persisted
     horizon must re-prune them — pruned versions never resurrect *)
  let store = Pg.open_file ~wal_path:wal path in
  let t = MD.open_durable ~enc:Fun.id ~dec:Fun.id store in
  let c = mctx ~slot:0 in
  Alcotest.(check int) "no resurrection" 40 (MD.live_versions t);
  Alcotest.(check (option int)) "newest survives" (Some 15) (MD.get t c 1);
  Pg.close store;
  rm path;
  rm wal

let test_durable_sharded_reopen () =
  let path = temp_base "shard" and wal = temp_base "shard.wal" in
  let shards = 4 in
  for i = 0 to shards - 1 do
    rm (Sh.shard_path path i);
    rm (Sh.shard_path wal i)
  done;
  let sst = Sh.create_file ~wal_path:wal ~shards path in
  let _, h = Tree_intf.sagiv_mvcc_disk_on ~order:4 sst in
  let c = mctx ~slot:0 in
  for k = 1 to 400 do
    ignore (h.Tree_intf.insert c k (k * 2))
  done;
  for k = 1 to 100 do
    ignore (h.Tree_intf.delete c k)
  done;
  h.Tree_intf.commit ();
  Sh.close sst;
  let sst = Sh.open_file ~wal_path:wal ~shards path in
  let ts, h = Tree_intf.sagiv_mvcc_disk_open sst in
  Alcotest.(check int) "shards reopened" shards (Array.length ts);
  Alcotest.(check int) "cardinal across shards" 300 (h.Tree_intf.cardinal ());
  Alcotest.(check (option int)) "routed read" (Some 400) (h.Tree_intf.search c 200);
  (* the reopened composition still serves a true cross-shard cut *)
  let m = Option.get h.Tree_intf.mvcc in
  let s = m.Tree_intf.snapshot () in
  ignore (h.Tree_intf.insert c 1 111);
  ignore (h.Tree_intf.delete c 150);
  Alcotest.(check (option int)) "snap misses post-cut insert" None
    (s.Tree_intf.snap_search c 1);
  Alcotest.(check (option int)) "snap keeps post-cut delete" (Some 300)
    (s.Tree_intf.snap_search c 150);
  Alcotest.(check int) "snap range one cut" 300
    (List.length (s.Tree_intf.snap_range c ~lo:1 ~hi:400));
  s.Tree_intf.snap_release ();
  Sh.close sst;
  for i = 0 to shards - 1 do
    rm (Sh.shard_path path i);
    rm (Sh.shard_path wal i)
  done

let suite =
  [
    ("snapshot visibility", `Quick, test_snapshot_visibility);
    ("vacuum stops behind a pin", `Quick, test_vacuum_behind_pin);
    ("version chains prune", `Quick, test_version_pruning);
    ("group snapshot shares one cut", `Quick, test_group_snapshot);
    ("4-writer scan oracle (single tree)", `Quick, test_scan_oracle_single);
    ("4-writer scan oracle (sharded cut)", `Quick, test_scan_oracle_sharded);
    ("unversioned range stays weak but well-formed", `Quick, test_weak_range_documented);
    ("oracle rejects infeasible scans", `Quick, test_oracle_rejects);
    ("online backup under churn", `Quick, test_online_snapshot_save);
    ("online leak check under churn", `Quick, test_online_leak_check);
    ("online checkpoint under churn", `Quick, test_online_checkpoint);
    ("fold_all equals range when quiescent", `Quick, test_fold_all_quiescent);
    ("SNAPSHOT frame roundtrip", `Quick, test_snapshot_frame_roundtrip);
    ("server snapshot session", `Quick, test_server_snapshot_session);
    ("snapshot on plain backend refused", `Quick, test_server_snapshot_unsupported);
    ( "SNAPSHOT pin released on connection crash",
      `Quick,
      test_server_pin_survives_conn_crash );
    ("replica scans pin one horizon", `Quick, test_replica_scan_horizon);
    ("durable chains survive close/reopen", `Quick, test_durable_roundtrip);
    ("plain v2 store migrates in place", `Quick, test_durable_migrates_plain_store);
    ("pruned versions never resurrect", `Quick, test_durable_no_resurrection);
    ("sharded durable MVCC reopens with one cut", `Quick, test_durable_sharded_reopen);
  ]
