(* Crash-fault injection: the simulated-crash battery (every failpoint
   site × writer on/off), targeted torn-write and injected-error runs,
   the dual-header fallback regression, short-write retries on a real
   file, and writer-shutdown races — plus the CI guarantee that every
   registered failpoint site was actually exercised. *)

open Repro_storage
open Repro_harness

module PS = Paged_store.Make (Key.Int)
module Sg = Repro_core.Sagiv.Make_on_store (Key.Int) (PS)
module V = Repro_core.Validate.Make_on_store (Key.Int) (PS)

let mk_leaf keys =
  {
    Node.level = 0;
    keys = Array.of_list keys;
    ptrs = Array.of_list keys;
    low = Bound.Neg_inf;
    high = Bound.Pos_inf;
    link = None;
    is_root = false;
    state = Node.Live;
  }

let with_tmp_file f =
  let path = Filename.temp_file "crash_test" ".pages" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let check_valid t msg =
  let r = V.check t in
  if not (Repro_core.Validate.ok r) then
    Alcotest.failf "%s: %s" msg (String.concat "; " r.Repro_core.Validate.errors)

(* ---------- failpoint registry basics ---------- *)

let test_failpoint_registry () =
  Failpoint.reset ();
  (match Failpoint.set "no.such.site" (Failpoint.Error { every = 1 }) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown site must be rejected");
  (match Failpoint.set "paged_file.pwrite" (Failpoint.Error { every = 0 }) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "every = 0 must be rejected");
  let s = Failpoint.site "paged_file.pwrite" in
  Alcotest.(check string) "idempotent registration" "paged_file.pwrite"
    (Failpoint.name s);
  (* Crash_after counts armed hits only *)
  Failpoint.set_site s (Failpoint.Crash_after 3);
  Failpoint.hit s;
  Failpoint.hit s;
  (match Failpoint.hit s with
  | exception Failpoint.Crash name ->
      Alcotest.(check string) "crash names the site" "paged_file.pwrite" name
  | () -> Alcotest.fail "third armed hit must crash");
  Alcotest.(check bool) "crash latches" true (Failpoint.is_crashed ());
  Failpoint.reset ();
  Alcotest.(check bool) "reset clears the latch" false (Failpoint.is_crashed ());
  Failpoint.hit s (* disarmed: must not fire *)

(* ---------- the simulated-crash battery ---------- *)

let test_battery () =
  let outcomes = Crash.battery ~quick:true () in
  Alcotest.(check bool) "battery ran" true (List.length outcomes > 20);
  let crashes = List.filter (fun o -> o.Crash.crashed) outcomes in
  Alcotest.(check bool) "most runs actually crashed" true
    (List.length crashes > List.length outcomes / 2)

(* ---------- dual header slots (regression: sync used to rewrite the
   single header page 0 in place — one torn header bricked the store) *)

let corrupt_page path page =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (page * Paged_file.default_page_size) Unix.SEEK_SET);
  let junk = Bytes.make Paged_file.default_page_size 'x' in
  ignore (Unix.write fd junk 0 (Bytes.length junk));
  Unix.close fd

let build_two_generations path =
  Failpoint.reset ();
  let store = PS.create_file ~cache_pages:32 path in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  for k = 0 to 199 do
    ignore (Sg.insert tree c k (k * 3))
  done;
  Sg.flush tree;
  Sg.flush tree;
  (* both slots committed *)
  PS.close store

let reopen_and_check path msg =
  let store = PS.open_file ~cache_pages:32 path in
  let tree = Sg.open_existing store in
  let c = Sg.ctx ~slot:0 in
  check_valid tree msg;
  for k = 0 to 199 do
    if Sg.search tree c k <> Some (k * 3) then
      Alcotest.failf "%s: key %d lost" msg k
  done;
  PS.close store

let test_header_slot_corruption () =
  with_tmp_file (fun path ->
      build_two_generations path;
      corrupt_page path 0;
      reopen_and_check path "slot 0 corrupted");
  with_tmp_file (fun path ->
      build_two_generations path;
      corrupt_page path 1;
      reopen_and_check path "slot 1 corrupted");
  with_tmp_file (fun path ->
      build_two_generations path;
      corrupt_page path 0;
      corrupt_page path 1;
      match PS.open_file ~cache_pages:32 path with
      | exception Paged_store.Corrupt _ -> ()
      | _ -> Alcotest.fail "both slots corrupted must be rejected")

(* ---------- short writes on a real file: the Unix backend's
   seek+write loop must retry partial transfers until the page lands *)

let test_short_writes_on_file () =
  with_tmp_file (fun path ->
      Failpoint.reset ();
      Failpoint.set "paged_file.pwrite" (Failpoint.Short_write { every = 2 });
      let store = PS.create_file ~cache_pages:8 path in
      let tree = Sg.create ~order:4 ~store () in
      let c = Sg.ctx ~slot:0 in
      for k = 0 to 299 do
        ignore (Sg.insert tree c k (k * 3))
      done;
      Sg.flush tree;
      PS.close store;
      Alcotest.(check bool) "short writes actually injected" true
        (Failpoint.exercised "paged_file.pwrite" > 0);
      Failpoint.reset ();
      let store = PS.open_file ~cache_pages:8 path in
      let tree = Sg.open_existing store in
      let c = Sg.ctx ~slot:0 in
      check_valid tree "after short-write storm";
      for k = 0 to 299 do
        if Sg.search tree c k <> Some (k * 3) then
          Alcotest.failf "key %d lost behind short writes" k
      done;
      PS.close store)

(* ---------- writer shutdown: stop_writer racing sync and close under
   injected write-back errors must drain (not leak) pending entries *)

let test_writer_shutdown_race () =
  for seed = 1 to 3 do
    Failpoint.reset ();
    let pfile = Paged_file.create_shadow ~page_size:512 () in
    let store = PS.create_on ~cache_pages:4 pfile in
    let n = 48 in
    let ptrs = Array.init n (fun i -> PS.alloc store (mk_leaf [ i ])) in
    PS.sync store;
    PS.start_writer store;
    Failpoint.set "paged_store.writer" (Failpoint.Error { every = 2 });
    (* churn: puts evict through the bounded queue into the writer, half
       of whose write-backs fail and must stay pending *)
    for round = 1 to 4 do
      for i = 0 to n - 1 do
        PS.put store ptrs.(i) (mk_leaf [ i + (100 * round) + seed ])
      done
    done;
    (* race shutdown against a concurrent sync *)
    let syncer = Domain.spawn (fun () -> PS.sync store) in
    PS.stop_writer store;
    Domain.join syncer;
    Failpoint.set "paged_store.writer" Failpoint.Off;
    PS.sync store;
    Alcotest.(check int) "write queue drained" 0 (PS.queue_depth store);
    (* the durable image must hold every page's final version *)
    let image = Paged_file.crash_image pfile in
    Failpoint.reset ();
    let store2 = PS.open_from ~cache_pages:8 image in
    for i = 0 to n - 1 do
      let node = PS.get store2 ptrs.(i) in
      if node.Node.keys <> [| i + 400 + seed |] then
        Alcotest.failf "seed %d: page %d lost updates across writer shutdown (got %d)"
          seed i node.Node.keys.(0)
    done
  done

(* ---------- WAL replay edge cases: the redo scanner's boundary
   behaviour, pinned down against the log directly ---------- *)

let data_ps = 512
let log_ps = Wal.log_page_size ~data_page_size:data_ps
let img c = Bytes.make data_ps c

let test_replay_empty_log () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let r = Wal.replay ~data_page_size:data_ps ~gen:3 f in
  Alcotest.(check int) "no records" 0 r.Wal.records;
  Alcotest.(check int) "no batches" 0 r.Wal.batches;
  Alcotest.(check int) "no images" 0 (Hashtbl.length r.Wal.committed);
  Alcotest.(check int) "resume at page 0" 0 r.Wal.next_pos;
  Alcotest.(check int) "lsn restarts" 0 r.Wal.next_lsn

let test_replay_checkpoint_only () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let w = Wal.create ~data_page_size:data_ps f in
  Wal.append w ~gen:2 Wal.Checkpoint;
  Wal.fsync w;
  let r = Wal.replay ~data_page_size:data_ps ~gen:2 f in
  Alcotest.(check int) "marker scanned" 1 r.Wal.records;
  Alcotest.(check int) "nothing committed" 0 r.Wal.batches;
  Alcotest.(check int) "nothing promoted" 0 (Hashtbl.length r.Wal.committed);
  Alcotest.(check int) "resume past the marker" 1 r.Wal.next_pos

let test_replay_torn_final_record () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let w = Wal.create ~data_page_size:data_ps f in
  Wal.append w ~gen:1 (Wal.Page { ptr = 3; image = img 'a' });
  Wal.append w ~gen:1 Wal.Commit;
  Wal.append w ~gen:1 (Wal.Page { ptr = 4; image = img 'b' });
  Wal.fsync w;
  (* tear the final record by hand: garbage over its second half *)
  let page = Paged_file.read f 2 in
  Bytes.fill page (log_ps / 2) (log_ps - (log_ps / 2)) '\xFF';
  Paged_file.write f 2 page;
  let r = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "scan stops at the tear" 2 r.Wal.records;
  Alcotest.(check int) "the committed batch survives" 1 r.Wal.batches;
  Alcotest.(check bool) "committed image intact" true
    (Hashtbl.find_opt r.Wal.committed 3 = Some (img 'a'));
  Alcotest.(check bool) "torn record not promoted" false
    (Hashtbl.mem r.Wal.committed 4);
  Alcotest.(check int) "resume overwrites the torn record" 2 r.Wal.next_pos

let test_replay_last_writer_wins () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let w = Wal.create ~data_page_size:data_ps f in
  (* same page twice within a batch, then again in a later batch, then
     once more without a commit — only the last committed image counts *)
  Wal.append w ~gen:1 (Wal.Page { ptr = 7; image = img 'a' });
  Wal.append w ~gen:1 (Wal.Page { ptr = 7; image = img 'b' });
  Wal.append w ~gen:1 Wal.Commit;
  Wal.append w ~gen:1 (Wal.Page { ptr = 7; image = img 'c' });
  Wal.append w ~gen:1 (Wal.Page { ptr = 9; image = img 'd' });
  Wal.append w ~gen:1 Wal.Commit;
  Wal.append w ~gen:1 (Wal.Page { ptr = 7; image = img 'e' });
  Wal.fsync w;
  let r = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "two batches" 2 r.Wal.batches;
  Alcotest.(check bool) "last committed writer wins" true
    (Hashtbl.find_opt r.Wal.committed 7 = Some (img 'c'));
  Alcotest.(check bool) "sibling page committed" true
    (Hashtbl.find_opt r.Wal.committed 9 = Some (img 'd'))

(* Regression: the phantom tail. Before the incarnation stamp, [resume]
   continued the same generation with a continuous LSN at the torn
   position — so the stale records of a {e never-acknowledged} batch
   left beyond the tear (its head torn, its tail physically present)
   chained perfectly onto the new pass's appends. A second crash then
   replayed straight through the new records into the stale tail,
   reached the stale COMMIT, and promoted a mixed batch nobody ever
   acknowledged. The incarnation stamp closes it: resume bumps the
   incarnation past everything observed, and replay stops at the first
   regression. This test fails on the old scanner. *)
let test_phantom_tail_two_crash () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let w = Wal.create ~data_page_size:data_ps f in
  Wal.append w ~gen:1 (Wal.Page { ptr = 3; image = img 'a' });
  Wal.append w ~gen:1 Wal.Commit;
  Wal.fsync w;
  (* batch 1: acknowledged *)
  Wal.append w ~gen:1 (Wal.Page { ptr = 4; image = img 'b' });
  Wal.append w ~gen:1 (Wal.Page { ptr = 5; image = img 'c' });
  Wal.append w ~gen:1 Wal.Commit;
  (* batch 2: never fsynced, never acknowledged *)
  (* crash 1: the batch-2 head lands torn; its tail survives as bytes *)
  let page = Paged_file.read f 2 in
  Bytes.fill page (log_ps / 2) (log_ps - (log_ps / 2)) '\xFF';
  Paged_file.write f 2 page;
  let r1 = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "first recovery: only the acked batch" 1 r1.Wal.batches;
  Alcotest.(check int) "resume position at the tear" 2 r1.Wal.next_pos;
  (* second life: one new record over the tear, then crash again before
     its commit *)
  let w2 = Wal.resume ~data_page_size:data_ps ~replay:r1 f in
  Wal.append w2 ~gen:1 (Wal.Page { ptr = 6; image = img 'd' });
  Wal.fsync w2;
  (* crash 2: replay must not chain the stale tail (Page 5 + COMMIT)
     onto the new record and promote a batch nobody committed *)
  let r2 = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "second recovery: still only the acked batch" 1
    r2.Wal.batches;
  Alcotest.(check bool) "acked image survives" true
    (Hashtbl.find_opt r2.Wal.committed 3 = Some (img 'a'));
  Alcotest.(check bool) "phantom image not promoted" false
    (Hashtbl.mem r2.Wal.committed 5);
  Alcotest.(check bool) "uncommitted new record not promoted" false
    (Hashtbl.mem r2.Wal.committed 6);
  Alcotest.(check int) "scan stops at the stale tail" 3 r2.Wal.next_pos

(* The same two-crash shape with the stale COMMIT {e directly} after the
   resumed tail: accepting that one record would promote the new pass's
   uncommitted record as a batch. *)
let test_phantom_commit_after_tail () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let w = Wal.create ~data_page_size:data_ps f in
  Wal.append w ~gen:1 (Wal.Page { ptr = 3; image = img 'a' });
  Wal.append w ~gen:1 Wal.Commit;
  Wal.fsync w;
  Wal.append w ~gen:1 (Wal.Page { ptr = 4; image = img 'b' });
  Wal.append w ~gen:1 Wal.Commit;
  (* unacked *)
  let page = Paged_file.read f 2 in
  Bytes.fill page 8 (log_ps - 8) '\x00';
  Paged_file.write f 2 page;
  let r1 = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "tear stops the first recovery" 2 r1.Wal.next_pos;
  let w2 = Wal.resume ~data_page_size:data_ps ~replay:r1 f in
  Wal.append w2 ~gen:1 (Wal.Page { ptr = 6; image = img 'd' });
  Wal.fsync w2;
  let r2 = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "stale COMMIT right after the tail rejected" 1
    r2.Wal.batches;
  Alcotest.(check bool) "uncommitted record not promoted" false
    (Hashtbl.mem r2.Wal.committed 6)

(* Resume lands the first new record exactly on the torn position; after
   a proper commit the next recovery promotes both passes' batches. *)
let test_resume_overwrites_torn_position () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let w = Wal.create ~data_page_size:data_ps f in
  Wal.append w ~gen:1 (Wal.Page { ptr = 3; image = img 'a' });
  Wal.append w ~gen:1 Wal.Commit;
  Wal.append w ~gen:1 (Wal.Page { ptr = 4; image = img 'b' });
  Wal.fsync w;
  let page = Paged_file.read f 2 in
  Bytes.fill page (log_ps / 2) (log_ps - (log_ps / 2)) '\xFF';
  Paged_file.write f 2 page;
  let r1 = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "resume at the torn record" 2 r1.Wal.next_pos;
  let w2 = Wal.resume ~data_page_size:data_ps ~replay:r1 f in
  Alcotest.(check int) "incarnation bumped" 1 (Wal.incarnation w2);
  Wal.append w2 ~gen:1 (Wal.Page { ptr = 6; image = img 'd' });
  Wal.append w2 ~gen:1 Wal.Commit;
  Wal.fsync w2;
  let r2 = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "both passes' batches promoted" 2 r2.Wal.batches;
  Alcotest.(check bool) "old batch intact" true
    (Hashtbl.find_opt r2.Wal.committed 3 = Some (img 'a'));
  Alcotest.(check bool) "new batch intact" true
    (Hashtbl.find_opt r2.Wal.committed 6 = Some (img 'd'));
  Alcotest.(check int) "scan covers the new tail" 4 r2.Wal.next_pos

(* Empty-log resume round-trip: replaying nothing must hand back a
   resumable cursor at LSN 0 / page 0, and the resumed log must behave
   exactly like a fresh one. *)
let test_resume_empty_log_roundtrip () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let r = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "empty replay: lsn 0" 0 r.Wal.next_lsn;
  let w = Wal.resume ~data_page_size:data_ps ~replay:r f in
  Alcotest.(check int) "resumed cursor at page 0" 0 (Wal.cursor w);
  Alcotest.(check int) "resumed lsn 0" 0 (Wal.next_lsn w);
  Wal.append w ~gen:1 (Wal.Page { ptr = 3; image = img 'a' });
  Wal.append w ~gen:1 Wal.Commit;
  Wal.fsync w;
  let r2 = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  Alcotest.(check int) "one batch after the round-trip" 1 r2.Wal.batches;
  Alcotest.(check bool) "image committed" true
    (Hashtbl.find_opt r2.Wal.committed 3 = Some (img 'a'));
  Alcotest.(check int) "lsn continues" 2 r2.Wal.next_lsn

(* The store-header incarnation floor: resume must bump past it even
   when replay itself observed nothing (an empty or fully-torn pass may
   still leave stale records, stamped with the header's incarnation,
   beyond the tail). *)
let test_resume_incarnation_floor () =
  Failpoint.reset ();
  let f = Paged_file.create_memory ~page_size:log_ps () in
  let r = Wal.replay ~data_page_size:data_ps ~gen:1 f in
  let w = Wal.resume ~incarnation:5 ~data_page_size:data_ps ~replay:r f in
  Alcotest.(check int) "floor wins over the (empty) observation" 5
    (Wal.incarnation w)

(* A page freed in the checkpointed generation, recycled and re-committed
   through the log only: recovery must take it off the free list, keep
   the allocator accounting consistent, and never hand it out again. *)
let test_replay_recycled_free_page () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_ps () in
  let lfile = Paged_file.create_shadow ~page_size:log_ps () in
  let store = PS.create_on ~cache_pages:8 ~wal:lfile pfile in
  let ptrs = Array.init 6 (fun i -> PS.alloc store (mk_leaf [ i ])) in
  PS.release store ptrs.(2);
  PS.sync store;
  (* the checkpointed free chain holds ptrs.(2) *)
  let p = PS.alloc store (mk_leaf [ 42 ]) in
  Alcotest.(check int) "allocator recycles the freed page" ptrs.(2) p;
  PS.commit store;
  let image = Paged_file.crash_image pfile in
  let limage = Paged_file.crash_image lfile in
  Failpoint.reset ();
  let store2 = PS.open_from ~cache_pages:8 ~wal:limage image in
  let n = PS.get store2 p in
  Alcotest.(check bool) "recycled page holds its committed contents" true
    (n.Node.keys = [| 42 |]);
  Alcotest.(check int) "allocator accounting consistent" 6
    (PS.total_allocated store2 - PS.total_freed store2);
  let q = PS.reserve store2 in
  Alcotest.(check bool) "recycled page never re-issued" true (q <> p);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "live page %d intact" i)
        true
        ((PS.get store2 ptrs.(i)).Node.keys = [| i |]))
    [ 0; 1; 3; 4; 5 ]

(* ---------- every registered site must have fired by now (keep this
   test last: it audits the whole suite run) ---------- *)

(* Multi-domain group commit under a simulated power cut: every
   acknowledged key must survive recovery. Probabilistic regression
   cover for the install/seal ordering race; the harness repeats fresh
   single-commit-round runs to widen the net while staying fast. *)
let test_wal_commit_race () = Crash.run_wal_commit_race ()

(* Durable MVCC under simulated crashes, beyond the quick battery's
   first-ordinal sweep: later ordinals land the kill amid snapshot pins
   and post-vacuum commits. The harness itself holds the three oracles
   (newest acked versions, deterministic chain replay, no pruned-version
   resurrection); here we also pin down that the site actually fired. *)
let test_mvcc_wal_crashes () =
  List.iter
    (fun (site, ordinal) ->
      let o =
        Crash.run_mvcc_wal ~site
          ~policy:(Failpoint.Crash_after ordinal)
          { Crash.writer = false; cache_pages = 8 }
      in
      Alcotest.(check bool) (site ^ " fired") true o.Crash.crashed)
    [ ("wal.append", 5); ("wal.commit", 3); ("paged_file.fsync", 4) ]

let test_all_sites_exercised () =
  Failpoint.reset ();
  match Failpoint.unexercised () with
  | [] -> ()
  | dead ->
      Alcotest.failf "failpoint sites registered but never exercised: %s"
        (String.concat ", " dead)

let suite =
  [
    Alcotest.test_case "failpoint registry basics" `Quick test_failpoint_registry;
    Alcotest.test_case "simulated-crash battery (quick)" `Quick test_battery;
    Alcotest.test_case "header slot corruption falls back" `Quick
      test_header_slot_corruption;
    Alcotest.test_case "short writes retried on a real file" `Quick
      test_short_writes_on_file;
    Alcotest.test_case "writer shutdown races sync under errors" `Quick
      test_writer_shutdown_race;
    Alcotest.test_case "replay: empty log" `Quick test_replay_empty_log;
    Alcotest.test_case "replay: checkpoint-only log" `Quick
      test_replay_checkpoint_only;
    Alcotest.test_case "replay: torn final record" `Quick
      test_replay_torn_final_record;
    Alcotest.test_case "replay: duplicate images, last writer wins" `Quick
      test_replay_last_writer_wins;
    Alcotest.test_case "replay: recycled free-chain page" `Quick
      test_replay_recycled_free_page;
    Alcotest.test_case "regression: phantom tail across two crashes" `Quick
      test_phantom_tail_two_crash;
    Alcotest.test_case "regression: stale COMMIT directly after tail" `Quick
      test_phantom_commit_after_tail;
    Alcotest.test_case "resume: first record lands on the torn position"
      `Quick test_resume_overwrites_torn_position;
    Alcotest.test_case "resume: empty-log round-trip" `Quick
      test_resume_empty_log_roundtrip;
    Alcotest.test_case "resume: header incarnation floor" `Quick
      test_resume_incarnation_floor;
    Alcotest.test_case "concurrent group commit loses no acked key" `Quick
      test_wal_commit_race;
    Alcotest.test_case "durable mvcc crash battery (targeted)" `Quick
      test_mvcc_wal_crashes;
    Alcotest.test_case "all failpoint sites exercised" `Quick
      test_all_sites_exercised;
  ]
