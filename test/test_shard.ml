(* The keyspace partition layer: router determinism (golden values pin
   the hash across processes and restarts), chi-squared routing balance
   over uniform and Zipf key streams, the on-disk shard-identity check
   on reopen, the routed sharded handle against a model oracle, and a
   sharded server session with per-shard ack accounting. *)

open Repro_storage
open Repro_baseline
module PS = Tree_intf.Paged_int
module SS = Tree_intf.Sharded_int
module P = Repro_server.Protocol
module Server = Repro_server.Server
module C = Repro_client.Client

(* ---------- router determinism ---------- *)

(* Golden values: the router is a pure splitmix64 finalizer, so these
   must hold in every process, on every run, across reopens — the
   property the on-disk shard headers rely on. A change to the hash is a
   breaking format change and must fail here. *)
let test_router_golden () =
  List.iter
    (fun (k, expect_mix) ->
      Alcotest.(check int)
        (Printf.sprintf "mix %d" k)
        expect_mix (Shard_router.mix k))
    [
      (0, 0);
      (1, -2152535657050944081);
      (2, -1263085514660420108);
      (42, 1391454601869358542);
      (1000, 1504391059752320062);
      (-1, 3703370420611038912);
      (123456789, 2022186977861948004);
      (-987654321, 1111743019110873981);
    ];
  List.iter
    (fun (k, s4, s8) ->
      Alcotest.(check int)
        (Printf.sprintf "shard_of 4 %d" k)
        s4
        (Shard_router.shard_of ~shards:4 k);
      Alcotest.(check int)
        (Printf.sprintf "shard_of 8 %d" k)
        s8
        (Shard_router.shard_of ~shards:8 k))
    [
      (0, 0, 0);
      (1, 3, 7);
      (2, 0, 4);
      (42, 2, 6);
      (1000, 2, 6);
      (-1, 0, 0);
      (123456789, 0, 4);
      (-987654321, 1, 5);
    ];
  (* single shard short-circuits; invalid counts refuse *)
  Alcotest.(check int) "1 shard" 0 (Shard_router.shard_of ~shards:1 12345);
  (match Shard_router.shard_of ~shards:0 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards=0 accepted")

let test_router_range () =
  for k = -1000 to 1000 do
    let s = Shard_router.shard_of ~shards:7 k in
    if s < 0 || s >= 7 then Alcotest.failf "key %d routed to shard %d" k s
  done

(* ---------- routing balance ---------- *)

let chi2 ~shards keys =
  let counts = Array.make shards 0 in
  let n = ref 0 in
  List.iter
    (fun k ->
      let s = Shard_router.shard_of ~shards k in
      counts.(s) <- counts.(s) + 1;
      incr n)
    keys;
  let expect = float_of_int !n /. float_of_int shards in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expect in
      acc +. (d *. d /. expect))
    0.0 counts

(* Uniform key stream: chi-squared against the uniform expectation must
   sit far below the 0.001 critical value (deterministic inputs, so any
   excess is a real balance defect, not noise). *)
let test_balance_uniform () =
  let keys = List.init 100_000 (fun i -> i) in
  let c4 = chi2 ~shards:4 keys in
  let c8 = chi2 ~shards:8 keys in
  if c4 > 20.0 then Alcotest.failf "uniform/4: chi2 %.2f (df 3)" c4;
  if c8 > 30.0 then Alcotest.failf "uniform/8: chi2 %.2f (df 7)" c8

(* Zipf stream (the hot-key workload the benches sweep): the distinct
   keys drawn must still spread evenly — routing is on key identity, so
   skew in reference frequency must not translate into skew of the key
   population. The raw stream concentrates on its hottest ranks, so for
   it we only bound the hottest shard's share: one shard owns rank 1
   (~10% of references at s≈1), so fair routing keeps every share under
   1/shards + the few hottest ranks' mass. *)
let test_balance_zipf () =
  let rng = Repro_util.Splitmix.create 90210 in
  let z = Repro_util.Zipf.create ~n:100_000 ~exponent:0.99 in
  let stream = List.init 100_000 (fun _ -> Repro_util.Zipf.sample z rng) in
  let distinct =
    let h = Hashtbl.create 4096 in
    List.iter (fun k -> Hashtbl.replace h k ()) stream;
    Hashtbl.fold (fun k () acc -> k :: acc) h []
  in
  let c8 = chi2 ~shards:8 distinct in
  if c8 > 30.0 then Alcotest.failf "zipf distinct/8: chi2 %.2f (df 7)" c8;
  let counts = Array.make 8 0 in
  List.iter
    (fun k ->
      let s = Shard_router.shard_of ~shards:8 k in
      counts.(s) <- counts.(s) + 1)
    stream;
  let total = float_of_int (List.length stream) in
  Array.iteri
    (fun s c ->
      let share = float_of_int c /. total in
      if share > 0.4 then
        Alcotest.failf "zipf stream: shard %d holds %.0f%% of references" s
          (100.0 *. share))
    counts

(* ---------- shard identity on reopen ---------- *)

let tmp name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "blink-shard-%d-%s" (Unix.getpid ()) name)

let rm path = try Sys.remove path with Sys_error _ -> ()

(* A store created as shard (1, 4) refuses to open as anything else —
   typed error carrying both identities — and opens as itself. *)
let test_reopen_mismatch () =
  let path = tmp "mismatch.pages" in
  Fun.protect
    ~finally:(fun () -> rm path)
    (fun () ->
      let s = PS.create_file ~shard:(1, 4) path in
      PS.sync s;
      PS.close s;
      (match PS.open_file ~expect_shard:(1, 2) path with
      | exception
          Paged_store.Shard_mismatch
            { expected_index = 1; expected_count = 2; found_index = 1; found_count = 4 }
        -> ()
      | exception e -> raise e
      | s ->
          PS.close s;
          Alcotest.fail "shard-count mismatch accepted");
      (match PS.open_file ~expect_shard:(2, 4) path with
      | exception Paged_store.Shard_mismatch { found_index = 1; found_count = 4; _ }
        -> ()
      | exception e -> raise e
      | s ->
          PS.close s;
          Alcotest.fail "shard-index mismatch accepted");
      let s = PS.open_file ~expect_shard:(1, 4) path in
      Alcotest.(check (pair int int)) "identity survives" (1, 4) (PS.shard s);
      PS.close s;
      (* no expectation: opens regardless, identity still readable *)
      let s = PS.open_file path in
      Alcotest.(check (pair int int)) "identity readable" (1, 4) (PS.shard s);
      PS.close s)

(* An unsharded (default-identity) store is shard (0, 1). *)
let test_default_identity () =
  let path = tmp "default.pages" in
  Fun.protect
    ~finally:(fun () -> rm path)
    (fun () ->
      let s = PS.create_file path in
      Alcotest.(check (pair int int)) "default" (0, 1) (PS.shard s);
      PS.close s;
      let s = PS.open_file ~expect_shard:(0, 1) path in
      PS.close s)

(* The sharded store propagates one shard's mismatch out of its parallel
   reopen (and closes the shards that did open), and reopens cleanly
   under the recorded count. *)
let test_sharded_store_reopen () =
  let path = tmp "sst.pages" in
  let cleanup () =
    for i = 0 to 7 do
      rm (SS.shard_path path i)
    done
  in
  Fun.protect ~finally:cleanup (fun () ->
      let sst = SS.create_file ~shards:4 path in
      SS.sync_all sst;
      SS.close sst;
      (match SS.open_file ~shards:2 path with
      | exception Paged_store.Shard_mismatch { found_count = 4; _ } -> ()
      | exception e -> raise e
      | sst ->
          SS.close sst;
          Alcotest.fail "sharded reopen under the wrong count accepted");
      let sst = SS.open_file ~shards:4 path in
      Alcotest.(check int) "count" 4 (SS.count sst);
      Array.iteri
        (fun i s ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "shard %d identity" i)
            (i, 4) (PS.shard s))
        (SS.stores sst);
      Alcotest.(check int) "per-shard io" 4 (Array.length (SS.per_shard_io sst));
      SS.close sst;
      (* shutdown is idempotent *)
      SS.close sst)

(* ---------- routed handle vs model oracle ---------- *)

let test_sharded_handle_oracle () =
  let _sst, _trees, h =
    Tree_intf.sagiv_disk_sharded_raw ~wal:true ~shards:4 ~order:4 ()
  in
  let ctx = Repro_core.Handle.ctx ~slot:0 in
  let model : (int, int) Hashtbl.t = Hashtbl.create 512 in
  let rng = Repro_util.Splitmix.create 1337 in
  for _ = 1 to 4000 do
    let k = Repro_util.Splitmix.int rng 600 in
    match Repro_util.Splitmix.int rng 4 with
    | 0 ->
        let expect = Hashtbl.mem model k in
        let got = h.Tree_intf.delete ctx k in
        if got <> expect then Alcotest.failf "delete %d: %b, model %b" k got expect;
        Hashtbl.remove model k
    | 1 ->
        let expect = Hashtbl.find_opt model k in
        let got = h.Tree_intf.search ctx k in
        if got <> expect then Alcotest.failf "search %d disagrees with model" k
    | _ -> (
        let expect = if Hashtbl.mem model k then `Duplicate else `Ok in
        match h.Tree_intf.insert ctx k (k * 3) with
        | r when r = expect -> if r = `Ok then Hashtbl.replace model k (k * 3)
        | _ -> Alcotest.failf "insert %d disagrees with model" k)
  done;
  h.Tree_intf.commit ();
  Alcotest.(check int) "cardinal sums shards" (Hashtbl.length model)
    (h.Tree_intf.cardinal ());
  (* the k-way merged range is the model's sorted restriction *)
  let lo = 100 and hi = 400 in
  let expect =
    Hashtbl.fold (fun k v acc -> if k >= lo && k <= hi then (k, v) :: acc else acc)
      model []
    |> List.sort compare
  in
  let got =
    match h.Tree_intf.range with
    | Some f -> f ctx ~lo ~hi
    | None -> Alcotest.fail "sharded handle dropped range support"
  in
  Alcotest.(check (list (pair int int))) "merged range" expect got;
  (* routing surface: every model key's shard agrees with the router *)
  match h.Tree_intf.sharding with
  | None -> Alcotest.fail "sharded handle has no sharding surface"
  | Some s ->
      Alcotest.(check int) "shard count" 4 s.Tree_intf.shard_count;
      Hashtbl.iter
        (fun k _ ->
          Alcotest.(check int)
            (Printf.sprintf "route %d" k)
            (Shard_router.shard_of ~shards:4 k)
            (s.Tree_intf.shard_of_key k))
        model

(* ---------- sharded server session ---------- *)

(* A sharded WAL handle behind the server under durable acks: a
   pipeline_sharded batch (grouped per shard client-side, same-key order
   preserved, Commit as a barrier) answers in caller order, and the
   merged worker stats carry per-shard ack counts. *)
let test_sharded_server () =
  let _sst, _trees, handle =
    Tree_intf.sagiv_disk_sharded_raw ~wal:true ~shards:4 ~order:4 ()
  in
  let srv =
    Server.start ~workers:2 ~durable_acks:true ~handle
      ~listen:[ Unix.ADDR_INET (Unix.inet_addr_loopback, 0) ]
      ()
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let addr = List.hd (Server.addresses srv) in
      let c = C.connect addr in
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          let n = 200 in
          let reqs =
            List.concat
              [
                List.init n (fun i -> P.Insert { key = i; value = i * 11 });
                (* same-key sequence whose order must survive regrouping *)
                [
                  P.Insert { key = 7777; value = 1 };
                  P.Delete { key = 7777 };
                  P.Insert { key = 7777; value = 2 };
                  P.Commit;
                  P.Search { key = 7777 };
                ];
                List.init n (fun i -> P.Search { key = i });
              ]
          in
          let resps = C.pipeline_sharded c ~shards:4 reqs in
          Alcotest.(check int)
            "one response per request" (List.length reqs) (List.length resps);
          let resps = Array.of_list resps in
          for i = 0 to n - 1 do
            if resps.(i) <> P.Inserted then
              Alcotest.failf "insert %d: %s" i
                (P.response_to_string resps.(i))
          done;
          Alcotest.(check bool) "seq insert" true (resps.(n) = P.Inserted);
          Alcotest.(check bool) "seq delete" true (resps.(n + 1) = P.Deleted);
          Alcotest.(check bool) "seq reinsert" true (resps.(n + 2) = P.Inserted);
          Alcotest.(check bool) "barrier commit" true (resps.(n + 3) = P.Committed);
          Alcotest.(check bool)
            "search after barrier" true
            (resps.(n + 4) = P.Found 2);
          for i = 0 to n - 1 do
            if resps.(n + 5 + i) <> P.Found (i * 11) then
              Alcotest.failf "search %d came back %s" i
                (P.response_to_string resps.(n + 5 + i))
          done;
          let m = Server.stats srv in
          Alcotest.(check int)
            "per-shard ack array sized" 4
            (Array.length m.Stats.shard_acks);
          let total = Array.fold_left ( + ) 0 m.Stats.shard_acks in
          if total < 4 then
            Alcotest.failf "only %d per-shard acks counted" total))

let suite =
  [
    ("router golden values", `Quick, test_router_golden);
    ("router stays in range", `Quick, test_router_range);
    ("balance: uniform chi-squared", `Quick, test_balance_uniform);
    ("balance: zipf chi-squared", `Quick, test_balance_zipf);
    ("reopen refuses a shard mismatch", `Quick, test_reopen_mismatch);
    ("default identity is (0,1)", `Quick, test_default_identity);
    ("sharded store parallel reopen", `Quick, test_sharded_store_reopen);
    ("routed handle matches the model", `Quick, test_sharded_handle_oracle);
    ("sharded server session", `Quick, test_sharded_server);
  ]
