(* Page codec round-trip tests, including property tests and corruption
   detection. *)

open Repro_storage
module C = Page_codec.Make (Key.Int)
module CS = Page_codec.Make (Key.Str)

let node_eq (a : int Node.t) (b : int Node.t) =
  a.Node.level = b.Node.level
  && a.Node.keys = b.Node.keys
  && a.Node.ptrs = b.Node.ptrs
  && Bound.compare Int.compare a.Node.low b.Node.low = 0
  && Bound.compare Int.compare a.Node.high b.Node.high = 0
  && a.Node.link = b.Node.link
  && a.Node.is_root = b.Node.is_root
  && a.Node.state = b.Node.state

let mk ?(level = 0) ?(low = Bound.Neg_inf) ?(high = Bound.Pos_inf) ?link
    ?(is_root = false) ?(state = Node.Live) keys ptrs =
  {
    Node.level;
    keys = Array.of_list keys;
    ptrs = Array.of_list ptrs;
    low;
    high;
    link;
    is_root;
    state;
  }

let test_roundtrip_leaf () =
  let n = mk ~high:(Bound.Key 30) ~link:42 [ 10; 20; 30 ] [ 1; 2; 3 ] in
  Alcotest.(check bool) "leaf roundtrip" true (node_eq n (C.of_bytes (C.to_bytes n)))

let test_roundtrip_internal () =
  let n =
    mk ~level:3 ~low:(Bound.Key 5) ~high:(Bound.Key 99) ~link:7 [ 10; 20 ] [ 100; 101; 102 ]
  in
  Alcotest.(check bool) "internal roundtrip" true (node_eq n (C.of_bytes (C.to_bytes n)))

let test_roundtrip_root_and_deleted () =
  let root = mk ~level:2 ~is_root:true [ 50 ] [ 1; 2 ] in
  Alcotest.(check bool) "root bit" true (node_eq root (C.of_bytes (C.to_bytes root)));
  let dead = mk ~state:(Node.Deleted 77) [] [] in
  Alcotest.(check bool) "tombstone" true (node_eq dead (C.of_bytes (C.to_bytes dead)))

let test_roundtrip_empty () =
  let n = mk [] [] in
  Alcotest.(check bool) "empty node" true (node_eq n (C.of_bytes (C.to_bytes n)))

let test_corruption_detected () =
  let n = mk [ 1; 2 ] [ 10; 20 ] in
  let b = C.to_bytes n in
  Bytes.set_uint8 b 0 0x00;
  (match C.of_bytes b with
  | exception Page_codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let b2 = C.to_bytes n in
  Bytes.set_uint8 b2 1 99;
  match C.of_bytes b2 with
  | exception Page_codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad version accepted"

let test_string_keys () =
  let n =
    {
      Node.level = 0;
      keys = [| "apple"; "banana"; "cherry" |];
      ptrs = [| 1; 2; 3 |];
      low = Bound.Neg_inf;
      high = Bound.Key "cherry";
      link = Some 9;
      is_root = false;
      state = Node.Live;
    }
  in
  let n' = CS.of_bytes (CS.to_bytes n) in
  Alcotest.(check bool) "string keys roundtrip" true
    (n'.Node.keys = n.Node.keys && n'.Node.ptrs = n.Node.ptrs
    && Bound.compare String.compare n'.Node.high n.Node.high = 0)

let test_multiple_in_buffer () =
  let a = mk [ 1 ] [ 10 ] and b = mk ~level:1 [ 2; 3 ] [ 20; 30; 40 ] in
  let buf = Buffer.create 64 in
  C.encode buf a;
  C.encode buf b;
  let bytes = Buffer.to_bytes buf in
  let a', pos = C.decode bytes ~pos:0 in
  let b', _ = C.decode bytes ~pos in
  Alcotest.(check bool) "first" true (node_eq a a');
  Alcotest.(check bool) "second" true (node_eq b b')

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip (random nodes)" ~count:500
    QCheck.(
      quad
        (list_of_size Gen.(int_range 0 20) (int_range (-1000) 1000))
        (list_of_size Gen.(int_range 0 21) (int_range 0 100000))
        (option (int_range 0 9999))
        bool)
    (fun (keys, ptrs, link, is_root) ->
      let keys = List.sort_uniq compare keys in
      let n = mk ~link:(Option.value ~default:0 link) ~is_root keys ptrs in
      let n = if link = None then { n with Node.link = None } else n in
      node_eq n (C.of_bytes (C.to_bytes n)))

(* ---------- v3 varint frames (version-record pages) ---------- *)

let mk_vrec ptrs =
  mk ~level:Node.vrec_level ~is_root:true (([] : int list)) ptrs

let test_vrec_roundtrip () =
  (* negative ints (zigzag), large magnitudes, zero runs *)
  let ptrs = [ 0; 1; -1; 63; -64; 64; 1000000; -1000000; max_int / 2; min_int / 2; 0; 0 ] in
  let n = mk_vrec ptrs in
  let b = C.to_bytes n in
  Alcotest.(check int) "vrec frames as v3" Page_codec.version_varint
    (Char.code (Bytes.get b 1));
  Alcotest.(check bool) "vrec roundtrip" true (node_eq n (C.of_bytes b));
  (* chained continuation (link, not root) *)
  let n = { (mk_vrec [ 5; 6; 7 ]) with Node.link = Some 99; is_root = false } in
  Alcotest.(check bool) "vrec chained" true (node_eq n (C.of_bytes (C.to_bytes n)))

let test_vrec_compact () =
  (* small ints should take far fewer bytes than the fixed 8 of v2 *)
  let ptrs = List.init 100 (fun i -> i mod 50) in
  let v3 = Bytes.length (C.to_bytes (mk_vrec ptrs)) in
  let v2 = Bytes.length (C.to_bytes (mk ~level:1 [] ptrs)) in
  Alcotest.(check bool)
    (Printf.sprintf "varint frame smaller (%d < %d)" v3 v2)
    true
    (v3 < v2 / 3)

let test_tree_nodes_stay_v2 () =
  (* tree nodes must keep framing byte-identical to v2 stores *)
  let n = mk ~high:(Bound.Key 30) ~link:42 [ 10; 20; 30 ] [ 1; 2; 3 ] in
  Alcotest.(check int) "tree node frames as v2" 2 (Char.code (Bytes.get (C.to_bytes n) 1))

let prop_vrec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"vrec varint roundtrip"
    QCheck.(list_of_size Gen.(int_range 0 200) int)
    (fun ptrs ->
      let n = mk_vrec ptrs in
      node_eq n (C.of_bytes (C.to_bytes n)))

let suite =
  [
    Alcotest.test_case "roundtrip leaf" `Quick test_roundtrip_leaf;
    Alcotest.test_case "vrec v3 roundtrip" `Quick test_vrec_roundtrip;
    Alcotest.test_case "vrec v3 compact" `Quick test_vrec_compact;
    Alcotest.test_case "tree nodes stay v2" `Quick test_tree_nodes_stay_v2;
    QCheck_alcotest.to_alcotest prop_vrec_roundtrip;
    Alcotest.test_case "roundtrip internal" `Quick test_roundtrip_internal;
    Alcotest.test_case "roundtrip root/tombstone" `Quick test_roundtrip_root_and_deleted;
    Alcotest.test_case "roundtrip empty" `Quick test_roundtrip_empty;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "string keys" `Quick test_string_keys;
    Alcotest.test_case "multiple nodes in one buffer" `Quick test_multiple_in_buffer;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
