(* Store, latch, prime block and epoch reclamation tests. *)

open Repro_storage
module N = Node.Make (Key.Int)

let mk_leaf keys =
  {
    Node.level = 0;
    keys = Array.of_list keys;
    ptrs = Array.of_list (List.map (fun k -> k) keys);
    low = Bound.Neg_inf;
    high = Bound.Pos_inf;
    link = None;
    is_root = false;
    state = Node.Live;
  }

let test_alloc_get_put () =
  let s = Store.create () in
  let p = Store.alloc s (mk_leaf [ 1 ]) in
  Alcotest.(check int) "contents" 1 (Store.get s p).Node.keys.(0);
  Store.put s p (mk_leaf [ 2 ]);
  Alcotest.(check int) "rewritten" 2 (Store.get s p).Node.keys.(0);
  Alcotest.(check int) "live" 1 (Store.live_count s)

let test_reserve_then_put () =
  let s = Store.create () in
  let p = Store.reserve s in
  (match Store.get s p with
  | exception Store.Freed_page _ -> ()
  | _ -> Alcotest.fail "reserved page must be unreadable");
  Store.put s p (mk_leaf [ 9 ]);
  Alcotest.(check int) "readable after put" 9 (Store.get s p).Node.keys.(0)

let test_release_recycle () =
  let s = Store.create () in
  let p = Store.alloc s (mk_leaf [ 1 ]) in
  Store.release s p;
  (match Store.get s p with
  | exception Store.Freed_page q -> Alcotest.(check int) "freed id" p q
  | _ -> Alcotest.fail "expected Freed_page");
  let p' = Store.alloc s (mk_leaf [ 2 ]) in
  Alcotest.(check int) "page recycled" p p';
  Alcotest.(check int) "live count" 1 (Store.live_count s)

let test_many_pages_cross_chunks () =
  let s = Store.create () in
  let n = 10_000 in
  let ids = Array.init n (fun i -> Store.alloc s (mk_leaf [ i ])) in
  Array.iteri
    (fun i p ->
      let node = Store.get s p in
      if node.Node.keys.(0) <> i then Alcotest.failf "page %d corrupted" p)
    ids;
  Alcotest.(check int) "live" n (Store.live_count s)

let test_concurrent_alloc () =
  let s = Store.create () in
  let per = 5_000 and nd = 4 in
  let domains =
    Array.init nd (fun d ->
        Domain.spawn (fun () -> Array.init per (fun i -> Store.alloc s (mk_leaf [ (d * per) + i ]))))
  in
  let all = Array.concat (Array.to_list (Array.map Domain.join domains)) in
  let seen = Hashtbl.create (per * nd) in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then Alcotest.failf "duplicate page id %d" p;
      Hashtbl.replace seen p ())
    all;
  Alcotest.(check int) "all allocated" (per * nd) (Store.live_count s)

let test_latch_excludes_lockers_not_readers () =
  let s = Store.create () in
  let p = Store.alloc s (mk_leaf [ 1 ]) in
  Store.lock s p;
  Alcotest.(check bool) "try_lock fails" false (Store.try_lock s p);
  (* a reader is never blocked by the latch *)
  Alcotest.(check int) "read while locked" 1 (Store.get s p).Node.keys.(0);
  Store.unlock s p;
  Alcotest.(check bool) "try_lock after unlock" true (Store.try_lock s p);
  Store.unlock s p

let test_iter () =
  let s = Store.create () in
  let _ = Store.alloc s (mk_leaf [ 1 ]) in
  let p2 = Store.alloc s (mk_leaf [ 2 ]) in
  let _ = Store.alloc s (mk_leaf [ 3 ]) in
  Store.release s p2;
  let seen = ref [] in
  Store.iter s (fun _ n -> seen := n.Node.keys.(0) :: !seen);
  Alcotest.(check (list int)) "live pages only" [ 1; 3 ] (List.sort compare !seen)

(* -- prime block -- *)

let test_prime_block () =
  let pb = Prime_block.create ~root_ptr:7 in
  let s = Prime_block.read pb in
  Alcotest.(check int) "initial height" 1 s.Prime_block.levels;
  Alcotest.(check int) "root" 7 (Prime_block.root s);
  Alcotest.(check (option int)) "leftmost 0" (Some 7) (Prime_block.leftmost_at s ~level:0);
  Alcotest.(check (option int)) "no level 1" None (Prime_block.leftmost_at s ~level:1);
  Prime_block.push_root pb ~root_ptr:9;
  let s = Prime_block.read pb in
  Alcotest.(check int) "height 2" 2 s.Prime_block.levels;
  Alcotest.(check int) "new root" 9 (Prime_block.root s);
  Alcotest.(check (option int)) "old leftmost kept" (Some 7)
    (Prime_block.leftmost_at s ~level:0);
  Prime_block.push_root pb ~root_ptr:11;
  Prime_block.collapse_to pb ~level:0 ~root_ptr:7;
  let s = Prime_block.read pb in
  Alcotest.(check int) "collapsed" 1 s.Prime_block.levels;
  Alcotest.(check int) "root back" 7 (Prime_block.root s)

(* -- epoch reclamation -- *)

let test_epoch_basic () =
  let e = Epoch.create () in
  let s = Store.create () in
  let p = Store.alloc s (mk_leaf [ 1 ]) in
  Epoch.retire e p;
  Alcotest.(check int) "pending" 1 (Epoch.pending e);
  let freed = Epoch.reclaim e ~release:(Store.release s) in
  Alcotest.(check int) "freed when no pins" 1 freed;
  Alcotest.(check int) "store freed" 0 (Store.live_count s)

let test_epoch_pin_blocks_reclaim () =
  let e = Epoch.create () in
  let s = Store.create () in
  ignore (Epoch.pin e ~slot:0 : int);
  let p = Store.alloc s (mk_leaf [ 1 ]) in
  Epoch.retire e p;
  let freed = Epoch.reclaim e ~release:(Store.release s) in
  Alcotest.(check int) "pinned reader blocks free" 0 freed;
  (* the pinned reader can still read the retired page *)
  Alcotest.(check int) "still readable" 1 (Store.get s p).Node.keys.(0);
  Epoch.unpin e ~slot:0;
  let freed = Epoch.reclaim e ~release:(Store.release s) in
  Alcotest.(check int) "freed after unpin" 1 freed

let test_epoch_late_pin_does_not_block () =
  let e = Epoch.create () in
  let s = Store.create () in
  let p = Store.alloc s (mk_leaf [ 1 ]) in
  Epoch.retire e p;
  (* a process that starts after the retirement must not keep it alive *)
  ignore (Epoch.pin e ~slot:3 : int);
  let freed = Epoch.reclaim e ~release:(Store.release s) in
  Alcotest.(check int) "late pin does not block" 1 freed;
  Epoch.unpin e ~slot:3

let test_epoch_pin_publish_race () =
  (* Regression for the pin-publication race: the old [pin] read [global]
     and then stored it into the pin slot; a retire + reclaim interleaved
     between the read and the store computed [min_pinned] without seeing
     the pin, freed the page, and [pin] then returned claiming the epoch
     the free was justified against. [pin_hook] fires deterministically
     in exactly that window. The publish-then-validate loop must end with
     the pinned epoch strictly above the retirement epoch of anything
     freed inside the window — on the old code this check reads pin = 0
     with the epoch-0 page freed, and fails. *)
  let e = Epoch.create () in
  let s = Store.create () in
  let p = Store.alloc s (mk_leaf [ 42 ]) in
  let freed = ref [] in
  let fired = ref false in
  Epoch.pin_hook :=
    Some
      (fun () ->
        if not !fired then begin
          fired := true;
          (* [p] is stamped with the epoch [pin] just read (0); the bump
             inside [retire] moves [global] to 1. *)
          Epoch.retire e p;
          ignore
            (Epoch.reclaim e ~release:(fun q ->
                 freed := q :: !freed;
                 Store.release s q))
        end);
  Fun.protect
    ~finally:(fun () -> Epoch.pin_hook := None)
    (fun () ->
      ignore (Epoch.pin e ~slot:0 : int);
      Alcotest.(check bool) "hook fired in the publication window" true !fired;
      (* The window reclaim saw no pin, so it legitimately freed [p]
         (retired at epoch 0, horizon max_int). The fix must then refuse
         to let the pin settle at epoch 0 — the worker "started after
         the deletion" in the paper's sense and must observe that. *)
      Alcotest.(check (list int)) "window reclaim freed the page" [ p ] !freed;
      Alcotest.(check bool)
        "pin settles strictly after the freed page's retirement epoch" true
        (Epoch.min_pinned e > 0);
      Epoch.unpin e ~slot:0)

let test_epoch_concurrent_readers_never_see_freed () =
  (* Readers pin, read a shared slot, follow it; a writer retires pages.
     Under correct epoch protection no reader ever hits Freed_page. *)
  let e = Epoch.create () in
  let s = Store.create () in
  let current = Atomic.make (Store.alloc s (mk_leaf [ 0 ])) in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let readers =
    Array.init 3 (fun slot ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (Epoch.pin e ~slot : int);
              let p = Atomic.get current in
              (try ignore (Store.get s p)
               with Store.Freed_page _ -> Atomic.incr failures);
              Epoch.unpin e ~slot
            done))
  in
  for i = 1 to 2_000 do
    let fresh = Store.alloc s (mk_leaf [ i ]) in
    let old = Atomic.exchange current fresh in
    Epoch.retire e old;
    if i mod 50 = 0 then ignore (Epoch.reclaim e ~release:(Store.release s))
  done;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  ignore (Epoch.reclaim e ~release:(Store.release s));
  Alcotest.(check int) "no freed-page reads" 0 (Atomic.get failures);
  Alcotest.(check bool) "reclamation happened" true (Epoch.total_reclaimed e > 1_000)

let suite =
  [
    Alcotest.test_case "alloc/get/put" `Quick test_alloc_get_put;
    Alcotest.test_case "reserve then put" `Quick test_reserve_then_put;
    Alcotest.test_case "release and recycle" `Quick test_release_recycle;
    Alcotest.test_case "pages across chunks" `Quick test_many_pages_cross_chunks;
    Alcotest.test_case "concurrent alloc unique ids" `Quick test_concurrent_alloc;
    Alcotest.test_case "latch excludes lockers not readers" `Quick
      test_latch_excludes_lockers_not_readers;
    Alcotest.test_case "iter over live pages" `Quick test_iter;
    Alcotest.test_case "prime block" `Quick test_prime_block;
    Alcotest.test_case "epoch basic reclaim" `Quick test_epoch_basic;
    Alcotest.test_case "epoch pin blocks reclaim" `Quick test_epoch_pin_blocks_reclaim;
    Alcotest.test_case "epoch late pin" `Quick test_epoch_late_pin_does_not_block;
    Alcotest.test_case "epoch pin publication race" `Quick
      test_epoch_pin_publish_race;
    Alcotest.test_case "epoch protects concurrent readers" `Quick
      test_epoch_concurrent_readers_never_see_freed;
  ]
