(* Unit tests for the util library. *)

open Repro_util

let test_splitmix_deterministic () =
  let a = Splitmix.create 123 and b = Splitmix.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_splitmix_bounds () =
  let rng = Splitmix.create 7 in
  for _ = 1 to 10_000 do
    let v = Splitmix.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of range: %d" v
  done

let test_splitmix_float_range () =
  let rng = Splitmix.create 9 in
  for _ = 1 to 10_000 do
    let f = Splitmix.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_splitmix_split_independent () =
  let a = Splitmix.create 5 in
  let b = Splitmix.split a in
  let xs = List.init 20 (fun _ -> Splitmix.next_int64 a) in
  let ys = List.init 20 (fun _ -> Splitmix.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_permutation () =
  let rng = Splitmix.create 11 in
  let p = Splitmix.permutation rng 1000 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (Array.to_list sorted = List.init 1000 Fun.id)

let test_uniformity () =
  (* Chi-squared-ish sanity: each of 10 buckets gets 10% +- 2%. *)
  let rng = Splitmix.create 99 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Splitmix.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.08 || frac > 0.12 then Alcotest.failf "bucket fraction %f" frac)
    counts

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~exponent:0.99 in
  let rng = Splitmix.create 3 in
  let counts = Hashtbl.create 64 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    if r < 1 || r > 1000 then Alcotest.failf "rank out of range: %d" r;
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  done;
  let c1 = Option.value ~default:0 (Hashtbl.find_opt counts 1) in
  let c100 = Option.value ~default:0 (Hashtbl.find_opt counts 100) in
  (* rank 1 should be vastly more popular than rank 100 under s=0.99 *)
  Alcotest.(check bool) "rank 1 >> rank 100" true (c1 > 5 * max 1 c100)

let test_zipf_exponent_one () =
  (* The s = 1 special case exercises the log-integral branch. *)
  let z = Zipf.create ~n:100 ~exponent:1.0 in
  let rng = Splitmix.create 17 in
  for _ = 1 to 10_000 do
    let r = Zipf.sample z rng in
    if r < 1 || r > 100 then Alcotest.failf "rank out of range: %d" r
  done

let test_distribution_sequential () =
  let d = Distribution.create ~scramble:false ~space:5 Distribution.Sequential in
  let rng = Splitmix.create 1 in
  let xs = List.init 7 (fun _ -> Distribution.sample d rng) in
  Alcotest.(check (list int)) "wraps" [ 0; 1; 2; 3; 4; 0; 1 ] xs

let test_distribution_hotspot () =
  let d =
    Distribution.create ~scramble:false ~space:1000
      (Distribution.Hotspot { hot_fraction = 0.1; hot_probability = 0.9 })
  in
  let rng = Splitmix.create 21 in
  let hot = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Distribution.sample d rng < 100 then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int n in
  Alcotest.(check bool) "hot fraction near 0.9" true (frac > 0.85 && frac < 0.95)

let test_distribution_in_space () =
  List.iter
    (fun kind ->
      let d = Distribution.create ~space:500 kind in
      let rng = Splitmix.create 31 in
      for _ = 1 to 5_000 do
        let v = Distribution.sample d rng in
        if v < 0 || v >= 500 then
          Alcotest.failf "%s out of space: %d" (Distribution.kind_to_string kind) v
      done)
    [
      Distribution.Uniform;
      Distribution.Zipfian 0.99;
      Distribution.Sequential;
      Distribution.Hotspot { hot_fraction = 0.2; hot_probability = 0.8 };
    ]

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.percentile h 50.0 in
  (* log buckets: within 2%, and the reported value must bound the
     percentile from above (upper-edge convention), never undershoot *)
  Alcotest.(check bool) "p50 near 500" true (p50 >= 500.0 && p50 < 530.0);
  let p99 = Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p99 near 990" true (p99 >= 990.0 && p99 < 1040.0);
  Alcotest.(check bool) "p100 is the max" true
    (Histogram.percentile h 100.0 = 1000.0);
  (* a single sample reports itself (clamped to max), not its bucket's
     lower edge *)
  let one = Histogram.create () in
  Histogram.add one 1.0;
  Alcotest.(check (float 1e-9)) "single sample percentile" 1.0
    (Histogram.percentile one 50.0);
  Alcotest.(check bool) "mean near 500.5" true (abs_float (Histogram.mean h -. 500.5) < 1.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1.0;
  Histogram.add b 100.0;
  Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check bool) "max" true (Histogram.max_value a = 100.0);
  Alcotest.(check bool) "min" true (Histogram.min_value a = 1.0)

let test_rwlock_mutual_exclusion () =
  let rw = Rwlock.create () in
  let counter = ref 0 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Rwlock.write_lock rw;
              incr counter;
              Rwlock.write_unlock rw
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 !counter

let test_rwlock_readers_parallel () =
  (* Two readers must be able to hold the lock simultaneously: each takes
     the read lock and then waits (bounded) for the other to arrive. If
     readers excluded each other, neither would see the rendezvous. *)
  let rw = Rwlock.create () in
  let inside = Atomic.make 0 in
  let both = Atomic.make false in
  let reader () =
    Rwlock.read_lock rw;
    Atomic.incr inside;
    let spins = ref 0 in
    while Atomic.get inside < 2 && !spins < 200_000_000 do
      incr spins;
      Domain.cpu_relax ()
    done;
    if Atomic.get inside >= 2 then Atomic.set both true;
    Rwlock.read_unlock rw
  in
  let a = Domain.spawn reader and b = Domain.spawn reader in
  Domain.join a;
  Domain.join b;
  Alcotest.(check bool) "readers overlapped" true (Atomic.get both)

let test_rwlock_try_write () =
  let rw = Rwlock.create () in
  Alcotest.(check bool) "acquires free lock" true (Rwlock.try_write_lock rw);
  Alcotest.(check bool) "fails when held" false (Rwlock.try_write_lock rw);
  Rwlock.write_unlock rw;
  Rwlock.read_lock rw;
  Alcotest.(check bool) "fails under reader" false (Rwlock.try_write_lock rw);
  Rwlock.read_unlock rw

let test_counters () =
  let c = Counters.create ~domains:4 () in
  let domains =
    Array.init 4 (fun slot ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Counters.incr c ~slot
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "sum" 4000 (Counters.read c);
  Counters.clear c;
  Alcotest.(check int) "cleared" 0 (Counters.read c)

let test_backoff_grows () =
  let b = Backoff.create () in
  Alcotest.(check int) "initial stage" 0 (Backoff.stage b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check bool) "stage grew" true (Backoff.stage b >= 2);
  Backoff.reset b;
  Alcotest.(check int) "reset" 0 (Backoff.stage b)

let suite =
  [
    Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
    Alcotest.test_case "splitmix int bounds" `Quick test_splitmix_bounds;
    Alcotest.test_case "splitmix float range" `Quick test_splitmix_float_range;
    Alcotest.test_case "splitmix split independence" `Quick test_splitmix_split_independent;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "uniformity" `Quick test_uniformity;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf exponent 1" `Quick test_zipf_exponent_one;
    Alcotest.test_case "sequential distribution" `Quick test_distribution_sequential;
    Alcotest.test_case "hotspot distribution" `Quick test_distribution_hotspot;
    Alcotest.test_case "all distributions in space" `Quick test_distribution_in_space;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "rwlock mutual exclusion" `Quick test_rwlock_mutual_exclusion;
    Alcotest.test_case "rwlock parallel readers" `Quick test_rwlock_readers_parallel;
    Alcotest.test_case "rwlock try_write" `Quick test_rwlock_try_write;
    Alcotest.test_case "striped counters" `Quick test_counters;
    Alcotest.test_case "backoff stages" `Quick test_backoff_grows;
  ]
