(* Hot-key combining: the batch-level dedup layer in the server
   (anchored-no-op elision, search piggy-backing, commit elision) and
   the leaf-level combining array under the tree. Covers exact batch
   semantics, per-batch state reset, 4-client linearizability with
   combining on and off, the durable-ack contract under a crash taken
   right after a combined batch's acks, and pipeline_sharded's
   keyless-barrier / same-key-run ordering guarantees. *)

open Repro_storage
open Repro_core
open Repro_baseline
open Repro_harness
module P = Repro_server.Protocol
module Server = Repro_server.Server
module C = Repro_client.Client
module PS = Tree_intf.Paged_int
module Sg = Tree_intf.Sagiv_disk

let response = Alcotest.testable P.pp_response ( = )
let loopback = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)

let with_server ?workers ?durable_acks ?combine_batch
    ?(handle = (Tree_intf.sagiv ()).make ~order:4) f =
  let srv =
    Server.start ?workers ?durable_acks ?combine_batch ~handle
      ~listen:[ loopback ] ()
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f srv (List.hd (Server.addresses srv)))

let with_client addr f =
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

let check_resps what expected actual =
  Alcotest.(check (list response)) what expected actual

(* ---------- leaf combining, single caller ---------- *)

(* The combining handle must be observationally identical to the plain
   one: same outcomes for the full insert/dup/delete/miss alphabet, and
   the counters account for every mutation routed through the array. *)
let test_leaf_combining_semantics () =
  let comb, h = Tree_intf.with_combining ((Tree_intf.sagiv ()).make ~order:4) in
  let c = Handle.ctx ~slot:0 in
  Alcotest.(check bool) "insert" true (h.Tree_intf.insert c 1 10 = `Ok);
  Alcotest.(check bool) "dup" true (h.Tree_intf.insert c 1 11 = `Duplicate);
  Alcotest.(check (option int)) "search" (Some 10) (h.Tree_intf.search c 1);
  Alcotest.(check bool) "delete" true (h.Tree_intf.delete c 1);
  Alcotest.(check bool) "delete miss" false (h.Tree_intf.delete c 1);
  Alcotest.(check (option int)) "gone" None (h.Tree_intf.search c 1);
  for k = 0 to 99 do
    ignore (h.Tree_intf.insert c k k)
  done;
  Alcotest.(check int) "cardinal" 100 (h.Tree_intf.cardinal ());
  let k = Combine.counters comb in
  Alcotest.(check int) "every mutation registered" 104 k.Combine.c_registered;
  Alcotest.(check int) "uncontended: all applied physically" 104
    k.Combine.c_applied;
  Alcotest.(check int) "uncontended: nothing combined" 0 k.Combine.c_combined

(* 4 domains hammering 2 hot keys through one combining handle; every
   outcome feeds the per-key linearizability oracle (histories kept
   under Linearize.max_history so nothing is skipped). *)
let test_leaf_combining_linearizable () =
  let comb, h = Tree_intf.with_combining ((Tree_intf.sagiv ()).make ~order:4) in
  let rec_ = Linearize.recorder () in
  let key_space = 2 and per_domain = 6 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let l = Linearize.local rec_ in
            let rng = Random.State.make [| 4100 + d |] in
            let c = Handle.ctx ~slot:d in
            for _ = 1 to per_domain do
              let key = Random.State.int rng key_space in
              ignore
                (match Random.State.int rng 2 with
                | 0 ->
                    Linearize.record l ~key ~kind:Insert (fun () ->
                        h.Tree_intf.insert c key key = `Ok)
                | _ ->
                    Linearize.record l ~key ~kind:Delete (fun () ->
                        h.Tree_intf.delete c key))
            done;
            Linearize.merge_local l))
  in
  List.iter Domain.join domains;
  let v = Linearize.check (Linearize.events rec_) in
  Alcotest.(check bool) "no skipped keys" true (v.Linearize.skipped = []);
  if not (Linearize.ok v) then
    Alcotest.failf "combining handle not linearizable on keys %s"
      (String.concat ", "
         (List.map (fun (k, _) -> string_of_int k) v.Linearize.violations));
  let k = Combine.counters comb in
  Alcotest.(check int) "all ops registered" (4 * per_domain)
    k.Combine.c_registered;
  Alcotest.(check int) "combined + applied = registered"
    k.Combine.c_registered
    (k.Combine.c_combined + k.Combine.c_applied)

(* ---------- batch-level dedup: exact semantics ---------- *)

(* One pipelined batch walking a key through insert/dup/delete/miss:
   every response must match sequential semantics exactly, with the
   repeats elided behind their in-batch anchor and the hot searches
   piggy-backed on already-known outcomes. *)
let test_batch_dedup_semantics () =
  with_server ~combine_batch:true @@ fun srv addr ->
  with_client addr @@ fun c ->
  let resps =
    C.pipeline c
      [
        P.Insert { key = 1; value = 10 };
        P.Search { key = 1 };
        P.Insert { key = 1; value = 11 };
        P.Search { key = 1 };
        P.Delete { key = 1 };
        P.Search { key = 1 };
        P.Delete { key = 1 };
        P.Search { key = 1 };
      ]
  in
  check_resps "insert/dup/delete/miss walk"
    [
      P.Inserted; P.Found 10; P.Duplicate; P.Found 10; P.Deleted; P.Absent;
      P.Absent; P.Absent;
    ]
    resps;
  let m = Server.stats srv in
  (* elided: the repeat insert and the repeat delete; piggybacked: all
     four searches land on in-batch knowledge *)
  Alcotest.(check int) "elided" 2 m.Stats.elided;
  Alcotest.(check int) "piggybacked" 4 m.Stats.piggybacked

(* Dedup facts must never survive a batch boundary: knowledge recorded
   in one batch cannot answer the next one (the tree between batches is
   shared with other connections). *)
let test_batch_state_reset () =
  with_server ~combine_batch:true @@ fun _srv addr ->
  with_client addr @@ fun c ->
  check_resps "batch 1"
    [ P.Inserted; P.Deleted ]
    (C.pipeline c [ P.Insert { key = 3; value = 30 }; P.Delete { key = 3 } ]);
  (* a fresh batch must re-read the tree, not the stale kstate *)
  check_resps "batch 2 re-reads the tree"
    [ P.Absent; P.Inserted; P.Found 31 ]
    (C.pipeline c
       [
         P.Search { key = 3 };
         P.Insert { key = 3; value = 31 };
         P.Search { key = 3 };
       ]);
  Alcotest.(check (option int)) "tree state final" (Some 31) (C.search c ~key:3)

(* A search on an unknown key is physical; only repeats within the same
   batch piggy-back. *)
let test_piggyback_unknown_key () =
  with_server ~combine_batch:true @@ fun srv addr ->
  with_client addr @@ fun c ->
  check_resps "miss, piggybacked miss, insert, piggybacked hit"
    [ P.Absent; P.Absent; P.Inserted; P.Found 50 ]
    (C.pipeline c
       [
         P.Search { key = 5 };
         P.Search { key = 5 };
         P.Insert { key = 5; value = 50 };
         P.Search { key = 5 };
       ]);
  let m = Server.stats srv in
  Alcotest.(check int) "exactly the repeats piggybacked" 2 m.Stats.piggybacked;
  Alcotest.(check int) "nothing elided" 0 m.Stats.elided

(* ---------- 4-client hot-key linearizability, combining on/off ---------- *)

(* 4 clients pipeline small batches over 8 hot keys; every response
   becomes an event whose window spans its whole batch (conservative:
   wider windows only make the check more permissive, so any violation
   found is real). Run against a plain server and a fully combined one:
   both must linearize, with every key actually checked. *)
let run_hot_key_clients ~combine addr =
  let clock = Atomic.make 0 in
  let all = Atomic.make [] in
  let key_space = 8 and batches = 3 and depth = 4 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| 8800 + d + if combine then 64 else 0 |] in
            let mine = ref [] in
            with_client addr @@ fun c ->
            for _ = 1 to batches do
              let reqs =
                List.init depth (fun _ ->
                    let key = Random.State.int rng key_space in
                    match Random.State.int rng 3 with
                    | 0 -> P.Insert { key; value = key }
                    | 1 -> P.Delete { key }
                    | _ -> P.Search { key })
              in
              let inv = Atomic.fetch_and_add clock 1 in
              let resps = C.pipeline c reqs in
              let res = Atomic.fetch_and_add clock 1 in
              List.iter2
                (fun req resp ->
                  let key, kind, ok =
                    match (req, resp) with
                    | P.Insert { key; _ }, r ->
                        (key, Linearize.Insert, r = P.Inserted)
                    | P.Delete { key }, r -> (key, Linearize.Delete, r = P.Deleted)
                    | P.Search { key }, r ->
                        ( key,
                          Linearize.Search,
                          match r with P.Found _ -> true | _ -> false )
                    | _ -> assert false
                  in
                  mine := { Linearize.key; kind; ok; inv; res } :: !mine)
                reqs resps
            done;
            let rec publish () =
              let cur = Atomic.get all in
              if not (Atomic.compare_and_set all cur (!mine @ cur)) then
                publish ()
            in
            publish ()))
  in
  List.iter Domain.join domains;
  let v = Linearize.check (Atomic.get all) in
  Alcotest.(check bool) "no skipped keys" true (v.Linearize.skipped = []);
  if not (Linearize.ok v) then
    Alcotest.failf "violations (combine=%b) on keys %s" combine
      (String.concat ", "
         (List.map (fun (k, _) -> string_of_int k) v.Linearize.violations))

let test_hot_keys_linearizable_off () =
  with_server ~workers:4 @@ fun _srv addr ->
  run_hot_key_clients ~combine:false addr

let test_hot_keys_linearizable_on () =
  let _comb, handle =
    Tree_intf.with_combining ((Tree_intf.sagiv ()).make ~order:4)
  in
  with_server ~workers:4 ~combine_batch:true ~handle @@ fun _srv addr ->
  run_hot_key_clients ~combine:true addr

(* ---------- durable acks under combining ---------- *)

(* The contract combining must not weaken: snapshot the crash image the
   moment a combined batch's acks are in — elided repeats and all — and
   recovery must hold every physical effect those acks were anchored
   to. A trailing all-no-op batch exercises commit elision (it must
   skip its fsync precisely because there is nothing new to lose). *)
let test_wal_combined_acked_crash () =
  let data_page_size = 512 in
  let wal_page_size = Wal.log_page_size ~data_page_size in
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:64 ~wal:lfile pfile in
  let t = Sg.create ~order:4 ~store () in
  Sg.flush t;
  let handle =
    Tree_intf.of_ops
      ~commit:(fun () -> Sg.commit t)
      ~range:(Sg.range t) ~name:"sagiv-disk" (module Sg) t
  in
  let n = 50 in
  let image, limage =
    with_server ~workers:2 ~durable_acks:true ~combine_batch:true ~handle
    @@ fun srv addr ->
    with_client addr @@ fun c ->
    (* each key: a surviving insert, an elided repeat, a physical miss
       delete and an elided repeat of it *)
    let reqs =
      List.concat_map
        (fun i ->
          [
            P.Insert { key = i; value = i * 7 };
            P.Insert { key = i; value = 999 };
            P.Delete { key = 1000 + i };
            P.Delete { key = 1000 + i };
          ])
        (List.init n Fun.id)
    in
    let resps = C.pipeline c reqs in
    List.iteri
      (fun j r ->
        let expect =
          match j mod 4 with
          | 0 -> P.Inserted
          | 1 -> P.Duplicate
          | _ -> P.Absent
        in
        Alcotest.check response (Printf.sprintf "ack %d" j) expect r)
      resps;
    (* a pure no-op batch: acked, but its commit is elided *)
    let dups =
      C.pipeline c
        (List.init n (fun i -> P.Insert { key = i; value = 0 }))
    in
    Alcotest.(check bool) "all duplicates" true
      (List.for_all (( = ) P.Duplicate) dups);
    let m = Server.stats srv in
    Alcotest.(check bool)
      (Printf.sprintf "no-op batch skipped its commit (%d)" m.Stats.commits_skipped)
      true
      (m.Stats.commits_skipped > 0);
    Alcotest.(check bool) "state-changing batch committed" true
      (m.Stats.acked_commits > 0);
    (* the crash: both devices snapshotted right after the acks *)
    (Paged_file.crash_image pfile, Paged_file.crash_image lfile)
  in
  let store2 = PS.open_from ~cache_pages:64 ~wal:limage image in
  let t2 = Sg.open_existing store2 in
  let c2 = Sg.ctx ~slot:0 in
  for i = 0 to n - 1 do
    (match Sg.search t2 c2 i with
    | Some v when v = i * 7 -> ()
    | Some v -> Alcotest.failf "key %d recovered with value %d" i v
    | None ->
        Alcotest.failf "acked key %d lost: combined-batch ack outran its commit"
          i);
    match Sg.search t2 c2 (1000 + i) with
    | None -> ()
    | Some _ -> Alcotest.failf "phantom key %d materialised" (1000 + i)
  done

(* ---------- pipeline_sharded ordering ---------- *)

(* Same-key runs must keep their relative order through the client-side
   shard regrouping, and keyless requests (Commit) are barriers nothing
   crosses — checked end to end against a sharded combined server,
   where any illegal reorder changes an answer. *)
let test_pipeline_sharded_order () =
  let shards = 4 in
  let handle =
    Tree_intf.sharded ~name:"sagiv-sharded"
      (Array.init shards (fun _ -> (Tree_intf.sagiv ()).make ~order:4))
  in
  with_server ~combine_batch:true ~handle @@ fun _srv addr ->
  with_client addr @@ fun c ->
  (* same-key run: insert/delete/insert/search on one key must not be
     reordered by the regrouping *)
  check_resps "same-key run keeps order"
    [ P.Inserted; P.Deleted; P.Inserted; P.Found 2 ]
    (C.pipeline_sharded c ~shards
       [
         P.Insert { key = 5; value = 1 };
         P.Delete { key = 5 };
         P.Insert { key = 5; value = 2 };
         P.Search { key = 5 };
       ]);
  (* keyless barrier: the delete after the Commit must see the insert
     before it, on every shard the keys hash to *)
  check_resps "keyless barrier not crossed"
    [
      P.Inserted; P.Inserted; P.Found 10; P.Committed; P.Duplicate; P.Deleted;
      P.Absent;
    ]
    (C.pipeline_sharded c ~shards
       [
         P.Insert { key = 11; value = 10 };
         P.Insert { key = 12; value = 20 };
         P.Search { key = 11 };
         P.Commit;
         P.Insert { key = 11; value = 99 };
         P.Delete { key = 12 };
         P.Search { key = 12 };
       ]);
  (* responses come back in caller order even when shard grouping
     permutes the wire order of distinct keys *)
  let n = 64 in
  let reqs = List.init n (fun i -> P.Insert { key = 100 + i; value = i }) in
  let resps = C.pipeline_sharded c ~shards reqs in
  Alcotest.(check int) "one response per request" n (List.length resps);
  Alcotest.(check bool) "all fresh inserts acked" true
    (List.for_all (( = ) P.Inserted) resps);
  List.iteri
    (fun i _ ->
      Alcotest.(check (option int))
        (Printf.sprintf "key %d" (100 + i))
        (Some i)
        (C.search c ~key:(100 + i)))
    reqs

let suite =
  [
    ("leaf combining semantics", `Quick, test_leaf_combining_semantics);
    ("leaf combining linearizable (4 domains)", `Quick,
     test_leaf_combining_linearizable);
    ("batch dedup exact semantics", `Quick, test_batch_dedup_semantics);
    ("dedup state resets per batch", `Quick, test_batch_state_reset);
    ("piggyback only on in-batch knowledge", `Quick,
     test_piggyback_unknown_key);
    ("4 hot-key clients linearizable, combining off", `Quick,
     test_hot_keys_linearizable_off);
    ("4 hot-key clients linearizable, combining on", `Quick,
     test_hot_keys_linearizable_on);
    ("combined-batch acks survive crash (wal)", `Quick,
     test_wal_combined_acked_crash);
    ("pipeline_sharded same-key runs and barriers", `Quick,
     test_pipeline_sharded_order);
  ]
