(* Retention compaction: a time-series index with background compaction.

   Rounds of "ingest new records, expire old ones" shift the live key range
   rightwards, which without compression leaves a long tail of near-empty
   pages (the Lehman-Yao deletion regime). Background compactor domains fed
   by the deletion queue (§5.4) merge the sparse pages, keep the tree short
   and let the epoch manager hand pages back to the allocator.

   Run with:  dune exec examples/compaction_demo.exe *)

open Repro_storage
open Repro_core
module Tree = Sagiv.Make (Key.Int)
module Compactor = Repro_core.Compactor.Make (Key.Int)
module Validate = Repro_core.Validate.Make (Key.Int)

let window = 50_000 (* live records retained *)
let rounds = 8
let batch = 25_000 (* records ingested/expired per round *)

let run ~with_compaction =
  let tree = Tree.create ~order:16 ~enqueue_on_delete:with_compaction () in
  let ctx = Tree.ctx ~slot:0 in
  let stop = Atomic.make false in
  let compactors =
    if with_compaction then
      Array.init 2 (fun i ->
          Domain.spawn (fun () ->
              let c = Tree.ctx ~slot:(1 + i) in
              Compactor.run_worker tree c ~stop))
    else [||]
  in
  (* initial window *)
  for t = 0 to window - 1 do
    ignore (Tree.insert tree ctx t t)
  done;
  for round = 1 to rounds do
    let newest = window + ((round - 1) * batch) in
    for t = newest to newest + batch - 1 do
      ignore (Tree.insert tree ctx t t)
    done;
    let oldest = (round - 1) * batch in
    for t = oldest to oldest + batch - 1 do
      ignore (Tree.delete tree ctx t)
    done;
    ignore (Tree.reclaim tree)
  done;
  Atomic.set stop true;
  Array.iter Domain.join compactors;
  (* let the queue drain fully, then reclaim *)
  if with_compaction then begin
    let c = Tree.ctx ~slot:3 in
    (match Compactor.run_until_empty tree c with `Drained -> () | `Step_limit -> ());
    ignore (Tree.reclaim tree)
  end;
  let report = Validate.check tree in
  (tree, report)

let describe label (tree, (report : Repro_core.Validate.report)) =
  let live = Store.live_count tree.Handle.store in
  Printf.printf "%-22s keys=%-6d height=%d reachable-nodes=%-5d live-pages=%-5d ~%dKiB  valid=%b\n"
    label report.Repro_core.Validate.total_keys report.Repro_core.Validate.height
    report.Repro_core.Validate.total_nodes live
    (report.Repro_core.Validate.encoded_bytes / 1024)
    (Repro_core.Validate.ok report)

let () =
  Printf.printf "time-series retention: %d rounds of +%d/-%d records, %d live window\n\n"
    rounds batch batch window;
  describe "without compaction:" (run ~with_compaction:false);
  describe "with compaction:" (run ~with_compaction:true)
