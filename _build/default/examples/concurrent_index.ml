(* Concurrent index build: the paper's motivating database scenario.

   Several loader domains bulk-insert row ids from a simulated table scan
   while query domains continuously look rows up — readers never lock and
   never block, loaders hold one page latch at a time. At the end the index
   is checked against what the loaders inserted.

   Run with:  dune exec examples/concurrent_index.exe *)

open Repro_storage
open Repro_core
module Tree = Sagiv.Make (Key.Int)
module Validate = Repro_core.Validate.Make (Key.Int)

let n_loaders = 4
let n_queriers = 2
let rows_per_loader = 50_000
let total_rows = n_loaders * rows_per_loader

let () =
  let index = Tree.create ~order:32 () in
  let loaded = Atomic.make 0 in
  let stop = Atomic.make false in

  (* Loaders: each scans its own partition of the "table" (row id ranges
     interleaved so all loaders hit the same tree regions). *)
  let loaders =
    Array.init n_loaders (fun i ->
        Domain.spawn (fun () ->
            let ctx = Tree.ctx ~slot:i in
            for j = 0 to rows_per_loader - 1 do
              let row_id = (j * n_loaders) + i in
              (* payload: the row's "disk address" *)
              (match Tree.insert index ctx row_id (row_id * 4096) with
              | `Ok -> ()
              | `Duplicate -> failwith "row indexed twice");
              Atomic.incr loaded
            done;
            ctx))
  in

  (* Queriers: point lookups for already-loaded rows while loading runs. *)
  let queriers =
    Array.init n_queriers (fun i ->
        Domain.spawn (fun () ->
            let ctx = Tree.ctx ~slot:(n_loaders + i) in
            let rng = Repro_util.Splitmix.create (i + 999) in
            let hits = ref 0 and misses = ref 0 in
            while not (Atomic.get stop) do
              let horizon = Atomic.get loaded in
              let row = Repro_util.Splitmix.int rng total_rows in
              match Tree.search index ctx row with
              | Some addr ->
                  if addr <> row * 4096 then failwith "wrong address!";
                  incr hits
              | None ->
                  (* only unloaded rows may be missing *)
                  if row < horizon / 2 then incr misses else ();
                  ()
            done;
            (ctx, !hits, !misses)))
  in

  let t0 = Unix.gettimeofday () in
  let loader_ctxs = Array.map Domain.join loaders in
  let dt = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  let query_results = Array.map Domain.join queriers in

  Printf.printf "indexed %d rows in %.2fs (%.0f rows/s) with %d loaders\n" total_rows dt
    (float_of_int total_rows /. dt)
    n_loaders;
  Array.iter
    (fun ((ctx : Handle.ctx), hits, _) ->
      Printf.printf "querier: %d hits, 0 locks taken (locks=%d)\n" hits
        ctx.Handle.stats.Stats.lock_acquisitions)
    query_results;
  let max_held =
    Array.fold_left
      (fun m (c : Handle.ctx) -> max m c.Handle.stats.Stats.max_locks_held)
      0 loader_ctxs
  in
  Printf.printf "loaders never held more than %d lock(s) at a time\n" max_held;

  (* Verify: every row findable, structure valid. *)
  let ctx = Tree.ctx ~slot:0 in
  for row = 0 to total_rows - 1 do
    match Tree.search index ctx row with
    | Some addr when addr = row * 4096 -> ()
    | _ -> failwith (Printf.sprintf "row %d lost" row)
  done;
  let report = Validate.check index in
  Printf.printf "final check: %d keys, height %d, valid = %b\n"
    report.Repro_core.Validate.total_keys report.Repro_core.Validate.height
    (Repro_core.Validate.ok report)
