(* Quickstart: create a tree, insert, search, delete, compress.

   Run with:  dune exec examples/quickstart.exe *)

open Repro_storage
open Repro_core

(* The tree is a functor over the key type; Key.Int is the stock instance. *)
module Tree = Sagiv.Make (Key.Int)
module Compress = Compress.Make (Key.Int)
module Validate = Repro_core.Validate.Make (Key.Int)

let () =
  (* [order] is the paper's k: nodes hold between k and 2k pairs. *)
  let tree = Tree.create ~order:8 () in

  (* Every worker (here: just this main domain) gets a context carrying its
     epoch slot and private statistics. *)
  let ctx = Tree.ctx ~slot:0 in

  (* Insert records: key -> record pointer (any int payload). *)
  for k = 1 to 10_000 do
    match Tree.insert tree ctx k (k * 100) with
    | `Ok -> ()
    | `Duplicate -> assert false
  done;
  Printf.printf "inserted 10000 keys; height = %d\n" (Tree.height tree);

  (* Searches take no locks at all. *)
  (match Tree.search tree ctx 4242 with
  | Some payload -> Printf.printf "search 4242 -> payload %d\n" payload
  | None -> assert false);
  assert (Tree.search tree ctx 20_000 = None);

  (* Duplicate inserts are reported, not overwritten. *)
  assert (Tree.insert tree ctx 4242 0 = `Duplicate);

  (* Deletion removes the pair from its leaf (no restructuring, §4)... *)
  for k = 1 to 10_000 do
    if k mod 2 = 0 then assert (Tree.delete tree ctx k)
  done;
  Printf.printf "deleted half; %d keys left, height still %d\n" (Tree.cardinal tree)
    (Tree.height tree);

  (* The paper's headline property: despite ~1200 splits above, inserts and
     deletes never held more than ONE lock at a time. (Compression below
     holds three, so read the high-water mark now.) *)
  Printf.printf "max locks held by insert/delete: %d\n"
    ctx.Handle.stats.Stats.max_locks_held;

  (* ...and a background-style compression pass restores occupancy (§5). *)
  let passes = Compress.compress_to_fixpoint tree ctx in
  let freed = Tree.reclaim tree in
  Printf.printf "compressed in %d passes, released %d pages, height now %d\n" passes
    freed (Tree.height tree);

  (* The structural invariants can be checked any time the tree is idle. *)
  let report = Validate.check tree in
  Printf.printf "valid = %b; %d nodes, %d keys, ~%d bytes on disk\n"
    (Repro_core.Validate.ok report)
    report.Repro_core.Validate.total_nodes report.Repro_core.Validate.total_keys
    report.Repro_core.Validate.encoded_bytes;

  Printf.printf "stats: %s\n" (Stats.to_string ctx.Handle.stats)
