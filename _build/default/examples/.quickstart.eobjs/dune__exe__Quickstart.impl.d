examples/quickstart.ml: Compress Handle Key Printf Repro_core Repro_storage Sagiv Stats
