examples/word_index.mli:
