examples/concurrent_index.mli:
