examples/concurrent_index.ml: Array Atomic Domain Handle Key Printf Repro_core Repro_storage Repro_util Sagiv Stats Unix
