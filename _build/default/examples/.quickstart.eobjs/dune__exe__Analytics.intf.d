examples/analytics.mli:
