examples/word_index.ml: Array Bytes Domain Key List Printf Repro_core Repro_storage Sagiv String
