examples/analytics.ml: Array Atomic Domain Key List Printf Repro_core Repro_storage Repro_util Sagiv Unix
