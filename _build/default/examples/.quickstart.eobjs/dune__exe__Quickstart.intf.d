examples/quickstart.mli:
