examples/compaction_demo.ml: Array Atomic Domain Handle Key Printf Repro_core Repro_storage Sagiv Store
