examples/kv_store.ml: Array Atomic Domain Kv Printf Repro_core Repro_storage Repro_util String
