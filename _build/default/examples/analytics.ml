(* Bulk load + concurrent range analytics.

   An OLAP-flavoured scenario: a large sorted fact table is bulk-loaded
   into a dense index in one pass (of_sorted — no locks, 90% fill), then
   several analyst domains run range aggregations concurrently with a
   trickle of live inserts. Range scans are lock-free leaf-chain walks,
   so analysts never block the writer and vice versa.

   Run with:  dune exec examples/analytics.exe *)

open Repro_storage
open Repro_core
module Tree = Sagiv.Make (Key.Int)
module Validate = Repro_core.Validate.Make (Key.Int)

let facts = 500_000 (* (timestamp, amount) facts, timestamps 0,2,4,.. *)

let () =
  (* Bulk load: key = timestamp, payload = amount. *)
  let t0 = Unix.gettimeofday () in
  let pairs = List.init facts (fun i -> (i * 2, (i * 37 mod 100) + 1)) in
  let index = Tree.of_sorted ~order:32 ~fill:0.9 pairs in
  let load_s = Unix.gettimeofday () -. t0 in
  let report = Validate.check index in
  Printf.printf "bulk-loaded %d facts in %.2fs (%.0f/s): height %d, %d nodes, valid=%b\n"
    facts load_s
    (float_of_int facts /. load_s)
    report.Repro_core.Validate.height report.Repro_core.Validate.total_nodes
    (Repro_core.Validate.ok report);

  (* Compare against incremental insertion of the same data. *)
  let t1 = Unix.gettimeofday () in
  let incr_tree = Tree.create ~order:32 () in
  let c = Tree.ctx ~slot:0 in
  List.iter (fun (k, v) -> ignore (Tree.insert incr_tree c k v)) pairs;
  let incr_s = Unix.gettimeofday () -. t1 in
  let incr_report = Validate.check incr_tree in
  Printf.printf "incremental build: %.2fs (%.1fx slower), %d nodes (%.1fx more)\n" incr_s
    (incr_s /. load_s) incr_report.Repro_core.Validate.total_nodes
    (float_of_int incr_report.Repro_core.Validate.total_nodes
    /. float_of_int report.Repro_core.Validate.total_nodes);

  (* Concurrent analytics: 3 analysts aggregate sliding windows while a
     writer appends new facts at the right edge. *)
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let ctx = Tree.ctx ~slot:1 in
        let next = ref (facts * 2) in
        let n = ref 0 in
        while not (Atomic.get stop) do
          ignore (Tree.insert index ctx !next 50);
          next := !next + 2;
          incr n
        done;
        !n)
  in
  let analysts =
    Array.init 3 (fun a ->
        Domain.spawn (fun () ->
            let ctx = Tree.ctx ~slot:(2 + a) in
            let rng = Repro_util.Splitmix.create (a + 7) in
            let windows = ref 0 and checksum = ref 0 in
            for _ = 1 to 200 do
              let lo = Repro_util.Splitmix.int rng (facts * 2) in
              let hi = lo + 20_000 in
              let sum, count =
                Tree.fold_range index ctx ~lo ~hi ~init:(0, 0)
                  (fun (s, c) _k amount -> (s + amount, c + 1))
              in
              if count > 0 then begin
                incr windows;
                checksum := !checksum + (sum / count)
              end
            done;
            (!windows, !checksum)))
  in
  let results = Array.map Domain.join analysts in
  Atomic.set stop true;
  let appended = Domain.join writer in
  Array.iteri
    (fun i (windows, checksum) ->
      Printf.printf "analyst %d: %d windows aggregated (avg-of-avgs checksum %d)\n" i
        windows (checksum / max 1 windows))
    results;
  Printf.printf "writer appended %d live facts during the scans\n" appended;
  let final = Validate.check index in
  Printf.printf "final: %d keys, valid=%b\n" final.Repro_core.Validate.total_keys
    (Repro_core.Validate.ok final)
