(* Generic keys: a concurrent word index over string keys.

   The tree is a functor over Key.S; instantiating it with Key.Str gives a
   string-keyed index with no other change. Several domains index the words
   of a built-in text corpus in parallel; lookups then resolve words to
   their first occurrence position. Also demonstrates snapshot save/load
   with a non-trivial key codec.

   Run with:  dune exec examples/word_index.exe *)

open Repro_storage
open Repro_core
module Tree = Sagiv.Make (Key.Str)
module Snapshot = Repro_core.Snapshot.Make (Key.Str)
module Validate = Repro_core.Validate.Make (Key.Str)

let corpus =
  "the b tree and its variants are widely used as a data structure for large \
   files several papers have described how to perform concurrent operations \
   on b trees clearly as long as we have only readers no scheduling is \
   necessary when there are also updaters it is easy to show that not every \
   schedule of concurrent processes is correct an updater is required to make \
   changes in some subtree which is called the scope of the updater the idea \
   is to traverse each level of the tree while examining pairs of nodes if \
   they have together two k or fewer pairs then all the data is moved to one \
   of them and the other is deleted algorithms for concurrent operations that \
   is searches insertions and deletions on b star trees are presented these \
   algorithms improve previous ones since an insertion process has to lock \
   only one node at any time"

let () =
  let words = String.split_on_char ' ' corpus |> List.filter (fun w -> w <> "") in
  let words = Array.of_list words in
  let index = Tree.create ~order:4 () in

  (* Index in parallel: word -> position of first occurrence. *)
  let n_domains = 4 in
  let domains =
    Array.init n_domains (fun i ->
        Domain.spawn (fun () ->
            let ctx = Tree.ctx ~slot:i in
            let j = ref i in
            while !j < Array.length words do
              (* `Duplicate means an earlier (or racing) occurrence won —
                 exactly the semantics we want for "first occurrence". *)
              ignore (Tree.insert index ctx words.(!j) !j);
              j := !j + n_domains
            done))
  in
  Array.iter Domain.join domains;

  let ctx = Tree.ctx ~slot:0 in
  Printf.printf "indexed %d distinct words (of %d tokens), height %d\n"
    (Tree.cardinal index) (Array.length words) (Tree.height index);
  List.iter
    (fun w ->
      match Tree.search index ctx w with
      | Some pos -> Printf.printf "  %-12s first at token %d\n" w pos
      | None -> Printf.printf "  %-12s (not present)\n" w)
    [ "concurrent"; "tree"; "lock"; "updater"; "zebra" ];

  (* Every word must resolve to one of its real positions. *)
  Array.iteri
    (fun _ w ->
      match Tree.search index ctx w with
      | Some pos when words.(pos) = w -> ()
      | _ -> failwith ("bad index entry for " ^ w))
    words;

  (* Snapshot the index through the binary page codec and reload it. *)
  let bytes = Snapshot.save index in
  let index' = Snapshot.load bytes in
  Printf.printf "snapshot: %d bytes; reloaded index valid = %b, %d words\n"
    (Bytes.length bytes)
    (Repro_core.Validate.ok (Validate.check index'))
    (Tree.cardinal index')
