(* Trace record / replay. *)

open Repro_baseline
open Repro_harness

let sample_ops =
  [
    Workload.Insert (1, 10);
    Workload.Insert (2, 20);
    Workload.Search 1;
    Workload.Delete 2;
    Workload.Search 2;
  ]

let test_roundtrip_file () =
  let path = Filename.temp_file "blink" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.save path sample_ops;
      Alcotest.(check bool) "roundtrip" true (Trace.load path = sample_ops))

let test_comments_and_blanks () =
  let path = Filename.temp_file "blink" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "# a trace\n\n i 5 50 \ns 5\n# end\n";
      close_out oc;
      Alcotest.(check bool) "parsed" true
        (Trace.load path = [ Workload.Insert (5, 50); Workload.Search 5 ]))

let test_parse_error () =
  let path = Filename.temp_file "blink" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "i 1 1\nbogus line\n";
      close_out oc;
      match Trace.load path with
      | exception Trace.Parse_error { line = 2; _ } -> ()
      | exception Trace.Parse_error e -> Alcotest.failf "wrong line %d" e.Trace.line
      | _ -> Alcotest.fail "bogus line accepted")

let test_generate_replay_deterministic () =
  let spec = Workload.spec ~op_mix:Workload.mixed_sid ~key_space:500 () in
  let ops = Trace.generate ~seed:5 ~ops:5_000 spec in
  Alcotest.(check int) "length" 5_000 (List.length ops);
  let run () =
    let h = Tree_intf.((sagiv ()).make ~order:4) in
    let c = Repro_core.Handle.ctx ~slot:0 in
    Trace.replay h c ops
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "replay deterministic" true (a = b);
  (* identical trace on two different trees gives identical answers *)
  let ly = Tree_intf.(lehman_yao.make ~order:4) in
  let c = Repro_core.Handle.ctx ~slot:0 in
  Alcotest.(check bool) "trees agree on trace" true (Trace.replay ly c ops = a)

let suite =
  [
    Alcotest.test_case "trace file roundtrip" `Quick test_roundtrip_file;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse error located" `Quick test_parse_error;
    Alcotest.test_case "generate/replay deterministic" `Quick
      test_generate_replay_deterministic;
  ]
