(* Paged files and checkpoints: both backends, chain spanning, header
   validation, corruption. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module Ck = Checkpoint.Make (Key.Int)
module CkS = Checkpoint.Make (Key.Str)
module SS = Sagiv.Make (Key.Str)
module V = Validate.Make (Key.Int)
module VS = Validate.Make (Key.Str)

let ctx = S.ctx

(* -- paged file -- *)

let test_paged_file_memory () =
  let pf = Paged_file.create_memory ~page_size:128 () in
  Alcotest.(check int) "empty" 0 (Paged_file.pages pf);
  let page i = Bytes.make 128 (Char.chr (65 + i)) in
  let a = Paged_file.append pf (page 0) in
  let b = Paged_file.append pf (page 1) in
  Alcotest.(check (pair int int)) "indices" (0, 1) (a, b);
  Alcotest.(check bytes) "read back" (page 1) (Paged_file.read pf 1);
  Paged_file.write pf 0 (page 2);
  Alcotest.(check bytes) "overwrite" (page 2) (Paged_file.read pf 0);
  (match Paged_file.read pf 7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range read accepted");
  match Paged_file.write pf 5 (page 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hole accepted"

let test_paged_file_growth () =
  let pf = Paged_file.create_memory ~page_size:64 () in
  for i = 0 to 999 do
    let p = Bytes.make 64 '\000' in
    Bytes.set_int32_le p 0 (Int32.of_int i);
    ignore (Paged_file.append pf p)
  done;
  Alcotest.(check int) "pages" 1000 (Paged_file.pages pf);
  for i = 0 to 999 do
    let p = Paged_file.read pf i in
    if Int32.to_int (Bytes.get_int32_le p 0) <> i then Alcotest.failf "page %d corrupted" i
  done

let test_paged_file_on_disk () =
  let path = Filename.temp_file "blink" ".pages" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let pf = Paged_file.create_file ~page_size:256 path in
      let mk i = Bytes.init 256 (fun j -> Char.chr ((i + j) mod 256)) in
      for i = 0 to 9 do
        ignore (Paged_file.append pf (mk i))
      done;
      Paged_file.sync pf;
      Paged_file.close pf;
      let pf = Paged_file.open_file ~page_size:256 path in
      Alcotest.(check int) "pages" 10 (Paged_file.pages pf);
      for i = 0 to 9 do
        Alcotest.(check bytes) (Printf.sprintf "page %d" i) (mk i) (Paged_file.read pf i)
      done;
      Paged_file.close pf)

(* -- checkpoints -- *)

let build n =
  let t = S.create ~order:4 () in
  let c = ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k (k * 3))
  done;
  t

let test_checkpoint_roundtrip_memory () =
  let t = build 5_000 in
  let pf = Paged_file.create_memory () in
  Ck.save t pf;
  Alcotest.(check bool) "multiple pages used" true (Paged_file.pages pf > 2);
  let t' = Ck.load pf in
  Alcotest.(check (list string)) "valid" [] (V.check t').Validate.errors;
  Alcotest.(check bool) "contents equal" true (S.to_list t = S.to_list t');
  (* loaded tree fully operational *)
  let c = ctx ~slot:0 in
  Alcotest.(check bool) "insert" true (S.insert t' c 100_000 1 = `Ok);
  Alcotest.(check bool) "delete" true (S.delete t' c 1)

let test_checkpoint_roundtrip_disk () =
  let path = Filename.temp_file "blink" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t = build 3_000 in
      let pf = Paged_file.create_file path in
      Ck.save t pf;
      Paged_file.close pf;
      let pf = Paged_file.open_file path in
      let t' = Ck.load pf in
      Paged_file.close pf;
      Alcotest.(check (list string)) "valid" [] (V.check t').Validate.errors;
      Alcotest.(check int) "cardinal" 3_000 (S.cardinal t'))

let test_checkpoint_small_pages_chain () =
  (* Tiny pages force long chains: exercises the overflow-chain logic. *)
  let t = build 2_000 in
  let pf = Paged_file.create_memory ~page_size:128 () in
  Ck.save t pf;
  Alcotest.(check bool) "long chain" true (Paged_file.pages pf > 100);
  let t' = Ck.load pf in
  Alcotest.(check bool) "contents" true (S.to_list t = S.to_list t')

let test_checkpoint_empty_tree () =
  let t = S.create ~order:4 () in
  let pf = Paged_file.create_memory () in
  Ck.save t pf;
  let t' = Ck.load pf in
  Alcotest.(check int) "empty" 0 (S.cardinal t');
  let c = ctx ~slot:0 in
  Alcotest.(check bool) "usable" true (S.insert t' c 5 5 = `Ok)

let test_checkpoint_string_keys () =
  let t = SS.create ~order:3 () in
  let c = SS.ctx ~slot:0 in
  for i = 0 to 999 do
    ignore (SS.insert t c (Printf.sprintf "key-%05d" i) i)
  done;
  let pf = Paged_file.create_memory ~page_size:512 () in
  CkS.save t pf;
  let t' = CkS.load pf in
  Alcotest.(check (list string)) "valid" [] (VS.check t').Validate.errors;
  Alcotest.(check (option int)) "lookup" (Some 77) (SS.search t' c "key-00077")

let test_checkpoint_corruption () =
  let t = build 100 in
  let pf = Paged_file.create_memory () in
  Ck.save t pf;
  let header = Paged_file.read pf 0 in
  Bytes.set_uint8 header 0 0xEE;
  Paged_file.write pf 0 header;
  match Ck.load pf with
  | exception Checkpoint.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt header accepted"

let test_checkpoint_after_compression () =
  let t = S.create ~order:4 ~enqueue_on_delete:true () in
  let c = ctx ~slot:0 in
  for k = 1 to 4_000 do
    ignore (S.insert t c k k)
  done;
  for k = 1 to 4_000 do
    if k mod 3 <> 0 then ignore (S.delete t c k)
  done;
  let module Co = Compactor.Make (Key.Int) in
  (match Co.run_until_empty t c with `Drained -> () | `Step_limit -> ());
  ignore (S.reclaim t);
  (* tombstones must not leak into the checkpoint *)
  let pf = Paged_file.create_memory () in
  Ck.save t pf;
  let t' = Ck.load pf in
  Alcotest.(check (list string)) "valid" [] (V.check t').Validate.errors;
  Alcotest.(check int) "cardinal" (S.cardinal t) (S.cardinal t')

let suite =
  [
    Alcotest.test_case "paged file (memory)" `Quick test_paged_file_memory;
    Alcotest.test_case "paged file growth" `Quick test_paged_file_growth;
    Alcotest.test_case "paged file on disk" `Quick test_paged_file_on_disk;
    Alcotest.test_case "checkpoint roundtrip (memory)" `Quick test_checkpoint_roundtrip_memory;
    Alcotest.test_case "checkpoint roundtrip (disk)" `Quick test_checkpoint_roundtrip_disk;
    Alcotest.test_case "checkpoint chains across small pages" `Quick
      test_checkpoint_small_pages_chain;
    Alcotest.test_case "checkpoint of empty tree" `Quick test_checkpoint_empty_tree;
    Alcotest.test_case "checkpoint with string keys" `Quick test_checkpoint_string_keys;
    Alcotest.test_case "checkpoint corruption detected" `Quick test_checkpoint_corruption;
    Alcotest.test_case "checkpoint after compression" `Quick test_checkpoint_after_compression;
  ]
