(* Multi-domain correctness of the Sagiv tree: the observable consequences
   of Theorem 1 (serialisable logical data, valid search structure) and of
   the one-lock insertion claim. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module V = Validate.Make (Key.Int)

let ctx = S.ctx

let check_valid t msg =
  let r = V.check t in
  if not (Validate.ok r) then
    Alcotest.failf "%s: %s" msg (String.concat "; " r.Validate.errors)

let test_disjoint_inserts () =
  let t = S.create ~order:4 () in
  let nd = 6 and per = 10_000 in
  let domains =
    Array.init nd (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:i in
            for j = 0 to per - 1 do
              let k = (j * nd) + i in
              match S.insert t c k (k * 2) with
              | `Ok -> ()
              | `Duplicate -> failwith "spurious duplicate"
            done;
            c))
  in
  let ctxs = Array.map Domain.join domains in
  check_valid t "after disjoint inserts";
  Alcotest.(check int) "all present" (nd * per) (S.cardinal t);
  let c0 = ctx ~slot:0 in
  for k = 0 to (nd * per) - 1 do
    if S.search t c0 k <> Some (k * 2) then Alcotest.failf "key %d lost" k
  done;
  Array.iter
    (fun (c : Handle.ctx) ->
      Alcotest.(check int) "one lock at a time" 1 c.Handle.stats.Stats.max_locks_held)
    ctxs

let test_contended_same_keys () =
  (* All domains insert the SAME key set: exactly one Ok per key overall. *)
  let t = S.create ~order:4 () in
  let nd = 5 and keys = 5_000 in
  let oks = Atomic.make 0 in
  let domains =
    Array.init nd (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:i in
            for k = 0 to keys - 1 do
              match S.insert t c k k with
              | `Ok -> Atomic.incr oks
              | `Duplicate -> ()
            done))
  in
  Array.iter Domain.join domains;
  check_valid t "after contended inserts";
  Alcotest.(check int) "each key inserted exactly once" keys (Atomic.get oks);
  Alcotest.(check int) "cardinal" keys (S.cardinal t)

let test_owned_keys_mixed_ops () =
  (* Each domain owns keys ≡ i mod nd and performs random ops on them; the
     final state per key must match that domain's last op. *)
  let t = S.create ~order:4 () in
  let nd = 4 and space = 40_000 and ops = 30_000 in
  let finals =
    Array.init nd (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:i in
            let rng = Repro_util.Splitmix.create (i + 31337) in
            let final = Hashtbl.create 999 in
            for _ = 1 to ops do
              let k = (Repro_util.Splitmix.int rng (space / nd) * nd) + i in
              if Repro_util.Splitmix.int rng 2 = 0 then begin
                ignore (S.insert t c k k);
                Hashtbl.replace final k true
              end
              else begin
                ignore (S.delete t c k);
                Hashtbl.replace final k false
              end
            done;
            final))
  in
  let finals = Array.map Domain.join finals in
  check_valid t "after owned-key ops";
  let c0 = ctx ~slot:0 in
  Array.iter
    (fun final ->
      Hashtbl.iter
        (fun k should_be ->
          let present = S.search t c0 k <> None in
          if present <> should_be then
            Alcotest.failf "key %d: present=%b expected=%b" k present should_be)
        final)
    finals

let test_readers_never_block_or_lock () =
  let t = S.create ~order:4 () in
  let c0 = ctx ~slot:0 in
  for k = 0 to 20_000 do
    ignore (S.insert t c0 k k)
  done;
  let stop = Atomic.make false in
  let readers =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:(1 + i) in
            let rng = Repro_util.Splitmix.create i in
            let n = ref 0 in
            while not (Atomic.get stop) do
              let k = Repro_util.Splitmix.int rng 20_000 in
              if S.search t c k = None then failwith "reader lost a key";
              incr n
            done;
            (c, !n)))
  in
  (* writers churn new keys meanwhile *)
  for k = 20_001 to 60_000 do
    ignore (S.insert t c0 k k)
  done;
  Atomic.set stop true;
  let results = Array.map Domain.join readers in
  Array.iter
    (fun ((c : Handle.ctx), n) ->
      Alcotest.(check int) "readers hold zero locks" 0
        c.Handle.stats.Stats.lock_acquisitions;
      Alcotest.(check bool) "reader made progress" true (n > 0))
    results;
  check_valid t "after reader/writer race"

let test_overtaking_during_upward_propagation () =
  (* Ascending bulk inserts from many domains force frequent splits at the
     same rightmost path, i.e. maximal overtaking pressure on the way up. *)
  let t = S.create ~order:2 () in
  let nd = 6 in
  let counter = Atomic.make 0 in
  let domains =
    Array.init nd (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:i in
            let continue_ = ref true in
            while !continue_ do
              let k = Atomic.fetch_and_add counter 1 in
              if k >= 60_000 then continue_ := false
              else ignore (S.insert t c k k)
            done))
  in
  Array.iter Domain.join domains;
  check_valid t "after rightmost-path contention";
  Alcotest.(check int) "all sequential keys in" 60_000 (S.cardinal t)

let test_mixed_with_validation_and_oracle_partition () =
  (* Domains run a mixed workload on a shared keyspace; afterwards the tree
     must be valid and contain a subset consistent with insert-wins/delete-
     wins races: every key never touched is absent; every key only inserted
     (never deleted) by anyone is present. *)
  let t = S.create ~order:8 () in
  let space = 30_000 in
  let inserted = Array.make space false in
  let deleted = Array.make space false in
  let marks = Mutex.create () in
  let domains =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:i in
            let rng = Repro_util.Splitmix.create (i * 7 + 1) in
            for _ = 1 to 25_000 do
              let k = Repro_util.Splitmix.int rng space in
              if Repro_util.Splitmix.int rng 3 = 0 then begin
                ignore (S.delete t c k);
                Mutex.lock marks;
                deleted.(k) <- true;
                Mutex.unlock marks
              end
              else begin
                ignore (S.insert t c k k);
                Mutex.lock marks;
                inserted.(k) <- true;
                Mutex.unlock marks
              end
            done))
  in
  Array.iter Domain.join domains;
  check_valid t "after mixed workload";
  let c0 = ctx ~slot:0 in
  for k = 0 to space - 1 do
    let present = S.search t c0 k <> None in
    if (not inserted.(k)) && present then Alcotest.failf "phantom key %d" k;
    if inserted.(k) && (not deleted.(k)) && not present then
      Alcotest.failf "lost key %d (inserted, never deleted)" k
  done

let suite =
  [
    Alcotest.test_case "disjoint parallel inserts" `Quick test_disjoint_inserts;
    Alcotest.test_case "contended same-key inserts" `Quick test_contended_same_keys;
    Alcotest.test_case "owned-key mixed ops serialise" `Quick test_owned_keys_mixed_ops;
    Alcotest.test_case "readers lock-free under writes" `Quick
      test_readers_never_block_or_lock;
    Alcotest.test_case "overtaking on rightmost path" `Quick
      test_overtaking_during_upward_propagation;
    Alcotest.test_case "mixed workload set-consistency" `Quick
      test_mixed_with_validation_and_oracle_partition;
  ]
