(* Baseline trees: sequential oracle equivalence and concurrency smoke
   tests, plus their characteristic lock footprints. *)

open Repro_storage
open Repro_core
open Repro_baseline
module Seq = Seq_btree.Make (Key.Int)
module Ly = Lehman_yao.Make (Key.Int)
module Lc = Lock_couple.Make (Key.Int)
module Cg = Coarse.Make (Key.Int)

let ctx = Handle.ctx

(* Run a deterministic random op sequence against an implementation's
   (search, insert, delete) and a Hashtbl model. *)
let oracle_run ~seed ~ops ~space ~search ~insert ~delete =
  let rng = Repro_util.Splitmix.create seed in
  let model = Hashtbl.create 97 in
  for i = 1 to ops do
    let k = Repro_util.Splitmix.int rng space in
    match Repro_util.Splitmix.int rng 3 with
    | 0 ->
        let expected = if Hashtbl.mem model k then `Duplicate else `Ok in
        if expected = `Ok then Hashtbl.replace model k (k * 5);
        if insert k (k * 5) <> expected then Alcotest.failf "op %d: insert %d diverged" i k
    | 1 ->
        let expected = Hashtbl.mem model k in
        Hashtbl.remove model k;
        if delete k <> expected then Alcotest.failf "op %d: delete %d diverged" i k
    | _ ->
        if search k <> Hashtbl.find_opt model k then
          Alcotest.failf "op %d: search %d diverged" i k
  done;
  Hashtbl.length model

let test_seq_btree_oracle () =
  let t = Seq.create ~order:3 () in
  let n =
    oracle_run ~seed:1 ~ops:20_000 ~space:2_000 ~search:(Seq.search t)
      ~insert:(Seq.insert t) ~delete:(Seq.delete t)
  in
  Alcotest.(check int) "cardinal" n (Seq.cardinal t);
  Alcotest.(check bool) "sorted" true
    (let l = List.map fst (Seq.to_list t) in
     l = List.sort_uniq compare l)

let test_seq_btree_grows_and_searches () =
  let t = Seq.create ~order:2 () in
  for k = 1 to 5_000 do
    ignore (Seq.insert t k k)
  done;
  Alcotest.(check bool) "height grew" true (Seq.height t > 2);
  for k = 1 to 5_000 do
    if Seq.search t k <> Some k then Alcotest.failf "seq search %d" k
  done

let test_ly_oracle () =
  let t = Ly.create ~order:3 () in
  let c = ctx ~slot:0 in
  let n =
    oracle_run ~seed:2 ~ops:20_000 ~space:2_000 ~search:(Ly.search t c)
      ~insert:(Ly.insert t c) ~delete:(Ly.delete t c)
  in
  Alcotest.(check int) "cardinal" n (Ly.cardinal t)

let test_lc_oracle () =
  let t = Lc.create ~order:3 () in
  let c = ctx ~slot:0 in
  let n =
    oracle_run ~seed:3 ~ops:20_000 ~space:2_000 ~search:(Lc.search t c)
      ~insert:(Lc.insert t c) ~delete:(Lc.delete t c)
  in
  Alcotest.(check int) "cardinal" n (Lc.cardinal t)

let test_coarse_oracle () =
  let t = Cg.create ~order:3 () in
  let c = ctx ~slot:0 in
  let n =
    oracle_run ~seed:4 ~ops:20_000 ~space:2_000 ~search:(Cg.search t c)
      ~insert:(Cg.insert t c) ~delete:(Cg.delete t c)
  in
  Alcotest.(check int) "cardinal" n (Cg.cardinal t)

(* -- concurrency -- *)

let disjoint_insert_run ~insert_of ~cardinal =
  let nd = 4 and per = 8_000 in
  let domains =
    Array.init nd (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:i in
            let insert = insert_of c in
            for j = 0 to per - 1 do
              let k = (j * nd) + i in
              if insert k k <> `Ok then failwith "duplicate"
            done;
            c))
  in
  let ctxs = Array.map Domain.join domains in
  Alcotest.(check int) "all inserted" (nd * per) (cardinal ());
  ctxs

let test_ly_concurrent () =
  let t = Ly.create ~order:4 () in
  let ctxs = disjoint_insert_run ~insert_of:(fun c -> Ly.insert t c) ~cardinal:(fun () -> Ly.cardinal t) in
  let c0 = ctx ~slot:0 in
  for k = 0 to 31_999 do
    if Ly.search t c0 k <> Some k then Alcotest.failf "ly lost %d" k
  done;
  (* LY's signature: up to 3 simultaneous locks, and at least 2 whenever a
     split propagated. *)
  let mx =
    Array.fold_left (fun m (c : Handle.ctx) -> max m c.Handle.stats.Stats.max_locks_held) 0 ctxs
  in
  Alcotest.(check bool) (Printf.sprintf "2 <= max_held (%d) <= 3" mx) true (mx >= 2 && mx <= 3)

let test_lc_concurrent () =
  let t = Lc.create ~order:4 () in
  let _ = disjoint_insert_run ~insert_of:(fun c -> Lc.insert t c) ~cardinal:(fun () -> Lc.cardinal t) in
  let c0 = ctx ~slot:0 in
  for k = 0 to 31_999 do
    if Lc.search t c0 k <> Some k then Alcotest.failf "lc lost %d" k
  done

let test_coarse_concurrent () =
  let t = Cg.create ~order:4 () in
  let _ = disjoint_insert_run ~insert_of:(fun c -> Cg.insert t c) ~cardinal:(fun () -> Cg.cardinal t) in
  let c0 = ctx ~slot:0 in
  for k = 0 to 31_999 do
    if Cg.search t c0 k <> Some k then Alcotest.failf "coarse lost %d" k
  done

let test_lc_optimistic_oracle () =
  let t = Lc.create ~order:3 () in
  let c = ctx ~slot:0 in
  let n =
    oracle_run ~seed:6 ~ops:20_000 ~space:2_000 ~search:(Lc.search t c)
      ~insert:(Lc.insert_optimistic t c) ~delete:(Lc.delete_optimistic t c)
  in
  Alcotest.(check int) "cardinal" n (Lc.cardinal t);
  (* splits are rare => most inserts took the optimistic path *)
  Alcotest.(check bool) "pessimistic retries < 10% of ops" true
    (c.Handle.stats.Stats.retries * 10 < c.Handle.stats.Stats.ops)

let test_lc_optimistic_concurrent () =
  let t = Lc.create ~order:4 () in
  let _ =
    disjoint_insert_run
      ~insert_of:(fun c -> Lc.insert_optimistic t c)
      ~cardinal:(fun () -> Lc.cardinal t)
  in
  let c0 = ctx ~slot:0 in
  for k = 0 to 31_999 do
    if Lc.search t c0 k <> Some k then Alcotest.failf "lc-opt lost %d" k
  done

let test_lc_optimistic_mixed_with_pessimistic () =
  (* Both writer protocols share one tree concurrently. *)
  let t = Lc.create ~order:4 () in
  let domains =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            let c = ctx ~slot:i in
            for j = 0 to 7_999 do
              let k = (j * 4) + i in
              let res =
                if i mod 2 = 0 then Lc.insert t c k k else Lc.insert_optimistic t c k k
              in
              if res <> `Ok then failwith "dup"
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "all present" 32_000 (Lc.cardinal t)

let test_lc_preemptive_oracle () =
  let t = Lc.create ~order:3 () in
  let c = ctx ~slot:0 in
  let n =
    oracle_run ~seed:8 ~ops:20_000 ~space:2_000 ~search:(Lc.search t c)
      ~insert:(Lc.insert_preemptive t c) ~delete:(Lc.delete_optimistic t c)
  in
  Alcotest.(check int) "cardinal" n (Lc.cardinal t)

let test_lc_preemptive_concurrent () =
  let t = Lc.create ~order:4 () in
  let ctxs =
    disjoint_insert_run
      ~insert_of:(fun c -> Lc.insert_preemptive t c)
      ~cardinal:(fun () -> Lc.cardinal t)
  in
  let c0 = ctx ~slot:0 in
  for k = 0 to 31_999 do
    if Lc.search t c0 k <> Some k then Alcotest.failf "lc-preemptive lost %d" k
  done;
  (* the whole point: at most two exclusive latches per writer *)
  let mx =
    Array.fold_left
      (fun m (c : Handle.ctx) -> max m c.Handle.stats.Stats.max_locks_held)
      0 ctxs
  in
  Alcotest.(check bool) (Printf.sprintf "max held (%d) <= 2" mx) true (mx <= 2)

let test_lc_readers_use_shared_latches () =
  let t = Lc.create ~order:4 () in
  let c = ctx ~slot:0 in
  for k = 1 to 1_000 do
    ignore (Lc.insert t c k k)
  done;
  let rc = ctx ~slot:1 in
  for k = 1 to 1_000 do
    ignore (Lc.search t rc k)
  done;
  (* crabbing: every search locks every node on the path (plus anchor) *)
  Alcotest.(check bool) "reader locks > ops" true
    (rc.Handle.stats.Stats.lock_acquisitions > 1_000);
  Alcotest.(check int) "crab holds 2" 2 rc.Handle.stats.Stats.max_locks_held

let test_all_trees_agree () =
  (* The four implementations given the same op sequence end with the same
     logical data. *)
  let seq = Seq.create ~order:3 () in
  let sag = Tree_intf.(let i = sagiv () in i.make ~order:3) in
  let ly = Tree_intf.(lehman_yao.make ~order:3) in
  let lc = Tree_intf.(lock_couple.make ~order:3) in
  let cg = Tree_intf.(coarse.make ~order:3) in
  let c = ctx ~slot:0 in
  let rng = Repro_util.Splitmix.create 55 in
  for _ = 1 to 30_000 do
    let k = Repro_util.Splitmix.int rng 3_000 in
    if Repro_util.Splitmix.int rng 3 = 0 then begin
      ignore (Seq.delete seq k);
      List.iter (fun (h : Tree_intf.handle) -> ignore (h.Tree_intf.delete c k)) [ sag; ly; lc; cg ]
    end
    else begin
      ignore (Seq.insert seq k k);
      List.iter
        (fun (h : Tree_intf.handle) -> ignore (h.Tree_intf.insert c k k))
        [ sag; ly; lc; cg ]
    end
  done;
  let expected = Seq.cardinal seq in
  List.iter
    (fun (h : Tree_intf.handle) ->
      Alcotest.(check int) (h.Tree_intf.name ^ " cardinal") expected (h.Tree_intf.cardinal ()))
    [ sag; ly; lc; cg ];
  for k = 0 to 2_999 do
    let e = Seq.search seq k in
    List.iter
      (fun (h : Tree_intf.handle) ->
        if h.Tree_intf.search c k <> e then Alcotest.failf "%s diverges at %d" h.Tree_intf.name k)
      [ sag; ly; lc; cg ]
  done

let suite =
  [
    Alcotest.test_case "seq btree vs oracle" `Quick test_seq_btree_oracle;
    Alcotest.test_case "seq btree growth" `Quick test_seq_btree_grows_and_searches;
    Alcotest.test_case "lehman-yao vs oracle" `Quick test_ly_oracle;
    Alcotest.test_case "lock-couple vs oracle" `Quick test_lc_oracle;
    Alcotest.test_case "coarse vs oracle" `Quick test_coarse_oracle;
    Alcotest.test_case "lehman-yao concurrent (<=3 locks)" `Quick test_ly_concurrent;
    Alcotest.test_case "lock-couple concurrent" `Quick test_lc_concurrent;
    Alcotest.test_case "lc-optimistic vs oracle" `Quick test_lc_optimistic_oracle;
    Alcotest.test_case "lc-optimistic concurrent" `Quick test_lc_optimistic_concurrent;
    Alcotest.test_case "lc optimistic+pessimistic mixed" `Quick
      test_lc_optimistic_mixed_with_pessimistic;
    Alcotest.test_case "lc-preemptive vs oracle" `Quick test_lc_preemptive_oracle;
    Alcotest.test_case "lc-preemptive concurrent (<=2 latches)" `Quick
      test_lc_preemptive_concurrent;
    Alcotest.test_case "coarse concurrent" `Quick test_coarse_concurrent;
    Alcotest.test_case "lock-couple readers latch every node" `Quick
      test_lc_readers_use_shared_latches;
    Alcotest.test_case "all four trees agree" `Quick test_all_trees_agree;
  ]
