(* Unit and property tests for the pure node algebra. *)

open Repro_storage
module N = Node.Make (Key.Int)

let bcmp = Bound.compare Int.compare

(* Build a leaf with the given keys, payload = key * 10. *)
let leaf ?(low = Bound.Neg_inf) ?(high = Bound.Pos_inf) ?link keys =
  {
    Node.level = 0;
    keys = Array.of_list keys;
    ptrs = Array.of_list (List.map (fun k -> k * 10) keys);
    low;
    high;
    link;
    is_root = false;
    state = Node.Live;
  }

(* Build an internal node: keys and children. *)
let internal ?(low = Bound.Neg_inf) ?(high = Bound.Pos_inf) ?link ~keys ~ptrs () =
  {
    Node.level = 1;
    keys = Array.of_list keys;
    ptrs = Array.of_list ptrs;
    low;
    high;
    link;
    is_root = false;
    state = Node.Live;
  }

let test_rank () =
  let n = leaf [ 10; 20; 30 ] in
  Alcotest.(check int) "before all" 0 (N.rank n 5);
  Alcotest.(check int) "equal first" 0 (N.rank n 10);
  Alcotest.(check int) "between" 1 (N.rank n 15);
  Alcotest.(check int) "equal last" 2 (N.rank n 30);
  Alcotest.(check int) "after all" 3 (N.rank n 35)

let test_mem_find () =
  let n = leaf [ 10; 20; 30 ] in
  Alcotest.(check bool) "mem hit" true (N.mem n 20);
  Alcotest.(check bool) "mem miss" false (N.mem n 25);
  Alcotest.(check (option int)) "find" (Some 200) (N.leaf_find n 20);
  Alcotest.(check (option int)) "find miss" None (N.leaf_find n 21)

let test_child_for () =
  (* children: c0 covers (-inf,10], c1 (10,20], c2 (20,+inf] *)
  let n = internal ~keys:[ 10; 20 ] ~ptrs:[ 100; 101; 102 ] () in
  Alcotest.(check int) "k=5 -> c0" 100 (N.child_for n 5);
  Alcotest.(check int) "k=10 -> c0 (inclusive upper)" 100 (N.child_for n 10);
  Alcotest.(check int) "k=11 -> c1" 101 (N.child_for n 11);
  Alcotest.(check int) "k=20 -> c1" 101 (N.child_for n 20);
  Alcotest.(check int) "k=21 -> c2" 102 (N.child_for n 21)

let test_next () =
  let n = leaf ~high:(Bound.Key 30) ~link:99 [ 10; 20; 30 ] in
  (match N.next n 40 with
  | N.Link p -> Alcotest.(check int) "link" 99 p
  | _ -> Alcotest.fail "expected link");
  match N.next n 25 with
  | N.Here -> ()
  | _ -> Alcotest.fail "expected here"

let test_leaf_insert_delete () =
  let n = leaf [ 10; 30 ] in
  let n' = N.leaf_insert n 20 200 in
  Alcotest.(check (list int)) "keys" [ 10; 20; 30 ] (Array.to_list n'.Node.keys);
  Alcotest.(check (list int)) "ptrs" [ 100; 200; 300 ] (Array.to_list n'.Node.ptrs);
  (match N.leaf_delete n' 20 with
  | Some n'' ->
      Alcotest.(check (list int)) "after delete" [ 10; 30 ] (Array.to_list n''.Node.keys)
  | None -> Alcotest.fail "delete failed");
  Alcotest.(check bool) "delete missing" true (N.leaf_delete n' 25 = None)

let test_leaf_split () =
  let n = leaf ~high:(Bound.Key 40) ~link:7 [ 10; 20; 30; 40 ] in
  let l, r = N.leaf_split n 25 250 ~right_ptr:55 in
  (* 5 keys total -> left 3, right 2 *)
  Alcotest.(check (list int)) "left keys" [ 10; 20; 25 ] (Array.to_list l.Node.keys);
  Alcotest.(check (list int)) "right keys" [ 30; 40 ] (Array.to_list r.Node.keys);
  Alcotest.(check bool) "left high = last left key" true (bcmp l.Node.high (Bound.Key 25) = 0);
  Alcotest.(check bool) "right low = boundary" true (bcmp r.Node.low (Bound.Key 25) = 0);
  Alcotest.(check bool) "right keeps old high" true (bcmp r.Node.high (Bound.Key 40) = 0);
  Alcotest.(check (option int)) "left links to right page" (Some 55) l.Node.link;
  Alcotest.(check (option int)) "right keeps old link" (Some 7) r.Node.link;
  Alcotest.(check int) "left ptr count" 3 (Array.length l.Node.ptrs);
  Alcotest.(check int) "right ptr count" 2 (Array.length r.Node.ptrs)

let test_internal_insert () =
  let n = internal ~keys:[ 10; 30 ] ~ptrs:[ 100; 101; 103 ] () in
  let n' = N.internal_insert n 20 102 in
  Alcotest.(check (list int)) "keys" [ 10; 20; 30 ] (Array.to_list n'.Node.keys);
  Alcotest.(check (list int)) "ptrs" [ 100; 101; 102; 103 ] (Array.to_list n'.Node.ptrs)

let test_internal_split () =
  let n =
    internal ~high:(Bound.Key 50) ~link:9 ~keys:[ 10; 20; 30; 40 ]
      ~ptrs:[ 100; 101; 102; 103; 104 ] ()
  in
  let l, r = N.internal_split n 25 105 ~right_ptr:77 in
  (* The new pointer goes immediately AFTER the split child's old pointer:
     the old child 102 covered (20,30]; after its split it covers (20,25]
     and the new node 105 covers (25,30]. Inserted: keys
     [10;20;25;30;40], ptrs [100;101;102;105;103;104]; mid 2 -> boundary 25. *)
  Alcotest.(check (list int)) "left keys" [ 10; 20 ] (Array.to_list l.Node.keys);
  Alcotest.(check (list int)) "left ptrs" [ 100; 101; 102 ] (Array.to_list l.Node.ptrs);
  Alcotest.(check bool) "boundary" true (bcmp l.Node.high (Bound.Key 25) = 0);
  Alcotest.(check (list int)) "right keys" [ 30; 40 ] (Array.to_list r.Node.keys);
  Alcotest.(check (list int)) "right ptrs" [ 105; 103; 104 ] (Array.to_list r.Node.ptrs);
  Alcotest.(check bool) "right low" true (bcmp r.Node.low (Bound.Key 25) = 0);
  (* invariant: |ptrs| = |keys| + 1 on both halves *)
  Alcotest.(check int) "left arity" (Array.length l.Node.keys + 1) (Array.length l.Node.ptrs);
  Alcotest.(check int) "right arity" (Array.length r.Node.keys + 1)
    (Array.length r.Node.ptrs)

let test_merge_leaf () =
  let a = leaf ~high:(Bound.Key 20) ~link:2 [ 10; 20 ] in
  let b = leaf ~low:(Bound.Key 20) ~high:(Bound.Key 40) ~link:3 [ 30; 40 ] in
  let m = N.merge a b in
  Alcotest.(check (list int)) "keys" [ 10; 20; 30; 40 ] (Array.to_list m.Node.keys);
  Alcotest.(check bool) "high" true (bcmp m.Node.high (Bound.Key 40) = 0);
  Alcotest.(check (option int)) "link" (Some 3) m.Node.link

let test_merge_internal () =
  let a =
    internal ~high:(Bound.Key 20) ~link:2 ~keys:[ 10 ] ~ptrs:[ 100; 101 ] ()
  in
  let b =
    internal ~low:(Bound.Key 20) ~high:(Bound.Key 40) ~link:3 ~keys:[ 30 ]
      ~ptrs:[ 102; 103 ] ()
  in
  let m = N.merge a b in
  (* boundary 20 returns as a separator *)
  Alcotest.(check (list int)) "keys" [ 10; 20; 30 ] (Array.to_list m.Node.keys);
  Alcotest.(check (list int)) "ptrs" [ 100; 101; 102; 103 ] (Array.to_list m.Node.ptrs)

let test_can_merge () =
  let a = leaf [ 1 ] and b = leaf ~low:(Bound.Key 1) [ 2; 3; 4 ] in
  Alcotest.(check bool) "leaf 1+3 <= 2*2" true (N.can_merge ~order:2 a b);
  let b' = leaf ~low:(Bound.Key 1) [ 2; 3; 4; 5 ] in
  Alcotest.(check bool) "leaf 1+4 > 2*2" false (N.can_merge ~order:2 a b');
  let ia = internal ~high:(Bound.Key 9) ~keys:[ 5 ] ~ptrs:[ 1; 2 ] () in
  let ib = internal ~low:(Bound.Key 9) ~keys:[ 12; 15 ] ~ptrs:[ 3; 4; 5 ] () in
  (* merged keys = 1 + 2 + 1 boundary = 4 <= 2*2 *)
  Alcotest.(check bool) "internal boundary counts" true (N.can_merge ~order:2 ia ib)

let test_redistribute_leaf () =
  let a = leaf ~high:(Bound.Key 10) ~link:2 [ 10 ] in
  let b = leaf ~low:(Bound.Key 10) ~high:(Bound.Key 60) [ 20; 30; 40; 50; 60 ] in
  let a', b', sep = N.redistribute a b in
  Alcotest.(check int) "left half" 3 (Node.nkeys a');
  Alcotest.(check int) "right half" 3 (Node.nkeys b');
  Alcotest.(check int) "sep is left's max" 30 sep;
  Alcotest.(check bool) "a high" true (bcmp a'.Node.high (Bound.Key 30) = 0);
  Alcotest.(check bool) "b low" true (bcmp b'.Node.low (Bound.Key 30) = 0);
  Alcotest.(check bool) "b high unchanged" true (bcmp b'.Node.high (Bound.Key 60) = 0)

let test_parent_pair_ops () =
  let f =
    internal ~keys:[ 10; 20; 30 ] ~ptrs:[ 100; 101; 102; 103 ] ()
  in
  Alcotest.(check (option int)) "child_slot" (Some 2) (N.child_slot f 102);
  Alcotest.(check bool) "slot_high mid" true (bcmp (N.slot_high f 1) (Bound.Key 20) = 0);
  Alcotest.(check bool) "slot_high last" true (bcmp (N.slot_high f 3) Bound.Pos_inf = 0);
  Alcotest.(check bool) "slot_low first" true (bcmp (N.slot_low f 0) Bound.Neg_inf = 0);
  Alcotest.(check bool) "has_pair" true (N.has_pair f ~ptr:101 ~high:(Bound.Key 20));
  Alcotest.(check bool) "has_pair wrong high" false (N.has_pair f ~ptr:101 ~high:(Bound.Key 25));
  let f' = N.remove_merged_pair f ~right_slot:2 in
  Alcotest.(check (list int)) "pair removed keys" [ 10; 30 ] (Array.to_list f'.Node.keys);
  Alcotest.(check (list int)) "pair removed ptrs" [ 100; 101; 103 ]
    (Array.to_list f'.Node.ptrs);
  let f'' = N.replace_separator f ~right_slot:2 ~sep:25 in
  Alcotest.(check (list int)) "separator replaced" [ 10; 25; 30 ]
    (Array.to_list f''.Node.keys)

let test_mark_deleted () =
  let n = leaf [ 1; 2; 3 ] in
  let d = N.mark_deleted n ~fwd:42 in
  Alcotest.(check bool) "deleted" true (Node.is_deleted d);
  (match d.Node.state with
  | Node.Deleted f -> Alcotest.(check int) "fwd" 42 f
  | Node.Live -> Alcotest.fail "not deleted");
  Alcotest.(check int) "emptied" 0 (Node.nkeys d);
  Alcotest.(check (option int)) "link cleared" None d.Node.link

let test_check_detects_violations () =
  let bad = leaf [ 30; 10 ] in
  Alcotest.(check bool) "unsorted detected" true (N.check bad <> []);
  let bad2 = { (leaf [ 10 ]) with Node.low = Bound.Key 10 } in
  Alcotest.(check bool) "key <= low detected" true (N.check bad2 <> []);
  let good = leaf ~high:(Bound.Key 3) ~link:9 [ 1; 2; 3 ] in
  Alcotest.(check (list string)) "clean node passes" [] (N.check good)

(* ---- property tests ---- *)

let sorted_distinct l = List.sort_uniq compare l

let arb_leaf_keys = QCheck.(list_of_size Gen.(int_range 1 12) (int_range 0 1000))

let keys_of n = Array.to_list n.Node.keys

let prop_leaf_split_preserves_pairs =
  QCheck.Test.make ~name:"leaf split preserves pairs and bounds" ~count:500
    QCheck.(pair arb_leaf_keys (int_range 0 1000))
    (fun (raw, newk) ->
      let keys = sorted_distinct raw in
      QCheck.assume (keys <> [] && not (List.mem newk keys));
      let n = leaf ~high:Bound.Pos_inf keys in
      let l, r = N.leaf_split n newk (newk * 10) ~right_ptr:99 in
      let merged = keys_of l @ keys_of r in
      merged = sorted_distinct (newk :: keys)
      && Node.nkeys l >= Node.nkeys r
      && Node.nkeys l - Node.nkeys r <= 1
      && bcmp l.Node.high r.Node.low = 0
      && l.Node.link = Some 99)

let prop_merge_redistribute_roundtrip =
  QCheck.Test.make ~name:"merge/redistribute preserve pair multiset" ~count:500
    QCheck.(pair arb_leaf_keys arb_leaf_keys)
    (fun (ra, rb) ->
      let ka = sorted_distinct ra in
      QCheck.assume (ka <> []);
      let maxa = List.fold_left max min_int ka in
      let kb = List.filter (fun k -> k > maxa) (sorted_distinct (List.map (fun k -> k + 2000) rb)) in
      QCheck.assume (kb <> []);
      let maxb = List.fold_left max min_int kb in
      let a = leaf ~high:(Bound.Key maxa) ~link:5 ka in
      let b = leaf ~low:(Bound.Key maxa) ~high:(Bound.Key maxb) kb in
      let m = N.merge a b in
      let merged_ok = keys_of m = ka @ kb && bcmp m.Node.high (Bound.Key maxb) = 0 in
      let a', b', sep = N.redistribute a b in
      let redist_ok =
        keys_of a' @ keys_of b' = ka @ kb
        && bcmp a'.Node.high (Bound.Key sep) = 0
        && bcmp b'.Node.low (Bound.Key sep) = 0
        && abs (Node.nkeys a' - Node.nkeys b') <= 1
      in
      merged_ok && redist_ok)

let prop_internal_insert_keeps_arity =
  QCheck.Test.make ~name:"internal insert keeps |ptrs| = |keys|+1" ~count:500
    QCheck.(pair (list_of_size Gen.(int_range 1 10) (int_range 0 999)) (int_range 0 999))
    (fun (raw, newk) ->
      let keys = sorted_distinct raw in
      QCheck.assume (keys <> [] && not (List.mem newk keys));
      let ptrs = List.init (List.length keys + 1) (fun i -> 1000 + i) in
      let n = internal ~keys ~ptrs () in
      let n' = N.internal_insert n newk 7777 in
      Array.length n'.Node.ptrs = Array.length n'.Node.keys + 1
      && keys_of n' = sorted_distinct (newk :: keys)
      &&
      (* the new pointer must sit immediately right of the new key *)
      let j = N.rank n' newk in
      n'.Node.ptrs.(j + 1) = 7777)

let prop_internal_split_partitions =
  QCheck.Test.make ~name:"internal split partitions children" ~count:500
    QCheck.(pair (list_of_size Gen.(int_range 3 11) (int_range 0 999)) (int_range 0 999))
    (fun (raw, newk) ->
      let keys = sorted_distinct raw in
      QCheck.assume (List.length keys >= 3 && not (List.mem newk keys));
      let ptrs = List.init (List.length keys + 1) (fun i -> 1000 + i) in
      let n = internal ~keys ~ptrs () in
      let l, r = N.internal_split n newk 7777 ~right_ptr:99 in
      let sep = Bound.get_key l.Node.high in
      Array.length l.Node.ptrs = Array.length l.Node.keys + 1
      && Array.length r.Node.ptrs = Array.length r.Node.keys + 1
      && keys_of l @ [ sep ] @ keys_of r = sorted_distinct (newk :: keys)
      && bcmp l.Node.high r.Node.low = 0
      && Array.length l.Node.ptrs + Array.length r.Node.ptrs
         = List.length keys + 2)

let prop_rank_b_agrees_with_rank =
  QCheck.Test.make ~name:"rank_b (Key k) = rank k; infinities at the ends" ~count:500
    QCheck.(pair arb_leaf_keys (int_range 0 1000))
    (fun (raw, k) ->
      let keys = sorted_distinct raw in
      QCheck.assume (keys <> []);
      let n = leaf keys in
      N.rank_b n (Bound.Key k) = N.rank n k
      && N.rank_b n Bound.Neg_inf = 0
      && N.rank_b n Bound.Pos_inf = List.length keys)

(* Parent bookkeeping: inserting a pair then removing it via the merged-
   pair path is the identity; replacing a separator keeps everything else. *)
let prop_parent_pair_roundtrip =
  QCheck.Test.make ~name:"parent pair insert/remove roundtrip" ~count:500
    QCheck.(pair (list_of_size Gen.(int_range 1 10) (int_range 0 998)) (int_range 0 999))
    (fun (raw, v) ->
      let keys = sorted_distinct raw in
      QCheck.assume (keys <> [] && not (List.mem v keys));
      let ptrs = List.init (List.length keys + 1) (fun i -> 100 + i) in
      let f = internal ~keys ~ptrs () in
      let f' = N.internal_insert f v 777 in
      (* the new pair sits at slot rank+1; removing it restores f *)
      match N.child_slot f' 777 with
      | None -> false
      | Some j ->
          let back = N.remove_merged_pair f' ~right_slot:j in
          back.Node.keys = f.Node.keys
          && back.Node.ptrs = f.Node.ptrs
          && N.has_pair f' ~ptr:777 ~high:(N.slot_high f' j))

(* Slot ranges tile the parent's range: slot_low j+1 = slot_high j. *)
let prop_slots_tile =
  QCheck.Test.make ~name:"child slots tile the parent range" ~count:500
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 0 1000))
    (fun raw ->
      let keys = sorted_distinct raw in
      QCheck.assume (keys <> []);
      let ptrs = List.init (List.length keys + 1) (fun i -> i) in
      let f = internal ~keys ~ptrs () in
      let m = Array.length f.Node.ptrs in
      let ok = ref (bcmp (N.slot_low f 0) f.Node.low = 0) in
      for j = 0 to m - 2 do
        if bcmp (N.slot_high f j) (N.slot_low f (j + 1)) <> 0 then ok := false
      done;
      !ok && bcmp (N.slot_high f (m - 1)) f.Node.high = 0)

(* check accepts everything the constructors build from sane inputs. *)
let prop_constructors_pass_check =
  QCheck.Test.make ~name:"constructed nodes pass local check" ~count:500
    QCheck.(pair arb_leaf_keys (int_range 1 8))
    (fun (raw, order) ->
      let keys = sorted_distinct raw in
      QCheck.assume (keys <> [] && List.length keys <= 2 * order);
      let last = List.nth keys (List.length keys - 1) in
      let n = leaf ~high:(Bound.Key last) ~link:9 keys in
      N.check ~order n = [])

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_leaf_split_preserves_pairs;
      prop_merge_redistribute_roundtrip;
      prop_internal_insert_keeps_arity;
      prop_internal_split_partitions;
      prop_rank_b_agrees_with_rank;
      prop_parent_pair_roundtrip;
      prop_slots_tile;
      prop_constructors_pass_check;
    ]

let suite =
  [
    Alcotest.test_case "rank" `Quick test_rank;
    Alcotest.test_case "mem/find" `Quick test_mem_find;
    Alcotest.test_case "child_for ranges" `Quick test_child_for;
    Alcotest.test_case "next step" `Quick test_next;
    Alcotest.test_case "leaf insert/delete" `Quick test_leaf_insert_delete;
    Alcotest.test_case "leaf split" `Quick test_leaf_split;
    Alcotest.test_case "internal insert" `Quick test_internal_insert;
    Alcotest.test_case "internal split" `Quick test_internal_split;
    Alcotest.test_case "merge leaves" `Quick test_merge_leaf;
    Alcotest.test_case "merge internal (boundary returns)" `Quick test_merge_internal;
    Alcotest.test_case "can_merge accounting" `Quick test_can_merge;
    Alcotest.test_case "redistribute leaves" `Quick test_redistribute_leaf;
    Alcotest.test_case "parent pair bookkeeping" `Quick test_parent_pair_ops;
    Alcotest.test_case "tombstones" `Quick test_mark_deleted;
    Alcotest.test_case "check detects violations" `Quick test_check_detects_violations;
  ]
  @ props
