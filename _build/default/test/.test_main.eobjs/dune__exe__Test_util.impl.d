test/test_util.ml: Alcotest Array Atomic Backoff Counters Distribution Domain Fun Hashtbl Histogram List Option Repro_util Rwlock Splitmix Zipf
