test/test_store.ml: Alcotest Array Atomic Bound Domain Epoch Hashtbl Key List Node Prime_block Repro_storage Store
