test/test_compactor.ml: Alcotest Array Atomic Bound Compactor Cqueue Domain Epoch Handle Key Node Option Prime_block Printf Repro_core Repro_storage Repro_util Sagiv Stats Store String Validate
