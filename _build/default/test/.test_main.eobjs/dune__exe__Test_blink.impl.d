test/test_blink.ml: Alcotest Dump Handle Hashtbl Key List Printf Repro_core Repro_storage Repro_util Sagiv Stats String Validate
