test/test_range.ml: Alcotest Atomic Compress Domain Key List Printf Repro_core Repro_storage Repro_util Sagiv Snapshot Validate
