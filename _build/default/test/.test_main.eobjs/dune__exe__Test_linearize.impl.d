test/test_linearize.ml: Alcotest Array Domain Format Handle Key Linearize List Repro_baseline Repro_core Repro_harness Repro_storage Repro_util Sagiv String
