test/test_kv.ml: Alcotest Array Atomic Bytes Domain Hashtbl Key Kv Printf Record_store Repro_core Repro_storage Repro_util String
