test/test_report.ml: Alcotest Dump Filename Key List Report Repro_core Repro_harness Repro_storage Sagiv String Sys
