test/test_restart.ml: Access Alcotest Array Bound Compactor Compress Handle Int Key List Node Prime_block Repro_core Repro_storage Sagiv Stats Store Validate
