test/test_trace.ml: Alcotest Filename Fun List Repro_baseline Repro_core Repro_harness Sys Trace Tree_intf Workload
