test/test_compress.ml: Alcotest Array Atomic Compress Domain Handle Key List Printf Repro_core Repro_storage Repro_util Sagiv Stats Store String Validate
