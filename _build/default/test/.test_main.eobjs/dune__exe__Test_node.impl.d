test/test_node.ml: Alcotest Array Bound Gen Int Key List Node QCheck QCheck_alcotest Repro_storage
