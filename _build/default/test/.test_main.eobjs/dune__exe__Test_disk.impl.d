test/test_disk.ml: Alcotest Buffer_pool Bytes Char Disk_btree Filename Fun Hashtbl Key List Paged_file Printf Repro_baseline Repro_storage Repro_util Sys
