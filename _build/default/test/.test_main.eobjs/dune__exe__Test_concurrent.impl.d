test/test_concurrent.ml: Alcotest Array Atomic Domain Handle Hashtbl Key Mutex Repro_core Repro_storage Repro_util Sagiv Stats String Validate
