test/test_harness.ml: Alcotest Array Bytes Driver Handle Hashtbl List Oracle Repro_baseline Repro_core Repro_harness Repro_storage Repro_util Sagiv Snapshot String Tree_intf Validate Workload
