test/test_codec.ml: Alcotest Array Bound Buffer Bytes Gen Int Key List Node Option Page_codec QCheck QCheck_alcotest Repro_storage String
