test/test_access.ml: Access Alcotest Bound Domain Handle Key List Node Repro_core Repro_storage Sagiv Stats Store
