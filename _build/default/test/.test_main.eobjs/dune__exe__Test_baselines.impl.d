test/test_baselines.ml: Alcotest Array Coarse Domain Handle Hashtbl Key Lehman_yao List Lock_couple Printf Repro_baseline Repro_core Repro_storage Repro_util Seq_btree Stats Tree_intf
