test/test_checkpoint.ml: Alcotest Bytes Char Checkpoint Compactor Filename Fun Int32 Key Paged_file Printf Repro_core Repro_storage Sagiv Sys Validate
