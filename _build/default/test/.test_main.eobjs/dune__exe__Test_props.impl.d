test/test_props.ml: Array Compactor Compress Gen Handle Int Key List Map Node Printf QCheck QCheck_alcotest Repro_core Repro_storage Repro_util Sagiv Store String Validate
