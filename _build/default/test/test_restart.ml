(* Directed tests of the wrong-node machinery (§5.2): case (1), a process
   reads a deleted node and follows its forwarding pointer; case (2), a
   process arrives at a node whose data moved left and restarts. The
   stochastic benches rarely hit these windows (that is the paper's
   "infrequent" claim); here we force them by handing Access stale
   pointers, exactly the state a preempted reader would hold. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module A = Access.Make (Key.Int)
module Co = Compactor.Make (Key.Int)
module V = Validate.Make (Key.Int)
module N' = Node.Make (Key.Int)

let ctx = S.ctx

(* Build a small tree and return (tree, ctx, leaves) with leaves in chain
   order as (ptr, node). *)
let build ~order ~n =
  let t = S.create ~order () in
  let c = ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k k)
  done;
  let prime = Prime_block.read t.Handle.prime in
  let leaves = ref [] in
  (match Prime_block.leftmost_at prime ~level:0 with
  | None -> ()
  | Some p ->
      let rec go ptr =
        let n = Store.get t.Handle.store ptr in
        leaves := (ptr, n) :: !leaves;
        match n.Node.link with Some q -> go q | None -> ()
      in
      go p);
  (t, c, List.rev !leaves)

(* Merge the sparse leaf at [ptr] via a private compaction process. *)
let force_merge t c (ptr, (n : int Node.t)) =
  let changes = Co.compact_node t c ~ptr ~level:0 ~high:n.Node.high ~stack:[] in
  Alcotest.(check bool) "merge happened" true (changes > 0)

let test_case1_forwarding () =
  let t, c, leaves = build ~order:2 ~n:40 in
  (* The compactor pairs a queued node with its RIGHT neighbour, so the
     tombstone lands on the right node: thin the FIRST leaf A and its
     neighbour B so that compacting A merges B into it. *)
  let (aptr, anode), (bptr, bnode) =
    match leaves with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "tree too small"
  in
  let akeys = Array.to_list anode.Node.keys and bkeys = Array.to_list bnode.Node.keys in
  List.iteri (fun i k -> if i > 0 then ignore (S.delete t c k)) akeys;
  List.iteri (fun i k -> if i > 0 then ignore (S.delete t c k)) bkeys;
  let a_after = Store.get t.Handle.store aptr in
  Alcotest.(check bool) "a sparse" true (Node.is_sparse ~order:2 a_after);
  force_merge t c (aptr, a_after);
  (* b must now be a tombstone forwarding to a (the merge survivor) *)
  let tomb = Store.get t.Handle.store bptr in
  (match tomb.Node.state with
  | Node.Deleted fwd -> Alcotest.(check int) "fwd points to survivor" aptr fwd
  | Node.Live -> Alcotest.fail "expected tombstone");
  (* a reader holding the stale pointer (as if preempted) follows the
     forwarding pointer via acquire and still finds b's surviving key *)
  let survivor = List.hd bkeys in
  let got, node, _ =
    A.acquire t c (Bound.Key survivor) ~level:0 ~on_missing:A.Wait ~start:bptr ~stack:[]
      ()
  in
  A.unlock t c got;
  Alcotest.(check bool) "found right node" true (N'.mem node survivor);
  Alcotest.(check bool) "fwd_follow counted" true (c.Handle.stats.Stats.fwd_follows > 0)

let test_case2_restart () =
  let t, c, leaves = build ~order:2 ~n:40 in
  (* Pick adjacent leaves (a, b); thin out B to force a redistribution
     that moves pairs from B leftwards into A. *)
  let (aptr, anode), (bptr, bnode) =
    match leaves with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "tree too small"
  in
  ignore anode;
  let bkeys = Array.to_list bnode.Node.keys in
  (* keep only the LAST key of b: merge would need |a|+|b| <= 2k; with a
     full a (4 keys) and 1 key in b it merges... make a sparse instead:
     delete from b until sparse, then compact: with a full, 4+1 = 5 > 4 →
     redistribution, data moves from A rightwards (a gains nothing)...
     We want B→A movement: delete from A, keep B full. *)
  ignore bkeys;
  let akeys = Array.to_list (Store.get t.Handle.store aptr).Node.keys in
  List.iteri (fun i k -> if i > 0 then ignore (S.delete t c k)) akeys;
  let a_after = Store.get t.Handle.store aptr in
  Alcotest.(check bool) "a sparse" true (Node.is_sparse ~order:2 a_after);
  (* Snapshot B's smallest key: after redistribution it belongs to A. *)
  let moved_key = (Store.get t.Handle.store bptr).Node.keys.(0) in
  force_merge t c (aptr, a_after);
  let b_now = Store.get t.Handle.store bptr in
  (* Either B was merged away (tombstone) or pairs moved left. *)
  (match b_now.Node.state with
  | Node.Deleted _ -> ()
  | Node.Live ->
      Alcotest.(check bool) "b.low advanced past moved key" true
        (Bound.compare_key Int.compare moved_key b_now.Node.low <= 0));
  (* A reader that (stale) believes moved_key lives at bptr must detect
     the wrong node and restart to the correct one. *)
  let restarts0 = c.Handle.stats.Stats.restarts in
  let got, node, _ =
    A.acquire t c (Bound.Key moved_key) ~level:0 ~on_missing:A.Wait ~start:bptr ~stack:[]
      ()
  in
  A.unlock t c got;
  Alcotest.(check bool) "found moved key" true (N'.mem node moved_key);
  Alcotest.(check bool) "restart or forward recorded" true
    (c.Handle.stats.Stats.restarts > restarts0 || c.Handle.stats.Stats.fwd_follows > 0);
  Alcotest.(check (option int)) "search still correct" (Some moved_key)
    (S.search t c moved_key)

let test_stale_stack_reentry () =
  (* reenter must reject stack entries that are deleted, reused, or to the
     right of the target, and still land correctly. *)
  let t, c, _ = build ~order:2 ~n:200 in
  (* collect an internal node pointer, then empty the tree so levels
     collapse and that pointer becomes a tombstone *)
  let prime = Prime_block.read t.Handle.prime in
  let internal_ptr =
    match Prime_block.leftmost_at prime ~level:1 with
    | Some p -> p
    | None -> Alcotest.fail "no level 1"
  in
  for k = 1 to 199 do
    ignore (S.delete t c k)
  done;
  let module Cmp = Compress.Make (Key.Int) in
  ignore (Cmp.compress_to_fixpoint t c);
  (* the old internal node is gone (or at least stale); a locate seeded
     with it as the stack must still find key 200 *)
  let got, node, _ =
    A.acquire t c (Bound.Key 200) ~level:0 ~on_missing:A.Wait ~stack:[ internal_ptr ] ()
  in
  A.unlock t c got;
  Alcotest.(check bool) "found via stale stack" true (N'.mem node 200)

let test_search_during_forced_merges () =
  (* End-to-end: repeatedly force merges while verifying every key; all
     the stale-pointer handling must compose. *)
  let t = S.create ~order:2 ~enqueue_on_delete:true () in
  let c = ctx ~slot:0 in
  for k = 1 to 500 do
    ignore (S.insert t c k k)
  done;
  for k = 1 to 500 do
    if k mod 5 <> 0 then begin
      ignore (S.delete t c k);
      (* interleave compaction with verification of every remaining key *)
      if k mod 50 = 0 then begin
        (match Co.run_until_empty t c with `Drained -> () | `Step_limit -> ());
        for j = 1 to 500 do
          let expected = if j > k || j mod 5 = 0 then Some j else None in
          let expected = if j <= k && j mod 5 <> 0 then None else expected in
          if S.search t c j <> expected then Alcotest.failf "key %d wrong at step %d" j k
        done
      end
    end
  done;
  let r = V.check t in
  Alcotest.(check (list string)) "valid" [] r.Validate.errors

let suite =
  [
    Alcotest.test_case "case 1: tombstone forwarding" `Quick test_case1_forwarding;
    Alcotest.test_case "case 2: moved-left restart" `Quick test_case2_restart;
    Alcotest.test_case "stale stack reentry" `Quick test_stale_stack_reentry;
    Alcotest.test_case "search during forced merges" `Quick test_search_during_forced_merges;
  ]
