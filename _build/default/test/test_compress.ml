(* Scan-based compression (§5.1–5.2, Fig 7). *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module C = Compress.Make (Key.Int)
module V = Validate.Make (Key.Int)

let ctx = S.ctx

let check_valid t msg =
  let r = V.check t in
  if not (Validate.ok r) then
    Alcotest.failf "%s: %s" msg (String.concat "; " r.Validate.errors)

let build ~order ~n =
  let t = S.create ~order () in
  let c = ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k k)
  done;
  (t, c)

let test_compress_noop_on_full_tree () =
  let t, c = build ~order:2 ~n:500 in
  let before = S.to_list t in
  ignore (C.compress_to_fixpoint t c);
  check_valid t "after noop compression";
  Alcotest.(check bool) "logical data unchanged" true (S.to_list t = before)

let test_compress_restores_occupancy () =
  let t, c = build ~order:2 ~n:1000 in
  for k = 1 to 1000 do
    if k mod 10 <> 0 then ignore (S.delete t c k)
  done;
  let nodes_before = Store.live_count t.Handle.store in
  ignore (C.compress_to_fixpoint t c);
  check_valid t "after compression";
  Alcotest.(check (list string)) "every node at least half full" []
    (V.check_occupancy t);
  ignore (S.reclaim t);
  let nodes_after = Store.live_count t.Handle.store in
  Alcotest.(check bool)
    (Printf.sprintf "space reclaimed (%d -> %d)" nodes_before nodes_after)
    true
    (nodes_after < nodes_before / 3);
  (* logical data intact *)
  for k = 1 to 1000 do
    let expected = if k mod 10 = 0 then Some k else None in
    if S.search t c k <> expected then Alcotest.failf "key %d wrong after compression" k
  done

let test_compress_reduces_height () =
  let t, c = build ~order:2 ~n:2000 in
  let h0 = S.height t in
  for k = 1 to 2000 do
    if k > 20 then ignore (S.delete t c k)
  done;
  ignore (C.compress_to_fixpoint t c);
  check_valid t "after height reduction";
  Alcotest.(check bool) "height shrank" true (S.height t < h0);
  Alcotest.(check int) "keys kept" 20 (S.cardinal t)

let test_empty_tree_collapses_to_root () =
  let t, c = build ~order:2 ~n:1000 in
  for k = 1 to 1000 do
    ignore (S.delete t c k)
  done;
  let passes = C.compress_to_fixpoint t c in
  check_valid t "after emptying";
  Alcotest.(check int) "single empty root" 1 (S.height t);
  Alcotest.(check int) "no keys" 0 (S.cardinal t);
  (* §5.1: O(log2 n) passes; 1000 leaves/keys -> height ~6-10 at order 2 *)
  Alcotest.(check bool)
    (Printf.sprintf "passes (%d) within O(log n)" passes)
    true
    (passes <= 16)

let test_tree_usable_after_compression () =
  let t, c = build ~order:3 ~n:500 in
  for k = 1 to 500 do
    if k mod 3 <> 0 then ignore (S.delete t c k)
  done;
  ignore (C.compress_to_fixpoint t c);
  (* insert into the compressed tree *)
  for k = 501 to 700 do
    match S.insert t c k k with
    | `Ok -> ()
    | `Duplicate -> Alcotest.failf "dup %d" k
  done;
  check_valid t "after post-compression inserts";
  Alcotest.(check (option int)) "old key" (Some 300) (S.search t c 300);
  Alcotest.(check (option int)) "new key" (Some 650) (S.search t c 650)

let test_deleted_nodes_forward () =
  (* After compression, stale pointers to merged-away nodes must forward
     to the survivor: checked indirectly by running compression passes
     while a reader re-searches between each pass (sequentially). *)
  let t, c = build ~order:2 ~n:400 in
  for k = 1 to 400 do
    if k mod 7 <> 0 then ignore (S.delete t c k)
  done;
  let rec loop n =
    if n > 0 && C.compress_pass t c > 0 then begin
      for k = 1 to 400 do
        let expected = if k mod 7 = 0 then Some k else None in
        if S.search t c k <> expected then
          Alcotest.failf "key %d wrong between passes" k
      done;
      loop (n - 1)
    end
  in
  loop 50;
  check_valid t "after interleaved passes"

let test_compress_with_concurrent_readers () =
  let t, c = build ~order:2 ~n:4000 in
  for k = 1 to 4000 do
    if k mod 5 <> 0 then ignore (S.delete t c k)
  done;
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let readers =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            let rc = ctx ~slot:(1 + i) in
            let rng = Repro_util.Splitmix.create (i + 5) in
            while not (Atomic.get stop) do
              let k = 1 + Repro_util.Splitmix.int rng 4000 in
              let expected = if k mod 5 = 0 then Some k else None in
              if S.search t rc k <> expected then Atomic.incr errors
            done;
            rc))
  in
  ignore (C.compress_to_fixpoint t c);
  Atomic.set stop true;
  let rctxs = Array.map Domain.join readers in
  Alcotest.(check int) "readers always found the right data" 0 (Atomic.get errors);
  check_valid t "after concurrent compression";
  (* Fig 7 examines DISJOINT pairs of siblings, so a parent with an odd
     child count leaves its last child uncompressed (§5.1's caveat):
     allow at most one sparse node per internal node. *)
  let rep = V.check t in
  let internal_nodes =
    List.fold_left
      (fun acc (l : Validate.level_stats) -> if l.Validate.level > 0 then acc + l.Validate.nodes else acc)
      0 rep.Validate.levels
  in
  let violations = List.length (V.check_occupancy t) in
  Alcotest.(check bool)
    (Printf.sprintf "sparse leftovers (%d) bounded by parents (%d)" violations internal_nodes)
    true
    (violations <= internal_nodes);
  (* readers never lock *)
  Array.iter
    (fun (rc : Handle.ctx) ->
      Alcotest.(check int) "reader lock count" 0
        rc.Handle.stats.Stats.lock_acquisitions)
    rctxs

let test_compress_with_concurrent_inserts () =
  let t, c = build ~order:2 ~n:3000 in
  for k = 1 to 3000 do
    if k mod 2 = 0 then ignore (S.delete t c k)
  done;
  let writers =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            let wc = ctx ~slot:(1 + i) in
            (* fresh key range, disjoint per writer *)
            for j = 0 to 999 do
              let k = 10_000 + (j * 3) + i in
              ignore (S.insert t wc k k)
            done;
            wc))
  in
  ignore (C.compress_to_fixpoint t c);
  let _ = Array.map Domain.join writers in
  (* one more pass now that writers are done *)
  ignore (C.compress_to_fixpoint t c);
  check_valid t "after compression alongside inserts";
  for j = 0 to 2999 do
    let k = 10_000 + j in
    if S.search t c k = None then Alcotest.failf "concurrent insert %d lost" k
  done;
  for k = 1 to 3000 do
    if k mod 2 = 1 && S.search t c k = None then Alcotest.failf "survivor %d lost" k
  done

let test_compression_is_deadlock_free_with_inserts () =
  (* Run a compressor domain against insert domains under a wall-clock
     bound; if the paper's no-deadlock argument failed, this would hang
     (and the timeout in the runner would flag it). *)
  let t, _ = build ~order:2 ~n:2000 in
  let c0 = ctx ~slot:0 in
  for k = 1 to 2000 do
    if k mod 2 = 0 then ignore (S.delete t c0 k)
  done;
  let stop = Atomic.make false in
  let compressor =
    Domain.spawn (fun () ->
        let cc = ctx ~slot:5 in
        while not (Atomic.get stop) do
          ignore (C.compress_pass t cc)
        done)
  in
  let writers =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            let wc = ctx ~slot:(1 + i) in
            for j = 0 to 4999 do
              ignore (S.insert t wc (100_000 + (j * 3) + i) j)
            done))
  in
  Array.iter Domain.join writers;
  Atomic.set stop true;
  Domain.join compressor;
  check_valid t "after racing compressor";
  Alcotest.(check bool) "all inserts landed" true (S.cardinal t >= 15_000)

let test_staggered_phases_full_occupancy () =
  (* Our extension: alternating pairing phases remove the odd-child blind
     spot, so a quiescent fixpoint leaves EVERY non-root node >= half
     full, for arbitrary delete patterns. *)
  List.iter
    (fun seed ->
      let t = S.create ~order:2 () in
      let c = ctx ~slot:0 in
      let n = 2_000 in
      for k = 1 to n do
        ignore (S.insert t c k k)
      done;
      let rng = Repro_util.Splitmix.create seed in
      for k = 1 to n do
        if Repro_util.Splitmix.int rng 100 < 85 then ignore (S.delete t c k)
      done;
      ignore (C.compress_to_fixpoint t c);
      check_valid t (Printf.sprintf "seed %d" seed);
      match V.check_occupancy t with
      | [] -> ()
      | errs ->
          Alcotest.failf "seed %d: %d occupancy violations: %s" seed (List.length errs)
            (String.concat "; " errs))
    [ 1; 7; 42; 99; 1234 ]

let suite =
  [
    Alcotest.test_case "staggered phases reach full occupancy" `Quick
      test_staggered_phases_full_occupancy;
    Alcotest.test_case "noop on full tree" `Quick test_compress_noop_on_full_tree;
    Alcotest.test_case "restores occupancy, frees space" `Quick
      test_compress_restores_occupancy;
    Alcotest.test_case "reduces height" `Quick test_compress_reduces_height;
    Alcotest.test_case "empty tree collapses, O(log n) passes" `Quick
      test_empty_tree_collapses_to_root;
    Alcotest.test_case "usable after compression" `Quick test_tree_usable_after_compression;
    Alcotest.test_case "searches stay correct between passes" `Quick
      test_deleted_nodes_forward;
    Alcotest.test_case "concurrent readers see consistent data" `Quick
      test_compress_with_concurrent_readers;
    Alcotest.test_case "concurrent inserts survive compression" `Quick
      test_compress_with_concurrent_inserts;
    Alcotest.test_case "deadlock-free with inserts" `Quick
      test_compression_is_deadlock_free_with_inserts;
  ]
