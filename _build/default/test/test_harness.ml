(* Workload generation, the multi-domain driver, the oracle replay, and
   snapshot persistence. *)

open Repro_core
open Repro_baseline
open Repro_harness

let test_mix_validation () =
  (match Workload.mix ~search:0.5 ~insert:0.2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad mix accepted");
  let m = Workload.mix ~search:0.5 ~insert:0.3 ~delete:0.2 () in
  Alcotest.(check string) "label" "S50/I30/D20" (Workload.mix_to_string m)

let test_sampler_respects_mix () =
  let spec = Workload.spec ~op_mix:Workload.search_only ~key_space:100 () in
  let s = Workload.sampler ~seed:1 ~worker:0 spec in
  for _ = 1 to 1000 do
    match Workload.next_op s with
    | Workload.Search _ -> ()
    | _ -> Alcotest.fail "non-search op in search-only mix"
  done;
  let spec = Workload.spec ~op_mix:Workload.mixed_sid ~key_space:100 () in
  let s = Workload.sampler ~seed:1 ~worker:0 spec in
  let counts = [| 0; 0; 0 |] in
  let n = 50_000 in
  for _ = 1 to n do
    match Workload.next_op s with
    | Workload.Search _ -> counts.(0) <- counts.(0) + 1
    | Workload.Insert _ -> counts.(1) <- counts.(1) + 1
    | Workload.Delete _ -> counts.(2) <- counts.(2) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "search ~50%" true (abs_float (frac 0 -. 0.5) < 0.02);
  Alcotest.(check bool) "insert ~30%" true (abs_float (frac 1 -. 0.3) < 0.02);
  Alcotest.(check bool) "delete ~20%" true (abs_float (frac 2 -. 0.2) < 0.02)

let test_sampler_deterministic () =
  let spec = Workload.spec ~key_space:1000 () in
  let a = Workload.sampler ~seed:9 ~worker:3 spec in
  let b = Workload.sampler ~seed:9 ~worker:3 spec in
  for _ = 1 to 100 do
    if Workload.next_op a <> Workload.next_op b then Alcotest.fail "nondeterministic"
  done

let test_preload_keys_distinct () =
  let spec = Workload.spec ~key_space:10_000 ~preload:5_000 () in
  let keys = Workload.preload_keys ~seed:7 spec in
  Alcotest.(check int) "count" 5_000 (Array.length keys);
  let tbl = Hashtbl.create 5000 in
  Array.iter
    (fun k ->
      if Hashtbl.mem tbl k then Alcotest.failf "duplicate preload key %d" k;
      Hashtbl.replace tbl k ())
    keys

let test_ycsb_presets () =
  List.iter
    (fun w ->
      let spec = Workload.ycsb ~key_space:1_000 w in
      Alcotest.(check int) "preloaded space" 1_000 spec.Workload.preload;
      let s = Workload.sampler ~seed:1 ~worker:0 spec in
      for _ = 1 to 1_000 do
        match Workload.next_op s with
        | Workload.Delete _ -> Alcotest.fail "YCSB presets never delete"
        | Workload.Search _ | Workload.Insert _ -> ()
      done)
    [ `A; `B; `C; `D; `F ];
  (* C is read-only *)
  let s = Workload.sampler ~seed:2 ~worker:0 (Workload.ycsb `C) in
  for _ = 1 to 500 do
    match Workload.next_op s with
    | Workload.Search _ -> ()
    | _ -> Alcotest.fail "YCSB-C must be read-only"
  done

let test_latency_measurement () =
  let h = Tree_intf.((sagiv ()).make ~order:8) in
  let spec = Workload.spec ~key_space:5_000 ~preload:1_000 () in
  ignore (Driver.preload h ~seed:3 spec);
  let r = Driver.run_ops ~measure_latency:true h ~domains:2 ~ops_per_domain:2_000 ~seed:3 spec in
  match r.Driver.latency with
  | None -> Alcotest.fail "latency histogram missing"
  | Some hist ->
      Alcotest.(check int) "one sample per op" 4_000 (Repro_util.Histogram.count hist);
      let p50 = Repro_util.Histogram.percentile hist 50.0 in
      Alcotest.(check bool) "p50 positive and sane" true (p50 > 0.0 && p50 < 1.0);
      Alcotest.(check bool) "p99 >= p50" true
        (Repro_util.Histogram.percentile hist 99.0 >= p50)

let test_driver_runs_all_ops () =
  let h = Tree_intf.((sagiv ()).make ~order:8) in
  let spec = Workload.spec ~op_mix:Workload.balanced ~key_space:10_000 ~preload:2_000 () in
  let preloaded = Driver.preload h ~seed:3 spec in
  Alcotest.(check int) "preload count" 2_000 preloaded;
  let r = Driver.run_ops h ~domains:4 ~ops_per_domain:5_000 ~seed:3 spec in
  Alcotest.(check int) "total ops" 20_000 r.Driver.total_ops;
  Alcotest.(check bool) "throughput positive" true (r.Driver.throughput > 0.0);
  Alcotest.(check int) "per-domain stats" 4 (Array.length r.Driver.per_domain)

let test_driver_with_compaction () =
  let raw, h = Tree_intf.sagiv_raw ~enqueue_on_delete:true ~order:8 () in
  let spec =
    Workload.spec ~op_mix:Workload.delete_heavy ~key_space:20_000 ~preload:20_000 ()
  in
  ignore (Driver.preload h ~seed:11 spec);
  let r, comp_stats =
    Driver.run_ops_with_compaction raw h ~domains:3 ~compactors:2 ~ops_per_domain:10_000
      ~seed:11 spec
  in
  Alcotest.(check int) "ops done" 30_000 r.Driver.total_ops;
  Alcotest.(check bool) "compactors merged something" true
    (comp_stats.Repro_storage.Stats.merges > 0);
  (* tree still valid afterwards *)
  let module V = Validate.Make (Repro_storage.Key.Int) in
  let rep = V.check raw in
  if not (Validate.ok rep) then
    Alcotest.failf "invalid: %s" (String.concat "; " rep.Validate.errors)

let test_oracle_replay_detects_divergence () =
  (* A deliberately broken handle must be caught. *)
  let h = Tree_intf.((sagiv ()).make ~order:4) in
  let broken = { h with Tree_intf.search = (fun _ _ -> Some 42) } in
  let c = Handle.ctx ~slot:0 in
  let ops = [ Workload.Insert (1, 2); Workload.Search 3 ] in
  let div, _ = Oracle.replay broken c ops in
  Alcotest.(check bool) "divergence found" true (div <> None)

let test_oracle_replay_clean () =
  let h = Tree_intf.((sagiv ()).make ~order:4) in
  let c = Handle.ctx ~slot:0 in
  let rng = Repro_util.Splitmix.create 5 in
  let ops =
    List.init 5_000 (fun _ ->
        let k = Repro_util.Splitmix.int rng 500 in
        match Repro_util.Splitmix.int rng 3 with
        | 0 -> Workload.Insert (k, k)
        | 1 -> Workload.Delete k
        | _ -> Workload.Search k)
  in
  let div, model = Oracle.replay h c ops in
  (match div with
  | Some d -> Alcotest.failf "diverged at %d on %s" d.Oracle.index (Oracle.string_of_op d.Oracle.op)
  | None -> ());
  Alcotest.(check int) "model cardinality" (Oracle.IntMap.cardinal model)
    (h.Tree_intf.cardinal ())

(* -- snapshot persistence -- *)

module S = Sagiv.Make (Repro_storage.Key.Int)
module Snap = Snapshot.Make (Repro_storage.Key.Int)
module V = Validate.Make (Repro_storage.Key.Int)

let test_snapshot_roundtrip () =
  let t = S.create ~order:3 () in
  let c = S.ctx ~slot:0 in
  for k = 1 to 3_000 do
    ignore (S.insert t c k (k * 7))
  done;
  for k = 1 to 3_000 do
    if k mod 3 = 0 then ignore (S.delete t c k)
  done;
  let bytes = Snap.save t in
  let t' = Snap.load bytes in
  let rep = V.check t' in
  if not (Validate.ok rep) then
    Alcotest.failf "loaded tree invalid: %s" (String.concat "; " rep.Validate.errors);
  Alcotest.(check int) "cardinal preserved" (S.cardinal t) (S.cardinal t');
  Alcotest.(check bool) "contents equal" true (S.to_list t = S.to_list t');
  (* the loaded tree is fully usable *)
  let c' = S.ctx ~slot:0 in
  Alcotest.(check bool) "insert into loaded tree" true (S.insert t' c' 100_001 1 = `Ok);
  Alcotest.(check (option int)) "search loaded" (Some 14) (S.search t' c' 2)

let test_snapshot_empty_tree () =
  let t = S.create ~order:2 () in
  let t' = Snap.load (Snap.save t) in
  Alcotest.(check int) "empty" 0 (S.cardinal t');
  let c = S.ctx ~slot:0 in
  Alcotest.(check bool) "usable" true (S.insert t' c 1 1 = `Ok)

let test_snapshot_corruption () =
  let t = S.create ~order:2 () in
  let c = S.ctx ~slot:0 in
  for k = 1 to 100 do
    ignore (S.insert t c k k)
  done;
  let b = Snap.save t in
  Bytes.set_uint8 b 0 0xFF;
  match Snap.load b with
  | exception Snapshot.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt snapshot accepted"

let suite =
  [
    Alcotest.test_case "mix validation" `Quick test_mix_validation;
    Alcotest.test_case "sampler respects mix" `Quick test_sampler_respects_mix;
    Alcotest.test_case "sampler deterministic" `Quick test_sampler_deterministic;
    Alcotest.test_case "preload keys distinct" `Quick test_preload_keys_distinct;
    Alcotest.test_case "ycsb presets" `Quick test_ycsb_presets;
    Alcotest.test_case "latency measurement" `Quick test_latency_measurement;
    Alcotest.test_case "driver runs all ops" `Quick test_driver_runs_all_ops;
    Alcotest.test_case "driver with compaction workers" `Quick test_driver_with_compaction;
    Alcotest.test_case "oracle detects divergence" `Quick test_oracle_replay_detects_divergence;
    Alcotest.test_case "oracle replay clean" `Quick test_oracle_replay_clean;
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot of empty tree" `Quick test_snapshot_empty_tree;
    Alcotest.test_case "snapshot corruption detected" `Quick test_snapshot_corruption;
  ]
