(* The linearizability checker itself (hand-crafted histories), then live
   concurrent runs of the Sagiv tree checked with it — Theorem 1 made
   executable. *)

open Repro_storage
open Repro_core
open Repro_harness
module S = Sagiv.Make (Key.Int)

let ev ?(key = 0) kind ok inv res = { Linearize.key; kind; ok; inv; res }

(* -- checker unit tests on static histories -- *)

let test_sequential_histories () =
  let open Linearize in
  (* insert ok, search found, delete ok, search not found *)
  let h =
    [ ev Insert true 0 1; ev Search true 2 3; ev Delete true 4 5; ev Search false 6 7 ]
  in
  Alcotest.(check bool) "clean sequence" true (check_key h);
  (* duplicate insert *)
  let h = [ ev Insert true 0 1; ev Insert false 2 3 ] in
  Alcotest.(check bool) "dup insert" true (check_key h);
  (* delete of absent key *)
  Alcotest.(check bool) "absent delete" true (check_key [ ev Delete false 0 1 ]);
  (* initially present *)
  Alcotest.(check bool) "preloaded search" true
    (check_key ~initial:true [ ev Search true 0 1 ]);
  Alcotest.(check bool) "preloaded delete" true
    (check_key ~initial:true [ ev Delete true 0 1 ])

let test_non_linearizable_detected () =
  let open Linearize in
  (* search found strictly BEFORE any insert ever invoked *)
  let h = [ ev Search true 0 1; ev Insert true 2 3 ] in
  Alcotest.(check bool) "phantom read" false (check_key h);
  (* insert ok, then (strictly after) search not-found, nothing else *)
  let h = [ ev Insert true 0 1; ev Search false 2 3 ] in
  Alcotest.(check bool) "lost insert" false (check_key h);
  (* two successful inserts with no delete between them *)
  let h = [ ev Insert true 0 1; ev Insert true 2 3 ] in
  Alcotest.(check bool) "double insert" false (check_key h);
  (* delete=true twice, one insert *)
  let h = [ ev Insert true 0 1; ev Delete true 2 3; ev Delete true 4 5 ] in
  Alcotest.(check bool) "double delete" false (check_key h)

let test_overlapping_histories () =
  let open Linearize in
  (* concurrent insert & search: search may or may not see it *)
  let h = [ ev Insert true 0 3; ev Search true 1 2 ] in
  Alcotest.(check bool) "concurrent search found ok" true (check_key h);
  let h = [ ev Insert true 0 3; ev Search false 1 2 ] in
  Alcotest.(check bool) "concurrent search missed ok" true (check_key h);
  (* two overlapping inserts: exactly one may succeed *)
  let h = [ ev Insert true 0 3; ev Insert false 1 2 ] in
  Alcotest.(check bool) "racing inserts one wins" true (check_key h);
  let h = [ ev Insert true 0 3; ev Insert true 1 2 ] in
  Alcotest.(check bool) "racing inserts both win = bad" false (check_key h);
  (* insert and delete overlapping a search: any serialisation goes *)
  let h = [ ev Insert true 0 5; ev Delete true 1 4; ev Search false 2 3 ] in
  Alcotest.(check bool) "3-way overlap" true (check_key h)

let test_real_time_order_respected () =
  let open Linearize in
  (* ins(ok) res=1 < search inv=2: cannot reorder search before insert *)
  let h = [ ev Insert true 0 1; ev Search false 2 3; ev Delete true 4 5 ] in
  Alcotest.(check bool) "no reorder across gap" false (check_key h);
  (* but with the delete overlapping the search, it can explain it *)
  let h = [ ev Insert true 0 1; ev Search false 3 4; ev Delete true 2 5 ] in
  Alcotest.(check bool) "overlap explains miss" true (check_key h)

let test_check_partitions_by_key () =
  let open Linearize in
  let h =
    [ ev ~key:1 Insert true 0 1; ev ~key:2 Search true 2 3; ev ~key:1 Search true 4 5 ]
  in
  let v = check h in
  Alcotest.(check int) "two keys" 2 v.keys_checked;
  Alcotest.(check int) "one violation (key 2 phantom)" 1 (List.length v.violations);
  Alcotest.(check bool) "key is 2" true (List.mem_assoc 2 v.violations)

let test_too_long_skipped () =
  let open Linearize in
  let h = List.init 30 (fun i -> ev Search false (2 * i) ((2 * i) + 1)) in
  let v = check h in
  Alcotest.(check int) "skipped" 1 (List.length v.skipped)

(* -- live runs -- *)

let run_recorded ~domains ~ops_each ~keys ~preload tree_order =
  let t = S.create ~order:tree_order () in
  let c = S.ctx ~slot:0 in
  if preload then
    for k = 0 to keys - 1 do
      ignore (S.insert t c k k)
    done;
  let r = Linearize.recorder () in
  let workers =
    Array.init domains (fun i ->
        Domain.spawn (fun () ->
            let wc = S.ctx ~slot:i in
            let l = Linearize.local r in
            let rng = Repro_util.Splitmix.create (i * 31 + 7) in
            for _ = 1 to ops_each do
              let key = Repro_util.Splitmix.int rng keys in
              match Repro_util.Splitmix.int rng 3 with
              | 0 ->
                  ignore
                    (Linearize.record l ~key ~kind:Linearize.Insert (fun () ->
                         S.insert t wc key key = `Ok))
              | 1 ->
                  ignore
                    (Linearize.record l ~key ~kind:Linearize.Delete (fun () ->
                         S.delete t wc key))
              | _ ->
                  ignore
                    (Linearize.record l ~key ~kind:Linearize.Search (fun () ->
                         S.search t wc key <> None))
            done;
            Linearize.merge_local l))
  in
  Array.iter Domain.join workers;
  Linearize.check ~initial:(fun _ -> preload) (Linearize.events r)

let test_tree_is_linearizable () =
  (* Many small rounds beat one big round for schedule diversity. *)
  for round = 1 to 10 do
    let v = run_recorded ~domains:4 ~ops_each:40 ~keys:32 ~preload:false 2 in
    (match v.Linearize.violations with
    | [] -> ()
    | (k, evs) :: _ ->
        Alcotest.failf "round %d: key %d not linearizable: %s" round k
          (String.concat " ; "
             (List.map (Format.asprintf "%a" Linearize.pp_event) evs)));
    Alcotest.(check (list int)) "no skips" [] v.Linearize.skipped
  done

let run_recorded_handle (h : Repro_baseline.Tree_intf.handle) ~domains ~ops_each ~keys =
  let r = Linearize.recorder () in
  let workers =
    Array.init domains (fun i ->
        Domain.spawn (fun () ->
            let wc = Handle.ctx ~slot:i in
            let l = Linearize.local r in
            let rng = Repro_util.Splitmix.create (i * 17 + 3) in
            for _ = 1 to ops_each do
              let key = Repro_util.Splitmix.int rng keys in
              match Repro_util.Splitmix.int rng 3 with
              | 0 ->
                  ignore
                    (Linearize.record l ~key ~kind:Linearize.Insert (fun () ->
                         h.Repro_baseline.Tree_intf.insert wc key key = `Ok))
              | 1 ->
                  ignore
                    (Linearize.record l ~key ~kind:Linearize.Delete (fun () ->
                         h.Repro_baseline.Tree_intf.delete wc key))
              | _ ->
                  ignore
                    (Linearize.record l ~key ~kind:Linearize.Search (fun () ->
                         h.Repro_baseline.Tree_intf.search wc key <> None))
            done;
            Linearize.merge_local l))
  in
  Array.iter Domain.join workers;
  Linearize.check (Linearize.events r)

let test_baselines_linearizable () =
  (* Every implementation must pass the same checker (they implement the
     same abstract map, just with different lock regimes). *)
  List.iter
    (fun (impl : Repro_baseline.Tree_intf.impl) ->
      for _ = 1 to 3 do
        let h = impl.Repro_baseline.Tree_intf.make ~order:2 in
        let v = run_recorded_handle h ~domains:4 ~ops_each:40 ~keys:32 in
        if not (Linearize.ok v) then
          Alcotest.failf "%s not linearizable"
            impl.Repro_baseline.Tree_intf.impl_name
      done)
    Repro_baseline.Tree_intf.all

let test_tree_is_linearizable_preloaded () =
  for _ = 1 to 5 do
    let v = run_recorded ~domains:4 ~ops_each:40 ~keys:32 ~preload:true 2 in
    Alcotest.(check bool) "linearizable" true (Linearize.ok v)
  done

let suite =
  [
    Alcotest.test_case "sequential histories" `Quick test_sequential_histories;
    Alcotest.test_case "non-linearizable detected" `Quick test_non_linearizable_detected;
    Alcotest.test_case "overlapping histories" `Quick test_overlapping_histories;
    Alcotest.test_case "real-time order respected" `Quick test_real_time_order_respected;
    Alcotest.test_case "partition by key" `Quick test_check_partitions_by_key;
    Alcotest.test_case "over-long histories skipped" `Quick test_too_long_skipped;
    Alcotest.test_case "sagiv tree linearizable (live)" `Quick test_tree_is_linearizable;
    Alcotest.test_case "sagiv tree linearizable (preloaded)" `Quick
      test_tree_is_linearizable_preloaded;
    Alcotest.test_case "all baselines linearizable (live)" `Quick
      test_baselines_linearizable;
  ]
