(* Range scans over the leaf chain, including under concurrent updates and
   compression, plus the string-keyed tree instantiation. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module C = Compress.Make (Key.Int)
module SS = Sagiv.Make (Key.Str)
module VS = Validate.Make (Key.Str)

let ctx = S.ctx

let test_range_basic () =
  let t = S.create ~order:2 () in
  let c = ctx ~slot:0 in
  List.iter (fun k -> ignore (S.insert t c k (k * 10))) [ 5; 1; 9; 3; 7; 2; 8 ];
  Alcotest.(check (list (pair int int)))
    "middle range"
    [ (2, 20); (3, 30); (5, 50); (7, 70) ]
    (S.range t c ~lo:2 ~hi:7);
  Alcotest.(check (list (pair int int))) "empty range" [] (S.range t c ~lo:10 ~hi:20);
  Alcotest.(check (list (pair int int))) "inverted range" [] (S.range t c ~lo:7 ~hi:2);
  Alcotest.(check (list (pair int int))) "point range" [ (5, 50) ] (S.range t c ~lo:5 ~hi:5);
  Alcotest.(check int) "full range count" 7
    (List.length (S.range t c ~lo:(min_int + 1) ~hi:max_int))

let test_range_spans_many_leaves () =
  let t = S.create ~order:2 () in
  let c = ctx ~slot:0 in
  for k = 0 to 9_999 do
    ignore (S.insert t c k k)
  done;
  let r = S.range t c ~lo:1_000 ~hi:8_999 in
  Alcotest.(check int) "count" 8_000 (List.length r);
  Alcotest.(check (pair int int)) "first" (1_000, 1_000) (List.hd r);
  Alcotest.(check bool) "ascending" true
    (let rec sorted = function
       | (a, _) :: ((b, _) :: _ as rest) -> a < b && sorted rest
       | _ -> true
     in
     sorted r)

let test_fold_range_early_bounds () =
  let t = S.create ~order:4 () in
  let c = ctx ~slot:0 in
  for k = 0 to 999 do
    if k mod 2 = 0 then ignore (S.insert t c k k)
  done;
  (* lo/hi not present as keys *)
  let sum = S.fold_range t c ~lo:101 ~hi:199 ~init:0 (fun acc k _ -> acc + k) in
  let expected = List.fold_left ( + ) 0 (List.init 49 (fun i -> 102 + (2 * i))) in
  Alcotest.(check int) "sum over absent bounds" expected sum

let test_range_after_compression () =
  let t = S.create ~order:2 () in
  let c = ctx ~slot:0 in
  for k = 0 to 2_999 do
    ignore (S.insert t c k k)
  done;
  for k = 0 to 2_999 do
    if k mod 3 <> 0 then ignore (S.delete t c k)
  done;
  ignore (C.compress_to_fixpoint t c);
  let r = S.range t c ~lo:0 ~hi:2_999 in
  Alcotest.(check int) "survivors" 1_000 (List.length r);
  List.iteri (fun i (k, _) -> if k <> i * 3 then Alcotest.failf "wrong key %d at %d" k i) r

let test_range_concurrent_inserts () =
  (* Keys present before the scan starts and never removed must all be
     seen, in order, exactly once — even while other domains insert. *)
  let t = S.create ~order:4 () in
  let c = ctx ~slot:0 in
  for k = 0 to 9_999 do
    ignore (S.insert t c (k * 2) k) (* even keys fixed *)
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let wc = ctx ~slot:1 in
        let rng = Repro_util.Splitmix.create 3 in
        while not (Atomic.get stop) do
          let k = (Repro_util.Splitmix.int rng 10_000 * 2) + 1 in
          ignore (S.insert t wc k k);
          ignore (S.delete t wc k)
        done)
  in
  for _ = 1 to 30 do
    let seen = S.fold_range t c ~lo:0 ~hi:20_000 ~init:[] (fun acc k _ -> k :: acc) in
    let evens = List.filter (fun k -> k mod 2 = 0) seen in
    if List.length evens <> 10_000 then
      Alcotest.failf "scan lost stable keys: saw %d evens" (List.length evens);
    let rec strictly_desc = function
      | a :: (b :: _ as rest) -> a > b && strictly_desc rest
      | _ -> true
    in
    if not (strictly_desc seen) then Alcotest.fail "scan not strictly ordered"
  done;
  Atomic.set stop true;
  Domain.join writer

(* -- string keys: the functor is genuinely generic -- *)

let test_string_tree () =
  let t = SS.create ~order:3 () in
  let c = SS.ctx ~slot:0 in
  let words =
    [ "pear"; "apple"; "fig"; "mango"; "kiwi"; "plum"; "date"; "grape"; "lemon"; "lime" ]
  in
  List.iteri (fun i w -> ignore (SS.insert t c w i)) words;
  Alcotest.(check int) "cardinal" 10 (SS.cardinal t);
  Alcotest.(check bool) "dup" true (SS.insert t c "fig" 99 = `Duplicate);
  Alcotest.(check (option int)) "search" (Some 4) (SS.search t c "kiwi");
  Alcotest.(check bool) "delete" true (SS.delete t c "kiwi");
  Alcotest.(check (option int)) "gone" None (SS.search t c "kiwi");
  let r = SS.range t c ~lo:"d" ~hi:"m" in
  Alcotest.(check (list string)) "string range"
    [ "date"; "fig"; "grape"; "lemon"; "lime" ]
    (List.map fst r);
  let rep = VS.check t in
  Alcotest.(check (list string)) "valid" [] rep.Validate.errors

let test_string_tree_large () =
  let t = SS.create ~order:4 () in
  let c = SS.ctx ~slot:0 in
  let key i = Printf.sprintf "key-%06d" i in
  for i = 0 to 4_999 do
    ignore (SS.insert t c (key i) i)
  done;
  for i = 0 to 4_999 do
    if SS.search t c (key i) <> Some i then Alcotest.failf "string key %d lost" i
  done;
  Alcotest.(check (list string)) "valid" [] (VS.check t).Validate.errors;
  Alcotest.(check int) "range slice" 100
    (List.length (SS.range t c ~lo:(key 100) ~hi:(key 199)))

module KP = Key.Pair (Key.Int) (Key.Str)
module SP = Sagiv.Make (KP)

let test_composite_keys () =
  (* (user_id, event) composite index: lexicographic order, per-user range
     scans, codec-backed snapshots. *)
  let t = SP.create ~order:3 () in
  let c = SP.ctx ~slot:0 in
  let events = [ "login"; "click"; "buy"; "logout" ] in
  for user = 1 to 50 do
    List.iteri (fun i e -> ignore (SP.insert t c (user, e) ((user * 10) + i))) events
  done;
  Alcotest.(check int) "cardinal" 200 (SP.cardinal t);
  (* all events of user 25 via a range scan *)
  let user25 = SP.range t c ~lo:(25, "") ~hi:(25, "ÿ") in
  Alcotest.(check int) "user 25 events" 4 (List.length user25);
  List.iter (fun ((u, _), _) -> Alcotest.(check int) "right user" 25 u) user25;
  (* point lookups *)
  Alcotest.(check bool) "hit" true (SP.search t c (7, "buy") <> None);
  Alcotest.(check (option int)) "miss" None (SP.search t c (7, "refund"));
  (* snapshot through the composite codec *)
  let module SnapP = Snapshot.Make (KP) in
  let t' = SnapP.load (SnapP.save t) in
  Alcotest.(check bool) "snapshot roundtrip" true (SP.to_list t = SP.to_list t')

let suite =
  [
    Alcotest.test_case "composite (pair) keys" `Quick test_composite_keys;
    Alcotest.test_case "range basics" `Quick test_range_basic;
    Alcotest.test_case "range spans leaves" `Quick test_range_spans_many_leaves;
    Alcotest.test_case "fold_range absent bounds" `Quick test_fold_range_early_bounds;
    Alcotest.test_case "range after compression" `Quick test_range_after_compression;
    Alcotest.test_case "range under concurrent updates" `Quick test_range_concurrent_inserts;
    Alcotest.test_case "string-keyed tree" `Quick test_string_tree;
    Alcotest.test_case "string-keyed tree, large" `Quick test_string_tree_large;
  ]
