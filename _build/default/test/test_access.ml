(* Unit tests for the shared traversal layer (Access): locate/acquire on
   trees with crafted states, the missing-level policies, and lock
   semantics under revalidation. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module A = Access.Make (Key.Int)
module N = Node.Make (Key.Int)

let ctx = S.ctx

let build n =
  let t = S.create ~order:2 () in
  let c = ctx ~slot:0 in
  for k = 1 to n do
    ignore (S.insert t c k k)
  done;
  (t, c)

let test_locate_levels () =
  let t, c = build 200 in
  let height = S.height t in
  Alcotest.(check bool) "multi-level" true (height >= 3);
  (* locate the node containing 100 at every level; ranges must nest *)
  let rec widen level prev_low prev_high =
    if level < height then begin
      let _p, n, stack = A.locate t c (Bound.Key 100) ~to_level:level ~on_missing:A.Wait in
      Alcotest.(check int) "level field" level n.Node.level;
      Alcotest.(check bool) "contains key" true
        (N.key_vs_bound 100 n.Node.low > 0 && N.key_vs_bound 100 n.Node.high <= 0);
      Alcotest.(check bool) "wider than below" true
        (N.bcompare n.Node.low prev_low <= 0 && N.bcompare n.Node.high prev_high >= 0);
      Alcotest.(check int) "stack depth" (height - 1 - level) (List.length stack);
      widen (level + 1) n.Node.low n.Node.high
    end
  in
  let _p, leaf, _ = A.locate t c (Bound.Key 100) ~to_level:0 ~on_missing:A.Wait in
  widen 1 leaf.Node.low leaf.Node.high

let test_locate_by_infinite_bound () =
  let t, c = build 100 in
  (* Pos_inf targets the rightmost node of the level *)
  let _p, n, _ = A.locate t c Bound.Pos_inf ~to_level:0 ~on_missing:A.Wait in
  Alcotest.(check bool) "rightmost" true (n.Node.link = None);
  Alcotest.(check bool) "high = +inf" true (N.bcompare n.Node.high Bound.Pos_inf = 0)

let test_missing_level_give_up () =
  let t, c = build 10 in
  let height = S.height t in
  match A.locate t c (Bound.Key 5) ~to_level:(height + 2) ~on_missing:A.Give_up with
  | exception A.Level_missing -> ()
  | _ -> Alcotest.fail "expected Level_missing"

let test_acquire_locks_target () =
  let t, c = build 100 in
  let p, n, _ = A.acquire t c (Bound.Key 50) ~level:0 ~on_missing:A.Wait ~stack:[] () in
  Alcotest.(check bool) "holds the latch" false (Store.try_lock t.Handle.store p);
  Alcotest.(check bool) "right node" true (N.mem n 50);
  A.unlock t c p;
  Alcotest.(check bool) "released" true (Store.try_lock t.Handle.store p);
  Store.unlock t.Handle.store p

let test_acquire_revalidates_after_mutation () =
  (* Lock the target leaf, start an acquire in another domain (it blocks
     on the latch), then — while still holding the latch — move the leaf's
     contents to a fresh page and tombstone the original. The acquirer's
     under-lock revalidation must detect the tombstone, follow the
     forwarding pointer, and land on the relocated node. *)
  let t, c = build 100 in
  let p0, _leaf0, _ = A.locate t c (Bound.Key 50) ~to_level:0 ~on_missing:A.Wait in
  Store.lock t.Handle.store p0;
  let acquirer =
    Domain.spawn (fun () ->
        let c2 = ctx ~slot:1 in
        let p, n, _ =
          A.acquire t c2 (Bound.Key 50) ~level:0 ~on_missing:A.Wait ~start:p0 ~stack:[] ()
        in
        let ok = N.mem n 50 && p <> p0 in
        A.unlock t c2 p;
        (ok, c2.Handle.stats.Stats.fwd_follows > 0))
  in
  let leaf = Store.get t.Handle.store p0 in
  let fresh = Store.alloc t.Handle.store leaf in
  Store.put t.Handle.store p0 (N.mark_deleted leaf ~fwd:fresh);
  Store.unlock t.Handle.store p0;
  let found, forwarded = Domain.join acquirer in
  Alcotest.(check bool) "found relocated node" true found;
  Alcotest.(check bool) "followed the forwarding pointer" true forwarded;
  (* searches still resolve every key through the tombstone *)
  for k = 1 to 100 do
    if S.search t c k <> Some k then Alcotest.failf "key %d lost" k
  done

let test_wait_mode_sees_new_root () =
  (* A locate at a level that does not exist yet must block until a
     concurrent root creation publishes it, then succeed (§3.3). *)
  let t, _c = build 3 in
  let target_level = S.height t in
  (* does not exist yet *)
  let waiter =
    Domain.spawn (fun () ->
        let c2 = ctx ~slot:1 in
        let _p, n, _ =
          A.locate t c2 (Bound.Key 2) ~to_level:target_level ~on_missing:A.Wait
        in
        n.Node.level)
  in
  (* grow the tree until the root rises past target_level *)
  let c3 = ctx ~slot:2 in
  let k = ref 1000 in
  while S.height t <= target_level do
    incr k;
    ignore (S.insert t c3 !k !k)
  done;
  Alcotest.(check int) "waiter landed at the new level" target_level (Domain.join waiter)

let test_readers_ignore_all_latches () =
  (* §2.2: "a lock on a node does not prevent other processes from reading
     the locked node". Latch EVERY page in the tree, then run searches
     from another domain: they must all complete. *)
  let t, _c = build 500 in
  let locked = ref [] in
  Store.iter t.Handle.store (fun p _ ->
      Store.lock t.Handle.store p;
      locked := p :: !locked);
  let reader =
    Domain.spawn (fun () ->
        let c2 = ctx ~slot:1 in
        let ok = ref true in
        for k = 1 to 500 do
          if S.search t c2 k <> Some k then ok := false
        done;
        (!ok, c2.Handle.stats.Stats.lock_acquisitions))
  in
  let ok, locks = Domain.join reader in
  List.iter (Store.unlock t.Handle.store) !locked;
  Alcotest.(check bool) "searches completed under total latching" true ok;
  Alcotest.(check int) "reader took no locks" 0 locks

let suite =
  [
    Alcotest.test_case "readers ignore all latches" `Quick test_readers_ignore_all_latches;
    Alcotest.test_case "locate nests across levels" `Quick test_locate_levels;
    Alcotest.test_case "locate by +inf bound" `Quick test_locate_by_infinite_bound;
    Alcotest.test_case "missing level: give up" `Quick test_missing_level_give_up;
    Alcotest.test_case "acquire holds the latch" `Quick test_acquire_locks_target;
    Alcotest.test_case "acquire revalidates after mutation" `Quick
      test_acquire_revalidates_after_mutation;
    Alcotest.test_case "wait mode sees a new root" `Quick test_wait_mode_sees_new_root;
  ]
