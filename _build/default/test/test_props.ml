(* Whole-tree property tests (QCheck): random operation programs against
   the Map oracle, with compression interleaved at arbitrary points, at
   several node orders; the validator must also ACCEPT every tree these
   programs produce and DETECT seeded corruptions. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module C = Compress.Make (Key.Int)
module Co = Compactor.Make (Key.Int)
module V = Validate.Make (Key.Int)
module IntMap = Map.Make (Int)

(* A program step. Compress / Drain run the two §5 compression regimes
   mid-program — they must never change the logical data. *)
type step = Ins of int | Del of int | Find of int | Compress | Drain | Reclaim

let gen_step =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun k -> Ins k) (int_range 0 400));
        (4, map (fun k -> Del k) (int_range 0 400));
        (4, map (fun k -> Find k) (int_range 0 400));
        (1, return Compress);
        (1, return Drain);
        (1, return Reclaim);
      ])

let show_step = function
  | Ins k -> Printf.sprintf "ins %d" k
  | Del k -> Printf.sprintf "del %d" k
  | Find k -> Printf.sprintf "find %d" k
  | Compress -> "compress"
  | Drain -> "drain"
  | Reclaim -> "reclaim"

let arb_program =
  QCheck.make
    ~print:(fun steps -> String.concat "; " (List.map show_step steps))
    QCheck.Gen.(list_size (int_range 0 400) gen_step)

(* Run a program at [order]; fail on any divergence from the Map model or
   any validator error. *)
let run_program ~order steps =
  let t = S.create ~order ~enqueue_on_delete:true () in
  let c = S.ctx ~slot:0 in
  let model = ref IntMap.empty in
  List.iter
    (fun step ->
      match step with
      | Ins k ->
          let expected = if IntMap.mem k !model then `Duplicate else `Ok in
          if expected = `Ok then model := IntMap.add k (k * 7) !model;
          if S.insert t c k (k * 7) <> expected then
            QCheck.Test.fail_reportf "insert %d diverged" k
      | Del k ->
          let expected = IntMap.mem k !model in
          model := IntMap.remove k !model;
          if S.delete t c k <> expected then QCheck.Test.fail_reportf "delete %d diverged" k
      | Find k ->
          if S.search t c k <> IntMap.find_opt k !model then
            QCheck.Test.fail_reportf "search %d diverged" k
      | Compress -> ignore (C.compress_pass t c)
      | Drain -> (
          match Co.run_until_empty t c with
          | `Drained -> ()
          | `Step_limit -> QCheck.Test.fail_reportf "compactor step limit")
      | Reclaim -> ignore (S.reclaim t))
    steps;
  (* final: full contents equal the model, and the structure is valid *)
  let rep = V.check t in
  if rep.Validate.errors <> [] then
    QCheck.Test.fail_reportf "invalid tree: %s" (String.concat "; " rep.Validate.errors);
  if S.to_list t <> IntMap.bindings !model then
    QCheck.Test.fail_reportf "final contents diverge (%d tree vs %d model)"
      (List.length (S.to_list t))
      (IntMap.cardinal !model);
  true

let prop_program_order k =
  QCheck.Test.make
    ~name:(Printf.sprintf "random program + compression == Map (k=%d)" k)
    ~count:60 arb_program
    (fun steps -> run_program ~order:k steps)

(* The range fold agrees with the model's filtered bindings. *)
let prop_range =
  QCheck.Test.make ~name:"range scan == Map slice" ~count:80
    QCheck.(pair arb_program (pair (int_range 0 400) (int_range 0 400)))
    (fun (steps, (a, b)) ->
      let lo = min a b and hi = max a b in
      let t = S.create ~order:3 () in
      let c = S.ctx ~slot:0 in
      let model = ref IntMap.empty in
      List.iter
        (fun step ->
          match step with
          | Ins k ->
              if not (IntMap.mem k !model) then model := IntMap.add k (k * 7) !model;
              ignore (S.insert t c k (k * 7))
          | Del k ->
              model := IntMap.remove k !model;
              ignore (S.delete t c k)
          | Find _ | Compress | Drain | Reclaim -> ())
        steps;
      let expected =
        IntMap.bindings (IntMap.filter (fun k _ -> k >= lo && k <= hi) !model)
      in
      S.range t c ~lo ~hi = expected)

(* Bulk load at random fills == Map of the same pairs. *)
let prop_bulk_load =
  QCheck.Test.make ~name:"of_sorted == Map" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 300) (int_range 0 10_000)) (int_range 1 10))
    (fun (raw, order) ->
      let keys = List.sort_uniq compare raw in
      let pairs = List.map (fun k -> (k, k * 2)) keys in
      let t = S.of_sorted ~order pairs in
      let rep = V.check t in
      rep.Validate.errors = [] && S.to_list t = pairs)

(* The validator detects seeded corruptions. *)
let corrupt_one_node t (rng : Repro_util.Splitmix.t) =
  (* pick a random live internal page and break its separator order *)
  let candidates = ref [] in
  Store.iter t.Handle.store (fun p n ->
      if (not (Node.is_deleted n)) && Node.nkeys n >= 2 then candidates := (p, n) :: !candidates);
  match !candidates with
  | [] -> false
  | l ->
      let p, n = List.nth l (Repro_util.Splitmix.int rng (List.length l)) in
      let keys = Array.copy n.Node.keys in
      let tmp = keys.(0) in
      keys.(0) <- keys.(Array.length keys - 1);
      keys.(Array.length keys - 1) <- tmp;
      Store.put t.Handle.store p { n with Node.keys = keys };
      true

let prop_validator_detects =
  QCheck.Test.make ~name:"validator detects unsorted-node corruption" ~count:60
    QCheck.(int_range 10 2_000)
    (fun n ->
      let t = S.create ~order:3 () in
      let c = S.ctx ~slot:0 in
      for k = 1 to n do
        ignore (S.insert t c k k)
      done;
      let rng = Repro_util.Splitmix.create n in
      if corrupt_one_node t rng then (V.check t).Validate.errors <> [] else true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_program_order 2;
      prop_program_order 5;
      prop_program_order 16;
      prop_range;
      prop_bulk_load;
      prop_validator_detects;
    ]
