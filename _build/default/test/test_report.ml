(* Report formatting and the tree dump: plain-output sanity. *)

open Repro_storage
open Repro_core
open Repro_harness
module S = Sagiv.Make (Key.Int)
module D = Dump.Make (Key.Int)

let capture f =
  let path = Filename.temp_file "blink" ".out" in
  let oc = open_out path in
  f oc;
  close_out oc;
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  s

let test_table_alignment () =
  let out =
    capture (fun oc ->
        Report.table ~out:oc
          ~header:[ "a"; "bb" ]
          [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ])
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all lines equal length (padded columns) *)
  let lens = List.map String.length lines in
  Alcotest.(check bool) "aligned" true (List.for_all (fun l -> l = List.hd lens) lens);
  Alcotest.(check bool) "rule present" true
    (String.length (List.nth lines 1) > 0 && String.contains (List.nth lines 1) '-')

let test_si_and_bytes () =
  Alcotest.(check string) "si k" "1.5k" (Report.fmt_si 1_500.0);
  Alcotest.(check string) "si M" "2.50M" (Report.fmt_si 2_500_000.0);
  Alcotest.(check string) "si G" "1.20G" (Report.fmt_si 1_200_000_000.0);
  Alcotest.(check string) "si plain" "999" (Report.fmt_si 999.0);
  Alcotest.(check string) "bytes" "512B" (Report.fmt_bytes 512);
  Alcotest.(check string) "KiB" "2.0KiB" (Report.fmt_bytes 2048);
  Alcotest.(check string) "MiB" "3.0MiB" (Report.fmt_bytes (3 * 1024 * 1024))

let test_dump_mentions_structure () =
  let t = S.create ~order:2 () in
  let c = S.ctx ~slot:0 in
  for k = 1 to 30 do
    ignore (S.insert t c k k)
  done;
  let s = D.to_string t in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has leaf level" true (has "level 0:");
  Alcotest.(check bool) "marks the root" true (has "root");
  Alcotest.(check bool) "rightmost +inf" true (has "+inf")

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "si and byte formatting" `Quick test_si_and_bytes;
    Alcotest.test_case "dump mentions structure" `Quick test_dump_mentions_structure;
  ]
