(* Sequential behaviour of the Sagiv tree: oracle comparison, splits,
   duplicates, structural validity. *)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module V = Validate.Make (Key.Int)
module D = Dump.Make (Key.Int)

let ctx () = S.ctx ~slot:0

let check_valid ?(msg = "valid") t =
  let r = V.check t in
  if not (Validate.ok r) then
    Alcotest.failf "%s: %s" msg (String.concat "; " r.Validate.errors)

let test_empty () =
  let t = S.create ~order:2 () in
  let c = ctx () in
  Alcotest.(check (option int)) "search empty" None (S.search t c 42);
  Alcotest.(check bool) "delete empty" false (S.delete t c 42);
  Alcotest.(check int) "cardinal" 0 (S.cardinal t);
  Alcotest.(check int) "height" 1 (S.height t);
  check_valid t

let test_single () =
  let t = S.create ~order:2 () in
  let c = ctx () in
  Alcotest.(check bool) "insert" true (S.insert t c 7 70 = `Ok);
  Alcotest.(check (option int)) "search hit" (Some 70) (S.search t c 7);
  Alcotest.(check (option int)) "search miss" None (S.search t c 8);
  Alcotest.(check bool) "dup" true (S.insert t c 7 71 = `Duplicate);
  Alcotest.(check (option int)) "dup did not overwrite" (Some 70) (S.search t c 7);
  check_valid t

let test_ascending () =
  let t = S.create ~order:2 () in
  let c = ctx () in
  for k = 1 to 500 do
    match S.insert t c k (k * 10) with
    | `Ok -> ()
    | `Duplicate -> Alcotest.failf "unexpected duplicate at %d" k
  done;
  check_valid t;
  Alcotest.(check int) "cardinal" 500 (S.cardinal t);
  for k = 1 to 500 do
    Alcotest.(check (option int)) (Printf.sprintf "search %d" k) (Some (k * 10))
      (S.search t c k)
  done;
  Alcotest.(check bool) "grew taller" true (S.height t > 1)

let test_descending () =
  let t = S.create ~order:2 () in
  let c = ctx () in
  for k = 500 downto 1 do
    ignore (S.insert t c k k)
  done;
  check_valid t;
  Alcotest.(check int) "cardinal" 500 (S.cardinal t);
  Alcotest.(check (option int)) "first" (Some 1) (S.search t c 1);
  Alcotest.(check (option int)) "last" (Some 500) (S.search t c 500)

let test_random_oracle () =
  let rng = Repro_util.Splitmix.create 42 in
  let t = S.create ~order:3 () in
  let c = ctx () in
  let model = Hashtbl.create 97 in
  for _ = 1 to 20_000 do
    let k = Repro_util.Splitmix.int rng 3000 in
    match Repro_util.Splitmix.int rng 3 with
    | 0 ->
        let expected = if Hashtbl.mem model k then `Duplicate else `Ok in
        if expected = `Ok then Hashtbl.replace model k (k * 3);
        let got = S.insert t c k (k * 3) in
        if got <> expected then Alcotest.failf "insert %d diverged" k
    | 1 ->
        let expected = Hashtbl.mem model k in
        Hashtbl.remove model k;
        let got = S.delete t c k in
        if got <> expected then Alcotest.failf "delete %d diverged" k
    | _ ->
        let expected = Hashtbl.find_opt model k in
        let got = S.search t c k in
        if got <> expected then Alcotest.failf "search %d diverged" k
  done;
  check_valid t;
  Alcotest.(check int) "cardinal matches model" (Hashtbl.length model) (S.cardinal t)

let test_to_list_sorted () =
  let t = S.create ~order:2 () in
  let c = ctx () in
  let keys = [ 42; 17; 99; 3; 56; 78; 21; 64; 8; 91 ] in
  List.iter (fun k -> ignore (S.insert t c k k)) keys;
  let got = List.map fst (S.to_list t) in
  Alcotest.(check (list int)) "sorted" (List.sort compare keys) got

let test_delete_leaves_structure () =
  let t = S.create ~order:2 () in
  let c = ctx () in
  for k = 1 to 200 do
    ignore (S.insert t c k k)
  done;
  for k = 1 to 200 do
    if k mod 2 = 0 then Alcotest.(check bool) "delete" true (S.delete t c k)
  done;
  check_valid t;
  Alcotest.(check int) "cardinal" 100 (S.cardinal t);
  for k = 1 to 200 do
    let expected = if k mod 2 = 1 then Some k else None in
    Alcotest.(check (option int)) (Printf.sprintf "post-delete %d" k) expected
      (S.search t c k)
  done

let test_one_lock_at_a_time () =
  (* The paper's headline claim, checked on the stats high-water mark. *)
  let t = S.create ~order:2 () in
  let c = ctx () in
  for k = 1 to 2000 do
    ignore (S.insert t c k k)
  done;
  for k = 1 to 2000 do
    ignore (S.delete t c k)
  done;
  Alcotest.(check int) "max locks held simultaneously" 1
    c.Handle.stats.Stats.max_locks_held

let test_large_order () =
  let t = S.create ~order:64 () in
  let c = ctx () in
  for k = 1 to 10_000 do
    ignore (S.insert t c k k)
  done;
  check_valid t;
  Alcotest.(check int) "cardinal" 10_000 (S.cardinal t)

let test_bulk_load () =
  List.iter
    (fun n ->
      let pairs = List.init n (fun i -> (i * 3, i * 30)) in
      let t = S.of_sorted ~order:4 pairs in
      check_valid ~msg:(Printf.sprintf "bulk n=%d" n) t;
      Alcotest.(check int) "cardinal" n (S.cardinal t);
      Alcotest.(check bool) "contents" true (S.to_list t = pairs);
      let c = ctx () in
      (* findable, and the tree is fully operational afterwards *)
      if n > 1 then begin
        Alcotest.(check (option int)) "search" (Some 30) (S.search t c 3);
        Alcotest.(check (option int)) "miss between keys" None (S.search t c 4)
      end;
      Alcotest.(check bool) "insert into loaded" true (S.insert t c (3 * n + 1) 0 = `Ok);
      Alcotest.(check bool) "delete from loaded" true (n = 0 || S.delete t c 0))
    [ 0; 1; 7; 8; 9; 100; 5_000 ];
  (* unsorted input rejected *)
  match S.of_sorted ~order:4 [ (2, 0); (1, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted input accepted"

let test_bulk_load_density () =
  let n = 10_000 in
  let pairs = List.init n (fun i -> (i, i)) in
  let bulk = S.of_sorted ~order:8 ~fill:0.9 pairs in
  let incremental = S.create ~order:8 () in
  let c = ctx () in
  List.iter (fun (k, v) -> ignore (S.insert incremental c k v)) pairs;
  let module V2 = V in
  let rb = V2.check bulk and ri = V2.check incremental in
  Alcotest.(check bool)
    (Printf.sprintf "denser: %d bulk nodes vs %d incremental" rb.Validate.total_nodes
       ri.Validate.total_nodes)
    true
    (rb.Validate.total_nodes < ri.Validate.total_nodes);
  Alcotest.(check bool) "not taller" true (rb.Validate.height <= ri.Validate.height)

let suite =
  [
    Alcotest.test_case "bulk load" `Quick test_bulk_load;
    Alcotest.test_case "bulk load density" `Quick test_bulk_load_density;
    Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "single key" `Quick test_single;
    Alcotest.test_case "ascending inserts" `Quick test_ascending;
    Alcotest.test_case "descending inserts" `Quick test_descending;
    Alcotest.test_case "random ops vs oracle" `Quick test_random_oracle;
    Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
    Alcotest.test_case "deletes keep structure valid" `Quick test_delete_leaves_structure;
    Alcotest.test_case "insert/delete hold one lock max" `Quick test_one_lock_at_a_time;
    Alcotest.test_case "large order" `Quick test_large_order;
  ]
