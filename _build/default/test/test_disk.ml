(* Buffer pool and the disk-resident B+ tree: eviction under tiny pools,
   oracle equivalence, durability across reopen. *)

open Repro_storage
open Repro_baseline
module D = Disk_btree.Make (Key.Int)

(* -- buffer pool -- *)

let test_pool_pin_unpin () =
  let pf = Paged_file.create_memory ~page_size:128 () in
  let bp = Buffer_pool.create ~frames:4 pf in
  let p = Buffer_pool.alloc bp in
  let frame = Buffer_pool.pin bp p in
  Bytes.set frame 0 'X';
  Buffer_pool.unpin bp p ~dirty:true;
  Buffer_pool.unpin bp p ~dirty:false;
  (* alloc returned it pinned *)
  Buffer_pool.flush_all bp;
  Alcotest.(check char) "written back" 'X' (Bytes.get (Paged_file.read pf p) 0)

let test_pool_eviction () =
  let pf = Paged_file.create_memory ~page_size:64 () in
  let bp = Buffer_pool.create ~frames:2 pf in
  (* three pages through two frames force an eviction *)
  let pages =
    List.init 3 (fun i ->
        let p = Buffer_pool.alloc bp in
        let f = Buffer_pool.pin bp p in
        Bytes.set f 0 (Char.chr (65 + i));
        Buffer_pool.unpin bp p ~dirty:true;
        Buffer_pool.unpin bp p ~dirty:false;
        p)
  in
  let s = Buffer_pool.stats bp in
  Alcotest.(check bool) "evicted" true (s.Buffer_pool.evictions >= 1);
  Alcotest.(check bool) "wrote back dirty victim" true (s.Buffer_pool.writebacks >= 1);
  (* all three readable with correct contents *)
  List.iteri
    (fun i p ->
      let f = Buffer_pool.pin bp p in
      let c = Bytes.get f 0 in
      Buffer_pool.unpin bp p ~dirty:false;
      Alcotest.(check char) (Printf.sprintf "page %d" i) (Char.chr (65 + i)) c)
    pages

let test_pool_all_pinned_fails () =
  let pf = Paged_file.create_memory ~page_size:64 () in
  let bp = Buffer_pool.create ~frames:1 pf in
  let p = Buffer_pool.alloc bp in
  (* p is pinned; a second distinct page cannot be brought in *)
  let q = Paged_file.append pf (Bytes.make 64 '\000') in
  (match Buffer_pool.pin bp q with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "pinned frame evicted");
  Buffer_pool.unpin bp p ~dirty:false

let test_pool_hit_ratio () =
  let pf = Paged_file.create_memory ~page_size:64 () in
  let bp = Buffer_pool.create ~frames:8 pf in
  let p = Buffer_pool.alloc bp in
  Buffer_pool.unpin bp p ~dirty:false;
  for _ = 1 to 99 do
    ignore (Buffer_pool.pin bp p);
    Buffer_pool.unpin bp p ~dirty:false
  done;
  Alcotest.(check bool) "high hit ratio" true (Buffer_pool.hit_ratio bp > 0.9)

(* -- disk tree -- *)

let mk ?(frames = 64) ?(order = 16) () =
  let pf = Paged_file.create_memory () in
  let bp = Buffer_pool.create ~frames pf in
  D.create ~order bp

let test_disk_tree_basic () =
  let t = mk () in
  Alcotest.(check bool) "insert" true (D.insert t 5 50 = `Ok);
  Alcotest.(check bool) "dup" true (D.insert t 5 51 = `Duplicate);
  Alcotest.(check (option int)) "search" (Some 50) (D.search t 5);
  Alcotest.(check bool) "delete" true (D.delete t 5);
  Alcotest.(check (option int)) "gone" None (D.search t 5);
  Alcotest.(check int) "count" 0 (D.cardinal t)

let test_disk_tree_oracle () =
  let t = mk ~order:4 () in
  let model = Hashtbl.create 97 in
  let rng = Repro_util.Splitmix.create 12 in
  for i = 1 to 20_000 do
    let k = Repro_util.Splitmix.int rng 2_000 in
    match Repro_util.Splitmix.int rng 3 with
    | 0 ->
        let expected = if Hashtbl.mem model k then `Duplicate else `Ok in
        if expected = `Ok then Hashtbl.replace model k k;
        if D.insert t k k <> expected then Alcotest.failf "insert %d diverged (op %d)" k i
    | 1 ->
        let expected = Hashtbl.mem model k in
        Hashtbl.remove model k;
        if D.delete t k <> expected then Alcotest.failf "delete %d diverged" k
    | _ ->
        if D.search t k <> Hashtbl.find_opt model k then
          Alcotest.failf "search %d diverged" k
  done;
  Alcotest.(check int) "cardinal" (Hashtbl.length model) (D.cardinal t);
  let l = D.to_list t in
  Alcotest.(check int) "to_list length" (Hashtbl.length model) (List.length l);
  Alcotest.(check bool) "sorted" true
    (let ks = List.map fst l in
     ks = List.sort_uniq compare ks)

let test_disk_tree_tiny_pool () =
  (* 4 frames for a tree of thousands of keys: constant eviction traffic,
     everything still correct. *)
  let t = mk ~frames:4 ~order:8 () in
  for k = 1 to 5_000 do
    ignore (D.insert t k k)
  done;
  for k = 1 to 5_000 do
    if D.search t k <> Some k then Alcotest.failf "key %d lost under eviction" k
  done;
  let s = D.pool_stats t in
  Alcotest.(check bool) "evictions happened" true (s.Buffer_pool.evictions > 1_000)

let test_disk_tree_durability () =
  let path = Filename.temp_file "blink" ".dbt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let pf = Paged_file.create_file path in
      let bp = Buffer_pool.create ~frames:32 pf in
      let t = D.create ~order:8 bp in
      for k = 1 to 3_000 do
        ignore (D.insert t k (k * 2))
      done;
      D.flush t;
      Paged_file.close pf;
      (* reopen from disk *)
      let pf = Paged_file.open_file path in
      let bp = Buffer_pool.create ~frames:32 pf in
      let t' = D.open_existing bp in
      Alcotest.(check int) "count recovered" 3_000 (D.cardinal t');
      Alcotest.(check int) "height recovered" (D.height t) (D.height t');
      for k = 1 to 3_000 do
        if D.search t' k <> Some (k * 2) then Alcotest.failf "key %d lost on disk" k
      done;
      Paged_file.close pf)

let test_disk_tree_range () =
  let t = mk ~order:4 () in
  for k = 0 to 999 do
    if k mod 2 = 0 then ignore (D.insert t k k)
  done;
  let sum = D.fold_range t ~lo:100 ~hi:200 ~init:0 (fun acc k _ -> acc + k) in
  let expected = List.fold_left ( + ) 0 (List.init 51 (fun i -> 100 + (2 * i))) in
  Alcotest.(check int) "range sum" expected sum

let test_max_order_fits () =
  let page_size = Paged_file.default_page_size in
  let order = D.max_order ~page_size ~key_bytes:8 in
  Alcotest.(check bool) "sane order" true (order > 16);
  (* fill nodes to capacity at that order: must never raise Node_too_large *)
  let t = mk ~order () in
  for k = 1 to 50_000 do
    ignore (D.insert t k k)
  done;
  Alcotest.(check int) "all in" 50_000 (D.cardinal t)

let suite =
  [
    Alcotest.test_case "pool pin/unpin/writeback" `Quick test_pool_pin_unpin;
    Alcotest.test_case "pool eviction" `Quick test_pool_eviction;
    Alcotest.test_case "pool all-pinned fails" `Quick test_pool_all_pinned_fails;
    Alcotest.test_case "pool hit ratio" `Quick test_pool_hit_ratio;
    Alcotest.test_case "disk tree basics" `Quick test_disk_tree_basic;
    Alcotest.test_case "disk tree vs oracle" `Quick test_disk_tree_oracle;
    Alcotest.test_case "disk tree under tiny pool" `Quick test_disk_tree_tiny_pool;
    Alcotest.test_case "disk tree durability (reopen)" `Quick test_disk_tree_durability;
    Alcotest.test_case "disk tree range" `Quick test_disk_tree_range;
    Alcotest.test_case "max_order fits a page" `Quick test_max_order_fits;
  ]
