(* Endless randomized concurrency fuzzer: domains hammer a Sagiv tree with
   mixed operations while compactors run; the structure is validated and
   cross-checked against owned-key expectations at every round. Exits
   non-zero on the first violation. Meant for long soak runs:

     dune exec bin/fuzz.exe            # run until interrupted
     dune exec bin/fuzz.exe -- 20      # 20 rounds
*)

open Repro_storage
open Repro_core
module S = Sagiv.Make (Key.Int)
module Co = Compactor.Make (Key.Int)
module V = Validate.Make (Key.Int)

let round seed =
  let order = 2 + (seed mod 7) in
  let space = 5_000 + (seed * 997 mod 45_000) in
  let nd = 2 + (seed mod 4) in
  let compactors = seed mod 3 in
  let t = S.create ~order ~enqueue_on_delete:(compactors > 0) () in
  let stop = Atomic.make false in
  let cdoms =
    Array.init compactors (fun i ->
        Domain.spawn (fun () -> Co.run_worker t (S.ctx ~slot:(16 + i)) ~stop))
  in
  (* each domain owns keys ≡ i (mod nd); final per-key expectation checked *)
  let finals =
    Array.init nd (fun i ->
        Domain.spawn (fun () ->
            let c = S.ctx ~slot:i in
            let rng = Repro_util.Splitmix.create (seed * 31 + i) in
            let final = Hashtbl.create 997 in
            for _ = 1 to 30_000 do
              let k = (Repro_util.Splitmix.int rng (space / nd) * nd) + i in
              match Repro_util.Splitmix.int rng 5 with
              | 0 | 1 ->
                  ignore (S.insert t c k k);
                  Hashtbl.replace final k true
              | 2 | 3 ->
                  ignore (S.delete t c k);
                  Hashtbl.replace final k false
              | _ -> ignore (S.search t c k)
            done;
            final))
  in
  let finals = Array.map Domain.join finals in
  Atomic.set stop true;
  Array.iter Domain.join cdoms;
  (match Co.run_until_empty t (S.ctx ~slot:20) with
  | `Drained -> ()
  | `Step_limit -> failwith "compactor step limit");
  let rep = V.check t in
  if rep.Validate.errors <> [] then begin
    Printf.eprintf "FUZZ FAILURE (seed %d): invalid structure:\n%s\n" seed
      (String.concat "\n" rep.Validate.errors);
    exit 1
  end;
  let c0 = S.ctx ~slot:0 in
  Array.iter
    (fun final ->
      Hashtbl.iter
        (fun k should ->
          let present = S.search t c0 k <> None in
          if present <> should then begin
            Printf.eprintf "FUZZ FAILURE (seed %d): key %d present=%b expected=%b\n" seed
              k present should;
            exit 1
          end)
        final)
    finals;
  ignore (S.reclaim t);
  Printf.printf "round seed=%-6d ok: order=%d domains=%d compactors=%d keys=%d height=%d\n%!"
    seed order nd compactors rep.Validate.total_keys rep.Validate.height

let () =
  let rounds =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else max_int
  in
  let seed0 = int_of_float (Unix.time ()) mod 100_000 in
  Printf.printf "fuzzing from seed %d (%s rounds)\n%!" seed0
    (if rounds = max_int then "unbounded" else string_of_int rounds);
  let i = ref 0 in
  while !i < rounds do
    round (seed0 + !i);
    incr i
  done
