lib/core/handle.mli: Cqueue Epoch Prime_block Repro_storage Stats Store
