lib/core/checkpoint.ml: Array Buffer Bytes Cqueue Epoch Handle Hashtbl Int32 Int64 Key List Node Option Page_codec Paged_file Prime_block Printf Repro_storage Store
