lib/core/kv.ml: Buffer Bytes Epoch Handle Int32 Int64 Key List Record_store Repro_storage Sagiv String
