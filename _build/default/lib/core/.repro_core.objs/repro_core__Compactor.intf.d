lib/core/compactor.mli: Atomic Bound Cqueue Handle Key Node Repro_storage
