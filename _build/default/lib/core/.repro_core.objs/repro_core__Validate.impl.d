lib/core/validate.ml: Array Bound Handle Hashtbl Key List Node Page_codec Prime_block Printf Repro_storage Store
