lib/core/dump.mli: Format Handle Key Repro_storage
