lib/core/compress.ml: Access Array Epoch Handle Key Node Prime_block Repro_storage Repro_util Restructure Stats Store
