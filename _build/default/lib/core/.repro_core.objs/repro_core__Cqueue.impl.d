lib/core/cqueue.ml: Array Bound Hashtbl Mutex Node Queue Repro_storage
