lib/core/compress.mli: Handle Key Repro_storage
