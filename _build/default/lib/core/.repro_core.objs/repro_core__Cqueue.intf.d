lib/core/cqueue.mli: Bound Node Repro_storage
