lib/core/snapshot.ml: Array Bound Buffer Bytes Cqueue Epoch Handle Hashtbl Int32 Int64 Key List Node Option Page_codec Prime_block Printf Repro_storage Store
