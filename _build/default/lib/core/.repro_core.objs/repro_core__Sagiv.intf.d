lib/core/sagiv.mli: Handle Key Node Repro_storage
