lib/core/sagiv.ml: Access Array Bound Cqueue Epoch Handle Key List Node Prime_block Repro_storage Stats Store
