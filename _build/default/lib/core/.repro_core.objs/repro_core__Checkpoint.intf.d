lib/core/checkpoint.mli: Handle Key Paged_file Repro_storage
