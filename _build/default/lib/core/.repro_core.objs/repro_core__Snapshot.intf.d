lib/core/snapshot.mli: Buffer Bytes Handle Key Repro_storage
