lib/core/handle.ml: Cqueue Epoch Prime_block Repro_storage Stats Store
