lib/core/restructure.mli: Cqueue Handle Key Node Repro_storage
