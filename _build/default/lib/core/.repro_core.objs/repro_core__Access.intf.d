lib/core/access.mli: Bound Handle Key Node Repro_storage
