lib/core/validate.mli: Handle Key Node Repro_storage
