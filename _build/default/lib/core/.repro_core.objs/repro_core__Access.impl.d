lib/core/access.ml: Handle Key Node Prime_block Repro_storage Repro_util Stats Store
