lib/core/dump.ml: Format Handle Key Node Prime_block Repro_storage Store
