lib/core/compactor.ml: Access Array Atomic Cqueue Epoch Handle Key Node Repro_storage Repro_util Restructure Stats Store
