lib/core/kv.mli: Bytes Handle Key Repro_storage
