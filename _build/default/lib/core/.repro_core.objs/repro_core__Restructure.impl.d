lib/core/restructure.ml: Access Array Cqueue Epoch Handle Key List Node Prime_block Repro_storage Stats Store
