(** Quiescent persistence through the binary page codec: serialise a tree
    to bytes and back. Page ids are renumbered on load and tombstones
    dropped (a snapshot is a compaction point). *)

open Repro_storage

exception Corrupt of string

module Make (K : Key.S) : sig
  val save : K.t Handle.t -> Bytes.t
  (** The tree must be quiescent. *)

  val save_buf : K.t Handle.t -> Buffer.t -> unit

  val load : Bytes.t -> K.t Handle.t
  (** @raise Corrupt on a damaged snapshot. *)
end
