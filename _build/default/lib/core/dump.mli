(** Debug pretty-printing of a quiescent tree, level by level. *)

open Repro_storage

module Make (K : Key.S) : sig
  val pp : Format.formatter -> K.t Handle.t -> unit
  val to_string : K.t Handle.t -> string
  val print : K.t Handle.t -> unit
end
