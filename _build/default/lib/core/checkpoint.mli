(** Checkpointing a quiescent tree to a {!Repro_storage.Paged_file}:
    page 0 is the header, the node stream lives in a page chain (overflow-
    chain style), so checkpoints work over fixed-size disk pages with
    either the memory or the real-file backend. *)

open Repro_storage

exception Corrupt of string

module Make (K : Key.S) : sig
  val save : K.t Handle.t -> Paged_file.t -> unit
  (** Write the tree into the paged file (page 0 becomes the header) and
      sync it. The tree must be quiescent. *)

  val load : Paged_file.t -> K.t Handle.t
  (** @raise Corrupt on a damaged checkpoint. *)
end
