(** Key distributions for workload generation. Popularity ranks are
    scattered over the key space with a multiplicative hash (as in YCSB),
    so skew does not correlate with key order unless [scramble] is off. *)

type kind =
  | Uniform
  | Zipfian of float  (** exponent, e.g. 0.99 *)
  | Sequential  (** monotonically increasing per sampler, wrapping *)
  | Hotspot of { hot_fraction : float; hot_probability : float }

type t

val create : ?scramble:bool -> space:int -> kind -> t
(** A sampler over [\[0, space)]. [scramble] (default true) hashes ranks
    into scattered keys. *)

val sample : t -> Splitmix.t -> int
val kind_to_string : kind -> string
