(** Writer-preferring reader–writer lock.

    OCaml 5.1's stdlib has no RW lock; the coarse-grained and lock-coupling
    baselines need one. Writer preference avoids writer starvation under the
    read-heavy mixes used in the benches. *)

type t = {
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;  (** active readers *)
  mutable writer : bool;  (** a writer holds the lock *)
  mutable waiting_writers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let read_lock t =
  Mutex.lock t.mutex;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.mutex

let write_lock t =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex

let write_unlock t =
  Mutex.lock t.mutex;
  t.writer <- false;
  if t.waiting_writers > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read;
  Mutex.unlock t.mutex

(** [try_write_lock t] is non-blocking; [true] on success. *)
let try_write_lock t =
  Mutex.lock t.mutex;
  let ok = (not t.writer) && t.readers = 0 in
  if ok then t.writer <- true;
  Mutex.unlock t.mutex;
  ok

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
