(** Key distributions for workload generation.

    All samplers draw from a caller-supplied {!Splitmix.t} so that each
    worker domain uses its own stream. Keys are ranks scattered over a wide
    integer space with a multiplicative hash, so that "zipfian" popularity
    does not correlate with key order (as in YCSB). *)

type kind =
  | Uniform  (** uniform over [0, space) *)
  | Zipfian of float  (** skewed; parameter is the exponent, e.g. 0.99 *)
  | Sequential  (** monotonically increasing (per sampler) *)
  | Hotspot of { hot_fraction : float; hot_probability : float }
      (** [hot_probability] of draws hit the first [hot_fraction] of the space *)

type t = {
  kind : kind;
  space : int;
  mutable seq : int;
  zipf : Zipf.t option;
  scramble : bool;
}

let create ?(scramble = true) ~space kind =
  if space < 1 then invalid_arg "Distribution.create: space must be >= 1";
  let zipf =
    match kind with
    | Zipfian exponent -> Some (Zipf.create ~n:space ~exponent)
    | Uniform | Sequential | Hotspot _ -> None
  in
  { kind; space; seq = 0; zipf; scramble }

(* Fibonacci hashing: a bijection on 62-bit ints, folded into [0, space). *)
let scramble_rank t rank =
  if not t.scramble then rank
  else
    let h = Int64.mul (Int64.of_int rank) 0x9E3779B97F4A7C15L in
    Int64.to_int (Int64.shift_right_logical h 2) mod t.space

let sample t rng =
  let rank =
    match t.kind with
    | Uniform -> Splitmix.int rng t.space
    | Zipfian _ -> (
        match t.zipf with
        | Some z -> Zipf.sample z rng - 1
        | None -> assert false)
    | Sequential ->
        let v = t.seq in
        t.seq <- (t.seq + 1) mod t.space;
        v
    | Hotspot { hot_fraction; hot_probability } ->
        let hot_n = max 1 (int_of_float (hot_fraction *. float_of_int t.space)) in
        if Splitmix.float rng < hot_probability then Splitmix.int rng hot_n
        else hot_n + Splitmix.int rng (max 1 (t.space - hot_n))
  in
  scramble_rank t rank

let kind_to_string = function
  | Uniform -> "uniform"
  | Zipfian e -> Printf.sprintf "zipf(%.2f)" e
  | Sequential -> "sequential"
  | Hotspot { hot_fraction; hot_probability } ->
      Printf.sprintf "hotspot(%.2f@%.2f)" hot_probability hot_fraction
