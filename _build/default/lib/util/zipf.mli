(** Zipfian sampler using rejection–inversion (Hörmann & Derflinger 1996):
    O(1) amortised sampling, no precomputed tables. *)

type t

val create : n:int -> exponent:float -> t
(** [create ~n ~exponent] samples ranks over [\[1, n\]] with skew
    [exponent > 0] (0.99 is the YCSB default).
    @raise Invalid_argument on [n < 1] or [exponent <= 0]. *)

val sample : t -> Splitmix.t -> int
(** A rank in [\[1, n\]]; rank 1 is the most popular. *)
