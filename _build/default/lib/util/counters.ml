(** Cache-friendly striped counters.

    A counter is an array of atomics, one stripe per domain slot, padded by
    indexing stride to reduce false sharing. Increments are wait-free per
    stripe; [read] sums stripes and is approximate under concurrency (exact
    once quiescent), which is all the benches need. *)

let stride = 8 (* ints between live slots; crude false-sharing padding *)

type t = { slots : int Atomic.t array; n : int }

let create ?(domains = 16) () =
  { slots = Array.init (domains * stride) (fun _ -> Atomic.make 0); n = domains }

let incr t ~slot = Atomic.incr t.slots.((slot mod t.n) * stride)

let add t ~slot v =
  ignore (Atomic.fetch_and_add t.slots.((slot mod t.n) * stride) v)

let read t =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    total := !total + Atomic.get t.slots.(i * stride)
  done;
  !total

let clear t =
  for i = 0 to t.n - 1 do
    Atomic.set t.slots.(i * stride) 0
  done
