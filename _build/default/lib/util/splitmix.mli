(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood,
    OOPSLA'14). Fast, splittable, not thread-safe: give each worker domain
    its own generator via {!split}. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy at the current state. *)

val split : t -> t
(** [split t] returns a statistically independent generator; [t] advances. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val next_int : t -> int
(** Uniform non-negative int over the 62-bit positive range. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] without modulo bias.
    Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** Fisher–Yates shuffle in place. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)
