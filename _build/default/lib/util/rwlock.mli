(** Writer-preferring reader–writer lock (OCaml 5.1's stdlib has none).
    Readers share; a waiting writer blocks new readers. *)

type t

val create : unit -> t
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val try_write_lock : t -> bool
(** Non-blocking; [true] on acquisition. *)

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a
