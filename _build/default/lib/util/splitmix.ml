(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable PRNG (Steele, Lea & Flood, OOPSLA'14). Each
    worker domain owns an independent stream derived with {!split}, so
    concurrent workloads never contend on shared generator state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Mixing function from the reference implementation (variant 13). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(** [split t] returns a statistically independent generator; [t] advances. *)
let split t =
  let s = next_int64 t in
  { state = mix64 s }

(** Non-negative int uniform over the full 62-bit positive range. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = next_int t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

(** Uniform float in [\[0, 1)]. *)
let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

(** Fisher–Yates shuffle in place. *)
let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Random permutation of [0 .. n-1]. *)
let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
