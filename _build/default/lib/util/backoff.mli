(** Truncated exponential backoff for spin–retry loops ("wait for a while
    and then read again", paper §3.3 / §5.2). *)

type t

val create : ?max_spins:int -> unit -> t
val reset : t -> unit

val once : t -> unit
(** Spin; each successive call spins twice as long, up to the cap. *)

val stage : t -> int
(** Number of doublings so far — for bounded-wait policies. *)
