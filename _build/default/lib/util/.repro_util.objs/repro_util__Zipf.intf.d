lib/util/zipf.mli: Splitmix
