lib/util/rwlock.mli:
