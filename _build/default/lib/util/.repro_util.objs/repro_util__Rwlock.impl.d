lib/util/rwlock.ml: Condition Fun Mutex
