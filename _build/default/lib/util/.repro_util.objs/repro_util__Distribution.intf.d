lib/util/distribution.mli: Splitmix
