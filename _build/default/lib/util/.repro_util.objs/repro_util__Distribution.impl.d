lib/util/distribution.ml: Int64 Printf Splitmix Zipf
