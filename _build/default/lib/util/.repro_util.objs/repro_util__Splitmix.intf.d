lib/util/splitmix.mli:
