lib/util/counters.mli:
