lib/util/backoff.mli:
