lib/util/histogram.mli:
