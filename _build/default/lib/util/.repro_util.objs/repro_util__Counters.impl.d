lib/util/counters.ml: Array Atomic
