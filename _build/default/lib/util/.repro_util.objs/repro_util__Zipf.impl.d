lib/util/zipf.ml: Float Splitmix
