(** Truncated exponential backoff for retry loops.

    Spins with [Domain.cpu_relax] for a geometrically growing number of
    iterations, capped. Used by processes that must "wait for a while and
    then read again" (paper §3.3 and §5.2 case 1) without blocking. *)

type t = { mutable spins : int; max_spins : int }

let default_max = 1 lsl 14

let create ?(max_spins = default_max) () = { spins = 1; max_spins }

let reset t = t.spins <- 1

(** Spin once; subsequent calls spin longer, up to the cap. *)
let once t =
  for _ = 1 to t.spins do
    Domain.cpu_relax ()
  done;
  if t.spins < t.max_spins then t.spins <- t.spins * 2

(** Current backoff stage, exposed for "give up after N stages" policies. *)
let stage t =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 t.spins 0
