(** Striped atomic counters: per-domain stripes with padding against false
    sharing. [read] is exact once quiescent, approximate under concurrent
    increments. *)

type t

val stride : int
(** Array stride between stripes (exposed for reuse by other per-slot
    structures, e.g. {!Repro_storage.Epoch}). *)

val create : ?domains:int -> unit -> t
val incr : t -> slot:int -> unit
val add : t -> slot:int -> int -> unit
val read : t -> int
val clear : t -> unit
