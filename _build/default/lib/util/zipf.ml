(** Zipfian distribution sampler.

    Uses the rejection–inversion method of Hörmann & Derflinger (1996), the
    same algorithm as YCSB's and Apache Commons' generators. Sampling is
    O(1) amortised with no precomputed tables, so a fresh sampler over
    millions of items is cheap to build — important when benches sweep the
    key-space size. *)

type t = {
  n : int;  (** number of items, ranks 1..n *)
  exponent : float;  (** skew s > 0; s = 0 would be uniform (unsupported) *)
  h_integral_x1 : float;
  h_integral_n : float;
  s : float;
}

let h_integral ~exponent x =
  let log_x = log x in
  exp ((1.0 -. exponent) *. log_x) /. (1.0 -. exponent)

(* For exponent = 1 the integral is log x; handle via a branch. *)
let h_integral_gen ~exponent x =
  if Float.abs (exponent -. 1.0) < 1e-9 then log x else h_integral ~exponent x

let h ~exponent x = exp (-.exponent *. log x)

let h_integral_inverse ~exponent x =
  if Float.abs (exponent -. 1.0) < 1e-9 then exp x
  else exp (log (x *. (1.0 -. exponent)) /. (1.0 -. exponent))

let create ~n ~exponent =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if exponent <= 0.0 then invalid_arg "Zipf.create: exponent must be > 0";
  let h_integral_x1 = h_integral_gen ~exponent 1.5 -. 1.0 in
  let h_integral_n = h_integral_gen ~exponent (float_of_int n +. 0.5) in
  let s = 2.0 -. h_integral_inverse ~exponent (h_integral_gen ~exponent 2.5 -. h ~exponent 2.0) in
  { n; exponent; h_integral_x1; h_integral_n; s }

(** [sample t rng] returns a rank in [\[1, n\]]; rank 1 is the most popular. *)
let sample t rng =
  let rec go () =
    let u = t.h_integral_n +. (Splitmix.float rng *. (t.h_integral_x1 -. t.h_integral_n)) in
    let x = h_integral_inverse ~exponent:t.exponent u in
    let k = int_of_float (Float.round x) in
    let k = if k < 1 then 1 else if k > t.n then t.n else k in
    let kf = float_of_int k in
    if
      kf -. x <= t.s
      || u >= h_integral_gen ~exponent:t.exponent (kf +. 0.5) -. h ~exponent:t.exponent kf
    then k
    else go ()
  in
  go ()
