(** Key bounds: a key extended with -infinity and +infinity.

    A node's range is the half-open interval (low, high]. The leftmost node
    at each level has [low = Neg_inf]; the rightmost has [high = Pos_inf]
    (paper §2.1: "the rightmost node at each level has +inf as its high
    value"). *)

type 'k t = Neg_inf | Key of 'k | Pos_inf

let compare key_compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, Pos_inf -> 0
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Key x, Key y -> key_compare x y

(** [compare_key kc k b]: position of the plain key [k] relative to bound [b]. *)
let compare_key key_compare k b =
  match b with Neg_inf -> 1 | Pos_inf -> -1 | Key y -> key_compare k y

let to_string key_to_string = function
  | Neg_inf -> "-inf"
  | Pos_inf -> "+inf"
  | Key k -> key_to_string k

let map f = function Neg_inf -> Neg_inf | Pos_inf -> Pos_inf | Key k -> Key (f k)

let is_key = function Key _ -> true | Neg_inf | Pos_inf -> false

let get_key = function
  | Key k -> k
  | Neg_inf | Pos_inf -> invalid_arg "Bound.get_key: infinite bound"
