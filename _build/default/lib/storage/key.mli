(** Ordered key types. Trees and codecs are functors over {!S}. *)

module type S = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string

  val encode : Buffer.t -> t -> unit
  (** Append the binary page-format encoding of a key. *)

  val decode : Bytes.t -> pos:int -> t * int
  (** [decode bytes ~pos] returns the key and the position after it. *)
end

module Int : S with type t = int
(** Fixed 8-byte little-endian encoding. *)

module Pair (A : S) (B : S) : S with type t = A.t * B.t
(** Lexicographic pairs — composite indexes like (user_id, timestamp). *)

module Str : S with type t = string
(** Length-prefixed encoding. *)
