(** Per-worker operation statistics. One mutable record per domain, no
    synchronisation; merge after a run. These are the metrics the paper's
    claims are judged on: lock footprint, restarts, link chases,
    structure modifications. *)

type t = {
  mutable ops : int;
  mutable gets : int;
  mutable puts : int;
  mutable lock_acquisitions : int;
  mutable locks_held : int;
  mutable max_locks_held : int;  (** the "locks simultaneously" metric *)
  mutable link_follows : int;
  mutable restarts : int;  (** wrong-node restarts (§5.2 case 2) *)
  mutable fwd_follows : int;  (** tombstone forwarding follows (case 1) *)
  mutable retries : int;  (** lock-then-revalidate right-moves *)
  mutable splits : int;
  mutable merges : int;
  mutable redistributions : int;
  mutable enqueued : int;
  mutable requeued : int;
  mutable discarded : int;
  mutable waits : int;  (** backoff waits (§3.3 / §5.2) *)
}

val create : unit -> t
val reset : t -> unit

val on_lock : t -> unit
(** Count an acquisition and track the simultaneous-locks high-water mark. *)

val on_unlock : t -> unit

val merge : into:t -> t -> unit
(** Sum counters; max the high-water marks. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
