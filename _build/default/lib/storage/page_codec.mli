(** Binary page format: the durable encoding of a node ("each node
    corresponds to a page or block of secondary storage", §2.2). Used by
    snapshots and exercised by round-trip tests so the tree code would
    survive rebasing onto a real pager. *)

val magic : int
val version : int

exception Corrupt of string

module Make (K : Key.S) : sig
  val encode : Buffer.t -> K.t Node.t -> unit

  val decode : Bytes.t -> pos:int -> K.t Node.t * int
  (** Returns the node and the position after it.
      @raise Corrupt on bad magic/version/structure. *)

  val to_bytes : K.t Node.t -> Bytes.t
  val of_bytes : Bytes.t -> K.t Node.t

  val encoded_size : K.t Node.t -> int
  (** On-disk size in bytes (used for space-utilisation reporting). *)
end
