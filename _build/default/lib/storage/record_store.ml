(** Concurrent record heap.

    The paper's leaves store pairs (v, p) where "p points to the record
    with key value v" and assumes "space has already been allocated to r"
    (§3.1). This module is that allocation: a chunked slab of immutable
    record payloads addressed by integer record pointers, with a free list
    for reuse. Like {!Store}, slots never move, so readers index without
    synchronisation; reads and writes of a record are indivisible.

    Reuse discipline: {!free} makes a pointer invalid immediately; callers
    that race readers must defer {!free} through an {!Epoch} manager, as
    {!Repro_core.Kv} does. *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 14

type t = {
  chunks : string option Atomic.t array option Atomic.t array;
  next : int Atomic.t;
  free_list : int list Atomic.t;
  allocated : int Atomic.t;
  freed : int Atomic.t;
  bytes_stored : int Atomic.t;
}

let create () =
  {
    chunks = Array.init max_chunks (fun _ -> Atomic.make None);
    next = Atomic.make 0;
    free_list = Atomic.make [];
    allocated = Atomic.make 0;
    freed = Atomic.make 0;
    bytes_stored = Atomic.make 0;
  }

let ensure_chunk t ci =
  if ci >= max_chunks then failwith "Record_store: out of slots";
  match Atomic.get t.chunks.(ci) with
  | Some c -> c
  | None ->
      let fresh = Array.init chunk_size (fun _ -> Atomic.make None) in
      if Atomic.compare_and_set t.chunks.(ci) None (Some fresh) then fresh
      else (
        match Atomic.get t.chunks.(ci) with Some c -> c | None -> assert false)

let slot t ptr =
  let ci = ptr lsr chunk_bits in
  match Atomic.get t.chunks.(ci) with
  | Some c -> c.(ptr land (chunk_size - 1))
  | None -> invalid_arg (Printf.sprintf "Record_store: record %d not allocated" ptr)

let pop_free t =
  let rec go () =
    match Atomic.get t.free_list with
    | [] -> None
    | p :: rest as old ->
        if Atomic.compare_and_set t.free_list old rest then Some p else go ()
  in
  go ()

let push_free t p =
  let rec go () =
    let old = Atomic.get t.free_list in
    if not (Atomic.compare_and_set t.free_list old (p :: old)) then go ()
  in
  go ()

(** Allocate a record; the returned pointer is readable from all domains. *)
let put t payload =
  Atomic.incr t.allocated;
  ignore (Atomic.fetch_and_add t.bytes_stored (String.length payload));
  match pop_free t with
  | Some p ->
      Atomic.set (slot t p) (Some payload);
      p
  | None ->
      let p = Atomic.fetch_and_add t.next 1 in
      let chunk = ensure_chunk t (p lsr chunk_bits) in
      Atomic.set chunk.(p land (chunk_size - 1)) (Some payload);
      p

exception Freed_record of int

(** Indivisible read; raises {!Freed_record} on a reclaimed slot. *)
let get t ptr =
  match Atomic.get (slot t ptr) with Some s -> s | None -> raise (Freed_record ptr)

(** Return a record's slot to the allocator. *)
let free t ptr =
  (match Atomic.get (slot t ptr) with
  | Some s -> ignore (Atomic.fetch_and_add t.bytes_stored (-String.length s))
  | None -> ());
  Atomic.set (slot t ptr) None;
  Atomic.incr t.freed;
  push_free t ptr

let live_count t = Atomic.get t.allocated - Atomic.get t.freed
let bytes_stored t = Atomic.get t.bytes_stored
