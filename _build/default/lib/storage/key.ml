(** Ordered key types for B-link trees.

    Trees are functors over {!S}; {!Int} is the instance used by the
    benches, {!Str} exists to prove genericity and for the string example. *)

module type S = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string

  (** Binary page format support (see {!Page_codec}). *)

  val encode : Buffer.t -> t -> unit

  (** [decode bytes ~pos] returns the key and the position after it. *)
  val decode : Bytes.t -> pos:int -> t * int
end

module Int : S with type t = int = struct
  type t = int

  let compare = Int.compare
  let to_string = string_of_int

  let encode buf v =
    Buffer.add_int64_le buf (Int64.of_int v)

  let decode bytes ~pos = (Int64.to_int (Bytes.get_int64_le bytes pos), pos + 8)
end

(** Lexicographic pair keys, e.g. (user_id, timestamp) composite indexes. *)
module Pair (A : S) (B : S) : S with type t = A.t * B.t = struct
  type t = A.t * B.t

  let compare (a1, b1) (a2, b2) =
    let c = A.compare a1 a2 in
    if c <> 0 then c else B.compare b1 b2

  let to_string (a, b) = Printf.sprintf "(%s,%s)" (A.to_string a) (B.to_string b)

  let encode buf (a, b) =
    A.encode buf a;
    B.encode buf b

  let decode bytes ~pos =
    let a, pos = A.decode bytes ~pos in
    let b, pos = B.decode bytes ~pos in
    ((a, b), pos)
end

module Str : S with type t = string = struct
  type t = string

  let compare = String.compare
  let to_string s = s

  let encode buf s =
    Buffer.add_int32_le buf (Int32.of_int (String.length s));
    Buffer.add_string buf s

  let decode bytes ~pos =
    let len = Int32.to_int (Bytes.get_int32_le bytes pos) in
    (Bytes.sub_string bytes (pos + 4) len, pos + 4 + len)
end
