(** Concurrent record heap: the allocation the paper assumes for the
    records that leaf pairs (v, p) point to (§3.1). Slots never move;
    reads and writes are indivisible; freed slots are recycled — defer
    {!free} through an {!Epoch} manager when racing readers. *)

type t

val create : unit -> t

val put : t -> string -> int
(** Allocate a record; the pointer is immediately valid in all domains. *)

exception Freed_record of int

val get : t -> int -> string
(** @raise Freed_record on a reclaimed slot. *)

val free : t -> int -> unit
val live_count : t -> int
val bytes_stored : t -> int
