(** A key extended with -infinity and +infinity. A node covers the
    half-open interval (low, high]; the leftmost node of a level has
    [low = Neg_inf] and the rightmost has [high = Pos_inf] (paper §2.1). *)

type 'k t = Neg_inf | Key of 'k | Pos_inf

val compare : ('k -> 'k -> int) -> 'k t -> 'k t -> int

val compare_key : ('k -> 'k -> int) -> 'k -> 'k t -> int
(** Position of a plain key relative to a bound. *)

val to_string : ('k -> string) -> 'k t -> string
val map : ('a -> 'b) -> 'a t -> 'b t
val is_key : 'k t -> bool

val get_key : 'k t -> 'k
(** @raise Invalid_argument on an infinite bound. *)
