(** Per-process operation statistics.

    One record per worker domain (no sharing, no atomics on the hot path);
    the driver merges them after a run. These counters are what the
    experiments report: lock footprint (E1), restarts (E4), link chases
    (E6), structure modifications (E3/E5). *)

type t = {
  mutable ops : int;  (** logical operations completed *)
  mutable gets : int;  (** node reads *)
  mutable puts : int;  (** node rewrites *)
  mutable lock_acquisitions : int;
  mutable locks_held : int;  (** currently held; maintained by tree code *)
  mutable max_locks_held : int;  (** the paper's "locks simultaneously" metric *)
  mutable link_follows : int;  (** right-moves via links *)
  mutable restarts : int;  (** wrong-node restarts (§5.2 case 2) *)
  mutable fwd_follows : int;  (** deleted-node forwarding follows (case 1) *)
  mutable retries : int;  (** lock-then-revalidate retries *)
  mutable splits : int;
  mutable merges : int;
  mutable redistributions : int;
  mutable enqueued : int;  (** compression queue insertions *)
  mutable requeued : int;  (** §5.4 requeue events *)
  mutable discarded : int;  (** §5.4 discard-stale events *)
  mutable waits : int;  (** backoff waits (e.g. §3.3 prime-block wait) *)
}

let create () =
  {
    ops = 0;
    gets = 0;
    puts = 0;
    lock_acquisitions = 0;
    locks_held = 0;
    max_locks_held = 0;
    link_follows = 0;
    restarts = 0;
    fwd_follows = 0;
    retries = 0;
    splits = 0;
    merges = 0;
    redistributions = 0;
    enqueued = 0;
    requeued = 0;
    discarded = 0;
    waits = 0;
  }

let reset t =
  t.ops <- 0;
  t.gets <- 0;
  t.puts <- 0;
  t.lock_acquisitions <- 0;
  t.locks_held <- 0;
  t.max_locks_held <- 0;
  t.link_follows <- 0;
  t.restarts <- 0;
  t.fwd_follows <- 0;
  t.retries <- 0;
  t.splits <- 0;
  t.merges <- 0;
  t.redistributions <- 0;
  t.enqueued <- 0;
  t.requeued <- 0;
  t.discarded <- 0;
  t.waits <- 0

(** Record a lock acquisition and track the simultaneous-locks high-water mark. *)
let on_lock t =
  t.lock_acquisitions <- t.lock_acquisitions + 1;
  t.locks_held <- t.locks_held + 1;
  if t.locks_held > t.max_locks_held then t.max_locks_held <- t.locks_held

let on_unlock t = t.locks_held <- t.locks_held - 1

(** Merge [src] into [dst] (summing counters, maxing high-water marks). *)
let merge ~into:dst src =
  dst.ops <- dst.ops + src.ops;
  dst.gets <- dst.gets + src.gets;
  dst.puts <- dst.puts + src.puts;
  dst.lock_acquisitions <- dst.lock_acquisitions + src.lock_acquisitions;
  dst.max_locks_held <- max dst.max_locks_held src.max_locks_held;
  dst.link_follows <- dst.link_follows + src.link_follows;
  dst.restarts <- dst.restarts + src.restarts;
  dst.fwd_follows <- dst.fwd_follows + src.fwd_follows;
  dst.retries <- dst.retries + src.retries;
  dst.splits <- dst.splits + src.splits;
  dst.merges <- dst.merges + src.merges;
  dst.redistributions <- dst.redistributions + src.redistributions;
  dst.enqueued <- dst.enqueued + src.enqueued;
  dst.requeued <- dst.requeued + src.requeued;
  dst.discarded <- dst.discarded + src.discarded;
  dst.waits <- dst.waits + src.waits

let pp fmt t =
  Format.fprintf fmt
    "ops=%d gets=%d puts=%d locks=%d max_held=%d links=%d restarts=%d fwd=%d retries=%d \
     splits=%d merges=%d redist=%d enq=%d requeue=%d discard=%d waits=%d"
    t.ops t.gets t.puts t.lock_acquisitions t.max_locks_held t.link_follows t.restarts
    t.fwd_follows t.retries t.splits t.merges t.redistributions t.enqueued t.requeued
    t.discarded t.waits

let to_string t = Format.asprintf "%a" pp t
