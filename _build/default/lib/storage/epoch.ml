(** Epoch-based reclamation of deleted pages (paper §5.3).

    The paper: "record in the node the time of its deletion, and store for
    each running process its starting time; a deleted node can be released
    when all currently running processes have started after its deletion
    time." This module is that scheme with a logical clock: every logical
    operation pins the current epoch for its duration; a page retired at
    epoch [e] is released once every pinned epoch exceeds [e].

    Wait-free pin/unpin; retire and reclaim serialise on a mutex (they are
    off the hot path — one retire per page deletion). *)

type retired = { epoch : int; ptr : Node.ptr }

type t = {
  global : int Atomic.t;
  pins : int Atomic.t array;  (** per-worker pinned epoch; [max_int] = idle *)
  mutable limbo : retired list;  (** newest first *)
  limbo_mutex : Mutex.t;
  reclaimed : int Atomic.t;
}

let stride = Repro_util.Counters.stride

let create ?(slots = 64) () =
  {
    global = Atomic.make 0;
    pins = Array.init (slots * stride) (fun _ -> Atomic.make max_int);
    limbo = [];
    limbo_mutex = Mutex.create ();
    reclaimed = Atomic.make 0;
  }

let nslots t = Array.length t.pins / stride

(** Pin the calling worker to the current epoch. Must be balanced with
    {!unpin}; not reentrant per slot. *)
let pin t ~slot =
  let a = t.pins.((slot mod nslots t) * stride) in
  Atomic.set a (Atomic.get t.global)

let unpin t ~slot = Atomic.set t.pins.((slot mod nslots t) * stride) max_int

let with_pin t ~slot f =
  pin t ~slot;
  Fun.protect ~finally:(fun () -> unpin t ~slot) f

(** Smallest epoch any worker is still pinned to. *)
let min_pinned t =
  let m = ref max_int in
  for i = 0 to nslots t - 1 do
    let v = Atomic.get t.pins.(i * stride) in
    if v < !m then m := v
  done;
  !m

(** Retire a deleted page: it will be handed to [release] (below, via
    {!reclaim}) once no process that could still read it remains. Advances
    the global epoch so the grace period starts immediately. *)
let retire t ptr =
  let e = Atomic.fetch_and_add t.global 1 in
  Mutex.lock t.limbo_mutex;
  t.limbo <- { epoch = e; ptr } :: t.limbo;
  Mutex.unlock t.limbo_mutex

(** Release every retired page whose grace period has passed, calling
    [release] on each. Returns how many were released. *)
let reclaim t ~release =
  let horizon = min_pinned t in
  Mutex.lock t.limbo_mutex;
  let keep, free = List.partition (fun r -> r.epoch >= horizon) t.limbo in
  t.limbo <- keep;
  Mutex.unlock t.limbo_mutex;
  List.iter (fun r -> release r.ptr) free;
  let n = List.length free in
  ignore (Atomic.fetch_and_add t.reclaimed n);
  n

let pending t =
  Mutex.lock t.limbo_mutex;
  let n = List.length t.limbo in
  Mutex.unlock t.limbo_mutex;
  n

let total_reclaimed t = Atomic.get t.reclaimed
