lib/storage/prime_block.ml: Array Atomic Node
