lib/storage/page_codec.ml: Array Bound Buffer Bytes Int32 Int64 Key Node Printf
