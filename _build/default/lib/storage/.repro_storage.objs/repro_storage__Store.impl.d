lib/storage/store.ml: Array Atomic Mutex Node Printf
