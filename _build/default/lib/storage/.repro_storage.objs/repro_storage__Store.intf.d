lib/storage/store.mli: Node
