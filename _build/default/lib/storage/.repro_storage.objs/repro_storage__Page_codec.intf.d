lib/storage/page_codec.mli: Buffer Bytes Key Node
