lib/storage/key.mli: Buffer Bytes
