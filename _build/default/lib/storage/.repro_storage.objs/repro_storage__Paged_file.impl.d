lib/storage/paged_file.ml: Bytes Unix
