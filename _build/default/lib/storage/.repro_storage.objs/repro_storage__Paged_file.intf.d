lib/storage/paged_file.mli: Bytes
