lib/storage/bound.mli:
