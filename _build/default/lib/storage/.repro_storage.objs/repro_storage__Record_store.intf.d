lib/storage/record_store.mli:
