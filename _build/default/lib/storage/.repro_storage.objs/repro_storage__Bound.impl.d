lib/storage/bound.ml:
