lib/storage/buffer_pool.ml: Array Bytes Hashtbl Paged_file
