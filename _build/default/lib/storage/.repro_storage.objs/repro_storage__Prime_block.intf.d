lib/storage/prime_block.mli: Node
