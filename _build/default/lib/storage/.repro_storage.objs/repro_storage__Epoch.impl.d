lib/storage/epoch.ml: Array Atomic Fun List Mutex Node Repro_util
