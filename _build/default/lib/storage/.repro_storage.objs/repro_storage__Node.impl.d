lib/storage/node.ml: Array Bound Format Key List Printf String
