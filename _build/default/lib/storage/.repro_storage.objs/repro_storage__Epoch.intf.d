lib/storage/epoch.mli: Node
