lib/storage/node.mli: Bound Format Key
