lib/storage/record_store.ml: Array Atomic Printf String
