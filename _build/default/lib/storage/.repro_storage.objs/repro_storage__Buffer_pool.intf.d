lib/storage/buffer_pool.mli: Bytes Paged_file
