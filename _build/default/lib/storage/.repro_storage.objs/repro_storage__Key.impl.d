lib/storage/key.ml: Buffer Bytes Int Int32 Int64 Printf String
