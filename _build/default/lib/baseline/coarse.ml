(** The trivial baseline: one global reader–writer lock around a
    sequential B+ tree. Readers share; any update is exclusive. This is
    the zero-concurrency point that every fine-grained scheme in the
    paper's related work improves upon. *)

open Repro_storage
open Repro_core

module Make (K : Key.S) = struct
  module B = Seq_btree.Make (K)

  type t = { tree : B.t; lock : Repro_util.Rwlock.t }

  let create ?(order = 8) () = { tree = B.create ~order (); lock = Repro_util.Rwlock.create () }

  let with_read t (ctx : Handle.ctx) f =
    Repro_util.Rwlock.read_lock t.lock;
    Stats.on_lock ctx.Handle.stats;
    Fun.protect
      ~finally:(fun () ->
        Stats.on_unlock ctx.Handle.stats;
        Repro_util.Rwlock.read_unlock t.lock)
      f

  let with_write t (ctx : Handle.ctx) f =
    Repro_util.Rwlock.write_lock t.lock;
    Stats.on_lock ctx.Handle.stats;
    Fun.protect
      ~finally:(fun () ->
        Stats.on_unlock ctx.Handle.stats;
        Repro_util.Rwlock.write_unlock t.lock)
      f

  let search t (ctx : Handle.ctx) k =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    with_read t ctx (fun () -> B.search t.tree k)

  let insert t (ctx : Handle.ctx) k v =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    with_write t ctx (fun () -> B.insert t.tree k v)

  let delete t (ctx : Handle.ctx) k =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    with_write t ctx (fun () -> B.delete t.tree k)

  let cardinal t = B.cardinal t.tree
  let height t = B.height t.tree
  let to_list t = B.to_list t.tree
end
