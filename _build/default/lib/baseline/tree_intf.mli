(** First-class uniform interface over the four concurrent trees (int
    keys), for the workload driver and the benches. *)

open Repro_core

type handle = {
  name : string;
  search : Handle.ctx -> int -> int option;
  insert : Handle.ctx -> int -> int -> [ `Ok | `Duplicate ];
  delete : Handle.ctx -> int -> bool;
  cardinal : unit -> int;
  height : unit -> int;
}

type impl = { impl_name : string; make : order:int -> handle }

val sagiv : ?enqueue_on_delete:bool -> unit -> impl

val sagiv_raw :
  ?enqueue_on_delete:bool -> order:int -> unit -> int Handle.t * handle
(** Like {!sagiv} but also hands back the raw tree, for running
    compaction workers or validation alongside. *)

val lehman_yao : impl
val lock_couple : impl

val lock_couple_optimistic : impl
(** Bayer–Schkolnick's improved protocol: optimistic writers (shared
    latches down, exclusive leaf, pessimistic retry on splits). *)

val lock_couple_preemptive : impl
(** Top-down preemptive splitting (Guibas–Sedgewick style): full nodes
    split on the way down, max two exclusive latches per writer. *)

val coarse : impl

val all : impl list
(** All six implementations, Sagiv first. *)
