(** Sequential in-memory B+ tree (no links, no concurrency).

    Serves two roles: the data structure under the coarse global lock
    baseline ({!Coarse}) and under the lock-coupling baseline's ancestor
    ({!Lock_couple} uses its own latched variant), and a simple reference
    for tests. Deletions are leaf-only (no rebalancing), matching the
    deletion regime of Lehman–Yao and of the paper's §4, so cross-tree
    comparisons are operation-for-operation fair. *)

open Repro_storage

module Make (K : Key.S) = struct
  type node =
    | Leaf of { mutable keys : K.t array; mutable vals : int array }
    | Internal of { mutable keys : K.t array; mutable kids : node array }

  type t = { mutable root : node; order : int (* k: capacity 2k keys *) }

  let create ?(order = 8) () =
    if order < 1 then invalid_arg "Seq_btree.create: order must be >= 1";
    { root = Leaf { keys = [||]; vals = [||] }; order }

  (* Count of keys strictly below [k]. *)
  let rank keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let insert_at arr i v =
    let n = Array.length arr in
    Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then v else arr.(j - 1))

  let remove_at arr i =
    let n = Array.length arr in
    Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

  let rec search_node node k =
    match node with
    | Leaf l ->
        let r = rank l.keys k in
        if r < Array.length l.keys && K.compare l.keys.(r) k = 0 then Some l.vals.(r)
        else None
    | Internal i ->
        (* child j covers keys < keys.(j); the key equal to a separator
           goes right (separators are copied up exclusive lower bounds) *)
        let r = rank i.keys k in
        let r =
          if r < Array.length i.keys && K.compare i.keys.(r) k = 0 then r + 1 else r
        in
        search_node i.kids.(r) k

  let search t k = search_node t.root k

  (* Insert into the subtree; on overflow return the separator and new
     right sibling to push into the parent. *)
  let rec insert_node ~order node k v : [ `Ok | `Duplicate | `Split of K.t * node ] =
    match node with
    | Leaf l ->
        let r = rank l.keys k in
        if r < Array.length l.keys && K.compare l.keys.(r) k = 0 then `Duplicate
        else begin
          l.keys <- insert_at l.keys r k;
          l.vals <- insert_at l.vals r v;
          if Array.length l.keys <= 2 * order then `Ok
          else begin
            let total = Array.length l.keys in
            let mid = total / 2 in
            let rkeys = Array.sub l.keys mid (total - mid)
            and rvals = Array.sub l.vals mid (total - mid) in
            l.keys <- Array.sub l.keys 0 mid;
            l.vals <- Array.sub l.vals 0 mid;
            (* separator = first key of the right sibling; search sends
               keys >= separator right *)
            `Split (rkeys.(0), Leaf { keys = rkeys; vals = rvals })
          end
        end
    | Internal i -> (
        let r = rank i.keys k in
        let r =
          if r < Array.length i.keys && K.compare i.keys.(r) k = 0 then r + 1 else r
        in
        match insert_node ~order i.kids.(r) k v with
        | (`Ok | `Duplicate) as res -> res
        | `Split (sep, right) ->
            i.keys <- insert_at i.keys r sep;
            i.kids <- insert_at i.kids (r + 1) right;
            if Array.length i.keys <= 2 * order then `Ok
            else begin
              let total = Array.length i.keys in
              let mid = total / 2 in
              let sep' = i.keys.(mid) in
              let rkeys = Array.sub i.keys (mid + 1) (total - mid - 1)
              and rkids = Array.sub i.kids (mid + 1) (total - mid) in
              i.keys <- Array.sub i.keys 0 mid;
              i.kids <- Array.sub i.kids 0 (mid + 1);
              `Split (sep', Internal { keys = rkeys; kids = rkids })
            end)

  let insert t k v : [ `Ok | `Duplicate ] =
    match insert_node ~order:t.order t.root k v with
    | `Ok -> `Ok
    | `Duplicate -> `Duplicate
    | `Split (sep, right) ->
        t.root <- Internal { keys = [| sep |]; kids = [| t.root; right |] };
        `Ok

  (* Leaf-only deletion, as in Lehman–Yao and the paper's §4. *)
  let rec delete_node node k =
    match node with
    | Leaf l ->
        let r = rank l.keys k in
        if r < Array.length l.keys && K.compare l.keys.(r) k = 0 then begin
          l.keys <- remove_at l.keys r;
          l.vals <- remove_at l.vals r;
          true
        end
        else false
    | Internal i ->
        let r = rank i.keys k in
        let r =
          if r < Array.length i.keys && K.compare i.keys.(r) k = 0 then r + 1 else r
        in
        delete_node i.kids.(r) k

  let delete t k = delete_node t.root k

  let rec cardinal_node = function
    | Leaf l -> Array.length l.keys
    | Internal i -> Array.fold_left (fun acc c -> acc + cardinal_node c) 0 i.kids

  let cardinal t = cardinal_node t.root

  let rec height_node = function
    | Leaf _ -> 1
    | Internal i -> 1 + height_node i.kids.(0)

  let height t = height_node t.root

  let rec to_list_node acc = function
    | Leaf l ->
        let here = ref [] in
        for i = Array.length l.keys - 1 downto 0 do
          here := (l.keys.(i), l.vals.(i)) :: !here
        done;
        acc @ !here
    | Internal i -> Array.fold_left to_list_node acc i.kids

  let to_list t = to_list_node [] t.root
end
