(** Sequential in-memory B+ tree (no links, no concurrency): the data
    structure under the coarse-lock baseline and a simple reference for
    tests. Deletions are leaf-only, matching the other trees' regime so
    comparisons are operation-for-operation fair. *)

open Repro_storage

module Make (K : Key.S) : sig
  type t

  val create : ?order:int -> unit -> t
  val search : t -> K.t -> int option
  val insert : t -> K.t -> int -> [ `Ok | `Duplicate ]
  val delete : t -> K.t -> bool
  val cardinal : t -> int
  val height : t -> int
  val to_list : t -> (K.t * int) list
end
