(** The trivial baseline: a global reader–writer lock around a sequential
    B+ tree. Readers share; updates are exclusive. *)

open Repro_storage
open Repro_core

module Make (K : Key.S) : sig
  type t

  val create : ?order:int -> unit -> t
  val search : t -> Handle.ctx -> K.t -> int option
  val insert : t -> Handle.ctx -> K.t -> int -> [ `Ok | `Duplicate ]
  val delete : t -> Handle.ctx -> K.t -> bool
  val cardinal : t -> int
  val height : t -> int
  val to_list : t -> (K.t * int) list
end
