lib/baseline/disk_btree.mli: Buffer_pool Key Repro_storage
