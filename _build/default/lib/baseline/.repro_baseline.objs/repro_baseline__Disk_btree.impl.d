lib/baseline/disk_btree.ml: Array Bound Buffer Buffer_pool Bytes Int32 Int64 Key List Node Page_codec Printf Repro_storage
