lib/baseline/tree_intf.mli: Handle Repro_core
