lib/baseline/lock_couple.mli: Handle Key Repro_core Repro_storage
