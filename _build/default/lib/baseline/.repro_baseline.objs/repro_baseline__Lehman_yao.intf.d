lib/baseline/lehman_yao.mli: Handle Key Node Repro_core Repro_storage
