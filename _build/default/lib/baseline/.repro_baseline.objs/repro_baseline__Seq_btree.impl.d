lib/baseline/seq_btree.ml: Array Key Repro_storage
