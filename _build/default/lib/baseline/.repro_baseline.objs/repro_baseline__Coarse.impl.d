lib/baseline/coarse.ml: Fun Handle Key Repro_core Repro_storage Repro_util Seq_btree Stats
