lib/baseline/lock_couple.ml: Array Handle Key List Repro_core Repro_storage Repro_util Stats
