lib/baseline/tree_intf.ml: Coarse Handle Lehman_yao Lock_couple Repro_core Repro_storage Sagiv
