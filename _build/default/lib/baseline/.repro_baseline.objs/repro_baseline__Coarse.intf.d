lib/baseline/coarse.mli: Handle Key Repro_core Repro_storage
