lib/baseline/lehman_yao.ml: Bound Handle Key Node Prime_block Repro_core Repro_storage Repro_util Stats Store
