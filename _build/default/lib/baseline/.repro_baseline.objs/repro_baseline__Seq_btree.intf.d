lib/baseline/seq_btree.mli: Key Repro_storage
