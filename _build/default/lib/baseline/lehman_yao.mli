(** The Lehman–Yao B-link tree (TODS 1981): the algorithm the paper
    improves on, on the same storage substrate. Readers take no locks; an
    inserter that splits keeps the split node's lock while locating and
    locking the parent (up to three simultaneous locks); deletion is
    leaf-only and nothing is ever compressed. *)

open Repro_storage
open Repro_core

module Make (K : Key.S) : sig
  type t

  val create : ?order:int -> unit -> t
  val search : t -> Handle.ctx -> K.t -> Node.ptr option
  val insert : t -> Handle.ctx -> K.t -> Node.ptr -> [ `Ok | `Duplicate ]
  val delete : t -> Handle.ctx -> K.t -> bool
  val height : t -> int
  val cardinal : t -> int

  val live_nodes : t -> int
  (** Pages in use — grows monotonically (no compression, §1's critique). *)
end
