(** Disk-resident sequential B+ tree: nodes live in fixed-size pages of a
    {!Paged_file}, accessed through a {!Buffer_pool}, encoded with
    {!Page_codec} — the full "each node corresponds to a page or block of
    secondary storage" stack of §2.2, runnable against a real file.

    Sequential by design (the concurrent algorithms run on the in-memory
    {!Store}; DESIGN.md §2 records that substitution): it serves as the
    durable baseline and as the end-to-end exercise of the storage stack —
    reopening the file recovers the tree.

    Page 0 is the metadata page (magic, order, root page, height, key
    count); every other page holds one encoded node. Leaves are chained
    with links for range scans, exactly like their in-memory cousins. *)

open Repro_storage

let magic = 0x44_42_54_31 (* "DBT1" *)

exception Corrupt of string
exception Node_too_large of int

module Make (K : Key.S) = struct
  module C = Page_codec.Make (K)

  type t = {
    pool : Buffer_pool.t;
    order : int;
    mutable root : int;  (** page of the root node *)
    mutable height : int;
    mutable count : int;
  }

  (* -- metadata page -- *)

  let write_meta t =
    let page = Buffer_pool.pin t.pool 0 in
    Bytes.fill page 0 (Bytes.length page) '\000';
    Bytes.set_int32_le page 0 (Int32.of_int magic);
    Bytes.set_int32_le page 4 (Int32.of_int t.order);
    Bytes.set_int64_le page 8 (Int64.of_int t.root);
    Bytes.set_int32_le page 16 (Int32.of_int t.height);
    Bytes.set_int64_le page 20 (Int64.of_int t.count);
    Buffer_pool.unpin t.pool 0 ~dirty:true

  let read_meta pool =
    let page = Buffer_pool.pin pool 0 in
    let r =
      if Int32.to_int (Bytes.get_int32_le page 0) <> magic then None
      else
        Some
          ( Int32.to_int (Bytes.get_int32_le page 4),
            Int64.to_int (Bytes.get_int64_le page 8),
            Int32.to_int (Bytes.get_int32_le page 16),
            Int64.to_int (Bytes.get_int64_le page 20) )
    in
    Buffer_pool.unpin pool 0 ~dirty:false;
    r

  (* -- node IO -- *)

  let read_node t page : K.t Node.t =
    let buf = Buffer_pool.pin t.pool page in
    let node =
      try fst (C.decode buf ~pos:0)
      with Page_codec.Corrupt m ->
        Buffer_pool.unpin t.pool page ~dirty:false;
        raise (Corrupt (Printf.sprintf "page %d: %s" page m))
    in
    Buffer_pool.unpin t.pool page ~dirty:false;
    node

  let write_node t page (node : K.t Node.t) =
    let b = Buffer.create 256 in
    C.encode b node;
    let len = Buffer.length b in
    let frame = Buffer_pool.pin t.pool page in
    if len > Bytes.length frame then begin
      Buffer_pool.unpin t.pool page ~dirty:false;
      raise (Node_too_large len)
    end;
    Bytes.fill frame 0 (Bytes.length frame) '\000';
    Buffer.blit b 0 frame 0 len;
    Buffer_pool.unpin t.pool page ~dirty:true

  let alloc_node t node =
    let page = Buffer_pool.alloc t.pool in
    Buffer_pool.unpin t.pool page ~dirty:false;
    write_node t page node;
    page

  (* -- create / open -- *)

  (** Largest k whose full node is guaranteed to fit a page, assuming
      [key_bytes] per encoded key (8 for {!Key.Int}). *)
  let max_order ~page_size ~key_bytes =
    (* header <= 40 bytes + bounds <= 2*(1+key_bytes); internal: 2k keys +
       (2k+1) pointers of 8 bytes *)
    let fixed = 48 + (2 * (1 + key_bytes)) + 8 in
    max 1 ((page_size - fixed) / (2 * (key_bytes + 8)))

  let create ?(order = 32) pool =
    let t = { pool; order; root = -1; height = 1; count = 0 } in
    (* page 0 = meta *)
    let m = Buffer_pool.alloc pool in
    Buffer_pool.unpin pool m ~dirty:false;
    if m <> 0 then raise (Corrupt "paged file not empty");
    let root =
      alloc_node t
        {
          Node.level = 0;
          keys = [||];
          ptrs = [||];
          low = Bound.Neg_inf;
          high = Bound.Pos_inf;
          link = None;
          is_root = true;
          state = Node.Live;
        }
    in
    t.root <- root;
    write_meta t;
    t

  (** Open an existing tree in [pool]'s file.
      @raise Corrupt when page 0 is not a tree header. *)
  let open_existing pool =
    match read_meta pool with
    | None -> raise (Corrupt "bad meta page")
    | Some (order, root, height, count) -> { pool; order; root; height; count }

  let flush t =
    write_meta t;
    Buffer_pool.flush_all t.pool

  (* -- operations (sequential) -- *)

  let rank keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let child_for (n : K.t Node.t) k = n.Node.ptrs.(rank n.Node.keys k)

  let rec search_from t page k =
    let n = read_node t page in
    if Node.is_leaf n then
      let r = rank n.Node.keys k in
      if r < Node.nkeys n && K.compare n.Node.keys.(r) k = 0 then Some n.Node.ptrs.(r)
      else None
    else search_from t (child_for n k) k

  let search t k = search_from t t.root k

  let insert_at arr i v =
    let n = Array.length arr in
    Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then v else arr.(j - 1))

  let remove_at arr i =
    let n = Array.length arr in
    Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

  (* Insert into the subtree at [page]; on split, returns the new right
     sibling's (boundary, page). *)
  let rec insert_node t page k v : [ `Ok | `Duplicate | `Split of K.t * int ] =
    let n = read_node t page in
    if Node.is_leaf n then begin
      let r = rank n.Node.keys k in
      if r < Node.nkeys n && K.compare n.Node.keys.(r) k = 0 then `Duplicate
      else begin
        let keys = insert_at n.Node.keys r k and ptrs = insert_at n.Node.ptrs r v in
        if Array.length keys <= 2 * t.order then begin
          write_node t page { n with Node.keys; ptrs };
          `Ok
        end
        else begin
          let total = Array.length keys in
          let mid = (total + 1) / 2 in
          let sep = keys.(mid - 1) in
          let right =
            {
              n with
              Node.keys = Array.sub keys mid (total - mid);
              ptrs = Array.sub ptrs mid (total - mid);
              low = Bound.Key sep;
              is_root = false;
            }
          in
          let rp = alloc_node t right in
          write_node t page
            {
              n with
              Node.keys = Array.sub keys 0 mid;
              ptrs = Array.sub ptrs 0 mid;
              high = Bound.Key sep;
              link = Some rp;
              is_root = false;
            };
          `Split (sep, rp)
        end
      end
    end
    else begin
      let ci = rank n.Node.keys k in
      match insert_node t n.Node.ptrs.(ci) k v with
      | (`Ok | `Duplicate) as r -> r
      | `Split (sep, rp) ->
          let keys = insert_at n.Node.keys ci sep
          and ptrs = insert_at n.Node.ptrs (ci + 1) rp in
          if Array.length keys <= 2 * t.order then begin
            write_node t page { n with Node.keys; ptrs };
            `Ok
          end
          else begin
            let total = Array.length keys in
            let mid = total / 2 in
            let sep' = keys.(mid) in
            let right =
              {
                n with
                Node.keys = Array.sub keys (mid + 1) (total - mid - 1);
                ptrs = Array.sub ptrs (mid + 1) (total - mid);
                low = Bound.Key sep';
                is_root = false;
              }
            in
            let rp = alloc_node t right in
            write_node t page
              {
                n with
                Node.keys = Array.sub keys 0 mid;
                ptrs = Array.sub ptrs 0 (mid + 1);
                high = Bound.Key sep';
                link = Some rp;
                is_root = false;
              };
            `Split (sep', rp)
          end
    end

  let insert t k v : [ `Ok | `Duplicate ] =
    match insert_node t t.root k v with
    | `Ok ->
        t.count <- t.count + 1;
        `Ok
    | `Duplicate -> `Duplicate
    | `Split (sep, rp) ->
        let old_root = t.root in
        let level = t.height in
        let new_root =
          {
            Node.level;
            keys = [| sep |];
            ptrs = [| old_root; rp |];
            low = Bound.Neg_inf;
            high = Bound.Pos_inf;
            link = None;
            is_root = true;
            state = Node.Live;
          }
        in
        t.root <- alloc_node t new_root;
        t.height <- t.height + 1;
        t.count <- t.count + 1;
        `Ok

  let rec delete_node t page k =
    let n = read_node t page in
    if Node.is_leaf n then begin
      let r = rank n.Node.keys k in
      if r < Node.nkeys n && K.compare n.Node.keys.(r) k = 0 then begin
        write_node t page
          { n with Node.keys = remove_at n.Node.keys r; ptrs = remove_at n.Node.ptrs r };
        true
      end
      else false
    end
    else delete_node t (child_for n k) k

  let delete t k =
    let found = delete_node t t.root k in
    if found then t.count <- t.count - 1;
    found

  let cardinal t = t.count
  let height t = t.height

  (** Ordered fold over [lo <= key <= hi] along the on-disk leaf chain. *)
  let fold_range t ~lo ~hi ~init f =
    if K.compare lo hi > 0 then init
    else begin
      (* descend to lo's leaf *)
      let rec down page =
        let n = read_node t page in
        if Node.is_leaf n then page else down (child_for n lo)
      in
      let rec walk page acc =
        let n = read_node t page in
        let acc = ref acc in
        Array.iteri
          (fun i k ->
            if K.compare k lo >= 0 && K.compare k hi <= 0 then
              acc := f !acc k n.Node.ptrs.(i))
          n.Node.keys;
        match n.Node.link with
        | Some next when Bound.compare_key K.compare hi n.Node.high > 0 ->
            walk next !acc
        | _ -> !acc
      in
      walk (down t.root) init
    end

  (** Fold over every pair in order (whole leaf chain). *)
  let fold_all t ~init f =
    let rec down page =
      let n = read_node t page in
      if Node.is_leaf n then page else down n.Node.ptrs.(0)
    in
    let rec walk page acc =
      let n = read_node t page in
      let acc = ref acc in
      Array.iteri (fun i k -> acc := f !acc k n.Node.ptrs.(i)) n.Node.keys;
      match n.Node.link with Some next -> walk next !acc | None -> !acc
    in
    walk (down t.root) init

  let to_list t = List.rev (fold_all t ~init:[] (fun acc k v -> (k, v) :: acc))

  (** Buffer-pool statistics for the cache experiments. *)
  let pool_stats t = Buffer_pool.stats t.pool

  let hit_ratio t = Buffer_pool.hit_ratio t.pool
end
