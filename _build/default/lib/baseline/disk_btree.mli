(** Disk-resident sequential B+ tree: one encoded node per fixed-size page
    of a {!Repro_storage.Paged_file}, accessed through a
    {!Repro_storage.Buffer_pool}; page 0 is the metadata page. Reopening
    the file recovers the tree. Sequential by design — the concurrent
    algorithms run on the in-memory store (DESIGN.md §2). *)

open Repro_storage

exception Corrupt of string
exception Node_too_large of int

module Make (K : Key.S) : sig
  type t

  val max_order : page_size:int -> key_bytes:int -> int
  (** Largest k whose full node is guaranteed to fit one page
      ([key_bytes] = 8 for {!Key.Int}). *)

  val create : ?order:int -> Buffer_pool.t -> t
  (** Initialise a tree in an empty paged file.
      @raise Corrupt if the file is not empty. *)

  val open_existing : Buffer_pool.t -> t
  (** @raise Corrupt when page 0 is not a tree header. *)

  val flush : t -> unit
  (** Write the metadata page and all dirty frames; sync. *)

  val search : t -> K.t -> int option
  val insert : t -> K.t -> int -> [ `Ok | `Duplicate ]

  val delete : t -> K.t -> bool
  (** Leaf-only, like the other baselines. *)

  val cardinal : t -> int
  val height : t -> int
  val fold_range : t -> lo:K.t -> hi:K.t -> init:'a -> ('a -> K.t -> int -> 'a) -> 'a
  val fold_all : t -> init:'a -> ('a -> K.t -> int -> 'a) -> 'a
  val to_list : t -> (K.t * int) list
  val pool_stats : t -> Buffer_pool.stats
  val hit_ratio : t -> float
end
