(** The Lehman–Yao B-link tree (ACM TODS 1981) — the algorithm the paper
    improves on, implemented faithfully as the principal baseline.

    Differences from {!Repro_core.Sagiv}:
    - An inserter that splits a node {e keeps that node's lock} while it
      locates and locks the parent, and the parent-level right-move uses
      lock coupling — so an insertion holds up to {b three} locks
      simultaneously (experiment E1 measures exactly this);
    - updaters therefore cannot overtake one another on the way up;
    - deletion is leaf-only and nothing is ever compressed: nodes only
      grow in number (the space/height cost experiment E3 quantifies).

    Readers take no locks, as in the paper. The same storage substrate
    (store, page latches, prime block) is used so comparisons measure the
    algorithms, not the infrastructure. *)

open Repro_storage
open Repro_core

module Make (K : Key.S) = struct
  module N = Node.Make (K)

  type t = { store : K.t Store.t; prime : Prime_block.t; order : int }

  let create ?(order = 8) () =
    let store = Store.create () in
    let root = Store.alloc store (N.empty_root ()) in
    { store; prime = Prime_block.create ~root_ptr:root; order }

  let get t (ctx : Handle.ctx) ptr =
    ctx.Handle.stats.Stats.gets <- ctx.Handle.stats.Stats.gets + 1;
    Store.get t.store ptr

  let put t (ctx : Handle.ctx) ptr n =
    ctx.Handle.stats.Stats.puts <- ctx.Handle.stats.Stats.puts + 1;
    Store.put t.store ptr n

  let lock t (ctx : Handle.ctx) ptr =
    Store.lock t.store ptr;
    Stats.on_lock ctx.Handle.stats

  let unlock t (ctx : Handle.ctx) ptr =
    Stats.on_unlock ctx.Handle.stats;
    Store.unlock t.store ptr

  let kvb k b = Bound.compare_key K.compare k b

  (* Descend to [to_level], stacking the nodes through which we move down
     (Fig 5's movedown-and-stack; LY's procedure is the same). *)
  let down t ctx k ~to_level =
    let prime = Prime_block.read t.prime in
    let rec go ptr level stack =
      let n = get t ctx ptr in
      if kvb k n.Node.high > 0 then begin
        ctx.Handle.stats.Stats.link_follows <- ctx.Handle.stats.Stats.link_follows + 1;
        match n.Node.link with Some p -> go p level stack | None -> assert false
      end
      else if level = to_level then (ptr, n, stack)
      else go (N.child_for n k) (level - 1) (ptr :: stack)
    in
    go (Prime_block.root prime) (prime.Prime_block.levels - 1) []

  (* Right-move while holding locks: lock the next node before releasing
     the current one (LY's move.right). Up to 2 locks held transiently. *)
  let move_right_locked t ctx k ptr =
    let rec go ptr n =
      if kvb k n.Node.high > 0 then begin
        ctx.Handle.stats.Stats.link_follows <- ctx.Handle.stats.Stats.link_follows + 1;
        match n.Node.link with
        | Some p ->
            lock t ctx p;
            unlock t ctx ptr;
            go p (get t ctx p)
        | None -> assert false
      end
      else (ptr, n)
    in
    go ptr (get t ctx ptr)

  let search t (ctx : Handle.ctx) k =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    (* [down] already right-moves at each level, including the leaf level *)
    let _ptr, n, _stack = down t ctx k ~to_level:0 in
    N.leaf_find n k

  (* Wait (§3.3 scenario) until the prime block has a level above [level]
     and return its leftmost node. *)
  let wait_for_level t (ctx : Handle.ctx) ~level =
    let backoff = Repro_util.Backoff.create () in
    let rec go () =
      let prime = Prime_block.read t.prime in
      match Prime_block.leftmost_at prime ~level with
      | Some p -> p
      | None ->
          ctx.Handle.stats.Stats.waits <- ctx.Handle.stats.Stats.waits + 1;
          Repro_util.Backoff.once backoff;
          go ()
    in
    go ()

  let insert t (ctx : Handle.ctx) k payload : [ `Ok | `Duplicate ] =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    let lptr, _n, stack = down t ctx k ~to_level:0 in
    lock t ctx lptr;
    let lptr, leaf = move_right_locked t ctx k lptr in
    (* Invariant of the loop: [aptr] is locked and is the correct node at
       [level] for the pair (ikey, iptr). *)
    let rec do_insertion ~level ~ikey ~iptr aptr (a : K.t Node.t) ~stack =
      if level = 0 && N.mem a ikey then begin
        unlock t ctx aptr;
        `Duplicate
      end
      else if Node.is_safe ~order:t.order a then begin
        let a' =
          if level = 0 then N.leaf_insert a ikey iptr else N.internal_insert a ikey iptr
        in
        put t ctx aptr a';
        unlock t ctx aptr;
        `Ok
      end
      else if a.Node.is_root then begin
        (* Split the root while holding its lock; install the new root
           before releasing, so only one root can be created. *)
        let bptr = Store.reserve t.store in
        let a', b =
          if level = 0 then N.leaf_split a ikey iptr ~right_ptr:bptr
          else N.internal_split a ikey iptr ~right_ptr:bptr
        in
        put t ctx bptr b;
        put t ctx aptr a';
        ctx.Handle.stats.Stats.splits <- ctx.Handle.stats.Stats.splits + 1;
        let sep = Bound.get_key a'.Node.high in
        let rptr =
          Store.alloc t.store
            (N.new_root ~level:(level + 1) ~left_ptr:aptr ~right_ptr:bptr ~sep)
        in
        Prime_block.push_root t.prime ~root_ptr:rptr;
        unlock t ctx aptr;
        `Ok
      end
      else begin
        (* Split, then — the LY discipline — find and lock the parent
           BEFORE releasing this node's lock, so no updater can overtake
           us on the way up. Three locks held at the peak. *)
        let bptr = Store.reserve t.store in
        let a', b =
          if level = 0 then N.leaf_split a ikey iptr ~right_ptr:bptr
          else N.internal_split a ikey iptr ~right_ptr:bptr
        in
        put t ctx bptr b;
        put t ctx aptr a';
        ctx.Handle.stats.Stats.splits <- ctx.Handle.stats.Stats.splits + 1;
        let sep = Bound.get_key a'.Node.high in
        let pptr, stack =
          match stack with
          | p :: rest -> (p, rest)
          | [] -> (wait_for_level t ctx ~level:(level + 1), [])
        in
        lock t ctx pptr;
        let pptr, pnode = move_right_locked t ctx sep pptr in
        unlock t ctx aptr;
        do_insertion ~level:(level + 1) ~ikey:sep ~iptr:bptr pptr pnode ~stack
      end
    in
    do_insertion ~level:0 ~ikey:k ~iptr:payload lptr leaf ~stack

  (* LY deletion: "search for the leaf, lock it, delete, unlock" — no
     restructuring ever. *)
  let delete t (ctx : Handle.ctx) k =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    let lptr, _n, _stack = down t ctx k ~to_level:0 in
    lock t ctx lptr;
    let lptr, leaf = move_right_locked t ctx k lptr in
    match N.leaf_delete leaf k with
    | None ->
        unlock t ctx lptr;
        false
    | Some leaf' ->
        put t ctx lptr leaf';
        unlock t ctx lptr;
        true

  let height t = (Prime_block.read t.prime).Prime_block.levels

  let cardinal t =
    let prime = Prime_block.read t.prime in
    let rec walk ptr acc =
      let n = Store.get t.store ptr in
      let acc = acc + Node.nkeys n in
      match n.Node.link with Some p -> walk p acc | None -> acc
    in
    match Prime_block.leftmost_at prime ~level:0 with Some p -> walk p 0 | None -> 0

  let live_nodes t = Store.live_count t.store
end
