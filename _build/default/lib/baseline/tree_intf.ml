(** First-class uniform interface over the four concurrent trees
    (int keys), so the workload driver and the benches can sweep
    implementations. *)

open Repro_core

type handle = {
  name : string;
  search : Handle.ctx -> int -> int option;
  insert : Handle.ctx -> int -> int -> [ `Ok | `Duplicate ];
  delete : Handle.ctx -> int -> bool;
  cardinal : unit -> int;
  height : unit -> int;
}

type impl = { impl_name : string; make : order:int -> handle }

module Sagiv_int = Sagiv.Make (Repro_storage.Key.Int)
module Ly_int = Lehman_yao.Make (Repro_storage.Key.Int)
module Lc_int = Lock_couple.Make (Repro_storage.Key.Int)
module Coarse_int = Coarse.Make (Repro_storage.Key.Int)

let sagiv ?(enqueue_on_delete = false) () =
  {
    impl_name = "sagiv";
    make =
      (fun ~order ->
        let t = Sagiv_int.create ~order ~enqueue_on_delete () in
        {
          name = "sagiv";
          search = Sagiv_int.search t;
          insert = Sagiv_int.insert t;
          delete = Sagiv_int.delete t;
          cardinal = (fun () -> Sagiv_int.cardinal t);
          height = (fun () -> Sagiv_int.height t);
        });
  }

(** Like {!sagiv} but also hands back the raw tree, for benches that run
    compaction workers alongside. *)
let sagiv_raw ?(enqueue_on_delete = false) ~order () =
  let t = Sagiv_int.create ~order ~enqueue_on_delete () in
  ( t,
    {
      name = "sagiv";
      search = Sagiv_int.search t;
      insert = Sagiv_int.insert t;
      delete = Sagiv_int.delete t;
      cardinal = (fun () -> Sagiv_int.cardinal t);
      height = (fun () -> Sagiv_int.height t);
    } )

let lehman_yao =
  {
    impl_name = "lehman-yao";
    make =
      (fun ~order ->
        let t = Ly_int.create ~order () in
        {
          name = "lehman-yao";
          search = Ly_int.search t;
          insert = Ly_int.insert t;
          delete = Ly_int.delete t;
          cardinal = (fun () -> Ly_int.cardinal t);
          height = (fun () -> Ly_int.height t);
        });
  }

let lock_couple =
  {
    impl_name = "lock-couple";
    make =
      (fun ~order ->
        let t = Lc_int.create ~order () in
        {
          name = "lock-couple";
          search = Lc_int.search t;
          insert = Lc_int.insert t;
          delete = Lc_int.delete t;
          cardinal = (fun () -> Lc_int.cardinal t);
          height = (fun () -> Lc_int.height t);
        });
  }

(** Bayer–Schkolnick's improved protocol: optimistic writers (shared
    latches down, exclusive leaf, pessimistic retry on splits). *)
let lock_couple_optimistic =
  {
    impl_name = "lc-optimistic";
    make =
      (fun ~order ->
        let t = Lc_int.create ~order () in
        {
          name = "lc-optimistic";
          search = Lc_int.search t;
          insert = Lc_int.insert_optimistic t;
          delete = Lc_int.delete_optimistic t;
          cardinal = (fun () -> Lc_int.cardinal t);
          height = (fun () -> Lc_int.height t);
        });
  }

(** Top-down preemptive splitting (Guibas–Sedgewick style): full nodes
    split on the way down, max two exclusive latches per writer. *)
let lock_couple_preemptive =
  {
    impl_name = "lc-preemptive";
    make =
      (fun ~order ->
        let t = Lc_int.create ~order () in
        {
          name = "lc-preemptive";
          search = Lc_int.search t;
          insert = Lc_int.insert_preemptive t;
          delete = Lc_int.delete_optimistic t;
          cardinal = (fun () -> Lc_int.cardinal t);
          height = (fun () -> Lc_int.height t);
        });
  }

let coarse =
  {
    impl_name = "coarse";
    make =
      (fun ~order ->
        let t = Coarse_int.create ~order () in
        {
          name = "coarse";
          search = Coarse_int.search t;
          insert = Coarse_int.insert t;
          delete = Coarse_int.delete t;
          cardinal = (fun () -> Coarse_int.cardinal t);
          height = (fun () -> Coarse_int.height t);
        });
  }

let all = [ sagiv (); lehman_yao; lock_couple; lock_couple_optimistic; lock_couple_preemptive; coarse ]
