(** Top-down lock-coupling B+ tree (Bayer–Schkolnick style): every
    process, readers included, latches each node before accessing it
    (crabbing); writers keep the whole unsafe suffix of the path latched.
    The lock regime whose cost the B-link designs eliminate. *)

open Repro_storage
open Repro_core

module Make (K : Key.S) : sig
  type t

  val create : ?order:int -> unit -> t
  val search : t -> Handle.ctx -> K.t -> int option
  val insert : t -> Handle.ctx -> K.t -> int -> [ `Ok | `Duplicate ]
  val delete : t -> Handle.ctx -> K.t -> bool

  val insert_optimistic : t -> Handle.ctx -> K.t -> int -> [ `Ok | `Duplicate ]
  (** Bayer–Schkolnick's improved writer: shared latches down, exclusive
      on the leaf only, pessimistic {!insert} retry when the leaf would
      split (counted in [Stats.retries]). *)

  val delete_optimistic : t -> Handle.ctx -> K.t -> bool

  val insert_preemptive : t -> Handle.ctx -> K.t -> int -> [ `Ok | `Duplicate ]
  (** Top-down preemptive splitting (Guibas–Sedgewick style, the paper's
      §1 reference [5]): every full node on the descent is split eagerly,
      so splits never propagate and a writer holds at most two exclusive
      latches. Costs eager splits (lower occupancy). *)

  val cardinal : t -> int
  val height : t -> int
end
