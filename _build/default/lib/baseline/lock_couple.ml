(** Top-down lock-coupling B+ tree (Bayer & Schkolnick 1977 style) — the
    representative "top-down" baseline of the paper's introduction.

    Every process, {e including readers}, latches each node before
    accessing it and releases the previous latch only after acquiring the
    next (crabbing). Readers take shared latches (2 held at a time).
    Writers take exclusive latches and keep every {e unsafe} ancestor
    latched until the leaf is reached, releasing the whole set once a safe
    node is passed — so a writer's simultaneous-lock count equals the
    length of its unsafe suffix (up to the whole path). This is the lock
    regime whose cost Sagiv's and Lehman–Yao's designs eliminate;
    experiments E1/E2/E6 quantify the difference. *)

open Repro_storage
open Repro_core

module Make (K : Key.S) = struct
  type node = {
    latch : Repro_util.Rwlock.t;
    mutable keys : K.t array;
    mutable kids : node array;  (** internal only *)
    mutable vals : int array;  (** leaf only *)
    mutable leaf : bool;
  }

  type t = {
    anchor : Repro_util.Rwlock.t;  (** guards [root] *)
    mutable root : node;
    order : int;
  }

  let new_leaf () =
    { latch = Repro_util.Rwlock.create (); keys = [||]; kids = [||]; vals = [||]; leaf = true }

  let create ?(order = 8) () =
    if order < 1 then invalid_arg "Lock_couple.create: order must be >= 1";
    { anchor = Repro_util.Rwlock.create (); root = new_leaf (); order }

  let rank keys k =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Child index for [k]: keys >= separator go right. *)
  let child_index n k =
    let r = rank n.keys k in
    if r < Array.length n.keys && K.compare n.keys.(r) k = 0 then r + 1 else r

  let insert_at arr i v =
    let n = Array.length arr in
    Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then v else arr.(j - 1))

  let remove_at arr i =
    let n = Array.length arr in
    Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

  let read_lock (ctx : Handle.ctx) rw =
    Repro_util.Rwlock.read_lock rw;
    Stats.on_lock ctx.Handle.stats

  let read_unlock (ctx : Handle.ctx) rw =
    Stats.on_unlock ctx.Handle.stats;
    Repro_util.Rwlock.read_unlock rw

  let write_lock (ctx : Handle.ctx) rw =
    Repro_util.Rwlock.write_lock rw;
    Stats.on_lock ctx.Handle.stats

  let write_unlock (ctx : Handle.ctx) rw =
    Stats.on_unlock ctx.Handle.stats;
    Repro_util.Rwlock.write_unlock rw

  (* Reader crabbing: hold at most two shared latches at a time. *)
  let search t (ctx : Handle.ctx) k =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    read_lock ctx t.anchor;
    let n = t.root in
    read_lock ctx n.latch;
    read_unlock ctx t.anchor;
    let rec go n =
      if n.leaf then begin
        let r = rank n.keys k in
        let res =
          if r < Array.length n.keys && K.compare n.keys.(r) k = 0 then Some n.vals.(r)
          else None
        in
        read_unlock ctx n.latch;
        res
      end
      else begin
        let c = n.kids.(child_index n k) in
        read_lock ctx c.latch;
        read_unlock ctx n.latch;
        go c
      end
    in
    go n

  (* A node is insert-safe when adding one pair cannot split it. *)
  let insert_safe t n = Array.length n.keys < 2 * t.order

  (* Writer descent: exclusive crabbing; when a child is safe, release all
     currently held ancestor latches. Returns the path of still-latched
     nodes (leaf first) and whether the anchor is still held. *)
  let writer_descend t (ctx : Handle.ctx) k ~safe =
    write_lock ctx t.anchor;
    let n = t.root in
    write_lock ctx n.latch;
    let anchor_held = ref true in
    let release_ancestors held =
      List.iter (fun m -> write_unlock ctx m.latch) held;
      if !anchor_held then begin
        write_unlock ctx t.anchor;
        anchor_held := false
      end
    in
    if safe n then release_ancestors [];
    let rec go n held =
      if n.leaf then n :: held
      else begin
        let c = n.kids.(child_index n k) in
        write_lock ctx c.latch;
        let held = n :: held in
        if safe c then begin
          release_ancestors held;
          go c []
        end
        else go c held
      end
    in
    let path = go n [] in
    (path, !anchor_held)

  (* Split [n] in place, returning (separator, right sibling). *)
  let split_node n =
    if n.leaf then begin
      let total = Array.length n.keys in
      let mid = total / 2 in
      let right =
        {
          latch = Repro_util.Rwlock.create ();
          keys = Array.sub n.keys mid (total - mid);
          kids = [||];
          vals = Array.sub n.vals mid (total - mid);
          leaf = true;
        }
      in
      n.keys <- Array.sub n.keys 0 mid;
      n.vals <- Array.sub n.vals 0 mid;
      (right.keys.(0), right)
    end
    else begin
      let total = Array.length n.keys in
      let mid = total / 2 in
      let sep = n.keys.(mid) in
      let right =
        {
          latch = Repro_util.Rwlock.create ();
          keys = Array.sub n.keys (mid + 1) (total - mid - 1);
          kids = Array.sub n.kids (mid + 1) (total - mid);
          vals = [||];
          leaf = false;
        }
      in
      n.keys <- Array.sub n.keys 0 mid;
      n.kids <- Array.sub n.kids 0 (mid + 1);
      (sep, right)
    end

  let insert t (ctx : Handle.ctx) k v : [ `Ok | `Duplicate ] =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    let path, anchor_held = writer_descend t ctx k ~safe:(insert_safe t) in
    let release_all () =
      List.iter (fun m -> write_unlock ctx m.latch) path;
      if anchor_held then write_unlock ctx t.anchor
    in
    match path with
    | [] -> assert false
    | leaf :: ancestors ->
        let r = rank leaf.keys k in
        if r < Array.length leaf.keys && K.compare leaf.keys.(r) k = 0 then begin
          release_all ();
          `Duplicate
        end
        else begin
          leaf.keys <- insert_at leaf.keys r k;
          leaf.vals <- insert_at leaf.vals r v;
          ctx.Handle.stats.Stats.puts <- ctx.Handle.stats.Stats.puts + 1;
          (* Propagate splits through the latched unsafe ancestors. *)
          let rec bubble n ancestors =
            if Array.length n.keys <= 2 * t.order then ()
            else begin
              let sep, right = split_node n in
              ctx.Handle.stats.Stats.splits <- ctx.Handle.stats.Stats.splits + 1;
              match ancestors with
              | parent :: rest ->
                  let i = child_index parent sep in
                  parent.keys <- insert_at parent.keys i sep;
                  parent.kids <- insert_at parent.kids (i + 1) right;
                  ctx.Handle.stats.Stats.puts <- ctx.Handle.stats.Stats.puts + 1;
                  bubble parent rest
              | [] ->
                  (* n is the root (anchor is held: the whole path was
                     unsafe): install a new root. *)
                  assert anchor_held;
                  let new_root =
                    {
                      latch = Repro_util.Rwlock.create ();
                      keys = [| sep |];
                      kids = [| n; right |];
                      vals = [||];
                      leaf = false;
                    }
                  in
                  t.root <- new_root
            end
          in
          bubble leaf ancestors;
          release_all ();
          `Ok
        end

  (* Leaf-only deletion (operation parity with the other trees): a delete
     never propagates, so only the leaf latch is kept. *)
  let delete t (ctx : Handle.ctx) k =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    let path, anchor_held = writer_descend t ctx k ~safe:(fun n -> n.leaf || true) in
    (* With every node "safe", writer_descend crabs: path = [leaf]. *)
    match path with
    | [] -> assert false
    | leaf :: rest ->
        let r = rank leaf.keys k in
        let found = r < Array.length leaf.keys && K.compare leaf.keys.(r) k = 0 in
        if found then begin
          leaf.keys <- remove_at leaf.keys r;
          leaf.vals <- remove_at leaf.vals r;
          ctx.Handle.stats.Stats.puts <- ctx.Handle.stats.Stats.puts + 1
        end;
        List.iter (fun m -> write_unlock ctx m.latch) (leaf :: rest);
        if anchor_held then write_unlock ctx t.anchor;
        found

  (* ---- optimistic writers (Bayer & Schkolnick's improved protocol) ----

     The pessimistic writer above takes exclusive latches on the way down
     and keeps the unsafe suffix. Their improved variant bets that splits
     are rare: descend with SHARED latches like a reader, take the
     exclusive latch only on the leaf, and fall back to the pessimistic
     descent when the leaf would split. Readers are then blocked only by
     leaf-level writes (or by the rare pessimistic retry). *)

  (* Shared-crab to the leaf for [k]; return the leaf with its WRITE latch
     held (parent read latch released after acquiring it). *)
  let descend_optimistic t (ctx : Handle.ctx) k =
    read_lock ctx t.anchor;
    let n = t.root in
    if n.leaf then begin
      (* latch order: write child before releasing parent *)
      write_lock ctx n.latch;
      read_unlock ctx t.anchor;
      n
    end
    else begin
      read_lock ctx n.latch;
      read_unlock ctx t.anchor;
      let rec go n =
        let c = n.kids.(child_index n k) in
        if c.leaf then begin
          write_lock ctx c.latch;
          read_unlock ctx n.latch;
          c
        end
        else begin
          read_lock ctx c.latch;
          read_unlock ctx n.latch;
          go c
        end
      in
      go n
    end

  let insert_optimistic t (ctx : Handle.ctx) k v : [ `Ok | `Duplicate ] =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    let leaf = descend_optimistic t ctx k in
    let r = rank leaf.keys k in
    if r < Array.length leaf.keys && K.compare leaf.keys.(r) k = 0 then begin
      write_unlock ctx leaf.latch;
      `Duplicate
    end
    else if Array.length leaf.keys < 2 * t.order then begin
      leaf.keys <- insert_at leaf.keys r k;
      leaf.vals <- insert_at leaf.vals r v;
      ctx.Handle.stats.Stats.puts <- ctx.Handle.stats.Stats.puts + 1;
      write_unlock ctx leaf.latch;
      `Ok
    end
    else begin
      (* the bet failed: release and redo with the pessimistic protocol *)
      write_unlock ctx leaf.latch;
      ctx.Handle.stats.Stats.retries <- ctx.Handle.stats.Stats.retries + 1;
      (* note: ops was already counted; avoid double-counting *)
      ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops - 1;
      insert t ctx k v
    end

  let delete_optimistic t (ctx : Handle.ctx) k =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    let leaf = descend_optimistic t ctx k in
    let r = rank leaf.keys k in
    let found = r < Array.length leaf.keys && K.compare leaf.keys.(r) k = 0 in
    if found then begin
      leaf.keys <- remove_at leaf.keys r;
      leaf.vals <- remove_at leaf.vals r;
      ctx.Handle.stats.Stats.puts <- ctx.Handle.stats.Stats.puts + 1
    end;
    write_unlock ctx leaf.latch;
    found

  (* ---- preemptive splitting (the top-down idea of Guibas & Sedgewick
     that the paper's §1 discusses as [5]) ----

     Split every FULL node encountered on the way down, so the leaf split
     never propagates: the parent latch can be released as soon as the
     child is latched, and a writer holds at most two exclusive latches.
     The cost is eager splits (a full node is split even when the insert
     would not have overflowed it), i.e. slightly lower occupancy. *)

  let full t n = Array.length n.keys >= 2 * t.order

  (* Split full child [c] of latched [parent]; parent is not full (the
     invariant of this descent). Returns without latching anything new. *)
  let split_child parent c =
    let sep, right = split_node c in
    let i = child_index parent sep in
    parent.keys <- insert_at parent.keys i sep;
    parent.kids <- insert_at parent.kids (i + 1) right

  let insert_preemptive t (ctx : Handle.ctx) k v : [ `Ok | `Duplicate ] =
    ctx.Handle.stats.Stats.ops <- ctx.Handle.stats.Stats.ops + 1;
    write_lock ctx t.anchor;
    (* ensure the root is not full before descending *)
    if full t t.root then begin
      let old_root = t.root in
      write_lock ctx old_root.latch;
      let sep, right = split_node old_root in
      ctx.Handle.stats.Stats.splits <- ctx.Handle.stats.Stats.splits + 1;
      t.root <-
        {
          latch = Repro_util.Rwlock.create ();
          keys = [| sep |];
          kids = [| old_root; right |];
          vals = [||];
          leaf = false;
        };
      write_unlock ctx old_root.latch
    end;
    let n = t.root in
    write_lock ctx n.latch;
    write_unlock ctx t.anchor;
    (* invariant: [n] is latched and not full *)
    let rec go n =
      if n.leaf then begin
        let r = rank n.keys k in
        if r < Array.length n.keys && K.compare n.keys.(r) k = 0 then begin
          write_unlock ctx n.latch;
          `Duplicate
        end
        else begin
          n.keys <- insert_at n.keys r k;
          n.vals <- insert_at n.vals r v;
          ctx.Handle.stats.Stats.puts <- ctx.Handle.stats.Stats.puts + 1;
          write_unlock ctx n.latch;
          `Ok
        end
      end
      else begin
        let c = n.kids.(child_index n k) in
        write_lock ctx c.latch;
        let c =
          if full t c then begin
            split_child n c;
            ctx.Handle.stats.Stats.splits <- ctx.Handle.stats.Stats.splits + 1;
            (* re-pick: k may now belong to the new right sibling. [n] is
               still exclusively latched, so releasing [c] before latching
               the sibling is safe — and keeps the footprint at 2. *)
            let c' = n.kids.(child_index n k) in
            if c' != c then begin
              write_unlock ctx c.latch;
              write_lock ctx c'.latch;
              c'
            end
            else c
          end
          else c
        in
        write_unlock ctx n.latch;
        go c
      end
    in
    go n

  let rec cardinal_node n =
    if n.leaf then Array.length n.keys
    else Array.fold_left (fun acc c -> acc + cardinal_node c) 0 n.kids

  let cardinal t = cardinal_node t.root

  let rec height_node n = if n.leaf then 1 else 1 + height_node n.kids.(0)
  let height t = height_node t.root
end
