(** Plain-text table and series rendering for the bench harness.

    Prints the rows the experiments report in a form that pastes cleanly
    into EXPERIMENTS.md. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

(** Render [header :: rows] with columns sized to content. *)
let table ?(out = stdout) ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun r ->
      List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) r)
    all;
  let line r =
    let cells = List.mapi (fun i c -> pad widths.(i) c) r in
    output_string out ("  " ^ String.concat "  " cells ^ "\n")
  in
  line header;
  let rule = List.init ncols (fun i -> String.make widths.(i) '-') in
  line rule;
  List.iter line rows;
  flush out

let fmt_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let fmt_si v =
  if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let fmt_bytes v =
  let v = float_of_int v in
  if v >= 1048576. then Printf.sprintf "%.1fMiB" (v /. 1048576.)
  else if v >= 1024. then Printf.sprintf "%.1fKiB" (v /. 1024.)
  else Printf.sprintf "%.0fB" v

let heading ?(out = stdout) title =
  output_string out ("\n== " ^ title ^ " ==\n\n");
  flush out

let note ?(out = stdout) s =
  output_string out ("  " ^ s ^ "\n");
  flush out
