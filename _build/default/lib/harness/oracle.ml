(** Reference model and correctness checkers.

    Sequential: replay an operation sequence against [Map] and against a
    tree, comparing every return value (data equivalence in the §4 sense
    for serial schedules).

    Concurrent: the checkers here verify the consequences of Theorems 1–2
    that are observable from outside: per-key serialisability when each
    key is owned by one domain, and set-correctness for commuting
    (disjoint-key) concurrent operations. *)

open Repro_core
open Repro_baseline
module IntMap = Map.Make (Int)

type divergence = {
  index : int;
  op : Workload.op;
  expected : string;
  got : string;
}

let string_of_op = function
  | Workload.Search k -> Printf.sprintf "search %d" k
  | Workload.Insert (k, v) -> Printf.sprintf "insert %d->%d" k v
  | Workload.Delete k -> Printf.sprintf "delete %d" k

(** Replay [ops] sequentially on [tree] and on a [Map]; returns the first
    divergence, if any, and the final model. *)
let replay (tree : Tree_intf.handle) (ctx : Handle.ctx) ops :
    divergence option * int IntMap.t =
  let model = ref IntMap.empty in
  let diverged = ref None in
  List.iteri
    (fun index op ->
      if !diverged = None then begin
        match op with
        | Workload.Search k ->
            let expected = IntMap.find_opt k !model in
            let got = tree.Tree_intf.search ctx k in
            if expected <> got then
              diverged :=
                Some
                  {
                    index;
                    op;
                    expected =
                      (match expected with Some v -> string_of_int v | None -> "none");
                    got = (match got with Some v -> string_of_int v | None -> "none");
                  }
        | Workload.Insert (k, v) ->
            let expected = if IntMap.mem k !model then `Duplicate else `Ok in
            if expected = `Ok then model := IntMap.add k v !model;
            let got = tree.Tree_intf.insert ctx k v in
            if expected <> got then
              diverged :=
                Some
                  {
                    index;
                    op;
                    expected = (if expected = `Ok then "ok" else "dup");
                    got = (if got = `Ok then "ok" else "dup");
                  }
        | Workload.Delete k ->
            let expected = IntMap.mem k !model in
            model := IntMap.remove k !model;
            let got = tree.Tree_intf.delete ctx k in
            if expected <> got then
              diverged :=
                Some
                  {
                    index;
                    op;
                    expected = string_of_bool expected;
                    got = string_of_bool got;
                  }
      end)
    ops;
  (!diverged, !model)

(** Compare a quiescent tree's full contents with a model. *)
let contents_match ~(to_list : unit -> (int * int) list) (model : int IntMap.t) :
    string option =
  let tree_list = to_list () in
  let model_list = IntMap.bindings model in
  if tree_list = model_list then None
  else
    Some
      (Printf.sprintf "tree has %d pairs, model has %d (or contents differ)"
         (List.length tree_list) (List.length model_list))

(** Per-key history for concurrent runs where each domain owns a disjoint
    key set: the final presence of a key must match the last operation the
    owner performed on it. *)
let owned_keys_check (tree : Tree_intf.handle) (ctx : Handle.ctx)
    ~(final_present : (int, bool) Hashtbl.t) : string list =
  Hashtbl.fold
    (fun k should_be acc ->
      let present = tree.Tree_intf.search ctx k <> None in
      if present = should_be then acc
      else
        Printf.sprintf "key %d: present=%b, expected %b" k present should_be :: acc)
    final_present []
