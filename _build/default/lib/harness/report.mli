(** Plain-text tables and notes for the bench harness, in a form that
    pastes into EXPERIMENTS.md. *)

val table : ?out:out_channel -> header:string list -> string list list -> unit
val fmt_f : ?digits:int -> float -> string

val fmt_si : float -> string
(** 1234567. -> "1.23M" *)

val fmt_bytes : int -> string
val heading : ?out:out_channel -> string -> unit
val note : ?out:out_channel -> string -> unit
