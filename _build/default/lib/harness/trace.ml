(** Operation traces: record a workload to a file and replay it
    deterministically — for reproducible bug reports and cross-tree
    comparisons on identical operation streams.

    Text format, one operation per line:
    {v
      i <key> <value>     insert
      d <key>             delete
      s <key>             search
      # anything          comment
    v} *)

type error = { line : int; text : string }

exception Parse_error of error

let to_channel oc (ops : Workload.op list) =
  List.iter
    (fun op ->
      match op with
      | Workload.Insert (k, v) -> Printf.fprintf oc "i %d %d\n" k v
      | Workload.Delete k -> Printf.fprintf oc "d %d\n" k
      | Workload.Search k -> Printf.fprintf oc "s %d\n" k)
    ops

let save path ops =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc ops)

let parse_line ~line s : Workload.op option =
  let fail () = raise (Parse_error { line; text = s }) in
  let s = String.trim s in
  if s = "" || s.[0] = '#' then None
  else
    match String.split_on_char ' ' s |> List.filter (fun x -> x <> "") with
    | [ "i"; k; v ] -> (
        match (int_of_string_opt k, int_of_string_opt v) with
        | Some k, Some v -> Some (Workload.Insert (k, v))
        | _ -> fail ())
    | [ "d"; k ] -> (
        match int_of_string_opt k with Some k -> Some (Workload.Delete k) | None -> fail ())
    | [ "s"; k ] -> (
        match int_of_string_opt k with Some k -> Some (Workload.Search k) | None -> fail ())
    | _ -> fail ()

let of_channel ic =
  let ops = ref [] in
  let line = ref 0 in
  (try
     while true do
       incr line;
       match parse_line ~line:!line (input_line ic) with
       | Some op -> ops := op :: !ops
       | None -> ()
     done
   with End_of_file -> ());
  List.rev !ops

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

(** Generate a trace from a workload spec (what a single worker would do). *)
let generate ~seed ~ops spec : Workload.op list =
  let s = Workload.sampler ~seed ~worker:0 spec in
  List.init ops (fun _ -> Workload.next_op s)

(** Replay a trace against a tree handle; returns (inserted_ok, deleted,
    found) counts for quick cross-checking. *)
let replay (h : Repro_baseline.Tree_intf.handle) ctx ops =
  let ins = ref 0 and del = ref 0 and found = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Workload.Insert (k, v) ->
          if h.Repro_baseline.Tree_intf.insert ctx k v = `Ok then incr ins
      | Workload.Delete k -> if h.Repro_baseline.Tree_intf.delete ctx k then incr del
      | Workload.Search k -> if h.Repro_baseline.Tree_intf.search ctx k <> None then incr found)
    ops;
  (!ins, !del, !found)
