(** Per-key linearizability checking — the observable content of
    Theorem 1. Operations on distinct keys commute in a dense index, so a
    history is linearizable iff each key's sub-history is linearizable
    against set semantics, checked by memoised DFS (Wing & Gong style). *)

type kind = Insert | Delete | Search

type event = {
  key : int;
  kind : kind;
  ok : bool;
      (** Insert: succeeded; Delete: key was present; Search: key found *)
  inv : int;
  res : int;
}

val kind_to_string : kind -> string
val pp_event : Format.formatter -> event -> unit

type recorder

val recorder : unit -> recorder

type local
(** A domain-private handle: events buffer locally, stamps come from the
    shared atomic clock. *)

val local : recorder -> local

val record : local -> key:int -> kind:kind -> (unit -> bool) -> bool
(** Run the operation, recording its invocation/response window and
    boolean outcome; returns the outcome. *)

val merge_local : local -> unit
(** Publish a domain's buffered events (call once, after the domain's
    work). *)

val events : recorder -> event list

exception Too_long of int

val max_history : int

val check_key : ?initial:bool -> event list -> bool
(** Single-key history linearizable from the given initial presence?
    @raise Too_long beyond {!max_history} events. *)

type verdict = {
  keys_checked : int;
  violations : (int * event list) list;
  skipped : int list;
}

val check : ?initial:(int -> bool) -> event list -> verdict
val ok : verdict -> bool
