lib/harness/trace.mli: Repro_baseline Repro_core Workload
