lib/harness/report.mli:
