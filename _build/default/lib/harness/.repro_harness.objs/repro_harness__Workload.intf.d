lib/harness/workload.mli: Distribution Repro_util
