lib/harness/workload.ml: Array Distribution Float Printf Repro_util Splitmix
