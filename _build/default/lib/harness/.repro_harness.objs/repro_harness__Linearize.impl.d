lib/harness/linearize.ml: Array Atomic Format Hashtbl List Mutex Option
