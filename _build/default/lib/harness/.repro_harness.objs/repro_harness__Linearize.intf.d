lib/harness/linearize.mli: Format
