lib/harness/driver.mli: Handle Repro_baseline Repro_core Repro_storage Repro_util Tree_intf Workload
