lib/harness/driver.ml: Array Atomic Compactor Domain Handle Printf Repro_baseline Repro_core Repro_storage Repro_util Tree_intf Unix Workload
