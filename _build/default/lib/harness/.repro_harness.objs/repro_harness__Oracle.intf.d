lib/harness/oracle.mli: Handle Hashtbl Map Repro_baseline Repro_core Tree_intf Workload
