lib/harness/trace.ml: Fun List Printf Repro_baseline String Workload
