lib/harness/oracle.ml: Handle Hashtbl Int List Map Printf Repro_baseline Repro_core Tree_intf Workload
