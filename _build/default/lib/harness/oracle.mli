(** Reference model and correctness checkers: sequential replay against a
    [Map] (data equivalence for serial schedules, §4), plus concurrent
    set-consistency checks. *)

open Repro_core
open Repro_baseline
module IntMap : Map.S with type key = int

type divergence = { index : int; op : Workload.op; expected : string; got : string }

val string_of_op : Workload.op -> string

val replay :
  Tree_intf.handle -> Handle.ctx -> Workload.op list -> divergence option * int IntMap.t
(** Replay sequentially on the tree and the model; first divergence if
    any, and the final model. *)

val contents_match :
  to_list:(unit -> (int * int) list) -> int IntMap.t -> string option

val owned_keys_check :
  Tree_intf.handle ->
  Handle.ctx ->
  final_present:(int, bool) Hashtbl.t ->
  string list
(** For runs where each key is owned by one domain: the final presence of
    each key must match its owner's last operation. *)
