(** Operation traces: record and replay workloads deterministically.
    Text format: [i <key> <value>] / [d <key>] / [s <key>] / [# comment]. *)

type error = { line : int; text : string }

exception Parse_error of error

val save : string -> Workload.op list -> unit
val to_channel : out_channel -> Workload.op list -> unit

val load : string -> Workload.op list
(** @raise Parse_error on a malformed line. *)

val of_channel : in_channel -> Workload.op list

val generate : seed:int -> ops:int -> Workload.spec -> Workload.op list
(** What a single worker of this spec would do. *)

val replay :
  Repro_baseline.Tree_intf.handle ->
  Repro_core.Handle.ctx ->
  Workload.op list ->
  int * int * int
(** Returns (successful inserts, successful deletes, hits). *)
