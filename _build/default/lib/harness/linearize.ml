(** Per-key linearizability checking (the observable content of Theorem 1:
    concurrent searches/insertions/deletions are data-equivalent to a
    serial schedule).

    The tree is a dense index: operations on distinct keys commute, so a
    history is linearizable iff each key's sub-history is linearizable
    against set semantics (absent/present). Per-key histories are small,
    which makes the (in general NP-hard) check tractable: a Wing & Gong
    style DFS over linearization prefixes with memoisation on
    (scheduled-set, state).

    Timestamps come from one shared atomic counter, so the recorded
    invocation/response order is itself linearizable and conservatively
    approximates real time. *)

type kind = Insert | Delete | Search

type event = {
  key : int;
  kind : kind;
  ok : bool;
      (** Insert: [`Ok]; Delete: key was present; Search: key was found *)
  inv : int;  (** invocation stamp *)
  res : int;  (** response stamp *)
}

let kind_to_string = function Insert -> "insert" | Delete -> "delete" | Search -> "search"

let pp_event fmt e =
  Format.fprintf fmt "%s(%d)=%b @[%d..%d]" (kind_to_string e.kind) e.key e.ok e.inv e.res

(* -- recording -- *)

type recorder = { clock : int Atomic.t; mutable events : event list; mutex : Mutex.t }

let recorder () = { clock = Atomic.make 0; events = []; mutex = Mutex.create () }

(** Per-domain handle onto a shared recorder (no contention on the event
    list until {!merge_local}). *)
type local = { shared : recorder; mutable buffer : event list }

let local shared = { shared; buffer = [] }

(** Run [f], recording its invocation/response window and boolean outcome. *)
let record (l : local) ~key ~kind f =
  let inv = Atomic.fetch_and_add l.shared.clock 1 in
  let ok = f () in
  let res = Atomic.fetch_and_add l.shared.clock 1 in
  l.buffer <- { key; kind; ok; inv; res } :: l.buffer;
  ok

(** Publish a domain's buffered events into the shared recorder. *)
let merge_local (l : local) =
  Mutex.lock l.shared.mutex;
  l.shared.events <- List.rev_append l.buffer l.shared.events;
  l.buffer <- [];
  Mutex.unlock l.shared.mutex

let events r = r.events

(* -- checking -- *)

exception Too_long of int

let max_history = 25 (* bitmask DFS bound *)

(* Expected outcome and next state of applying [kind] in [present]. *)
let apply kind present =
  match kind with
  | Insert -> (not present, true)
  | Delete -> (present, false)
  | Search -> (present, present)

(** Is this single-key history linearizable from [initial] presence?
    @raise Too_long beyond {!max_history} events. *)
let check_key ?(initial = false) (history : event list) : bool =
  let ops = Array.of_list history in
  let n = Array.length ops in
  if n = 0 then true
  else if n > max_history then raise (Too_long n)
  else begin
    let full = (1 lsl n) - 1 in
    let memo = Hashtbl.create 256 in
    (* o is schedulable next if no other pending op responded before o's
       invocation (we may not reorder across completed real-time gaps). *)
    let schedulable mask i =
      let ok = ref true in
      for j = 0 to n - 1 do
        if j <> i && mask land (1 lsl j) = 0 && ops.(j).res < ops.(i).inv then ok := false
      done;
      !ok
    in
    let rec dfs mask present =
      if mask = full then true
      else
        let state_key = (mask * 2) + if present then 1 else 0 in
        match Hashtbl.find_opt memo state_key with
        | Some v -> v
        | None ->
            let rec try_op i =
              if i >= n then false
              else if
                mask land (1 lsl i) = 0
                && schedulable mask i
                &&
                let expected, next = apply ops.(i).kind present in
                ops.(i).ok = expected && dfs (mask lor (1 lsl i)) next
              then true
              else try_op (i + 1)
            in
            let v = try_op 0 in
            Hashtbl.add memo state_key v;
            v
    in
    dfs 0 initial
  end

type verdict = {
  keys_checked : int;
  violations : (int * event list) list;  (** key, its (inv-sorted) history *)
  skipped : int list;  (** keys whose histories exceeded {!max_history} *)
}

(** Partition a full history by key and check each sub-history.
    [initial key] is the key's presence before the recorded window
    (e.g. preloaded keys). *)
let check ?(initial = fun _ -> false) (history : event list) : verdict =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_key e.key) in
      Hashtbl.replace by_key e.key (e :: cur))
    history;
  let violations = ref [] and skipped = ref [] and count = ref 0 in
  Hashtbl.iter
    (fun key evs ->
      incr count;
      let evs = List.sort (fun a b -> compare a.inv b.inv) evs in
      match check_key ~initial:(initial key) evs with
      | true -> ()
      | false -> violations := (key, evs) :: !violations
      | exception Too_long _ -> skipped := key :: !skipped)
    by_key;
  { keys_checked = !count; violations = !violations; skipped = !skipped }

let ok v = v.violations = []
