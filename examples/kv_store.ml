(* A concurrent key-value store built on the tree: the dense index over a
   record heap, with overwrites, deletes, range queries and record-slot
   reclamation — a miniature of the "large file + B*-tree index" system
   the paper targets.

   Run with:  dune exec examples/kv_store.exe *)

open Repro_core
module KV = Kv.Make (Repro_storage.Key.Int)

let accounts = 10_000

let () =
  let store = KV.create ~order:16 () in
  let c = KV.ctx ~slot:0 in

  (* Seed account records. *)
  for id = 0 to accounts - 1 do
    KV.put store c id (Printf.sprintf "{\"id\":%d,\"balance\":100}" id)
  done;
  Printf.printf "seeded %d accounts (%d bytes of records, index height %d)\n" accounts
    (KV.bytes_stored store) (KV.height store);

  (* Concurrent traffic: two writers update balances, one auditor scans
     ranges, one janitor reclaims retired record slots. *)
  let stop = Atomic.make false in
  let writers =
    Array.init 2 (fun w ->
        Domain.spawn (fun () ->
            let ctx = KV.ctx ~slot:(1 + w) in
            let rng = Repro_util.Splitmix.create (w + 123) in
            let n = ref 0 in
            for i = 1 to 50_000 do
              let id = Repro_util.Splitmix.int rng accounts in
              KV.put store ctx id
                (Printf.sprintf "{\"id\":%d,\"balance\":%d}" id (100 + i));
              incr n
            done;
            !n))
  in
  let auditor =
    Domain.spawn (fun () ->
        let ctx = KV.ctx ~slot:3 in
        let scans = ref 0 in
        while not (Atomic.get stop) do
          let lo = !scans * 97 mod accounts in
          let n =
            KV.fold_range store ctx ~lo ~hi:(lo + 499) ~init:0 (fun acc _ _ -> acc + 1)
          in
          if n = 0 then failwith "range scan lost a whole bucket";
          incr scans
        done;
        !scans)
  in
  let janitor =
    Domain.spawn (fun () ->
        let jctx = KV.ctx ~slot:4 in
        let freed = ref 0 in
        while not (Atomic.get stop) do
          freed := !freed + KV.reclaim store jctx;
          Domain.cpu_relax ()
        done;
        !freed)
  in
  let written = Array.fold_left (fun acc d -> acc + Domain.join d) 0 writers in
  Atomic.set stop true;
  let scans = Domain.join auditor in
  let freed = Domain.join janitor in
  let freed = freed + KV.reclaim store c in

  Printf.printf "applied %d overwrites; auditor completed %d range scans\n" written scans;
  Printf.printf "janitor reclaimed %d retired record slots; %d live records remain\n"
    freed (KV.live_records store);

  (* Spot-check consistency: every account resolves to a record for ITS id. *)
  for id = 0 to accounts - 1 do
    match KV.get store c id with
    | Some json ->
        let prefix = Printf.sprintf "{\"id\":%d," id in
        if String.length json < String.length prefix
           || String.sub json 0 (String.length prefix) <> prefix
        then failwith "record mismatch"
    | None -> failwith "account lost"
  done;
  Printf.printf "all %d accounts consistent; final store: %d bytes\n" accounts
    (KV.bytes_stored store)
