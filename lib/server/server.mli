(** Pipelined network server over any {!Repro_baseline.Tree_intf.handle}.

    One accept domain multiplexes every listener (Unix-domain and TCP);
    accepted connections queue to a pool of worker domains, each serving
    one connection at a time with its own epoch slot and statistics
    record — the request path shares nothing but the tree.

    A worker drains every complete frame its read buffer holds (that
    batch size is the connection's pipeline depth), executes the batch,
    and — when the server runs with durable acks — issues one
    [handle.commit] covering the batch's mutations {e before} flushing
    the responses, folding the whole batch (and, through the WAL's group
    commit, concurrent batches on other connections) into one durable
    write. Under [~durable_acks:true] an acked mutation is therefore a
    committed mutation: it survives a crash immediately after the
    response frame is read.

    Error isolation is per connection: a frame that fails to parse gets
    a final [Error] response and closes only that connection, counting
    one protocol error. *)

type t

(** The primary's per-shard WAL stream, served to [Subscribe] requests
    (an unsharded primary is [ws_shards = 1]). Built from
    [Paged_store.wal_fetch] / [wal_wait] over the backing store(s); the
    server only ever ships records those report durable, which is what
    makes a follower's horizon a lower bound on the primary's committed
    state (see doc/RECOVERY.md, replication commit point). *)
type wal_source = {
  ws_shards : int;
  ws_fetch : shard:int -> lsn:int -> max_pages:int -> Repro_storage.Wal.fetch;
  ws_wait : shard:int -> lsn:int -> timeout:float -> bool;
}

val start :
  ?workers:int ->
  ?durable_acks:bool ->
  ?combine_batch:bool ->
  ?max_payload:int ->
  ?wal_source:wal_source ->
  handle:Repro_baseline.Tree_intf.handle ->
  listen:Unix.sockaddr list ->
  unit ->
  t
(** Bind and listen on every address, then return with the accept and
    worker domains running. [workers] defaults to 4 — it bounds the
    connections served concurrently (excess connections wait in the
    accept queue). [durable_acks] (default false) makes every mutation
    batch commit before its acks flush. [combine_batch] (default false)
    enables batch-level hot-key dedup: within one drained pipeline
    batch, an operation that an earlier same-batch operation already
    proved to be a tree no-op (insert of a known-present key, delete of
    a known-absent one) is answered without touching the tree, and a
    search piggy-backs on the latest preceding same-batch write's
    payload. Per-connection response order is preserved, every response
    is a valid linearization (derived operations linearize immediately
    after the batch-local operation that proved the fact), and the
    durable-ack contract holds: a batch whose surviving mutations
    changed the tree still commits before its acks flush, while a batch
    of pure no-ops skips the commit (counted in [commits_skipped])
    because it made nothing new durable. [wal_source] enables the
    [Subscribe] opcode — replication pull of durable WAL pages, with a
    bounded long-poll so each sealed batch streams right after the
    group-commit fsync that made it durable; without it subscribes get
    [Error "replication unsupported"]. TCP addresses may bind port 0;
    read the chosen port back with {!addresses}.
    @raise Unix.Unix_error when an address cannot be bound. *)

val addresses : t -> Unix.sockaddr list
(** Actual bound addresses, in [listen] order. *)

val stats : t -> Repro_storage.Stats.server
(** Merged snapshot of every worker's counters (fresh record; safe to
    read while the server runs). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, shut down in-flight connections
    (their workers finish the current batch, flush, then close), join
    every domain. Idempotent. *)
