(** Pipelined network server over any {!Repro_baseline.Tree_intf.handle}.

    One accept domain multiplexes every listener (Unix-domain and TCP);
    accepted connections queue to a pool of worker domains, each serving
    one connection at a time with its own epoch slot and statistics
    record — the request path shares nothing but the tree.

    A worker drains every complete frame its read buffer holds (that
    batch size is the connection's pipeline depth), executes the batch,
    and — when the server runs with durable acks — issues one
    [handle.commit] covering the batch's mutations {e before} flushing
    the responses, folding the whole batch (and, through the WAL's group
    commit, concurrent batches on other connections) into one durable
    write. Under [~durable_acks:true] an acked mutation is therefore a
    committed mutation: it survives a crash immediately after the
    response frame is read.

    Error isolation is per connection: a frame that fails to parse gets
    a final [Error] response and closes only that connection, counting
    one protocol error. *)

type t

val start :
  ?workers:int ->
  ?durable_acks:bool ->
  ?max_payload:int ->
  handle:Repro_baseline.Tree_intf.handle ->
  listen:Unix.sockaddr list ->
  unit ->
  t
(** Bind and listen on every address, then return with the accept and
    worker domains running. [workers] defaults to 4 — it bounds the
    connections served concurrently (excess connections wait in the
    accept queue). [durable_acks] (default false) makes every mutation
    batch commit before its acks flush. TCP addresses may bind port 0;
    read the chosen port back with {!addresses}.
    @raise Unix.Unix_error when an address cannot be bound. *)

val addresses : t -> Unix.sockaddr list
(** Actual bound addresses, in [listen] order. *)

val stats : t -> Repro_storage.Stats.server
(** Merged snapshot of every worker's counters (fresh record; safe to
    read while the server runs). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, shut down in-flight connections
    (their workers finish the current batch, flush, then close), join
    every domain. Idempotent. *)
