(** Wire protocol of the B-link network server: length-prefixed binary
    frames with a versioned header and checksummed payloads, designed
    for {e pipelining} — a client may stream any number of request
    frames before reading responses; the server answers strictly in
    request order, echoing each frame's sequence number.

    Frame layout (all integers big-endian):

    {v
    offset  size  field
    0       2     magic 0x42 0x4C ("BL")
    2       1     version (currently 1)
    3       1     opcode (request) / status (response)
    4       4     sequence number (echoed verbatim in the response)
    8       4     payload length (bytes; bounded by the receiver)
    12      4     FNV-1a-32 checksum of the payload
    16      n     payload
    v}

    Keys and values are 63-bit OCaml ints carried as 64-bit two's
    complement. A frame that fails any header check (magic, version,
    unknown opcode, oversized length) or whose payload fails the
    checksum raises {!Bad_frame}; the server answers with a final
    [Error] frame and closes {e that} connection only. *)

exception Bad_frame of string
(** Unparseable or integrity-failed frame. The connection that sent it
    is poisoned (the stream can no longer be re-synchronised); the
    receiver reports and closes. *)

val header_size : int
(** Bytes before the payload (16). *)

val version : int

val default_max_payload : int
(** Default payload-size bound a receiver enforces before trusting a
    length field (1 MiB — generous for any RANGE reply). *)

type request =
  | Insert of { key : int; value : int }
  | Delete of { key : int }
  | Search of { key : int }
  | Range of { lo : int; hi : int }
  | Commit  (** make every completed operation durable before replying *)
  | Stats  (** server-side counters snapshot *)
  | Subscribe of { shard : int; from_lsn : int; max_pages : int; wait_ms : int }
      (** Replication pull: up to [max_pages] raw WAL log pages of
          [shard] starting at [from_lsn], long-polling up to [wait_ms]
          when nothing is durable there yet. Payload: u32 shard, i64
          from_lsn, u32 max_pages, u32 wait_ms. *)
  | Snapshot of { close : bool }
      (** Open (or close) a pinned MVCC snapshot session on this
          connection: until closed, its SEARCH and RANGE answer at the
          pinned cut — a stable read horizon spanning many requests.
          Re-opening releases the previous pin and takes a fresh one.
          Payload: u32 action (0 = open, 1 = close). Backends without
          an MVCC surface answer [Error]. *)

type server_stats = {
  s_conns_opened : int;
  s_conns_active : int;
  s_frames_in : int;
  s_frames_out : int;
  s_bytes_in : int;
  s_bytes_out : int;
  s_max_pipeline : int;
  s_protocol_errors : int;
  s_acked_commits : int;
  s_lat_p50_us : int;  (** per-request service latency, microseconds *)
  s_lat_p99_us : int;
  s_cardinal : int;  (** tree key count at snapshot time *)
  s_height : int;
}

type response =
  | Inserted
  | Duplicate
  | Deleted
  | Absent  (** delete miss / search miss *)
  | Found of int
  | Pairs of (int * int) list
  | Committed
  | Stats_reply of server_stats
  | Wal_chunk of { shard : int; next_lsn : int; pages : Bytes.t list }
      (** Reply to [Subscribe]: LSN-contiguous raw log pages starting at
          the requested [from_lsn]; the next subscribe starts at
          [next_lsn]. Empty [pages] (with [next_lsn = from_lsn]) means
          caught up to the primary's durable horizon. Payload: u32
          shard, i64 next_lsn, u32 page_size, u32 count, then
          [count × page_size] raw bytes. A subscriber that has fallen
          out of the primary's retention window gets [Error "stale"]
          instead and must re-seed. *)
  | Snap_reply of { epoch : int }
      (** Reply to [Snapshot]: the pinned cut's boundary epoch on open,
          [-1] on close. Payload: i64 epoch. *)
  | Error of string
      (** terminal: the server closes the connection after sending it *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
val response_to_string : response -> string

val encode_request : Buffer.t -> seq:int -> request -> unit
(** Append one request frame. [seq] is truncated to 32 bits. *)

val encode_response : Buffer.t -> seq:int -> response -> unit

type 'a decoded =
  | Need_more  (** no complete frame in the buffer yet *)
  | Frame of { seq : int; body : 'a; consumed : int }

val decode_request :
  ?max_payload:int -> Bytes.t -> pos:int -> len:int -> request decoded
(** Decode the first request frame of [len] bytes at [pos]. [consumed]
    is the total frame size to advance past.
    @raise Bad_frame on a header or checksum violation. *)

val decode_response :
  ?max_payload:int -> Bytes.t -> pos:int -> len:int -> response decoded
(** Same for a response frame (client side). *)
