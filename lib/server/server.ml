(** Accept loop + worker-domain pool over a tree handle. See the
    interface for the concurrency and durability contract. *)

open Repro_storage
module P = Protocol

(** What a Subscribe request reads: the primary's per-shard WAL stream.
    The functions close over the backing stores (built by the CLI / the
    tests from [Paged_store.wal_fetch] / [wal_wait]); an unsharded
    primary is simply [ws_shards = 1]. *)
type wal_source = {
  ws_shards : int;
  ws_fetch : shard:int -> lsn:int -> max_pages:int -> Wal.fetch;
  ws_wait : shard:int -> lsn:int -> timeout:float -> bool;
}

type t = {
  listeners : Unix.file_descr list;
  addrs : Unix.sockaddr list;
  stopping : bool Atomic.t;
  (* accepted connections waiting for a worker *)
  q : Unix.file_descr Queue.t;
  q_mu : Mutex.t;
  q_cv : Condition.t;
  (* fds being served right now, so [stop] can unblock their reads *)
  active : (Unix.file_descr, unit) Hashtbl.t;
  active_mu : Mutex.t;
  worker_stats : Stats.server array;
  handle : Repro_baseline.Tree_intf.handle;
  wal_source : wal_source option;
  durable_acks : bool;
  combine_batch : bool;
  max_payload : int;
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
}

let merged_stats t =
  let acc = Stats.server_create () in
  Array.iter (fun s -> Stats.server_merge ~into:acc s) t.worker_stats;
  acc

let stats = merged_stats
let addresses t = t.addrs

(* -- connection service -- *)

let write_all fd bytes len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let is_mutation = function
  | P.Insert _ | P.Delete _ -> true
  | P.Search _ | P.Range _ | P.Commit | P.Stats | P.Subscribe _
  | P.Snapshot _ ->
      false

(* The key a mutation touches — what the sharded commit path routes on. *)
let mutation_key = function
  | P.Insert { key; _ } | P.Delete { key } -> Some key
  | P.Search _ | P.Range _ | P.Commit | P.Stats | P.Subscribe _
  | P.Snapshot _ ->
      None

(* Replication pull: serve durable log pages of one shard, long-polling
   the durable watermark first when the subscriber asked to wait (this
   is how "stream after each fsync" lands inside a strict
   request/response protocol — the commit fsync advances the watermark
   and the parked fetch picks the new records up immediately). The wait
   is bounded so a worker is never parked longer than a stop can
   tolerate. *)
let execute_subscribe t ~shard ~from_lsn ~max_pages ~wait_ms : P.response =
  match t.wal_source with
  | None -> Error "replication unsupported (no WAL source)"
  | Some ws ->
      if shard < 0 || shard >= ws.ws_shards then
        Error (Printf.sprintf "no shard %d (have %d)" shard ws.ws_shards)
      else if from_lsn < 0 || max_pages < 1 then
        Error "bad subscribe bounds"
      else begin
        (* clamp the chunk so it always fits one response frame: the
           subscriber's decoder enforces the protocol payload bound, and
           a partial chunk just means another pull *)
        let fetch ~lsn ~max_pages =
          match ws.ws_fetch ~shard ~lsn ~max_pages with
          | Wal.Pages { pages = p :: _ as pages; next } ->
              let fit =
                max 1 ((P.default_max_payload - 64) / Bytes.length p)
              in
              if List.length pages <= fit then Wal.Pages { pages; next }
              else
                Wal.Pages
                  {
                    pages = List.filteri (fun i _ -> i < fit) pages;
                    next = lsn + fit;
                  }
          | r -> r
        in
        let deadline =
          Unix.gettimeofday () +. (float_of_int (min wait_ms 10_000) /. 1000.)
        in
        (* wait in slices so [stop] never stalls on a parked long-poll *)
        let rec park () =
          let left = deadline -. Unix.gettimeofday () in
          if left > 0. && not (Atomic.get t.stopping) then
            if ws.ws_wait ~shard ~lsn:from_lsn ~timeout:(Float.min left 0.05)
            then ()
            else park ()
        in
        (match fetch ~lsn:from_lsn ~max_pages with
        | Wal.At_end -> park ()
        | _ -> ());
        match fetch ~lsn:from_lsn ~max_pages with
        | Wal.Pages { pages; next } ->
            P.Wal_chunk { shard; next_lsn = next; pages }
        | Wal.At_end -> P.Wal_chunk { shard; next_lsn = from_lsn; pages = [] }
        | Wal.Stale -> Error "stale"
      end

(* [snap] is the connection's pinned snapshot session (SNAPSHOT open /
   close): while set, reads answer at its cut instead of current time.
   Without a session, a RANGE on an MVCC backend still gets its own
   per-request cut — one pin around the scan — so a single reply is
   always point-in-time consistent (the unversioned [handle.range] walk
   is weak under concurrent writers). *)
let execute t (sst : Stats.server) ctx
    ~(snap : Repro_baseline.Tree_intf.snap option ref) (req : P.request) :
    P.response =
  match req with
  | Insert { key; value } -> (
      match t.handle.insert ctx key value with
      | `Ok -> Inserted
      | `Duplicate -> Duplicate)
  | Delete { key } -> if t.handle.delete ctx key then Deleted else Absent
  | Search { key } -> (
      match !snap with
      | Some s -> (
          sst.snap_reads <- sst.snap_reads + 1;
          match s.Repro_baseline.Tree_intf.snap_search ctx key with
          | Some v -> Found v
          | None -> Absent)
      | None -> (
          match t.handle.search ctx key with
          | Some v -> Found v
          | None -> Absent))
  | Range { lo; hi } -> (
      match !snap with
      | Some s ->
          sst.snap_reads <- sst.snap_reads + 1;
          Pairs (s.Repro_baseline.Tree_intf.snap_range ctx ~lo ~hi)
      | None -> (
          match t.handle.mvcc with
          | Some m ->
              let s = m.Repro_baseline.Tree_intf.snapshot () in
              sst.snapshots_opened <- sst.snapshots_opened + 1;
              sst.snap_reads <- sst.snap_reads + 1;
              Fun.protect
                ~finally:s.Repro_baseline.Tree_intf.snap_release
                (fun () ->
                  P.Pairs (s.Repro_baseline.Tree_intf.snap_range ctx ~lo ~hi))
          | None -> (
              match t.handle.range with
              | Some f -> Pairs (f ctx ~lo ~hi)
              | None -> Error "range unsupported by this backend")))
  | Snapshot { close } -> (
      let release () =
        match !snap with
        | Some s ->
            s.Repro_baseline.Tree_intf.snap_release ();
            snap := None
        | None -> ()
      in
      if close then begin
        release ();
        Snap_reply { epoch = -1 }
      end
      else
        match t.handle.mvcc with
        | None -> Error "snapshot unsupported by this backend"
        | Some m ->
            release ();
            let s = m.Repro_baseline.Tree_intf.snapshot () in
            snap := Some s;
            sst.snapshots_opened <- sst.snapshots_opened + 1;
            Snap_reply { epoch = s.Repro_baseline.Tree_intf.snap_epoch })
  | Commit ->
      t.handle.commit ();
      sst.acked_commits <- sst.acked_commits + 1;
      Committed
  | Stats ->
      let m = merged_stats t in
      let us p =
        int_of_float (Repro_util.Histogram.percentile m.latency p *. 1e6)
      in
      Stats_reply
        {
          s_conns_opened = m.conns_opened;
          s_conns_active = m.conns_active;
          s_frames_in = m.frames_in;
          s_frames_out = m.frames_out;
          s_bytes_in = m.bytes_in;
          s_bytes_out = m.bytes_out;
          s_max_pipeline = m.max_pipeline;
          s_protocol_errors = m.protocol_errors;
          s_acked_commits = m.acked_commits;
          s_lat_p50_us = us 50.0;
          s_lat_p99_us = us 99.0;
          s_cardinal = t.handle.cardinal ();
          s_height = t.handle.height ();
        }
  | Subscribe { shard; from_lsn; max_pages; wait_ms } ->
      execute_subscribe t ~shard ~from_lsn ~max_pages ~wait_ms

(* Per-connection, per-batch dedup state: what this batch's already-
   executed operations proved about a key. [KPresent (Some v)] — present
   with payload [v]; [KPresent None] — present, payload unknown (a
   duplicate insert proved presence without revealing the stored
   payload); [KAbsent] — absent. *)
type kst = KPresent of int option | KAbsent

(* Combine-mode execution: answer from the batch's dedup state when the
   operation is a tree no-op anchored at an earlier op of this batch on
   the same key; otherwise run it physically and record what it proved.
   A derived response linearizes immediately after its anchor — valid
   because every op in a drained batch is concurrent with every other
   (all were pipelined before any response flushed), so any order over
   them is admissible. Only tree no-ops are ever derived; state-changing
   operations always execute physically, so [kstate] never diverges from
   the tree: it only holds facts a batch-local physical op established.
   [mutated] records "saw a mutation request" (elided or not);
   [state_changed] records "a physical mutation changed the tree" — the
   commit decision below keys on the latter. *)
let execute_combined t (sst : Stats.server) ctx ~kstate ~mutated
    ~state_changed ~touched ~snap (req : P.request) : P.response =
  let mark_touched key =
    match t.handle.sharding with
    | Some s -> touched.(s.shard_of_key key) <- true
    | None -> ()
  in
  match req with
  (* a pinned session reads at its cut — batch-dedup facts describe
     current time, so piggybacking them onto a snapshot read would leak
     post-cut writes *)
  | P.Search _ when !snap <> None -> execute t sst ctx ~snap req
  | P.Insert { key; value } -> (
      match Hashtbl.find_opt kstate key with
      | Some (KPresent _) ->
          mutated := true;
          sst.elided <- sst.elided + 1;
          Duplicate
      | Some KAbsent | None -> (
          mutated := true;
          match t.handle.insert ctx key value with
          | `Ok ->
              state_changed := true;
              mark_touched key;
              Hashtbl.replace kstate key (KPresent (Some value));
              Inserted
          | `Duplicate ->
              Hashtbl.replace kstate key (KPresent None);
              Duplicate))
  | P.Delete { key } -> (
      match Hashtbl.find_opt kstate key with
      | Some KAbsent ->
          mutated := true;
          sst.elided <- sst.elided + 1;
          Absent
      | Some (KPresent _) | None ->
          mutated := true;
          let hit = t.handle.delete ctx key in
          Hashtbl.replace kstate key KAbsent;
          if hit then begin
            state_changed := true;
            mark_touched key;
            Deleted
          end
          else Absent)
  | P.Search { key } -> (
      match Hashtbl.find_opt kstate key with
      | Some (KPresent (Some v)) ->
          sst.piggybacked <- sst.piggybacked + 1;
          Found v
      | Some KAbsent ->
          sst.piggybacked <- sst.piggybacked + 1;
          Absent
      | Some (KPresent None) | None -> (
          match t.handle.search ctx key with
          | Some v ->
              Hashtbl.replace kstate key (KPresent (Some v));
              Found v
          | None ->
              Hashtbl.replace kstate key KAbsent;
              Absent))
  | P.Range _ | P.Commit | P.Stats | P.Subscribe _ | P.Snapshot _ ->
      execute t sst ctx ~snap req

(* Serve one connection to completion on worker [slot]. The read loop
   drains every complete frame the kernel delivered (the pipeline
   batch), executes in order, commits once if the batch mutated and
   acks are durable, then flushes all the responses together. *)
let serve_conn t ~slot fd =
  let sst = t.worker_stats.(slot) in
  sst.conns_opened <- sst.conns_opened + 1;
  sst.conns_active <- sst.conns_active + 1;
  let ctx = Repro_core.Handle.ctx ~slot in
  (* Sharded handle: per-batch touched-shard set, so the ack commit
     below covers exactly the shards this batch mutated. *)
  let touched =
    match t.handle.sharding with
    | Some s -> Array.make s.shard_count false
    | None -> [||]
  in
  let kstate : (int, kst) Hashtbl.t = Hashtbl.create 16 in
  (* SNAPSHOT session state: one pin, many reads, released on close or
     when the connection ends *)
  let snap : Repro_baseline.Tree_intf.snap option ref = ref None in
  let cap = ref 4096 in
  let buf = ref (Bytes.create !cap) in
  let lo = ref 0 and hi = ref 0 in
  let out = Buffer.create 4096 in
  let closing = ref false in
  let flush_out () =
    let n = Buffer.length out in
    if n > 0 then begin
      write_all fd (Buffer.to_bytes out) n;
      Buffer.clear out;
      sst.bytes_out <- sst.bytes_out + n
    end
  in
  let respond ~seq resp =
    P.encode_response out ~seq resp;
    sst.frames_out <- sst.frames_out + 1;
    (match (resp : P.response) with Error _ -> closing := true | _ -> ())
  in
  (* The session pin must not outlive the connection, however it comes
     down: it holds the reclamation horizon for every store sharing the
     clock. The expected disconnects (peer close, protocol error) are
     handled below, but an exception between pin publication and release
     — an ack commit failing at line's end, a write error while flushing
     a batch — would otherwise skip the teardown entirely (worker_loop
     swallows it), leaking the pin and pinning vacuum's horizon forever.
     [Fun.protect] makes the release and the gauge decrement
     unconditional. *)
  Fun.protect
    ~finally:(fun () ->
      (match !snap with
      | Some s -> (
          try s.Repro_baseline.Tree_intf.snap_release ()
          with _ -> ())
      | None -> ());
      sst.conns_active <- sst.conns_active - 1)
  @@ fun () ->
  try
     while not !closing do
       (* make room, then read *)
       if !lo > 0 && (!lo = !hi || !cap - !hi < 512) then begin
         Bytes.blit !buf !lo !buf 0 (!hi - !lo);
         hi := !hi - !lo;
         lo := 0
       end;
       if !cap - !hi < 512 then begin
         cap := !cap * 2;
         let b = Bytes.create !cap in
         Bytes.blit !buf 0 b 0 !hi;
         buf := b
       end;
       let n = Unix.read fd !buf !hi (!cap - !hi) in
       if n = 0 then closing := true
       else begin
         hi := !hi + n;
         sst.bytes_in <- sst.bytes_in + n;
         (* drain the batch; a bad frame poisons the stream but the
            frames parsed before it still execute and answer *)
         let batch = ref [] in
         let poisoned = ref None in
         (try
            let continue = ref true in
            while !continue do
              match
                P.decode_request ~max_payload:t.max_payload !buf ~pos:!lo
                  ~len:(!hi - !lo)
              with
              | Need_more -> continue := false
              | Frame { seq; body; consumed } ->
                  lo := !lo + consumed;
                  sst.frames_in <- sst.frames_in + 1;
                  batch := (seq, body) :: !batch
            done
          with P.Bad_frame msg ->
            sst.protocol_errors <- sst.protocol_errors + 1;
            poisoned := Some msg);
         let batch = List.rev !batch in
         let depth = List.length batch in
         if depth > sst.max_pipeline then sst.max_pipeline <- depth;
         let mutated = ref false in
         let state_changed = ref false in
         Array.fill touched 0 (Array.length touched) false;
         (* dedup facts never survive a batch boundary: the concurrency
            argument (all ops' windows overlap) only holds within one
            drained batch *)
         if t.combine_batch then Hashtbl.reset kstate;
         List.iter
           (fun (seq, req) ->
             if not !closing then begin
               if (not t.combine_batch) && is_mutation req then begin
                 mutated := true;
                 match (t.handle.sharding, mutation_key req) with
                 | Some s, Some key -> touched.(s.shard_of_key key) <- true
                 | _ -> ()
               end;
               let t0 = Unix.gettimeofday () in
               let resp =
                 try
                   if t.combine_batch then
                     execute_combined t sst ctx ~kstate ~mutated
                       ~state_changed ~touched ~snap req
                   else execute t sst ctx ~snap req
                 with e -> P.Error (Printexc.to_string e)
               in
               Repro_util.Histogram.add sst.latency
                 (Unix.gettimeofday () -. t0);
               respond ~seq resp
             end)
           batch;
         (* durable acks: the batch's mutations reach the log (and, via
            the WAL's group commit, disk) before any ack flushes. On a
            sharded handle only the shards this batch touched commit —
            each fold into its own shard's group commit, so batches on
            different shards never serialise on one log fsync. The walk
            starts at a slot-dependent shard so concurrently-committing
            workers spread their leader duty instead of convoying. *)
         if
           t.durable_acks
           && if t.combine_batch then !state_changed else !mutated
         then begin
           (match t.handle.sharding with
           | Some s ->
               let n = s.shard_count in
               for j = 0 to n - 1 do
                 let i = (j + (slot mod n)) mod n in
                 if touched.(i) then begin
                   s.commit_shard i;
                   Stats.note_shard_ack sst i
                 end
               done
           | None -> t.handle.commit ());
           sst.acked_commits <- sst.acked_commits + 1
         end
         else if t.durable_acks && !mutated then
           (* combine mode, mutation requests seen, but every surviving
              mutation was a tree no-op: nothing new to make durable, so
              the ack-covering commit is elided *)
           sst.commits_skipped <- sst.commits_skipped + 1;
         (match !poisoned with
         | Some msg -> respond ~seq:0 (P.Error ("bad frame: " ^ msg))
         | None -> ());
         flush_out ()
       end
     done
  with
  | P.Bad_frame msg ->
      sst.protocol_errors <- sst.protocol_errors + 1;
      (try
         respond ~seq:0 (P.Error ("bad frame: " ^ msg));
         flush_out ()
       with Unix.Unix_error _ -> ())
  | Unix.Unix_error _ | End_of_file -> ()

(* -- domains -- *)

let worker_loop t slot =
  let rec next () =
    Mutex.lock t.q_mu;
    let rec wait () =
      if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
      else if Atomic.get t.stopping then None
      else begin
        Condition.wait t.q_cv t.q_mu;
        wait ()
      end
    in
    let r = wait () in
    Mutex.unlock t.q_mu;
    match r with
    | None -> ()
    | Some fd ->
        Mutex.lock t.active_mu;
        Hashtbl.replace t.active fd ();
        Mutex.unlock t.active_mu;
        (try serve_conn t ~slot fd with _ -> ());
        Mutex.lock t.active_mu;
        Hashtbl.remove t.active fd;
        Mutex.unlock t.active_mu;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        next ()
  in
  next ()

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select t.listeners [] [] 0.05 with
    | ready, _, _ ->
        List.iter
          (fun lfd ->
            match Unix.accept ~cloexec:true lfd with
            | fd, _ ->
                Mutex.lock t.q_mu;
                Queue.push fd t.q;
                Condition.signal t.q_cv;
                Mutex.unlock t.q_mu
            | exception Unix.Unix_error _ -> ())
          ready
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let start ?(workers = 4) ?(durable_acks = false) ?(combine_batch = false)
    ?(max_payload = P.default_max_payload) ?wal_source ~handle ~listen () =
  (* a peer that drops mid-reply must cost an EPIPE, not the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listeners, addrs =
    List.split
      (List.map
         (fun addr ->
           let dom = Unix.domain_of_sockaddr addr in
           let fd = Unix.socket ~cloexec:true dom SOCK_STREAM 0 in
           (try
              if dom <> PF_UNIX then Unix.setsockopt fd SO_REUSEADDR true;
              Unix.bind fd addr;
              Unix.listen fd 64
            with e ->
              Unix.close fd;
              raise e);
           (fd, Unix.getsockname fd))
         listen)
  in
  let t =
    {
      listeners;
      addrs;
      stopping = Atomic.make false;
      q = Queue.create ();
      q_mu = Mutex.create ();
      q_cv = Condition.create ();
      active = Hashtbl.create 16;
      active_mu = Mutex.create ();
      worker_stats = Array.init workers (fun _ -> Stats.server_create ());
      handle;
      wal_source;
      durable_acks;
      combine_batch;
      max_payload;
      domains = [];
      stopped = false;
    }
  in
  t.domains <-
    Domain.spawn (fun () -> accept_loop t)
    :: List.init workers (fun slot ->
           Domain.spawn (fun () -> worker_loop t slot));
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (* unblock workers parked in read(2) *)
    Mutex.lock t.active_mu;
    Hashtbl.iter
      (fun fd () ->
        try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.active;
    Mutex.unlock t.active_mu;
    Mutex.lock t.q_mu;
    Condition.broadcast t.q_cv;
    Mutex.unlock t.q_mu;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (* connections accepted but never served *)
    Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.q;
    Queue.clear t.q;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners
  end
