(** Wire protocol: length-prefixed, versioned, checksummed frames.
    See the interface for the layout. Encoding appends to a [Buffer.t]
    (the per-connection write buffer); decoding reads straight out of
    the per-connection byte buffer without copying the payload. *)

exception Bad_frame of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_frame s)) fmt
let header_size = 16
let magic0 = 0x42 (* 'B' *)
let magic1 = 0x4C (* 'L' *)
let version = 1
let default_max_payload = 1 lsl 20

(* Request opcodes / response status tags share the header's byte 3. *)
let op_insert = 1
let op_delete = 2
let op_search = 3
let op_range = 4
let op_commit = 5
let op_stats = 6
let op_subscribe = 7
let op_snapshot = 8
let st_inserted = 64
let st_duplicate = 65
let st_deleted = 66
let st_absent = 67
let st_found = 68
let st_pairs = 69
let st_committed = 70
let st_stats = 71
let st_wal_chunk = 72
let st_snap = 73
let st_error = 255

type request =
  | Insert of { key : int; value : int }
  | Delete of { key : int }
  | Search of { key : int }
  | Range of { lo : int; hi : int }
  | Commit
  | Stats
  | Subscribe of { shard : int; from_lsn : int; max_pages : int; wait_ms : int }
  | Snapshot of { close : bool }
      (** Open (or close) a pinned MVCC snapshot session: until closed,
          this connection's SEARCH and RANGE answer at the pinned cut.
          Requires an MVCC backend; re-opening replaces the pin. *)

type server_stats = {
  s_conns_opened : int;
  s_conns_active : int;
  s_frames_in : int;
  s_frames_out : int;
  s_bytes_in : int;
  s_bytes_out : int;
  s_max_pipeline : int;
  s_protocol_errors : int;
  s_acked_commits : int;
  s_lat_p50_us : int;
  s_lat_p99_us : int;
  s_cardinal : int;
  s_height : int;
}

type response =
  | Inserted
  | Duplicate
  | Deleted
  | Absent
  | Found of int
  | Pairs of (int * int) list
  | Committed
  | Stats_reply of server_stats
  | Wal_chunk of { shard : int; next_lsn : int; pages : Bytes.t list }
      (** Raw log pages for the subscriber to feed through [Wal.Apply];
          [next_lsn] is where the next subscribe should start. Empty
          [pages] with [next_lsn = from_lsn] means caught up. *)
  | Snap_reply of { epoch : int }
      (** The session snapshot's boundary epoch; [-1] acknowledges a
          close. *)
  | Error of string

let pp_request fmt = function
  | Insert { key; value } -> Format.fprintf fmt "INSERT %d=%d" key value
  | Delete { key } -> Format.fprintf fmt "DELETE %d" key
  | Search { key } -> Format.fprintf fmt "SEARCH %d" key
  | Range { lo; hi } -> Format.fprintf fmt "RANGE %d..%d" lo hi
  | Commit -> Format.fprintf fmt "COMMIT"
  | Stats -> Format.fprintf fmt "STATS"
  | Subscribe { shard; from_lsn; max_pages; wait_ms } ->
      Format.fprintf fmt "SUBSCRIBE shard=%d lsn=%d max=%d wait=%dms" shard
        from_lsn max_pages wait_ms
  | Snapshot { close } ->
      Format.fprintf fmt "SNAPSHOT %s" (if close then "close" else "open")

let pp_response fmt = function
  | Inserted -> Format.fprintf fmt "inserted"
  | Duplicate -> Format.fprintf fmt "duplicate"
  | Deleted -> Format.fprintf fmt "deleted"
  | Absent -> Format.fprintf fmt "absent"
  | Found v -> Format.fprintf fmt "found %d" v
  | Pairs ps ->
      Format.fprintf fmt "%d pairs:" (List.length ps);
      List.iter (fun (k, v) -> Format.fprintf fmt " %d=%d" k v) ps
  | Committed -> Format.fprintf fmt "committed"
  | Stats_reply s ->
      Format.fprintf fmt
        "stats conns=%d/%d frames=%d/%d bytes=%d/%d max_pipeline=%d \
         proto_errors=%d acked_commits=%d lat_p50=%dus lat_p99=%dus \
         cardinal=%d height=%d"
        s.s_conns_active s.s_conns_opened s.s_frames_in s.s_frames_out
        s.s_bytes_in s.s_bytes_out s.s_max_pipeline s.s_protocol_errors
        s.s_acked_commits s.s_lat_p50_us s.s_lat_p99_us s.s_cardinal
        s.s_height
  | Wal_chunk { shard; next_lsn; pages } ->
      Format.fprintf fmt "wal-chunk shard=%d pages=%d next_lsn=%d" shard
        (List.length pages) next_lsn
  | Snap_reply { epoch } ->
      if epoch < 0 then Format.fprintf fmt "snapshot closed"
      else Format.fprintf fmt "snapshot epoch=%d" epoch
  | Error msg -> Format.fprintf fmt "error: %s" msg

let response_to_string r = Format.asprintf "%a" pp_response r

(* -- payload scratch encoding -- *)

let put_i64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let get_i64 bytes off =
  (* 64-bit two's complement; the top bit folds into OCaml's 63-bit int
     sign through the shift accumulation. *)
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code (Bytes.get bytes (off + i))
  done;
  !v

let put_u32 b v =
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let get_u32 bytes off =
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code (Bytes.get bytes (off + i))
  done;
  !v

(* Append a complete frame: header + payload, checksumming the payload
   bytes already rendered into [payload]. *)
let add_frame out ~opcode ~seq payload =
  let len = Buffer.length payload in
  Buffer.add_char out (Char.chr magic0);
  Buffer.add_char out (Char.chr magic1);
  Buffer.add_char out (Char.chr version);
  Buffer.add_char out (Char.chr opcode);
  put_u32 out (seq land 0xffffffff);
  put_u32 out len;
  let bytes = Buffer.to_bytes payload in
  put_u32 out (Repro_util.Checksum.fnv32 bytes ~pos:0 ~len);
  Buffer.add_bytes out bytes

let encode_request out ~seq (r : request) =
  let p = Buffer.create 16 in
  let opcode =
    match r with
    | Insert { key; value } ->
        put_i64 p key;
        put_i64 p value;
        op_insert
    | Delete { key } ->
        put_i64 p key;
        op_delete
    | Search { key } ->
        put_i64 p key;
        op_search
    | Range { lo; hi } ->
        put_i64 p lo;
        put_i64 p hi;
        op_range
    | Commit -> op_commit
    | Stats -> op_stats
    | Subscribe { shard; from_lsn; max_pages; wait_ms } ->
        put_u32 p shard;
        put_i64 p from_lsn;
        put_u32 p max_pages;
        put_u32 p wait_ms;
        op_subscribe
    | Snapshot { close } ->
        put_u32 p (if close then 1 else 0);
        op_snapshot
  in
  add_frame out ~opcode ~seq p

let stats_fields s =
  [
    s.s_conns_opened; s.s_conns_active; s.s_frames_in; s.s_frames_out;
    s.s_bytes_in; s.s_bytes_out; s.s_max_pipeline; s.s_protocol_errors;
    s.s_acked_commits; s.s_lat_p50_us; s.s_lat_p99_us; s.s_cardinal;
    s.s_height;
  ]

let stats_of_fields = function
  | [
      s_conns_opened; s_conns_active; s_frames_in; s_frames_out; s_bytes_in;
      s_bytes_out; s_max_pipeline; s_protocol_errors; s_acked_commits;
      s_lat_p50_us; s_lat_p99_us; s_cardinal; s_height;
    ] ->
      {
        s_conns_opened; s_conns_active; s_frames_in; s_frames_out; s_bytes_in;
        s_bytes_out; s_max_pipeline; s_protocol_errors; s_acked_commits;
        s_lat_p50_us; s_lat_p99_us; s_cardinal; s_height;
      }
  | _ -> assert false

let n_stats_fields = 13

let encode_response out ~seq (r : response) =
  let p = Buffer.create 16 in
  let status =
    match r with
    | Inserted -> st_inserted
    | Duplicate -> st_duplicate
    | Deleted -> st_deleted
    | Absent -> st_absent
    | Found v ->
        put_i64 p v;
        st_found
    | Pairs ps ->
        put_u32 p (List.length ps);
        List.iter
          (fun (k, v) ->
            put_i64 p k;
            put_i64 p v)
          ps;
        st_pairs
    | Committed -> st_committed
    | Stats_reply s ->
        List.iter (put_i64 p) (stats_fields s);
        st_stats
    | Wal_chunk { shard; next_lsn; pages } ->
        (* All pages in one chunk share a size (the shard's log page
           size) — ship it once so the decoder can slice without it. *)
        put_u32 p shard;
        put_i64 p next_lsn;
        put_u32 p (match pages with [] -> 0 | pg :: _ -> Bytes.length pg);
        put_u32 p (List.length pages);
        List.iter (Buffer.add_bytes p) pages;
        st_wal_chunk
    | Snap_reply { epoch } ->
        put_i64 p epoch;
        st_snap
    | Error msg ->
        Buffer.add_string p msg;
        st_error
  in
  add_frame out ~opcode:status ~seq p

(* -- decoding -- *)

type 'a decoded =
  | Need_more
  | Frame of { seq : int; body : 'a; consumed : int }

(* Validate the header and checksum; hand (opcode, seq, payload offset,
   payload length, consumed) to [body] when the frame is complete. *)
let decode_frame ?(max_payload = default_max_payload) bytes ~pos ~len body =
  if len < header_size then Need_more
  else begin
    let u8 i = Char.code (Bytes.get bytes (pos + i)) in
    if u8 0 <> magic0 || u8 1 <> magic1 then
      bad "bad magic 0x%02x%02x" (u8 0) (u8 1);
    if u8 2 <> version then bad "unsupported protocol version %d" (u8 2);
    let opcode = u8 3 in
    let seq = get_u32 bytes (pos + 4) in
    let plen = get_u32 bytes (pos + 8) in
    if plen > max_payload then
      bad "payload of %d bytes exceeds the %d-byte bound" plen max_payload;
    if len < header_size + plen then Need_more
    else begin
      let sum = get_u32 bytes (pos + 12) in
      let actual =
        Repro_util.Checksum.fnv32 bytes ~pos:(pos + header_size) ~len:plen
      in
      if sum <> actual then
        bad "payload checksum mismatch (frame %#x, got %#x)" sum actual;
      Frame
        {
          seq;
          body = body opcode (pos + header_size) plen;
          consumed = header_size + plen;
        }
    end
  end

let need len0 len1 what = if len0 <> len1 then bad "%s payload size %d" what len0

let decode_request ?max_payload bytes ~pos ~len =
  decode_frame ?max_payload bytes ~pos ~len (fun opcode off plen ->
      let i64 i = get_i64 bytes (off + (8 * i)) in
      match opcode with
      | o when o = op_insert ->
          need plen 16 "INSERT";
          Insert { key = i64 0; value = i64 1 }
      | o when o = op_delete ->
          need plen 8 "DELETE";
          Delete { key = i64 0 }
      | o when o = op_search ->
          need plen 8 "SEARCH";
          Search { key = i64 0 }
      | o when o = op_range ->
          need plen 16 "RANGE";
          Range { lo = i64 0; hi = i64 1 }
      | o when o = op_commit ->
          need plen 0 "COMMIT";
          Commit
      | o when o = op_stats ->
          need plen 0 "STATS";
          Stats
      | o when o = op_subscribe ->
          need plen 20 "SUBSCRIBE";
          Subscribe
            {
              shard = get_u32 bytes off;
              from_lsn = get_i64 bytes (off + 4);
              max_pages = get_u32 bytes (off + 12);
              wait_ms = get_u32 bytes (off + 16);
            }
      | o when o = op_snapshot ->
          need plen 4 "SNAPSHOT";
          Snapshot { close = get_u32 bytes off <> 0 }
      | o -> bad "unknown request opcode %d" o)

let decode_response ?max_payload bytes ~pos ~len =
  decode_frame ?max_payload bytes ~pos ~len (fun status off plen ->
      let i64 i = get_i64 bytes (off + (8 * i)) in
      match status with
      | s when s = st_inserted -> Inserted
      | s when s = st_duplicate -> Duplicate
      | s when s = st_deleted -> Deleted
      | s when s = st_absent -> Absent
      | s when s = st_found ->
          need plen 8 "FOUND";
          Found (i64 0)
      | s when s = st_pairs ->
          if plen < 4 then bad "PAIRS payload size %d" plen;
          let n = get_u32 bytes off in
          need plen (4 + (16 * n)) "PAIRS";
          Pairs
            (List.init n (fun i ->
                 ( get_i64 bytes (off + 4 + (16 * i)),
                   get_i64 bytes (off + 4 + (16 * i) + 8) )))
      | s when s = st_committed -> Committed
      | s when s = st_stats ->
          need plen (8 * n_stats_fields) "STATS";
          Stats_reply (stats_of_fields (List.init n_stats_fields i64))
      | s when s = st_wal_chunk ->
          if plen < 20 then bad "WAL_CHUNK payload size %d" plen;
          let shard = get_u32 bytes off in
          let next_lsn = get_i64 bytes (off + 4) in
          let page_size = get_u32 bytes (off + 12) in
          let count = get_u32 bytes (off + 16) in
          if count > 0 && page_size = 0 then bad "WAL_CHUNK zero page size";
          need plen (20 + (page_size * count)) "WAL_CHUNK";
          Wal_chunk
            {
              shard;
              next_lsn;
              pages =
                List.init count (fun i ->
                    Bytes.sub bytes (off + 20 + (i * page_size)) page_size);
            }
      | s when s = st_snap ->
          need plen 8 "SNAP";
          Snap_reply { epoch = i64 0 }
      | s when s = st_error -> Error (Bytes.sub_string bytes off plen)
      | s -> bad "unknown response status %d" s)
