(** The serve command's backend compatibility matrix, as one total
    function instead of a pile of ad-hoc guards. Every flag combination
    resolves to either a coherent configuration or a single actionable
    error — the CLI applies it verbatim and the tests enumerate it.

    The matrix:

    {v
                         mem                disk
      plain              ok                 ok (+wal, +path)
      plain, shards>1    error (no router   ok (+wal, +path)
                         without a cut)
      mvcc               ok (volatile)      ok (durable chains; +wal, +path)
      mvcc, shards>1     ok (one epoch)     ok (one epoch; +wal, +path)
      wal                error              ok
      path               error              ok
    v} *)

type t = {
  backend : [ `Mem | `Disk ];
  wal : bool;  (** WAL durability mode (group commit + replication) *)
  mvcc : bool;
  shards : int;
  path : string option;
      (** file-backed store base path ([None] = memory-backed pager) *)
  durable_acks : bool;
      (** the server commits before acking mutations — exactly when the
          backend persists anything *)
}

let validate ~backend ~durability ~shards ~mvcc ~path =
  let ( let* ) = Result.bind in
  let* backend =
    match backend with
    | "mem" -> Ok `Mem
    | "disk" -> Ok `Disk
    | s -> Error (Printf.sprintf "unknown backend %S (mem or disk)" s)
  in
  let* wal =
    match durability with
    | "sync" -> Ok false
    | "wal" -> Ok true
    | s -> Error (Printf.sprintf "unknown durability %S (sync or wal)" s)
  in
  let* () =
    if shards >= 1 then Ok ()
    else Error (Printf.sprintf "--shards %d: shard count must be >= 1" shards)
  in
  let* () =
    if wal && backend = `Mem then
      Error "--durability wal requires --backend disk"
    else Ok ()
  in
  let* () =
    if path <> None && backend = `Mem then
      Error "--path requires --backend disk (the memory backend has no files)"
    else Ok ()
  in
  let* () =
    if shards > 1 && backend = `Mem && not mvcc then
      Error
        "--shards > 1 on the memory backend requires --mvcc (cross-shard \
         scans need the shared-epoch cut); use --backend disk for plain \
         sharding"
    else Ok ()
  in
  Ok { backend; wal; mvcc; shards; path; durable_acks = backend = `Disk }
