(** The serve command's backend compatibility matrix: every flag
    combination resolves to a coherent configuration or one actionable
    error. See the implementation header for the full table. *)

type t = {
  backend : [ `Mem | `Disk ];
  wal : bool;  (** WAL durability mode (group commit + replication) *)
  mvcc : bool;
  shards : int;
  path : string option;
      (** file-backed store base path ([None] = memory-backed pager) *)
  durable_acks : bool;
      (** the server commits before acking mutations — exactly when the
          backend persists anything *)
}

val validate :
  backend:string ->
  durability:string ->
  shards:int ->
  mvcc:bool ->
  path:string option ->
  (t, string) result
