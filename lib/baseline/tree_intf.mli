(** First-class uniform interface over the concurrent trees (int keys),
    for the workload driver and the benches. *)

open Repro_core

type sharding = {
  shard_count : int;
  shard_of_key : int -> int;
      (** deterministic key → shard routing ({!Repro_storage.Shard_router}) *)
  commit_shard : int -> unit;
      (** durably commit one shard's completed operations — independent
          shards' commits run fully in parallel (separate WALs, separate
          group-commit leaders) *)
}

type snap = {
  snap_epoch : int;  (** the cut's boundary epoch *)
  snap_search : Handle.ctx -> int -> int option;
      (** point read at the cut: the value bound at pin time, whatever
          writers have done since *)
  snap_range : Handle.ctx -> lo:int -> hi:int -> (int * int) list;
      (** consistent ordered scan at the cut — on a sharded handle the
          k-way merge reads every shard at the same cut *)
  snap_release : unit -> unit;  (** unpin (idempotent) *)
}
(** A pinned point-in-time view over an MVCC-backed handle. Holding it
    costs writers nothing; it only defers version pruning. *)

type mvcc_gauges = {
  g_min_pinned : int;  (** reclamation horizon; [max_int] = nothing pinned *)
  g_snap_pins : int;  (** snapshots currently held *)
  g_live_versions : int;  (** version records across all chains *)
  g_pruned_versions : int;  (** versions pruned since creation *)
  g_gc_pending : int;  (** vacuum candidates queued *)
}

type mvcc = {
  snapshot : unit -> snap;
      (** pin a consistent cut (single cut across all shards on a
          sharded handle) — O(1), never blocks writers *)
  vacuum : Handle.ctx -> int;
      (** prune cold version tails, physically remove dead pairs behind
          every pin, release reclaimable slots/pages; returns pairs
          removed *)
  gauges : unit -> mvcc_gauges;
}
(** The snapshot surface of an MVCC-backed handle. *)

type handle = {
  name : string;
  search : Handle.ctx -> int -> int option;
  insert : Handle.ctx -> int -> int -> [ `Ok | `Duplicate ];
  delete : Handle.ctx -> int -> bool;
  cardinal : unit -> int;
  height : unit -> int;
  commit : unit -> unit;
      (** durably commit completed operations (group commit on a
          WAL-mode disk backend, full sync on a plain durable one, no-op
          in memory) — callable from any worker domain *)
  range : (Handle.ctx -> lo:int -> hi:int -> (int * int) list) option;
      (** lock-free ordered scan of [lo <= key <= hi] along the leaf
          chain; [None] on backends without one (the network server
          answers RANGE with "unsupported" there). {b Weak}: not a
          consistent cut under concurrent writers; use [mvcc] for
          point-in-time scans *)
  sharding : sharding option;
      (** partition-layer surface: present on sharded handles so the
          server can route batches and commit only the shards a batch
          touched; [None] on monolithic backends *)
  bulk_add : (?fill:float -> (int * int) list -> bool) option;
      (** quiescent bulk load of strictly ascending pairs into an
          {e empty} tree ([false] = tree not empty, caller falls back to
          [insert]); [None] on backends without a packing constructor.
          [fill] is the node-packing fraction (default 0.9 — dense);
          preload paths that model an incrementally built tree pass a
          lower fill so nodes start near the compaction threshold *)
  mvcc : mvcc option;
      (** snapshot surface: present on version-stamped backends
          ([sagiv-mvcc] and its sharded composition); [None] elsewhere *)
}

type impl = { impl_name : string; make : order:int -> handle }

(** The common operation shape a backend exposes to be wrapped. *)
module type TREE_OPS = sig
  type t

  val search : t -> Handle.ctx -> int -> int option
  val insert : t -> Handle.ctx -> int -> int -> [ `Ok | `Duplicate ]
  val delete : t -> Handle.ctx -> int -> bool
  val cardinal : t -> int
  val height : t -> int
end

val of_ops :
  ?commit:(unit -> unit) ->
  ?range:(Handle.ctx -> lo:int -> hi:int -> (int * int) list) ->
  ?sharding:sharding ->
  ?bulk_add:(?fill:float -> (int * int) list -> bool) ->
  ?mvcc:mvcc ->
  name:string ->
  (module TREE_OPS with type t = 'a) ->
  'a ->
  handle
(** Close a tree value over its operations — the base constructor of
    {!handle}, so a new backend registers in a few lines. [commit]
    defaults to a no-op; [range] to unsupported; [sharding] and
    [bulk_add] to [None]. *)

val sharded : name:string -> handle array -> handle
(** Compose per-shard handles into one: every keyed operation routes
    through {!Repro_storage.Shard_router.shard_of} over the array
    length; [cardinal] sums, [height] maxes, [commit] commits every
    shard, [range] k-way merges the per-shard ordered scans (present iff
    every shard supports it). The result's [sharding] field exposes the
    router and per-shard commit; [bulk_add] partitions the sorted pairs
    per shard (present iff every shard supports it). *)

val with_combining : ?slots:int -> handle -> Repro_core.Combine.t * handle
(** Route the handle's mutations through a {!Repro_core.Combine} array:
    same-hot-key writers publish their ops and one combiner applies the
    merged result, so N contenders cost at most two tree operations per
    key instead of N serialised leaf-lock acquisitions. Searches pass
    straight through (lock-free already). Returns the array (for its
    counters) with the wrapped handle; [slots] is the array width
    (default 64). The handle's name gains a ["+combine"] suffix. *)

module Paged_int : module type of Repro_storage.Paged_store.Make (Repro_storage.Key.Int)
(** The durable int-keyed page store the disk impls run on. *)

module Sagiv_disk :
    module type of Sagiv.Make_on_store (Repro_storage.Key.Int) (Paged_int)
(** The Sagiv tree instantiated over {!Paged_int}. *)

module Sharded_int :
    module type of Repro_storage.Sharded_store.Make (Repro_storage.Key.Int) (Paged_int)
(** The partition layer over {!Paged_int}: N independent stores managed
    as one unit (parallel reopen/recovery, per-shard group commit). *)

val sagiv : ?enqueue_on_delete:bool -> unit -> impl

val sagiv_raw :
  ?enqueue_on_delete:bool ->
  order:int ->
  unit ->
  (int, int Repro_storage.Store.t) Handle.t * handle
(** Like {!sagiv} but also hands back the raw tree, for running
    compaction workers or validation alongside. *)

module Mvcc_int : module type of Mvcc.Make (Repro_storage.Key.Int)
(** The MVCC store (version-stamped records under the Sagiv index)
    instantiated at int keys and int payloads. *)

val sagiv_mvcc : ?enqueue_on_delete:bool -> unit -> impl
(** The Sagiv tree over version-chained records: same point-op surface,
    plus the [mvcc] snapshot field ([impl_name] ["sagiv-mvcc"]). *)

val sagiv_mvcc_raw :
  ?enqueue_on_delete:bool -> order:int -> unit -> int Mvcc_int.t * handle
(** {!sagiv_mvcc} handing back the typed store, for callers that also
    scan or vacuum through the {!Mvcc_int} API directly. *)

val sagiv_mvcc_sharded :
  ?enqueue_on_delete:bool -> shards:int -> unit -> impl
(** [shards] MVCC trees sharing one epoch clock, routed like {!sharded};
    [mvcc.snapshot] is a {e group} snapshot — one pin + tick + wait, and
    the k-way merged [snap_range] is one point-in-time cut across all
    shards ([impl_name] ["sagiv-mvcc-x<shards>"]). *)

val sagiv_mvcc_sharded_raw :
  ?enqueue_on_delete:bool ->
  shards:int ->
  order:int ->
  unit ->
  int Mvcc_int.t array * handle

val sagiv_disk :
  ?enqueue_on_delete:bool ->
  ?cache_pages:int ->
  ?stripes:int ->
  ?commit_interval:float ->
  ?commit_batch:int ->
  ?wal:bool ->
  unit ->
  impl
(** {!sagiv} over {!Repro_storage.Paged_store} (memory-backed paged
    file: codec + buffer pool + eviction, no filesystem). [stripes]
    selects the store's IO stripe count; [wal] attaches a write-ahead
    log so the handle's [commit] group-commits ([commit_interval] /
    [commit_batch] tune it) instead of degrading to a full sync. *)

val sagiv_disk_raw :
  ?enqueue_on_delete:bool ->
  ?cache_pages:int ->
  ?stripes:int ->
  ?commit_interval:float ->
  ?commit_batch:int ->
  ?wal:bool ->
  order:int ->
  unit ->
  (int, Paged_int.t) Handle.t * handle
(** {!sagiv_raw} for the disk backend; the store (for writer loops,
    [io_stats], [flush]) is the raw handle's [store] field. *)

val sagiv_disk_sharded_on :
  ?enqueue_on_delete:bool ->
  order:int ->
  Sharded_int.t ->
  (int, Paged_int.t) Handle.t array * handle
(** One fresh Sagiv tree per shard of an existing {!Sharded_int.t},
    composed with {!sharded} — how file-backed callers (CLI serve,
    benches) shard: create the store themselves, then wrap. *)

val sagiv_disk_sharded_open :
  ?enqueue_on_delete:bool ->
  Sharded_int.t ->
  (int, Paged_int.t) Handle.t array * handle
(** Rebuild the routed handle over a reopened {!Sharded_int.t} (every
    shard's tree metadata was flushed, or recovered from its WAL). *)

val sagiv_disk_sharded_raw :
  ?enqueue_on_delete:bool ->
  ?cache_pages:int ->
  ?stripes:int ->
  ?commit_interval:float ->
  ?commit_batch:int ->
  ?wal:bool ->
  shards:int ->
  order:int ->
  unit ->
  Sharded_int.t * (int, Paged_int.t) Handle.t array * handle
(** Memory-backed sharded disk tree: [shards] fully independent
    {!Paged_int} stores (own buffer pool, WAL, group-commit leader), one
    Sagiv tree each, routed by the {!Repro_storage.Shard_router}. Every
    per-store knob applies per shard. *)

val sagiv_disk_sharded :
  ?enqueue_on_delete:bool ->
  ?cache_pages:int ->
  ?stripes:int ->
  ?commit_interval:float ->
  ?commit_batch:int ->
  ?wal:bool ->
  shards:int ->
  unit ->
  impl
(** {!sagiv_disk} through the partition layer ([impl_name]
    ["sagiv-disk-x<shards>"]). *)

module Mvcc_disk : module type of Mvcc.Make_on_store (Repro_storage.Key.Int) (Paged_int)
(** The MVCC store over {!Paged_int} — the durable composition: tree and
    version chains share one paged store, one WAL, one group commit. *)

val vrec_page_ints : Paged_int.t -> int
(** Vrec stream ints per page for the store's page size (worst-case
    varint width + framing), the [page_ints] to pass to
    {!Mvcc_disk.create_durable}/[open_durable]. *)

val mvcc_disk_sub_handle : int Mvcc_disk.t -> name:string -> handle
(** A per-shard handle over one durable MVCC tree ([commit] group-commits
    tree pages and version chains together). *)

val mvcc_disk_compose : name:string -> int Mvcc_disk.t array -> handle
(** Route shards like {!sharded} and override [mvcc] with a group
    snapshot (the trees must share one epoch clock). *)

val mvcc_disk_name : int -> string
(** ["sagiv-mvcc-disk"] or ["sagiv-mvcc-disk-x<shards>"]. *)

val sagiv_mvcc_disk_on :
  ?enqueue_on_delete:bool ->
  order:int ->
  Sharded_int.t ->
  int Mvcc_disk.t array * handle
(** Durable MVCC trees over an existing (empty) {!Sharded_int.t}: one
    {!Mvcc_disk} per shard store sharing one epoch clock, composed so
    the handle's snapshot is a true cross-shard cut. File-backed callers
    (CLI serve) create the store themselves, then wrap. *)

val sagiv_mvcc_disk_open :
  ?enqueue_on_delete:bool -> Sharded_int.t -> int Mvcc_disk.t array * handle
(** Reopen durable MVCC trees over a reopened {!Sharded_int.t} (WAL
    replay already ran): every shard's version chains restore exactly as
    persisted and the shared clock restarts above all persisted stamps. *)

val sagiv_mvcc_disk_raw :
  ?enqueue_on_delete:bool ->
  ?cache_pages:int ->
  ?stripes:int ->
  ?commit_interval:float ->
  ?commit_batch:int ->
  ?wal:bool ->
  shards:int ->
  order:int ->
  unit ->
  Sharded_int.t * int Mvcc_disk.t array * handle
(** Memory-backed durable MVCC (full pager stack, no filesystem) — the
    [--mvcc --backend disk] composition benches and tests sweep. *)

val sagiv_mvcc_disk :
  ?enqueue_on_delete:bool ->
  ?cache_pages:int ->
  ?stripes:int ->
  ?commit_interval:float ->
  ?commit_batch:int ->
  ?wal:bool ->
  shards:int ->
  unit ->
  impl
(** {!sagiv_mvcc} over the disk backend through the partition layer
    ([impl_name] ["sagiv-mvcc-disk-x<shards>"]). *)

val lehman_yao : impl
val lock_couple : impl

val lock_couple_optimistic : impl
(** Bayer–Schkolnick's improved protocol: optimistic writers (shared
    latches down, exclusive leaf, pessimistic retry on splits). *)

val lock_couple_preemptive : impl
(** Top-down preemptive splitting (Guibas–Sedgewick style): full nodes
    split on the way down, max two exclusive latches per writer. *)

val coarse : impl

val all : impl list
(** All implementations, Sagiv (memory then disk) first. *)
