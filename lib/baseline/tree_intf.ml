(** First-class uniform interface over the concurrent trees (int keys),
    so the workload driver and the benches can sweep implementations. *)

open Repro_core

type sharding = {
  shard_count : int;
  shard_of_key : int -> int;
      (** deterministic key → shard routing ({!Repro_storage.Shard_router}) *)
  commit_shard : int -> unit;
      (** durably commit one shard's completed operations — independent
          shards' commits run fully in parallel (separate WALs, separate
          group-commit leaders) *)
}

type snap = {
  snap_epoch : int;  (** the cut's boundary epoch *)
  snap_search : Handle.ctx -> int -> int option;
      (** point read at the cut: the value bound at pin time, whatever
          writers have done since *)
  snap_range : Handle.ctx -> lo:int -> hi:int -> (int * int) list;
      (** consistent ordered scan at the cut — on a sharded handle the
          k-way merge reads every shard at the same cut *)
  snap_release : unit -> unit;  (** unpin (idempotent) *)
}
(** A pinned point-in-time view over an MVCC-backed handle. Holding it
    costs writers nothing; it only defers version pruning. *)

type mvcc_gauges = {
  g_min_pinned : int;  (** reclamation horizon; [max_int] = nothing pinned *)
  g_snap_pins : int;  (** snapshots currently held *)
  g_live_versions : int;  (** version records across all chains *)
  g_pruned_versions : int;  (** versions pruned since creation *)
  g_gc_pending : int;  (** vacuum candidates queued *)
}

type mvcc = {
  snapshot : unit -> snap;
      (** pin a consistent cut (single cut across all shards on a
          sharded handle) — O(1), never blocks writers *)
  vacuum : Handle.ctx -> int;
      (** prune cold version tails, physically remove dead pairs behind
          every pin, release reclaimable slots/pages; returns pairs
          removed *)
  gauges : unit -> mvcc_gauges;
}
(** The snapshot surface of an MVCC-backed handle. *)

type handle = {
  name : string;
  search : Handle.ctx -> int -> int option;
  insert : Handle.ctx -> int -> int -> [ `Ok | `Duplicate ];
  delete : Handle.ctx -> int -> bool;
  cardinal : unit -> int;
  height : unit -> int;
  commit : unit -> unit;
      (** durably commit completed operations (group commit on a
          WAL-mode disk backend, full sync on a plain durable one, no-op
          in memory) — callable from any worker domain *)
  range : (Handle.ctx -> lo:int -> hi:int -> (int * int) list) option;
      (** lock-free ordered scan of [lo <= key <= hi] along the leaf
          chain; [None] on backends without a leaf chain to walk (the
          network server answers RANGE with "unsupported" there).
          {b Weak}: not a consistent cut under concurrent writers — each
          leaf is atomic but the scan as a whole is not serialisable;
          use [mvcc] for point-in-time scans *)
  sharding : sharding option;
      (** partition-layer surface: present on sharded handles so the
          server can route batches and commit only the shards a batch
          touched; [None] on monolithic backends *)
  bulk_add : (?fill:float -> (int * int) list -> bool) option;
      (** quiescent bulk load of strictly ascending pairs into an
          {e empty} tree ([false] = tree not empty, caller falls back to
          [insert]); [None] on backends without a packing constructor.
          [fill] is the node-packing fraction (default 0.9 — dense);
          preload paths that model an incrementally built tree pass a
          lower fill so nodes start near the compaction threshold *)
  mvcc : mvcc option;
      (** snapshot surface: present on version-stamped backends
          ([sagiv-mvcc] and its sharded composition); [None] elsewhere *)
}

type impl = { impl_name : string; make : order:int -> handle }

(** What a tree must provide to be wrapped into a {!handle}: the common
    shape every backend's functor output already has. Backends whose
    operations carry extra variants (e.g. the optimistic / preemptive
    lock-couplers) conform through a small inline module literal. *)
module type TREE_OPS = sig
  type t

  val search : t -> Handle.ctx -> int -> int option
  val insert : t -> Handle.ctx -> int -> int -> [ `Ok | `Duplicate ]
  val delete : t -> Handle.ctx -> int -> bool
  val cardinal : t -> int
  val height : t -> int
end

(** Close a tree value over its operations: the one place the [handle]
    record is built, so a new backend registers in ~5 lines. [commit]
    defaults to a no-op — in-memory backends have nothing to make
    durable; [range] defaults to unsupported. *)
let of_ops (type a) ?(commit = fun () -> ()) ?range ?sharding ?bulk_add ?mvcc
    ~name (module M : TREE_OPS with type t = a) (t : a) =
  {
    name;
    search = M.search t;
    insert = M.insert t;
    delete = M.delete t;
    cardinal = (fun () -> M.cardinal t);
    height = (fun () -> M.height t);
    commit;
    range;
    sharding;
    bulk_add;
    mvcc;
  }

(* K-way merge of per-shard range results: each list is sorted and the
   router partitions the keyspace, so the shard lists are disjoint and a
   fold of 2-way merges reproduces one globally ordered scan. *)
let merge_ranges lists =
  List.fold_left (List.merge (fun (a, _) (b, _) -> compare a b)) [] lists

(** Compose per-shard handles (each from {!of_ops}) into one handle that
    routes every keyed operation through {!Repro_storage.Shard_router}.
    [cardinal] sums, [height] maxes, [commit] commits every shard, and
    [range] k-way merges the per-shard leaf-chain scans; the [sharding]
    field exposes the router and per-shard commit so the server can fold
    a pipeline batch's acks into only the shards it touched. *)
let sharded ~name (subs : handle array) =
  let shards = Array.length subs in
  if shards = 0 then invalid_arg "Tree_intf.sharded: no shards";
  let route k = Repro_storage.Shard_router.shard_of ~shards k in
  let range =
    if Array.for_all (fun h -> h.range <> None) subs then
      Some
        (fun ctx ~lo ~hi ->
          merge_ranges
            (Array.to_list
               (Array.map (fun h -> (Option.get h.range) ctx ~lo ~hi) subs)))
    else None
  in
  let bulk_add =
    if Array.for_all (fun h -> h.bulk_add <> None) subs then
      Some
        (fun ?fill pairs ->
          (* partition the sorted pairs per shard; order (and thus
             strict ascent) is preserved within each shard *)
          let per = Array.make shards [] in
          List.iter
            (fun ((k, _) as p) -> per.(route k) <- p :: per.(route k))
            pairs;
          let ok = ref true in
          Array.iteri
            (fun i ps ->
              if not ((Option.get subs.(i).bulk_add) ?fill (List.rev ps))
              then ok := false)
            per;
          !ok)
    else None
  in
  {
    name;
    search = (fun ctx k -> subs.(route k).search ctx k);
    insert = (fun ctx k v -> subs.(route k).insert ctx k v);
    delete = (fun ctx k -> subs.(route k).delete ctx k);
    cardinal = (fun () -> Array.fold_left (fun a h -> a + h.cardinal ()) 0 subs);
    height = (fun () -> Array.fold_left (fun a h -> max a (h.height ())) 0 subs);
    commit = (fun () -> Array.iter (fun h -> h.commit ()) subs);
    range;
    sharding =
      Some
        {
          shard_count = shards;
          shard_of_key = route;
          commit_shard = (fun i -> subs.(i).commit ());
        };
    bulk_add;
    (* a generic composition cannot give ONE cut across shards (that
       needs a shared epoch clock underneath) — the mvcc-sharded
       constructor below overrides this with a true group snapshot *)
    mvcc = None;
  }

(** Route a handle's mutations through a {!Repro_core.Combine} array:
    contenders on the same hot key publish their ops and one combiner
    applies the merged result under the slot lock, so N writers cost at
    most two tree operations per key instead of N serialised leaf-lock
    acquisitions. Searches (and everything else) pass straight through —
    they were lock-free already. The combiner applies other publishers'
    operations with its own [ctx]; outcomes are valid linearizations
    (see {!Repro_core.Combine}). Returns the array (for its counters)
    alongside the wrapped handle. *)
let with_combining ?slots (h : handle) =
  let c = Combine.create ?slots () in
  let insert ctx k v =
    match
      Combine.mutate c ~key:k ~op:(Combine.Insert v) ~insert:(h.insert ctx)
        ~delete:(h.delete ctx)
    with
    | Combine.Inserted r -> r
    | Combine.Deleted _ -> assert false
  in
  let delete ctx k =
    match
      Combine.mutate c ~key:k ~op:Combine.Delete ~insert:(h.insert ctx)
        ~delete:(h.delete ctx)
    with
    | Combine.Deleted r -> r
    | Combine.Inserted _ -> assert false
  in
  (c, { h with name = h.name ^ "+combine"; insert; delete })

module Sagiv_int = Sagiv.Make (Repro_storage.Key.Int)
module Mvcc_int = Mvcc.Make (Repro_storage.Key.Int)
module Paged_int = Repro_storage.Paged_store.Make (Repro_storage.Key.Int)
module Sagiv_disk = Sagiv.Make_on_store (Repro_storage.Key.Int) (Paged_int)
module Mvcc_disk = Mvcc.Make_on_store (Repro_storage.Key.Int) (Paged_int)

module Sharded_int =
  Repro_storage.Sharded_store.Make (Repro_storage.Key.Int) (Paged_int)
module Ly_int = Lehman_yao.Make (Repro_storage.Key.Int)
module Lc_int = Lock_couple.Make (Repro_storage.Key.Int)
module Coarse_int = Coarse.Make (Repro_storage.Key.Int)

let sagiv ?(enqueue_on_delete = false) () =
  {
    impl_name = "sagiv";
    make =
      (fun ~order ->
        let t = Sagiv_int.create ~order ~enqueue_on_delete () in
        of_ops ~range:(Sagiv_int.range t)
          ~bulk_add:(fun ?fill ps -> Sagiv_int.bulk_add ?fill t ps)
          ~name:"sagiv" (module Sagiv_int) t);
  }

(** Like {!sagiv} but also hands back the raw tree, for benches that run
    compaction workers alongside. *)
let sagiv_raw ?(enqueue_on_delete = false) ~order () =
  let t = Sagiv_int.create ~order ~enqueue_on_delete () in
  ( t,
    of_ops ~range:(Sagiv_int.range t)
      ~bulk_add:(fun ?fill ps -> Sagiv_int.bulk_add ?fill t ps)
      ~name:"sagiv" (module Sagiv_int) t )

(* -- the MVCC-backed tree: version-stamped records under the Sagiv
      index, exposing the snapshot surface -- *)

let mvcc_snap_of (t : int Mvcc_int.t) (s : Mvcc_int.snap) =
  {
    snap_epoch = Mvcc_int.snap_epoch s;
    snap_search = (fun ctx k -> Mvcc_int.snap_get t s ctx k);
    snap_range = (fun ctx ~lo ~hi -> Mvcc_int.snap_range t s ctx ~lo ~hi);
    snap_release = (fun () -> Mvcc_int.release s);
  }

let mvcc_gauges_of (ts : int Mvcc_int.t array) () =
  {
    g_min_pinned = Mvcc_int.min_pinned ts.(0);
    g_snap_pins = Repro_storage.Epoch.pinned_snapshots (Mvcc_int.epoch ts.(0));
    g_live_versions =
      Array.fold_left (fun a t -> a + Mvcc_int.live_versions t) 0 ts;
    g_pruned_versions =
      Array.fold_left (fun a t -> a + Mvcc_int.pruned_versions t) 0 ts;
    g_gc_pending = Array.fold_left (fun a t -> a + Mvcc_int.gc_pending t) 0 ts;
  }

let mvcc_sub_handle (t : int Mvcc_int.t) ~name =
  of_ops
    ~range:(fun ctx ~lo ~hi -> Mvcc_int.range t ctx ~lo ~hi)
    ~bulk_add:(fun ?fill ps -> Mvcc_int.bulk_add ?fill t ps)
    ~mvcc:
      {
        snapshot = (fun () -> mvcc_snap_of t (Mvcc_int.snapshot t));
        vacuum =
          (fun ctx ->
            let removed = Mvcc_int.vacuum t ctx in
            ignore (Mvcc_int.reclaim t);
            removed);
        gauges = mvcc_gauges_of [| t |];
      }
    ~name
    (module struct
      type nonrec t = int Mvcc_int.t

      let search = Mvcc_int.get
      let insert = Mvcc_int.insert
      let delete = Mvcc_int.delete
      let cardinal = Mvcc_int.cardinal
      let height t = Mvcc_int.T.height (Mvcc_int.tree t)
    end)
    t

(** The MVCC tree plus its handle, for callers that also scan/vacuum
    through the typed API (benches, tests). *)
let sagiv_mvcc_raw ?(enqueue_on_delete = false) ~order () =
  let t = Mvcc_int.create ~order ~enqueue_on_delete () in
  (t, mvcc_sub_handle t ~name:"sagiv-mvcc")

let sagiv_mvcc ?(enqueue_on_delete = false) () =
  {
    impl_name = "sagiv-mvcc";
    make =
      (fun ~order ->
        let t = Mvcc_int.create ~order ~enqueue_on_delete () in
        mvcc_sub_handle t ~name:"sagiv-mvcc");
  }

let mvcc_sharded_name shards = Printf.sprintf "sagiv-mvcc-x%d" shards

(** [shards] MVCC trees sharing ONE epoch clock, composed into a routed
    handle whose [mvcc.snapshot] is a {e group} snapshot: one pin + one
    tick + one wait, then every shard reads at the same cut — the k-way
    merged [snap_range] is point-in-time consistent across shards. *)
let sagiv_mvcc_sharded_raw ?(enqueue_on_delete = false) ~shards ~order () =
  if shards < 1 then invalid_arg "Tree_intf.sagiv_mvcc_sharded: shards >= 1";
  let epoch = Repro_storage.Epoch.create () in
  let ts =
    Array.init shards (fun _ ->
        Mvcc_int.create ~order ~enqueue_on_delete ~epoch ())
  in
  let name = mvcc_sharded_name shards in
  let base =
    sharded ~name (Array.map (fun t -> mvcc_sub_handle t ~name) ts)
  in
  let route k = Repro_storage.Shard_router.shard_of ~shards k in
  let snapshot () =
    let s = Mvcc_int.snapshot_group ts in
    {
      snap_epoch = Mvcc_int.snap_epoch s;
      snap_search = (fun ctx k -> Mvcc_int.snap_get ts.(route k) s ctx k);
      snap_range =
        (fun ctx ~lo ~hi ->
          merge_ranges
            (Array.to_list
               (Array.map (fun t -> Mvcc_int.snap_range t s ctx ~lo ~hi) ts)));
      snap_release = (fun () -> Mvcc_int.release s);
    }
  in
  let vacuum ctx =
    let removed =
      Array.fold_left (fun a t -> a + Mvcc_int.vacuum t ctx) 0 ts
    in
    Array.iter (fun t -> ignore (Mvcc_int.reclaim t)) ts;
    removed
  in
  ( ts,
    { base with mvcc = Some { snapshot; vacuum; gauges = mvcc_gauges_of ts } }
  )

let sagiv_mvcc_sharded ?enqueue_on_delete ~shards () =
  {
    impl_name = mvcc_sharded_name shards;
    make =
      (fun ~order ->
        snd (sagiv_mvcc_sharded_raw ?enqueue_on_delete ~shards ~order ()));
  }

let make_disk_store ?cache_pages ?stripes ?commit_interval ?commit_batch
    ?(wal = false) () =
  Paged_int.create_memory ?cache_pages ?stripes ?commit_interval ?commit_batch
    ~wal ()

(** The same Sagiv tree over the durable {!Repro_storage.Paged_store}
    (memory-backed paged file: full pager stack, no filesystem). [wal]
    attaches a write-ahead log so [handle.commit] group-commits instead
    of degrading to a stop-the-world sync. *)
let sagiv_disk ?(enqueue_on_delete = false) ?cache_pages ?stripes
    ?commit_interval ?commit_batch ?wal () =
  {
    impl_name = "sagiv-disk";
    make =
      (fun ~order ->
        let store =
          make_disk_store ?cache_pages ?stripes ?commit_interval ?commit_batch
            ?wal ()
        in
        let t = Sagiv_disk.create ~order ~enqueue_on_delete ~store () in
        of_ops
          ~commit:(fun () -> Sagiv_disk.commit t)
          ~range:(Sagiv_disk.range t)
          ~bulk_add:(fun ?fill ps -> Sagiv_disk.bulk_add ?fill t ps)
          ~name:"sagiv-disk" (module Sagiv_disk) t);
  }

(** Like {!sagiv_raw} for the disk backend: hands back the raw tree for
    compaction workers, writer loops (the store is [raw.Handle.store])
    and validation. *)
let sagiv_disk_raw ?(enqueue_on_delete = false) ?cache_pages ?stripes
    ?commit_interval ?commit_batch ?wal ~order () =
  let store =
    make_disk_store ?cache_pages ?stripes ?commit_interval ?commit_batch ?wal ()
  in
  let t = Sagiv_disk.create ~order ~enqueue_on_delete ~store () in
  ( t,
    of_ops
      ~commit:(fun () -> Sagiv_disk.commit t)
      ~range:(Sagiv_disk.range t)
      ~bulk_add:(fun ?fill ps -> Sagiv_disk.bulk_add ?fill t ps)
      ~name:"sagiv-disk" (module Sagiv_disk) t )

let disk_sub_handle t =
  of_ops
    ~commit:(fun () -> Sagiv_disk.commit t)
    ~range:(Sagiv_disk.range t)
    ~bulk_add:(fun ?fill ps -> Sagiv_disk.bulk_add ?fill t ps)
    ~name:"sagiv-disk" (module Sagiv_disk) t

let sharded_name shards = Printf.sprintf "sagiv-disk-x%d" shards

(** One Sagiv tree per shard of an existing {!Sharded_int.t}, composed
    into a routed handle — how file-backed callers (CLI serve, benches)
    shard: create/open the store themselves, then wrap. Hands back the
    raw trees for flush/validation. *)
let sagiv_disk_sharded_on ?(enqueue_on_delete = false) ~order sst =
  let trees =
    Array.map
      (fun store -> Sagiv_disk.create ~order ~enqueue_on_delete ~store ())
      (Sharded_int.stores sst)
  in
  ( trees,
    sharded
      ~name:(sharded_name (Sharded_int.count sst))
      (Array.map disk_sub_handle trees) )

(** Rebuild the routed handle over a reopened {!Sharded_int.t} (every
    shard's tree metadata was {!Sagiv_disk.flush}ed, or recovered from
    its WAL). *)
let sagiv_disk_sharded_open ?(enqueue_on_delete = false) sst =
  let trees =
    Array.map
      (fun store -> Sagiv_disk.open_existing ~enqueue_on_delete store)
      (Sharded_int.stores sst)
  in
  ( trees,
    sharded
      ~name:(sharded_name (Sharded_int.count sst))
      (Array.map disk_sub_handle trees) )

(** Memory-backed sharded disk tree: [shards] fully independent
    {!Paged_int} stores (own buffer pool, WAL, group-commit leader),
    one Sagiv tree each, routed by {!Repro_storage.Shard_router}. Hands
    back the sharded store (per-shard io stats, writers) and the raw
    trees alongside the handle. *)
let sagiv_disk_sharded_raw ?(enqueue_on_delete = false) ?cache_pages ?stripes
    ?commit_interval ?commit_batch ?wal ~shards ~order () =
  let sst =
    Sharded_int.create_memory ?cache_pages ?stripes ?commit_interval
      ?commit_batch ?wal ~shards ()
  in
  let trees, h = sagiv_disk_sharded_on ~enqueue_on_delete ~order sst in
  (sst, trees, h)

let sagiv_disk_sharded ?enqueue_on_delete ?cache_pages ?stripes
    ?commit_interval ?commit_batch ?wal ~shards () =
  {
    impl_name = sharded_name shards;
    make =
      (fun ~order ->
        let _, _, h =
          sagiv_disk_sharded_raw ?enqueue_on_delete ?cache_pages ?stripes
            ?commit_interval ?commit_batch ?wal ~shards ~order ()
        in
        h);
  }

(* -- durable MVCC: version chains persisted through the paged store
      (vrec pages in the same WAL/commit/recovery path as the tree) -- *)

(** Conservative int budget for a vrec page's stream slice: worst-case
    10 varint bytes per int plus codec framing must fit the page. *)
let vrec_page_ints store = max 32 ((Paged_int.page_size store - 48) / 10)

let mvcc_disk_sub_handle (t : int Mvcc_disk.t) ~name =
  of_ops
    ~commit:(fun () -> Mvcc_disk.commit t)
    ~range:(fun ctx ~lo ~hi -> Mvcc_disk.range t ctx ~lo ~hi)
    ~bulk_add:(fun ?fill ps -> Mvcc_disk.bulk_add ?fill t ps)
    ~mvcc:
      {
        snapshot =
          (fun () ->
            let s = Mvcc_disk.snapshot t in
            {
              snap_epoch = Mvcc_disk.snap_epoch s;
              snap_search = (fun ctx k -> Mvcc_disk.snap_get t s ctx k);
              snap_range =
                (fun ctx ~lo ~hi -> Mvcc_disk.snap_range t s ctx ~lo ~hi);
              snap_release = (fun () -> Mvcc_disk.release s);
            });
        vacuum =
          (fun ctx ->
            let removed = Mvcc_disk.vacuum t ctx in
            ignore (Mvcc_disk.reclaim t);
            removed);
        gauges =
          (fun () ->
            {
              g_min_pinned = Mvcc_disk.min_pinned t;
              g_snap_pins =
                Repro_storage.Epoch.pinned_snapshots (Mvcc_disk.epoch t);
              g_live_versions = Mvcc_disk.live_versions t;
              g_pruned_versions = Mvcc_disk.pruned_versions t;
              g_gc_pending = Mvcc_disk.gc_pending t;
            });
      }
    ~name
    (module struct
      type nonrec t = int Mvcc_disk.t

      let search = Mvcc_disk.get
      let insert = Mvcc_disk.insert
      let delete = Mvcc_disk.delete
      let cardinal = Mvcc_disk.cardinal
      let height t = Mvcc_disk.T.height (Mvcc_disk.tree t)
    end)
    t

let mvcc_disk_name shards =
  if shards = 1 then "sagiv-mvcc-disk"
  else Printf.sprintf "sagiv-mvcc-disk-x%d" shards

(* Compose per-shard durable MVCC trees (sharing ONE epoch clock) into a
   routed handle whose snapshot is a group cut, exactly like
   {!sagiv_mvcc_sharded_raw} — but over durable stores. *)
let mvcc_disk_compose ~name (ts : int Mvcc_disk.t array) =
  let shards = Array.length ts in
  let base =
    sharded ~name (Array.map (fun t -> mvcc_disk_sub_handle t ~name) ts)
  in
  let route k = Repro_storage.Shard_router.shard_of ~shards k in
  let snapshot () =
    let s = Mvcc_disk.snapshot_group ts in
    {
      snap_epoch = Mvcc_disk.snap_epoch s;
      snap_search = (fun ctx k -> Mvcc_disk.snap_get ts.(route k) s ctx k);
      snap_range =
        (fun ctx ~lo ~hi ->
          merge_ranges
            (Array.to_list
               (Array.map (fun t -> Mvcc_disk.snap_range t s ctx ~lo ~hi) ts)));
      snap_release = (fun () -> Mvcc_disk.release s);
    }
  in
  let vacuum ctx =
    let removed =
      Array.fold_left (fun a t -> a + Mvcc_disk.vacuum t ctx) 0 ts
    in
    Array.iter (fun t -> ignore (Mvcc_disk.reclaim t)) ts;
    removed
  in
  let gauges () =
    {
      g_min_pinned = Mvcc_disk.min_pinned ts.(0);
      g_snap_pins =
        Repro_storage.Epoch.pinned_snapshots (Mvcc_disk.epoch ts.(0));
      g_live_versions =
        Array.fold_left (fun a t -> a + Mvcc_disk.live_versions t) 0 ts;
      g_pruned_versions =
        Array.fold_left (fun a t -> a + Mvcc_disk.pruned_versions t) 0 ts;
      g_gc_pending = Array.fold_left (fun a t -> a + Mvcc_disk.gc_pending t) 0 ts;
    }
  in
  { base with mvcc = Some { snapshot; vacuum; gauges } }

(** Durable MVCC trees over an existing (empty) {!Sharded_int.t}: one
    {!Mvcc_disk} per shard store, all sharing one epoch clock so the
    composed handle's snapshot is a true cross-shard cut. Hands back the
    raw trees for commit/flush/validation. *)
let sagiv_mvcc_disk_on ?(enqueue_on_delete = false) ~order sst =
  let epoch = Repro_storage.Epoch.create () in
  let ts =
    Array.map
      (fun store ->
        Mvcc_disk.create_durable ~order ~enqueue_on_delete ~epoch
          ~page_ints:(vrec_page_ints store) ~enc:Fun.id ~dec:Fun.id store)
      (Sharded_int.stores sst)
  in
  (ts, mvcc_disk_compose ~name:(mvcc_disk_name (Array.length ts)) ts)

(** Reopen durable MVCC trees over a reopened {!Sharded_int.t} (recovery
    replay already ran in the stores' open): every shard's chains restore
    exactly as persisted, the shared clock restarts above all persisted
    stamps. *)
let sagiv_mvcc_disk_open ?(enqueue_on_delete = false) sst =
  let epoch = Repro_storage.Epoch.create () in
  let ts =
    Array.map
      (fun store ->
        Mvcc_disk.open_durable ~enqueue_on_delete ~epoch
          ~page_ints:(vrec_page_ints store) ~enc:Fun.id ~dec:Fun.id store)
      (Sharded_int.stores sst)
  in
  (ts, mvcc_disk_compose ~name:(mvcc_disk_name (Array.length ts)) ts)

(** Memory-backed durable MVCC (full pager stack, no filesystem) — the
    [--mvcc --backend disk] composition benches and tests sweep. *)
let sagiv_mvcc_disk_raw ?(enqueue_on_delete = false) ?cache_pages ?stripes
    ?commit_interval ?commit_batch ?wal ~shards ~order () =
  if shards < 1 then invalid_arg "Tree_intf.sagiv_mvcc_disk: shards >= 1";
  let sst =
    Sharded_int.create_memory ?cache_pages ?stripes ?commit_interval
      ?commit_batch ?wal ~shards ()
  in
  let ts, h = sagiv_mvcc_disk_on ~enqueue_on_delete ~order sst in
  (sst, ts, h)

let sagiv_mvcc_disk ?enqueue_on_delete ?cache_pages ?stripes ?commit_interval
    ?commit_batch ?wal ~shards () =
  {
    impl_name = mvcc_disk_name shards;
    make =
      (fun ~order ->
        let _, _, h =
          sagiv_mvcc_disk_raw ?enqueue_on_delete ?cache_pages ?stripes
            ?commit_interval ?commit_batch ?wal ~shards ~order ()
        in
        h);
  }

let lehman_yao =
  {
    impl_name = "lehman-yao";
    make =
      (fun ~order ->
        of_ops ~name:"lehman-yao" (module Ly_int) (Ly_int.create ~order ()));
  }

let lock_couple =
  {
    impl_name = "lock-couple";
    make =
      (fun ~order ->
        of_ops ~name:"lock-couple" (module Lc_int) (Lc_int.create ~order ()));
  }

(** Bayer–Schkolnick's improved protocol: optimistic writers (shared
    latches down, exclusive leaf, pessimistic retry on splits). *)
let lock_couple_optimistic =
  {
    impl_name = "lc-optimistic";
    make =
      (fun ~order ->
        of_ops ~name:"lc-optimistic"
          (module struct
            include Lc_int

            let insert = Lc_int.insert_optimistic
            let delete = Lc_int.delete_optimistic
          end)
          (Lc_int.create ~order ()));
  }

(** Top-down preemptive splitting (Guibas–Sedgewick style): full nodes
    split on the way down, max two exclusive latches per writer. *)
let lock_couple_preemptive =
  {
    impl_name = "lc-preemptive";
    make =
      (fun ~order ->
        of_ops ~name:"lc-preemptive"
          (module struct
            include Lc_int

            let insert = Lc_int.insert_preemptive
            let delete = Lc_int.delete_optimistic
          end)
          (Lc_int.create ~order ()));
  }

let coarse =
  {
    impl_name = "coarse";
    make =
      (fun ~order ->
        of_ops ~name:"coarse" (module Coarse_int) (Coarse_int.create ~order ()));
  }

let all =
  [
    sagiv ();
    sagiv_disk ();
    sagiv_mvcc ();
    lehman_yao;
    lock_couple;
    lock_couple_optimistic;
    lock_couple_preemptive;
    coarse;
  ]
