(** First-class uniform interface over the concurrent trees (int keys),
    so the workload driver and the benches can sweep implementations. *)

open Repro_core

type handle = {
  name : string;
  search : Handle.ctx -> int -> int option;
  insert : Handle.ctx -> int -> int -> [ `Ok | `Duplicate ];
  delete : Handle.ctx -> int -> bool;
  cardinal : unit -> int;
  height : unit -> int;
  commit : unit -> unit;
      (** durably commit completed operations (group commit on a
          WAL-mode disk backend, full sync on a plain durable one, no-op
          in memory) — callable from any worker domain *)
  range : (Handle.ctx -> lo:int -> hi:int -> (int * int) list) option;
      (** lock-free ordered scan of [lo <= key <= hi] along the leaf
          chain; [None] on backends without a leaf chain to walk (the
          network server answers RANGE with "unsupported" there) *)
}

type impl = { impl_name : string; make : order:int -> handle }

(** What a tree must provide to be wrapped into a {!handle}: the common
    shape every backend's functor output already has. Backends whose
    operations carry extra variants (e.g. the optimistic / preemptive
    lock-couplers) conform through a small inline module literal. *)
module type TREE_OPS = sig
  type t

  val search : t -> Handle.ctx -> int -> int option
  val insert : t -> Handle.ctx -> int -> int -> [ `Ok | `Duplicate ]
  val delete : t -> Handle.ctx -> int -> bool
  val cardinal : t -> int
  val height : t -> int
end

(** Close a tree value over its operations: the one place the [handle]
    record is built, so a new backend registers in ~5 lines. [commit]
    defaults to a no-op — in-memory backends have nothing to make
    durable; [range] defaults to unsupported. *)
let of_ops (type a) ?(commit = fun () -> ()) ?range ~name
    (module M : TREE_OPS with type t = a) (t : a) =
  {
    name;
    search = M.search t;
    insert = M.insert t;
    delete = M.delete t;
    cardinal = (fun () -> M.cardinal t);
    height = (fun () -> M.height t);
    commit;
    range;
  }

module Sagiv_int = Sagiv.Make (Repro_storage.Key.Int)
module Paged_int = Repro_storage.Paged_store.Make (Repro_storage.Key.Int)
module Sagiv_disk = Sagiv.Make_on_store (Repro_storage.Key.Int) (Paged_int)
module Ly_int = Lehman_yao.Make (Repro_storage.Key.Int)
module Lc_int = Lock_couple.Make (Repro_storage.Key.Int)
module Coarse_int = Coarse.Make (Repro_storage.Key.Int)

let sagiv ?(enqueue_on_delete = false) () =
  {
    impl_name = "sagiv";
    make =
      (fun ~order ->
        let t = Sagiv_int.create ~order ~enqueue_on_delete () in
        of_ops ~range:(Sagiv_int.range t) ~name:"sagiv" (module Sagiv_int) t);
  }

(** Like {!sagiv} but also hands back the raw tree, for benches that run
    compaction workers alongside. *)
let sagiv_raw ?(enqueue_on_delete = false) ~order () =
  let t = Sagiv_int.create ~order ~enqueue_on_delete () in
  (t, of_ops ~range:(Sagiv_int.range t) ~name:"sagiv" (module Sagiv_int) t)

let make_disk_store ?cache_pages ?stripes ?commit_interval ?commit_batch
    ?(wal = false) () =
  Paged_int.create_memory ?cache_pages ?stripes ?commit_interval ?commit_batch
    ~wal ()

(** The same Sagiv tree over the durable {!Repro_storage.Paged_store}
    (memory-backed paged file: full pager stack, no filesystem). [wal]
    attaches a write-ahead log so [handle.commit] group-commits instead
    of degrading to a stop-the-world sync. *)
let sagiv_disk ?(enqueue_on_delete = false) ?cache_pages ?stripes
    ?commit_interval ?commit_batch ?wal () =
  {
    impl_name = "sagiv-disk";
    make =
      (fun ~order ->
        let store =
          make_disk_store ?cache_pages ?stripes ?commit_interval ?commit_batch
            ?wal ()
        in
        let t = Sagiv_disk.create ~order ~enqueue_on_delete ~store () in
        of_ops
          ~commit:(fun () -> Sagiv_disk.commit t)
          ~range:(Sagiv_disk.range t) ~name:"sagiv-disk" (module Sagiv_disk) t);
  }

(** Like {!sagiv_raw} for the disk backend: hands back the raw tree for
    compaction workers, writer loops (the store is [raw.Handle.store])
    and validation. *)
let sagiv_disk_raw ?(enqueue_on_delete = false) ?cache_pages ?stripes
    ?commit_interval ?commit_batch ?wal ~order () =
  let store =
    make_disk_store ?cache_pages ?stripes ?commit_interval ?commit_batch ?wal ()
  in
  let t = Sagiv_disk.create ~order ~enqueue_on_delete ~store () in
  ( t,
    of_ops
      ~commit:(fun () -> Sagiv_disk.commit t)
      ~range:(Sagiv_disk.range t) ~name:"sagiv-disk" (module Sagiv_disk) t )

let lehman_yao =
  {
    impl_name = "lehman-yao";
    make =
      (fun ~order ->
        of_ops ~name:"lehman-yao" (module Ly_int) (Ly_int.create ~order ()));
  }

let lock_couple =
  {
    impl_name = "lock-couple";
    make =
      (fun ~order ->
        of_ops ~name:"lock-couple" (module Lc_int) (Lc_int.create ~order ()));
  }

(** Bayer–Schkolnick's improved protocol: optimistic writers (shared
    latches down, exclusive leaf, pessimistic retry on splits). *)
let lock_couple_optimistic =
  {
    impl_name = "lc-optimistic";
    make =
      (fun ~order ->
        of_ops ~name:"lc-optimistic"
          (module struct
            include Lc_int

            let insert = Lc_int.insert_optimistic
            let delete = Lc_int.delete_optimistic
          end)
          (Lc_int.create ~order ()));
  }

(** Top-down preemptive splitting (Guibas–Sedgewick style): full nodes
    split on the way down, max two exclusive latches per writer. *)
let lock_couple_preemptive =
  {
    impl_name = "lc-preemptive";
    make =
      (fun ~order ->
        of_ops ~name:"lc-preemptive"
          (module struct
            include Lc_int

            let insert = Lc_int.insert_preemptive
            let delete = Lc_int.delete_optimistic
          end)
          (Lc_int.create ~order ()));
  }

let coarse =
  {
    impl_name = "coarse";
    make =
      (fun ~order ->
        of_ops ~name:"coarse" (module Coarse_int) (Coarse_int.create ~order ()));
  }

let all =
  [
    sagiv ();
    sagiv_disk ();
    lehman_yao;
    lock_couple;
    lock_couple_optimistic;
    lock_couple_preemptive;
    coarse;
  ]
