(** Multi-domain run loop: spawns worker domains, synchronises their start
    on a barrier, runs a fixed number of operations per worker, and merges
    per-domain statistics. *)

open Repro_core
open Repro_baseline

(* Spin barrier: all parties decrement then wait for zero. *)
module Barrier = struct
  type t = { remaining : int Atomic.t }

  let create n = { remaining = Atomic.make n }

  let wait t =
    Atomic.decr t.remaining;
    while Atomic.get t.remaining > 0 do
      Domain.cpu_relax ()
    done
end

type result = {
  elapsed_s : float;
  total_ops : int;
  throughput : float;  (** operations per second, all domains *)
  stats : Repro_storage.Stats.t;  (** merged over worker domains *)
  per_domain : Repro_storage.Stats.t array;
  latency : Repro_util.Histogram.t option;
      (** per-operation latency (seconds), merged, when requested *)
}

let percentiles_line h =
  Printf.sprintf "p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus"
    (1e6 *. Repro_util.Histogram.percentile h 50.0)
    (1e6 *. Repro_util.Histogram.percentile h 95.0)
    (1e6 *. Repro_util.Histogram.percentile h 99.0)
    (1e6 *. Repro_util.Histogram.max_value h)

(** Run [f domain_index ctx] on [domains] domains in parallel. [f] must
    loop over its own operations; the elapsed time covers the span between
    the barrier release and the last domain finishing. *)
let run_parallel ~domains ~(f : int -> Handle.ctx -> unit) : result =
  let barrier = Barrier.create (domains + 1) in
  let ctxs = Array.init domains (fun i -> Handle.ctx ~slot:i) in
  let spawn i =
    Domain.spawn (fun () ->
        Barrier.wait barrier;
        f i ctxs.(i))
  in
  let workers = Array.init domains spawn in
  let t0 = ref 0.0 in
  Barrier.wait barrier;
  t0 := Unix.gettimeofday ();
  Array.iter Domain.join workers;
  let elapsed = Unix.gettimeofday () -. !t0 in
  let merged = Repro_storage.Stats.create () in
  Array.iter (fun c -> Repro_storage.Stats.merge ~into:merged c.Handle.stats) ctxs;
  {
    elapsed_s = elapsed;
    total_ops = merged.Repro_storage.Stats.ops;
    throughput = float_of_int merged.Repro_storage.Stats.ops /. elapsed;
    stats = merged;
    per_domain = Array.map (fun c -> c.Handle.stats) ctxs;
    latency = None;
  }

(** Preload [tree] with the spec's deterministic key set (single domain,
    not measured). A fresh tree takes the packing bulk-load fast path
    when the backend offers one ([Tree_intf.handle.bulk_add]: sort the
    keys, build packed levels, install — no per-key lock traffic); any
    other case falls back to one insert per key, which is idempotent
    over whatever the bulk path loaded. Packs at [fill = 0.5] — nodes at
    exactly the half-full threshold, the state an incremental build's
    splits leave behind — so the measured run starts from the same
    structural regime as the insert path it replaces: deletes dip nodes
    under half-full (feeding the compaction queue) and inserts still
    split, instead of a dense 0.9-packed tree absorbing both. *)
let preload (tree : Tree_intf.handle) ~seed spec =
  let keys = Workload.preload_keys ~seed spec in
  let bulk_loaded =
    match tree.Tree_intf.bulk_add with
    | Some bulk ->
        let sorted = Array.copy keys in
        Array.sort compare sorted;
        bulk ~fill:0.5 (Array.to_list (Array.map (fun k -> (k, k * 2)) sorted))
    | None -> false
  in
  if not bulk_loaded then begin
    let ctx = Handle.ctx ~slot:0 in
    Array.iter (fun k -> ignore (tree.Tree_intf.insert ctx k (k * 2))) keys
  end;
  Array.length keys

(** Run [ops_per_domain] sampled operations per domain against [tree].
    With [measure_latency] each operation is individually timed into a
    per-domain histogram; the merged histogram lands in [result.latency]
    (costs one clock read per op). *)
let run_ops ?(measure_latency = false) (tree : Tree_intf.handle) ~domains ~ops_per_domain
    ~seed spec : result =
  let hists =
    Array.init domains (fun _ -> Repro_util.Histogram.create ())
  in
  let result =
    run_parallel ~domains ~f:(fun i ctx ->
        let s = Workload.sampler ~seed ~worker:i spec in
        let h = hists.(i) in
        let run_op () =
          match Workload.next_op s with
          | Workload.Search k -> ignore (tree.Tree_intf.search ctx k)
          | Workload.Insert (k, v) -> ignore (tree.Tree_intf.insert ctx k v)
          | Workload.Delete k -> ignore (tree.Tree_intf.delete ctx k)
        in
        if measure_latency then
          for _ = 1 to ops_per_domain do
            let t0 = Unix.gettimeofday () in
            run_op ();
            Repro_util.Histogram.add h (Unix.gettimeofday () -. t0)
          done
        else
          for _ = 1 to ops_per_domain do
            run_op ()
          done)
  in
  if measure_latency then begin
    let merged = Repro_util.Histogram.create () in
    Array.iter (fun h -> Repro_util.Histogram.merge ~into:merged h) hists;
    { result with latency = Some merged }
  end
  else result

(** Like {!run_ops} but with one extra domain per element of [aux], each
    running its function (a {!Repro_core.Compactor} loop, a
    {!Repro_storage.Paged_store} writer loop, ...) for the duration of the
    workload. Each function receives the shared stop flag it must poll and
    a fresh context with a slot disjoint from the measured domains. Aux
    stats are merged and returned separately. *)
let run_ops_with_aux (tree : Tree_intf.handle) ~domains
    ~(aux : (stop:bool Atomic.t -> Handle.ctx -> unit) array) ~ops_per_domain
    ~seed spec : result * Repro_storage.Stats.t =
  let stop = Atomic.make false in
  let workers = Array.length aux in
  let aux_ctxs = Array.init workers (fun i -> Handle.ctx ~slot:(domains + i)) in
  let aux_domains =
    Array.init workers (fun i ->
        Domain.spawn (fun () -> aux.(i) ~stop aux_ctxs.(i)))
  in
  let result = run_ops tree ~domains ~ops_per_domain ~seed spec in
  Atomic.set stop true;
  Array.iter Domain.join aux_domains;
  let aux_stats = Repro_storage.Stats.create () in
  Array.iter
    (fun c -> Repro_storage.Stats.merge ~into:aux_stats c.Handle.stats)
    aux_ctxs;
  (result, aux_stats)

(** Like {!run_ops} but with [workers] extra domains all running [worker]. *)
let run_ops_with_workers (tree : Tree_intf.handle) ~domains ~workers
    ~(worker : stop:bool Atomic.t -> Handle.ctx -> unit) ~ops_per_domain ~seed
    spec : result * Repro_storage.Stats.t =
  run_ops_with_aux tree ~domains ~aux:(Array.make workers worker) ~ops_per_domain
    ~seed spec

(** Like {!run_ops} but with [compactors] extra domains running
    {!Repro_core.Compactor} workers on [raw] for the duration of the
    workload (experiments E4/E5). Compactor stats are returned separately. *)
let run_ops_with_compaction (raw : (int, int Repro_storage.Store.t) Handle.t)
    (tree : Tree_intf.handle) ~domains ~compactors ~ops_per_domain ~seed spec :
    result * Repro_storage.Stats.t =
  let module C = Compactor.Make (Repro_storage.Key.Int) in
  run_ops_with_workers tree ~domains ~workers:compactors
    ~worker:(fun ~stop ctx -> C.run_worker raw ctx ~stop)
    ~ops_per_domain ~seed spec
