(** Simulated-crash harness for the durable store.

    Runs a deterministic Sagiv-tree workload over the full
    {!Repro_storage.Paged_store} stack on a {e crash-shadow}
    {!Repro_storage.Paged_file} (writes not covered by an fsync are lost
    at the crash), with one {!Repro_storage.Failpoint} site armed to kill
    the simulated process at an exact IO boundary. After the crash it
    harvests the durable image, reopens it cold, and checks:

    - the store opens (falling back across header slots, degrading a
      damaged free chain to a leak — never refusing an intact tree);
    - {!Repro_core.Validate} finds a structurally sound tree;
    - the recovered contents are {e exactly} one of the two states the
      crash-atomic sync permits: the last acknowledged sync, or — only
      when the crash hit inside a sync after its commit fsync — the
      in-flight one. Acknowledged data is never lost, and no value is
      ever torn or half-applied.

    The oracle is a sequential model: the workload runs single-domain
    (the background writer may run concurrently — it only moves bytes,
    never changes contents), so the key set at each sync is known
    exactly. In WAL durability mode ({!run_wal_tree} and friends) the
    same oracle tightens to the {e group-commit} point: the store runs
    on a shadow data device {e and} a shadow log device, recovery
    replays the log's crash image, and the recovered contents must be
    exactly the last acknowledged commit (or the in-flight one when the
    crash landed past its log fsync). See doc/RECOVERY.md for the crash
    model and its assumptions. *)

open Repro_storage

module PS = Paged_store.Make (Key.Int)
module Sg = Repro_core.Sagiv.Make_on_store (Key.Int) (PS)
module V = Repro_core.Validate.Make_on_store (Key.Int) (PS)

type config = {
  writer : bool;  (** run the store's background writer domain *)
  cache_pages : int;  (** decoded-node cache size (small → eviction traffic) *)
}

type outcome = {
  site : string;  (** armed failpoint site *)
  policy : string;
  config : config;
  crashed : bool;  (** false when the armed policy never fired *)
  ops : int;  (** workload ops issued before the crash (or all of them) *)
  acked_syncs : int;  (** syncs that returned before the crash *)
  recovered_keys : int;
  recovered_gen : int;  (** header generation the reopen landed on *)
}

let pp_outcome o =
  Printf.sprintf "%-28s %-14s writer=%b cache=%-3d %s ops=%-4d syncs=%-2d -> %d keys @gen %d"
    o.site o.policy o.config.writer o.config.cache_pages
    (if o.crashed then "CRASH" else "clean")
    o.ops o.acked_syncs o.recovered_keys o.recovered_gen

let fail fmt = Printf.ksprintf failwith fmt

let payload k = (k * 7) + 1

let leaf i =
  {
    Node.level = 0;
    keys = [| i |];
    ptrs = [| payload i |];
    low = Bound.Neg_inf;
    high = Bound.Pos_inf;
    link = None;
    is_root = false;
    state = Node.Live;
  }

let policy_name : Failpoint.policy -> string = function
  | Failpoint.Off -> "off"
  | Failpoint.Error { every } -> Printf.sprintf "error/%d" every
  | Failpoint.Short_write { every } -> Printf.sprintf "short/%d" every
  | Failpoint.Torn_write -> "torn"
  | Failpoint.Crash_after n -> Printf.sprintf "crash@%d" n

(* Reopen the durable image a crash at this instant would leave behind
   and hand back a cold tree over it. All failpoints are disarmed first:
   the dead process's policies must not outlive it into recovery. *)
let recover ~cache_pages pfile =
  let image = Paged_file.crash_image pfile in
  Failpoint.reset ();
  let store = PS.open_from ~cache_pages image in
  let tree = Sg.open_existing store in
  (store, tree)

let check_valid tree ~what =
  let r = V.check tree in
  if not (Repro_core.Validate.ok r) then
    fail "%s: recovered tree invalid: %s" what
      (String.concat "; " r.Repro_core.Validate.errors)

(* The recovered pairs must be exactly [m] (same keys, same payloads). *)
let matches_model recovered (m : (int, int) Hashtbl.t) =
  List.length recovered = Hashtbl.length m
  && List.for_all (fun (k, v) -> Hashtbl.find_opt m k = Some v) recovered

(* Key sampler for the crash workloads. [Uniform] unscrambled is
   bit-identical to the historical [Splitmix.int rng space] draw, so the
   default runs replay the exact seeded histories they always had; a
   [Zipfian] dist turns the same oracle loose on hot-key traffic. *)
let key_sampler ~space dist =
  let scramble = dist <> Repro_util.Distribution.Uniform in
  Repro_util.Distribution.create ~scramble ~space dist

(** One tree-level crash run: preload + clean sync, arm [site] with
    [policy], run a seeded insert/delete/search mix ([dist] keys, default
    uniform) syncing every 25 ops, catch the simulated death, recover,
    and hold recovery to the oracle. A run where the policy never fires
    ends with a clean close and an exact-contents check instead. *)
let run_tree ?(ops = 400) ?(seed = 42) ?(dist = Repro_util.Distribution.Uniform)
    ~site ~policy (config : config) =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:512 () in
  let store = PS.create_on ~cache_pages:config.cache_pages pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model : (int, int) Hashtbl.t = Hashtbl.create 256 in
  (* Preload and sync before arming: the durable image always holds a
     valid committed generation when the faults switch on. *)
  for k = 0 to 49 do
    if k mod 2 = 0 then begin
      ignore (Sg.insert tree c k (payload k));
      Hashtbl.replace model k (payload k)
    end
  done;
  Sg.flush tree;
  if config.writer then PS.start_writer store;
  (* [committed]: model at the last sync that returned. [inflight]: model
     at a sync call still in progress — a crash inside a sync may land
     either side of its commit fsync, so both states are legal. *)
  let committed = ref (Hashtbl.copy model) in
  let inflight = ref None in
  let acked = ref 0 in
  let issued = ref 0 in
  let crashed = ref false in
  Failpoint.set site policy;
  (try
     let rng = Repro_util.Splitmix.create seed in
     let keys = key_sampler ~space:200 dist in
     for i = 1 to ops do
       issued := i;
       let k = Repro_util.Distribution.sample keys rng in
       (match Repro_util.Splitmix.int rng 10 with
       | 0 | 1 ->
           if Sg.delete tree c k then Hashtbl.remove model k
       | 2 -> ignore (Sg.search tree c k)
       | _ -> (
           match Sg.insert tree c k (payload k) with
           | `Ok -> Hashtbl.replace model k (payload k)
           | `Duplicate -> ()));
       if i mod 25 = 0 then begin
         inflight := Some (Hashtbl.copy model);
         Sg.flush tree;
         committed := Hashtbl.copy model;
         inflight := None;
         incr acked
       end
     done
   with Failpoint.Crash _ -> crashed := true);
  (* The writer domain may be the one that died (its exception re-raises
     at the join), or may have observed the latched crash. *)
  (try PS.stop_writer store with Failpoint.Crash _ -> ());
  let crashed = !crashed || Failpoint.is_crashed () in
  if not crashed then begin
    (* Policy never fired: finish cleanly so the run still checks the
       straight-line durability path. *)
    Failpoint.reset ();
    Sg.flush tree;
    committed := Hashtbl.copy model;
    inflight := None
  end;
  let store2, tree2 = recover ~cache_pages:config.cache_pages pfile in
  check_valid tree2 ~what:site;
  let recovered = Sg.to_list tree2 in
  let ok =
    matches_model recovered !committed
    || match !inflight with Some m -> matches_model recovered m | None -> false
  in
  if not ok then
    fail "%s (%s): recovered %d keys matching neither the %d committed nor the in-flight sync"
      site (policy_name policy) (List.length recovered)
      (Hashtbl.length !committed);
  {
    site;
    policy = policy_name policy;
    config;
    crashed;
    ops = !issued;
    acked_syncs = !acked;
    recovered_keys = List.length recovered;
    recovered_gen = PS.generation store2;
  }

(** Torn header-slot write: with nothing else dirty, the first write of a
    sync is the staged header — tear it mid-page and die. The slot being
    torn is the {e alternate} one, so recovery never loses the committed
    generation: depending on where the seeded tear lands, the torn slot
    either fails its checksum (or reproduces stale-but-valid older-gen
    bytes, which the committed slot outranks) and recovery falls back, or
    the tear covered every byte that differs and the staged header
    physically landed in full, in which case the newer generation — with
    byte-identical contents — validates and wins. Runs a spread of RNG
    seeds and requires both branches to occur. *)
let run_torn_header (config : config) =
  let seeds = 24 in
  let committed = ref 0 and fell_back = ref 0 and landed = ref 0 in
  for s = 1 to seeds do
    Failpoint.reset ();
    Failpoint.seed (0x7EAD + s);
    let pfile = Paged_file.create_shadow ~page_size:512 () in
    let store = PS.create_on ~cache_pages:config.cache_pages pfile in
    let tree = Sg.create ~order:4 ~store () in
    let c = Sg.ctx ~slot:0 in
    let model = Hashtbl.create 64 in
    for k = 0 to 59 do
      ignore (Sg.insert tree c k (payload k));
      Hashtbl.replace model k (payload k)
    done;
    Sg.flush tree;
    Sg.flush tree;
    (* both slots now hold valid headers *)
    let committed_gen = PS.generation store in
    committed := committed_gen;
    Failpoint.set "paged_file.pwrite" Failpoint.Torn_write;
    (match Sg.flush tree with
    | () -> fail "torn header write: sync must crash"
    | exception Failpoint.Crash _ -> ());
    let store2, tree2 = recover ~cache_pages:config.cache_pages pfile in
    check_valid tree2 ~what:"torn header";
    if not (matches_model (Sg.to_list tree2) model) then
      fail "torn header (seed %d): recovered contents differ from the committed state"
        s;
    let g = PS.generation store2 in
    if g = committed_gen then incr fell_back
    else if g = committed_gen + 1 then incr landed
    else
      fail "torn header (seed %d): recovered generation %d, committed %d" s g
        committed_gen
  done;
  if !fell_back = 0 then
    fail "torn header: no seed exercised the fall-back-to-committed-slot path";
  if !landed = 0 then
    fail "torn header: no seed exercised the fully-landed-tear path";
  {
    site = "paged_file.pwrite";
    policy = "torn(header)";
    config;
    crashed = true;
    ops = seeds;
    acked_syncs = 2 * seeds;
    recovered_keys = 60;
    recovered_gen = !committed;
  }

(** Torn free-chain write. Staged so the page being torn is {e free} in
    the committed generation (the chain is re-written over pages that
    were already free-chain entries): tearing it can damage only the
    chain, which recovery degrades to a leak — never the tree. *)
let run_torn_chain () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:512 () in
  let store = PS.create_on ~cache_pages:8 pfile in
  let live = [ 0; 2; 4 ] and doomed = [ 1; 3; 5 ] in
  let ptrs = List.init 6 (fun i -> (i, PS.alloc store (leaf i))) in
  let ptr_of i = List.assoc i ptrs in
  PS.sync store;
  List.iter (fun i -> PS.release store (ptr_of i)) doomed;
  PS.sync store;
  let committed_gen = PS.generation store in
  (* Dirty the free list without changing its membership: pop the head
     and push it straight back. The armed sync then re-writes the chain
     over pages that already hold committed chain entries. *)
  let p = PS.reserve store in
  PS.release store p;
  Failpoint.set "paged_file.pwrite" Failpoint.Torn_write;
  (match PS.sync store with
  | () -> fail "torn chain write: sync must crash"
  | exception Failpoint.Crash _ -> ());
  let image = Paged_file.crash_image pfile in
  Failpoint.reset ();
  let store2 = PS.open_from ~cache_pages:8 image in
  if PS.generation store2 <> committed_gen then
    fail "torn chain: recovered generation %d, expected %d"
      (PS.generation store2) committed_gen;
  (* Live pages must decode exactly; the chain either survived (the tear
     reproduced a valid committed entry) or leaked to empty. *)
  List.iter
    (fun i ->
      let n = PS.get store2 (ptr_of i) in
      if n.Node.keys <> [| i |] || n.Node.ptrs <> [| payload i |] then
        fail "torn chain: live page %d corrupted" i)
    live;
  let freed = PS.total_freed store2 and alloc = PS.total_allocated store2 in
  if alloc - freed <> List.length live then
    fail "torn chain: allocator accounting off (alloc %d, freed %d)" alloc freed;
  let reserved = PS.reserve store2 in
  List.iter
    (fun i ->
      if reserved = ptr_of i then fail "torn chain: recycled a live page")
    live;
  {
    site = "paged_file.pwrite";
    policy = "torn(chain)";
    config = { writer = false; cache_pages = 8 };
    crashed = true;
    ops = 0;
    acked_syncs = 2;
    recovered_keys = List.length live;
    recovered_gen = PS.generation store2;
  }

(** Short writes every other page write: the retry loops in
    {!Repro_storage.Paged_file} must make them invisible — the workload
    completes, and the recovered image is byte-exact. *)
let run_short_writes (config : config) =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:512 () in
  let store = PS.create_on ~cache_pages:config.cache_pages pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model = Hashtbl.create 256 in
  if config.writer then PS.start_writer store;
  Failpoint.set "paged_file.pwrite" (Failpoint.Short_write { every = 2 });
  let rng = Repro_util.Splitmix.create 7 in
  for i = 1 to 300 do
    let k = Repro_util.Splitmix.int rng 150 in
    (if Repro_util.Splitmix.int rng 5 = 0 then begin
       if Sg.delete tree c k then Hashtbl.remove model k
     end
     else
       match Sg.insert tree c k (payload k) with
       | `Ok -> Hashtbl.replace model k (payload k)
       | `Duplicate -> ());
    if i mod 50 = 0 then Sg.flush tree
  done;
  PS.stop_writer store;
  Sg.flush tree;
  let store2, tree2 = recover ~cache_pages:config.cache_pages pfile in
  check_valid tree2 ~what:"short writes";
  if not (matches_model (Sg.to_list tree2) model) then
    fail "short writes: contents differ after reopen";
  {
    site = "paged_file.pwrite";
    policy = "short/2";
    config;
    crashed = false;
    ops = 300;
    acked_syncs = 6;
    recovered_keys = Hashtbl.length model;
    recovered_gen = PS.generation store2;
  }

let expect_injected what f =
  match f () with
  | _ -> fail "%s: expected an injected error" what
  | exception Failpoint.Injected _ -> ()

(** Injected-error battery at the store level: every remaining site
    raises once, the store survives, a disarmed retry succeeds, and the
    final image is complete — no page is silently dropped on the error
    path (the eviction victim parks in the pending table, the failed
    background write-back stays pending, [sync] stays retryable). *)
let run_error_paths () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:512 () in
  let store = PS.create_on ~cache_pages:4 pfile in
  let n = 24 in
  let ptrs = Array.init n (fun i -> PS.alloc store (leaf i)) in
  PS.sync store;

  (* fault + pread: a cache miss fails once, then succeeds on retry *)
  let miss_one site =
    Failpoint.set site (Failpoint.Error { every = 1 });
    let victim =
      (* with cache_pages = 4, most of the 24 pages are not resident *)
      let rec find i =
        if i >= n then fail "%s: no cache miss found" site
        else
          match PS.get store ptrs.(i) with
          | _ -> find (i + 1)
          | exception Failpoint.Injected _ -> i
      in
      find 0
    in
    Failpoint.set site Failpoint.Off;
    let node = PS.get store ptrs.(victim) in
    if node.Node.keys <> [| victim |] then
      fail "%s: retried fault returned the wrong node" site
  in
  miss_one "paged_store.fault";
  miss_one "paged_file.pread";

  (* evict: the inline write-back error surfaces, but the victim is
     parked in the pending table — the next sync persists it, so the
     final image check below proves nothing was dropped *)
  Failpoint.set "paged_store.evict" (Failpoint.Error { every = 1 });
  let evict_error_seen = ref false in
  (try
     for i = 0 to n - 1 do
       PS.put store ptrs.(i) (leaf (i + 100))
     done
   with Failpoint.Injected _ -> evict_error_seen := true);
  if not !evict_error_seen then
    fail "paged_store.evict: injected eviction error never surfaced";
  Failpoint.set "paged_store.evict" Failpoint.Off;

  (* fsync and each sync phase: sync raises once, then a retry commits *)
  let sync_once site =
    Failpoint.set site (Failpoint.Error { every = 1 });
    expect_injected site (fun () -> PS.sync store);
    Failpoint.set site Failpoint.Off;
    PS.sync store
  in
  sync_once "paged_file.fsync";
  sync_once "paged_store.sync.data";
  sync_once "paged_store.sync.header";
  sync_once "paged_store.sync.commit";
  PS.release store ptrs.(0);
  sync_once "paged_store.sync.chain";

  (* writer: failed background write-backs are counted and stay pending *)
  PS.start_writer store;
  Failpoint.set "paged_store.writer" (Failpoint.Error { every = 1 });
  for i = 1 to n - 1 do
    PS.put store ptrs.(i) (leaf (i + 200))
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while PS.writer_errors store = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if PS.writer_errors store = 0 then
    fail "paged_store.writer: injected write-back error never observed";
  Failpoint.set "paged_store.writer" Failpoint.Off;
  PS.sync store;
  PS.stop_writer store;
  PS.sync store;

  (* everything must have survived the error storm *)
  let image = Paged_file.crash_image pfile in
  Failpoint.reset ();
  let store2 = PS.open_from ~cache_pages:8 image in
  for i = 1 to n - 1 do
    let node = PS.get store2 ptrs.(i) in
    if node.Node.keys <> [| i + 200 |] then
      fail "error paths: page %d lost its last update across the error storm" i
  done

(* ---------- WAL durability mode ---------- *)

let data_page_size = 512
let wal_page_size = Wal.log_page_size ~data_page_size

(* WAL-mode recovery: harvest the crash image of {e both} devices — the
   data file and the log — and reopen through the replay path. *)
let recover_wal ~cache_pages pfile lfile =
  let image = Paged_file.crash_image pfile in
  let limage = Paged_file.crash_image lfile in
  Failpoint.reset ();
  let store = PS.open_from ~cache_pages ~wal:limage image in
  let tree = Sg.open_existing store in
  (store, tree)

(** The WAL-mode analog of {!run_tree}: the store runs on a shadow data
    device plus a shadow log device, the workload group-commits every 5
    ops ([Sg.commit]) and checkpoints every 100 ([Sg.flush]), and the
    oracle tightens to the {e commit} point — recovery must land exactly
    on the last acknowledged commit (or the in-flight one, when the
    crash hit a commit past its log fsync). [dist] (default uniform)
    selects the key stream; a Zipfian dist aims the commit-point oracle
    at hot-key traffic. *)
let run_wal_tree ?(ops = 400) ?(seed = 1042)
    ?(dist = Repro_util.Distribution.Uniform) ~site ~policy (config : config) =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:config.cache_pages ~wal:lfile pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model : (int, int) Hashtbl.t = Hashtbl.create 256 in
  for k = 0 to 49 do
    if k mod 2 = 0 then begin
      ignore (Sg.insert tree c k (payload k));
      Hashtbl.replace model k (payload k)
    end
  done;
  Sg.flush tree;
  (* a committed checkpoint generation exists before the faults arm *)
  if config.writer then PS.start_writer store;
  let committed = ref (Hashtbl.copy model) in
  let inflight = ref None in
  let acked = ref 0 in
  let issued = ref 0 in
  let crashed = ref false in
  Failpoint.set site policy;
  (try
     let rng = Repro_util.Splitmix.create seed in
     let keys = key_sampler ~space:200 dist in
     for i = 1 to ops do
       issued := i;
       let k = Repro_util.Distribution.sample keys rng in
       (match Repro_util.Splitmix.int rng 10 with
       | 0 | 1 ->
           if Sg.delete tree c k then Hashtbl.remove model k
       | 2 -> ignore (Sg.search tree c k)
       | _ -> (
           match Sg.insert tree c k (payload k) with
           | `Ok -> Hashtbl.replace model k (payload k)
           | `Duplicate -> ()));
       (* group commit every 5 ops; every 100th op checkpoints instead,
          so each run crosses both durability mechanisms *)
       if i mod 5 = 0 then begin
         inflight := Some (Hashtbl.copy model);
         if i mod 100 = 0 then Sg.flush tree else Sg.commit tree;
         committed := Hashtbl.copy model;
         inflight := None;
         incr acked
       end
     done
   with Failpoint.Crash _ -> crashed := true);
  (try PS.stop_writer store with Failpoint.Crash _ -> ());
  let crashed = !crashed || Failpoint.is_crashed () in
  if not crashed then begin
    Failpoint.reset ();
    Sg.commit tree;
    committed := Hashtbl.copy model;
    inflight := None
  end;
  let store2, tree2 = recover_wal ~cache_pages:config.cache_pages pfile lfile in
  check_valid tree2 ~what:site;
  let recovered = Sg.to_list tree2 in
  let ok =
    matches_model recovered !committed
    || match !inflight with Some m -> matches_model recovered m | None -> false
  in
  if not ok then
    fail
      "%s (%s, wal): recovered %d keys matching neither the %d committed nor the in-flight commit"
      site (policy_name policy) (List.length recovered)
      (Hashtbl.length !committed);
  {
    site;
    policy = policy_name policy ^ "+wal";
    config;
    crashed;
    ops = !issued;
    acked_syncs = !acked;
    recovered_keys = List.length recovered;
    recovered_gen = PS.generation store2;
  }

(** The partition-layer analog of {!run_wal_tree}: [shards] fully
    independent store+WAL pairs on their own shadow devices, keys routed
    by {!Repro_storage.Shard_router}, and every 5th op a {e multi-shard
    batch commit} — the shards the batch touched commit in shard order,
    so an armed crash lands mid-batch: shards before the victim are at
    their new durable state, the victim either side of its log fsync,
    shards after it still at their old state. Each shard is recovered
    from its own crash images (asserting its recorded [(i, N)] identity)
    and held to its {e own} commit-point oracle; recovered keys must
    also route back to the shard that held them. *)
let run_sharded_wal ?(ops = 400) ?(seed = 2042) ?(shards = 4) ~site ~policy
    (config : config) =
  Failpoint.reset ();
  let pfiles =
    Array.init shards (fun _ ->
        Paged_file.create_shadow ~page_size:data_page_size ())
  in
  let lfiles =
    Array.init shards (fun _ ->
        Paged_file.create_shadow ~page_size:wal_page_size ())
  in
  let stores =
    Array.init shards (fun i ->
        PS.create_on ~shard:(i, shards) ~cache_pages:config.cache_pages
          ~wal:lfiles.(i) pfiles.(i))
  in
  let trees = Array.map (fun store -> Sg.create ~order:4 ~store ()) stores in
  let c = Sg.ctx ~slot:0 in
  let route k = Shard_router.shard_of ~shards k in
  let models : (int, int) Hashtbl.t array =
    Array.init shards (fun _ -> Hashtbl.create 64)
  in
  for k = 0 to 49 do
    if k mod 2 = 0 then begin
      let s = route k in
      ignore (Sg.insert trees.(s) c k (payload k));
      Hashtbl.replace models.(s) k (payload k)
    end
  done;
  Array.iter Sg.flush trees;
  (* every shard holds a committed checkpoint before the faults arm *)
  if config.writer then Array.iter PS.start_writer stores;
  let committed = Array.map (fun m -> ref (Hashtbl.copy m)) models in
  let inflight : (int, int) Hashtbl.t option array = Array.make shards None in
  let touched = Array.make shards false in
  let acked = ref 0 in
  let issued = ref 0 in
  let crashed = ref false in
  Failpoint.set site policy;
  (try
     let rng = Repro_util.Splitmix.create seed in
     for i = 1 to ops do
       issued := i;
       let k = Repro_util.Splitmix.int rng 400 in
       let s = route k in
       (match Repro_util.Splitmix.int rng 10 with
       | 0 | 1 ->
           if Sg.delete trees.(s) c k then begin
             Hashtbl.remove models.(s) k;
             touched.(s) <- true
           end
       | 2 -> ignore (Sg.search trees.(s) c k)
       | _ -> (
           match Sg.insert trees.(s) c k (payload k) with
           | `Ok ->
               Hashtbl.replace models.(s) k (payload k);
               touched.(s) <- true
           | `Duplicate -> ()));
       if i mod 5 = 0 then
         (* multi-shard batch commit: touched shards in shard order, each
            acknowledged separately (every 100th op checkpoints instead) *)
         for s = 0 to shards - 1 do
           if touched.(s) then begin
             inflight.(s) <- Some (Hashtbl.copy models.(s));
             if i mod 100 = 0 then Sg.flush trees.(s) else Sg.commit trees.(s);
             committed.(s) := Hashtbl.copy models.(s);
             inflight.(s) <- None;
             incr acked;
             touched.(s) <- false
           end
         done
     done
   with Failpoint.Crash _ -> crashed := true);
  Array.iter
    (fun st -> try PS.stop_writer st with Failpoint.Crash _ -> ())
    stores;
  let crashed = !crashed || Failpoint.is_crashed () in
  if not crashed then begin
    Failpoint.reset ();
    Array.iteri
      (fun s tree ->
        Sg.commit tree;
        committed.(s) := Hashtbl.copy models.(s);
        inflight.(s) <- None)
      trees
  end;
  let images =
    Array.init shards (fun i ->
        (Paged_file.crash_image pfiles.(i), Paged_file.crash_image lfiles.(i)))
  in
  Failpoint.reset ();
  let recovered_total = ref 0 in
  let gen = ref 0 in
  Array.iteri
    (fun s (image, limage) ->
      let store2 =
        PS.open_from ~expect_shard:(s, shards)
          ~cache_pages:config.cache_pages ~wal:limage image
      in
      let tree2 = Sg.open_existing store2 in
      check_valid tree2 ~what:(Printf.sprintf "%s (shard %d/%d)" site s shards);
      let recovered = Sg.to_list tree2 in
      let ok =
        matches_model recovered !(committed.(s))
        ||
        match inflight.(s) with
        | Some m -> matches_model recovered m
        | None -> false
      in
      if not ok then
        fail
          "%s (%s, shard %d/%d): recovered %d keys matching neither the %d \
           committed nor the in-flight commit"
          site (policy_name policy) s shards (List.length recovered)
          (Hashtbl.length !(committed.(s)));
      (* isolation: every recovered key routes back to this shard *)
      List.iter
        (fun (k, _) ->
          if route k <> s then
            fail "sharded wal: key %d recovered on shard %d but routes to %d" k
              s (route k))
        recovered;
      recovered_total := !recovered_total + List.length recovered;
      gen := max !gen (PS.generation store2))
    images;
  {
    site;
    policy = Printf.sprintf "%s+wal.x%d" (policy_name policy) shards;
    config;
    crashed;
    ops = !issued;
    acked_syncs = !acked;
    recovered_keys = !recovered_total;
    recovered_gen = !gen;
  }

(** Torn log append: with the cache big enough to hold the whole tree,
    the only device writes a group commit issues are log records — so a
    torn write is guaranteed to land on a record, never on the tree.
    Replay must stop at the torn record and recovery must land exactly
    on the last acknowledged commit. *)
let run_wal_torn_append () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:256 ~wal:lfile pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model = Hashtbl.create 128 in
  for k = 0 to 39 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  Sg.flush tree;
  (* a committed batch on top of the checkpoint *)
  for k = 40 to 59 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  Sg.commit tree;
  let committed = Hashtbl.copy model in
  for k = 60 to 79 do
    ignore (Sg.insert tree c k (payload k))
  done;
  Failpoint.set "paged_file.pwrite" Failpoint.Torn_write;
  (match Sg.commit tree with
  | () -> fail "torn log append: commit must crash"
  | exception Failpoint.Crash _ -> ());
  let store2, tree2 = recover_wal ~cache_pages:32 pfile lfile in
  check_valid tree2 ~what:"torn log append";
  if not (matches_model (Sg.to_list tree2) committed) then
    fail "torn log append: recovery must land on the pre-tear commit";
  {
    site = "paged_file.pwrite";
    policy = "torn(wal)";
    config = { writer = false; cache_pages = 256 };
    crashed = true;
    ops = 80;
    acked_syncs = 2;
    recovered_keys = Hashtbl.length committed;
    recovered_gen = PS.generation store2;
  }

(** Crash at the group-commit fsync: [wal.commit] fires {e before} the
    log fsync, so the whole batch is still volatile — recovery must land
    deterministically on the previous acknowledged commit, never on a
    half-promoted batch. *)
let run_wal_commit_crash () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:32 ~wal:lfile pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model = Hashtbl.create 128 in
  for k = 0 to 29 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  Sg.flush tree;
  for k = 30 to 49 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  Sg.commit tree;
  let committed = Hashtbl.copy model in
  for k = 50 to 69 do
    ignore (Sg.insert tree c k (payload k))
  done;
  Failpoint.set "wal.commit" (Failpoint.Crash_after 1);
  (match Sg.commit tree with
  | () -> fail "commit-fsync crash: commit must crash"
  | exception Failpoint.Crash _ -> ());
  let store2, tree2 = recover_wal ~cache_pages:32 pfile lfile in
  check_valid tree2 ~what:"commit-fsync crash";
  if not (matches_model (Sg.to_list tree2) committed) then
    fail "commit-fsync crash: recovery must land on the previous commit";
  {
    site = "wal.commit";
    policy = "crash@1(fsync)";
    config = { writer = false; cache_pages = 32 };
    crashed = true;
    ops = 70;
    acked_syncs = 2;
    recovered_keys = Hashtbl.length committed;
    recovered_gen = PS.generation store2;
  }

(** Crash in the middle of recovery replay itself, then recover again:
    replay is a read-only scan (page images install only after it
    completes), so a second attempt over the same images must succeed
    and land on the same state — recovery is idempotent. *)
let run_wal_replay_crash () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:32 ~wal:lfile pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model = Hashtbl.create 128 in
  for k = 0 to 29 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  Sg.flush tree;
  for k = 30 to 59 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  Sg.commit tree;
  let committed = Hashtbl.copy model in
  for k = 60 to 69 do
    ignore (Sg.insert tree c k (payload k))
  done;
  Failpoint.set "wal.commit" (Failpoint.Crash_after 1);
  (match Sg.commit tree with
  | () -> fail "mid-replay crash: the setup commit must crash"
  | exception Failpoint.Crash _ -> ());
  let image = Paged_file.crash_image pfile in
  let limage = Paged_file.crash_image lfile in
  Failpoint.reset ();
  (* die two records into the replay scan *)
  Failpoint.set "wal.replay" (Failpoint.Crash_after 2);
  (match PS.open_from ~cache_pages:16 ~wal:limage image with
  | _ -> fail "mid-replay crash: recovery must crash"
  | exception Failpoint.Crash _ -> ());
  Failpoint.reset ();
  let store2 = PS.open_from ~cache_pages:16 ~wal:limage image in
  let tree2 = Sg.open_existing store2 in
  check_valid tree2 ~what:"mid-replay crash";
  if not (matches_model (Sg.to_list tree2) committed) then
    fail "mid-replay crash: the second recovery must land on the committed state";
  {
    site = "wal.replay";
    policy = "crash@2(replay)";
    config = { writer = false; cache_pages = 16 };
    crashed = true;
    ops = 70;
    acked_syncs = 2;
    recovered_keys = Hashtbl.length committed;
    recovered_gen = PS.generation store2;
  }

(** Injected (non-fatal) errors on the WAL path: a failed log append or
    a failed commit fsync must surface to the caller and leave the store
    retryable — the leader's rollback merges the sealed batch back into
    the dirty table, so the retried commit covers every page, and the
    orphaned records of the failed attempt are overridden (last writer
    wins) by the retry. *)
let run_wal_error_paths () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:32 ~wal:lfile pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model = Hashtbl.create 128 in
  for k = 0 to 29 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  Sg.flush tree;
  let commit_once site =
    Failpoint.set site (Failpoint.Error { every = 1 });
    expect_injected site (fun () -> Sg.commit tree);
    Failpoint.set site Failpoint.Off;
    Sg.commit tree
  in
  for k = 30 to 44 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  commit_once "wal.append";
  for k = 45 to 59 do
    ignore (Sg.insert tree c k (payload k));
    Hashtbl.replace model k (payload k)
  done;
  commit_once "wal.commit";
  let store2, tree2 = recover_wal ~cache_pages:32 pfile lfile in
  check_valid tree2 ~what:"wal error paths";
  if not (matches_model (Sg.to_list tree2) model) then
    fail "wal error paths: retried commits lost data";
  ignore (PS.generation store2)

(** Multi-domain group-commit durability stress — regression cover for
    the install/seal ordering in {!Repro_storage.Paged_store}: several
    domains insert into disjoint key ranges and group-commit
    concurrently ([commit_batch] = the domain count, a sub-millisecond
    gather window), so leaders seal the dirty set while other domains
    are mid-[install]. The crash image taken after the last ack — {e no}
    final sync — must hold every acknowledged key. A note-before-publish
    order in [install] loses updates here: a leader sealing between the
    note and the publish logs the stale image while the swap removes the
    page from the live dirty set, so the installer's own commit targets
    a batch that no longer covers it — acking durability the log does
    not hold. Each run is a fresh store with a {e single} commit round
    per domain and a crash image taken immediately after — so every
    install is exposed (no later batch re-dirties its page and papers
    over the loss). Probabilistic (the window is a few instructions
    wide), but free of false positives: any run that trips it is a real
    loss. *)
let run_wal_commit_race ?(domains = 4) ?(runs = 20) ?(batch = 4) () =
  for run = 1 to runs do
    Failpoint.reset ();
    let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
    let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
    let store =
      PS.create_on ~cache_pages:64 ~commit_interval:5e-4 ~commit_batch:domains
        ~wal:lfile pfile
    in
    let tree = Sg.create ~order:4 ~store () in
    (* a committed checkpoint generation exists before the traffic starts *)
    let c0 = Sg.ctx ~slot:0 in
    ignore (Sg.insert tree c0 (-1) (payload (-1)));
    Sg.flush tree;
    PS.start_writer store;
    let worker d =
      let c = Sg.ctx ~slot:d in
      for i = 0 to batch - 1 do
        let k = (1_000_000 * d) + i in
        ignore (Sg.insert tree c k (payload k));
        (* per-insert commit: the key is acknowledged once this returns *)
        Sg.commit tree
      done
    in
    let ds =
      List.init domains (fun d -> Domain.spawn (fun () -> worker (d + 1)))
    in
    List.iter Domain.join ds;
    PS.stop_writer store;
    (* power cut: nothing past the last acked commit reaches the image *)
    let _store2, tree2 = recover_wal ~cache_pages:64 pfile lfile in
    check_valid tree2 ~what:"wal commit race";
    let recovered = Sg.to_list tree2 in
    let expect = 1 + (domains * batch) in
    if List.length recovered <> expect then
      fail "wal commit race (run %d): recovered %d keys, %d were acknowledged"
        run (List.length recovered) expect;
    if not (List.for_all (fun (k, v) -> v = payload k) recovered) then
      fail "wal commit race (run %d): recovered a torn payload" run
  done

(* ---------- replication: WAL shipping + promotion oracle ---------- *)

(* A harness-local follower: the same {!Wal.Apply} scan-one-record step
   the wire replica runs, over a private in-memory store. Promoted
   batches are only {e queued} while the primary is alive — they install
   at promotion time, after [Failpoint.reset] — because the harness's
   one global failpoint registry simulates one process: the follower is
   a different process, and its page installs must not trip the faults
   armed at the primary. *)
type follower = {
  f_store : PS.t;
  f_apply : Wal.Apply.t;
  mutable f_next : int;  (** next LSN to pull *)
  mutable f_pending : Wal.Apply.batch list;  (** promoted, newest first *)
}

let follower_create () =
  {
    f_store = PS.create_memory ~page_size:data_page_size ();
    f_apply = Wal.Apply.create ~data_page_size ();
    f_next = 0;
    f_pending = [];
  }

(* Feed one shipped log page; false = the stream ended (an invalid
   continuation — only legal at the torn tail of a crash image). *)
let follower_feed f page =
  match Wal.Apply.step f.f_apply page with
  | Wal.Apply.Reject _ -> false
  | Wal.Apply.Progress ->
      f.f_next <- Wal.Apply.next_lsn f.f_apply;
      true
  | Wal.Apply.Batch b ->
      f.f_pending <- b :: f.f_pending;
      f.f_next <- Wal.Apply.next_lsn f.f_apply;
      true

(* Pull everything durable from a live primary. Durable pages are
   covered by an fsync (or a checkpoint seal): a Reject here is a
   harness failure, never a legitimate stream end. *)
let follower_drain ~what store f =
  let rec loop () =
    match PS.wal_fetch store ~lsn:f.f_next ~max_pages:64 with
    | Wal.At_end -> ()
    | Wal.Stale -> fail "%s: follower fell out of the retention window" what
    | Wal.Pages { pages; next } ->
        List.iter
          (fun page ->
            if not (follower_feed f page) then
              fail "%s: durable shipped page rejected by the stream policy"
                what)
          pages;
        if f.f_next <> next then
          fail "%s: follower cursor %d disagrees with fetch next %d" what
            f.f_next next;
        loop ()
  in
  loop ()

(* Promotion: install every queued batch into the follower's store, in
   promotion order, and open a read-write tree over it. *)
let follower_promote f =
  List.iter
    (fun (b : Wal.Apply.batch) ->
      PS.apply_replicated f.f_store ~images:b.Wal.Apply.b_images
        ~meta:b.Wal.Apply.b_meta)
    (List.rev f.f_pending);
  f.f_pending <- [];
  Sg.open_existing f.f_store

(** The replication oracle: a primary on shadow devices streams its WAL
    to a follower (drained synchronously after every acknowledged
    commit), an armed failpoint kills the primary mid-run, the follower
    catches up from the log device's {e crash image} — exactly what a
    replica that kept pulling until the primary died would have
    received — and is promoted. The promoted follower must (a) agree
    byte-for-byte with a cold recovery of the primary from the same
    images, and (b) hold the commit-point oracle: every acknowledged
    commit survives, plus at most the in-flight one. The traffic run
    never checkpoints, so the live log pass spans it whole and the
    catch-up can address crash-image pages by LSN directly. *)
let run_replication ?(ops = 300) ?(seed = 2042) ~site ~policy
    (config : config) =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:config.cache_pages ~wal:lfile pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model : (int, int) Hashtbl.t = Hashtbl.create 256 in
  for k = 0 to 49 do
    if k mod 2 = 0 then begin
      ignore (Sg.insert tree c k (payload k));
      Hashtbl.replace model k (payload k)
    end
  done;
  Sg.flush tree;
  (* the seed checkpoint sealed pass 0 into a segment; the live pass
     starts here and — no checkpoint below — spans the whole run *)
  let live_base = PS.wal_durable_lsn store + 1 in
  let f = follower_create () in
  follower_drain ~what:site store f;
  if f.f_next <> live_base then
    fail "%s: follower drained to LSN %d, live pass starts at %d" site f.f_next
      live_base;
  if config.writer then PS.start_writer store;
  let committed = ref (Hashtbl.copy model) in
  let inflight = ref None in
  let acked = ref 0 in
  let issued = ref 0 in
  let crashed = ref false in
  Failpoint.set site policy;
  (try
     let rng = Repro_util.Splitmix.create seed in
     for i = 1 to ops do
       issued := i;
       let k = Repro_util.Splitmix.int rng 200 in
       (match Repro_util.Splitmix.int rng 10 with
       | 0 | 1 -> if Sg.delete tree c k then Hashtbl.remove model k
       | 2 -> ignore (Sg.search tree c k)
       | _ -> (
           match Sg.insert tree c k (payload k) with
           | `Ok -> Hashtbl.replace model k (payload k)
           | `Duplicate -> ()));
       if i mod 3 = 0 then begin
         inflight := Some (Hashtbl.copy model);
         Sg.commit tree;
         committed := Hashtbl.copy model;
         inflight := None;
         incr acked;
         (* synchronous shipping: drain right after the ack — the
            follower only queues, so the armed faults cannot fire in it *)
         follower_drain ~what:site store f
       end
     done
   with Failpoint.Crash _ -> crashed := true);
  (try PS.stop_writer store with Failpoint.Crash _ -> ());
  let crashed = !crashed || Failpoint.is_crashed () in
  if not crashed then begin
    Failpoint.reset ();
    Sg.commit tree;
    committed := Hashtbl.copy model;
    inflight := None;
    follower_drain ~what:site store f
  end;
  (* the primary is dead: harvest the log device's crash image (the
     data device's is taken inside [recover_wal] below) *)
  let limage = Paged_file.crash_image lfile in
  Failpoint.reset ();
  (* catch-up: feed the log image from the follower's cursor to the torn
     tail. Records past the last fsync were lost with the crash, so the
     scan ends at the first invalid continuation — stale pass-0 bytes
     (LSN regression) or a torn record — exactly like local replay. *)
  (let npages = Paged_file.pages limage in
   let pos = ref (f.f_next - live_base) in
   let feeding = ref true in
   while !feeding && !pos >= 0 && !pos < npages do
     if follower_feed f (Paged_file.read limage !pos) then incr pos
     else feeding := false
   done);
  let ftree = follower_promote f in
  check_valid ftree ~what:(site ^ " (promoted follower)");
  let freplica = Sg.to_list ftree in
  (* cold-recover the primary from the same images: the follower must
     agree exactly, and both must sit on the commit-point oracle *)
  let store2, tree2 = recover_wal ~cache_pages:config.cache_pages pfile lfile in
  check_valid tree2 ~what:(site ^ " (recovered primary)");
  let recovered = Sg.to_list tree2 in
  if freplica <> recovered then
    fail
      "%s (%s): promoted follower (%d keys) diverged from the recovered \
       primary (%d keys)"
      site (policy_name policy) (List.length freplica)
      (List.length recovered);
  let ok =
    matches_model recovered !committed
    || match !inflight with Some m -> matches_model recovered m | None -> false
  in
  if not ok then
    fail
      "%s (%s, repl): recovered %d keys matching neither the %d committed nor \
       the in-flight commit"
      site (policy_name policy) (List.length recovered)
      (Hashtbl.length !committed);
  {
    site;
    policy = policy_name policy ^ "+repl";
    config;
    crashed;
    ops = !issued;
    acked_syncs = !acked;
    recovered_keys = List.length freplica;
    recovered_gen = PS.generation store2;
  }

(** Point-in-time recovery: run commits and periodic checkpoints (so the
    history spans several sealed log segments), snapshot the model at
    every acknowledged commit together with the COMMIT record's LSN,
    then rebuild a fresh store by replaying the retained log from LSN 0
    {e up to} a mid-history target. The rebuilt tree must validate and
    match that snapshot exactly — acknowledged history is replayable to
    any commit boundary inside the retention window, across seal
    boundaries. *)
let run_wal_pitr ?(ops = 210) ?(seed = 5042) () =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:32 ~wal:lfile pfile in
  let tree = Sg.create ~order:4 ~store () in
  let c = Sg.ctx ~slot:0 in
  let model : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let snapshots = ref [] in
  (* (COMMIT lsn, model) at each ack, newest first *)
  let rng = Repro_util.Splitmix.create seed in
  for i = 1 to ops do
    let k = Repro_util.Splitmix.int rng 200 in
    (match Repro_util.Splitmix.int rng 10 with
    | 0 | 1 -> if Sg.delete tree c k then Hashtbl.remove model k
    | _ -> (
        match Sg.insert tree c k (payload k) with
        | `Ok -> Hashtbl.replace model k (payload k)
        | `Duplicate -> ()));
    if i mod 30 = 0 then Sg.flush tree (* seal a segment *)
    else if i mod 5 = 0 then begin
      Sg.commit tree;
      (* right after the ack the durable watermark is the batch's COMMIT
         record: a valid PITR target *)
      snapshots :=
        (PS.wal_durable_lsn store, Hashtbl.copy model) :: !snapshots
    end
  done;
  Sg.commit tree;
  let snaps = Array.of_list (List.rev !snapshots) in
  if Array.length snaps < 4 then fail "pitr: too few commit snapshots";
  let target_lsn, target_model = snaps.(Array.length snaps / 2) in
  let f = follower_create () in
  while f.f_next <= target_lsn do
    match PS.wal_fetch store ~lsn:f.f_next ~max_pages:16 with
    | Wal.At_end -> fail "pitr: log ended before target LSN %d" target_lsn
    | Wal.Stale ->
        fail "pitr: target LSN %d fell out of the retention window" target_lsn
    | Wal.Pages { pages; next = _ } ->
        List.iter
          (fun page ->
            if f.f_next <= target_lsn then
              if not (follower_feed f page) then
                fail "pitr: durable page rejected during replay-to-LSN")
          pages
  done;
  let ftree = follower_promote f in
  check_valid ftree ~what:"pitr";
  let recovered = Sg.to_list ftree in
  if not (matches_model recovered target_model) then
    fail "pitr: replay to LSN %d recovered %d keys, snapshot held %d"
      target_lsn (List.length recovered)
      (Hashtbl.length target_model);
  {
    site = "wal.pitr";
    policy = "replay-to-lsn";
    config = { writer = false; cache_pages = 32 };
    crashed = false;
    ops;
    acked_syncs = Array.length snaps;
    recovered_keys = List.length recovered;
    recovered_gen = PS.generation f.f_store;
  }

(* ---- durable MVCC ---- *)

module MV = Repro_core.Mvcc.Make_on_store (Key.Int) (PS)

(* Full version-chain dump of a durable-MVCC store, sorted:
   [(key, [(epoch, value-or-tombstone) newest-first])]. Two recoveries
   of the same crash images must produce {e equal} dumps — chain replay
   is deterministic down to the version level, not just the newest. *)
let chain_dump mv =
  let records = MV.records mv in
  MV.T.to_list (MV.tree mv)
  |> List.map (fun (k, rptr) ->
         let chain =
           match Record_store.export records rptr with
           | Record_store.Slot_chain v ->
               let rec walk = function
                 | None -> []
                 | Some (v : int Record_store.version) ->
                     (v.Record_store.epoch, v.Record_store.value)
                     :: walk v.Record_store.prev
               in
               walk (Some v)
           | Record_store.Slot_empty | Record_store.Slot_sealed -> []
         in
         (k, chain))
  |> List.sort compare

(** {!run_wal_tree} over durable MVCC: version chains persist through
    the same WAL as the tree, snapshots stay pinned across group
    commits, vacuum prunes mid-run, and the armed crash lands anywhere
    in the log path. Recovery ({!MV.open_durable} over the replayed
    images) is held to three oracles: (1) the newest acked versions —
    current reads land exactly on the last acked commit or the in-flight
    one; (2) chain replay is deterministic — recovering the same images
    twice yields identical version chains; (3) versions pruned before an
    acked commit never resurrect, even when WAL replay re-installs a
    pre-prune page image past the checkpoint. *)
let run_mvcc_wal ?(ops = 400) ?(seed = 4042) ~site ~policy (config : config) =
  Failpoint.reset ();
  let pfile = Paged_file.create_shadow ~page_size:data_page_size () in
  let lfile = Paged_file.create_shadow ~page_size:wal_page_size () in
  let store = PS.create_on ~cache_pages:config.cache_pages ~wal:lfile pfile in
  let page_ints = max 32 ((PS.page_size store - 48) / 10) in
  let mv =
    MV.create_durable ~order:4 ~page_ints ~enc:Fun.id ~dec:Fun.id store
  in
  let c = MV.ctx ~slot:0 in
  let model : (int, int) Hashtbl.t = Hashtbl.create 256 in
  for k = 0 to 49 do
    if k mod 2 = 0 then begin
      MV.upsert mv c k (payload k);
      Hashtbl.replace model k (payload k)
    end
  done;
  MV.flush mv;
  if config.writer then PS.start_writer store;
  let committed = ref (Hashtbl.copy model) in
  let inflight = ref None in
  (* the pruned-version ledger: identities vacuum dropped, pending until
     the drop rides an acked commit. Values are salted with the op index
     so every version of a key is distinguishable. *)
  let pending_pruned = ref [] in
  let committed_pruned : (int * int * int option, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let acked = ref 0 in
  let issued = ref 0 in
  let crashed = ref false in
  let snap = ref None in
  Failpoint.set site policy;
  (try
     let rng = Repro_util.Splitmix.create seed in
     let keys = key_sampler ~space:200 Repro_util.Distribution.Uniform in
     for i = 1 to ops do
       issued := i;
       let k = Repro_util.Distribution.sample keys rng in
       (match Repro_util.Splitmix.int rng 10 with
       | 0 -> if MV.delete mv c k then Hashtbl.remove model k
       | 1 -> ignore (MV.get mv c k)
       | _ ->
           let v = payload k + (i * 1000) in
           MV.upsert mv c k v;
           Hashtbl.replace model k v);
       (* a pin opened at +20 each century, held across several group
          commits, checked against its cut and dropped at +60 *)
       if i mod 100 = 20 && !snap = None then
         snap := Some (MV.snapshot mv, Hashtbl.copy model);
       if i mod 100 = 60 then begin
         match !snap with
         | Some (s, at_cut) ->
             for k = 0 to 199 do
               if Hashtbl.mem at_cut k || Hashtbl.mem model k then
                 let got = MV.snap_get mv s c k in
                 if got <> Hashtbl.find_opt at_cut k then
                   fail "%s (%s, mvcc): pinned snapshot drifted at key %d"
                     site (policy_name policy) k
             done;
             MV.release s;
             snap := None
         | None -> ()
       end;
       (* vacuum churn after the pin drops: record exactly which version
          identities the prune removed *)
       if i mod 100 = 70 then begin
         let before = chain_dump mv in
         ignore (MV.vacuum mv c);
         ignore (MV.reclaim mv);
         let after = Hashtbl.create 64 in
         List.iter
           (fun (k, chain) ->
             List.iter (fun (e, v) -> Hashtbl.replace after (k, e, v) ()) chain)
           (chain_dump mv);
         List.iter
           (fun (k, chain) ->
             List.iter
               (fun (e, v) ->
                 if not (Hashtbl.mem after (k, e, v)) then
                   pending_pruned := (k, e, v) :: !pending_pruned)
               chain)
           before
       end;
       if i mod 5 = 0 then begin
         inflight := Some (Hashtbl.copy model);
         if i mod 100 = 0 then MV.flush mv else MV.commit mv;
         committed := Hashtbl.copy model;
         inflight := None;
         List.iter
           (fun id -> Hashtbl.replace committed_pruned id ())
           !pending_pruned;
         pending_pruned := [];
         incr acked
       end
     done
   with Failpoint.Crash _ -> crashed := true);
  (try PS.stop_writer store with Failpoint.Crash _ -> ());
  let crashed = !crashed || Failpoint.is_crashed () in
  if not crashed then begin
    Failpoint.reset ();
    (match !snap with Some (s, _) -> MV.release s | None -> ());
    MV.commit mv;
    committed := Hashtbl.copy model;
    List.iter (fun id -> Hashtbl.replace committed_pruned id ()) !pending_pruned;
    pending_pruned := [];
    inflight := None
  end;
  let recover_mvcc () =
    let image = Paged_file.crash_image pfile in
    let limage = Paged_file.crash_image lfile in
    Failpoint.reset ();
    let store2 =
      PS.open_from ~cache_pages:config.cache_pages ~wal:limage image
    in
    (store2, MV.open_durable ~enc:Fun.id ~dec:Fun.id store2)
  in
  let store2, mv2 = recover_mvcc () in
  check_valid (MV.tree mv2) ~what:site;
  (* (1) newest acked versions: current reads land on the last acked
     commit (or the in-flight one past its fsync) *)
  let recovered = MV.range mv2 c ~lo:min_int ~hi:max_int in
  let ok =
    matches_model recovered !committed
    || match !inflight with Some m -> matches_model recovered m | None -> false
  in
  if not ok then
    fail
      "%s (%s, mvcc): recovered %d live keys matching neither the %d committed nor the in-flight commit"
      site (policy_name policy) (List.length recovered)
      (Hashtbl.length !committed);
  (* (2) deterministic chain replay: a second recovery of the same
     images yields byte-identical version chains *)
  let dump1 = chain_dump mv2 in
  let _store3, mv3 = recover_mvcc () in
  if chain_dump mv3 <> dump1 then
    fail "%s (%s, mvcc): two recoveries of one crash image disagree on chains"
      site (policy_name policy);
  (* (3) no resurrection: every version pruned before an acked commit
     stays pruned across replay *)
  List.iter
    (fun (k, chain) ->
      List.iter
        (fun (e, v) ->
          if Hashtbl.mem committed_pruned (k, e, v) then
            fail
              "%s (%s, mvcc): version (key %d, epoch %d) pruned before an acked commit resurrected across recovery"
              site (policy_name policy) k e)
        chain)
    dump1;
  (* pins still work over the recovered store *)
  let s = MV.snapshot mv2 in
  List.iter
    (fun (k, v) ->
      if MV.snap_get mv2 s c k <> Some v then
        fail "%s (%s, mvcc): post-recovery snapshot misreads key %d" site
          (policy_name policy) k)
    recovered;
  MV.release s;
  {
    site;
    policy = policy_name policy ^ "+mvcc";
    config;
    crashed;
    ops = !issued;
    acked_syncs = !acked;
    recovered_keys = List.length recovered;
    recovered_gen = PS.generation store2;
  }

(** The whole battery: tree-level crash runs for every site × config in
    both durability modes (sync-everything, then WAL group commit
    against the commit-point oracle), then the targeted torn /
    short-write / commit-fsync / mid-replay / injected-error runs and
    the multi-domain group-commit stress.
    Returns the outcomes; raises on any violated invariant. After a
    battery, {!Repro_storage.Failpoint.unexercised} must be empty — the
    CLI and CI enforce it. *)
let battery ?(quick = false) ?(shards = 4) ?(log = fun _ -> ()) () =
  let configs =
    if quick then
      [ { writer = false; cache_pages = 8 }; { writer = true; cache_pages = 8 } ]
    else
      [
        { writer = false; cache_pages = 8 };
        { writer = true; cache_pages = 8 };
        { writer = false; cache_pages = 64 };
        { writer = true; cache_pages = 64 };
      ]
  in
  let crash_ordinals = if quick then [ 1 ] else [ 1; 3; 7 ] in
  let sites =
    [
      "paged_file.pwrite";
      "paged_file.pread";
      "paged_file.fsync";
      "buffer_pool.flush_frame";
      "paged_store.fault";
      "paged_store.evict";
      "paged_store.writer";
      "paged_store.sync.data";
      "paged_store.sync.header";
      "paged_store.sync.commit";
    ]
  in
  let outcomes = ref [] in
  let record o =
    log (pp_outcome o);
    outcomes := o :: !outcomes
  in
  List.iter
    (fun config ->
      List.iter
        (fun site ->
          if site = "paged_store.writer" && not config.writer then ()
          else
            List.iter
              (fun ordinal ->
                record
                  (run_tree ~site ~policy:(Failpoint.Crash_after ordinal) config))
              crash_ordinals)
        sites)
    configs;
  (* the same sweep in WAL durability mode, against the commit-point
     oracle: the WAL's own sites plus the device and checkpoint sites
     the log path shares *)
  let wal_sites =
    [
      "wal.append";
      "wal.commit";
      "paged_file.pwrite";
      "paged_file.fsync";
      "paged_store.sync.header";
    ]
  in
  List.iter
    (fun config ->
      List.iter
        (fun site ->
          List.iter
            (fun ordinal ->
              record
                (run_wal_tree ~site ~policy:(Failpoint.Crash_after ordinal)
                   config))
            crash_ordinals)
        wal_sites)
    configs;
  (* the WAL sweep again through the partition layer: [shards]
     independent store+WAL pairs, batches spanning shards, crashes
     landing mid-multi-shard-commit, per-shard commit-point oracle *)
  if shards > 1 then
    List.iter
      (fun config ->
        List.iter
          (fun site ->
            List.iter
              (fun ordinal ->
                record
                  (run_sharded_wal ~shards ~site
                     ~policy:(Failpoint.Crash_after ordinal) config))
              crash_ordinals)
          wal_sites)
      (if quick then [ { writer = false; cache_pages = 8 } ]
       else
         [
           { writer = false; cache_pages = 8 };
           { writer = true; cache_pages = 8 };
         ]);
  (* the same commit-point oracle under hot-key traffic: a Zipfian key
     stream hammers a handful of leaves, so crashes land amid repeated
     same-key updates — the regime the combining layer batches *)
  let zipf = Repro_util.Distribution.Zipfian 0.99 in
  List.iter
    (fun site ->
      List.iter
        (fun ordinal ->
          record
            (run_wal_tree ~dist:zipf ~seed:3042 ~site
               ~policy:(Failpoint.Crash_after ordinal)
               { writer = false; cache_pages = 8 }))
        crash_ordinals)
    [ "wal.append"; "wal.commit" ];
  record
    (run_tree ~dist:zipf ~seed:3042 ~site:"paged_file.pwrite"
       ~policy:(Failpoint.Crash_after 3)
       { writer = false; cache_pages = 8 });
  record (run_torn_header { writer = false; cache_pages = 8 });
  record (run_torn_chain ());
  record (run_short_writes { writer = false; cache_pages = 8 });
  if not quick then record (run_short_writes { writer = true; cache_pages = 8 });
  record (run_wal_torn_append ());
  record (run_wal_commit_crash ());
  record (run_wal_replay_crash ());
  (* WAL shipping: a synchronously-drained follower promoted over the
     primary's crash image, held to the recovered primary and to the
     commit-point oracle — across every log-path site — then the
     replay-to-LSN (PITR) check over the retained segments *)
  List.iter
    (fun config ->
      List.iter
        (fun site ->
          List.iter
            (fun ordinal ->
              record
                (run_replication ~site ~policy:(Failpoint.Crash_after ordinal)
                   config))
            crash_ordinals)
        [ "wal.append"; "wal.commit"; "paged_file.pwrite"; "paged_file.fsync" ])
    (if quick then [ { writer = false; cache_pages = 8 } ]
     else
       [
         { writer = false; cache_pages = 8 };
         { writer = true; cache_pages = 32 };
       ]);
  (* durable MVCC over the WAL: version chains in the same log, pins
     held across group commits, vacuum churn mid-run; every log-path
     site, held to the newest-acked / deterministic-replay /
     no-resurrection oracles *)
  List.iter
    (fun config ->
      List.iter
        (fun site ->
          List.iter
            (fun ordinal ->
              record
                (run_mvcc_wal ~site ~policy:(Failpoint.Crash_after ordinal)
                   config))
            crash_ordinals)
        wal_sites)
    (if quick then [ { writer = false; cache_pages = 8 } ]
     else
       [
         { writer = false; cache_pages = 8 };
         { writer = true; cache_pages = 32 };
       ]);
  record (run_wal_pitr ());
  run_error_paths ();
  run_wal_error_paths ();
  run_wal_commit_race ();
  Failpoint.reset ();
  List.rev !outcomes
