(** Scan-consistency oracle.

    Model: each writer domain owns a {e disjoint} block of keys and
    mutates only those, appending every operation to its own {!log}
    with a wall-clock interval ([start] before the tree call, [stop]
    after). A scan observed concurrently is a {e consistent cut} iff
    there exists one instant [t] such that, for every key, the
    observed value is exactly the visible effect of its owner's last
    operation before [t].

    {!check} decides this from intervals alone: for each key it
    computes the set of instants at which the observation could have
    been current (after the matching op started, before the next op on
    that key finished — conservative, so a genuinely consistent cut is
    never rejected), intersects per writer (catching scans that mix
    two states of one writer, e.g. a torn prefix/suffix of its update
    sweep), then across writers (catching per-writer-consistent scans
    that pair states far apart in time). Ops on one key should use
    distinct values for the oracle to have discriminating power;
    repeated values only widen the feasible set (never a false
    alarm). *)

type op = {
  o_key : int;
  o_value : int option;  (** [None] = delete *)
  o_start : float;
  o_end : float;
}

type log
(** One writer's chronological operation record. Single-writer: the
    owning domain appends, the checking domain reads only after the
    writers joined. *)

val log_create : unit -> log

val record : log -> key:int -> value:int option -> start:float -> stop:float -> unit
(** Append one op: [value = Some v] for an insert/upsert of [v],
    [None] for a delete. *)

val logged : log -> key:int -> value:int option -> (unit -> 'a) -> 'a
(** Run [f] (the tree operation) and record it with the measured
    wall-clock interval. *)

val check :
  logs:log array ->
  owner:(int -> int) ->
  initial:(int -> int option) ->
  universe:int list ->
  scan:(int * int) list ->
  string list
(** [check ~logs ~owner ~initial ~universe ~scan] returns the
    violations ([[]] = the scan is a feasible consistent cut).
    [logs.(w)] is writer [w]'s record; [owner k] the writer owning key
    [k]; [initial k] the value bound before any logged op; [universe]
    every key the scan covered (absent keys are part of the cut too);
    [scan] the observed pairs, which must be strictly ascending. Call
    only after the writer domains have joined. *)
