(** Multi-domain run loop: spawn workers, release them on a barrier, run a
    fixed operation count each, merge statistics. *)

open Repro_core
open Repro_baseline

module Barrier : sig
  type t

  val create : int -> t
  val wait : t -> unit
end

type result = {
  elapsed_s : float;
  total_ops : int;
  throughput : float;  (** ops/second over all domains *)
  stats : Repro_storage.Stats.t;  (** merged worker stats *)
  per_domain : Repro_storage.Stats.t array;
  latency : Repro_util.Histogram.t option;
      (** per-op latency in seconds, merged (only with [measure_latency]) *)
}

val percentiles_line : Repro_util.Histogram.t -> string
(** "p50=..us p95=..us p99=..us max=..us" *)

val run_parallel : domains:int -> f:(int -> Handle.ctx -> unit) -> result
(** Run [f domain_index ctx] on each domain; [f] loops over its own work. *)

val preload : Tree_intf.handle -> seed:int -> Workload.spec -> int
(** Insert the spec's deterministic preload set (single domain); returns
    the count. *)

val run_ops :
  ?measure_latency:bool ->
  Tree_intf.handle ->
  domains:int ->
  ops_per_domain:int ->
  seed:int ->
  Workload.spec ->
  result

val run_ops_with_aux :
  Tree_intf.handle ->
  domains:int ->
  aux:(stop:bool Atomic.t -> Handle.ctx -> unit) array ->
  ops_per_domain:int ->
  seed:int ->
  Workload.spec ->
  result * Repro_storage.Stats.t
(** {!run_ops} with one extra domain per element of [aux] — heterogeneous
    background workers (a compactor loop next to a
    {!Repro_storage.Paged_store} writer loop, say), each polling the
    shared stop flag, with epoch slots [domains .. domains +
    Array.length aux - 1]. Their merged stats are returned separately. *)

val run_ops_with_workers :
  Tree_intf.handle ->
  domains:int ->
  workers:int ->
  worker:(stop:bool Atomic.t -> Handle.ctx -> unit) ->
  ops_per_domain:int ->
  seed:int ->
  Workload.spec ->
  result * Repro_storage.Stats.t
(** {!run_ops} with [workers] extra domains each running [worker] until
    the workload finishes and [stop] is raised. Worker contexts get epoch
    slots [domains .. domains + workers - 1]; returns their merged stats
    separately. The backend-agnostic engine under
    {!run_ops_with_compaction} — use it directly when the compaction
    loop runs over a non-default store backend. *)

val run_ops_with_compaction :
  (int, int Repro_storage.Store.t) Handle.t ->
  Tree_intf.handle ->
  domains:int ->
  compactors:int ->
  ops_per_domain:int ->
  seed:int ->
  Workload.spec ->
  result * Repro_storage.Stats.t
(** {!run_ops} with background {!Repro_core.Compactor} workers on the raw
    tree for the duration; returns the compactors' merged stats too. *)
