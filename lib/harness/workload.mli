(** Workload specification and per-worker operation sampling. Each worker
    draws from its own PRNG stream; runs are reproducible from a seed. *)

open Repro_util

type op = Search of int | Insert of int * int | Delete of int

type mix = { search : float; insert : float; delete : float }

val mix : ?search:float -> ?insert:float -> ?delete:float -> unit -> mix
(** @raise Invalid_argument unless the fractions sum to 1. *)

val search_only : mix
val insert_only : mix
val read_mostly : mix  (** 80/20 search/insert *)

val balanced : mix  (** 50/50 search/insert *)

val mixed_sid : mix  (** 50/30/20 search/insert/delete *)

val delete_heavy : mix  (** 20/10/70 *)

type spec = {
  op_mix : mix;
  key_space : int;
  dist : Distribution.kind;
  preload : int;
}

val spec :
  ?op_mix:mix -> ?key_space:int -> ?dist:Distribution.kind -> ?preload:int -> unit -> spec

val skewed :
  ?op_mix:mix -> ?key_space:int -> ?theta:float -> ?preload:int -> unit -> spec
(** {!spec} over a scrambled Zipfian key stream; [theta] defaults to the
    YCSB 0.99 — the hot-key stress the combining layer targets. *)

val ycsb : ?key_space:int -> [ `A | `B | `C | `D | `F ] -> spec
(** YCSB-style presets: A 50/50 r/u zipf, B 95/5 zipf, C read-only zipf,
    D 95/5 with fresh-key inserts, F read-modify-write ≈ 50/50. (E is
    scan-heavy and not encodable as point ops here.) *)

type sampler

val sampler : seed:int -> worker:int -> spec -> sampler
val next_op : sampler -> op

val preload_keys : seed:int -> spec -> int array
(** Deterministic distinct keys to insert before measurement. *)

val mix_to_string : mix -> string
