(** Scan-consistency oracle: decide whether one observed scan could be a
    point-in-time cut of the history the writer domains actually
    executed. See the interface for the model. *)

type op = {
  o_key : int;
  o_value : int option;  (** [None] = delete *)
  o_start : float;
  o_end : float;
}

type log = { mutable ops : op list (* reverse chronological *) }

let log_create () = { ops = [] }

let record log ~key ~value ~start ~stop =
  log.ops <- { o_key = key; o_value = value; o_start = start; o_end = stop } :: log.ops

let logged log ~key ~value f =
  let start = Unix.gettimeofday () in
  let r = f () in
  record log ~key ~value ~start ~stop:(Unix.gettimeofday ());
  r

(* -- interval sets -- *)

(* A feasible set is a list of [lo, hi] wall-clock intervals (hi may be
   infinity), kept in chronological order. *)
let inter_two a b =
  List.concat_map
    (fun (alo, ahi) ->
      List.filter_map
        (fun (blo, bhi) ->
          let lo = Float.max alo blo and hi = Float.min ahi bhi in
          if lo <= hi then Some (lo, hi) else None)
        b)
    a

(* The wall-clock intervals during which key [k]'s visible value could
   have been [obs], given the owner's chronological op list. Candidate
   moments: after any op whose effect equals [obs] and before the next
   op on the same key completed; plus "before the first op on [k]" when
   the initial value matches. Bounds are conservative (an op's effect
   lands somewhere inside its [o_start, o_end] window), so a correct
   cut always passes. *)
let key_feasible ~initial ~(ops : op list) ~key ~obs =
  let mine = List.filter (fun o -> o.o_key = key) ops in
  let rec walk acc prev_matches lower = function
    | [] -> if prev_matches then (lower, Float.infinity) :: acc else acc
    | o :: rest ->
        let acc =
          if prev_matches then (lower, o.o_end) :: acc else acc
        in
        walk acc (o.o_value = obs) o.o_start rest
  in
  List.rev (walk [] (initial = obs) Float.neg_infinity mine)

(* -- the check -- *)

let check ~(logs : log array) ~(owner : int -> int) ~(initial : int -> int option)
    ~(universe : int list) ~(scan : (int * int) list) : string list =
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* scanned pairs must be sorted, unique, and inside the universe *)
  let tbl = Hashtbl.create (List.length scan) in
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a >= b then note "scan not strictly ascending at key %d" b;
        sorted rest
    | _ -> ()
  in
  sorted scan;
  List.iter
    (fun (k, v) ->
      if Hashtbl.mem tbl k then note "key %d appears twice in the scan" k;
      Hashtbl.replace tbl k v)
    scan;
  let chrono = Array.map (fun l -> List.rev l.ops) logs in
  (* per-writer feasibility: every owned key's observation must admit a
     common instant in that writer's own history *)
  let writer_sets =
    Array.mapi
      (fun w ops ->
        let keys = List.filter (fun k -> owner k = w) universe in
        List.fold_left
          (fun feas k ->
            let obs = Hashtbl.find_opt tbl k in
            let kf = key_feasible ~initial:(initial k) ~ops ~key:k ~obs in
            (if kf = [] then
               note "writer %d: key %d observed %s, never its visible value" w
                 k
                 (match obs with
                 | Some v -> string_of_int v
                 | None -> "absent"));
            inter_two feas kf)
          [ (Float.neg_infinity, Float.infinity) ]
          keys)
      chrono
  in
  Array.iteri
    (fun w feas ->
      if feas = [] then
        note "writer %d: observations mix two of its states (no single cut)"
          w)
    writer_sets;
  (* cross-writer: one wall-clock instant must satisfy every writer —
     the scan is a cut of the global history, not per-writer cuts *)
  let all =
    Array.fold_left inter_two [ (Float.neg_infinity, Float.infinity) ]
      writer_sets
  in
  if all = [] && Array.for_all (fun f -> f <> []) writer_sets then
    note "no common instant across writers: the scan is not a single cut";
  List.rev !violations
