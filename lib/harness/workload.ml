(** Workload specification and generation.

    A workload is an operation mix over a key space with a distribution;
    each worker domain samples operations from its own PRNG stream, so
    generation is contention-free and runs are reproducible from a seed. *)

open Repro_util

type op = Search of int | Insert of int * int | Delete of int

type mix = {
  search : float;
  insert : float;
  delete : float;  (** fractions; must sum to 1 *)
}

let mix ?(search = 0.0) ?(insert = 0.0) ?(delete = 0.0) () =
  let total = search +. insert +. delete in
  if Float.abs (total -. 1.0) > 1e-6 then invalid_arg "Workload.mix: fractions must sum to 1";
  { search; insert; delete }

let search_only = { search = 1.0; insert = 0.0; delete = 0.0 }
let insert_only = { search = 0.0; insert = 1.0; delete = 0.0 }
let read_mostly = { search = 0.8; insert = 0.2; delete = 0.0 }
let balanced = { search = 0.5; insert = 0.5; delete = 0.0 }
let mixed_sid = { search = 0.5; insert = 0.3; delete = 0.2 }
let delete_heavy = { search = 0.2; insert = 0.1; delete = 0.7 }

type spec = {
  op_mix : mix;
  key_space : int;  (** keys drawn from [0, key_space) *)
  dist : Distribution.kind;
  preload : int;  (** keys inserted before measurement starts *)
}

let spec ?(op_mix = balanced) ?(key_space = 100_000) ?(dist = Distribution.Uniform)
    ?(preload = 0) () =
  { op_mix; key_space; dist; preload }

(** Zipf-skewed spec: the same op mix over a scrambled Zipfian key
    stream ([theta] defaults to the YCSB 0.99) — the hot-key stress the
    combining layer targets. *)
let skewed ?(op_mix = balanced) ?(key_space = 100_000) ?(theta = 0.99)
    ?(preload = 0) () =
  { op_mix; key_space; dist = Distribution.Zipfian theta; preload }

(** YCSB-style presets (reads map to search, updates/RMW to insert; YCSB-E
    is scan-heavy and has no point-op encoding here). All zipfian(0.99)
    over a preloaded key space, as in the YCSB core workloads. *)
let ycsb ?(key_space = 100_000) (w : [ `A | `B | `C | `D | `F ]) =
  let op_mix =
    match w with
    | `A -> { search = 0.5; insert = 0.5; delete = 0.0 }
    | `B -> { search = 0.95; insert = 0.05; delete = 0.0 }
    | `C -> search_only
    | `D -> { search = 0.95; insert = 0.05; delete = 0.0 }
    | `F -> { search = 0.5; insert = 0.5; delete = 0.0 }
  in
  let dist =
    match w with `D -> Distribution.Sequential | `A | `B | `C | `F -> Distribution.Zipfian 0.99
  in
  { op_mix; key_space; dist; preload = key_space }

(** Per-worker sampler. *)
type sampler = { rng : Splitmix.t; dist : Distribution.t; op_mix : mix }

let sampler ~seed ~worker spec =
  let rng = Splitmix.create (seed + (worker * 0x9E3779B9) + 1) in
  { rng; dist = Distribution.create ~space:spec.key_space spec.dist; op_mix = spec.op_mix }

let next_op s =
  let k = Distribution.sample s.dist s.rng in
  let r = Splitmix.float s.rng in
  if r < s.op_mix.search then Search k
  else if r < s.op_mix.search +. s.op_mix.insert then Insert (k, k * 2)
  else Delete k

(** Deterministic preload set: the first [n] keys of a seeded permutation
    of the key space, inserted before any measurement. *)
let preload_keys ~seed spec =
  let n = min spec.preload spec.key_space in
  let rng = Splitmix.create (seed lxor 0x5DEECE66) in
  let perm = Splitmix.permutation rng spec.key_space in
  Array.sub perm 0 n

let mix_to_string m =
  Printf.sprintf "S%.0f/I%.0f/D%.0f" (100. *. m.search) (100. *. m.insert) (100. *. m.delete)
