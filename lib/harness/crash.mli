(** Simulated-crash harness: runs Sagiv-tree (and raw store) workloads
    over the durable {!Repro_storage.Paged_store} stack on a crash-shadow
    {!Repro_storage.Paged_file}, kills the simulated process at an armed
    {!Repro_storage.Failpoint} site, reopens the durable image and holds
    the recovery to an exact oracle (last acknowledged sync, or the
    in-flight one when the crash landed past its commit fsync). The WAL
    runs do the same over a data device {e plus} a log device, with the
    oracle tightened to the group-commit point. Used by [test_crash] and
    [blink_cli crash-test]; see doc/RECOVERY.md. *)

type config = {
  writer : bool;  (** run the store's background writer domain *)
  cache_pages : int;  (** decoded-node cache size (small → eviction traffic) *)
}

type outcome = {
  site : string;
  policy : string;
  config : config;
  crashed : bool;  (** false when the armed policy never fired *)
  ops : int;
  acked_syncs : int;
  recovered_keys : int;
  recovered_gen : int;
}

val pp_outcome : outcome -> string

val run_tree :
  ?ops:int ->
  ?seed:int ->
  ?dist:Repro_util.Distribution.kind ->
  site:string ->
  policy:Repro_storage.Failpoint.policy ->
  config ->
  outcome
(** One tree-level crash run against the oracle. [dist] (default
    uniform, bit-identical to the historical seeded stream) selects the
    key distribution; Zipfian aims the oracle at hot-key traffic.
    @raise Failure on any violated recovery invariant. *)

val run_torn_header : config -> outcome
(** Tear the staged header slot mid-write; recovery must fall back to the
    committed generation with full contents. *)

val run_torn_chain : unit -> outcome
(** Tear a free-chain entry (over a page free in the committed
    generation); recovery keeps the tree and either restores or safely
    leaks the free list. *)

val run_short_writes : config -> outcome
(** Short-write every other page write; the device retry loops must make
    it invisible. *)

val run_error_paths : unit -> unit
(** Injected-error battery at the store level: every site raises once,
    retries succeed, and the final image proves no update was dropped. *)

val run_wal_tree :
  ?ops:int ->
  ?seed:int ->
  ?dist:Repro_util.Distribution.kind ->
  site:string ->
  policy:Repro_storage.Failpoint.policy ->
  config ->
  outcome
(** {!run_tree} in WAL durability mode: shadow data + shadow log device,
    group commit every 5 ops, checkpoint every 100, recovery through log
    replay held to the commit-point oracle. [dist] as in {!run_tree};
    the battery includes Zipfian runs of this. *)

val run_sharded_wal :
  ?ops:int ->
  ?seed:int ->
  ?shards:int ->
  site:string ->
  policy:Repro_storage.Failpoint.policy ->
  config ->
  outcome
(** {!run_wal_tree} through the partition layer: [shards] (default 4)
    independent store+WAL pairs on their own shadow devices, keys routed
    by {!Repro_storage.Shard_router}, multi-shard batch commits (touched
    shards commit in shard order, each acknowledged separately), crashes
    landing mid-batch. Every shard recovers from its own crash images —
    asserting its recorded [(i, N)] identity — against its own
    commit-point oracle, and every recovered key must route back to the
    shard that held it. *)

val run_wal_torn_append : unit -> outcome
(** Tear a log record mid-append (cache sized so the commit writes only
    log pages); replay must stop at the torn record and recovery must
    land exactly on the last acknowledged commit. *)

val run_wal_commit_crash : unit -> outcome
(** Crash at the group-commit fsync (the batch is still volatile);
    recovery must land deterministically on the previous commit. *)

val run_wal_replay_crash : unit -> outcome
(** Crash mid-replay during recovery, then recover again: replay is
    read-only, so the second attempt must land on the same state. *)

val run_wal_commit_race :
  ?domains:int -> ?runs:int -> ?batch:int -> unit -> unit
(** Multi-domain group-commit durability stress, [runs] times: [domains]
    writer domains insert disjoint keys into a fresh store and
    group-commit concurrently ([commit_batch] = domain count), then the
    crash image taken after the last acknowledgement — with no final
    sync — is recovered and must hold every acknowledged key. One commit
    round per store, so every install is exposed rather than papered
    over by a later batch re-logging its page. Regression cover for the
    install/seal ordering race (a page noted dirty before its new image
    is published can be sealed, logged stale, and dropped from the batch
    its installer's commit targets).
    @raise Failure on any lost or torn acknowledged key. *)

val run_replication :
  ?ops:int ->
  ?seed:int ->
  site:string ->
  policy:Repro_storage.Failpoint.policy ->
  config ->
  outcome
(** WAL-shipping replication oracle: a follower (the {!Wal.Apply} step
    over its own in-memory store) drains the primary's durable log after
    every acknowledged commit; the armed failpoint kills the primary;
    the follower catches up from the log device's crash image and is
    promoted. The promoted follower must agree exactly with a cold
    recovery of the primary from the same images, and both must land on
    the commit-point oracle (every acked commit survives, plus at most
    the in-flight one).
    @raise Failure on divergence or a lost acknowledged commit. *)

val run_mvcc_wal :
  ?ops:int ->
  ?seed:int ->
  site:string ->
  policy:Repro_storage.Failpoint.policy ->
  config ->
  outcome
(** {!run_wal_tree} over durable MVCC: version chains persist through
    the same WAL as the tree, a snapshot stays pinned across several
    group commits (checked against its cut before release), vacuum
    prunes mid-run, and the armed crash lands anywhere in the log path.
    Recovery through {!Repro_core.Mvcc.Make_on_store.open_durable} is
    held to three oracles: newest acked versions land exactly on the
    last acked commit (or the in-flight one past its fsync); recovering
    the same crash images twice yields identical version chains; and
    versions pruned before an acked commit never resurrect, even when
    WAL replay re-installs a pre-prune page image past the checkpoint.
    @raise Failure on any violated invariant. *)

val run_wal_pitr : ?ops:int -> ?seed:int -> unit -> outcome
(** Point-in-time recovery: replay the retained log (sealed segments +
    live pass) from LSN 0 up to a mid-history COMMIT boundary into a
    fresh store; the rebuilt tree must validate and match the model
    snapshot taken at that acknowledgement exactly. *)

val run_wal_error_paths : unit -> unit
(** Injected errors on log append and commit fsync: the error surfaces,
    the leader's rollback keeps [commit] retryable, and the retried
    commits lose nothing. *)

val battery :
  ?quick:bool -> ?shards:int -> ?log:(string -> unit) -> unit -> outcome list
(** Crash runs for every site × config plus the targeted runs above,
    including the {!run_sharded_wal} sweep over [shards] (default 4)
    partitions ([shards <= 1] skips it). After a battery,
    {!Repro_storage.Failpoint.unexercised} must be empty.
    @raise Failure on the first violated invariant. *)
