(** Simulated-crash harness: runs Sagiv-tree (and raw store) workloads
    over the durable {!Repro_storage.Paged_store} stack on a crash-shadow
    {!Repro_storage.Paged_file}, kills the simulated process at an armed
    {!Repro_storage.Failpoint} site, reopens the durable image and holds
    the recovery to an exact oracle (last acknowledged sync, or the
    in-flight one when the crash landed past its commit fsync). Used by
    [test_crash] and [blink_cli crash-test]; see doc/RECOVERY.md. *)

type config = {
  writer : bool;  (** run the store's background writer domain *)
  cache_pages : int;  (** decoded-node cache size (small → eviction traffic) *)
}

type outcome = {
  site : string;
  policy : string;
  config : config;
  crashed : bool;  (** false when the armed policy never fired *)
  ops : int;
  acked_syncs : int;
  recovered_keys : int;
  recovered_gen : int;
}

val pp_outcome : outcome -> string

val run_tree :
  ?ops:int ->
  ?seed:int ->
  site:string ->
  policy:Repro_storage.Failpoint.policy ->
  config ->
  outcome
(** One tree-level crash run against the oracle.
    @raise Failure on any violated recovery invariant. *)

val run_torn_header : config -> outcome
(** Tear the staged header slot mid-write; recovery must fall back to the
    committed generation with full contents. *)

val run_torn_chain : unit -> outcome
(** Tear a free-chain entry (over a page free in the committed
    generation); recovery keeps the tree and either restores or safely
    leaks the free list. *)

val run_short_writes : config -> outcome
(** Short-write every other page write; the device retry loops must make
    it invisible. *)

val run_error_paths : unit -> unit
(** Injected-error battery at the store level: every site raises once,
    retries succeed, and the final image proves no update was dropped. *)

val battery : ?quick:bool -> ?log:(string -> unit) -> unit -> outcome list
(** Crash runs for every site × config plus the targeted runs above.
    After a battery, {!Repro_storage.Failpoint.unexercised} must be
    empty. @raise Failure on the first violated invariant. *)
