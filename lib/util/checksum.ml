(** FNV-1a (32-bit) over byte ranges: the integrity check stamped into
    every encoded page, header slot and free-chain entry by the storage
    layer. Not cryptographic — it exists to catch torn writes, bit rot
    and stale-generation pages at reopen, where a cheap, dependency-free
    hash with good avalanche on short inputs is exactly enough. *)

let offset_basis = 0x811c9dc5
let prime = 0x01000193
let mask = 0xFFFFFFFF

let fnv32 bytes ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Checksum.fnv32: range out of bounds";
  let h = ref offset_basis in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get bytes i)) * prime land mask
  done;
  !h

let fnv32_string s = fnv32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
