(** Logarithmic-bucket latency histogram.

    Buckets grow geometrically (HdrHistogram-style with fixed precision):
    value [v] lands in bucket [floor (log_{gamma} v)]. Good enough for
    percentile reporting in benches without per-sample allocation. *)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  gamma_log : float;
  floor_v : float;  (** values below this share bucket 0 *)
}

(* 4096 buckets at 1% precision span ~1e-9 .. ~5e8, enough for latencies
   in seconds and for plain magnitudes in benches. *)
let bucket_count = 4096

let create ?(precision = 0.01) ?(floor_v = 1e-9) () =
  {
    buckets = Array.make bucket_count 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    gamma_log = log (1.0 +. precision);
    floor_v;
  }

let clear t =
  Array.fill t.buckets 0 bucket_count 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let bucket_of t v =
  if v <= t.floor_v then 0
  else
    let b = int_of_float (log (v /. t.floor_v) /. t.gamma_log) in
    if b < 0 then 0 else if b >= bucket_count then bucket_count - 1 else b

let value_of_bucket t b = t.floor_v *. exp (float_of_int b *. t.gamma_log)

let add t v =
  let b = bucket_of t v in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

(** Merge [src] into [dst]; used to combine per-domain histograms. *)
let merge ~into:dst src =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v

(** [percentile t p] for [p] in [\[0, 100\]]; approximate to bucket width.

    Returns the target bucket's {e upper} bound (the HdrHistogram
    "highest equivalent value" convention), clamped to the observed
    maximum: every sample in the bucket is ≤ the reported value, so
    "p99 = x" means 99% of samples were at most x. The lower bound
    systematically undershot by up to one bucket width — a sample
    recorded as 1.0 sits in a bucket whose lower edge is ~0.99. *)
let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let target = if target < 1 then 1 else target in
    let upper b = Float.min (value_of_bucket t (b + 1)) t.max_v in
    let rec go b acc =
      if b >= bucket_count then upper (bucket_count - 1)
      else
        let acc = acc + t.buckets.(b) in
        if acc >= target then upper b else go (b + 1) acc
    in
    go 0 0
  end
