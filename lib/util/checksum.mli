(** FNV-1a 32-bit checksums for on-disk integrity (torn-write and
    corruption detection). Not cryptographic. *)

val fnv32 : Bytes.t -> pos:int -> len:int -> int
(** Hash of [len] bytes starting at [pos]; always in [0, 2^32).
    @raise Invalid_argument when the range is out of bounds. *)

val fnv32_string : string -> int
