(** Logarithmic-bucket histogram (HdrHistogram-style) for latency and
    magnitude reporting: ~1% value precision, constant memory, allocation-
    free recording. Not thread-safe; keep one per domain and {!merge}. *)

type t

val create : ?precision:float -> ?floor_v:float -> unit -> t
(** [precision] is the relative bucket width (default 0.01); values at or
    below [floor_v] (default 1e-9) share the lowest bucket. *)

val clear : t -> unit
val add : t -> float -> unit
val merge : into:t -> t -> unit
val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]], accurate to the bucket
    width. Reports the target bucket's {e upper} bound (HdrHistogram
    convention) clamped to the observed maximum, so at least [p]% of
    the samples are ≤ the returned value — never an undershooting
    lower bound. *)
