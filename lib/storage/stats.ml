(** Per-process operation statistics.

    One record per worker domain (no sharing, no atomics on the hot path);
    the driver merges them after a run. These counters are what the
    experiments report: lock footprint (E1), restarts (E4), link chases
    (E6), structure modifications (E3/E5). *)

type t = {
  mutable ops : int;  (** logical operations completed *)
  mutable gets : int;  (** node reads *)
  mutable puts : int;  (** node rewrites *)
  mutable lock_acquisitions : int;
  mutable locks_held : int;  (** currently held; maintained by tree code *)
  mutable max_locks_held : int;  (** the paper's "locks simultaneously" metric *)
  mutable link_follows : int;  (** right-moves via links *)
  mutable restarts : int;  (** wrong-node restarts (§5.2 case 2) *)
  mutable fwd_follows : int;  (** deleted-node forwarding follows (case 1) *)
  mutable retries : int;  (** lock-then-revalidate retries *)
  mutable splits : int;
  mutable merges : int;
  mutable redistributions : int;
  mutable enqueued : int;  (** compression queue insertions *)
  mutable requeued : int;  (** §5.4 requeue events *)
  mutable discarded : int;  (** §5.4 discard-stale events *)
  mutable waits : int;  (** backoff waits (e.g. §3.3 prime-block wait) *)
}

let create () =
  {
    ops = 0;
    gets = 0;
    puts = 0;
    lock_acquisitions = 0;
    locks_held = 0;
    max_locks_held = 0;
    link_follows = 0;
    restarts = 0;
    fwd_follows = 0;
    retries = 0;
    splits = 0;
    merges = 0;
    redistributions = 0;
    enqueued = 0;
    requeued = 0;
    discarded = 0;
    waits = 0;
  }

let reset t =
  t.ops <- 0;
  t.gets <- 0;
  t.puts <- 0;
  t.lock_acquisitions <- 0;
  t.locks_held <- 0;
  t.max_locks_held <- 0;
  t.link_follows <- 0;
  t.restarts <- 0;
  t.fwd_follows <- 0;
  t.retries <- 0;
  t.splits <- 0;
  t.merges <- 0;
  t.redistributions <- 0;
  t.enqueued <- 0;
  t.requeued <- 0;
  t.discarded <- 0;
  t.waits <- 0

(** Record a lock acquisition and track the simultaneous-locks high-water mark. *)
let on_lock t =
  t.lock_acquisitions <- t.lock_acquisitions + 1;
  t.locks_held <- t.locks_held + 1;
  if t.locks_held > t.max_locks_held then t.max_locks_held <- t.locks_held

let on_unlock t = t.locks_held <- t.locks_held - 1

(** Merge [src] into [dst] (summing counters, maxing high-water marks). *)
let merge ~into:dst src =
  dst.ops <- dst.ops + src.ops;
  dst.gets <- dst.gets + src.gets;
  dst.puts <- dst.puts + src.puts;
  dst.lock_acquisitions <- dst.lock_acquisitions + src.lock_acquisitions;
  dst.max_locks_held <- max dst.max_locks_held src.max_locks_held;
  dst.link_follows <- dst.link_follows + src.link_follows;
  dst.restarts <- dst.restarts + src.restarts;
  dst.fwd_follows <- dst.fwd_follows + src.fwd_follows;
  dst.retries <- dst.retries + src.retries;
  dst.splits <- dst.splits + src.splits;
  dst.merges <- dst.merges + src.merges;
  dst.redistributions <- dst.redistributions + src.redistributions;
  dst.enqueued <- dst.enqueued + src.enqueued;
  dst.requeued <- dst.requeued + src.requeued;
  dst.discarded <- dst.discarded + src.discarded;
  dst.waits <- dst.waits + src.waits

(** Storage-backend IO statistics: one record per store (not per worker —
    faults and write-backs happen below the tree layer, which never sees
    a worker context). {!Paged_store}'s [io_stats] snapshots into this;
    the benches report it next to the per-worker counters. *)
type io = {
  mutable faults : int;  (** cache misses that read a page from storage *)
  mutable fault_stall_s : float;  (** time faulters spent waiting for an IO stripe lock *)
  mutable inline_writebacks : int;  (** eviction write-backs done synchronously *)
  mutable queued_writebacks : int;  (** eviction write-backs handed to the background writer *)
  mutable writer_batches : int;  (** background-writer queue drains *)
  mutable writer_errors : int;
      (** background write-backs that failed (IO error / injected fault)
          and left their entry pending for [sync] to retry *)
  mutable max_batch : int;  (** largest single writer batch *)
  mutable max_queue_depth : int;  (** write-queue depth high-water mark *)
  mutable max_concurrent_faults : int;
      (** most faults in flight at once — [> 1] proves misses on distinct
          stripes overlapped *)
  mutable commit_reqs : int;  (** [commit] calls (group-commit requests) *)
  mutable commit_groups : int;
      (** group commits performed — log fsyncs a leader issued on behalf
          of one or more requests *)
  mutable max_commit_group : int;
      (** most requests absorbed by a single group commit's fsync *)
  mutable wal_records : int;  (** log records appended (pages + markers) *)
  mutable wal_fsyncs : int;  (** log-device fsyncs over the store's life *)
  mutable epoch_min_pinned : int;
      (** MVCC reclamation horizon at sample time ([max_int] = nothing
          pinned, printed as -1); merges by {e min} — the fleet-wide
          horizon is the oldest pin anywhere *)
  mutable snap_pins : int;  (** snapshot slots pinned at sample time *)
  mutable mvcc_versions : int;  (** live version records across all chains *)
  mutable mvcc_pruned : int;  (** versions pruned since store creation *)
  mutable mvcc_disk_versions : int;
      (** version records persisted in vrec pages at the last commit
          (0 on memory-only MVCC stores) *)
  mutable mvcc_disk_pages : int;  (** vrec pages currently allocated *)
}

let io_create () =
  {
    faults = 0;
    fault_stall_s = 0.0;
    inline_writebacks = 0;
    queued_writebacks = 0;
    writer_batches = 0;
    writer_errors = 0;
    max_batch = 0;
    max_queue_depth = 0;
    max_concurrent_faults = 0;
    commit_reqs = 0;
    commit_groups = 0;
    max_commit_group = 0;
    wal_records = 0;
    wal_fsyncs = 0;
    epoch_min_pinned = max_int;
    snap_pins = 0;
    mvcc_versions = 0;
    mvcc_pruned = 0;
    mvcc_disk_versions = 0;
    mvcc_disk_pages = 0;
  }

(** Merge [src] into [dst]: counters sum, high-water marks max. *)
let io_merge ~into:dst (src : io) =
  dst.faults <- dst.faults + src.faults;
  dst.fault_stall_s <- dst.fault_stall_s +. src.fault_stall_s;
  dst.inline_writebacks <- dst.inline_writebacks + src.inline_writebacks;
  dst.queued_writebacks <- dst.queued_writebacks + src.queued_writebacks;
  dst.writer_batches <- dst.writer_batches + src.writer_batches;
  dst.writer_errors <- dst.writer_errors + src.writer_errors;
  dst.max_batch <- max dst.max_batch src.max_batch;
  dst.max_queue_depth <- max dst.max_queue_depth src.max_queue_depth;
  dst.max_concurrent_faults <- max dst.max_concurrent_faults src.max_concurrent_faults;
  dst.commit_reqs <- dst.commit_reqs + src.commit_reqs;
  dst.commit_groups <- dst.commit_groups + src.commit_groups;
  dst.max_commit_group <- max dst.max_commit_group src.max_commit_group;
  dst.wal_records <- dst.wal_records + src.wal_records;
  dst.wal_fsyncs <- dst.wal_fsyncs + src.wal_fsyncs;
  dst.epoch_min_pinned <- min dst.epoch_min_pinned src.epoch_min_pinned;
  dst.snap_pins <- dst.snap_pins + src.snap_pins;
  dst.mvcc_versions <- dst.mvcc_versions + src.mvcc_versions;
  dst.mvcc_pruned <- dst.mvcc_pruned + src.mvcc_pruned;
  dst.mvcc_disk_versions <- dst.mvcc_disk_versions + src.mvcc_disk_versions;
  dst.mvcc_disk_pages <- dst.mvcc_disk_pages + src.mvcc_disk_pages

let pp_io fmt (io : io) =
  Format.fprintf fmt
    "faults=%d stall=%.3fms wb_inline=%d wb_queued=%d batches=%d max_batch=%d \
     max_queue=%d max_conc_faults=%d wr_errors=%d commits=%d/%d max_group=%d \
     wal_records=%d wal_fsyncs=%d min_pinned=%d snap_pins=%d mvcc_versions=%d \
     mvcc_pruned=%d mvcc_disk=%d/%dpg"
    io.faults (1e3 *. io.fault_stall_s) io.inline_writebacks io.queued_writebacks
    io.writer_batches io.max_batch io.max_queue_depth io.max_concurrent_faults
    io.writer_errors io.commit_groups io.commit_reqs io.max_commit_group
    io.wal_records io.wal_fsyncs
    (if io.epoch_min_pinned = max_int then -1 else io.epoch_min_pinned)
    io.snap_pins io.mvcc_versions io.mvcc_pruned io.mvcc_disk_versions
    io.mvcc_disk_pages

let io_to_string io = Format.asprintf "%a" pp_io io

(** Network-server statistics: one record per server worker domain (no
    sharing on the request path), merged by {!Repro_server.Server.stats}
    into one snapshot. Counters follow the same discipline as {!t} and
    {!io}: counts sum, high-water marks max; the per-operation service
    latency rides in the existing {!Repro_util.Histogram}. *)
type server = {
  mutable conns_opened : int;  (** connections accepted over the server's life *)
  mutable conns_active : int;  (** currently open connections *)
  mutable frames_in : int;  (** request frames decoded and executed *)
  mutable frames_out : int;  (** response frames written *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable max_pipeline : int;
      (** pipeline-depth high-water mark: most request frames one read
          batch delivered before the connection's responses flushed *)
  mutable protocol_errors : int;
      (** malformed / truncated / oversized / checksum-failed frames —
          each one costs its connection, never the server *)
  mutable acked_commits : int;
      (** durable group commits issued to cover mutation acks
          ([durable_acks] mode) *)
  mutable elided : int;
      (** mutations answered from batch-dedup state without a tree
          operation (insert on a known-present key, delete on a
          known-absent one) *)
  mutable piggybacked : int;
      (** searches answered from the latest preceding same-batch write
          instead of a tree search *)
  mutable commits_skipped : int;
      (** durable-ack commits elided because every surviving mutation in
          the batch was a tree no-op (nothing new to make durable) *)
  mutable snapshots_opened : int;
      (** MVCC snapshot pins taken on behalf of clients — per-request
          Range cuts and session [SNAPSHOT] opens *)
  mutable snap_reads : int;
      (** reads (searches and ranges) served at a pinned snapshot
          instead of current time *)
  mutable shard_acks : int array;
      (** ack-covering commits per shard (sharded handles only; grown
          on demand to the highest shard this worker committed) — the
          skew observability counter next to the per-shard io stats *)
  latency : Repro_util.Histogram.t;
      (** per-request service time (decode to response-buffer append),
          seconds *)
}

let server_create () =
  {
    conns_opened = 0;
    conns_active = 0;
    frames_in = 0;
    frames_out = 0;
    bytes_in = 0;
    bytes_out = 0;
    max_pipeline = 0;
    protocol_errors = 0;
    acked_commits = 0;
    elided = 0;
    piggybacked = 0;
    commits_skipped = 0;
    snapshots_opened = 0;
    snap_reads = 0;
    shard_acks = [||];
    latency = Repro_util.Histogram.create ();
  }

(** Count one ack-covering commit against [shard], growing the
    per-shard array on demand. *)
let note_shard_ack (s : server) shard =
  if Array.length s.shard_acks <= shard then begin
    let grown = Array.make (shard + 1) 0 in
    Array.blit s.shard_acks 0 grown 0 (Array.length s.shard_acks);
    s.shard_acks <- grown
  end;
  s.shard_acks.(shard) <- s.shard_acks.(shard) + 1

(** Merge [src] into [dst]: counters sum, high-water marks max,
    latency histograms merge. *)
let server_merge ~into:dst (src : server) =
  dst.conns_opened <- dst.conns_opened + src.conns_opened;
  dst.conns_active <- dst.conns_active + src.conns_active;
  dst.frames_in <- dst.frames_in + src.frames_in;
  dst.frames_out <- dst.frames_out + src.frames_out;
  dst.bytes_in <- dst.bytes_in + src.bytes_in;
  dst.bytes_out <- dst.bytes_out + src.bytes_out;
  dst.max_pipeline <- max dst.max_pipeline src.max_pipeline;
  dst.protocol_errors <- dst.protocol_errors + src.protocol_errors;
  dst.acked_commits <- dst.acked_commits + src.acked_commits;
  dst.elided <- dst.elided + src.elided;
  dst.piggybacked <- dst.piggybacked + src.piggybacked;
  dst.commits_skipped <- dst.commits_skipped + src.commits_skipped;
  dst.snapshots_opened <- dst.snapshots_opened + src.snapshots_opened;
  dst.snap_reads <- dst.snap_reads + src.snap_reads;
  (if Array.length src.shard_acks > 0 then begin
     if Array.length dst.shard_acks < Array.length src.shard_acks then begin
       let grown = Array.make (Array.length src.shard_acks) 0 in
       Array.blit dst.shard_acks 0 grown 0 (Array.length dst.shard_acks);
       dst.shard_acks <- grown
     end;
     Array.iteri
       (fun i v -> dst.shard_acks.(i) <- dst.shard_acks.(i) + v)
       src.shard_acks
   end);
  Repro_util.Histogram.merge ~into:dst.latency src.latency

let pp_server fmt (s : server) =
  Format.fprintf fmt
    "conns=%d/%d frames=%d/%d bytes=%d/%d max_pipeline=%d proto_errors=%d \
     acked_commits=%d elided=%d piggybacked=%d commits_skipped=%d \
     snapshots=%d snap_reads=%d lat_p50=%.1fus lat_p99=%.1fus"
    s.conns_active s.conns_opened s.frames_in s.frames_out s.bytes_in
    s.bytes_out s.max_pipeline s.protocol_errors s.acked_commits s.elided
    s.piggybacked s.commits_skipped s.snapshots_opened s.snap_reads
    (1e6 *. Repro_util.Histogram.percentile s.latency 50.0)
    (1e6 *. Repro_util.Histogram.percentile s.latency 99.0);
  if Array.length s.shard_acks > 0 then
    Format.fprintf fmt " shard_acks=[%s]"
      (String.concat ","
         (Array.to_list (Array.map string_of_int s.shard_acks)))

let server_to_string s = Format.asprintf "%a" pp_server s

let pp fmt t =
  Format.fprintf fmt
    "ops=%d gets=%d puts=%d locks=%d max_held=%d links=%d restarts=%d fwd=%d retries=%d \
     splits=%d merges=%d redist=%d enq=%d requeue=%d discard=%d waits=%d"
    t.ops t.gets t.puts t.lock_acquisitions t.max_locks_held t.link_follows t.restarts
    t.fwd_follows t.retries t.splits t.merges t.redistributions t.enqueued t.requeued
    t.discarded t.waits

let to_string t = Format.asprintf "%a" pp t
