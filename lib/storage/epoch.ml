(** Epoch-based reclamation of deleted pages (paper §5.3).

    The paper: "record in the node the time of its deletion, and store for
    each running process its starting time; a deleted node can be released
    when all currently running processes have started after its deletion
    time." This module is that scheme with a logical clock: every logical
    operation pins the current epoch for its duration; a page retired at
    epoch [e] is released once every pinned epoch exceeds [e].

    Wait-free pin/unpin; retire and reclaim serialise on a mutex (they are
    off the hot path — one retire per page deletion). *)

type retired = { epoch : int; ptr : Node.ptr }

type t = {
  global : int Atomic.t;
  pins : int Atomic.t array;  (** per-worker pinned epoch; [max_int] = idle *)
  snap_pins : int Atomic.t array;
      (** per-snapshot pinned epoch; [max_int] = slot free. Separate from
          worker pins so a snapshot's publication wait ({!tick} +
          {!min_worker_pinned}) never counts other snapshots, while the
          reclaim horizon ({!min_pinned}) counts both. *)
  mutable limbo : retired list;  (** strictly descending epochs (newest first) *)
  limbo_len : int Atomic.t;  (** length of [limbo]; readable without the mutex *)
  max_limbo : int Atomic.t;  (** limbo depth high-water mark *)
  limbo_mutex : Mutex.t;
  reclaimed : int Atomic.t;
}

let stride = Repro_util.Counters.stride

let create ?(slots = 64) ?(snap_slots = 64) () =
  {
    global = Atomic.make 0;
    pins = Array.init (slots * stride) (fun _ -> Atomic.make max_int);
    snap_pins = Array.init (snap_slots * stride) (fun _ -> Atomic.make max_int);
    limbo = [];
    limbo_len = Atomic.make 0;
    max_limbo = Atomic.make 0;
    limbo_mutex = Mutex.create ();
    reclaimed = Atomic.make 0;
  }

let nslots t = Array.length t.pins / stride
let n_snap_slots t = Array.length t.snap_pins / stride

let current t = Atomic.get t.global

(** Advance the clock, returning the pre-advance value [e]: the boundary
    epoch of a snapshot cut. Writers pinned at [<= e] started before the
    tick; pins published after it land at [> e] (their validate loop
    re-reads the advanced clock). *)
let tick t = Atomic.fetch_and_add t.global 1

(** Raise the clock to at least [e] (CAS-max; no-op when already past).
    Recovery uses this to restart the clock above every persisted version
    epoch so post-recovery stamps never regress below durable state. *)
let advance_to t e =
  let rec go () =
    let cur = Atomic.get t.global in
    if cur < e && not (Atomic.compare_and_set t.global cur e) then go ()
  in
  go ()

(* Test-only hook fired between reading [global] and publishing the pin —
   lets a regression test drive the retire/reclaim interleaving the
   publish-then-validate loop below exists to survive. Production cost:
   one immutable-ref read per loop iteration. *)
let pin_hook : (unit -> unit) option ref = ref None

(** Pin the calling worker to the current epoch. Must be balanced with
    {!unpin}; not reentrant per slot.

    Publish-then-validate: store the candidate epoch, then re-read
    [global] and retry if it advanced. A plain read-then-store is racy —
    between the read of [global] and the store into the pin slot, a
    [retire] (which bumps [global]) plus a [reclaim] can run; the
    reclaim's {!min_pinned} scan does not see the not-yet-published pin,
    computes a horizon above the read epoch, and frees a page the
    pinning worker is about to traverse (use-after-free / [Freed_page]).
    With the loop: when the re-read returns the value we published, the
    publish is SC-before any later [retire]'s counter bump — so any
    reclaim whose horizon could newly exceed our epoch scans the pin
    array after our store and must see it. When the re-read shows an
    advance, pages retired at the stale epoch may already be freed, so
    we re-publish at the newer epoch and validate again; the loop only
    iterates while retires are landing concurrently. *)
let pin t ~slot =
  let a = t.pins.((slot mod nslots t) * stride) in
  let rec publish e =
    (match !pin_hook with Some f -> f () | None -> ());
    Atomic.set a e;
    let e' = Atomic.get t.global in
    if e' <> e then publish e' else e
  in
  publish (Atomic.get t.global)

let unpin t ~slot = Atomic.set t.pins.((slot mod nslots t) * stride) max_int

let with_pin t ~slot f =
  let (_ : int) = pin t ~slot in
  Fun.protect ~finally:(fun () -> unpin t ~slot) f

(** Claim a free snapshot slot and pin it to the current epoch, with the
    same publish-then-validate loop as {!pin} (the claiming CAS is the
    publication; a re-read that shows an advance re-publishes, so pages
    or versions retired at the final epoch can no longer be reclaimed).
    Returns [(slot, epoch)] for {!release_snapshot}.
    @raise Failure when all snapshot slots are taken. *)
let pin_snapshot t =
  let n = n_snap_slots t in
  let rec claim i =
    if i >= n then failwith "Epoch.pin_snapshot: no free snapshot slot"
    else
      let a = t.snap_pins.(i * stride) in
      let e = Atomic.get t.global in
      if Atomic.get a = max_int && Atomic.compare_and_set a max_int e then begin
        let rec validate e =
          let e' = Atomic.get t.global in
          if e' <> e then begin
            Atomic.set a e';
            validate e'
          end
          else e
        in
        (i, validate e)
      end
      else claim (i + 1)
  in
  claim 0

let release_snapshot t slot =
  Atomic.set t.snap_pins.((slot mod n_snap_slots t) * stride) max_int

let pinned_snapshots t =
  let c = ref 0 in
  for i = 0 to n_snap_slots t - 1 do
    if Atomic.get t.snap_pins.(i * stride) <> max_int then incr c
  done;
  !c

(** Smallest epoch any {e worker} is still pinned to — the wait condition
    of a snapshot cut (other snapshots must not block it). *)
let min_worker_pinned t =
  let m = ref max_int in
  for i = 0 to nslots t - 1 do
    let v = Atomic.get t.pins.(i * stride) in
    if v < !m then m := v
  done;
  !m

(** Smallest epoch anything — worker or snapshot — is still pinned to:
    the reclamation horizon. *)
let min_pinned t =
  let m = ref (min_worker_pinned t) in
  for i = 0 to n_snap_slots t - 1 do
    let v = Atomic.get t.snap_pins.(i * stride) in
    if v < !m then m := v
  done;
  !m

(** Retire a deleted page: it will be handed to [release] (below, via
    {!reclaim}) once no process that could still read it remains. Advances
    the global epoch so the grace period starts immediately.

    The epoch tick happens {e inside} the mutex so the limbo list stays
    strictly descending in epoch — two concurrent retires could otherwise
    push out of order, and {!reclaim}'s suffix split below depends on the
    ordering. *)
let retire t ptr =
  Mutex.lock t.limbo_mutex;
  let e = Atomic.fetch_and_add t.global 1 in
  t.limbo <- { epoch = e; ptr } :: t.limbo;
  let len = 1 + Atomic.fetch_and_add t.limbo_len 1 in
  Mutex.unlock t.limbo_mutex;
  let rec bump () =
    let cur = Atomic.get t.max_limbo in
    if len > cur && not (Atomic.compare_and_set t.max_limbo cur len) then bump ()
  in
  bump ()

(** Release every retired page whose grace period has passed, calling
    [release] on each. Returns how many were released.

    The limbo list is strictly descending in epoch (see {!retire}), so the
    reclaimable entries are exactly a suffix: one walk to the first entry
    older than the horizon splits the list — no [List.partition] copy of
    the survivors, no second traversal to count. Under the mutex the cost
    is the walk over survivors only; the frees happen outside. *)
let reclaim t ~release =
  let horizon = min_pinned t in
  Mutex.lock t.limbo_mutex;
  (* Split at the first entry with [epoch < horizon]: [rev_keep] collects
     survivors (reversed), the return is the reclaimable suffix. *)
  let rec split rev_keep = function
    | r :: rest when r.epoch >= horizon -> split (r :: rev_keep) rest
    | suffix ->
        t.limbo <- List.rev rev_keep;
        suffix
  in
  let free = split [] t.limbo in
  let n = List.length free in
  if n > 0 then ignore (Atomic.fetch_and_add t.limbo_len (-n));
  Mutex.unlock t.limbo_mutex;
  List.iter (fun r -> release r.ptr) free;
  ignore (Atomic.fetch_and_add t.reclaimed n);
  n

(* O(1), no mutex: the count is maintained by retire/reclaim. *)
let pending t = Atomic.get t.limbo_len
let max_limbo_depth t = Atomic.get t.max_limbo
let total_reclaimed t = Atomic.get t.reclaimed
