(** Epoch-based reclamation of deleted pages — the paper's §5.3 scheme
    ("a deleted node can be released when all currently running processes
    have started after its deletion time") with a logical clock.
    Pin/unpin are wait-free; retire/reclaim serialise off the hot path.

    Beyond page reclamation, the same clock stamps MVCC versions
    ({!Repro_storage.Record_store}) and anchors snapshot cuts: {!pin}
    returns the pinned epoch so writers can stamp what they write, and
    {!pin_snapshot}/{!tick}/{!min_worker_pinned} implement the snapshot
    boundary protocol (pin a dedicated slot, tick the clock to get the
    cut epoch [e], wait until every worker pin exceeds [e] — then all
    writes stamped [<= e] are complete and all later writes are stamped
    [> e], so reading at [e] is a consistent cut). *)

type t

val create : ?slots:int -> ?snap_slots:int -> unit -> t

val current : t -> int
(** The global clock's current value. *)

val tick : t -> int
(** Advance the clock; returns the pre-advance value — the boundary
    epoch of a snapshot cut. *)

val advance_to : t -> int -> unit
(** Raise the clock to at least the given epoch (CAS-max; no-op when
    already past) — recovery restarts the clock above persisted stamps. *)

val pin : t -> slot:int -> int
(** Pin the worker's slot to the current epoch for the duration of one
    logical operation; returns the pinned epoch (the version stamp for
    any write the operation performs). Balanced with {!unpin}; not
    reentrant per slot. The pin is published with a store /
    re-read-validate loop, so once [pin] returns, no {!reclaim} can free
    a page retired at or after the pinned epoch (see the ordering
    argument at the definition). *)

val pin_hook : (unit -> unit) option ref
(** Test-only: fired between reading the global clock and publishing the
    pin, on every validation iteration. Leave [None] in production. *)

val unpin : t -> slot:int -> unit
val with_pin : t -> slot:int -> (unit -> 'a) -> 'a

val pin_snapshot : t -> int * int
(** Claim a free snapshot slot, pin it to the current epoch (same
    publish-then-validate discipline as {!pin}) and return
    [(slot, epoch)]. The slot blocks reclamation ({!min_pinned}) but not
    other snapshots' cuts ({!min_worker_pinned}) until
    {!release_snapshot}. @raise Failure when every slot is taken. *)

val release_snapshot : t -> int -> unit

val pinned_snapshots : t -> int
(** Snapshot slots currently pinned — the observability gauge. *)

val min_worker_pinned : t -> int
(** Smallest epoch any worker is pinned to ([max_int] when none) —
    the snapshot cut's wait condition. *)

val min_pinned : t -> int
(** Smallest epoch anything (worker or snapshot) is pinned to
    ([max_int] when none): the reclamation horizon, and the
    quiescence test used by [Snapshot]/[Validate]/[Checkpoint]. *)

val retire : t -> Node.ptr -> unit
(** Begin a deleted page's grace period. *)

val reclaim : t -> release:(Node.ptr -> unit) -> int
(** Release every retired page whose grace period has passed; returns how
    many. *)

val pending : t -> int
(** Pages in limbo. O(1) from a maintained counter — takes no lock. *)

val max_limbo_depth : t -> int
(** Limbo depth high-water mark since [create] — how far reclamation ever
    lagged retirement. *)

val total_reclaimed : t -> int
