(** Epoch-based reclamation of deleted pages — the paper's §5.3 scheme
    ("a deleted node can be released when all currently running processes
    have started after its deletion time") with a logical clock.
    Pin/unpin are wait-free; retire/reclaim serialise off the hot path. *)

type t

val create : ?slots:int -> unit -> t

val pin : t -> slot:int -> unit
(** Pin the worker's slot to the current epoch for the duration of one
    logical operation. Balanced with {!unpin}; not reentrant per slot.
    The pin is published with a store / re-read-validate loop, so once
    [pin] returns, no {!reclaim} can free a page retired at or after the
    pinned epoch (see the ordering argument at the definition). *)

val pin_hook : (unit -> unit) option ref
(** Test-only: fired between reading the global clock and publishing the
    pin, on every validation iteration. Leave [None] in production. *)

val unpin : t -> slot:int -> unit
val with_pin : t -> slot:int -> (unit -> 'a) -> 'a

val min_pinned : t -> int
(** Smallest epoch any worker is pinned to ([max_int] when none). *)

val retire : t -> Node.ptr -> unit
(** Begin a deleted page's grace period. *)

val reclaim : t -> release:(Node.ptr -> unit) -> int
(** Release every retired page whose grace period has passed; returns how
    many. *)

val pending : t -> int
(** Pages in limbo. O(1) from a maintained counter — takes no lock. *)

val max_limbo_depth : t -> int
(** Limbo depth high-water mark since [create] — how far reclamation ever
    lagged retirement. *)

val total_reclaimed : t -> int
