(** Per-worker operation statistics. One mutable record per domain, no
    synchronisation; merge after a run. These are the metrics the paper's
    claims are judged on: lock footprint, restarts, link chases,
    structure modifications. *)

type t = {
  mutable ops : int;
  mutable gets : int;
  mutable puts : int;
  mutable lock_acquisitions : int;
  mutable locks_held : int;
  mutable max_locks_held : int;  (** the "locks simultaneously" metric *)
  mutable link_follows : int;
  mutable restarts : int;  (** wrong-node restarts (§5.2 case 2) *)
  mutable fwd_follows : int;  (** tombstone forwarding follows (case 1) *)
  mutable retries : int;  (** lock-then-revalidate right-moves *)
  mutable splits : int;
  mutable merges : int;
  mutable redistributions : int;
  mutable enqueued : int;
  mutable requeued : int;
  mutable discarded : int;
  mutable waits : int;  (** backoff waits (§3.3 / §5.2) *)
}

val create : unit -> t
val reset : t -> unit

val on_lock : t -> unit
(** Count an acquisition and track the simultaneous-locks high-water mark. *)

val on_unlock : t -> unit

val merge : into:t -> t -> unit
(** Sum counters; max the high-water marks. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Storage-backend IO statistics}

    One record per store, filled by the backend ({!Paged_store.Make.io_stats});
    faults and write-backs happen below the tree layer, which never sees a
    worker context, so they cannot live in {!t}. *)

type io = {
  mutable faults : int;  (** cache misses that read a page from storage *)
  mutable fault_stall_s : float;  (** time spent waiting for an IO stripe lock *)
  mutable inline_writebacks : int;  (** synchronous eviction write-backs *)
  mutable queued_writebacks : int;  (** write-backs handed to the background writer *)
  mutable writer_batches : int;  (** background-writer queue drains *)
  mutable writer_errors : int;
      (** background write-backs that failed and were left pending for
          [sync] to retry *)
  mutable max_batch : int;  (** largest single writer batch *)
  mutable max_queue_depth : int;  (** write-queue depth high-water mark *)
  mutable max_concurrent_faults : int;
      (** most faults in flight at once — [> 1] proves misses on distinct
          stripes overlapped *)
  mutable commit_reqs : int;  (** [commit] calls (group-commit requests) *)
  mutable commit_groups : int;
      (** group commits — log fsyncs a leader issued on behalf of one or
          more requests *)
  mutable max_commit_group : int;
      (** most requests absorbed by a single group commit's fsync *)
  mutable wal_records : int;  (** log records appended (pages + markers) *)
  mutable wal_fsyncs : int;  (** log-device fsyncs over the store's life *)
  mutable epoch_min_pinned : int;
      (** MVCC reclamation horizon at sample time — the oldest epoch any
          worker or snapshot still pins ([max_int] = nothing pinned);
          merged by [min] so a combined line shows the laggard *)
  mutable snap_pins : int;  (** snapshots currently held *)
  mutable mvcc_versions : int;  (** live version records across all chains *)
  mutable mvcc_pruned : int;  (** versions pruned since store creation *)
  mutable mvcc_disk_versions : int;
      (** version records persisted in vrec pages at the last commit *)
  mutable mvcc_disk_pages : int;  (** vrec pages currently allocated *)
}

val io_create : unit -> io

val io_merge : into:io -> io -> unit
(** Sum counters; max the high-water marks. *)

val pp_io : Format.formatter -> io -> unit
val io_to_string : io -> string

(** {2 Network-server statistics}

    One record per server worker domain (no sharing on the request
    path); the server merges them on demand. *)

type server = {
  mutable conns_opened : int;  (** connections accepted over the server's life *)
  mutable conns_active : int;  (** currently open connections *)
  mutable frames_in : int;  (** request frames decoded and executed *)
  mutable frames_out : int;  (** response frames written *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable max_pipeline : int;
      (** pipeline-depth high-water mark: most request frames one read
          batch delivered before the connection's responses flushed *)
  mutable protocol_errors : int;
      (** malformed / truncated / oversized / checksum-failed frames *)
  mutable acked_commits : int;
      (** durable group commits issued to cover mutation acks *)
  mutable elided : int;
      (** mutations answered from batch-dedup state without a tree
          operation (combining mode) *)
  mutable piggybacked : int;
      (** searches answered from the latest preceding same-batch write
          (combining mode) *)
  mutable commits_skipped : int;
      (** durable-ack commits elided because the batch's surviving
          mutations were all tree no-ops *)
  mutable snapshots_opened : int;
      (** MVCC snapshot pins taken on behalf of clients — per-request
          Range cuts and session [SNAPSHOT] opens *)
  mutable snap_reads : int;
      (** reads (searches and ranges) served at a pinned snapshot
          instead of current time *)
  mutable shard_acks : int array;
      (** ack-covering commits per shard (sharded handles only; grown on
          demand to the highest shard this worker committed) *)
  latency : Repro_util.Histogram.t;  (** per-request service time, seconds *)
}

val server_create : unit -> server

val note_shard_ack : server -> int -> unit
(** Count one ack-covering commit against a shard, growing the per-shard
    array on demand. *)

val server_merge : into:server -> server -> unit
(** Sum counters; max the high-water marks; merge the histograms. *)

val pp_server : Format.formatter -> server -> unit
val server_to_string : server -> string
