(** Fixed-size-page file: the paper's "page or block of secondary storage"
    (§2.2) as a storage device. Two backends — an in-memory byte vector
    (tests, benches) and a real file through [Unix] (durability) — behind
    one interface, so the checkpointer ({!Repro_core.Checkpoint}) is
    backend-agnostic.

    Not itself concurrent: the live tree runs in {!Store}; paged files are
    written and read at quiescent points. *)

type backend =
  | Memory of { mutable data : Bytes.t; mutable capacity : int }
  | File of Unix.file_descr

type t = { page_size : int; backend : backend; mutable pages : int }

let default_page_size = 4096

let create_memory ?(page_size = default_page_size) () =
  if page_size < 64 then invalid_arg "Paged_file: page_size too small";
  { page_size; backend = Memory { data = Bytes.create (16 * page_size); capacity = 16 }; pages = 0 }

(** Open (creating or truncating) a file-backed paged file for writing. *)
let create_file ?(page_size = default_page_size) path =
  if page_size < 64 then invalid_arg "Paged_file: page_size too small";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  { page_size; backend = File fd; pages = 0 }

(** Open an existing file-backed paged file; [writable] (default false)
    opens it read-write so a store can be resumed in place. *)
let open_file ?(page_size = default_page_size) ?(writable = false) path =
  let mode = if writable then Unix.O_RDWR else Unix.O_RDONLY in
  let fd = Unix.openfile path [ mode ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod page_size <> 0 then begin
    Unix.close fd;
    invalid_arg "Paged_file.open_file: size not a multiple of the page size"
  end;
  { page_size; backend = File fd; pages = size / page_size }

let page_size t = t.page_size
let pages t = t.pages

let ensure_memory_capacity (t : t) needed =
  match t.backend with
  | Memory m ->
      if needed > m.capacity then begin
        let cap = ref (max 16 m.capacity) in
        while needed > !cap do
          cap := !cap * 2
        done;
        let fresh = Bytes.create (!cap * t.page_size) in
        Bytes.blit m.data 0 fresh 0 (m.capacity * t.page_size);
        m.data <- fresh;
        m.capacity <- !cap
      end
  | File _ -> ()

let write t idx page =
  if Bytes.length page <> t.page_size then invalid_arg "Paged_file.write: wrong page size";
  if idx < 0 || idx > t.pages then invalid_arg "Paged_file.write: hole in file";
  (match t.backend with
  | Memory m ->
      ensure_memory_capacity t (idx + 1);
      Bytes.blit page 0 m.data (idx * t.page_size) t.page_size
  | File fd ->
      ignore (Unix.lseek fd (idx * t.page_size) Unix.SEEK_SET);
      let n = Unix.write fd page 0 t.page_size in
      if n <> t.page_size then failwith "Paged_file.write: short write");
  if idx = t.pages then t.pages <- t.pages + 1

(** Append a page; returns its index. *)
let append t page =
  let idx = t.pages in
  write t idx page;
  idx

(** Read page [idx] into [buf] (a full-page buffer supplied by the
    caller) without allocating — the buffer-pool miss path. *)
let read_into t idx buf =
  if idx < 0 || idx >= t.pages then invalid_arg "Paged_file.read: out of range";
  if Bytes.length buf <> t.page_size then
    invalid_arg "Paged_file.read_into: wrong buffer size";
  match t.backend with
  | Memory m -> Bytes.blit m.data (idx * t.page_size) buf 0 t.page_size
  | File fd ->
      ignore (Unix.lseek fd (idx * t.page_size) Unix.SEEK_SET);
      let rec fill off =
        if off < t.page_size then begin
          let n = Unix.read fd buf off (t.page_size - off) in
          if n = 0 then failwith "Paged_file.read: short read";
          fill (off + n)
        end
      in
      fill 0

let read t idx =
  let buf = Bytes.create t.page_size in
  read_into t idx buf;
  buf

let sync t = match t.backend with Memory _ -> () | File fd -> Unix.fsync fd
let close t = match t.backend with Memory _ -> () | File fd -> Unix.close fd
