(** Fixed-size-page file: the paper's "page or block of secondary storage"
    (§2.2) as a storage device. Three backends behind one interface — an
    in-memory byte vector (tests, benches), a real file through [Unix]
    (durability), and a {e crash shadow} (an in-memory device that models
    a volatile write cache: writes are discarded at a simulated crash
    unless an [fsync] covered them) — so the checkpointer
    ({!Repro_core.Checkpoint}) and the paged store are backend-agnostic.

    IO discipline (see doc/RECOVERY.md):

    - Every write and read is {e positional}: the offset is derived from
      the page index on every call, and for the [File] backend the
      seek+transfer pair runs under a per-file [io_lock], so two callers
      can never interleave an [lseek] of one with the [write] of the
      other. Callers that serialise externally (e.g. {!Paged_store}'s
      file lock) pay one uncontended lock; callers that do not are still
      safe.
    - Short transfers are retried until the full page moves ([EINTR]
      included); a transfer that cannot complete (EOF mid-page, any other
      [Unix_error]) raises the typed {!Io_error} instead of silently
      truncating.
    - {!Failpoint} sites [paged_file.pwrite], [paged_file.pread] and
      [paged_file.fsync] let tests inject errors, short writes, torn
      writes and crashes at exactly these boundaries. *)

exception
  Io_error of {
    op : string;  (** "write" | "read" | "fsync" *)
    page : int;
    detail : string;
  }

let fp_write = Failpoint.site "paged_file.pwrite"
let fp_read = Failpoint.site "paged_file.pread"
let fp_fsync = Failpoint.site "paged_file.fsync"

type shadow = {
  mutable volatile : Bytes.t;  (** what the process observes *)
  mutable vcap : int;  (** capacity of [volatile], in pages *)
  mutable durable : Bytes.t;  (** what survives a crash *)
  mutable dcap : int;
  mutable durable_pages : int;  (** page count covered by the last fsync *)
  unsynced : (int, unit) Hashtbl.t;  (** pages written since the last fsync *)
}

type backend =
  | Memory of { mutable data : Bytes.t; mutable capacity : int }
  | File of { fd : Unix.file_descr; io_lock : Mutex.t }
  | Shadow of shadow

type t = { page_size : int; backend : backend; mutable pages : int }

let default_page_size = 4096

let create_memory ?(page_size = default_page_size) () =
  if page_size < 64 then invalid_arg "Paged_file: page_size too small";
  { page_size; backend = Memory { data = Bytes.create (16 * page_size); capacity = 16 }; pages = 0 }

(** A crash-shadow device: behaves like [Memory], but keeps a second
    {e durable} image updated only by [sync]. {!crash_image} harvests it
    after a simulated crash. *)
let create_shadow ?(page_size = default_page_size) () =
  if page_size < 64 then invalid_arg "Paged_file: page_size too small";
  {
    page_size;
    backend =
      Shadow
        {
          volatile = Bytes.create (16 * page_size);
          vcap = 16;
          durable = Bytes.create (16 * page_size);
          dcap = 16;
          durable_pages = 0;
          unsynced = Hashtbl.create 64;
        };
    pages = 0;
  }

(** Open (creating or truncating) a file-backed paged file for writing. *)
let create_file ?(page_size = default_page_size) path =
  if page_size < 64 then invalid_arg "Paged_file: page_size too small";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  { page_size; backend = File { fd; io_lock = Mutex.create () }; pages = 0 }

(** Open an existing file-backed paged file; [writable] (default false)
    opens it read-write so a store can be resumed in place. *)
let open_file ?(page_size = default_page_size) ?(writable = false) path =
  let mode = if writable then Unix.O_RDWR else Unix.O_RDONLY in
  let fd = Unix.openfile path [ mode ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod page_size <> 0 then begin
    Unix.close fd;
    invalid_arg "Paged_file.open_file: size not a multiple of the page size"
  end;
  { page_size; backend = File { fd; io_lock = Mutex.create () }; pages = size / page_size }

let page_size t = t.page_size
let pages t = t.pages

let grow_bytes old old_cap page_size needed =
  let cap = ref (max 16 old_cap) in
  while needed > !cap do
    cap := !cap * 2
  done;
  let fresh = Bytes.create (!cap * page_size) in
  Bytes.blit old 0 fresh 0 (old_cap * page_size);
  (fresh, !cap)

let ensure_memory_capacity (t : t) needed =
  match t.backend with
  | Memory m ->
      if needed > m.capacity then begin
        let data, capacity = grow_bytes m.data m.capacity t.page_size needed in
        m.data <- data;
        m.capacity <- capacity
      end
  | Shadow s ->
      if needed > s.vcap then begin
        let volatile, vcap = grow_bytes s.volatile s.vcap t.page_size needed in
        s.volatile <- volatile;
        s.vcap <- vcap
      end
  | File _ -> ()

let ensure_durable_capacity (t : t) (s : shadow) needed =
  if needed > s.dcap then begin
    let durable, dcap = grow_bytes s.durable s.dcap t.page_size needed in
    s.durable <- durable;
    s.dcap <- dcap
  end

(* A crashed process cannot issue further IO: once a failpoint has raised
   [Crash], the shadow device freezes so a surviving domain (the
   background writer, a straggling worker) cannot mutate or commit the
   simulated disk post mortem. *)
let check_alive t =
  match t.backend with
  | Shadow _ when Failpoint.is_crashed () -> raise (Failpoint.Crash "paged_file.dead")
  | _ -> ()

(* Write [len] bytes of [page] at byte offset [base], honouring the
   failpoint's short/torn decisions, via [accept src_off dst_off n]
   (returns bytes actually moved). Loops until complete. *)
let write_loop t idx ~accept =
  let len = t.page_size in
  let rec go off =
    if off < len then begin
      let want = len - off in
      match Failpoint.write_action fp_write ~len:want with
      | Failpoint.Proceed ->
          let n = accept off want in
          go (off + n)
      | Failpoint.Short k ->
          let n = accept off (min k want) in
          go (off + n)
      | Failpoint.Torn k ->
          ignore (accept off (min k want));
          (match t.backend with
          | Shadow s ->
              (* Promote the torn page to the durable image: the in-flight
                 write hits the platter as power fails. Torn content =
                 the volatile bytes written so far (prefix of the new
                 page) over the old durable suffix, which the durable
                 image already holds — so copying the volatile prefix
                 written so far is exactly the tear. *)
              ensure_durable_capacity t s (idx + 1);
              if idx >= s.durable_pages then begin
                (* the tear may land past the old durable end: the device
                   grew mid-write; the gap reads back as zeros *)
                Bytes.fill s.durable (s.durable_pages * t.page_size)
                  ((idx + 1 - s.durable_pages) * t.page_size)
                  '\000';
                s.durable_pages <- idx + 1
              end;
              Bytes.blit s.volatile (idx * t.page_size) s.durable (idx * t.page_size)
                (off + min k want)
          | Memory _ | File _ -> ());
          Failpoint.crash fp_write
    end
  in
  go 0

let write t idx page =
  if Bytes.length page <> t.page_size then invalid_arg "Paged_file.write: wrong page size";
  if idx < 0 || idx > t.pages then invalid_arg "Paged_file.write: hole in file";
  check_alive t;
  (match t.backend with
  | Memory m ->
      ensure_memory_capacity t (idx + 1);
      write_loop t idx ~accept:(fun off n ->
          Bytes.blit page off m.data ((idx * t.page_size) + off) n;
          n)
  | Shadow s ->
      ensure_memory_capacity t (idx + 1);
      Hashtbl.replace s.unsynced idx ();
      write_loop t idx ~accept:(fun off n ->
          Bytes.blit page off s.volatile ((idx * t.page_size) + off) n;
          n)
  | File f ->
      (* Positional IO invariant: the seek and the writes below form one
         atomic unit under [io_lock]; no other thread can move this fd's
         offset in between. The write loop retries short writes and EINTR
         until the full page lands. *)
      Mutex.lock f.io_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock f.io_lock)
        (fun () ->
          ignore (Unix.lseek f.fd (idx * t.page_size) Unix.SEEK_SET);
          write_loop t idx ~accept:(fun off n ->
              try Unix.write f.fd page off n with
              | Unix.Unix_error (Unix.EINTR, _, _) -> 0
              | Unix.Unix_error (e, _, _) ->
                  raise
                    (Io_error
                       { op = "write"; page = idx; detail = Unix.error_message e }))));
  if idx = t.pages then t.pages <- t.pages + 1

(** Append a page; returns its index. *)
let append t page =
  let idx = t.pages in
  write t idx page;
  idx

(** Read page [idx] into [buf] (a full-page buffer supplied by the
    caller) without allocating — the buffer-pool miss path. *)
let read_into t idx buf =
  if idx < 0 || idx >= t.pages then invalid_arg "Paged_file.read: out of range";
  if Bytes.length buf <> t.page_size then
    invalid_arg "Paged_file.read_into: wrong buffer size";
  Failpoint.hit fp_read;
  match t.backend with
  | Memory m -> Bytes.blit m.data (idx * t.page_size) buf 0 t.page_size
  | Shadow s -> Bytes.blit s.volatile (idx * t.page_size) buf 0 t.page_size
  | File f ->
      Mutex.lock f.io_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock f.io_lock)
        (fun () ->
          ignore (Unix.lseek f.fd (idx * t.page_size) Unix.SEEK_SET);
          let rec fill off =
            if off < t.page_size then begin
              let n =
                try Unix.read f.fd buf off (t.page_size - off) with
                | Unix.Unix_error (Unix.EINTR, _, _) -> -1
                | Unix.Unix_error (e, _, _) ->
                    raise
                      (Io_error
                         { op = "read"; page = idx; detail = Unix.error_message e })
              in
              if n = 0 then
                raise
                  (Io_error
                     {
                       op = "read";
                       page = idx;
                       detail =
                         Printf.sprintf "unexpected EOF at byte %d of the page" off;
                     });
              fill (off + max n 0)
            end
          in
          fill 0)

let read t idx =
  let buf = Bytes.create t.page_size in
  read_into t idx buf;
  buf

let sync t =
  Failpoint.hit fp_fsync;
  check_alive t;
  match t.backend with
  | Memory _ -> ()
  | Shadow s ->
      ensure_durable_capacity t s t.pages;
      Hashtbl.iter
        (fun idx () ->
          if idx < t.pages then
            Bytes.blit s.volatile (idx * t.page_size) s.durable (idx * t.page_size)
              t.page_size)
        s.unsynced;
      Hashtbl.reset s.unsynced;
      s.durable_pages <- max s.durable_pages t.pages
  | File f -> (
      try Unix.fsync f.fd
      with Unix.Unix_error (e, _, _) ->
        raise (Io_error { op = "fsync"; page = -1; detail = Unix.error_message e }))

let close t =
  match t.backend with
  | Memory _ | Shadow _ -> ()
  | File f -> Unix.close f.fd

(** What a reopen would find after a crash at this instant: a fresh
    memory-backed paged file holding exactly the durable image — every
    write since the last {!sync} is gone (except pages a torn-write
    failpoint promoted). Only meaningful on a {!create_shadow} file. *)
let crash_image t =
  match t.backend with
  | Shadow s ->
      let npages = s.durable_pages in
      let data = Bytes.create (max 1 npages * t.page_size) in
      Bytes.blit s.durable 0 data 0 (npages * t.page_size);
      {
        page_size = t.page_size;
        backend = Memory { data; capacity = max 1 npages };
        pages = npages;
      }
  | Memory _ | File _ ->
      invalid_arg "Paged_file.crash_image: not a shadow-backed file"

(** Pages written since the last [sync] (shadow backend only) — what a
    crash right now would lose. *)
let unsynced_pages t =
  match t.backend with
  | Shadow s -> Hashtbl.length s.unsynced
  | Memory _ | File _ -> 0
