(** The prime block (§3.3): the number of levels and the pointer to the
    leftmost node of each level; entry [levels - 1] is the root. Never
    locked — it is rewritten only by the process holding the current
    root's lock, and published as an atomic snapshot. *)

type snapshot = { levels : int; leftmost : Node.ptr array }

type t

val create : root_ptr:Node.ptr -> t

(** [restore] rebuilds a prime block from persisted state (snapshot load). *)
val restore : levels:int -> leftmost:Node.ptr array -> t
val read : t -> snapshot
val root : snapshot -> Node.ptr

val leftmost_at : snapshot -> level:int -> Node.ptr option
(** [None] when the level does not exist (yet) — the §3.3 wait case. *)

val push_root : t -> root_ptr:Node.ptr -> unit
(** Record a new root one level up. Caller holds the old root's lock. *)

val install : t -> levels:int -> leftmost:Node.ptr array -> unit
(** Publish a complete level structure in one atomic swap (bulk load into
    a quiescent empty tree). Quiescent only: nothing protects this
    rewrite from concurrent operations. *)

val collapse_to : t -> level:int -> root_ptr:Node.ptr -> unit
(** Record a root collapse down to [level] (§5.4, possibly skipping
    several levels). Caller holds the old root's lock. *)
