(** Durable concurrent page store: {!Page_store.S} over a {!Buffer_pool} /
    {!Paged_file} / {!Page_codec} stack. Cached pages are read lock-free
    and latched exactly like {!Store}; cache misses, eviction write-back
    and [release] serialise on the page's {e IO stripe} (pages are hashed
    across a power-of-two number of striped mutexes, so IO on distinct
    stripes proceeds in parallel), with one small file lock around the
    shared buffer-pool/file tail. A recycled page raises [Freed_page]
    until its first [put] — the same contract as {!Store}.

    Dirty eviction victims are handed to a background writer when one is
    running ({!Make.writer_loop} / {!Make.start_writer}); otherwise (or
    when the bounded write queue is full) eviction writes back inline.

    Disk pages 0 and 1 are two checksummed header slots ping-ponged by a
    generation counter; tree pointer [p] lives on disk page [p + 2],
    checksummed by {!Page_codec}; the free list is threaded through the
    free pages themselves (checksummed entries) and rewritten on [sync]
    only when it changed. [sync] (quiescent) drains the write queue,
    stages the next generation's header into the alternate slot and
    commits it with a single fsync — crash-atomic under the model of
    {!Paged_file.create_shadow}; reopening falls back to the surviving
    slot when the other is torn, and degrades a damaged free chain to a
    leak instead of a failure (see doc/RECOVERY.md). Failpoint sites:
    [paged_store.fault], [paged_store.evict], [paged_store.writer],
    [paged_store.sync.data], [paged_store.sync.chain],
    [paged_store.sync.header], [paged_store.sync.commit] (plus the
    {!Wal} sites [wal.append], [wal.commit], [wal.replay] in WAL mode).

    {b WAL durability mode}: constructed with a second paged file (the
    log device), the store additionally satisfies {!Page_store.S.commit}
    with a {e group commit} — the caller's completed operations are
    logged as physical page images through {!Wal} and made durable by a
    single batched log fsync, without quiescence and without writing the
    data file. Dirty-page write-back becomes advisory (cache pressure
    and checkpoints still drive it, but durability no longer depends on
    it); [sync] remains the {e checkpoint}: it writes everything back as
    before, appends a CHECKPOINT marker, flips the header, and logically
    truncates the log. Reopening with the log replays the tail of
    group-committed batches past the last checkpoint before the free
    chain is rebuilt, so [commit]-acknowledged state survives a crash
    with no [sync] ever issued. Without a log device, [commit] degrades
    to [sync] (and inherits its quiescence requirement). *)

exception Corrupt of string
(** A damaged header or page encountered while opening / faulting. *)

exception
  Shard_mismatch of {
    expected_index : int;
    expected_count : int;
    found_index : int;
    found_count : int;
  }
(** The store being opened records a different partition identity than
    the caller expected. Raised by [open_from]/[open_file] when
    [expect_shard] is given: silently opening shard i-of-N as j-of-M
    would misroute every key the {!Shard_router} hashes. *)

val default_cache_pages : int

val default_stripes : int
(** Default IO stripe count (clamped to a power of two ≤ [cache_pages]). *)

val default_commit_batch : int
(** Default group-commit batch target: 1 — every commit request seals
    and fsyncs immediately. *)

val default_commit_interval : float
(** Default gather window (seconds) a group-commit leader waits for
    followers when [commit_batch] > 1. *)

module Make (K : Key.S) : sig
  include Page_store.S with type key = K.t

  val create_memory :
    ?shard:int * int ->
    ?page_size:int ->
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal:bool ->
    unit ->
    t
  (** Memory-backed paged file: the full pager stack (codec, pool,
      eviction) without filesystem durability — tests and benches.
      [cache_pages] bounds the decoded-node cache (default
      {!default_cache_pages}); [stripes] the IO stripe count (default
      {!default_stripes}, rounded down to a power of two and clamped to
      [cache_pages]); [wal] (default false) attaches a memory-backed log
      device so [commit] group-commits; [create] is [create_memory ()].
      [shard] (default [(0, 1)]) is the store's partition identity
      [(index, count)], recorded in every header it writes. *)

  val create_file :
    ?shard:int * int ->
    ?page_size:int ->
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal_path:string ->
    string ->
    t
  (** Create (or truncate) a file-backed store. [wal_path] creates the
      log device there and turns on WAL durability mode. *)

  val create_on :
    ?shard:int * int ->
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal:Paged_file.t ->
    Paged_file.t ->
    t
  (** Build a fresh store over an already-created (empty) paged file —
      how the crash harness runs the full stack on a
      {!Paged_file.create_shadow} device. [wal] is an empty log device
      sized {!Wal.log_page_size} (e.g. a second shadow file); passing it
      turns on WAL durability mode. [commit_interval] / [commit_batch]
      tune the group commit (defaults {!default_commit_interval} /
      {!default_commit_batch}). *)

  val open_file :
    ?expect_shard:int * int ->
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal_path:string ->
    string ->
    t
  (** Reopen a store that was {!Page_store.S.sync}ed ([flush]/[close]
      also sync). Restores the allocator frontier, free list and
      metadata blob from the newest valid header slot; with [wal_path],
      additionally replays the log's group-committed tail (a missing log
      file is created empty, so a sync-mode store can be reopened in WAL
      mode). [expect_shard] asserts the partition identity recorded in
      the header. @raise Corrupt when no header slot validates.
      @raise Shard_mismatch when [expect_shard] disagrees with the
      header. *)

  val open_from :
    ?expect_shard:int * int ->
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal:Paged_file.t ->
    Paged_file.t ->
    t
  (** {!open_file} over an already-open paged file (e.g. a
      {!Paged_file.crash_image}); [wal] is the already-open log device
      (e.g. its crash image), replayed via {!Wal.replay} before the free
      chain is rebuilt. *)

  val flush : t -> unit
  (** Alias of [sync]: write back queued and dirty nodes, persist the
      free list and header, fsync. Quiescent only. *)

  val close : t -> unit
  (** Stop the store-owned writer (if {!start_writer} started one), then
      [flush], then close the underlying file. *)

  (** {2 Background writer} *)

  val writer_loop : t -> stop:bool Atomic.t -> unit
  (** Drain the write queue in batches until [stop] is set {e and} the
      queue is empty. Run on a dedicated domain (e.g. via
      [Driver.run_ops_with_aux]); while at least one loop runs, eviction
      queues dirty victims instead of writing them back inline. *)

  val start_writer : t -> unit
  (** Spawn a domain running {!writer_loop}, owned by the store
      ({!close}/{!stop_writer} joins it). Idempotent. *)

  val stop_writer : t -> unit
  (** Stop and join the store-owned writer, draining the queue. No-op if
      none is running. *)

  (** {2 Introspection} *)

  val pool_stats : t -> Buffer_pool.stats

  val cached_nodes : t -> int
  (** Currently resident decoded nodes (bounded by [cache_pages]). *)

  val page_size : t -> int

  val shard : t -> int * int
  (** The store's partition identity [(index, count)]; [(0, 1)] for an
      unsharded store. *)

  val stripe_count : t -> int
  (** Actual stripe count after power-of-two / cache clamping. *)

  val queue_depth : t -> int
  (** Write-queue entries not yet popped by the writer. *)

  val generation : t -> int
  (** Last generation committed by [sync] (0 before the first sync). *)

  val writer_errors : t -> int
  (** Background write-backs that failed and were left pending for
      [sync] to retry. *)

  val io_stats : t -> Stats.io
  (** Snapshot of fault / write-back / writer counters (racy by a few
      events while workers run; exact when quiescent). *)

  val per_stripe_faults : t -> int array
  (** Disk faults served per stripe — shows whether misses spread across
      stripes. *)

  val wal_enabled : t -> bool
  (** Whether the store runs in WAL durability mode. *)

  val wal_cursor : t -> int option
  (** Log pages in the live pass (None without a WAL) — drops back to 0
      at each checkpoint's logical truncation. *)

  (** {2 Replication}

      The primary side exposes the WAL's durable, LSN-contiguous stream
      ({!wal_fetch} / {!wal_wait}); the follower side installs shipped
      commit batches ({!apply_replicated}). See doc/RECOVERY.md for the
      commit-point argument. *)

  val wal_fetch : t -> lsn:int -> max_pages:int -> Wal.fetch
  (** Raw log pages starting at [lsn], bounded by the durable watermark
      (never ships records a crash could revoke). [At_end] without a
      WAL. Thread-safe. *)

  val wal_wait : t -> lsn:int -> timeout:float -> bool
  (** Long-poll until some record at or past [lsn] is durable; [false]
      on timeout or without a WAL. *)

  val wal_durable_lsn : t -> int
  (** The shipping horizon: highest fsync-covered LSN (-1 before the
      first, or without a WAL). *)

  val wal_incarnation : t -> int option
  (** The log's current incarnation (None without a WAL). *)

  val apply_replicated : t -> images:(int * Bytes.t) list -> meta:Bytes.t option -> unit
  (** Install one shipped commit batch: write each full page image
      straight to the data file (extending the allocation frontier over
      new pages, invalidating any cached copy), then publish [meta].
      For follower stores driven by a single apply loop; the caller
      rebuilds its tree view from [meta] after the batch lands. *)
end
