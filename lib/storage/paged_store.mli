(** Durable concurrent page store: {!Page_store.S} over a {!Buffer_pool} /
    {!Paged_file} / {!Page_codec} stack. Cached pages are read lock-free
    and latched exactly like {!Store}; cache misses, write-back,
    eviction and [release] serialise on one internal IO mutex, and a
    recycled page raises [Freed_page] until its first [put] — the same
    contract as {!Store}. Disk page 0 is the store
    header; tree pointer [p] lives on disk page [p + 1]; the free list is
    threaded through the free pages themselves. [sync] (quiescent) makes
    the store survive {!close} + {!Make.open_file}. *)

exception Corrupt of string
(** A damaged header or page encountered while opening / faulting. *)

val default_cache_pages : int

module Make (K : Key.S) : sig
  include Page_store.S with type key = K.t

  val create_memory : ?page_size:int -> ?cache_pages:int -> unit -> t
  (** Memory-backed paged file: the full pager stack (codec, pool,
      eviction) without filesystem durability — tests and benches.
      [cache_pages] bounds the decoded-node cache (default
      {!default_cache_pages}); [create] is [create_memory ()]. *)

  val create_file : ?page_size:int -> ?cache_pages:int -> string -> t
  (** Create (or truncate) a file-backed store. *)

  val open_file : ?cache_pages:int -> string -> t
  (** Reopen a store that was {!Page_store.S.sync}ed ([flush]/[close]
      also sync). Restores the allocator frontier, free list and
      metadata blob. @raise Corrupt on a damaged file. *)

  val flush : t -> unit
  (** Alias of [sync]: write back all dirty nodes, persist the free list
      and header, fsync. Quiescent only. *)

  val close : t -> unit
  (** [flush] then close the underlying file. *)

  val pool_stats : t -> Buffer_pool.stats

  val cached_nodes : t -> int
  (** Currently resident decoded nodes (bounded by [cache_pages]). *)

  val page_size : t -> int
end
