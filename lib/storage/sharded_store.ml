(** Keyspace partition layer: N fully independent {!Paged_store}
    instances — each with its own buffer pool, free list, IO stripes,
    commit mutex, group-commit leader, background writer, checkpoint and
    recovery replay — managed as one unit. Nothing is shared between
    shards, so group commits on different shards fsync different log
    devices concurrently, and reopen recovers every shard in parallel
    (one domain per shard).

    Routing is {e not} this module's job: keys are assigned to shards by
    {!Shard_router} at the tree layer ([Tree_intf]'s sharded handle),
    which keeps this module generic over the key type. What this module
    does own is the partition {e identity}: shard [i] of [N] is created
    with [~shard:(i, N)], the identity lands in every header the store
    writes, and reopen passes [~expect_shard] so a store created under a
    different shard count refuses to open ({!Paged_store.Shard_mismatch})
    instead of silently misrouting every key.

    Shutdown is idempotent and exception-safe: each shard's writer stop
    + final checkpoint runs under [Fun.protect], every shard is visited
    even when an earlier one fails, and the first failure is re-raised
    once the sweep completes — one shard's bad device never leaks the
    other shards' writer domains. *)

module Make (K : Key.S) (P : module type of Paged_store.Make (K)) = struct
  type t = {
    stores : P.t array;
    close_mu : Mutex.t;
    mutable closed : bool;
  }

  let count t = Array.length t.stores
  let store t i = t.stores.(i)
  let stores t = t.stores

  (* On-disk layout: shard [i]'s data file is [path.s<i>], its log
     device [wal_path.s<i>] — one suffix scheme for every shard count,
     so a 1-shard store round-trips through the same paths. *)
  let shard_path path i = Printf.sprintf "%s.s%d" path i

  let wrap stores = { stores; close_mu = Mutex.create (); closed = false }

  let create_memory ?page_size ?cache_pages ?stripes ?commit_interval
      ?commit_batch ?wal ~shards () =
    if shards < 1 then invalid_arg "Sharded_store: shards must be >= 1";
    wrap
      (Array.init shards (fun i ->
           P.create_memory ~shard:(i, shards) ?page_size ?cache_pages ?stripes
             ?commit_interval ?commit_batch ?wal ()))

  let create_file ?page_size ?cache_pages ?stripes ?commit_interval
      ?commit_batch ?wal_path ~shards path =
    if shards < 1 then invalid_arg "Sharded_store: shards must be >= 1";
    wrap
      (Array.init shards (fun i ->
           P.create_file ~shard:(i, shards) ?page_size ?cache_pages ?stripes
             ?commit_interval ?commit_batch
             ?wal_path:(Option.map (fun w -> shard_path w i) wal_path)
             (shard_path path i)))

  (* Reopen every shard in parallel — recovery replay is the expensive
     part (log scan + image install), and the shards' devices are
     disjoint, so one domain per shard recovers in the time of the
     slowest shard. A shard that fails to open (corrupt, shard-count
     mismatch) fails the whole open: the shards that did open are
     closed before the error propagates, so nothing leaks. *)
  let open_file ?cache_pages ?stripes ?commit_interval ?commit_batch ?wal_path
      ~shards path =
    if shards < 1 then invalid_arg "Sharded_store: shards must be >= 1";
    let doms =
      Array.init shards (fun i ->
          Domain.spawn (fun () ->
              P.open_file ~expect_shard:(i, shards) ?cache_pages ?stripes
                ?commit_interval ?commit_batch
                ?wal_path:(Option.map (fun w -> shard_path w i) wal_path)
                (shard_path path i)))
    in
    let results =
      Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) doms
    in
    match
      Array.fold_left
        (fun first -> function Error e when first = None -> Some e | _ -> first)
        None results
    with
    | None ->
        wrap
          (Array.map (function Ok s -> s | Error _ -> assert false) results)
    | Some e ->
        Array.iter
          (function Ok s -> (try P.close s with _ -> ()) | Error _ -> ())
          results;
        raise e

  (* ---------- durability ---------- *)

  let commit_shard t i = P.commit t.stores.(i)
  let commit_all t = Array.iter P.commit t.stores

  (* Quiescent checkpoint of every shard (each [sync] writes back, flips
     the shard's header, truncates its log). *)
  let sync_all t = Array.iter P.sync t.stores

  (* ---------- background writers ---------- *)

  let start_writers t = Array.iter P.start_writer t.stores

  (* Visit every shard even when one fails; first failure re-raises
     after the sweep so no other shard's writer domain is left running
     behind an exception. *)
  let iter_protected f stores =
    let first = ref None in
    Array.iter
      (fun s -> try f s with e -> if !first = None then first := Some e)
      stores;
    match !first with Some e -> raise e | None -> ()

  let stop_writers t = iter_protected P.stop_writer t.stores

  (* One shard's shutdown: the final checkpoint under [Fun.protect] on
     the writer stop, so a failing sync (bad device, injected error)
     still joins the writer domain. [P.close] itself stops the writer
     first; the protect covers the case where it dies before that or
     between stop and sync ([P.stop_writer] is idempotent). *)
  let close_shard s =
    Fun.protect ~finally:(fun () -> P.stop_writer s) (fun () -> P.close s)

  let close t =
    Mutex.lock t.close_mu;
    let already = t.closed in
    t.closed <- true;
    Mutex.unlock t.close_mu;
    if not already then iter_protected close_shard t.stores

  (* ---------- introspection ---------- *)

  let per_shard_io t = Array.map P.io_stats t.stores

  let io_stats t =
    let acc = Stats.io_create () in
    Array.iter (fun s -> Stats.io_merge ~into:acc (P.io_stats s)) t.stores;
    acc

  let queue_depths t = Array.map P.queue_depth t.stores
  let generations t = Array.map P.generation t.stores
end
