(** Keyspace partition layer: N fully independent {!Paged_store}
    instances (own buffer pool, free list, commit mutex, group-commit
    leader, background writer, checkpoint, recovery) managed as one
    unit. Shard identity [(i, N)] is recorded in each shard's headers
    and validated on reopen; reopen recovers all shards in parallel.
    Key → shard routing lives in {!Shard_router} (used by the tree
    layer), keeping this module generic over the key type. *)

module Make (K : Key.S) (P : module type of Paged_store.Make (K)) : sig
  type t

  val count : t -> int
  val store : t -> int -> P.t
  val stores : t -> P.t array

  val shard_path : string -> int -> string
  (** [shard_path path i] is shard [i]'s on-disk path ([path.s<i>]);
      the same scheme applies to the WAL path. *)

  val create_memory :
    ?page_size:int ->
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal:bool ->
    shards:int ->
    unit ->
    t
  (** [shards] memory-backed stores; every per-store knob (cache pages,
      stripes, group-commit tuning) applies {e per shard}. *)

  val create_file :
    ?page_size:int ->
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal_path:string ->
    shards:int ->
    string ->
    t
  (** File-backed shards at [shard_path path i] (log devices at
      [shard_path wal_path i]), each created with shard identity
      [(i, shards)]. *)

  val open_file :
    ?cache_pages:int ->
    ?stripes:int ->
    ?commit_interval:float ->
    ?commit_batch:int ->
    ?wal_path:string ->
    shards:int ->
    string ->
    t
  (** Reopen every shard {e in parallel} (one domain per shard; WAL
      replay per shard), asserting shard [i] recorded identity
      [(i, shards)]. On any failure the already-opened shards are
      closed before the error propagates.
      @raise Paged_store.Shard_mismatch on a shard-count/index mismatch
      @raise Paged_store.Corrupt when a shard's header fails to parse *)

  val commit_shard : t -> int -> unit
  (** Group-commit one shard (safe from any domain; independent shards'
      commits run fully in parallel — separate mutexes, leaders, log
      fsyncs). *)

  val commit_all : t -> unit

  val sync_all : t -> unit
  (** Quiescent checkpoint of every shard. *)

  val start_writers : t -> unit

  val stop_writers : t -> unit
  (** Exception-safe: every shard's writer is stopped even when one
      raises; the first failure re-raises after the sweep. *)

  val close : t -> unit
  (** Idempotent, exception-safe shutdown: per shard, writer stop +
      final checkpoint under [Fun.protect]; all shards are visited even
      when one fails, then the first failure re-raises — one shard's
      bad device never leaks another's writer domain. *)

  val per_shard_io : t -> Stats.io array
  (** One {!Stats.io} snapshot per shard, in shard order — the skew
      observability surface (faults, commits, fsyncs, queue depth per
      shard). *)

  val io_stats : t -> Stats.io
  (** All shards merged (counters sum, high-water marks max). *)

  val queue_depths : t -> int array
  val generations : t -> int array
end
