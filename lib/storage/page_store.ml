(** The PAGE_STORE signature: the paper's model of secondary storage
    (§2.2) as a first-class interface.

    The model asks for pages with indivisible [get]/[put], a per-page
    lock that serialises writers without ever blocking readers, and an
    allocator that recycles released pages. Two implementations satisfy
    it: {!Store} (in-memory slots behind atomics — the reference
    substrate every test battery runs on) and {!Paged_store} (a durable
    backend over {!Buffer_pool}/{!Paged_file}/{!Page_codec} with a
    per-page latch table and write-back on eviction). The concurrent
    tree in [Repro_core] is functorized over this signature, so the full
    Sagiv algorithm — one-lock insertions, compression, epoch
    reclamation — runs unchanged on either. *)

exception Freed_page of int
(** Raised by [get] on a released (reclaimed) page. Declared here, once,
    so that every implementation raises the {e same} exception and
    generic code (and code written against {!Store} directly) can catch
    it without knowing the backend. Under correct epoch protection it
    cannot fire within a pinned operation; cross-operation references
    (queue stacks) catch it and restart. *)

(** What the functorized tree needs from a page store. [get]/[put] must
    be indivisible (readers see complete node snapshots, never torn
    ones); [lock] must serialise writers without blocking readers. *)
module type S = sig
  type key
  (** The key type of the nodes stored (fixed per instantiation so the
      store can encode nodes for a durable medium). *)

  type t

  val create : unit -> t
  (** A fresh, empty, non-durable store with default sizing — what tree
      constructors use when the caller does not supply a store. Durable
      implementations offer richer constructors ([create_file], ...)
      outside this signature. *)

  val alloc : t -> key Node.t -> Node.ptr
  (** Allocate a page initialised to the node; the id is readable from
      all domains as soon as this returns. *)

  val reserve : t -> Node.ptr
  (** Reserve a page id with no contents; the caller must [put] before
      making the id reachable (a split writes the new right sibling
      before linking it, Fig 3). [get] before that [put] raises
      {!Freed_page}. *)

  val get : t -> Node.ptr -> key Node.t
  (** Indivisible read. @raise Freed_page on a released page. *)

  val put : t -> Node.ptr -> key Node.t -> unit
  (** Indivisible rewrite. Writers to reachable pages hold the page's
      lock; the initial [put] after {!reserve} targets a page no other
      process can name yet, so it may go unlatched. *)

  val lock : t -> Node.ptr -> unit
  (** Page latch: blocks other lockers, never blocks readers (§2.2). *)

  val unlock : t -> Node.ptr -> unit
  val try_lock : t -> Node.ptr -> bool

  val release : t -> Node.ptr -> unit
  (** Return a page to the allocator; call only once its deletion epoch
      has passed (see {!Epoch}). The contents become unreadable. *)

  val live_count : t -> int
  (** Pages currently holding a node (allocated minus freed). *)

  val total_allocated : t -> int
  val total_freed : t -> int

  val iter : t -> (Node.ptr -> key Node.t -> unit) -> unit
  (** Iterate over all live pages. {b Only meaningful when quiescent}:
      concurrent writers make the traversal a mix of old and new states,
      and durable backends may fault pages in mid-iteration. *)

  val set_meta : t -> Bytes.t -> unit
  (** Attach an opaque metadata blob (tree geometry, prime-block state).
      Durable implementations persist it in their header on [sync];
      call at quiescent points only. *)

  val get_meta : t -> Bytes.t option

  val sync : t -> unit
  (** Make all prior [put]s and the metadata durable (no-op for purely
      in-memory stores). Quiescent points only. *)

  val commit : t -> unit
  (** Durably commit every {e completed} operation — the fine-grained
      durability point. This is an {e optional capability}: backends
      with a write-ahead log satisfy it with a group commit (one batched
      log fsync covers every concurrent caller) that is safe to call
      from many domains at once, concurrently with other operations.
      Durable backends {e without} one degrade to [sync] — the degraded
      path inherits [sync]'s quiescence requirement (concurrent commit
      calls are merely serialised against each other, which does not
      make a full sync safe against in-flight operations). Purely
      in-memory stores treat it as a no-op. Callers who need the
      concurrent contract must therefore know their backend has a log
      (e.g. was opened in WAL mode). *)
end
