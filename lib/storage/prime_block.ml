(** The prime block (paper §3.3).

    Holds the number of levels and "an array of pointers to the leftmost
    node at each level"; entry [levels - 1] is the root. The paper's
    protocol: the prime block is {e not} locked — it is rewritten only by a
    process that holds the lock on the current root, which serialises root
    creation and removal. We publish each rewrite as an atomic snapshot
    swap, matching the indivisible-write model. *)

type snapshot = {
  levels : int;
  leftmost : Node.ptr array;  (** index = level; [leftmost.(levels-1)] is the root *)
}

type t = snapshot Atomic.t

let create ~root_ptr : t = Atomic.make { levels = 1; leftmost = [| root_ptr |] }

(** Rebuild a prime block from persisted state (snapshot load). *)
let restore ~levels ~leftmost : t =
  if levels < 1 || Array.length leftmost <> levels then
    invalid_arg "Prime_block.restore";
  Atomic.make { levels; leftmost = Array.copy leftmost }

let read (t : t) = Atomic.get t
let root s = s.leftmost.(s.levels - 1)

(** Leftmost node at [level], if that level exists yet. Fig 6's
    [insert-into-unsafe] falls back to this when its stack is empty; §3.3's
    slow-root-creator scenario is the [None] case the caller must wait out. *)
let leftmost_at s ~level = if level < s.levels then Some s.leftmost.(level) else None

(** Record a new root one level up. Caller holds the old root's lock. *)
let push_root (t : t) ~root_ptr =
  let s = Atomic.get t in
  Atomic.set t { levels = s.levels + 1; leftmost = Array.append s.leftmost [| root_ptr |] }

(** Replace the whole snapshot (bulk load into a quiescent empty tree):
    the caller built a complete level structure off-line and publishes it
    in one atomic swap. Quiescent only — there is no root lock protecting
    this rewrite, so no concurrent operation may be in flight. *)
let install (t : t) ~levels ~leftmost =
  if levels < 1 || Array.length leftmost <> levels then
    invalid_arg "Prime_block.install";
  Atomic.set t { levels; leftmost = Array.copy leftmost }

(** Record a root collapse down to [level] (possibly skipping several
    levels, §5.4). The new root must already be the leftmost node of its
    level. Caller holds the old root's lock. *)
let collapse_to (t : t) ~level ~root_ptr =
  let s = Atomic.get t in
  assert (level < s.levels - 1);
  let leftmost = Array.sub s.leftmost 0 (level + 1) in
  leftmost.(level) <- root_ptr;
  Atomic.set t { levels = level + 1; leftmost }
