(** Append-only write-ahead log of physical page images over a
    {!Paged_file}, with the record framing, replay scanner and fault
    points the paged store's group-commit path builds on.

    {b Log device}: a {!Paged_file} whose page size is the data store's
    page size plus {!header_bytes} — one log page per record, so a torn
    record is exactly a torn device page and the whole-record checksum
    (FNV-1a-32, the same framing idiom as {!Page_codec} v2) detects any
    tear. Use {!log_page_size} to size the device.

    {b Record format} (one log page):

    {v
    off 0   u32  magic        "SGWL"
    off 4   u8   kind         1 = PAGE, 2 = COMMIT, 3 = CHECKPOINT
    off 8   u64  lsn          strictly increasing across the log's life
    off 16  u64  generation   store generation the record applies on top of
    off 24  u64  ptr          tree pointer (PAGE records; -1 otherwise)
    off 32  u32  body_len     bytes of body (page image / meta blob)
    off 40  u32  checksum     FNV-1a-32 over the whole log page, own field zeroed
    off 64  ...  body
    v}

    {b Generation stamping and truncation}: every record carries the
    store generation current when it was appended. A checkpoint advances
    the generation and {e logically truncates} the log by rewinding the
    append cursor to page 0 — nothing is erased; records of the previous
    pass are invalidated by their (now old) generation stamp, and the
    next pass simply overwrites them. The log file therefore never grows
    beyond the record count of the busiest inter-checkpoint window.

    {b Replay} ({!replay}) scans from page 0 and applies the classic
    redo discipline: PAGE / META records are {e staged}; a COMMIT record
    {e promotes} everything staged (later images of the same page win —
    last-writer-wins); CHECKPOINT markers are skipped (a checkpoint that
    failed before its header flip leaves its marker mid-log, with
    committed batches legitimately continuing after it); the scan stops
    cleanly at the first record that is torn (bad magic / checksum),
    stamped with a foreign generation (a previous pass), or breaks LSN
    continuity. Staged-but-unpromoted records — an interrupted commit's
    tail — are discarded: recovery yields exactly the group-committed
    batches.

    Failpoint sites: [wal.append] (before each record write),
    [wal.commit] (before each log fsync), [wal.replay] (per record
    scanned during recovery). *)

exception Corrupt of string

let magic = 0x53_47_57_4C (* "SGWL" *)
let header_bytes = 64
let cksum_off = 40

let kind_page = 1
let kind_commit = 2
let kind_checkpoint = 3
let kind_meta = 4

let fp_append = Failpoint.site "wal.append"
let fp_commit = Failpoint.site "wal.commit"
let fp_replay = Failpoint.site "wal.replay"

let log_page_size ~data_page_size = data_page_size + header_bytes

type record =
  | Page of { ptr : int; image : Bytes.t }  (** full physical page image *)
  | Meta of Bytes.t  (** client metadata blob (committed with its batch) *)
  | Commit  (** promotes every record staged since the previous commit *)
  | Checkpoint  (** pass boundary marker appended by a store checkpoint *)

type t = {
  file : Paged_file.t;
  data_page_size : int;
  mu : Mutex.t;  (** serialises append / fsync / truncate *)
  scratch : Bytes.t;  (** one log page, reused under [mu] *)
  mutable pos : int;  (** next log page to write *)
  mutable lsn : int;  (** next record's sequence number *)
  (* counters (under [mu]; read racily for reporting) *)
  mutable appended : int;
  mutable fsyncs : int;
}

let check_device ~data_page_size file =
  if Paged_file.page_size file <> log_page_size ~data_page_size then
    invalid_arg
      (Printf.sprintf
         "Wal: log device page size %d, want %d (data page %d + %d header)"
         (Paged_file.page_size file)
         (log_page_size ~data_page_size)
         data_page_size header_bytes)

let create ~data_page_size file =
  check_device ~data_page_size file;
  {
    file;
    data_page_size;
    mu = Mutex.create ();
    scratch = Bytes.create (log_page_size ~data_page_size);
    pos = 0;
    lsn = 0;
    appended = 0;
    fsyncs = 0;
  }

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------- record encode / decode ---------- *)

let encode_into page ~page_size ~kind ~lsn ~gen ~ptr ~body =
  Bytes.fill page 0 page_size '\000';
  Bytes.set_int32_le page 0 (Int32.of_int magic);
  Bytes.set_uint8 page 4 kind;
  Bytes.set_int64_le page 8 (Int64.of_int lsn);
  Bytes.set_int64_le page 16 (Int64.of_int gen);
  Bytes.set_int64_le page 24 (Int64.of_int ptr);
  Bytes.set_int32_le page 32 (Int32.of_int (Bytes.length body));
  Bytes.blit body 0 page header_bytes (Bytes.length body);
  Bytes.set_int32_le page cksum_off
    (Int32.of_int (Repro_util.Checksum.fnv32 page ~pos:0 ~len:page_size))

type parsed = {
  p_kind : int;
  p_lsn : int;
  p_gen : int;
  p_ptr : int;
  p_body : Bytes.t;
}

(* [None] when the page is not a valid record (torn, zeroed, foreign). *)
let decode page ~page_size =
  if Int32.to_int (Bytes.get_int32_le page 0) land 0xFFFFFFFF <> magic then None
  else
    let stored = Int32.to_int (Bytes.get_int32_le page cksum_off) land 0xFFFFFFFF in
    Bytes.set_int32_le page cksum_off 0l;
    let computed = Repro_util.Checksum.fnv32 page ~pos:0 ~len:page_size in
    Bytes.set_int32_le page cksum_off (Int32.of_int stored);
    if stored <> computed then None
    else
      let body_len = Int32.to_int (Bytes.get_int32_le page 32) land 0xFFFFFFFF in
      if body_len < 0 || body_len > page_size - header_bytes then None
      else
        Some
          {
            p_kind = Bytes.get_uint8 page 4;
            p_lsn = Int64.to_int (Bytes.get_int64_le page 8);
            p_gen = Int64.to_int (Bytes.get_int64_le page 16);
            p_ptr = Int64.to_int (Bytes.get_int64_le page 24);
            p_body = Bytes.sub page header_bytes body_len;
          }

(* ---------- append path ---------- *)

(** Append one record, stamped [gen], at the cursor. The write lands in
    the device's volatile image only — call {!fsync} (the group-commit
    leader does) to make the appended prefix durable. Thread-safe. *)
let append t ~gen record =
  with_mu t (fun () ->
      Failpoint.hit fp_append;
      let page_size = Bytes.length t.scratch in
      let kind, ptr, body =
        match record with
        | Page { ptr; image } ->
            if Bytes.length image <> t.data_page_size then
              invalid_arg "Wal.append: image must be exactly one data page";
            (kind_page, ptr, image)
        | Meta blob ->
            if Bytes.length blob > page_size - header_bytes then
              invalid_arg "Wal.append: metadata blob too large for a log record";
            (kind_meta, -1, blob)
        | Commit -> (kind_commit, -1, Bytes.empty)
        | Checkpoint -> (kind_checkpoint, -1, Bytes.empty)
      in
      encode_into t.scratch ~page_size ~kind ~lsn:t.lsn ~gen ~ptr ~body;
      Paged_file.write t.file t.pos t.scratch;
      t.pos <- t.pos + 1;
      t.lsn <- t.lsn + 1;
      t.appended <- t.appended + 1)

(** Fsync the log device: the group-commit point. Everything appended so
    far becomes durable. *)
let fsync t =
  with_mu t (fun () ->
      Failpoint.hit fp_commit;
      Paged_file.sync t.file;
      t.fsyncs <- t.fsyncs + 1)

(** Logical truncation, called by the store's checkpoint {e after} its
    header commit: rewind the cursor to page 0. The old pass's records
    stay on the device but are dead — their generation stamp no longer
    matches the header, so replay ignores them, and the next pass
    overwrites them in place. The LSN keeps rising monotonically across
    truncations (it is never reset), which lets replay detect where a
    new pass's tail ends inside an old pass's leftovers. *)
let truncate t = with_mu t (fun () -> t.pos <- 0)

let close t = Paged_file.close t.file
let appended t = t.appended
let fsyncs t = t.fsyncs
let cursor t = t.pos

(* ---------- recovery replay ---------- *)

type replay = {
  committed : (int, Bytes.t) Hashtbl.t;
      (** page images promoted by a COMMIT record, last writer wins *)
  committed_meta : Bytes.t option;  (** newest committed metadata blob *)
  records : int;  (** records scanned (valid ones, this pass) *)
  batches : int;  (** COMMIT records applied *)
  next_pos : int;  (** log page where the valid tail ends — resume cursor *)
  next_lsn : int;  (** LSN to continue appending with *)
}

(** Scan the log from page 0 and redo the pass belonging to store
    generation [gen]: stage PAGE / META records, promote them at each
    COMMIT, stop at the first torn record, foreign-generation record,
    LSN discontinuity, CHECKPOINT marker, or device end. Read-only; the
    caller installs [committed] into the data file. *)
let replay ~data_page_size ~gen file =
  check_device ~data_page_size file;
  let page_size = log_page_size ~data_page_size in
  let committed = Hashtbl.create 64 in
  let staged = Hashtbl.create 64 in
  let staged_meta = ref None in
  let committed_meta = ref None in
  let records = ref 0 in
  let batches = ref 0 in
  let stop = ref false in
  let pos = ref 0 in
  let last_lsn = ref (-1) in
  let npages = Paged_file.pages file in
  while (not !stop) && !pos < npages do
    Failpoint.hit fp_replay;
    let page = Paged_file.read file !pos in
    match decode page ~page_size with
    | None -> stop := true (* torn / unwritten tail *)
    | Some r ->
        if r.p_gen <> gen then stop := true (* a previous pass's leftovers *)
        else if !last_lsn >= 0 && r.p_lsn <> !last_lsn + 1 then stop := true
        else begin
          incr records;
          last_lsn := r.p_lsn;
          (if r.p_kind = kind_page then
             if Bytes.length r.p_body = data_page_size && r.p_ptr >= 0 then
               Hashtbl.replace staged r.p_ptr r.p_body
             else raise (Corrupt "Wal.replay: malformed PAGE record")
           else if r.p_kind = kind_meta then staged_meta := Some r.p_body
           else if r.p_kind = kind_commit then begin
             Hashtbl.iter (fun p img -> Hashtbl.replace committed p img) staged;
             Hashtbl.reset staged;
             (match !staged_meta with
             | Some m ->
                 committed_meta := Some m;
                 staged_meta := None
             | None -> ());
             incr batches
           end
           else if r.p_kind = kind_checkpoint then
             (* A pass-boundary marker, not promoted state. It does not
                stop the scan: a checkpoint that failed {e before} its
                header commit leaves its marker mid-log with committed
                batches legitimately continuing after it (the store
                retries the checkpoint later). A {e successful}
                checkpoint's marker is never reached — the generation
                advance invalidates it wholesale. *)
             ()
           else raise (Corrupt "Wal.replay: unknown record kind"));
          incr pos
        end
  done;
  {
    committed;
    committed_meta = !committed_meta;
    records = !records;
    batches = !batches;
    next_pos = !pos;
    next_lsn = !last_lsn + 1;
  }

(** Continue an existing log after recovery: the cursor resumes at the
    replay's valid tail (overwriting any torn record or stale pass), the
    LSN continues past the highest one seen. *)
let resume ~data_page_size ~(replay : replay) file =
  let t = create ~data_page_size file in
  t.pos <- replay.next_pos;
  t.lsn <- replay.next_lsn;
  t
