(** Append-only write-ahead log of physical page images over a
    {!Paged_file}, with the record framing, replay scanner and fault
    points the paged store's group-commit path builds on — and, since
    the log is also the replication stream, the sealed-segment retention
    and fetch API the shipping layer consumes.

    {b Log device}: a {!Paged_file} whose page size is the data store's
    page size plus {!header_bytes} — one log page per record, so a torn
    record is exactly a torn device page and the whole-record checksum
    (FNV-1a-32, the same framing idiom as {!Page_codec}) detects any
    tear. Use {!log_page_size} to size the device.

    {b Record format} (one log page):

    {v
    off 0   u32  magic        "SGWL"
    off 4   u8   kind         1 = PAGE, 2 = COMMIT, 3 = CHECKPOINT
    off 8   u64  lsn          strictly increasing across the log's life
    off 16  u64  generation   store generation the record applies on top of
    off 24  u64  ptr          tree pointer (PAGE records; -1 otherwise)
    off 32  u32  body_len     bytes of body (page image / meta blob)
    off 40  u32  checksum     FNV-1a-32 over the whole log page, own field zeroed
    off 44  u32  incarnation  append-pass counter, bumped at every resume
    off 64  ...  body
    v}

    {b Incarnation stamping}: every record additionally carries the
    log's {e incarnation} — a counter bumped each time the log is
    reattached after a crash ({!resume}). Within one generation's pass
    the incarnation is non-decreasing along the valid log; a record
    whose incarnation is {e lower} than its predecessor's is a stale
    leftover of the pass that crashed, sitting beyond the recovered
    tail, and replay stops there. Without the stamp such leftovers can
    {e chain}: the crashed pass's records beyond the torn page carry the
    same generation and exactly the LSNs a short resumed pass hands out,
    so a second crash could replay across the splice and promote a
    never-acknowledged batch (the phantom-tail bug; regression-tested in
    [test_crash]). The current incarnation is persisted in the store
    header at every checkpoint, so recovery can take the floor from the
    header even when the new pass is empty.

    {b Generation stamping, sealing and truncation}: every record
    carries the store generation current when it was appended. A
    checkpoint advances the generation and {e logically truncates} the
    log by rewinding the append cursor to page 0 — but first the pass's
    records are {e sealed} into a retained segment ({!truncate} copies
    the live pages aside, keeping the newest [retain] segments), so the
    LSN-contiguous history stays fetchable for replication catch-up and
    point-in-time recovery even after the device pages are overwritten
    by the next pass. On the device itself nothing is erased; records of
    the previous pass are invalidated by their (now old) generation
    stamp, and the next pass simply overwrites them, so the file never
    grows beyond the record count of the busiest inter-checkpoint
    window.

    {b Replay} ({!replay}) scans from page 0 and applies the classic
    redo discipline: PAGE / META records are {e staged}; a COMMIT record
    {e promotes} everything staged (later images of the same page win —
    last-writer-wins); CHECKPOINT markers are skipped (a checkpoint that
    failed before its header flip leaves its marker mid-log, with
    committed batches legitimately continuing after it); the scan stops
    cleanly at the first record that is torn (bad magic / checksum),
    stamped with a foreign generation (a previous pass), breaks LSN
    continuity, or regresses the incarnation (a crashed pass's leftovers
    beyond the recovered tail). Staged-but-unpromoted records — an
    interrupted commit's tail — are discarded: recovery yields exactly
    the group-committed batches. The scan-one-record step is {!Apply},
    which replication followers drive incrementally over the shipped
    stream.

    {b Shipping}: {!fsync} advances a {e durable watermark} (the highest
    LSN covered by a log fsync); {!fetch_from} serves the raw log pages
    of any LSN range at or below it, from the live pass or the retained
    segments, and {!wait_durable} lets a subscriber long-poll the
    watermark so sealed commit batches stream out right after the fsync
    that made them durable. See doc/RECOVERY.md for the replication
    commit-point argument.

    Failpoint sites: [wal.append] (before each record write),
    [wal.commit] (before each log fsync), [wal.replay] (per record
    scanned during recovery). *)

exception Corrupt of string

let magic = 0x53_47_57_4C (* "SGWL" *)
let header_bytes = 64
let cksum_off = 40
let inc_off = 44

let kind_page = 1
let kind_commit = 2
let kind_checkpoint = 3
let kind_meta = 4

let fp_append = Failpoint.site "wal.append"
let fp_commit = Failpoint.site "wal.commit"
let fp_replay = Failpoint.site "wal.replay"

let log_page_size ~data_page_size = data_page_size + header_bytes

type record =
  | Page of { ptr : int; image : Bytes.t }  (** full physical page image *)
  | Meta of Bytes.t  (** client metadata blob (committed with its batch) *)
  | Commit  (** promotes every record staged since the previous commit *)
  | Checkpoint  (** pass boundary marker appended by a store checkpoint *)

(** One sealed pass of the log, copied aside at checkpoint truncation:
    the retention window these form is what replication catch-up and
    PITR replay read. Process-local — a crashed primary's retention dies
    with it; its {e durable} device pages are what recovery (and a
    promoting follower's final catch-up) read instead. *)
type segment = {
  seg_base_lsn : int;  (** LSN of [seg_pages.(0)] *)
  seg_pages : Bytes.t array;  (** raw log pages, LSN-contiguous *)
}

let default_retain = 8

type t = {
  file : Paged_file.t;
  data_page_size : int;
  mu : Mutex.t;  (** serialises append / fsync / truncate / fetch *)
  scratch : Bytes.t;  (** one log page, reused under [mu] *)
  mutable pos : int;  (** next log page to write *)
  mutable lsn : int;  (** next record's sequence number *)
  mutable inc : int;  (** incarnation stamped into every appended record *)
  mutable base_lsn : int;  (** LSN of live log page 0 *)
  durable_lsn : int Atomic.t;
      (** highest LSN covered by a log fsync (or sealed at a checkpoint);
          -1 before the first. The shipping horizon. *)
  mutable segments : segment list;  (** sealed passes, newest first *)
  retain : int;  (** sealed segments kept (older ones fall off) *)
  (* counters: monotone, read concurrently by stats reporting *)
  appended : int Atomic.t;
  fsyncs : int Atomic.t;
}

let check_device ~data_page_size file =
  if Paged_file.page_size file <> log_page_size ~data_page_size then
    invalid_arg
      (Printf.sprintf
         "Wal: log device page size %d, want %d (data page %d + %d header)"
         (Paged_file.page_size file)
         (log_page_size ~data_page_size)
         data_page_size header_bytes)

let create ?(retain = default_retain) ~data_page_size file =
  check_device ~data_page_size file;
  {
    file;
    data_page_size;
    mu = Mutex.create ();
    scratch = Bytes.create (log_page_size ~data_page_size);
    pos = 0;
    lsn = 0;
    inc = 0;
    base_lsn = 0;
    durable_lsn = Atomic.make (-1);
    segments = [];
    retain = max 0 retain;
    appended = Atomic.make 0;
    fsyncs = Atomic.make 0;
  }

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------- record encode / decode ---------- *)

let encode_into page ~page_size ~kind ~lsn ~gen ~inc ~ptr ~body =
  Bytes.fill page 0 page_size '\000';
  Bytes.set_int32_le page 0 (Int32.of_int magic);
  Bytes.set_uint8 page 4 kind;
  Bytes.set_int64_le page 8 (Int64.of_int lsn);
  Bytes.set_int64_le page 16 (Int64.of_int gen);
  Bytes.set_int64_le page 24 (Int64.of_int ptr);
  Bytes.set_int32_le page 32 (Int32.of_int (Bytes.length body));
  Bytes.set_int32_le page inc_off (Int32.of_int inc);
  Bytes.blit body 0 page header_bytes (Bytes.length body);
  Bytes.set_int32_le page cksum_off
    (Int32.of_int (Repro_util.Checksum.fnv32 page ~pos:0 ~len:page_size))

type parsed = {
  p_kind : int;
  p_lsn : int;
  p_gen : int;
  p_inc : int;
  p_ptr : int;
  p_body : Bytes.t;
}

(* [None] when the page is not a valid record (torn, zeroed, foreign). *)
let decode page ~page_size =
  if Int32.to_int (Bytes.get_int32_le page 0) land 0xFFFFFFFF <> magic then None
  else
    let stored = Int32.to_int (Bytes.get_int32_le page cksum_off) land 0xFFFFFFFF in
    Bytes.set_int32_le page cksum_off 0l;
    let computed = Repro_util.Checksum.fnv32 page ~pos:0 ~len:page_size in
    Bytes.set_int32_le page cksum_off (Int32.of_int stored);
    if stored <> computed then None
    else
      let body_len = Int32.to_int (Bytes.get_int32_le page 32) land 0xFFFFFFFF in
      if body_len < 0 || body_len > page_size - header_bytes then None
      else
        Some
          {
            p_kind = Bytes.get_uint8 page 4;
            p_lsn = Int64.to_int (Bytes.get_int64_le page 8);
            p_gen = Int64.to_int (Bytes.get_int64_le page 16);
            p_inc = Int32.to_int (Bytes.get_int32_le page inc_off) land 0xFFFFFFFF;
            p_ptr = Int64.to_int (Bytes.get_int64_le page 24);
            p_body = Bytes.sub page header_bytes body_len;
          }

(* ---------- append path ---------- *)

(** Append one record, stamped [gen] and the log's incarnation, at the
    cursor. The write lands in the device's volatile image only — call
    {!fsync} (the group-commit leader does) to make the appended prefix
    durable. Thread-safe. *)
let append t ~gen record =
  with_mu t (fun () ->
      Failpoint.hit fp_append;
      let page_size = Bytes.length t.scratch in
      let kind, ptr, body =
        match record with
        | Page { ptr; image } ->
            if Bytes.length image <> t.data_page_size then
              invalid_arg "Wal.append: image must be exactly one data page";
            (kind_page, ptr, image)
        | Meta blob ->
            if Bytes.length blob > page_size - header_bytes then
              invalid_arg "Wal.append: metadata blob too large for a log record";
            (kind_meta, -1, blob)
        | Commit -> (kind_commit, -1, Bytes.empty)
        | Checkpoint -> (kind_checkpoint, -1, Bytes.empty)
      in
      encode_into t.scratch ~page_size ~kind ~lsn:t.lsn ~gen ~inc:t.inc ~ptr
        ~body;
      Paged_file.write t.file t.pos t.scratch;
      t.pos <- t.pos + 1;
      t.lsn <- t.lsn + 1;
      Atomic.incr t.appended)

(** Fsync the log device: the group-commit point. Everything appended so
    far becomes durable, and the shipping watermark advances to cover
    it — a subscriber parked in {!wait_durable} sees the new horizon on
    its next poll, which is how sealed batches stream right after the
    fsync that committed them. *)
let fsync t =
  with_mu t (fun () ->
      Failpoint.hit fp_commit;
      Paged_file.sync t.file;
      Atomic.incr t.fsyncs;
      Atomic.set t.durable_lsn (t.lsn - 1))

(** Logical truncation, called by the store's checkpoint {e after} its
    header commit: seal the live pass into a retained segment, then
    rewind the cursor to page 0. The old pass's records stay on the
    device but are dead — their generation stamp no longer matches the
    header, so replay ignores them, and the next pass overwrites them in
    place; the sealed copy keeps them fetchable ({!fetch_from}) for
    replication catch-up and PITR until [retain] newer seals push the
    segment out of the window. The LSN keeps rising monotonically across
    truncations (it is never reset), which keeps the shipped stream
    contiguous and lets replay detect where a new pass's tail ends
    inside an old pass's leftovers. *)
let truncate t =
  with_mu t (fun () ->
      if t.pos > 0 && t.retain > 0 then begin
        let pages =
          Array.init t.pos (fun i -> Bytes.copy (Paged_file.read t.file i))
        in
        let seg = { seg_base_lsn = t.base_lsn; seg_pages = pages } in
        let rec keep n = function
          | [] -> []
          | _ when n = 0 -> []
          | s :: rest -> s :: keep (n - 1) rest
        in
        t.segments <- seg :: keep (t.retain - 1) t.segments
      end;
      (* The checkpoint that sealed this pass made its whole tail as
         durable as the data file, checkpoint marker included — advance
         the watermark so a follower's stream never stalls on the marker
         (which no commit fsync ever covers). *)
      Atomic.set t.durable_lsn (max (Atomic.get t.durable_lsn) (t.lsn - 1));
      t.base_lsn <- t.lsn;
      t.pos <- 0)

let close t = Paged_file.close t.file
let appended t = Atomic.get t.appended
let fsyncs t = Atomic.get t.fsyncs
let cursor t = t.pos
let incarnation t = t.inc
let durable_lsn t = Atomic.get t.durable_lsn
let next_lsn t = with_mu t (fun () -> t.lsn)
let segment_count t = with_mu t (fun () -> List.length t.segments)

(** Oldest LSN still fetchable: the tail of the retention window. *)
let retained_lsn t =
  with_mu t (fun () ->
      match List.rev t.segments with
      | oldest :: _ -> oldest.seg_base_lsn
      | [] -> t.base_lsn)

(* ---------- shipping: fetch + long-poll ---------- *)

type fetch =
  | Pages of { pages : Bytes.t list; next : int }
      (** raw log pages for LSNs [lsn .. next - 1], LSN-contiguous *)
  | At_end  (** nothing durable at or past [lsn] yet — poll again *)
  | Stale  (** [lsn] has fallen out of the retention window *)

(** The raw log pages of up to [max_pages] records starting at [lsn],
    bounded by the durable watermark — only records an fsync (or a
    checkpoint seal) covered are ever shipped, so a follower's stream
    can never outrun the primary's own commit point. Served from the
    live pass or from the sealed segments; [Stale] means the follower
    lost the window and must re-seed from a full image. *)
let fetch_from t ~lsn ~max_pages =
  if lsn < 0 || max_pages < 1 then invalid_arg "Wal.fetch_from";
  with_mu t (fun () ->
      let durable = Atomic.get t.durable_lsn in
      if lsn > durable then At_end
      else if lsn >= t.base_lsn then begin
        (* live pass: page i holds LSN [base_lsn + i] *)
        let lo = lsn - t.base_lsn in
        let hi = min (durable - t.base_lsn) (lo + max_pages - 1) in
        let pages =
          List.init (hi - lo + 1) (fun i ->
              Bytes.copy (Paged_file.read t.file (lo + i)))
        in
        Pages { pages; next = t.base_lsn + hi + 1 }
      end
      else
        (* sealed segments, newest first; find the one covering [lsn] *)
        let rec find = function
          | [] -> Stale
          | seg :: rest ->
              let len = Array.length seg.seg_pages in
              if lsn >= seg.seg_base_lsn + len then
                (* newer than this segment, but below base_lsn: the gap
                   can only be a segment evicted from the window *)
                Stale
              else if lsn >= seg.seg_base_lsn then begin
                let lo = lsn - seg.seg_base_lsn in
                let hi = min (len - 1) (lo + max_pages - 1) in
                let pages =
                  List.init (hi - lo + 1) (fun i ->
                      Bytes.copy seg.seg_pages.(lo + i))
                in
                Pages { pages; next = seg.seg_base_lsn + hi + 1 }
              end
              else find rest
        in
        find t.segments)

(** Long-poll the durable watermark: true once some record at or past
    [lsn] is durable, false on timeout. Polling (the stdlib [Condition]
    has no timed wait) at a grain far below any real fsync latency. *)
let wait_durable t ~lsn ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    if Atomic.get t.durable_lsn >= lsn then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 5e-4;
      poll ()
    end
  in
  poll ()

(* ---------- the scan-one-record step ---------- *)

(** Incremental redo scanner — the single scan-one-record step behind
    {!replay} (which drives it over the local device) and the
    replication follower (which drives it over the shipped stream,
    installing each promoted batch into its own store). PAGE / META
    records are staged; a COMMIT promotes the stage as one batch;
    CHECKPOINT markers are passed over (a shipped stream legitimately
    crosses checkpoint = generation boundaries, which is why the stream
    policy accepts a generation {e advance} where local replay — pinned
    to its header's generation via [expect_gen] — must stop). Every
    acceptance rule that closes the phantom-tail bug lives here: strict
    LSN continuity and non-decreasing generation and incarnation. *)
module Apply = struct
  type batch = {
    b_lsn : int;  (** LSN of the COMMIT record that promoted the batch *)
    b_images : (int * Bytes.t) list;  (** tree ptr → page image, deduped *)
    b_meta : Bytes.t option;  (** metadata blob committed with the batch *)
  }

  type action =
    | Progress  (** record staged or skipped; keep feeding *)
    | Batch of batch  (** a COMMIT promoted everything staged *)
    | Reject of string
        (** not a valid continuation of this stream: torn record, LSN
            gap, regressed generation / incarnation, foreign generation
            (under [expect_gen]). The scanner state is unchanged — local
            replay treats this as the clean end of the log. *)

  type t = {
    a_page_size : int;
    a_data_page_size : int;
    a_expect_gen : int option;
    staged : (int, Bytes.t) Hashtbl.t;
    mutable staged_meta : Bytes.t option;
    mutable a_next_lsn : int;  (** -1 = no record consumed yet *)
    mutable a_gen : int;
    mutable a_inc : int;
    mutable a_horizon : int;  (** LSN of the last promoted COMMIT *)
    mutable a_records : int;
    mutable a_batches : int;
  }

  let create ?expect_gen ~data_page_size () =
    {
      a_page_size = log_page_size ~data_page_size;
      a_data_page_size = data_page_size;
      a_expect_gen = expect_gen;
      staged = Hashtbl.create 32;
      staged_meta = None;
      a_next_lsn = -1;
      a_gen = -1;
      a_inc = -1;
      a_horizon = -1;
      a_records = 0;
      a_batches = 0;
    }

  let next_lsn a = if a.a_next_lsn < 0 then 0 else a.a_next_lsn
  let horizon a = a.a_horizon
  let records a = a.a_records
  let batches a = a.a_batches

  (** Feed one raw log page. @raise Corrupt on a record that is
      structurally impossible {e after} its checksum validated (device
      or stream damage outside the torn-tail model). *)
  let step a page =
    if Bytes.length page <> a.a_page_size then
      Reject
        (Printf.sprintf "log page is %d bytes, want %d" (Bytes.length page)
           a.a_page_size)
    else
      match decode page ~page_size:a.a_page_size with
      | None -> Reject "torn or invalid record"
      | Some r ->
          if a.a_next_lsn >= 0 && r.p_lsn <> a.a_next_lsn then
            Reject
              (Printf.sprintf "LSN discontinuity: want %d, got %d" a.a_next_lsn
                 r.p_lsn)
          else if
            match a.a_expect_gen with Some g -> r.p_gen <> g | None -> false
          then Reject (Printf.sprintf "foreign generation %d" r.p_gen)
          else if r.p_gen < a.a_gen then
            Reject
              (Printf.sprintf "generation regressed %d -> %d" a.a_gen r.p_gen)
          else if r.p_inc < a.a_inc then
            (* the phantom tail: a stale record of the pass that crashed,
               beyond the resumed pass's last append *)
            Reject
              (Printf.sprintf "incarnation regressed %d -> %d" a.a_inc r.p_inc)
          else begin
            a.a_next_lsn <- r.p_lsn + 1;
            a.a_gen <- r.p_gen;
            a.a_inc <- r.p_inc;
            a.a_records <- a.a_records + 1;
            if r.p_kind = kind_page then
              if Bytes.length r.p_body = a.a_data_page_size && r.p_ptr >= 0
              then begin
                Hashtbl.replace a.staged r.p_ptr r.p_body;
                Progress
              end
              else raise (Corrupt "Wal: malformed PAGE record")
            else if r.p_kind = kind_meta then begin
              a.staged_meta <- Some r.p_body;
              Progress
            end
            else if r.p_kind = kind_commit then begin
              let images =
                Hashtbl.fold (fun p img acc -> (p, img) :: acc) a.staged []
              in
              Hashtbl.reset a.staged;
              let meta = a.staged_meta in
              a.staged_meta <- None;
              a.a_horizon <- r.p_lsn;
              a.a_batches <- a.a_batches + 1;
              Batch { b_lsn = r.p_lsn; b_images = images; b_meta = meta }
            end
            else if r.p_kind = kind_checkpoint then
              (* A pass-boundary marker, not promoted state. Local
                 replay must not stop here: a checkpoint that failed
                 before its header commit leaves its marker mid-log with
                 committed batches legitimately continuing after it. In
                 a shipped stream the marker is simply the generation
                 boundary. *)
              Progress
            else raise (Corrupt "Wal: unknown record kind")
          end
end

(* ---------- recovery replay ---------- *)

type replay = {
  committed : (int, Bytes.t) Hashtbl.t;
      (** page images promoted by a COMMIT record, last writer wins *)
  committed_meta : Bytes.t option;  (** newest committed metadata blob *)
  records : int;  (** records scanned (valid ones, this pass) *)
  batches : int;  (** COMMIT records applied *)
  next_pos : int;  (** log page where the valid tail ends — resume cursor *)
  next_lsn : int;  (** LSN to continue appending with *)
  next_inc : int;  (** incarnation the resumed log must append with *)
}

(** Scan the log from page 0 and redo the pass belonging to store
    generation [gen] — {!Apply} driven over the local device: stage
    PAGE / META records, promote them at each COMMIT, stop at the first
    torn record, foreign-generation record, LSN discontinuity, or
    incarnation regression (the crashed pass's phantom tail), or device
    end. Read-only; the caller installs [committed] into the data
    file. *)
let replay ~data_page_size ~gen file =
  check_device ~data_page_size file;
  let a = Apply.create ~expect_gen:gen ~data_page_size () in
  let committed = Hashtbl.create 64 in
  let committed_meta = ref None in
  let stop = ref false in
  let pos = ref 0 in
  let npages = Paged_file.pages file in
  while (not !stop) && !pos < npages do
    Failpoint.hit fp_replay;
    let page = Paged_file.read file !pos in
    match Apply.step a page with
    | Apply.Reject _ -> stop := true (* the clean end of the valid tail *)
    | Apply.Progress -> incr pos
    | Apply.Batch b ->
        List.iter (fun (p, img) -> Hashtbl.replace committed p img) b.Apply.b_images;
        (match b.Apply.b_meta with
        | Some m -> committed_meta := Some m
        | None -> ());
        incr pos
  done;
  {
    committed;
    committed_meta = !committed_meta;
    records = Apply.records a;
    batches = Apply.batches a;
    next_pos = !pos;
    next_lsn = Apply.next_lsn a;
    next_inc = (if a.Apply.a_inc < 0 then 0 else a.Apply.a_inc + 1);
  }

(** Continue an existing log after recovery: the cursor resumes at the
    replay's valid tail (overwriting any torn record or stale pass), the
    LSN continues past the highest one seen, and — the phantom-tail fix
    — the incarnation is {e bumped} past every one observed (and past
    [incarnation], the floor the store header persisted at its last
    checkpoint), so the stale records beyond the tail can never chain
    onto the new pass's appends: replay stops at the first incarnation
    regression. *)
let resume ?(incarnation = 0) ~data_page_size ~(replay : replay) file =
  let t = create ~data_page_size file in
  t.pos <- replay.next_pos;
  t.lsn <- replay.next_lsn;
  t.inc <- max replay.next_inc incarnation;
  t.base_lsn <- replay.next_lsn - replay.next_pos;
  (* Everything the valid tail holds was durable before the crash (the
     tail ends at the last commit fsync's coverage or the torn record
     after it) — expose it for shipping so a promoted-from or re-seeded
     follower can catch up from the recovered log. *)
  Atomic.set t.durable_lsn (replay.next_lsn - 1);
  t
