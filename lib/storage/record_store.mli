(** Concurrent multi-version record heap: the allocation the paper
    assumes for the records that leaf pairs (v, p) point to (§3.1), with
    per-slot version chains for MVCC snapshot reads. Slots never move;
    every chain transition is one CAS; freed slots are recycled — defer
    {!free} through an {!Epoch} manager when racing readers. *)

type 'v version = {
  epoch : int;  (** the writer's pinned epoch when this version landed *)
  value : 'v option;  (** [None] = tombstone (logical delete) *)
  prev : 'v version option;  (** next-older version, [None] at the tail *)
}

type 'v t

val create : ?size:('v -> int) -> unit -> 'v t
(** [size] prices a payload for the {!bytes_stored} gauge (default 0). *)

exception Freed_record of int

val put : 'v t -> epoch:int -> 'v -> int
(** Allocate a slot holding one live version; the pointer is immediately
    valid in all domains. *)

val get : 'v t -> int -> 'v option
(** Head value; [None] = tombstoned or sealed (logically absent).
    @raise Freed_record on a reclaimed slot. *)

val get_at : 'v t -> int -> at:int -> 'v option
(** Value as of epoch [at]: newest-from-head version with [epoch <= at].
    @raise Freed_record on a reclaimed slot. *)

val head : 'v t -> int -> 'v version option
(** Chain head ([None] = sealed) — vacuum's dead-chain test.
    @raise Freed_record on a reclaimed slot. *)

val insert_version : 'v t -> int -> epoch:int -> 'v -> [ `Ok | `Live | `Gone ]
(** Append a live version over a dead head. [`Live] — key taken; [`Gone]
    — sealed mid-vacuum, retry from the tree.
    @raise Freed_record on a reclaimed slot. *)

val upsert : 'v t -> int -> epoch:int -> 'v -> [ `Over_live | `Over_dead | `Gone ]
(** Append a live version unconditionally (bind-or-overwrite).
    @raise Freed_record on a reclaimed slot. *)

val kill : 'v t -> int -> epoch:int -> [ `Killed | `Dead | `Gone ]
(** Append a tombstone over a live head (logical delete).
    @raise Freed_record on a reclaimed slot. *)

val prune : 'v t -> int -> horizon:int -> int
(** Drop versions no pin at [>= horizon] can reach (everything below the
    newest version with [epoch < horizon]); returns how many.
    @raise Freed_record on a reclaimed slot. *)

val seal : 'v t -> int -> expect:'v version -> bool
(** CAS [Chain expect -> Sealed] (physical equality). The vacuum barrier:
    on [true] the caller owns removing the tree pair; late appenders get
    [`Gone] and retry from a fresh tree search. *)

val free : 'v t -> int -> unit
val live_count : 'v t -> int
val bytes_stored : 'v t -> int

val live_versions : 'v t -> int
(** Version records across all chains (the MVCC space amplification). *)

val live_values : 'v t -> int
(** Chains whose head is live — the store's logical cardinality. *)

val pruned_total : 'v t -> int
(** Versions dropped by {!prune} since [create]. *)

(** {2 Persistence hooks}

    {!Repro_core.Mvcc} serializes slot states into version-record pages
    and rebuilds the heap from them on recovery. [export] is safe under
    concurrency (one atomic read; chains are immutable past the head);
    [restore]/[finish_restore] are recovery-only, single-threaded. *)

type 'v slot_state = Slot_empty | Slot_sealed | Slot_chain of 'v version

val export : 'v t -> int -> 'v slot_state
(** Slot state as it stands; never raises — unallocated reads as
    [Slot_empty]. *)

val restore : 'v t -> int -> 'v slot_state -> unit
(** Install a persisted slot state verbatim (recovery only). *)

val finish_restore : 'v t -> next:int -> unit
(** Set the bump frontier, rebuild the free list from empty slots below
    it, settle allocation gauges. Call once, after all {!restore}s. *)

val frontier : 'v t -> int
(** The bump-allocation frontier (every allocated slot is below it). *)
