(** The PAGE_STORE signature: the paper's secondary-storage model (§2.2)
    as a first-class interface, with indivisible [get]/[put], per-page
    writer latches that never block readers, and a recycling allocator.
    {!Store} (in-memory) and {!Paged_store} (durable, buffer-pooled)
    both satisfy it; the concurrent tree is functorized over it. *)

exception Freed_page of int
(** Raised by [get] on a released page — the one shared exception every
    implementation raises, so backend-generic code catches reclamation
    races uniformly. *)

module type S = sig
  type key
  type t

  val create : unit -> t
  (** Fresh empty non-durable store with default sizing. *)

  val alloc : t -> key Node.t -> Node.ptr
  (** Allocate a page initialised to the node; immediately readable from
      all domains. *)

  val reserve : t -> Node.ptr
  (** Reserve a page id with no contents; the caller must [put] before
      making the id reachable (Fig 3). *)

  val get : t -> Node.ptr -> key Node.t
  (** Indivisible read. @raise Freed_page on a released page. *)

  val put : t -> Node.ptr -> key Node.t -> unit
  (** Indivisible rewrite (under the page's lock once reachable). *)

  val lock : t -> Node.ptr -> unit
  (** Page latch: blocks other lockers, never blocks readers. *)

  val unlock : t -> Node.ptr -> unit
  val try_lock : t -> Node.ptr -> bool

  val release : t -> Node.ptr -> unit
  (** Return a page to the allocator once its deletion epoch has passed. *)

  val live_count : t -> int
  val total_allocated : t -> int
  val total_freed : t -> int

  val iter : t -> (Node.ptr -> key Node.t -> unit) -> unit
  (** Over all live pages; only meaningful when quiescent. *)

  val set_meta : t -> Bytes.t -> unit
  (** Opaque metadata blob, persisted by durable backends on [sync]. *)

  val get_meta : t -> Bytes.t option

  val sync : t -> unit
  (** Make prior [put]s and metadata durable (no-op in memory). *)

  val commit : t -> unit
  (** Durably commit every completed operation — the fine-grained,
      concurrency-safe durability point (optional capability: WAL
      backends group-commit, plain durable backends degrade to [sync],
      in-memory stores no-op). *)
end
