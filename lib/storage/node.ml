(** Pure node algebra for B-link trees (paper §2.1, Figs 1–3).

    A node covers the half-open key interval (low, high]. Internal nodes
    hold [m] keys and [m+1] child pointers: child [c_j] covers
    [(k_j, k_{j+1}]] where [k_0 = low] and [k_{m+1} = high]. Leaves hold
    [m] keys with [m] record pointers. Every node additionally stores its
    {e high value} and a {e link} to its right neighbour (the B-link
    extension of Lehman–Yao), plus — required by Sagiv's compression — its
    {e low value} and a deletion state with a forwarding pointer.

    All operations here are pure: they return new nodes and never mutate.
    The store publishes a node with a single atomic write, which is what
    makes the paper's "rewriting a node is indivisible" model hold. *)

type ptr = int

let nil : ptr = -1

(** Pseudo-level tag for version-record pages: pages at this level are not
    tree nodes at all but serialized {!Record_store} version chains riding
    the same page store (one WAL, one replay, one replication stream).
    Chosen as the u16 ceiling so the codec's level field carries it
    unchanged and no real tree can reach it (heights are < 64). Tree
    walkers, {!Validate.leak_check} and friends must skip these pages. *)
let vrec_level = 0xFFFF

type state =
  | Live
  | Deleted of ptr
      (** forwarding pointer to the left sibling the contents merged into
          (§5.2 case 1), or to the new root when a root is removed *)

type 'k t = {
  level : int;  (** 0 = leaf *)
  keys : 'k array;
  ptrs : ptr array;  (** leaf: record ptrs, [|ptrs|=|keys|]; internal: children, [|ptrs|=|keys|+1] *)
  low : 'k Bound.t;
  high : 'k Bound.t;
  link : ptr option;  (** right neighbour at the same level *)
  is_root : bool;  (** the root bit of §3.3 *)
  state : state;
}

let is_leaf n = n.level = 0
let is_deleted n = match n.state with Deleted _ -> true | Live -> false
let nkeys n = Array.length n.keys

(** Number of (value, pointer) pairs in the paper's sense: the key count. *)
let npairs = nkeys

(** A node is safe when an insertion cannot overflow it (fewer than 2k pairs). *)
let is_safe ~order n = nkeys n < 2 * order

(** A node is sparse — a compression candidate — below k pairs (§5.1). *)
let is_sparse ~order n = nkeys n < order

module Make (K : Key.S) = struct
  type node = K.t t

  let bcompare = Bound.compare K.compare
  let key_vs_bound k b = Bound.compare_key K.compare k b

  (** low < k <= high *)
  let in_range n k = key_vs_bound k n.low > 0 && key_vs_bound k n.high <= 0

  (** Number of keys strictly smaller than [k] (binary search). *)
  let rank n k =
    let lo = ref 0 and hi = ref (nkeys n) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare n.keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let mem n k =
    let r = rank n k in
    r < nkeys n && K.compare n.keys.(r) k = 0

  (** Number of keys strictly smaller than bound [b]. Generalises {!rank}
      so the compression processes can navigate by a node's high value,
      which may be +inf (§5.4 parent search). *)
  let rank_b n b =
    let lo = ref 0 and hi = ref (nkeys n) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Bound.compare_key K.compare n.keys.(mid) b < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (** The child pointer to follow for [k]; internal nodes only, and only
      when [k <= high] (otherwise the link must be followed instead). *)
  let child_for n k =
    assert (not (is_leaf n));
    n.ptrs.(rank n k)

  (** {!child_for} by bound: the child whose range contains values up to [b]. *)
  let child_for_b n b =
    assert (not (is_leaf n));
    n.ptrs.(rank_b n b)

  (** The [next(A, v)] of Fig 4: where a search for [k] goes from node [n]. *)
  type step = Link of ptr | Child of ptr | Here

  let next n k =
    if key_vs_bound k n.high > 0 then
      match n.link with
      | Some p -> Link p
      | None -> Here (* high = +inf, cannot happen with k <= +inf *)
    else if is_leaf n then Here
    else Child (child_for n k)

  (** Leaf lookup: the record pointer stored with [k], if present. *)
  let leaf_find n k =
    assert (is_leaf n);
    let r = rank n k in
    if r < nkeys n && K.compare n.keys.(r) k = 0 then Some n.ptrs.(r) else None

  (* -- array splicing helpers -- *)

  let insert_at arr i v =
    let n = Array.length arr in
    Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then v else arr.(j - 1))

  let remove_at arr i =
    let n = Array.length arr in
    Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

  let sub = Array.sub

  (* -- constructors -- *)

  (** The initial tree: a single empty leaf that is also the root. *)
  let empty_root () =
    {
      level = 0;
      keys = [||];
      ptrs = [||];
      low = Bound.Neg_inf;
      high = Bound.Pos_inf;
      link = None;
      is_root = true;
      state = Live;
    }

  (** A fresh root above [left] and [right] after a root split (Fig 6,
      [insert-into-unsafe-root]): children [\[left; right\]] separated by
      [left]'s new high value. *)
  let new_root ~level ~left_ptr ~right_ptr ~sep =
    {
      level;
      keys = [| sep |];
      ptrs = [| left_ptr; right_ptr |];
      low = Bound.Neg_inf;
      high = Bound.Pos_inf;
      link = None;
      is_root = true;
      state = Live;
    }

  (* -- leaf updates -- *)

  (** Insert pair (k, p) into a non-full leaf. Caller must have checked
      [mem n k = false] and [in_range n k]. *)
  let leaf_insert n k p =
    assert (is_leaf n);
    let r = rank n k in
    { n with keys = insert_at n.keys r k; ptrs = insert_at n.ptrs r p }

  (** Replace the record pointer stored with [k]; returns the new node and
      the old pointer, or [None] when [k] is absent. Payload updates never
      touch the search structure. *)
  let leaf_set_payload n k p =
    assert (is_leaf n);
    let r = rank n k in
    if r < nkeys n && K.compare n.keys.(r) k = 0 then begin
      let old = n.ptrs.(r) in
      let ptrs = Array.copy n.ptrs in
      ptrs.(r) <- p;
      Some ({ n with ptrs }, old)
    end
    else None

  (** Remove [k] from a leaf; [None] if absent. The high value is {e not}
      adjusted (paper §2.1 footnote 7: deletions may make the high value
      exceed the largest stored key). *)
  let leaf_delete n k =
    assert (is_leaf n);
    let r = rank n k in
    if r < nkeys n && K.compare n.keys.(r) k = 0 then
      Some { n with keys = remove_at n.keys r; ptrs = remove_at n.ptrs r }
    else None

  (** Split a full leaf while inserting (k, p), as one atomic rewrite of
      [n] after the new right sibling is written (Fig 3). [right_ptr] is the
      page allocated for the new node. Returns (left, right): [left] keeps
      the first half, gets high = its largest key and link = [right_ptr];
      [right] takes the rest plus [n]'s old high value and link. *)
  let leaf_split n k p ~right_ptr =
    assert (is_leaf n);
    let keys = insert_at n.keys (rank n k) k
    and ptrs = insert_at n.ptrs (rank n k) p in
    let total = Array.length keys in
    let mid = (total + 1) / 2 in
    let sep = keys.(mid - 1) in
    let left =
      {
        n with
        keys = sub keys 0 mid;
        ptrs = sub ptrs 0 mid;
        high = Bound.Key sep;
        link = Some right_ptr;
        is_root = false;
      }
    and right =
      {
        n with
        keys = sub keys mid (total - mid);
        ptrs = sub ptrs mid (total - mid);
        low = Bound.Key sep;
        is_root = false;
      }
    in
    (left, right)

  (* -- internal-node updates -- *)

  (** Insert the pair (k, p) — a separator key and the pointer to the new
      node that covers (k, next separator] — "immediately to the left of the
      smallest key u such that k < u" (§3.1). *)
  let internal_insert n k p =
    assert (not (is_leaf n));
    let r = rank n k in
    { n with keys = insert_at n.keys r k; ptrs = insert_at n.ptrs (r + 1) p }

  (** Split a full internal node while inserting (k, p). The middle key
      becomes the boundary: left's new high value and right's low value;
      it is stored in neither half (it will be inserted into the parent). *)
  let internal_split n k p ~right_ptr =
    assert (not (is_leaf n));
    let keys = insert_at n.keys (rank n k) k
    and ptrs = insert_at n.ptrs (rank n k + 1) p in
    let total = Array.length keys in
    let mid = total / 2 in
    let sep = keys.(mid) in
    let left =
      {
        n with
        keys = sub keys 0 mid;
        ptrs = sub ptrs 0 (mid + 1);
        high = Bound.Key sep;
        link = Some right_ptr;
        is_root = false;
      }
    and right =
      {
        n with
        keys = sub keys (mid + 1) (total - mid - 1);
        ptrs = sub ptrs (mid + 1) (total - mid);
        low = Bound.Key sep;
        is_root = false;
      }
    in
    (left, right)

  (* -- compression updates (§5) -- *)

  (** Whether merging [a] and its right neighbour [b] yields a node within
      capacity ("2k or fewer pairs" for leaves; for internal nodes the old
      boundary returns as a separator, hence the +1). *)
  let can_merge ~order a b =
    assert (a.level = b.level);
    if is_leaf a then nkeys a + nkeys b <= 2 * order
    else nkeys a + nkeys b + 1 <= 2 * order

  (** Merge right neighbour [b] into [a]: [a] takes all pairs plus [b]'s
      high value and link (§5.2 case 1). *)
  let merge a b =
    assert (a.level = b.level);
    assert (bcompare a.high b.low = 0);
    let keys, ptrs =
      if is_leaf a then (Array.append a.keys b.keys, Array.append a.ptrs b.ptrs)
      else
        ( Array.concat [ a.keys; [| Bound.get_key a.high |]; b.keys ],
          Array.append a.ptrs b.ptrs )
    in
    { a with keys; ptrs; high = b.high; link = b.link }

  (** Rebalance pairs between [a] and its right neighbour [b] so that both
      hold at least k pairs (§5.2 case 2). Returns (a', b', new boundary);
      the boundary is [a']'s high value and [b']'s low value and must also
      replace the old separator in the parent. *)
  let redistribute a b =
    assert (a.level = b.level);
    assert (bcompare a.high b.low = 0);
    if is_leaf a then begin
      let keys = Array.append a.keys b.keys and ptrs = Array.append a.ptrs b.ptrs in
      let total = Array.length keys in
      let mid = (total + 1) / 2 in
      let sep = keys.(mid - 1) in
      let a' =
        { a with keys = sub keys 0 mid; ptrs = sub ptrs 0 mid; high = Bound.Key sep }
      and b' =
        {
          b with
          keys = sub keys mid (total - mid);
          ptrs = sub ptrs mid (total - mid);
          low = Bound.Key sep;
        }
      in
      (a', b', sep)
    end
    else begin
      let keys = Array.concat [ a.keys; [| Bound.get_key a.high |]; b.keys ]
      and ptrs = Array.append a.ptrs b.ptrs in
      let total = Array.length keys in
      let mid = total / 2 in
      let sep = keys.(mid) in
      let a' =
        { a with keys = sub keys 0 mid; ptrs = sub ptrs 0 (mid + 1); high = Bound.Key sep }
      and b' =
        {
          b with
          keys = sub keys (mid + 1) (total - mid - 1);
          ptrs = sub ptrs (mid + 1) (total - mid);
          low = Bound.Key sep;
        }
      in
      (a', b', sep)
    end

  (** Tombstone a node, forwarding readers to [fwd] (§5.2 case 1; also used
      for removed roots). The link is cleared: readers continue via [fwd],
      whose link already bypasses this node. *)
  let mark_deleted n ~fwd =
    { n with keys = [||]; ptrs = [||]; link = None; is_root = false; state = Deleted fwd }

  (* -- parent-side pair bookkeeping (§5.4) -- *)

  (** Index [j] such that [parent.ptrs.(j) = child], if any. *)
  let child_slot parent child =
    let rec go j =
      if j >= Array.length parent.ptrs then None
      else if parent.ptrs.(j) = child then Some j
      else go (j + 1)
    in
    go 0

  (** High value of the range that child slot [j] covers: [keys.(j)] or the
      parent's own high value for the rightmost child. *)
  let slot_high parent j =
    if j < nkeys parent then Bound.Key parent.keys.(j) else parent.high

  (** Low value of the range that child slot [j] covers. *)
  let slot_low parent j = if j = 0 then parent.low else Bound.Key parent.keys.(j - 1)

  (** Parent has the pair (p, v) — pointer [p] to a child whose slot's high
      value equals [v] — the §5.4 validity test before compressing. *)
  let has_pair parent ~ptr ~high =
    match child_slot parent ptr with
    | None -> false
    | Some j -> bcompare (slot_high parent j) high = 0

  (** After merging child slot [j+1]'s node into slot [j]'s: drop the old
      separator [keys.(j)] and the pointer [ptrs.(j+1)] ("the old high value
      of A and the pointer to B are deleted from F", Fig 7). *)
  let remove_merged_pair parent ~right_slot:j1 =
    assert (j1 >= 1);
    { parent with keys = remove_at parent.keys (j1 - 1); ptrs = remove_at parent.ptrs j1 }

  (** After redistribution between slots [j] and [j+1]: the separator
      [keys.(j)] becomes the new boundary. *)
  let replace_separator parent ~right_slot:j1 ~sep =
    assert (j1 >= 1);
    let keys = Array.copy parent.keys in
    keys.(j1 - 1) <- sep;
    { parent with keys }

  (* -- diagnostics -- *)

  let pp_bound fmt b = Format.pp_print_string fmt (Bound.to_string K.to_string b)

  let pp fmt n =
    Format.fprintf fmt "@[<h>{L%d%s%s (%a,%a] keys=[%s] ptrs=[%s] link=%s}@]" n.level
      (if n.is_root then " root" else "")
      (match n.state with Deleted f -> Printf.sprintf " DEL->%d" f | Live -> "")
      pp_bound n.low pp_bound n.high
      (String.concat ";" (Array.to_list (Array.map K.to_string n.keys)))
      (String.concat ";" (Array.to_list (Array.map string_of_int n.ptrs)))
      (match n.link with Some p -> string_of_int p | None -> "nil")

  let to_string n = Format.asprintf "%a" pp n

  (** Local structural invariants; returns human-readable violations.
      Version-record pages are opaque payload carriers, not nodes — no
      structural claims apply. *)
  let check ?order n =
    if n.level = vrec_level then []
    else
    let errs = ref [] in
    let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
    let m = nkeys n in
    if is_leaf n then begin
      if Array.length n.ptrs <> m then err "leaf |ptrs|=%d <> |keys|=%d" (Array.length n.ptrs) m
    end
    else if not (is_deleted n) && Array.length n.ptrs <> m + 1 then
      err "internal |ptrs|=%d <> |keys|+1=%d" (Array.length n.ptrs) (m + 1);
    for i = 0 to m - 2 do
      if K.compare n.keys.(i) n.keys.(i + 1) >= 0 then
        err "keys not strictly sorted at %d" i
    done;
    if m > 0 then begin
      if key_vs_bound n.keys.(0) n.low <= 0 then err "first key <= low";
      if key_vs_bound n.keys.(m - 1) n.high > 0 then err "last key > high"
    end;
    if bcompare n.low n.high >= 0 && not (is_deleted n) then err "low >= high";
    (match order with
    | Some k when not (is_deleted n) && not n.is_root ->
        if m > 2 * k then err "overflow: %d keys > 2k=%d" m (2 * k)
    | _ -> ());
    (match (n.link, n.high) with
    | None, b when not (is_deleted n) && Bound.is_key b ->
        err "nil link but finite high value"
    | Some _, Bound.Pos_inf -> err "rightmost node has a link"
    | _ -> ());
    List.rev !errs
end
