(** Binary page format: the durable encoding of a node ("each node
    corresponds to a page or block of secondary storage", §2.2). Used by
    snapshots and exercised by round-trip tests so the tree code would
    survive rebasing onto a real pager. Version 2 frames each node with
    its body length and an FNV-1a checksum so torn or stale pages are
    detected at decode time (see doc/RECOVERY.md). *)

val magic : int
val version : int

val version_varint : int
(** Version 3: same layout with the ptr array LEB128/zigzag-varint
    encoded. Written only for {!Node.vrec_level} (version-record) pages;
    [decode] accepts both versions, so v2 stores open read-compatibly. *)

val frame_bytes : int
(** Bytes of framing (magic, version, length, checksum) before the body. *)

exception Corrupt of string

module Make (K : Key.S) : sig
  val encode : Buffer.t -> K.t Node.t -> unit

  val decode : Bytes.t -> pos:int -> K.t Node.t * int
  (** Returns the node and the position after it.
      @raise Corrupt on bad magic/version/checksum/structure. *)

  val to_bytes : K.t Node.t -> Bytes.t
  val of_bytes : Bytes.t -> K.t Node.t

  val encoded_size : K.t Node.t -> int
  (** On-disk size in bytes (used for space-utilisation reporting). *)
end
