(** Append-only, checksummed, generation-stamped write-ahead log of
    physical page images over a {!Paged_file} — the redo log behind
    {!Paged_store}'s group-commit durability mode.

    One record per log page ({!log_page_size} sizes the device); each
    record carries an FNV-1a-32 whole-page checksum (the {!Page_codec}
    v2 framing idiom), a strictly increasing LSN and the store
    generation it applies on top of. A checkpoint {e logically
    truncates} the log by rewinding the cursor — old records are
    invalidated by their generation stamp, not erased — so the file
    never outgrows the busiest inter-checkpoint window. {!replay} scans
    from page 0, promotes staged page images at each COMMIT record
    (last writer wins), skips CHECKPOINT markers (a checkpoint that
    failed before its header flip leaves one mid-log with committed
    batches continuing after it), and stops cleanly at the first torn
    record, foreign-generation record or LSN discontinuity.

    Failpoint sites: [wal.append], [wal.commit], [wal.replay]. See
    doc/RECOVERY.md for the commit-point argument. *)

exception Corrupt of string
(** A structurally impossible record (bad kind, oversized body) {e after}
    its checksum validated — device damage outside the torn-tail model. *)

val header_bytes : int
(** Record header size; a log page is one data page plus this. *)

val log_page_size : data_page_size:int -> int
(** Page size the log's {!Paged_file} must be created with. *)

type record =
  | Page of { ptr : int; image : Bytes.t }
      (** Full physical image (exactly one data page) of tree pointer
          [ptr]. Staged until the next [Commit]. *)
  | Meta of Bytes.t
      (** Client metadata blob; committed atomically with its batch. *)
  | Commit
      (** Group-commit boundary: promotes everything staged since the
          previous commit. *)
  | Checkpoint
      (** Pass-boundary marker appended by the store checkpoint; replay
          skips it (never staged, never promoted). *)

type t

val create : data_page_size:int -> Paged_file.t -> t
(** A fresh log over [file] (cursor at page 0, LSN 0). The device's page
    size must equal [log_page_size ~data_page_size]. *)

val append : t -> gen:int -> record -> unit
(** Append one record stamped with store generation [gen] at the cursor.
    Volatile until {!fsync}. Thread-safe. Failpoint [wal.append]. *)

val fsync : t -> unit
(** The group-commit point: make every appended record durable.
    Failpoint [wal.commit]. *)

val truncate : t -> unit
(** Logical truncation after a checkpoint's header commit: rewind the
    cursor to page 0. LSNs keep rising across truncations. *)

val close : t -> unit

val appended : t -> int
(** Records appended over the log's life. *)

val fsyncs : t -> int
(** Log fsyncs issued (= group commits led through this log). *)

val cursor : t -> int
(** Current append position (log pages in the live pass). *)

(** {2 Recovery} *)

type replay = {
  committed : (int, Bytes.t) Hashtbl.t;
      (** tree ptr → newest group-committed page image *)
  committed_meta : Bytes.t option;
      (** newest metadata blob covered by a commit *)
  records : int;  (** valid records scanned in this pass *)
  batches : int;  (** COMMIT records applied *)
  next_pos : int;  (** where the valid tail ends — the resume cursor *)
  next_lsn : int;  (** LSN to continue appending with *)
}

val replay : data_page_size:int -> gen:int -> Paged_file.t -> replay
(** Read-only redo scan of generation [gen]'s pass (see module doc for
    the stop conditions). The caller installs [committed] into the data
    file {e before} its free-chain walk commits allocator state.
    Failpoint [wal.replay] fires once per record scanned. *)

val resume : data_page_size:int -> replay:replay -> Paged_file.t -> t
(** Reattach a log after {!replay}: cursor at [next_pos] (overwriting a
    torn record or a stale pass's leftovers), LSN at [next_lsn]. *)
