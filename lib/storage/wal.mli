(** Append-only, checksummed, generation- and incarnation-stamped
    write-ahead log of physical page images over a {!Paged_file} — the
    redo log behind {!Paged_store}'s group-commit durability mode, and
    the stream behind WAL-shipping replication.

    One record per log page ({!log_page_size} sizes the device); each
    record carries an FNV-1a-32 whole-page checksum (the {!Page_codec}
    v2 framing idiom), a strictly increasing LSN, the store generation
    it applies on top of, and the log's {e incarnation} — a counter
    bumped at every post-crash {!resume}, which is what makes the
    recovered tail unambiguous (the phantom-tail fix; see
    doc/RECOVERY.md). A checkpoint {e logically truncates} the log by
    rewinding the cursor — but first {!truncate} seals the pass's pages
    into a retained in-memory segment so the LSN-contiguous history
    stays fetchable for replication catch-up and point-in-time recovery;
    on the device, old records are invalidated by their generation
    stamp, not erased, so the file never outgrows the busiest
    inter-checkpoint window.

    {!replay} scans from page 0, promotes staged page images at each
    COMMIT record (last writer wins), skips CHECKPOINT markers (a
    checkpoint that failed before its header flip leaves one mid-log
    with committed batches continuing after it), and stops cleanly at
    the first torn record, foreign-generation record, LSN discontinuity
    or incarnation regression. Its scan-one-record step is exposed as
    {!Apply} for followers replaying a shipped stream incrementally.

    Shipping: {!fsync} advances a durable watermark; {!fetch_from}
    serves raw log pages at or below it (live pass or retained
    segments); {!wait_durable} long-polls the watermark so a subscriber
    receives each sealed batch right after the fsync that committed it.

    Failpoint sites: [wal.append], [wal.commit], [wal.replay]. See
    doc/RECOVERY.md for the commit-point argument. *)

exception Corrupt of string
(** A structurally impossible record (bad kind, oversized body) {e after}
    its checksum validated — device damage outside the torn-tail model. *)

val header_bytes : int
(** Record header size; a log page is one data page plus this. *)

val log_page_size : data_page_size:int -> int
(** Page size the log's {!Paged_file} must be created with. *)

val default_retain : int
(** Sealed segments kept by default (the PITR / catch-up window). *)

type record =
  | Page of { ptr : int; image : Bytes.t }
      (** Full physical image (exactly one data page) of tree pointer
          [ptr]. Staged until the next [Commit]. *)
  | Meta of Bytes.t
      (** Client metadata blob; committed atomically with its batch. *)
  | Commit
      (** Group-commit boundary: promotes everything staged since the
          previous commit. *)
  | Checkpoint
      (** Pass-boundary marker appended by the store checkpoint; replay
          skips it (never staged, never promoted). *)

type t

val create : ?retain:int -> data_page_size:int -> Paged_file.t -> t
(** A fresh log over [file] (cursor at page 0, LSN 0, incarnation 0).
    The device's page size must equal [log_page_size ~data_page_size].
    [retain] bounds the sealed-segment window ({!default_retain}). *)

val append : t -> gen:int -> record -> unit
(** Append one record stamped with store generation [gen] and the log's
    incarnation at the cursor. Volatile until {!fsync}. Thread-safe.
    Failpoint [wal.append]. *)

val fsync : t -> unit
(** The group-commit point: make every appended record durable and
    advance the shipping watermark over it. Failpoint [wal.commit]. *)

val truncate : t -> unit
(** Logical truncation after a checkpoint's header commit: seal the live
    pass into a retained segment, then rewind the cursor to page 0.
    LSNs keep rising across truncations. *)

val close : t -> unit

val appended : t -> int
(** Records appended over the log's life. Safe to read concurrently. *)

val fsyncs : t -> int
(** Log fsyncs issued (= group commits led through this log). Safe to
    read concurrently. *)

val cursor : t -> int
(** Current append position (log pages in the live pass). *)

val incarnation : t -> int
(** The incarnation stamped into appended records. Persisted in the
    store header at each checkpoint, giving recovery a floor. *)

val next_lsn : t -> int
(** The LSN the next appended record will carry. *)

(** {2 Shipping} *)

val durable_lsn : t -> int
(** Highest LSN covered by a log fsync or checkpoint seal (-1 before the
    first): the shipping horizon. Records at or below it are fetchable
    and will survive a primary crash. *)

val retained_lsn : t -> int
(** Oldest LSN still fetchable — the tail of the retention window.
    Fetching below it yields {!Stale}. *)

val segment_count : t -> int
(** Sealed segments currently retained. *)

type fetch =
  | Pages of { pages : Bytes.t list; next : int }
      (** Raw log pages for LSNs [lsn .. next-1], contiguous. *)
  | At_end  (** Nothing durable at or past [lsn] yet — poll again. *)
  | Stale
      (** [lsn] predates the retention window; the subscriber must
          re-seed from a full image. *)

val fetch_from : t -> lsn:int -> max_pages:int -> fetch
(** Up to [max_pages] raw log pages starting at [lsn], bounded by the
    durable watermark (never ships records a crash could revoke).
    Thread-safe. *)

val wait_durable : t -> lsn:int -> timeout:float -> bool
(** Long-poll until some record at or past [lsn] is durable; [false] on
    timeout. The subscriber side of streaming-after-fsync. *)

(** {2 The scan-one-record step} *)

(** Incremental redo scanner shared by {!replay} (local device) and
    replication followers (shipped stream): feed raw log pages in
    stream order; PAGE / META records stage, each COMMIT promotes the
    stage as one batch. Enforces the full acceptance policy — checksum,
    strict LSN continuity, non-decreasing generation and incarnation,
    optionally an exact expected generation (local replay pins the
    header's generation; a shipped stream instead crosses generation
    boundaries at checkpoints). *)
module Apply : sig
  type batch = {
    b_lsn : int;  (** LSN of the COMMIT that promoted the batch *)
    b_images : (int * Bytes.t) list;  (** tree ptr → page image, deduped *)
    b_meta : Bytes.t option;  (** metadata committed with the batch *)
  }

  type action =
    | Progress  (** staged or skipped; keep feeding *)
    | Batch of batch  (** a COMMIT promoted everything staged *)
    | Reject of string
        (** Not a valid continuation (torn record, LSN gap, regressed or
            foreign generation / incarnation). Scanner state unchanged;
            local replay treats this as the clean end of the log, a
            follower as a stream error. *)

  type t

  val create : ?expect_gen:int -> data_page_size:int -> unit -> t
  (** A scanner with empty stage. [expect_gen] pins every record to one
      generation (the local-replay policy). *)

  val step : t -> Bytes.t -> action
  (** Feed one raw log page.
      @raise Corrupt on a structurally impossible checksummed record. *)

  val next_lsn : t -> int
  (** LSN the next fed record must carry (0 before any). *)

  val horizon : t -> int
  (** LSN of the last promoted COMMIT; -1 before the first. The
      replica's consistent read horizon. *)

  val records : t -> int
  (** Valid records consumed. *)

  val batches : t -> int
  (** Batches promoted. *)
end

(** {2 Recovery} *)

type replay = {
  committed : (int, Bytes.t) Hashtbl.t;
      (** tree ptr → newest group-committed page image *)
  committed_meta : Bytes.t option;
      (** newest metadata blob covered by a commit *)
  records : int;  (** valid records scanned in this pass *)
  batches : int;  (** COMMIT records applied *)
  next_pos : int;  (** where the valid tail ends — the resume cursor *)
  next_lsn : int;  (** LSN to continue appending with *)
  next_inc : int;  (** incarnation the resumed log must append with *)
}

val replay : data_page_size:int -> gen:int -> Paged_file.t -> replay
(** Read-only redo scan of generation [gen]'s pass (see module doc for
    the stop conditions). The caller installs [committed] into the data
    file {e before} its free-chain walk commits allocator state.
    Failpoint [wal.replay] fires once per record scanned. *)

val resume : ?incarnation:int -> data_page_size:int -> replay:replay -> Paged_file.t -> t
(** Reattach a log after {!replay}: cursor at [next_pos] (overwriting a
    torn record or a stale pass's leftovers), LSN at [next_lsn], and —
    the phantom-tail fix — incarnation bumped past every one observed
    in the valid tail and past [incarnation] (the floor the store
    header persisted at its last checkpoint), so stale records beyond
    the tail can never chain onto the new pass. *)
