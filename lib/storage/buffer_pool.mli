(** Buffer pool over a {!Paged_file}: pin/unpin, dirty tracking, clock
    eviction. Single-owner (the disk-resident sequential tree); the
    concurrent trees use {!Store}. *)

type t

val create : frames:int -> Paged_file.t -> t
val file : t -> Paged_file.t

val pin : t -> int -> Bytes.t
(** Bring the disk page into a frame (evicting if needed) and pin it; the
    returned buffer is the frame itself — mutate it and {!unpin} with
    [~dirty:true] to schedule write-back.
    @raise Failure when every frame is pinned. *)

val unpin : t -> int -> dirty:bool -> unit

val read_page : t -> int -> Bytes.t
(** Copy a page's bytes out (pin, copy, unpin clean): lets a caller hold
    the pool's lock only for the copy and decode outside it. *)

val alloc : t -> int
(** Fresh zero-filled disk page, returned pinned. *)

val flush_writes : t -> unit
(** Write back every dirty frame {e without} syncing the file — for
    callers sequencing their own durability barrier (fault-injection
    point: [buffer_pool.flush_frame]). *)

val flush_all : t -> unit
(** Write back every dirty frame and sync the file. *)

type stats = { hits : int; misses : int; evictions : int; writebacks : int }

val stats : t -> stats
val hit_ratio : t -> float
