(** Durable concurrent page store: {!Page_store.S} over a {!Buffer_pool} /
    {!Paged_file} / {!Page_codec} stack, so the full Sagiv algorithm —
    1-lock insertions, lock-free searches, compaction, epoch reclamation —
    runs disk-resident and survives close + reopen.

    Layered like a real pager:

    - {b Node cache}: each page slot holds the decoded node behind an
      [Atomic.t] plus the page latch, exactly like {!Store} — so [get] on
      a cached page and every [lock]/[unlock] are lock-free/latch-only and
      the paper's indivisible get/put model is preserved. Slots live in
      fixed chunks that never move.
    - {b IO layer}: one mutex ([io]) serialises the single-owner buffer
      pool and the file. Only cache misses, write-back, eviction and
      [sync] take it; the concurrent fast paths never do.
    - {b Disk layout}: disk page 0 is the store header (magic, geometry,
      allocator state, free-list head, client metadata); tree pointer [p]
      lives on disk page [p + 1], encoded by {!Page_codec}. The free list
      is threaded through the free pages themselves (first 8 bytes = next
      pointer), so it survives reopen at zero space cost.

    Concurrency protocol (who may touch what):

    - A [put] to a {e reachable} page happens only under that page's latch
      (the tree's discipline); a put to a private page (fresh [reserve])
      races with nothing.
    - A cache miss faults under [io] and installs with compare-and-set;
      losing the race means a concurrent [put] installed a {e newer}
      version, which the reader adopts.
    - Eviction holds [io] and takes page latches with [try_lock] only —
      it never blocks on a latch (and so never deadlocks against writers,
      who may block on [io] while holding a latch); latched pages are
      simply skipped this sweep. A victim is withdrawn from the cache
      {e first} and only then written back, still under [io]: faulters
      serialise on [io], so no reader can observe the pre-write-back disk
      contents. The victim's dirty bit is exchanged to false before the
      withdrawal CAS and restored if the CAS fails — a concurrent [put]
      to a private (just-[reserve]d) page may have swapped in a newer
      node whose dirty bit must survive the sweep.
    - [release] runs under [io], so it can never interleave with a fault,
      an eviction write-back or [sync] on the same page; it clears the
      slot's [on_disk] flag, so a [get] on a recycled page raises
      [Freed_page] until the first [put] lands — the same contract as the
      in-memory {!Store}. *)

exception Corrupt of string

let magic = 0x53_47_56_44 (* "SGVD" *)
let version = 1
let header_fixed = 72 (* bytes of header before the metadata blob *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 14 (* 64 M pages *)

let default_cache_pages = 4096

module Make (K : Key.S) = struct
  module Codec = Page_codec.Make (K)

  type key = K.t

  type slot = {
    cached : K.t Node.t option Atomic.t;  (** decoded node, if resident *)
    latch : Mutex.t;  (** the page latch of the §2.2 model *)
    dirty : bool Atomic.t;  (** cached version newer than disk *)
    referenced : bool Atomic.t;  (** clock second-chance bit *)
    freed : bool Atomic.t;  (** released, awaiting reallocation *)
    on_disk : bool Atomic.t;  (** the page has ever been written to disk *)
  }

  type t = {
    chunks : slot array option Atomic.t array;
    next : int Atomic.t;  (** bump allocator frontier *)
    free_list : int list Atomic.t;
    freed : int Atomic.t;  (** total pages ever freed *)
    allocated : int Atomic.t;  (** total pages ever allocated *)
    meta : Bytes.t option Atomic.t;
    io : Mutex.t;  (** guards [pool], the file, [hand] and [zero] *)
    pool : Buffer_pool.t;
    cache_cap : int;  (** max resident decoded nodes *)
    resident : int Atomic.t;
    mutable hand : int;  (** node-cache clock hand (under [io]) *)
    page_size : int;
    zero : Bytes.t;  (** scratch page (under [io]) *)
  }

  let new_chunk () =
    Array.init chunk_size (fun _ ->
        {
          cached = Atomic.make None;
          latch = Mutex.create ();
          dirty = Atomic.make false;
          referenced = Atomic.make false;
          freed = Atomic.make false;
          on_disk = Atomic.make false;
        })

  let ensure_chunk t ci =
    if ci >= max_chunks then failwith "Paged_store: out of pages";
    match Atomic.get t.chunks.(ci) with
    | Some c -> c
    | None ->
        let fresh = new_chunk () in
        if Atomic.compare_and_set t.chunks.(ci) None (Some fresh) then fresh
        else (
          match Atomic.get t.chunks.(ci) with Some c -> c | None -> assert false)

  let slot t ptr =
    let ci = ptr lsr chunk_bits in
    match Atomic.get t.chunks.(ci) with
    | Some c -> c.(ptr land (chunk_size - 1))
    | None -> invalid_arg (Printf.sprintf "Paged_store: page %d not allocated" ptr)

  let slot_opt t ptr =
    match Atomic.get t.chunks.(ptr lsr chunk_bits) with
    | Some c -> Some c.(ptr land (chunk_size - 1))
    | None -> None

  let with_io t f =
    Mutex.lock t.io;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.io) f

  (* ---------- IO layer (all under [io]) ---------- *)

  let file t = Buffer_pool.file t.pool

  (* Append zero pages until disk page [dpage] exists, so the pool's
     write-back never violates Paged_file's no-hole rule. *)
  let ensure_materialized_locked t dpage =
    let f = file t in
    Bytes.fill t.zero 0 t.page_size '\000';
    while Paged_file.pages f <= dpage do
      ignore (Paged_file.append f t.zero)
    done

  let write_node_locked t ptr n =
    let dpage = ptr + 1 in
    ensure_materialized_locked t dpage;
    let frame = Buffer_pool.pin t.pool dpage in
    let b = Codec.to_bytes n in
    if Bytes.length b > t.page_size then
      failwith
        (Printf.sprintf "Paged_store: node needs %d bytes, page is %d"
           (Bytes.length b) t.page_size);
    Bytes.fill frame 0 t.page_size '\000';
    Bytes.blit b 0 frame 0 (Bytes.length b);
    Buffer_pool.unpin t.pool dpage ~dirty:true;
    Atomic.set (slot t ptr).on_disk true

  let read_node_locked t ptr =
    let dpage = ptr + 1 in
    let frame = Buffer_pool.pin t.pool dpage in
    let n =
      try Codec.of_bytes frame
      with Page_codec.Corrupt msg ->
        Buffer_pool.unpin t.pool dpage ~dirty:false;
        raise (Corrupt (Printf.sprintf "page %d: %s" ptr msg))
    in
    Buffer_pool.unpin t.pool dpage ~dirty:false;
    n

  (* Clock sweep over the node cache: write back and drop unreferenced,
     unlatched nodes until the resident count is back under the cap.
     Latches are only try_locked — see the protocol note above. *)
  let maybe_evict_locked t =
    let frontier = Atomic.get t.next in
    if Atomic.get t.resident > t.cache_cap && frontier > 0 then begin
      let budget = ref (2 * frontier) in
      while Atomic.get t.resident > t.cache_cap && !budget > 0 do
        decr budget;
        let p = t.hand in
        t.hand <- (t.hand + 1) mod frontier;
        match slot_opt t p with
        | None -> ()
        | Some s -> (
            if (not (Atomic.get s.freed)) && Atomic.get s.cached <> None then
              if Atomic.get s.referenced then Atomic.set s.referenced false
              else if Mutex.try_lock s.latch then begin
                (* Withdraw first, write back second: we hold [io], so a
                   faulter cannot read the disk page until the write-back
                   below has landed. The CAS is against the exact option
                   value read — physical equality distinguishes our
                   snapshot from any newer node a concurrent [put] to a
                   private page may install. The dirty bit is taken with
                   an exchange {e before} the CAS and handed back on CAS
                   failure, so a racing put's dirty marking is never
                   clobbered (a clean cached node would later be dropped
                   without write-back and its data silently lost). *)
                (match Atomic.get s.cached with
                | Some n as snapshot when not (Atomic.get s.freed) ->
                    let was_dirty = Atomic.exchange s.dirty false in
                    if Atomic.compare_and_set s.cached snapshot None then begin
                      Atomic.decr t.resident;
                      if was_dirty then write_node_locked t p n
                    end
                    else if was_dirty then Atomic.set s.dirty true
                | _ -> ());
                Mutex.unlock s.latch
              end)
      done
    end

  let check_evict t =
    if Atomic.get t.resident > t.cache_cap then
      with_io t (fun () -> maybe_evict_locked t)

  (* ---------- construction ---------- *)

  let make ~page_size ~cache_pages pfile =
    if cache_pages < 1 then invalid_arg "Paged_store: cache_pages must be >= 1";
    (* Frame count needs headroom over one page so eviction write-back and
       header IO never starve; the node cache, not the pool, is the
       capacity knob. *)
    let frames = max 8 (min cache_pages 1024) in
    {
      chunks = Array.init max_chunks (fun _ -> Atomic.make None);
      next = Atomic.make 0;
      free_list = Atomic.make [];
      freed = Atomic.make 0;
      allocated = Atomic.make 0;
      meta = Atomic.make None;
      io = Mutex.create ();
      pool = Buffer_pool.create ~frames pfile;
      cache_cap = cache_pages;
      resident = Atomic.make 0;
      hand = 0;
      page_size;
      zero = Bytes.create page_size;
    }

  let create_memory ?(page_size = Paged_file.default_page_size)
      ?(cache_pages = default_cache_pages) () =
    let t = make ~page_size ~cache_pages (Paged_file.create_memory ~page_size ()) in
    with_io t (fun () -> ensure_materialized_locked t 0);
    t

  let create_file ?(page_size = Paged_file.default_page_size)
      ?(cache_pages = default_cache_pages) path =
    let t = make ~page_size ~cache_pages (Paged_file.create_file ~page_size path) in
    with_io t (fun () -> ensure_materialized_locked t 0);
    t

  let create () = create_memory ()

  (* ---------- Page_store.S operations ---------- *)

  let pop_free t =
    let rec go () =
      match Atomic.get t.free_list with
      | [] -> None
      | p :: rest as old ->
          if Atomic.compare_and_set t.free_list old rest then Some p else go ()
    in
    go ()

  let push_free t p =
    let rec go () =
      let old = Atomic.get t.free_list in
      if not (Atomic.compare_and_set t.free_list old (p :: old)) then go ()
    in
    go ()

  let fresh_ptr t =
    let p = Atomic.fetch_and_add t.next 1 in
    ignore (ensure_chunk t (p lsr chunk_bits));
    p

  let install t s n =
    Atomic.set s.dirty true;
    Atomic.set s.referenced true;
    (match Atomic.exchange s.cached (Some n) with
    | Some _ -> ()
    | None -> Atomic.incr t.resident);
    check_evict t

  let alloc t node =
    Atomic.incr t.allocated;
    let p = match pop_free t with Some p -> p | None -> fresh_ptr t in
    let s = slot t p in
    Atomic.set s.freed false;
    install t s node;
    p

  let reserve t =
    Atomic.incr t.allocated;
    let p = match pop_free t with Some p -> p | None -> fresh_ptr t in
    Atomic.set (slot t p).freed false;
    p

  let put t ptr node = install t (slot t ptr) node

  (* Cache miss: fault the page in under [io]. The compare-and-set install
     can lose only to a concurrent [put], whose version is newer — adopt
     it. [release] also runs under [io], so the freed / on_disk checks
     here are authoritative: a release ordered after this fault finds the
     installed node and withdraws it itself, exactly as it would withdraw
     one installed by [put]. Returning the node to a caller whose
     reference outlived the release is the same stale-read the in-memory
     {!Store} permits; epoch reclamation makes it safe. *)
  let fault t ptr s =
    with_io t (fun () ->
        match Atomic.get s.cached with
        | Some n -> n
        | None ->
            if Atomic.get s.freed then raise (Page_store.Freed_page ptr);
            if not (Atomic.get s.on_disk) then
              raise (Page_store.Freed_page ptr);
            let n = read_node_locked t ptr in
            if Atomic.compare_and_set s.cached None (Some n) then begin
              Atomic.incr t.resident;
              Atomic.set s.referenced true;
              maybe_evict_locked t;
              n
            end
            else
              match Atomic.get s.cached with Some n' -> n' | None -> n)

  let get t ptr =
    let s = slot t ptr in
    match Atomic.get s.cached with
    | Some n ->
        Atomic.set s.referenced true;
        n
    | None -> if Atomic.get s.freed then raise (Page_store.Freed_page ptr) else fault t ptr s

  let lock t ptr = Mutex.lock (slot t ptr).latch
  let unlock t ptr = Mutex.unlock (slot t ptr).latch
  let try_lock t ptr = Mutex.try_lock (slot t ptr).latch

  (* Under [io]: a release must never interleave with an eviction
     write-back, a fault or [sync] touching the same page — otherwise the
     page can reach the free list (and be recycled by [reserve]/[put])
     while the evictor is still mid-write, and the evictor's bookkeeping
     would clobber the new tenant's. [on_disk] is cleared so a [get] on
     the recycled page raises [Freed_page] until its first [put], instead
     of resurrecting the pre-release contents from disk. *)
  let release t ptr =
    let s = slot t ptr in
    with_io t (fun () ->
        Atomic.set s.freed true;
        (match Atomic.exchange s.cached None with
        | Some _ -> Atomic.decr t.resident
        | None -> ());
        Atomic.set s.dirty false;
        Atomic.set s.on_disk false;
        Atomic.incr t.freed;
        push_free t ptr)

  let live_count t = Atomic.get t.allocated - Atomic.get t.freed
  let total_allocated t = Atomic.get t.allocated
  let total_freed t = Atomic.get t.freed

  (* Quiescent only (like {!Store.iter}): uncached pages are read from
     disk without being installed, so iteration does not thrash the
     cache. *)
  let iter t f =
    let frontier = Atomic.get t.next in
    for p = 0 to frontier - 1 do
      match slot_opt t p with
      | None -> ()
      | Some s ->
          if not (Atomic.get s.freed) then (
            match Atomic.get s.cached with
            | Some n -> f p n
            | None ->
                if Atomic.get s.on_disk then
                  f p (with_io t (fun () -> read_node_locked t p)))
    done

  let set_meta t bytes = Atomic.set t.meta (Some (Bytes.copy bytes))
  let get_meta t = Atomic.get t.meta

  (* ---------- durability ---------- *)

  let write_header_locked t =
    let free = Atomic.get t.free_list in
    let page = Bytes.make t.page_size '\000' in
    let seti off v = Bytes.set_int64_le page off (Int64.of_int v) in
    seti 0 magic;
    seti 8 version;
    seti 16 t.page_size;
    seti 24 (Atomic.get t.next);
    seti 32 (match free with [] -> -1 | p :: _ -> p);
    seti 40 (List.length free);
    seti 48 (Atomic.get t.allocated);
    seti 56 (Atomic.get t.freed);
    let meta = match Atomic.get t.meta with Some b -> b | None -> Bytes.empty in
    if Bytes.length meta > t.page_size - header_fixed then
      failwith "Paged_store: metadata blob does not fit in the header page";
    seti 64 (Bytes.length meta);
    Bytes.blit meta 0 page header_fixed (Bytes.length meta);
    Paged_file.write (file t) 0 page

  (* Thread the free list through the free pages themselves: the first 8
     bytes of a free page hold the next free pointer (-1 ends the chain).
     Written directly (not via the pool) after [flush_all], so the chain
     always wins over any stale pool frame for a freed page. *)
  let write_free_chain_locked t =
    let rec go = function
      | [] -> ()
      | p :: rest ->
          ensure_materialized_locked t (p + 1);
          Bytes.fill t.zero 0 t.page_size '\000';
          Bytes.set_int64_le t.zero 0
            (Int64.of_int (match rest with [] -> -1 | q :: _ -> q));
          Paged_file.write (file t) (p + 1) t.zero;
          go rest
    in
    go (Atomic.get t.free_list)

  (* Quiescent flush: dirty nodes through the pool, then the pool to the
     file, then free chain and header directly, then fsync — so the
     header (and through it the free list) never describes pages that
     have not landed. *)
  let sync t =
    with_io t (fun () ->
        let frontier = Atomic.get t.next in
        for p = 0 to frontier - 1 do
          match slot_opt t p with
          | None -> ()
          | Some s ->
              if (not (Atomic.get s.freed)) && Atomic.get s.dirty then (
                match Atomic.get s.cached with
                | Some n ->
                    (* Clear before writing: should a non-quiescent put
                       slip in, its dirty marking survives and the page
                       is merely written twice, never left stale-clean. *)
                    Atomic.set s.dirty false;
                    write_node_locked t p n
                | None -> ())
        done;
        Buffer_pool.flush_all t.pool;
        write_free_chain_locked t;
        write_header_locked t;
        Paged_file.sync (file t))

  let flush = sync

  let close t =
    sync t;
    Paged_file.close (file t)

  let open_file ?(cache_pages = default_cache_pages) path =
    let pfile = Paged_file.open_file ~writable:true path in
    if Paged_file.pages pfile = 0 then raise (Corrupt "empty file");
    let header = Paged_file.read pfile 0 in
    let geti off = Int64.to_int (Bytes.get_int64_le header off) in
    if geti 0 <> magic then raise (Corrupt "bad magic");
    if geti 8 <> version then
      raise (Corrupt (Printf.sprintf "version %d, expected %d" (geti 8) version));
    let page_size = geti 16 in
    if page_size <> Paged_file.page_size pfile then
      raise (Corrupt "header page size does not match the file's");
    let t = make ~page_size ~cache_pages pfile in
    Atomic.set t.next (geti 24);
    Atomic.set t.allocated (geti 48);
    Atomic.set t.freed (geti 56);
    let meta_len = geti 64 in
    if meta_len < 0 || meta_len > page_size - header_fixed then
      raise (Corrupt "bad metadata length");
    if meta_len > 0 then
      Atomic.set t.meta (Some (Bytes.sub header header_fixed meta_len));
    let frontier = Atomic.get t.next in
    for p = 0 to frontier - 1 do
      let chunk = ensure_chunk t (p lsr chunk_bits) in
      Atomic.set chunk.(p land (chunk_size - 1)).on_disk
        (p + 1 < Paged_file.pages pfile)
    done;
    (* Rebuild the free list by walking the on-disk chain. *)
    let free_count = geti 40 in
    let head = geti 32 in
    let rec walk acc seen cur =
      if cur = -1 then List.rev acc
      else if seen > free_count then raise (Corrupt "free-list chain cycle")
      else if cur < 0 || cur >= frontier then
        raise (Corrupt (Printf.sprintf "free-list pointer %d out of range" cur))
      else begin
        let s = slot t cur in
        Atomic.set s.freed true;
        (* Free pages hold chain links, not nodes: clearing [on_disk]
           keeps them unreadable after recycling, until their first
           [put] — the same contract a live store maintains. *)
        Atomic.set s.on_disk false;
        let page = Paged_file.read pfile (cur + 1) in
        walk (cur :: acc) (seen + 1) (Int64.to_int (Bytes.get_int64_le page 0))
      end
    in
    let free = walk [] 0 head in
    if List.length free <> free_count then
      raise (Corrupt "free-list chain shorter than the header count");
    Atomic.set t.free_list free;
    t

  (* ---------- introspection ---------- *)

  let pool_stats t = Buffer_pool.stats t.pool
  let cached_nodes t = Atomic.get t.resident
  let page_size t = t.page_size
end
