(** Durable concurrent page store: {!Page_store.S} over a {!Buffer_pool} /
    {!Paged_file} / {!Page_codec} stack, so the full Sagiv algorithm —
    1-lock insertions, lock-free searches, compaction, epoch reclamation —
    runs disk-resident and survives close + reopen.

    Layered like a real pager:

    - {b Node cache}: each page slot holds the decoded node behind an
      [Atomic.t] plus the page latch, exactly like {!Store} — so [get] on
      a cached page and every [lock]/[unlock] are lock-free/latch-only and
      the paper's indivisible get/put model is preserved. Slots live in
      fixed chunks that never move.
    - {b IO layer}: the pages are hashed across N {e stripes} (page [p]
      belongs to stripe [p land (N-1)]); each stripe has its own mutex,
      clock hand, resident counter and pending-write-back table, so
      faults, evictions and releases touching {e distinct} stripes
      proceed in parallel. One small [file_lock] serialises the
      single-owner {!Buffer_pool} / {!Paged_file} tail; it is held only
      for the byte copy of a read or write, never across decode/encode.
    - {b Background writer}: eviction does not write a dirty victim back
      inline when a writer domain is running — the victim moves into its
      stripe's pending table and its id onto a bounded write queue the
      writer drains in batches ({!Make.writer_loop}, typically run via
      [Driver.run_ops_with_aux] or {!Make.start_writer}). With no writer,
      or with the queue full, eviction falls back to the synchronous
      write. [sync] drains every pending table, so durability is
      unchanged.
    - {b Disk layout}: disk pages 0 and 1 are {e two header slots},
      ping-ponged by a generation counter (generation [g] commits to slot
      [g land 1]); each holds magic, geometry, allocator state, free-list
      head, client metadata, the generation and a whole-page FNV-1a
      checksum. Tree pointer [p] lives on disk page [p + 2], encoded by
      {!Page_codec} (which checksums every node body). The free list is
      threaded through the free pages themselves (a checksummed
      [chain_magic, generation, next] entry), so it survives reopen at
      zero space cost; the chain is rewritten on [sync] only when the
      free list changed since the last sync (a dirty flag set by every
      push/pop).
    - {b Crash-atomic sync}: [sync] writes data pages and the (possibly
      changed) free chain, stages the generation-[g+1] header into the
      {e alternate} slot, and only then issues the commit [fsync] — so
      under the crash model of {!Paged_file.create_shadow} (writes not
      covered by an fsync are lost) that single fsync atomically moves
      the durable state from generation [g] to [g+1]; a crash anywhere
      before it recovers exactly generation [g], whose header slot was
      never touched. A second write of the same slot plus a second fsync
      follow as defence in depth for real devices that may persist the
      header out of order within the first fsync; a header slot torn
      mid-write fails its checksum and reopen falls back to the other
      slot. See doc/RECOVERY.md for the full argument and the model's
      assumptions.

    Concurrency protocol (who may touch what):

    - A [put] to a {e reachable} page happens only under that page's latch
      (the tree's discipline); a put to a private page (fresh [reserve])
      races with nothing.
    - A cache miss faults under the page's {e stripe lock} and installs
      with compare-and-set; losing the race means a concurrent [put]
      installed a {e newer} version, which the reader adopts. The fault
      consults the stripe's pending table {e before} the disk, so a
      victim awaiting background write-back is re-adopted (and its queued
      write cancelled) rather than re-read stale from disk.
    - Eviction holds the stripe lock and takes page latches with
      [try_lock] only — it never blocks on a latch (and so never
      deadlocks against writers, who may block on a stripe lock while
      holding a latch); latched pages are simply skipped this sweep. A
      victim is withdrawn from the cache {e first} and only then written
      back (or parked in the pending table), still under the stripe lock:
      faulters for that page serialise on the same stripe, so no reader
      can observe the pre-write-back disk contents. The victim's dirty
      bit is exchanged to false before the withdrawal CAS and restored if
      the CAS fails — a concurrent [put] to a private (just-[reserve]d)
      page may have swapped in a newer node whose dirty bit must survive
      the sweep.
    - [release] runs under the stripe lock, so it can never interleave
      with a fault, an eviction write-back, the background writer or
      [sync] on the same page; it cancels any pending write-back and
      clears the slot's [on_disk] flag, so a [get] on a recycled page
      raises [Freed_page] until the first [put] lands — the same contract
      as the in-memory {!Store}.

    Lock order (acyclic; see doc/CONCURRENCY.md): latch -> stripe ->
    file, with the write-queue mutex a leaf taken under a stripe lock
    (enqueue) or with nothing held (writer pop). The background writer
    processes each entry under its page's stripe lock, revalidating
    against the pending table — a popped id whose entry was cancelled
    (re-fault, release, sync) is skipped. *)

exception Corrupt of string

exception
  Shard_mismatch of {
    expected_index : int;
    expected_count : int;
    found_index : int;
    found_count : int;
  }

let magic = 0x53_47_56_44 (* "SGVD" *)
let version = 4

(* Header-page layout (both slots): fixed fields, then the checksum, then
   the client metadata blob. The checksum is FNV-1a-32 over the whole
   page with its own field zeroed, so it covers the metadata too.
   Version 3 appended the shard identity (index at 88, count at 96)
   after the checksum field, pushing the metadata blob to 104; version 4
   appended the WAL incarnation at 104 (the phantom-tail floor: recovery
   resumes the log with an incarnation strictly above every one the
   crashed pass could have stamped, even when the pass left no valid
   records to observe it from), pushing the metadata blob to 112. *)
let header_cksum_off = 80
let header_shard_index_off = 88
let header_shard_count_off = 96
let header_wal_inc_off = 104
let header_fixed = 112 (* bytes of header before the metadata blob *)
let header_slots = 2 (* disk pages 0 and 1; tree ptr [p] -> disk page [p + 2] *)

(* Free-chain entry, written at a free page's disk offset: 8-byte magic,
   the generation that wrote it, the next free pointer (-1 ends the
   chain), and a checksum over those 24 bytes. *)
let chain_magic = 0x53_47_56_43 (* "SGVC" *)
let chain_cksum_off = 24

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 14 (* 64 M pages *)

let default_cache_pages = 4096
let default_stripes = 8
let default_queue_cap = 256

(* Group-commit knobs (WAL durability mode). [commit_batch] > 1 makes a
   leader linger up to [commit_interval] seconds for followers before
   sealing, so one log fsync absorbs several concurrent commit calls. *)
let default_commit_batch = 1
let default_commit_interval = 2e-3

(* Fault-injection sites (see doc/RECOVERY.md for the catalog). Shared by
   every [Make] instantiation — the registry is keyed by name. *)
let fp_fault = Failpoint.site "paged_store.fault"
let fp_evict = Failpoint.site "paged_store.evict"
let fp_writer = Failpoint.site "paged_store.writer"
let fp_sync_data = Failpoint.site "paged_store.sync.data"
let fp_sync_chain = Failpoint.site "paged_store.sync.chain"
let fp_sync_header = Failpoint.site "paged_store.sync.header"
let fp_sync_commit = Failpoint.site "paged_store.sync.commit"

(* Lock-free monotonic max on an atomic gauge. *)
let rec update_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then update_max a v

module Make (K : Key.S) = struct
  module Codec = Page_codec.Make (K)

  type key = K.t

  (** One cached version of a page. The dirty flag lives {e in the entry},
      not the slot: it describes exactly this version's relation to the
      disk, so an evictor that wins the withdrawal CAS on an entry owns
      that entry's flag outright. A slot-level dirty bit has an unfixable
      steal race: the evictor's exchange can land between a concurrent
      [put] setting the bit and swapping its node in, silently
      declassifying the {e newer} version to clean — which a later sweep
      then drops without write-back. *)
  type entry = {
    node : K.t Node.t;
    e_dirty : bool Atomic.t;  (** this version newer than disk *)
  }

  type slot = {
    cached : entry option Atomic.t;  (** decoded node, if resident *)
    latch : Mutex.t;  (** the page latch of the §2.2 model *)
    referenced : bool Atomic.t;  (** clock second-chance bit *)
    freed : bool Atomic.t;  (** released, awaiting reallocation *)
    on_disk : bool Atomic.t;  (** the page has ever been written to disk *)
  }

  (** Group-commit state of a store in WAL durability mode. Batches are
      numbered: [sealed] counts batches whose dirty-page set has been
      taken by a leader, [durable] those whose log fsync returned. A
      commit request targets batch [sealed + 1] — the next one to seal,
      which by construction covers every page the caller dirtied — and
      returns once [durable] reaches it; whoever finds no leader running
      becomes the leader (leader/follower handoff). *)
  type wal_state = {
    log : Wal.t;
    w_mu : Mutex.t;  (** guards every mutable field below *)
    w_cond : Condition.t;  (** broadcast when a batch becomes durable (or a leader fails) *)
    mutable w_dirty : (int, unit) Hashtbl.t;  (** pages changed since the last seal *)
    mutable w_meta_dirty : bool;  (** metadata changed since the last seal *)
    mutable sealed : int;
    mutable durable : int;
    mutable leader : bool;  (** a leader is currently flushing a batch *)
    unsealed_reqs : int Atomic.t;
        (** commit requests awaiting the next seal. Written under [w_mu];
            atomic so the leader's gather window can poll it without
            re-acquiring the mutex (stdlib [Condition] has no timed wait). *)
    commit_interval : float;  (** max gather time when [commit_batch] > 1 *)
    commit_batch : int;  (** requests that trigger an immediate seal *)
    mutable commit_reqs : int;
    mutable commit_groups : int;
    mutable max_group : int;
  }

  type stripe = {
    s_lock : Mutex.t;  (** serialises fault/evict/release/write-back for this stripe's pages *)
    pending : (int, K.t Node.t) Hashtbl.t;
        (** dirty victims withdrawn from the cache, awaiting background
            write-back; consulted by faults before the disk (under [s_lock]) *)
    resident : int Atomic.t;  (** cached nodes in this stripe *)
    mutable hand : int;  (** clock position within this stripe's page sequence *)
    mutable faults : int;  (** disk reads (under [s_lock]) *)
    mutable stall_s : float;  (** time faulters waited for [s_lock] *)
    mutable inline_wb : int;  (** synchronous eviction write-backs *)
    mutable queued_wb : int;  (** write-backs handed to the writer *)
  }

  type t = {
    shard : int * int;
        (** (index, count) partition identity, recorded in every header
            this store writes and validated on reopen — (0, 1) for an
            unsharded store *)
    chunks : slot array option Atomic.t array;
    next : int Atomic.t;  (** bump allocator frontier *)
    free_list : int list Atomic.t;
    free_len : int Atomic.t;  (** length of [free_list] (header bookkeeping) *)
    free_dirty : bool Atomic.t;  (** free list changed since last chain write *)
    generation : int Atomic.t;  (** last generation committed by [sync] *)
    freed : int Atomic.t;  (** total pages ever freed *)
    allocated : int Atomic.t;  (** total pages ever allocated *)
    meta : Bytes.t option Atomic.t;
    stripes : stripe array;  (** length is a power of two *)
    stripe_mask : int;
    stripe_cap : int;  (** max resident decoded nodes per stripe *)
    sync_mu : Mutex.t;
        (** serialises [commit]'s sync-degradation path (WAL-less stores) *)
    file_lock : Mutex.t;  (** guards [pool], the file and [zero] *)
    pool : Buffer_pool.t;
    page_size : int;
    zero : Bytes.t;  (** scratch page (under [file_lock]) *)
    (* background-writer queue *)
    mutable wal : wal_state option;
        (** durability mode: [Some] = WAL group commit; set once during
            construction, before the store is shared *)
    wq : int Queue.t;  (** page ids with a pending-table entry (under [wq_lock]) *)
    wq_lock : Mutex.t;
    wq_cap : int;
    wq_depth : int Atomic.t;
    writers : int Atomic.t;  (** running writer loops; 0 = synchronous fallback *)
    mutable writer : (unit Domain.t * bool Atomic.t) option;  (** under [wq_lock] *)
    (* gauges *)
    faulting : int Atomic.t;  (** faults currently reading from storage *)
    max_faulting : int Atomic.t;
    max_wq_depth : int Atomic.t;
    writer_batches : int Atomic.t;
    writer_errors : int Atomic.t;  (** failed background write-backs left pending *)
    max_batch : int Atomic.t;
  }

  let new_chunk () =
    Array.init chunk_size (fun _ ->
        {
          cached = Atomic.make None;
          latch = Mutex.create ();
          referenced = Atomic.make false;
          freed = Atomic.make false;
          on_disk = Atomic.make false;
        })

  let ensure_chunk t ci =
    if ci >= max_chunks then failwith "Paged_store: out of pages";
    match Atomic.get t.chunks.(ci) with
    | Some c -> c
    | None ->
        let fresh = new_chunk () in
        if Atomic.compare_and_set t.chunks.(ci) None (Some fresh) then fresh
        else (
          match Atomic.get t.chunks.(ci) with Some c -> c | None -> assert false)

  let slot t ptr =
    let ci = ptr lsr chunk_bits in
    match Atomic.get t.chunks.(ci) with
    | Some c -> c.(ptr land (chunk_size - 1))
    | None -> invalid_arg (Printf.sprintf "Paged_store: page %d not allocated" ptr)

  let slot_opt t ptr =
    match Atomic.get t.chunks.(ptr lsr chunk_bits) with
    | Some c -> Some c.(ptr land (chunk_size - 1))
    | None -> None

  let stripe_index t ptr = ptr land t.stripe_mask

  let with_stripe (st : stripe) f =
    Mutex.lock st.s_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock st.s_lock) f

  let with_file t f =
    Mutex.lock t.file_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.file_lock) f

  (* ---------- IO layer ---------- *)

  let file t = Buffer_pool.file t.pool

  (* Append zero pages until disk page [dpage] exists, so the pool's
     write-back never violates Paged_file's no-hole rule. Under
     [file_lock]. *)
  let ensure_materialized_flocked t dpage =
    let f = file t in
    Bytes.fill t.zero 0 t.page_size '\000';
    while Paged_file.pages f <= dpage do
      ignore (Paged_file.append f t.zero)
    done

  (* Write node [n] to [ptr]'s disk page. Caller holds [ptr]'s stripe
     lock (or is single-threaded construction); encoding happens outside
     [file_lock] so concurrent write-backs on other stripes only
     serialise for the byte copy. *)
  let write_node_striped t ptr n =
    let b = Codec.to_bytes n in
    if Bytes.length b > t.page_size then
      failwith
        (Printf.sprintf "Paged_store: node needs %d bytes, page is %d"
           (Bytes.length b) t.page_size);
    let dpage = ptr + header_slots in
    with_file t (fun () ->
        ensure_materialized_flocked t dpage;
        let frame = Buffer_pool.pin t.pool dpage in
        Bytes.fill frame 0 t.page_size '\000';
        Bytes.blit b 0 frame 0 (Bytes.length b);
        Buffer_pool.unpin t.pool dpage ~dirty:true);
    Atomic.set (slot t ptr).on_disk true

  (* Read and decode [ptr]'s disk page. Caller holds [ptr]'s stripe lock;
     the byte copy happens under [file_lock], the decode outside it. *)
  let read_node_striped t ptr =
    let dpage = ptr + header_slots in
    let bytes = with_file t (fun () -> Buffer_pool.read_page t.pool dpage) in
    try Codec.of_bytes bytes
    with Page_codec.Corrupt msg ->
      raise (Corrupt (Printf.sprintf "page %d: %s" ptr msg))

  (* ---------- header slots and the free chain ---------- *)

  (* Build the header page for generation [gen]: fixed fields, a
     whole-page checksum (computed with its own field zeroed), then the
     metadata blob. *)
  let encode_header t ~gen =
    let free = Atomic.get t.free_list in
    let page = Bytes.make t.page_size '\000' in
    let seti off v = Bytes.set_int64_le page off (Int64.of_int v) in
    seti 0 magic;
    seti 8 version;
    seti 16 t.page_size;
    seti 24 (Atomic.get t.next);
    seti 32 (match free with [] -> -1 | p :: _ -> p);
    seti 40 (Atomic.get t.free_len);
    seti 48 (Atomic.get t.allocated);
    seti 56 (Atomic.get t.freed);
    seti 64 gen;
    let shard_index, shard_count = t.shard in
    seti header_shard_index_off shard_index;
    seti header_shard_count_off shard_count;
    (* Persist the WAL incarnation so a recovery whose pass left no
       valid records (checkpoint, then crash before any append survives)
       still resumes above the crashed pass's stamp. *)
    seti header_wal_inc_off
      (match t.wal with Some w -> Wal.incarnation w.log | None -> 0);
    let meta = match Atomic.get t.meta with Some b -> b | None -> Bytes.empty in
    if Bytes.length meta > t.page_size - header_fixed then
      failwith "Paged_store: metadata blob does not fit in the header page";
    seti 72 (Bytes.length meta);
    Bytes.blit meta 0 page header_fixed (Bytes.length meta);
    Bytes.set_int32_le page header_cksum_off
      (Int32.of_int (Repro_util.Checksum.fnv32 page ~pos:0 ~len:t.page_size));
    page

  (* Write generation [gen]'s header into its slot ([gen land 1]): the
     {e other} slot — the one holding the last committed generation — is
     never touched, so a crash or tear here cannot lose the old state. *)
  let write_header_flocked t ~gen =
    Paged_file.write (file t) (gen land 1) (encode_header t ~gen)

  (* Validate one header slot; [Some (gen, page)] if it parses clean. *)
  let read_header_slot pfile ~page_size slot =
    if slot >= Paged_file.pages pfile then None
    else
      let page = Paged_file.read pfile slot in
      let geti off = Int64.to_int (Bytes.get_int64_le page off) in
      let stored = Int32.to_int (Bytes.get_int32_le page header_cksum_off) land 0xFFFFFFFF in
      Bytes.set_int32_le page header_cksum_off 0l;
      let computed = Repro_util.Checksum.fnv32 page ~pos:0 ~len:page_size in
      Bytes.set_int32_le page header_cksum_off (Int32.of_int stored);
      if
        geti 0 = magic && geti 8 = version && geti 16 = page_size
        && stored = computed
      then Some (geti 64, page)
      else None

  (* Thread the free list through the free pages themselves: each free
     page holds a checksummed [chain_magic, generation, next] entry (-1
     ends the chain). Written directly (not via the pool) after the data
     flush, so the chain always wins over any stale pool frame for a
     freed page. Called only when the free list changed since the last
     sync ([free_dirty]) — rewriting the whole chain on every sync made
     reopen-heavy workloads O(free list) per sync for nothing. *)
  let write_free_chain_flocked t ~gen =
    let rec go = function
      | [] -> ()
      | p :: rest ->
          ensure_materialized_flocked t (p + header_slots);
          Bytes.fill t.zero 0 t.page_size '\000';
          let seti off v = Bytes.set_int64_le t.zero off (Int64.of_int v) in
          seti 0 chain_magic;
          seti 8 gen;
          seti 16 (match rest with [] -> -1 | q :: _ -> q);
          Bytes.set_int32_le t.zero chain_cksum_off
            (Int32.of_int (Repro_util.Checksum.fnv32 t.zero ~pos:0 ~len:chain_cksum_off));
          Paged_file.write (file t) (p + header_slots) t.zero;
          go rest
    in
    go (Atomic.get t.free_list)

  (* Decode a free-chain entry; [Some next] if it parses clean. *)
  let read_chain_entry pfile dpage =
    if dpage < 0 || dpage >= Paged_file.pages pfile then None
    else
      let page = Paged_file.read pfile dpage in
      let stored = Int32.to_int (Bytes.get_int32_le page chain_cksum_off) land 0xFFFFFFFF in
      if
        Int64.to_int (Bytes.get_int64_le page 0) = chain_magic
        && stored = Repro_util.Checksum.fnv32 page ~pos:0 ~len:chain_cksum_off
      then Some (Int64.to_int (Bytes.get_int64_le page 16))
      else None

  (* ---------- write-back: queue to the writer or do it inline ---------- *)

  (* Hand a withdrawn dirty victim to the background writer, or write it
     back synchronously when no writer runs / the queue is full. Caller
     holds [si]'s stripe lock; the victim is already out of the cache, so
     parking it in [pending] keeps it reachable for faulters (who check
     [pending] before the disk, under the same stripe lock). *)
  let write_back_victim t (st : stripe) p n =
    if Atomic.get t.writers > 0 && Atomic.get t.wq_depth < t.wq_cap then begin
      Hashtbl.replace st.pending p n;
      Mutex.lock t.wq_lock;
      Queue.push p t.wq;
      Mutex.unlock t.wq_lock;
      let d = 1 + Atomic.fetch_and_add t.wq_depth 1 in
      update_max t.max_wq_depth d;
      st.queued_wb <- st.queued_wb + 1
    end
    else begin
      (* Cancel any queued write of an {e older} version of this page
         before the inline write lands: the sequence evict(queued) ->
         put -> evict(inline, queue full) would otherwise leave the
         stale entry for the writer to pop after us, clobbering the
         newer bytes on disk. The victim in hand is always newest — it
         was just withdrawn from the cache. *)
      Hashtbl.remove st.pending p;
      (* The failpoint sits inside the recovery scope on purpose: an
         injected eviction error must leave the store in the same state a
         real one would — victim parked, never dropped. *)
      (try
         Failpoint.hit fp_evict;
         write_node_striped t p n
       with e ->
         (* The victim is already out of the cache: losing it here would
            silently drop a committed update. Park it in the pending
            table — faulters re-adopt it and [sync] retries the write —
            then let the error surface. *)
         Hashtbl.replace st.pending p n;
         raise e);
      st.inline_wb <- st.inline_wb + 1
    end

  (* How many page ids below [frontier] hash to stripe [si]. *)
  let stripe_page_count t si frontier =
    if frontier <= si then 0
    else 1 + ((frontier - 1 - si) / Array.length t.stripes)

  (* Clock sweep over this stripe's slice of the node cache: write back
     (or queue) and drop unreferenced, unlatched nodes until the stripe's
     resident count is back under its cap. Latches are only try_locked —
     see the protocol note above. Caller holds [si]'s stripe lock. *)
  let maybe_evict_stripe t si (st : stripe) =
    let nstripes = Array.length t.stripes in
    let frontier = Atomic.get t.next in
    let count = stripe_page_count t si frontier in
    if count > 0 then begin
      let budget = ref (2 * count) in
      while Atomic.get st.resident > t.stripe_cap && !budget > 0 do
        decr budget;
        if st.hand >= count then st.hand <- 0;
        let p = si + (st.hand * nstripes) in
        st.hand <- st.hand + 1;
        match slot_opt t p with
        | None -> ()
        | Some s -> (
            if (not (Atomic.get s.freed)) && Atomic.get s.cached <> None then
              if Atomic.get s.referenced then Atomic.set s.referenced false
              else if Mutex.try_lock s.latch then
                (* [Fun.protect], not a bare unlock: the write-back below
                   can raise (a real IO error, an injected fault) and a
                   latch leaked here would wedge the tree forever. *)
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock s.latch)
                  (fun () ->
                    (* Withdraw first, write back second: we hold the stripe
                       lock, so a faulter for this page cannot read the disk
                       until the write-back (or pending-table entry) below has
                       landed. The CAS is against the exact option value read —
                       physical equality distinguishes our snapshot from any
                       newer entry a concurrent [put] to a private page may
                       install. Winning the CAS makes the entry (and its dirty
                       flag) exclusively ours; losing it means a newer entry
                       took the slot, and we touched nothing of it. *)
                    match Atomic.get s.cached with
                    | Some e as snapshot when not (Atomic.get s.freed) ->
                        if Atomic.compare_and_set s.cached snapshot None then begin
                          Atomic.decr st.resident;
                          if Atomic.get e.e_dirty then write_back_victim t st p e.node
                        end
                    | _ -> ()))
      done
    end

  let check_evict t si (st : stripe) =
    if Atomic.get st.resident > t.stripe_cap then
      with_stripe st (fun () -> maybe_evict_stripe t si st)

  (* ---------- construction ---------- *)

  let make ~shard ~page_size ~cache_pages ~stripes pfile =
    (let idx, count = shard in
     if count < 1 || idx < 0 || idx >= count then
       invalid_arg "Paged_store: shard index out of range");
    if cache_pages < 1 then invalid_arg "Paged_store: cache_pages must be >= 1";
    (* Stripe count: a power of two, never more than the cache pages (so
       every stripe caches at least one node). *)
    let nstripes =
      let want = max 1 (min (min stripes cache_pages) 1024) in
      let rec pow2 n = if 2 * n <= want then pow2 (2 * n) else n in
      pow2 1
    in
    (* Frame count needs headroom over one page so eviction write-back and
       header IO never starve; the node cache, not the pool, is the
       capacity knob. *)
    let frames = max 8 (min cache_pages 1024) in
    {
      shard;
      chunks = Array.init max_chunks (fun _ -> Atomic.make None);
      next = Atomic.make 0;
      free_list = Atomic.make [];
      free_len = Atomic.make 0;
      free_dirty = Atomic.make false;
      generation = Atomic.make 0;
      freed = Atomic.make 0;
      allocated = Atomic.make 0;
      meta = Atomic.make None;
      stripes =
        Array.init nstripes (fun _ ->
            {
              s_lock = Mutex.create ();
              pending = Hashtbl.create 16;
              resident = Atomic.make 0;
              hand = 0;
              faults = 0;
              stall_s = 0.0;
              inline_wb = 0;
              queued_wb = 0;
            });
      stripe_mask = nstripes - 1;
      stripe_cap = max 1 (cache_pages / nstripes);
      sync_mu = Mutex.create ();
      file_lock = Mutex.create ();
      pool = Buffer_pool.create ~frames pfile;
      page_size;
      zero = Bytes.create page_size;
      wal = None;
      wq = Queue.create ();
      wq_lock = Mutex.create ();
      wq_cap = default_queue_cap;
      wq_depth = Atomic.make 0;
      writers = Atomic.make 0;
      writer = None;
      faulting = Atomic.make 0;
      max_faulting = Atomic.make 0;
      max_wq_depth = Atomic.make 0;
      writer_batches = Atomic.make 0;
      writer_errors = Atomic.make 0;
      max_batch = Atomic.make 0;
    }

  let mk_wal_state ?(commit_interval = default_commit_interval)
      ?(commit_batch = default_commit_batch) log =
    {
      log;
      w_mu = Mutex.create ();
      w_cond = Condition.create ();
      w_dirty = Hashtbl.create 64;
      w_meta_dirty = false;
      sealed = 0;
      durable = 0;
      leader = false;
      unsealed_reqs = Atomic.make 0;
      commit_interval;
      commit_batch = max 1 commit_batch;
      commit_reqs = 0;
      commit_groups = 0;
      max_group = 0;
    }

  (* Build a fresh store over an already-created (empty) paged file —
     the crash harness hands a shadow file in here. Both header slots
     are materialized and generation 0's header written into slot 0, so
     the file is reopenable from its first sync on. Passing [wal] (an
     empty paged file sized [Wal.log_page_size]) turns on WAL durability
     mode: [commit] group-commits through it instead of degrading to
     [sync]. *)
  let create_on ?(shard = (0, 1)) ?(cache_pages = default_cache_pages)
      ?(stripes = default_stripes) ?commit_interval ?commit_batch ?wal pfile =
    let page_size = Paged_file.page_size pfile in
    let t = make ~shard ~page_size ~cache_pages ~stripes pfile in
    (match wal with
    | Some log_file ->
        t.wal <-
          Some
            (mk_wal_state ?commit_interval ?commit_batch
               (Wal.create ~data_page_size:page_size log_file))
    | None -> ());
    with_file t (fun () ->
        ensure_materialized_flocked t (header_slots - 1);
        write_header_flocked t ~gen:0);
    t

  let create_memory ?shard ?(page_size = Paged_file.default_page_size)
      ?(cache_pages = default_cache_pages) ?(stripes = default_stripes)
      ?commit_interval ?commit_batch ?(wal = false) () =
    let log =
      if wal then
        Some
          (Paged_file.create_memory
             ~page_size:(Wal.log_page_size ~data_page_size:page_size)
             ())
      else None
    in
    create_on ?shard ~cache_pages ~stripes ?commit_interval ?commit_batch
      ?wal:log
      (Paged_file.create_memory ~page_size ())

  let create_file ?shard ?(page_size = Paged_file.default_page_size)
      ?(cache_pages = default_cache_pages) ?(stripes = default_stripes)
      ?commit_interval ?commit_batch ?wal_path path =
    let log =
      Option.map
        (fun p ->
          Paged_file.create_file
            ~page_size:(Wal.log_page_size ~data_page_size:page_size)
            p)
        wal_path
    in
    create_on ?shard ~cache_pages ~stripes ?commit_interval ?commit_batch
      ?wal:log
      (Paged_file.create_file ~page_size path)

  let create () = create_memory ()

  (* ---------- Page_store.S operations ---------- *)

  let pop_free t =
    let rec go () =
      match Atomic.get t.free_list with
      | [] -> None
      | p :: rest as old ->
          if Atomic.compare_and_set t.free_list old rest then begin
            Atomic.decr t.free_len;
            Atomic.set t.free_dirty true;
            Some p
          end
          else go ()
    in
    go ()

  let push_free t p =
    let rec go () =
      let old = Atomic.get t.free_list in
      if not (Atomic.compare_and_set t.free_list old (p :: old)) then go ()
    in
    go ();
    Atomic.incr t.free_len;
    Atomic.set t.free_dirty true

  let fresh_ptr t =
    let p = Atomic.fetch_and_add t.next 1 in
    ignore (ensure_chunk t (p lsr chunk_bits));
    p

  (* WAL mode: record that [ptr] changed since the last sealed commit
     batch, so the next group commit logs its image. Orthogonal to the
     entry-level [e_dirty] flag, which tracks newer-than-the-data-file
     and keeps driving advisory write-back and checkpoints. *)
  let note_dirty t ptr =
    match t.wal with
    | None -> ()
    | Some w ->
        Mutex.lock w.w_mu;
        Hashtbl.replace w.w_dirty ptr ();
        Mutex.unlock w.w_mu

  let install t ptr s n =
    (* Only dirty the cache line when the bit is actually clear: every
       cache hit setting [referenced] unconditionally turns the hot-path
       read into a cross-domain store on shared lines (the root's slot is
       touched by literally every operation). *)
    if not (Atomic.get s.referenced) then Atomic.set s.referenced true;
    let si = stripe_index t ptr in
    let st = t.stripes.(si) in
    (match Atomic.exchange s.cached (Some { node = n; e_dirty = Atomic.make true })
     with
    | Some _ -> ()
    | None -> Atomic.incr st.resident);
    (* Publish first, note after. The order is load-bearing for group
       commit: a leader that seals the dirty set between a note and its
       publish would snapshot the {e stale} image (or nothing at all for
       a fresh page) while the swap removed [ptr] from the live set —
       the caller's own commit then targets a batch that no longer
       covers [ptr], acking durability the log does not hold. With the
       note last, any seal that consumed an {e earlier} note of [ptr]
       already sees the new image (the exchange above precedes it), and
       this note lands in the live set before the caller can request a
       commit, so the next-sealed batch covers it. [alloc] sets
       [freed <- false] before calling here for the same reason. *)
    note_dirty t ptr;
    check_evict t si st

  let alloc t node =
    Atomic.incr t.allocated;
    let p = match pop_free t with Some p -> p | None -> fresh_ptr t in
    let s = slot t p in
    Atomic.set s.freed false;
    install t p s node;
    p

  let reserve t =
    Atomic.incr t.allocated;
    let p = match pop_free t with Some p -> p | None -> fresh_ptr t in
    Atomic.set (slot t p).freed false;
    p

  let put t ptr node = install t ptr (slot t ptr) node

  (* Cache miss: fault the page in under its stripe lock. The
     compare-and-set install can lose only to a concurrent [put], whose
     version is newer — adopt it. [release] also runs under the stripe
     lock, so the freed / on_disk checks here are authoritative: a
     release ordered after this fault finds the installed node and
     withdraws it itself, exactly as it would withdraw one installed by
     [put]. Returning the node to a caller whose reference outlived the
     release is the same stale-read the in-memory {!Store} permits; epoch
     reclamation makes it safe. *)
  let fault t ptr s =
    let si = stripe_index t ptr in
    let st = t.stripes.(si) in
    let t0 = Unix.gettimeofday () in
    Mutex.lock st.s_lock;
    st.stall_s <- st.stall_s +. (Unix.gettimeofday () -. t0);
    Fun.protect
      ~finally:(fun () -> Mutex.unlock st.s_lock)
      (fun () ->
        match Atomic.get s.cached with
        | Some e -> e.node
        | None -> (
            if Atomic.get s.freed then raise (Page_store.Freed_page ptr);
            match Hashtbl.find_opt st.pending ptr with
            | Some n ->
                (* An evicted victim the writer has not drained yet: adopt
                   it and cancel the queued write (the re-installed entry
                   is dirty and will be re-written on its next eviction or
                   on [sync]; the writer skips ids with no pending entry). *)
                Hashtbl.remove st.pending ptr;
                Atomic.set s.referenced true;
                let e = { node = n; e_dirty = Atomic.make true } in
                if Atomic.compare_and_set s.cached None (Some e) then begin
                  Atomic.incr st.resident;
                  n
                end
                else (
                  match Atomic.get s.cached with
                  | Some e' -> e'.node
                  | None -> n)
            | None ->
                if not (Atomic.get s.on_disk) then
                  raise (Page_store.Freed_page ptr);
                Failpoint.hit fp_fault;
                st.faults <- st.faults + 1;
                let c = 1 + Atomic.fetch_and_add t.faulting 1 in
                update_max t.max_faulting c;
                let n =
                  Fun.protect
                    ~finally:(fun () -> Atomic.decr t.faulting)
                    (fun () -> read_node_striped t ptr)
                in
                Atomic.set s.referenced true;
                (* Fresh from disk: the entry is born clean. *)
                let e = { node = n; e_dirty = Atomic.make false } in
                if Atomic.compare_and_set s.cached None (Some e) then begin
                  Atomic.incr st.resident;
                  maybe_evict_stripe t si st;
                  n
                end
                else (
                  match Atomic.get s.cached with
                  | Some e' -> e'.node
                  | None -> n)))

  let get t ptr =
    let s = slot t ptr in
    match Atomic.get s.cached with
    | Some e ->
        (* Second-chance bit: write only on transition. An unconditional
           [Atomic.set] here is a cross-domain cache-line ping on every
           hit — the root's slot alone would be dirtied by every single
           operation in the system. *)
        if not (Atomic.get s.referenced) then Atomic.set s.referenced true;
        e.node
    | None ->
        if Atomic.get s.freed then raise (Page_store.Freed_page ptr)
        else fault t ptr s

  let lock t ptr = Mutex.lock (slot t ptr).latch
  let unlock t ptr = Mutex.unlock (slot t ptr).latch
  let try_lock t ptr = Mutex.try_lock (slot t ptr).latch

  (* Under the stripe lock: a release must never interleave with an
     eviction write-back, a fault, the background writer or [sync]
     touching the same page — otherwise the page can reach the free list
     (and be recycled by [reserve]/[put]) while an evictor is still
     mid-write, and the evictor's bookkeeping would clobber the new
     tenant's. Any pending background write-back is cancelled here — a
     stale write landing after the page is recycled would clobber the new
     tenant's disk contents. [on_disk] is cleared so a [get] on the
     recycled page raises [Freed_page] until its first [put], instead of
     resurrecting the pre-release contents from disk. *)
  let release t ptr =
    let s = slot t ptr in
    let st = t.stripes.(stripe_index t ptr) in
    with_stripe st (fun () ->
        Atomic.set s.freed true;
        Hashtbl.remove st.pending ptr;
        (match Atomic.exchange s.cached None with
        | Some _ -> Atomic.decr st.resident
        | None -> ());
        Atomic.set s.on_disk false;
        Atomic.incr t.freed;
        push_free t ptr)

  let live_count t = Atomic.get t.allocated - Atomic.get t.freed
  let total_allocated t = Atomic.get t.allocated
  let total_freed t = Atomic.get t.freed

  (* Quiescent only (like {!Store.iter}): uncached pages are read from
     disk (or the pending table) without being installed, so iteration
     does not thrash the cache. *)
  let iter t f =
    let frontier = Atomic.get t.next in
    for p = 0 to frontier - 1 do
      match slot_opt t p with
      | None -> ()
      | Some s ->
          if not (Atomic.get s.freed) then (
            match Atomic.get s.cached with
            | Some e -> f p e.node
            | None -> (
                let st = t.stripes.(stripe_index t p) in
                let n =
                  with_stripe st (fun () ->
                      match Atomic.get s.cached with
                      | Some e -> Some e.node
                      | None -> (
                          match Hashtbl.find_opt st.pending p with
                          | Some n -> Some n
                          | None ->
                              if Atomic.get s.on_disk then
                                Some (read_node_striped t p)
                              else None))
                in
                match n with Some n -> f p n | None -> ()))
    done

  let set_meta t bytes =
    let changed =
      match Atomic.get t.meta with
      | Some old -> not (Bytes.equal old bytes)
      | None -> true
    in
    Atomic.set t.meta (Some (Bytes.copy bytes));
    if changed then
      match t.wal with
      | None -> ()
      | Some w ->
          Mutex.lock w.w_mu;
          w.w_meta_dirty <- true;
          Mutex.unlock w.w_mu

  let get_meta t = Atomic.get t.meta

  (* ---------- the background writer ---------- *)

  (* Pop everything currently queued (under [wq_lock]); the depth gauge
     drops as entries are popped, re-opening queue capacity. *)
  let take_batch t =
    Mutex.lock t.wq_lock;
    let rec go acc =
      if Queue.is_empty t.wq then List.rev acc
      else begin
        ignore (Atomic.fetch_and_add t.wq_depth (-1));
        go (Queue.pop t.wq :: acc)
      end
    in
    let batch = go [] in
    Mutex.unlock t.wq_lock;
    batch

  (* Drain one queue entry: revalidate against the pending table under
     the page's stripe lock — the entry may have been cancelled by a
     re-fault, a release or a sync since it was queued, or superseded by
     a newer eviction of the same page (the table holds the newest).
     Write {e then} remove: if the write raises, the entry stays pending
     and [sync] (or a faulter) recovers it — removing first would turn an
     injected IO error into silent data loss. *)
  let write_back_one t p =
    let st = t.stripes.(stripe_index t p) in
    with_stripe st (fun () ->
        match Hashtbl.find_opt st.pending p with
        | None -> ()
        | Some n ->
            Failpoint.hit fp_writer;
            write_node_striped t p n;
            Hashtbl.remove st.pending p)

  (* A failed background write-back is not fatal: count it and leave the
     pending entry for [sync] to retry. A [Crash] is fatal — it must
     propagate so the writer domain dies with the simulated process. *)
  let write_back_one_resilient t p =
    try write_back_one t p
    with Failpoint.Injected _ | Paged_file.Io_error _ | Corrupt _ ->
      Atomic.incr t.writer_errors

  (** The background-writer loop: drain the write queue in batches until
      [stop] is raised {e and} the queue is empty. Run it on a dedicated
      domain ({!start_writer} or [Driver.run_ops_with_aux]); while at
      least one loop runs, eviction stops writing dirty victims back
      inline. Entries enqueued after the final drain are picked up by
      [sync]. *)
  let writer_loop t ~stop =
    Atomic.incr t.writers;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.writers)
      (fun () ->
        (* Idle poll interval backs off exponentially: a fixed short
           sleep costs ~10k wakeups/s of context switches, which on a
           timeshared core taxes the very workers the writer exists to
           relieve. The queue (plus the inline-write fallback when it
           fills) absorbs the extra wake-up latency. *)
        let idle_min = 1e-4 and idle_max = 2e-3 in
        let rec run idle =
          match take_batch t with
          | [] ->
              if not (Atomic.get stop) then begin
                Unix.sleepf idle;
                run (Float.min idle_max (idle *. 2.))
              end
          | batch ->
              Atomic.incr t.writer_batches;
              update_max t.max_batch (List.length batch);
              List.iter (write_back_one_resilient t) batch;
              run idle_min
        in
        run idle_min;
        (* Final drain: everything enqueued before [stop] was observed. *)
        List.iter (write_back_one_resilient t) (take_batch t))

  let start_writer t =
    Mutex.lock t.wq_lock;
    let spawned =
      match t.writer with
      | Some _ -> false
      | None ->
          let stop = Atomic.make false in
          t.writer <- Some (Domain.spawn (fun () -> writer_loop t ~stop), stop);
          true
    in
    Mutex.unlock t.wq_lock;
    (* Don't return on the spawn alone: eviction routes dirty victims by
       [t.writers], which the loop increments only once the new domain is
       scheduled. Returning early leaves a window where every eviction
       still writes back inline — a short-lived workload can run entirely
       inside it and the writer never sees a single page. *)
    if spawned then
      while Atomic.get t.writers = 0 do
        Domain.cpu_relax ()
      done

  let stop_writer t =
    Mutex.lock t.wq_lock;
    let w = t.writer in
    t.writer <- None;
    Mutex.unlock t.wq_lock;
    match w with
    | None -> ()
    | Some (d, stop) ->
        Atomic.set stop true;
        Domain.join d

  (* ---------- durability ---------- *)

  (* ---------- group commit (WAL durability mode) ---------- *)

  (* Snapshot the bytes a committed page image must hold: the cached
     node, the pending victim, or the on-disk page — whichever is
     newest. [None] for pages that were freed (or never materialised)
     since they were dirtied. Under the page's stripe lock; the encode
     of a node snapshot happens outside it. *)
  let commit_image t ptr =
    match slot_opt t ptr with
    | None -> None
    | Some s ->
        let st = t.stripes.(stripe_index t ptr) in
        with_stripe st (fun () ->
            if Atomic.get s.freed then None
            else
              match Atomic.get s.cached with
              | Some e -> Some (`Node e.node)
              | None -> (
                  match Hashtbl.find_opt st.pending ptr with
                  | Some n -> Some (`Node n)
                  | None ->
                      if Atomic.get s.on_disk then
                        Some
                          (`Raw
                            (with_file t (fun () ->
                                 Buffer_pool.read_page t.pool (ptr + header_slots))))
                      else None))

  let encode_image t = function
    | `Raw bytes -> bytes
    | `Node n ->
        let b = Codec.to_bytes n in
        if Bytes.length b > t.page_size then
          failwith
            (Printf.sprintf "Paged_store: node needs %d bytes, page is %d"
               (Bytes.length b) t.page_size);
        let page = Bytes.make t.page_size '\000' in
        Bytes.blit b 0 page 0 (Bytes.length b);
        page

  (* Lead batch [target]: optionally linger for followers, seal the
     dirty set by swapping it out, then — outside [w_mu] — snapshot and
     log every sealed page, append the COMMIT boundary and fsync once
     for the whole group. On failure the sealed set is merged back into
     the live one and [sealed] rolled back, so a retried commit re-seals
     the same pages and an injected IO error never drops an update.
     Enters holding [w_mu]; returns with it released. *)
  let lead_batch t (w : wal_state) ~target =
    w.leader <- true;
    if w.commit_batch > 1 && Atomic.get w.unsealed_reqs < w.commit_batch
    then begin
      (* Gather window: release the mutex — once, for the whole window —
         so followers can register without contending with the leader;
         the fill level is polled through the atomic counter. (A timed
         [Condition] wait would be the natural shape, but the stdlib has
         none.) A checkpoint cannot intervene (sync is quiescent), so
         the batch is still ours to seal afterwards. *)
      Mutex.unlock w.w_mu;
      let deadline = Unix.gettimeofday () +. w.commit_interval in
      let rec gather () =
        if
          Atomic.get w.unsealed_reqs < w.commit_batch
          && Unix.gettimeofday () < deadline
        then begin
          Unix.sleepf 5e-5;
          gather ()
        end
      in
      gather ();
      Mutex.lock w.w_mu
    end;
    let dirty = w.w_dirty in
    let meta_dirty = w.w_meta_dirty in
    let group = Atomic.get w.unsealed_reqs in
    w.w_dirty <- Hashtbl.create 32;
    w.w_meta_dirty <- false;
    Atomic.set w.unsealed_reqs 0;
    w.sealed <- target;
    Mutex.unlock w.w_mu;
    match
      let ptrs =
        List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) dirty [])
      in
      let gen = Atomic.get t.generation in
      List.iter
        (fun p ->
          match commit_image t p with
          | None -> ()
          | Some src ->
              Wal.append w.log ~gen (Wal.Page { ptr = p; image = encode_image t src }))
        ptrs;
      (if meta_dirty then
         match Atomic.get t.meta with
         | Some m -> Wal.append w.log ~gen (Wal.Meta m)
         | None -> ());
      Wal.append w.log ~gen Wal.Commit;
      Wal.fsync w.log
    with
    | () ->
        Mutex.lock w.w_mu;
        w.durable <- target;
        w.leader <- false;
        w.commit_groups <- w.commit_groups + 1;
        if group > w.max_group then w.max_group <- group;
        Condition.broadcast w.w_cond;
        Mutex.unlock w.w_mu
    | exception e ->
        (* Orphaned PAGE records (appended without their COMMIT) are
           harmless: replay only promotes staged images when it reaches a
           COMMIT, by which point a successful retry has re-logged every
           still-live sealed page with equal-or-newer content. *)
        Mutex.lock w.w_mu;
        Hashtbl.iter (fun p () -> Hashtbl.replace w.w_dirty p ()) dirty;
        w.w_meta_dirty <- w.w_meta_dirty || meta_dirty;
        w.sealed <- target - 1;
        w.leader <- false;
        Condition.broadcast w.w_cond;
        Mutex.unlock w.w_mu;
        raise e

  (* Quiescent crash-atomic flush, in write-ahead order:

     0. WAL mode only: a logged group commit of the current dirty set,
        so the state this checkpoint is about to make official has
        transited the log first (replication / PITR coverage)
     1. per stripe: queued victims (older than any dirty cached version
        of the same page), then dirty cached nodes  [paged_store.sync.data]
     2. the buffer pool's dirty frames to the file
     3. the free chain, if the free list changed    [paged_store.sync.chain]
     4. generation [g+1]'s header into slot [(g+1) land 1] — the slot
        holding committed generation [g] is not touched
                                                    [paged_store.sync.header]
     5. fsync: the {e commit point}. Under the crash model (un-fsynced
        writes are lost) this single fsync atomically flips the durable
        state from generation [g] to [g+1]; a crash any earlier leaves
        slot [g land 1] — and every page generation [g] describes —
        exactly as the previous sync committed them.
     6. the same header slot again, plus a second fsync: defence in depth
        for real devices that may persist the header out of order inside
        fsync 5                                     [paged_store.sync.commit]
     7. only now does the in-memory generation advance.

     Error resilience: every mutation of book-keeping happens {e after}
     the write it describes succeeds (pending entries, [e_dirty] flags,
     [free_dirty], the generation), so a sync aborted by an IO error can
     simply be retried. *)
  let rec sync t =
    (* WAL mode: route whatever is dirty through a logged group commit
       {e before} the checkpoint makes it official. Without this, the
       changes accumulated since the last commit would reach durability
       through the data-file flush alone and never transit the log —
       invisible to a replication follower or a point-in-time replay.
       With it, the log's retained history covers every committed state
       transition, which is the property WAL shipping rests on (see
       doc/RECOVERY.md). Skipped when nothing is dirty, so a quiescent
       checkpoint appends no spurious records. *)
    (match t.wal with
    | Some w ->
        let dirty_work =
          Mutex.lock w.w_mu;
          let d = Hashtbl.length w.w_dirty > 0 || w.w_meta_dirty in
          Mutex.unlock w.w_mu;
          d
        in
        if dirty_work then commit t
    | None -> ());
    let nstripes = Array.length t.stripes in
    Failpoint.hit fp_sync_data;
    Array.iteri
      (fun si (st : stripe) ->
        with_stripe st (fun () ->
            let pend = Hashtbl.fold (fun p n acc -> (p, n) :: acc) st.pending [] in
            List.iter
              (fun (p, n) ->
                write_node_striped t p n;
                Hashtbl.remove st.pending p)
              pend;
            let frontier = Atomic.get t.next in
            let p = ref si in
            while !p < frontier do
              (match slot_opt t !p with
              | None -> ()
              | Some s ->
                  if not (Atomic.get s.freed) then (
                    match Atomic.get s.cached with
                    | Some e when Atomic.get e.e_dirty ->
                        (* Clear before writing: should a non-quiescent put
                           slip in, its fresh entry (and dirty flag)
                           supersedes this one and the page is merely
                           written twice, never left stale-clean. Restore
                           on failure — this entry is still newer than the
                           disk and a retried sync must re-write it. *)
                        Atomic.set e.e_dirty false;
                        (try write_node_striped t !p e.node
                         with ex ->
                           Atomic.set e.e_dirty true;
                           raise ex)
                    | _ -> ()));
              p := !p + nstripes
            done))
      t.stripes;
    with_file t (fun () ->
        Buffer_pool.flush_writes t.pool;
        let gen = Atomic.get t.generation + 1 in
        if Atomic.get t.free_dirty then begin
          Failpoint.hit fp_sync_chain;
          write_free_chain_flocked t ~gen;
          Atomic.set t.free_dirty false
        end;
        (* WAL mode: a CHECKPOINT marker stamped with the {e outgoing}
           generation, before the header flip. A crash before the commit
           fsync below recovers generation [gen - 1], and replay still
           finds every gen-[gen - 1] batch in the log (the data writes of
           phase 1 were volatile); a crash after it recovers [gen], whose
           replay ignores the stale-generation records wholesale. *)
        (match t.wal with
        | Some w -> Wal.append w.log ~gen:(gen - 1) Wal.Checkpoint
        | None -> ());
        Failpoint.hit fp_sync_header;
        write_header_flocked t ~gen;
        Paged_file.sync (file t);
        (* committed: a crash from here on recovers generation [gen] *)
        Failpoint.hit fp_sync_commit;
        write_header_flocked t ~gen;
        Paged_file.sync (file t);
        Atomic.set t.generation gen);
    (* Checkpoint complete: every logged batch is now also in the data
       file, so the log's contents are dead weight. Truncation is
       logical — the cursor rewinds to page 0 and the new generation
       invalidates whatever old-pass records it has not yet overwritten
       (replay stops at the first foreign-generation or LSN-discontinuous
       record). The dirty set accumulated since the last seal is already
       covered by the checkpoint too. Quiescent like the rest of [sync],
       so no commit races with this. *)
    match t.wal with
    | Some w ->
        Wal.truncate w.log;
        Mutex.lock w.w_mu;
        Hashtbl.reset w.w_dirty;
        w.w_meta_dirty <- false;
        Mutex.unlock w.w_mu
    | None -> ()

  (* Group commit: block until every operation completed before this call
     is durable. Safe from any number of domains at once — unlike [sync],
     which demands quiescence. Without a WAL, degrade to [sync] (caller
     must then treat it as quiescent-only, see the mli). *)
  and commit t =
    match t.wal with
    | None ->
        (* Degrade to a full sync, serialised so concurrent committers at
           least never run two syncs at once. The durability point is
           still coarse — see the signature's caveat. *)
        Mutex.lock t.sync_mu;
        Fun.protect ~finally:(fun () -> Mutex.unlock t.sync_mu) (fun () -> sync t)
    | Some w ->
        Mutex.lock w.w_mu;
        w.commit_reqs <- w.commit_reqs + 1;
        Atomic.incr w.unsealed_reqs;
        (* The next batch to seal necessarily covers this caller's pages:
           they are in the live dirty set right now. If a running leader
           seals them into {e its} batch first, waiting for [target] only
           over-waits — never under-waits. *)
        let target = w.sealed + 1 in
        let rec await () =
          if w.durable >= target then Mutex.unlock w.w_mu
          else if (not w.leader) && w.sealed < target then
            lead_batch t w ~target
          else begin
            Condition.wait w.w_cond w.w_mu;
            await ()
          end
        in
        await ()

  let flush = sync

  let close t =
    stop_writer t;
    sync t;
    (match t.wal with Some w -> Wal.close w.log | None -> ());
    Paged_file.close (file t)

  (* Open a store from an already-open paged file (the crash harness
     hands in a {!Paged_file.crash_image}). Recovery policy:

     - {b Header}: read both slots, keep whichever checksum-valid one
       carries the higher generation. One torn / stale / unwritten slot
       is expected after a crash; only both slots invalid is [Corrupt].
     - {b Free chain}: walk it defensively — validate {e every} entry
       (magic, checksum, pointer range, length, acyclicity) before
       committing anything to the allocator. Any damage degrades to
       {e leaking} the free pages (they are never handed out again)
       rather than raising: a broken chain after a crash must not make
       the tree — which is intact — unopenable, and the one unsafe
       failure (recycling a page the tree still references) is exactly
       what the validate-first walk rules out.
     - {b WAL replay} (when [wal] is passed): scan the log for the
       header generation's pass ({!Wal.replay}) {e before} anything else
       touches allocator state. The replay result (a) extends the bump
       frontier over pages group-committed after the checkpoint, (b)
       supersedes the header's metadata blob with the newest committed
       one, (c) filters {e recycled} pages — freed at the checkpoint,
       reallocated and committed since — out of the rebuilt free list
       (the chain is walked on the {e pristine} pre-replay image, whose
       free pages still hold their chain entries), and (d) is installed
       as full physical page images before the store is returned. A
       chain entry clobbered by post-checkpoint reuse fails its checksum
       and degrades to the same leak policy as above.
     - {b Frees are not logged} — accepted leak-on-recovery policy: a
       page whose commit-acked free is newer than its last logged image
       (committed batch [N], freed batch [N+1]; or an orphaned PAGE
       record of a page freed between a failed flush and its retry) is
       resurrected by replay as an allocated, tree-unreachable page.
       Same degradation class as the damaged-chain leak: never a double
       hand-out, never wrong tree contents — the page is merely dead
       weight until the store is rebuilt. See doc/RECOVERY.md. *)
  let open_from ?expect_shard ?(cache_pages = default_cache_pages)
      ?(stripes = default_stripes) ?commit_interval ?commit_batch ?wal pfile =
    if Paged_file.pages pfile = 0 then raise (Corrupt "empty file");
    let page_size = Paged_file.page_size pfile in
    let header =
      match
        ( read_header_slot pfile ~page_size 0,
          read_header_slot pfile ~page_size 1 )
      with
      | Some (g0, h0), Some (g1, h1) -> if g0 >= g1 then (g0, h0) else (g1, h1)
      | Some (g, h), None | None, Some (g, h) -> (g, h)
      | None, None -> raise (Corrupt "no valid header slot")
    in
    let gen, header = header in
    let geti off = Int64.to_int (Bytes.get_int64_le header off) in
    (* Partition identity check before anything else touches the file:
       opening shard i-of-N as j-of-M would misroute every key the
       router hashes, silently — the typed error is the whole defence
       against accidental resharding. *)
    let found_index = geti header_shard_index_off in
    let found_count = geti header_shard_count_off in
    let shard =
      match expect_shard with
      | None -> (found_index, found_count)
      | Some (expected_index, expected_count) ->
          if expected_index <> found_index || expected_count <> found_count
          then
            raise
              (Shard_mismatch
                 { expected_index; expected_count; found_index; found_count });
          (expected_index, expected_count)
    in
    let t = make ~shard ~page_size ~cache_pages ~stripes pfile in
    Atomic.set t.generation gen;
    Atomic.set t.next (geti 24);
    Atomic.set t.allocated (geti 48);
    Atomic.set t.freed (geti 56);
    let meta_len = geti 72 in
    if meta_len < 0 || meta_len > page_size - header_fixed then
      raise (Corrupt "bad metadata length");
    if meta_len > 0 then
      Atomic.set t.meta (Some (Bytes.sub header header_fixed meta_len));
    (* WAL recovery: redo-scan the log before allocator state settles. *)
    let rep =
      Option.map (fun lf -> Wal.replay ~data_page_size:page_size ~gen lf) wal
    in
    (match rep with
    | Some { Wal.committed_meta = Some m; _ } -> Atomic.set t.meta (Some m)
    | _ -> ());
    (match rep with
    | Some r ->
        (* Pages group-committed past the checkpoint's bump frontier:
           extend it (and the allocated counter) so they are live again. *)
        Hashtbl.iter
          (fun p _ ->
            let next = Atomic.get t.next in
            if p >= next then begin
              ignore (Atomic.fetch_and_add t.allocated (p + 1 - next));
              Atomic.set t.next (p + 1)
            end)
          r.Wal.committed
    | None -> ());
    let frontier = Atomic.get t.next in
    for p = 0 to frontier - 1 do
      let chunk = ensure_chunk t (p lsr chunk_bits) in
      Atomic.set chunk.(p land (chunk_size - 1)).on_disk
        (p + header_slots < Paged_file.pages pfile)
    done;
    (* Rebuild the free list by walking the on-disk chain — collect and
       validate the whole chain first, commit to the allocator only if
       every link checks out. The walk reads the {e pristine} image:
       replayed page images are installed only afterwards, so a page
       that sat on the checkpoint free chain and was recycled by a
       committed batch still shows its chain entry here. *)
    let free_count = geti 40 in
    let head = geti 32 in
    let rec walk acc seen cur =
      if cur = -1 then if seen = free_count then Some (List.rev acc) else None
      else if seen >= free_count then None (* longer than advertised: cycle? *)
      else if cur < 0 || cur >= frontier then None
      else
        match read_chain_entry pfile (cur + header_slots) with
        | None -> None
        | Some next -> walk (cur :: acc) (seen + 1) next
    in
    let replayed p =
      match rep with Some r -> Hashtbl.mem r.Wal.committed p | None -> false
    in
    (match walk [] 0 head with
    | Some free ->
        (* Recycled pages — on the checkpoint chain {e and} in the replay
           set — are live again: the committed image wins, drop them from
           the free list and restore them to the allocated count. *)
        let free = List.filter (fun p -> not (replayed p)) free in
        let kept = List.length free in
        if kept < free_count then
          ignore (Atomic.fetch_and_add t.allocated (free_count - kept));
        List.iter
          (fun p ->
            let s = slot t p in
            Atomic.set s.freed true;
            (* Free pages hold chain links, not nodes: clearing [on_disk]
               keeps them unreadable after recycling, until their first
               [put] — the same contract a live store maintains. *)
            Atomic.set s.on_disk false)
          free;
        Atomic.set t.free_list free;
        Atomic.set t.free_len kept;
        (* The in-memory list matches the on-disk chain unless replay
           filtered recycled pages out of it. *)
        Atomic.set t.free_dirty (kept <> free_count)
    | None ->
        (* Damaged chain: leak the free pages (safe — they are simply
           never reused) instead of refusing to open an intact tree. The
           next sync persists the (empty) list. *)
        Atomic.set t.free_list [];
        Atomic.set t.free_len 0;
        Atomic.set t.free_dirty true);
    (* Install the replayed images — full physical pages, written
       straight through the pool's file — and reattach the log with its
       cursor on the valid tail. *)
    (match (rep, wal) with
    | Some r, Some log_file ->
        with_file t (fun () ->
            Hashtbl.iter
              (fun p img ->
                ensure_materialized_flocked t (p + header_slots);
                Paged_file.write (file t) (p + header_slots) img;
                let s = slot t p in
                Atomic.set s.freed false;
                Atomic.set s.on_disk true)
              r.Wal.committed);
        (* The incarnation floor: the header's persisted value covers a
           crashed pass that left no valid records for replay to take
           the incarnation from; replay's own [next_inc] covers passes
           resumed since the last checkpoint. [resume] takes the max. *)
        let inc_floor = geti header_wal_inc_off in
        t.wal <-
          Some
            (mk_wal_state ?commit_interval ?commit_batch
               (Wal.resume ~incarnation:(inc_floor + 1) ~data_page_size:page_size
                  ~replay:r log_file))
    | _ -> ());
    t

  let open_file ?expect_shard ?cache_pages ?stripes ?commit_interval
      ?commit_batch ?wal_path path =
    let pfile = Paged_file.open_file ~writable:true path in
    let wal =
      Option.map
        (fun p ->
          (* A store synced and closed in sync mode can be reopened in
             WAL mode: a missing log file is simply created empty. *)
          let log_page_size =
            Wal.log_page_size ~data_page_size:(Paged_file.page_size pfile)
          in
          if Sys.file_exists p then
            Paged_file.open_file ~page_size:log_page_size ~writable:true p
          else Paged_file.create_file ~page_size:log_page_size p)
        wal_path
    in
    open_from ?expect_shard ?cache_pages ?stripes ?commit_interval ?commit_batch
      ?wal pfile

  (* ---------- introspection ---------- *)

  let pool_stats t = Buffer_pool.stats t.pool

  let cached_nodes t =
    Array.fold_left (fun acc (st : stripe) -> acc + Atomic.get st.resident) 0 t.stripes

  let page_size t = t.page_size
  let shard t = t.shard
  let stripe_count t = Array.length t.stripes
  let queue_depth t = Atomic.get t.wq_depth
  let generation t = Atomic.get t.generation
  let writer_errors t = Atomic.get t.writer_errors

  (* Per-stripe counters are read without the stripe locks: the snapshot
     is racy by a few events, which is fine for reporting. *)
  let io_stats t =
    let io = Stats.io_create () in
    Array.iter
      (fun (st : stripe) ->
        io.Stats.faults <- io.Stats.faults + st.faults;
        io.Stats.fault_stall_s <- io.Stats.fault_stall_s +. st.stall_s;
        io.Stats.inline_writebacks <- io.Stats.inline_writebacks + st.inline_wb;
        io.Stats.queued_writebacks <- io.Stats.queued_writebacks + st.queued_wb)
      t.stripes;
    io.Stats.writer_batches <- Atomic.get t.writer_batches;
    io.Stats.writer_errors <- Atomic.get t.writer_errors;
    io.Stats.max_batch <- Atomic.get t.max_batch;
    io.Stats.max_queue_depth <- Atomic.get t.max_wq_depth;
    io.Stats.max_concurrent_faults <- Atomic.get t.max_faulting;
    (match t.wal with
    | Some w ->
        io.Stats.commit_reqs <- w.commit_reqs;
        io.Stats.commit_groups <- w.commit_groups;
        io.Stats.max_commit_group <- w.max_group;
        io.Stats.wal_records <- Wal.appended w.log;
        io.Stats.wal_fsyncs <- Wal.fsyncs w.log
    | None -> ());
    io

  let per_stripe_faults t = Array.map (fun (st : stripe) -> st.faults) t.stripes
  let wal_enabled t = t.wal <> None

  let wal_cursor t =
    match t.wal with Some w -> Some (Wal.cursor w.log) | None -> None

  (* ---------- replication: primary side ---------- *)

  let wal_fetch t ~lsn ~max_pages =
    match t.wal with
    | Some w -> Wal.fetch_from w.log ~lsn ~max_pages
    | None -> Wal.At_end

  let wal_wait t ~lsn ~timeout =
    match t.wal with
    | Some w -> Wal.wait_durable w.log ~lsn ~timeout
    | None -> false

  let wal_durable_lsn t =
    match t.wal with Some w -> Wal.durable_lsn w.log | None -> -1

  let wal_incarnation t =
    match t.wal with Some w -> Some (Wal.incarnation w.log) | None -> None

  (* ---------- replication: follower side ---------- *)

  (* Install one shipped commit batch's page images, exactly as recovery
     installs replayed images: straight through the file (never the
     dirty-tracking path — a follower's store has no log of its own to
     re-ship them into), dropping any cached or writer-queued copy so
     the next read faults the authoritative bytes back in. Single
     applier thread assumed (the replica's apply loop); readers on other
     threads see each page flip atomically from old image to new via the
     file write, and batch-level consistency is the caller's job (the
     replica swaps its tree view only after the whole batch lands). *)
  let apply_replicated t ~images ~meta =
    List.iter
      (fun (p, img) ->
        if p < 0 then invalid_arg "apply_replicated: negative ptr";
        if Bytes.length img <> t.page_size then
          invalid_arg "apply_replicated: image size mismatch";
        let next = Atomic.get t.next in
        if p >= next then begin
          ignore (Atomic.fetch_and_add t.allocated (p + 1 - next));
          Atomic.set t.next (p + 1)
        end;
        let s = (ensure_chunk t (p lsr chunk_bits)).(p land (chunk_size - 1)) in
        let st = t.stripes.(stripe_index t p) in
        with_stripe st (fun () ->
            Hashtbl.remove st.pending p;
            (match Atomic.exchange s.cached None with
            | Some _ -> Atomic.decr st.resident
            | None -> ());
            with_file t (fun () ->
                ensure_materialized_flocked t (p + header_slots);
                Paged_file.write (file t) (p + header_slots) img;
                (* the pool may hold this page in a frame from an earlier
                   read — refresh it, or the next fault revives the old
                   image *)
                let frame = Buffer_pool.pin t.pool (p + header_slots) in
                Bytes.blit img 0 frame 0 t.page_size;
                Buffer_pool.unpin t.pool (p + header_slots) ~dirty:false);
            Atomic.set s.freed false;
            Atomic.set s.on_disk true))
      images;
    match meta with Some m -> Atomic.set t.meta (Some m) | None -> ()
end
