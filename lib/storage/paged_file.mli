(** Fixed-size-page file with memory and [Unix]-file backends; the storage
    device under {!Repro_core.Checkpoint}. Not concurrent — used at
    quiescent points only. *)

type t

val default_page_size : int

val create_memory : ?page_size:int -> unit -> t
val create_file : ?page_size:int -> string -> t
(** Create or truncate for writing. *)

val open_file : ?page_size:int -> ?writable:bool -> string -> t
(** Open an existing file for reading ([writable] — default false —
    opens it read-write, for resuming a {!Paged_store} in place).
    @raise Invalid_argument if the size is not page-aligned. *)

val page_size : t -> int
val pages : t -> int

val append : t -> Bytes.t -> int
(** Write a full page at the end; returns its index.
    @raise Invalid_argument on a wrong-sized buffer. *)

val write : t -> int -> Bytes.t -> unit
(** Overwrite page [idx] (or append when [idx = pages]). *)

val read : t -> int -> Bytes.t

val read_into : t -> int -> Bytes.t -> unit
(** Like {!read} but into a caller-supplied full-page buffer, allocation
    free — the buffer-pool miss path. *)

val sync : t -> unit
val close : t -> unit
