(** Fixed-size-page file with memory, [Unix]-file and crash-shadow
    backends; the storage device under {!Repro_core.Checkpoint} and
    {!Paged_store}. Writes and reads are positional (offset derived from
    the page index on every call, seek+transfer atomic per file), retry
    short transfers and [EINTR], and raise {!Io_error} on failures
    instead of silently truncating. Fault-injection points:
    [paged_file.pwrite], [paged_file.pread], [paged_file.fsync] (see
    {!Failpoint} and doc/RECOVERY.md). *)

exception
  Io_error of {
    op : string;  (** "write" | "read" | "fsync" *)
    page : int;  (** page index, or -1 for whole-file ops *)
    detail : string;
  }
(** An IO transfer that could not complete (EOF mid-page, a non-[EINTR]
    [Unix] error). *)

type t

val default_page_size : int

val create_memory : ?page_size:int -> unit -> t
val create_file : ?page_size:int -> string -> t
(** Create or truncate for writing. *)

val create_shadow : ?page_size:int -> unit -> t
(** A crash-shadow device for fault-injection tests: like
    {!create_memory}, but it also keeps a {e durable} image updated only
    by {!sync}; {!crash_image} recovers it. Once {!Failpoint.is_crashed}
    is latched, writes and syncs raise [Failpoint.Crash] — a dead
    process issues no IO. *)

val open_file : ?page_size:int -> ?writable:bool -> string -> t
(** Open an existing file for reading ([writable] — default false —
    opens it read-write, for resuming a {!Paged_store} in place).
    @raise Invalid_argument if the size is not page-aligned. *)

val page_size : t -> int
val pages : t -> int

val append : t -> Bytes.t -> int
(** Write a full page at the end; returns its index.
    @raise Invalid_argument on a wrong-sized buffer. *)

val write : t -> int -> Bytes.t -> unit
(** Overwrite page [idx] (or append when [idx = pages]). Retries until
    the full page lands. @raise Io_error when it cannot. *)

val read : t -> int -> Bytes.t

val read_into : t -> int -> Bytes.t -> unit
(** Like {!read} but into a caller-supplied full-page buffer, allocation
    free — the buffer-pool miss path. @raise Io_error on EOF mid-page. *)

val sync : t -> unit
(** [fsync]. On a shadow file, commits every write so far to the durable
    image. *)

val close : t -> unit

val crash_image : t -> t
(** Shadow files only: a fresh memory-backed file holding what a reopen
    after a crash right now would find — every write since the last
    {!sync} discarded, except pages promoted by a torn-write failpoint.
    @raise Invalid_argument on other backends. *)

val unsynced_pages : t -> int
(** Shadow files only (0 elsewhere): pages a crash right now would lose. *)
