(** Buffer pool over a {!Paged_file}: a fixed number of in-memory frames
    with pin/unpin, dirty tracking, and clock (second-chance) eviction —
    the component that turns "each node corresponds to a page or block of
    secondary storage" (§2.2) into a runnable memory hierarchy.

    Single-owner (no internal locking): the disk-resident tree using it is
    the sequential baseline; the concurrent trees run on {!Store} (see
    DESIGN.md §2 on that substitution). *)

type frame = {
  mutable page : int;  (** disk page held, or -1 *)
  mutable data : Bytes.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable referenced : bool;  (** clock bit *)
}

type t = {
  file : Paged_file.t;
  frames : frame array;
  table : (int, int) Hashtbl.t;  (** disk page -> frame index *)
  mutable hand : int;  (** clock hand *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let fp_flush = Failpoint.site "buffer_pool.flush_frame"

let create ~frames file =
  if frames < 1 then invalid_arg "Buffer_pool.create: need at least one frame";
  {
    file;
    frames =
      Array.init frames (fun _ ->
          {
            page = -1;
            data = Bytes.create (Paged_file.page_size file);
            dirty = false;
            pins = 0;
            referenced = false;
          });
    table = Hashtbl.create (2 * frames);
    hand = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
  }

let file t = t.file

let flush_frame t fi =
  let f = t.frames.(fi) in
  if f.dirty && f.page >= 0 then begin
    Failpoint.hit fp_flush;
    Paged_file.write t.file f.page f.data;
    t.writebacks <- t.writebacks + 1;
    f.dirty <- false
  end

(* Clock sweep: find an unpinned frame, giving referenced frames a second
   chance. Raises if everything is pinned. *)
let find_victim t =
  let n = Array.length t.frames in
  let rec sweep remaining =
    if remaining = 0 then failwith "Buffer_pool: all frames pinned";
    let fi = t.hand in
    t.hand <- (t.hand + 1) mod n;
    let f = t.frames.(fi) in
    if f.pins > 0 then sweep (remaining - 1)
    else if f.referenced then begin
      f.referenced <- false;
      sweep (remaining - 1)
    end
    else fi
  in
  sweep (2 * n)

(** Pin a disk page into a frame and return its bytes. The buffer stays
    valid (and its mutations tracked, see {!unpin}) until unpinned. *)
let pin t page =
  match Hashtbl.find_opt t.table page with
  | Some fi ->
      let f = t.frames.(fi) in
      t.hits <- t.hits + 1;
      f.pins <- f.pins + 1;
      f.referenced <- true;
      f.data
  | None ->
      t.misses <- t.misses + 1;
      let fi = find_victim t in
      let f = t.frames.(fi) in
      if f.page >= 0 then begin
        flush_frame t fi;
        Hashtbl.remove t.table f.page;
        t.evictions <- t.evictions + 1
      end;
      if page < Paged_file.pages t.file then Paged_file.read_into t.file page f.data
      else Bytes.fill f.data 0 (Bytes.length f.data) '\000';
      f.page <- page;
      f.dirty <- false;
      f.pins <- 1;
      f.referenced <- true;
      Hashtbl.replace t.table page fi;
      f.data

let unpin t page ~dirty =
  match Hashtbl.find_opt t.table page with
  | None -> invalid_arg "Buffer_pool.unpin: page not resident"
  | Some fi ->
      let f = t.frames.(fi) in
      if f.pins <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
      f.pins <- f.pins - 1;
      if dirty then f.dirty <- true

(** Copy a page's bytes out through the pool (pin, copy, unpin): for
    callers that decode outside the pool owner's critical section. *)
let read_page t page =
  let data = pin t page in
  let b = Bytes.sub data 0 (Bytes.length data) in
  unpin t page ~dirty:false;
  b

(** Allocate a fresh disk page (zero-filled, pinned). *)
let alloc t =
  (* materialise the page on disk so Paged_file's contiguity holds *)
  let page = Paged_file.append t.file (Bytes.make (Paged_file.page_size t.file) '\000') in
  ignore (pin t page);
  page

(** Write every dirty frame back without forcing the device: callers that
    sequence their own durability barrier (e.g. {!Paged_store}'s
    crash-atomic [sync], which must order the header write {e between}
    the data write-out and the commit fsync) use this and call
    {!Paged_file.sync} themselves. *)
let flush_writes t = Array.iteri (fun fi _ -> flush_frame t fi) t.frames

let flush_all t =
  flush_writes t;
  Paged_file.sync t.file

type stats = { hits : int; misses : int; evictions : int; writebacks : int }

let stats (t : t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; writebacks = t.writebacks }

let hit_ratio (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total
