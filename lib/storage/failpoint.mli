(** Named fault-injection sites threaded through the storage IO paths
    ([Paged_file], [Buffer_pool], [Paged_store]). Sites are registered at
    module load and cost one mutable read per hit when [Off]; the crash
    harness arms them to inject IO errors, short writes, torn writes and
    simulated process death at exact points. See doc/RECOVERY.md for the
    site catalog. *)

type policy =
  | Off
  | Error of { every : int }  (** raise {!Injected} on every [every]-th armed hit *)
  | Short_write of { every : int }
      (** every [every]-th write accepts only a seeded-random prefix *)
  | Torn_write
      (** the next write lands a random prefix of the new bytes, then
          {!Crash}; one-shot *)
  | Crash_after of int  (** raise {!Crash} on the n-th armed hit *)

type action =
  | Proceed
  | Short of int  (** the device accepts only this many bytes; retry the rest *)
  | Torn of int
      (** write this many bytes over the old contents, then call {!crash} *)

exception Crash of string  (** simulated process death at the named site *)

exception Injected of string  (** injected IO error at the named site *)

type site

val site : string -> site
(** Register (or look up) a site by name. Idempotent. *)

val name : site -> string

val set : string -> policy -> unit
(** Arm a registered site. @raise Invalid_argument on unknown names or
    non-positive counts. *)

val set_site : site -> policy -> unit

val seed : int -> unit
(** Reseed the RNG behind short/torn lengths. *)

val hit : site -> unit
(** A non-write site was reached: fires [Error] / [Crash_after]
    (write-shaping policies are inert). *)

val write_action : site -> len:int -> action
(** A write of [len] bytes is about to run: decide its fate. May raise
    {!Injected} or {!Crash}. *)

val crash : site -> 'a
(** Raise {!Crash} for this site and latch {!is_crashed}. Callers use it
    after performing a [Torn] write. *)

val is_crashed : unit -> bool
(** True once any site crashed; the shadow [Paged_file] backend refuses
    writes and fsyncs while set, so surviving domains cannot commit
    post-mortem work. *)

val clear_crashed : unit -> unit

val reset : unit -> unit
(** Disarm every site, clear {!is_crashed}, reseed. Exercised counters
    survive (they span a whole battery). *)

val registered : unit -> string list
(** All site names, sorted. *)

val exercised : string -> int
(** Times the named site's policy actually fired, ever. *)

val unexercised : unit -> string list
(** Registered sites that never fired — the crash battery and CI require
    this to be empty. *)
