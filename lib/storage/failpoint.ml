(** Named fault-injection sites threaded through the storage stack.

    A {e site} is a fixed point in the IO path (a [Paged_file] write, a
    buffer-pool frame flush, a sync phase) registered once at module load
    under a stable name. Production policy is [Off], which costs one
    mutable read per hit; tests arm a site with {!set} and the next hits
    fire the policy:

    - [Error _]: raise {!Injected} every Nth hit — exercises error
      propagation (the background writer must park the victim, not leak
      it; [sync] must stay retryable).
    - [Short_write _]: every Nth write call accepts only a seeded-random
      prefix — exercises the short-write retry loops.
    - [Torn_write]: the next write lands a random {e prefix} of the new
      bytes over the old contents and the process "dies" ({!Crash}); the
      shadow backend promotes the torn page to its durable image, the
      in-flight write that hits the platter as power fails.
    - [Crash_after n]: the nth hit raises {!Crash} before the site's
      action runs.

    Once a [Crash] has been raised the registry latches a global
    {!is_crashed} flag; the shadow [Paged_file] backend refuses further
    writes and fsyncs, so a surviving domain (e.g. the background writer)
    cannot commit post-mortem work into the simulated disk. {!reset}
    clears the flag, disarms every site and reseeds the RNG.

    Every firing increments the site's {e exercised} counter;
    {!unexercised} lists registered sites that never fired, which the
    crash battery (and CI) require to be empty — a site that exists but
    is never reached by any test is dead instrumentation. *)

type policy =
  | Off
  | Error of { every : int }
  | Short_write of { every : int }
  | Torn_write
  | Crash_after of int

type action = Proceed | Short of int | Torn of int

exception Crash of string
exception Injected of string

type site = {
  name : string;
  mutable policy : policy;
  hits : int Atomic.t;  (** every call, armed or not *)
  armed_hits : int Atomic.t;  (** hits while the policy is non-[Off] *)
  fired : int Atomic.t;  (** times the policy actually did something *)
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()
let crashed = Atomic.make false
let rng = ref (Repro_util.Splitmix.create 0x5EED)
let rng_lock = Mutex.create ()

let site name =
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
        let s =
          {
            name;
            policy = Off;
            hits = Atomic.make 0;
            armed_hits = Atomic.make 0;
            fired = Atomic.make 0;
          }
        in
        Hashtbl.add registry name s;
        s
  in
  Mutex.unlock registry_lock;
  s

let name (s : site) = s.name

let set_site (s : site) policy =
  (match policy with
  | Error { every } | Short_write { every } ->
      if every < 1 then invalid_arg "Failpoint: every must be >= 1"
  | Crash_after n -> if n < 1 then invalid_arg "Failpoint: crash after >= 1 hits"
  | Off | Torn_write -> ());
  s.policy <- policy

let set name policy =
  Mutex.lock registry_lock;
  let s = Hashtbl.find_opt registry name in
  Mutex.unlock registry_lock;
  match s with
  | Some s -> set_site s policy
  | None -> invalid_arg (Printf.sprintf "Failpoint.set: unknown site %S" name)

let seed n =
  Mutex.lock rng_lock;
  rng := Repro_util.Splitmix.create n;
  Mutex.unlock rng_lock

let rand_below n =
  Mutex.lock rng_lock;
  let v = Repro_util.Splitmix.int !rng n in
  Mutex.unlock rng_lock;
  v

let is_crashed () = Atomic.get crashed
let clear_crashed () = Atomic.set crashed false

let crash (s : site) =
  Atomic.incr s.fired;
  Atomic.set crashed true;
  raise (Crash s.name)

(* Count an armed hit; returns the 1-based ordinal of this hit since the
   site was last armed... close enough: ordinal since registration while
   armed, which is what the deterministic tests arm-then-count against. *)
let armed_ordinal (s : site) = 1 + Atomic.fetch_and_add s.armed_hits 1

(** A non-write site (fsync, fault, sync phases): fires [Error] and
    [Crash_after]; write-shaping policies are inert here. *)
let hit (s : site) =
  Atomic.incr s.hits;
  match s.policy with
  | Off | Short_write _ | Torn_write -> ()
  | Error { every } ->
      let k = armed_ordinal s in
      if k mod every = 0 then begin
        Atomic.incr s.fired;
        raise (Injected s.name)
      end
  | Crash_after n -> if armed_ordinal s = n then crash s

(** A write of [len] bytes is about to run at [s]: decide its fate.
    [Short k] / [Torn k] return how many bytes the device accepts
    (1 ≤ k < len, seeded); after performing a torn write the caller must
    call {!crash}. *)
let write_action (s : site) ~len =
  Atomic.incr s.hits;
  match s.policy with
  | Off -> Proceed
  | Error { every } ->
      let k = armed_ordinal s in
      if k mod every = 0 then begin
        Atomic.incr s.fired;
        raise (Injected s.name)
      end
      else Proceed
  | Short_write { every } ->
      let k = armed_ordinal s in
      if k mod every = 0 && len > 1 then begin
        Atomic.incr s.fired;
        Short (1 + rand_below (len - 1))
      end
      else Proceed
  | Torn_write ->
      ignore (armed_ordinal s);
      Atomic.incr s.fired;
      (* Disarm: the torn write is one-shot — the process dies with it. *)
      s.policy <- Off;
      Torn (if len > 1 then 1 + rand_below (len - 1) else len)
  | Crash_after n -> if armed_ordinal s = n then crash s else Proceed

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ s ->
      s.policy <- Off;
      Atomic.set s.armed_hits 0)
    registry;
  Mutex.unlock registry_lock;
  Atomic.set crashed false;
  seed 0x5EED

let registered () =
  Mutex.lock registry_lock;
  let l = Hashtbl.fold (fun n _ acc -> n :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort compare l

let exercised name =
  Mutex.lock registry_lock;
  let s = Hashtbl.find_opt registry name in
  Mutex.unlock registry_lock;
  match s with Some s -> Atomic.get s.fired | None -> 0

let unexercised () =
  List.filter (fun n -> exercised n = 0) (registered ())
