(** Concurrent page store: the paper's secondary-storage model (§2.2).

    Each page slot holds an immutable node snapshot behind an atomic, so
    {!get} and {!put} are indivisible and readers never block. Each slot
    carries the page latch for {!lock}/{!unlock}; latches serialise
    writers only — they never block readers, exactly as in the model.
    Pages live in chunks that never move; freed pages are recycled. *)

type 'k t

val create : unit -> 'k t

val alloc : 'k t -> 'k Node.t -> Node.ptr
(** Allocate a page initialised to the node; immediately readable from all
    domains. *)

val reserve : 'k t -> Node.ptr
(** Reserve a page id with no contents; the caller must {!put} before
    making the id reachable (a split writes the new right sibling before
    linking it, Fig 3). *)

exception Freed_page of int
(** Raised by {!get} on a reclaimed page — the same exception as
    {!Page_store.Freed_page} (a rebinding, so either name catches it).
    Under correct epoch protection this cannot happen within a pinned
    operation; cross-operation references (queue stacks) catch it and
    restart. *)

val get : 'k t -> Node.ptr -> 'k Node.t
(** Indivisible read. *)

val put : 'k t -> Node.ptr -> 'k Node.t -> unit
(** Indivisible rewrite. *)

val lock : 'k t -> Node.ptr -> unit
val unlock : 'k t -> Node.ptr -> unit
val try_lock : 'k t -> Node.ptr -> bool

val release : 'k t -> Node.ptr -> unit
(** Return a page to the allocator; call only once its deletion epoch has
    passed (see {!Epoch}). *)

val live_count : 'k t -> int
val total_allocated : 'k t -> int
val total_freed : 'k t -> int

val iter : 'k t -> (Node.ptr -> 'k Node.t -> unit) -> unit
(** Over all live pages; only meaningful when quiescent. *)

val set_meta : 'k t -> Bytes.t -> unit
(** Opaque client metadata blob (see {!Page_store.S}); kept in memory. *)

val get_meta : 'k t -> Bytes.t option

val sync : 'k t -> unit
(** No-op: the store is purely in-memory. *)

val commit : 'k t -> unit
(** No-op: nothing to make durable (see {!Page_store.S.commit}). *)

module For_key (K : Key.S) : Page_store.S with type key = K.t and type t = K.t t
(** The {!Page_store.S} view of the store at one key type — what
    [Repro_core]'s [Make (K)] convenience functors instantiate. The type
    equality [t = K.t t] is transparent. *)
