(** Concurrent multi-version record heap.

    The paper's leaves store pairs (v, p) where "p points to the record
    with key value v" and assumes "space has already been allocated to r"
    (§3.1). This module is that allocation, extended with multiversioning:
    each slot holds a short {e version chain} — immutable
    [{epoch; value; prev}] records, newest first — so lock-free readers
    pinned to an old epoch keep seeing the value that was current then
    while writers CAS fresh versions onto the head. A [value] of [None] is
    a tombstone: the record is logically absent from that epoch on, but
    the chain (and the tree pair pointing at it) survives until vacuum.

    Like {!Store}, slots never move, so readers index without
    synchronisation; every chain transition is a single CAS on the slot.

    Lifecycle of a slot: [Empty] -> [Chain _] (via {!put}) -> ... appends
    ... -> [Sealed] (vacuum proved the chain dead below every pin and
    {!seal}ed it so late appenders retry elsewhere) -> [Empty] (via
    {!free}, deferred through an {!Epoch} manager past all pins).
    {!prune} truncates the cold tail of a chain once no pin can reach it;
    versions at or above [horizon] always survive. *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let max_chunks = 1 lsl 14

type 'v version = {
  epoch : int;  (** the writer's pinned epoch when this version landed *)
  value : 'v option;  (** [None] = tombstone (logical delete) *)
  prev : 'v version option;  (** next-older version, [None] at the tail *)
}

(* A slot's whole state; transitions are single CASes on the slot atomic.
   [Sealed] is the vacuum barrier: a chain proven dead below every pin is
   sealed before its tree pair is removed, so a concurrent appender that
   still holds the old record pointer fails with [`Gone] and retries from
   a fresh tree search instead of resurrecting an orphaned record. *)
type 'v state = Empty | Chain of 'v version | Sealed

type 'v t = {
  chunks : 'v state Atomic.t array option Atomic.t array;
  next : int Atomic.t;
  free_list : int list Atomic.t;
  allocated : int Atomic.t;
  freed : int Atomic.t;
  bytes_stored : int Atomic.t;
  versions : int Atomic.t;  (** live version records across all chains *)
  live_values : int Atomic.t;  (** chains whose head is a non-tombstone *)
  pruned : int Atomic.t;  (** versions dropped by {!prune} since create *)
  size : 'v -> int;  (** payload size for the [bytes_stored] gauge *)
}

let create ?(size = fun _ -> 0) () =
  {
    chunks = Array.init max_chunks (fun _ -> Atomic.make None);
    next = Atomic.make 0;
    free_list = Atomic.make [];
    allocated = Atomic.make 0;
    freed = Atomic.make 0;
    bytes_stored = Atomic.make 0;
    versions = Atomic.make 0;
    live_values = Atomic.make 0;
    pruned = Atomic.make 0;
    size;
  }

let ensure_chunk t ci =
  if ci >= max_chunks then failwith "Record_store: out of slots";
  match Atomic.get t.chunks.(ci) with
  | Some c -> c
  | None ->
      let fresh = Array.init chunk_size (fun _ -> Atomic.make Empty) in
      if Atomic.compare_and_set t.chunks.(ci) None (Some fresh) then fresh
      else (
        match Atomic.get t.chunks.(ci) with Some c -> c | None -> assert false)

let slot t ptr =
  let ci = ptr lsr chunk_bits in
  match Atomic.get t.chunks.(ci) with
  | Some c -> c.(ptr land (chunk_size - 1))
  | None ->
      invalid_arg (Printf.sprintf "Record_store: record %d not allocated" ptr)

let pop_free t =
  let rec go () =
    match Atomic.get t.free_list with
    | [] -> None
    | p :: rest as old ->
        if Atomic.compare_and_set t.free_list old rest then Some p else go ()
  in
  go ()

let push_free t p =
  let rec go () =
    let old = Atomic.get t.free_list in
    if not (Atomic.compare_and_set t.free_list old (p :: old)) then go ()
  in
  go ()

let vsize t v = match v.value with Some x -> t.size x | None -> 0

let chain_stats t v =
  let rec go n b = function
    | None -> (n, b)
    | Some v -> go (n + 1) (b + vsize t v) v.prev
  in
  go 0 0 (Some v)

exception Freed_record of int

(** Allocate a slot whose chain is the single live version
    [{epoch; value; prev = None}]; the pointer is immediately valid in
    all domains. *)
let put t ~epoch value =
  Atomic.incr t.allocated;
  Atomic.incr t.versions;
  Atomic.incr t.live_values;
  ignore (Atomic.fetch_and_add t.bytes_stored (t.size value));
  let v = { epoch; value = Some value; prev = None } in
  match pop_free t with
  | Some p ->
      Atomic.set (slot t p) (Chain v);
      p
  | None ->
      let p = Atomic.fetch_and_add t.next 1 in
      let chunk = ensure_chunk t (p lsr chunk_bits) in
      Atomic.set chunk.(p land (chunk_size - 1)) (Chain v);
      p

(** Current value: the chain head's payload. [None] on a tombstoned or
    sealed chain (logically absent). @raise Freed_record on a reclaimed
    slot. *)
let get t ptr =
  match Atomic.get (slot t ptr) with
  | Empty -> raise (Freed_record ptr)
  | Sealed -> None
  | Chain v -> v.value

(** Value as of epoch [at]: the newest version with [epoch <= at],
    walking from the head. Appends are newest-first, and every version a
    pin at [at] could need survives {!prune} (see the horizon rule), so
    the first hit is the visible one even when concurrent writers pinned
    to different epochs interleaved their appends out of epoch order.
    @raise Freed_record on a reclaimed slot. *)
let get_at t ptr ~at =
  match Atomic.get (slot t ptr) with
  | Empty -> raise (Freed_record ptr)
  | Sealed -> None
  | Chain v ->
      let rec visible = function
        | Some v when v.epoch > at -> visible v.prev
        | Some v -> v.value
        | None -> None
      in
      visible (Some v)

(** Chain head, for vacuum's dead-chain test. [None] on a sealed chain.
    @raise Freed_record on a reclaimed slot. *)
let head t ptr =
  match Atomic.get (slot t ptr) with
  | Empty -> raise (Freed_record ptr)
  | Sealed -> None
  | Chain v -> Some v

(** Append a live version over a {e dead} head (insert-if-absent
    semantics — the resurrection half of {!Repro_core.Mvcc}'s insert).
    [`Live] — head is live, the key is taken; [`Ok] — appended; [`Gone]
    — chain sealed, the pair is being vacuumed: retry from the tree.
    @raise Freed_record on a reclaimed slot. *)
let rec insert_version t ptr ~epoch value =
  let a = slot t ptr in
  match Atomic.get a with
  | Empty -> raise (Freed_record ptr)
  | Sealed -> `Gone
  | Chain h as old -> (
      match h.value with
      | Some _ -> `Live
      | None ->
          if
            Atomic.compare_and_set a old
              (Chain { epoch; value = Some value; prev = Some h })
          then begin
            Atomic.incr t.versions;
            Atomic.incr t.live_values;
            ignore (Atomic.fetch_and_add t.bytes_stored (t.size value));
            `Ok
          end
          else insert_version t ptr ~epoch value)

(** Append a live version unconditionally (bind-or-overwrite). Reports
    what it covered; [`Gone] as in {!insert_version}.
    @raise Freed_record on a reclaimed slot. *)
let rec upsert t ptr ~epoch value =
  let a = slot t ptr in
  match Atomic.get a with
  | Empty -> raise (Freed_record ptr)
  | Sealed -> `Gone
  | Chain h as old ->
      if
        Atomic.compare_and_set a old
          (Chain { epoch; value = Some value; prev = Some h })
      then begin
        Atomic.incr t.versions;
        ignore (Atomic.fetch_and_add t.bytes_stored (t.size value));
        match h.value with
        | Some _ -> `Over_live
        | None ->
            Atomic.incr t.live_values;
            `Over_dead
      end
      else upsert t ptr ~epoch value

(** Append a tombstone over a live head (logical delete). [`Dead] — the
    head was already a tombstone; [`Gone] as in {!insert_version}.
    @raise Freed_record on a reclaimed slot. *)
let rec kill t ptr ~epoch =
  let a = slot t ptr in
  match Atomic.get a with
  | Empty -> raise (Freed_record ptr)
  | Sealed -> `Gone
  | Chain h as old -> (
      match h.value with
      | None -> `Dead
      | Some _ ->
          if
            Atomic.compare_and_set a old
              (Chain { epoch; value = None; prev = Some h })
          then begin
            Atomic.incr t.versions;
            Atomic.decr t.live_values;
            `Killed
          end
          else kill t ptr ~epoch)

(** Truncate the chain below the newest version with [epoch < horizon].
    Every pin is at [>= horizon], and a reader at epoch [E] stops at the
    first-from-head version with [epoch <= E]; the first version below
    [horizon] satisfies every such reader, so everything older is
    unreachable for all current pins — and for all future ones, since the
    clock only advances. Returns the number of versions dropped (0 on a
    sealed chain or when nothing is below the keeper).
    @raise Freed_record on a reclaimed slot. *)
let rec prune t ptr ~horizon =
  let a = slot t ptr in
  match Atomic.get a with
  | Empty -> raise (Freed_record ptr)
  | Sealed -> 0
  | Chain h as old -> (
      (* path: head..keeper (the first version with epoch < horizon);
         dropped: everything below the keeper *)
      let rec split acc v =
        if v.epoch < horizon then (v :: acc, v.prev)
        else
          match v.prev with
          | Some p -> split (v :: acc) p
          | None -> (v :: acc, None)
      in
      let rev_path, dropped = split [] h in
      match dropped with
      | None -> 0
      | Some _ ->
          (* rebuild the spine with the keeper's prev cut *)
          let rec rebuild = function
            | [] -> None
            | v :: older -> Some { v with prev = rebuild older }
          in
          let path = List.rev rev_path in
          let fresh =
            match rebuild path with Some v -> v | None -> assert false
          in
          if Atomic.compare_and_set a old (Chain fresh) then begin
            let n, b = chain_stats t (Option.get dropped) in
            ignore (Atomic.fetch_and_add t.versions (-n));
            ignore (Atomic.fetch_and_add t.pruned n);
            ignore (Atomic.fetch_and_add t.bytes_stored (-b));
            n
          end
          else prune t ptr ~horizon)

(** CAS the chain [Chain expect -> Sealed] (physical equality on the head
    version). The caller (vacuum) must have proved [expect] is a lone
    tombstone older than every pin; on [true] it owns the removal of the
    tree pair. [false] — the chain changed (a concurrent append or a
    racing vacuum won); re-examine. *)
let seal t ptr ~expect =
  let a = slot t ptr in
  match Atomic.get a with
  | Chain h as old when h == expect ->
      if Atomic.compare_and_set a old Sealed then begin
        let n, b = chain_stats t h in
        ignore (Atomic.fetch_and_add t.versions (-n));
        ignore (Atomic.fetch_and_add t.bytes_stored (-b));
        true
      end
      else false
  | Empty | Sealed | Chain _ -> false

(** Return a slot to the allocator. Callers racing readers must defer
    this through an {!Epoch} manager, as {!Repro_core.Mvcc} does. *)
let free t ptr =
  let a = slot t ptr in
  (match Atomic.get a with
  | Chain h ->
      let n, b = chain_stats t h in
      ignore (Atomic.fetch_and_add t.versions (-n));
      ignore (Atomic.fetch_and_add t.bytes_stored (-b));
      (match h.value with
      | Some _ -> Atomic.decr t.live_values
      | None -> ())
  | Empty | Sealed -> ());
  Atomic.set a Empty;
  Atomic.incr t.freed;
  push_free t ptr

let live_count t = Atomic.get t.allocated - Atomic.get t.freed
let bytes_stored t = Atomic.get t.bytes_stored
let live_versions t = Atomic.get t.versions
let live_values t = Atomic.get t.live_values
let pruned_total t = Atomic.get t.pruned

(* -- persistence hooks (durable MVCC) --

   The heap itself is volatile; {!Repro_core.Mvcc} serializes slot states
   into version-record pages of its page store and rebuilds the heap on
   recovery with the functions below. [export] is safe concurrently (one
   atomic read per slot — the chain is immutable past the head); the
   restore path is recovery-only, strictly single-threaded, before any
   worker touches the store. *)

type 'v slot_state = Slot_empty | Slot_sealed | Slot_chain of 'v version

(** Observe slot [ptr]'s state without materialising it. Unlike the
    accessors above this never raises: unallocated slots read as
    [Slot_empty], which is exactly what the serializer should persist. *)
let export t ptr =
  let ci = ptr lsr chunk_bits in
  if ci >= max_chunks then Slot_empty
  else
    match Atomic.get t.chunks.(ci) with
    | None -> Slot_empty
    | Some c -> (
        match Atomic.get c.(ptr land (chunk_size - 1)) with
        | Empty -> Slot_empty
        | Sealed -> Slot_sealed
        | Chain v -> Slot_chain v)

(** Install slot [ptr]'s state exactly as persisted (recovery only).
    Gauges are bumped as if the chain had been built by normal appends;
    allocation accounting is settled afterwards by {!finish_restore}. *)
let restore t ptr st =
  let chunk = ensure_chunk t (ptr lsr chunk_bits) in
  let a = chunk.(ptr land (chunk_size - 1)) in
  (match st with
  | Slot_empty -> Atomic.set a Empty
  | Slot_sealed -> Atomic.set a Sealed
  | Slot_chain v ->
      Atomic.set a (Chain v);
      let n, b = chain_stats t v in
      ignore (Atomic.fetch_and_add t.versions n);
      ignore (Atomic.fetch_and_add t.bytes_stored b);
      (match v.value with
      | Some _ -> Atomic.incr t.live_values
      | None -> ()));
  ()

(** Finish a restore: set the bump frontier to [next], rebuild the free
    list from every [Empty]/[Sealed] slot below it, and settle the
    allocated/freed gauges so [live_count] reports the occupied slots.
    ([Sealed] slots are freed by the caller once it has removed their
    tree pairs — it re-frees them explicitly, so they are {e not} put on
    the free list here.) *)
let finish_restore t ~next =
  Atomic.set t.next next;
  let free = ref [] and occupied = ref 0 in
  for p = next - 1 downto 0 do
    match export t p with
    | Slot_empty -> free := p :: !free
    | Slot_sealed | Slot_chain _ -> incr occupied
  done;
  Atomic.set t.free_list !free;
  Atomic.set t.allocated next;
  Atomic.set t.freed (List.length !free)

(** The bump-allocation frontier: every slot ever allocated is below it. *)
let frontier t = Atomic.get t.next
