(** Deterministic key → shard routing for the partition layer.

    Routing is a fixed arithmetic hash (splitmix64's finalizer) reduced
    modulo the shard count: no per-process salt, no [Hashtbl.hash]
    dependence, so the mapping is stable across processes and reopens —
    the invariant the sharded store's on-disk headers validate. *)

val mix : int -> int
(** The raw 64-bit mix, exposed for tests and alternate reducers. *)

val shard_of : shards:int -> int -> int
(** [shard_of ~shards key] returns [key]'s shard in [\[0, shards)].
    Stable forever for a given [(shards, key)].
    @raise Invalid_argument when [shards < 1]. *)
